// Integration tests of the public API: everything a downstream user touches
// goes through the telepresence package, never internal/ paths.
package telepresence_test

import (
	"fmt"
	"log"
	"testing"

	tp "telepresence"
)

func TestPublicSessionEndToEnd(t *testing.T) {
	cfg := tp.DefaultSessionConfig(tp.FaceTime, []tp.Participant{
		{ID: "u1", Loc: tp.Ashburn, Device: tp.VisionPro},
		{ID: "u2", Loc: tp.NewYork, Device: tp.VisionPro},
	})
	cfg.Duration = 4 * tp.Second
	cfg.Seed = 99
	sess, err := tp.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := sess.Plan()
	if plan.Media != tp.MediaSpatialPersona || plan.Transport != tp.TransportQUIC {
		t.Fatalf("plan = %+v", plan)
	}
	res := sess.Run()
	if len(res.Users) != 2 {
		t.Fatalf("%d users", len(res.Users))
	}
	for _, u := range res.Users {
		if u.Uplink.Mean() <= 0 {
			t.Errorf("%s: no uplink traffic", u.ID)
		}
	}
}

func TestPublicPlanMatrix(t *testing.T) {
	plan, err := tp.PlanSession(tp.Zoom, []tp.Participant{
		{ID: "a", Loc: tp.Seattle, Device: tp.VisionPro},
		{ID: "b", Loc: tp.Miami, Device: tp.VisionPro},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.P2P || plan.Media != tp.Media2DVideo {
		t.Errorf("two-party Zoom plan = %+v", plan)
	}
}

func TestPublicConstantsStable(t *testing.T) {
	if tp.MaxSpatialUsers != 5 {
		t.Error("spatial cap drifted")
	}
	if tp.Version == "" {
		t.Error("no version")
	}
	if len(tp.VantagePoints()) != 9 {
		t.Error("vantage points drifted")
	}
	if tp.RenderDeadlineMs < 11 || tp.RenderDeadlineMs > 11.2 {
		t.Errorf("deadline %.2f ms, want ~11.1", tp.RenderDeadlineMs)
	}
}

func TestQuickVsFullOptions(t *testing.T) {
	q, f := tp.Quick(1), tp.Full(1)
	if q.SessionDuration >= f.SessionDuration {
		t.Error("Quick not quicker than Full")
	}
	if f.Reps < 5 {
		t.Error("Full should match the paper's >=5 repetitions")
	}
}

// ExamplePlanSession demonstrates the §4.1 decision matrix through the
// public API.
func ExamplePlanSession() {
	plan, err := tp.PlanSession(tp.FaceTime, []tp.Participant{
		{ID: "u1", Loc: tp.Ashburn, Device: tp.VisionPro},
		{ID: "u2", Loc: tp.SanFrancisco, Device: tp.VisionPro},
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v over %v via %v\n", plan.Media, plan.Transport, plan.Server)
	// Output: spatial-persona over QUIC via VA
}

// ExampleKeypointStreaming reproduces the paper's 74-keypoint bandwidth
// estimate.
func ExampleKeypointStreaming() {
	res, err := tp.KeypointStreaming(tp.Quick(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d keypoints, under 1 Mbps: %v\n",
		res.Keypoints, res.MbpsSample.Mean() < 1)
	// Output: 74 keypoints, under 1 Mbps: true
}

func TestPublicFleetAPI(t *testing.T) {
	exps := tp.Experiments()
	if len(exps) < 17 {
		t.Fatalf("%d experiments registered, want >=17", len(exps))
	}
	if _, ok := tp.LookupExperiment("fig5"); !ok {
		t.Error("fig5 not addressable by name")
	}
	sel, err := tp.SelectExperiments("servers", "protocols")
	if err != nil {
		t.Fatal(err)
	}
	opts := tp.Quick(5)
	opts.SessionDuration = 4 * tp.Second
	results, err := tp.FleetRun(sel, opts, tp.FleetConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sink := tp.NewMemorySink()
	err = tp.FleetWrite(results, func(tp.Experiment) (tp.Sink, error) { return sink, nil })
	if err != nil {
		t.Fatal(err)
	}
	// servers: 3 policy rows; protocols: 8 matrix rows.
	if len(sink.Rows) != 11 {
		t.Errorf("%d rows through the public fleet API, want 11", len(sink.Rows))
	}
	m := tp.NewFleetManifest(opts, 4, 0, results)
	if m.Seed != 5 || len(m.Experiments) != 2 {
		t.Errorf("manifest = %+v", m)
	}
}

// TestPublicScenarioAPI drives a session under a schedule built entirely
// through the public surface: schedule authoring, trace import, binding,
// and link-stat accessors.
func TestPublicScenarioAPI(t *testing.T) {
	cfg := tp.DefaultSessionConfig(tp.FaceTime, []tp.Participant{
		{ID: "u1", Loc: tp.Ashburn, Device: tp.VisionPro},
		{ID: "u2", Loc: tp.NewYork, Device: tp.VisionPro},
	})
	cfg.Duration = 4 * tp.Second
	cfg.Seed = 7
	sess, err := tp.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := tp.NewSchedule().
		StepAt(tp.Second, tp.Impairment{ExtraDelayMs: 400}).
		RampTo(2*tp.Second, tp.Second, tp.Impairment{
			Burst: &tp.BurstParams{GoodToBad: 0.05, BadToGood: 0.2, LossBad: 1},
		})
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sched.Bind(sess.Scheduler(), sess.UplinkShaper(0)); err != nil {
		t.Fatal(err)
	}
	res := sess.Run()
	if res.Users[1].FramesDecoded == 0 {
		t.Error("impaired session decoded nothing")
	}
	if up := sess.UplinkStats(0); up.DroppedBurst == 0 {
		t.Error("burst segment dropped nothing on the uplink")
	}
}

func TestPublicSweepAPI(t *testing.T) {
	if len(tp.SweepTargets()) < 3 {
		t.Fatalf("%d sweep targets, want >=3", len(tp.SweepTargets()))
	}
	if _, ok := tp.LookupSweepTarget("congestion"); !ok {
		t.Fatal("congestion not addressable by name")
	}
	opts := tp.Quick(3)
	opts.SessionDuration = 4 * tp.Second
	spec := tp.SweepSpec{Target: "handover", Axes: []tp.SweepAxis{
		{Name: "delay_ms", Values: []float64{250}},
	}}
	results, err := tp.FleetRunSweep(spec, opts, tp.FleetConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sink := tp.NewMemorySink()
	if err := tp.FleetWriteSweep(results, sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.Rows) != 1 {
		t.Fatalf("%d rows, want 1", len(sink.Rows))
	}
	row, ok := sink.Rows[0].(tp.HandoverRow)
	if !ok || row.StepDelayMs != 250 {
		t.Errorf("row = %#v", sink.Rows[0])
	}
	m := tp.NewFleetSweepManifest(spec, opts, 2, 0, results)
	if m.Target != "handover" || m.Cells != 1 || m.Rows != 1 {
		t.Errorf("sweep manifest = %+v", m)
	}
}
