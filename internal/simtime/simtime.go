// Package simtime provides a deterministic virtual clock and a
// discrete-event scheduler. Every simulated subsystem in this repository
// (network links, codecs, render loops) advances on this clock rather than
// the wall clock, so experiments are exactly reproducible from a seed.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp measured in nanoseconds since the start of the
// simulation. It is deliberately a distinct type from time.Time so that
// wall-clock values cannot leak into simulated code paths.
type Time int64

// Duration re-exports time.Duration for convenience; virtual durations use
// the same unit (nanoseconds) as real ones.
type Duration = time.Duration

// Common duration constants, re-exported so callers need not import time.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Never is a sentinel Time later than every reachable simulation instant.
const Never = Time(math.MaxInt64)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the virtual time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("t+%.3fs", t.Seconds()) }

// Event is a scheduled callback. Events fire in timestamp order; ties are
// broken by scheduling order (FIFO), which keeps runs deterministic.
type Event struct {
	At       Time
	Run      func()
	seq      uint64
	index    int // heap index; -1 once popped or cancelled
	canceled bool
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event simulator. The zero value is
// ready to use. Schedulers are not safe for concurrent use; simulations in
// this repository are single-goroutine by design.
type Scheduler struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nsteps uint64
}

// NewScheduler returns a scheduler whose clock starts at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Steps reports how many events have been executed so far.
func (s *Scheduler) Steps() uint64 { return s.nsteps }

// Pending reports how many events are queued (including cancelled ones that
// have not yet been reaped).
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past panics: that is always a logic error in a discrete-event simulation.
func (s *Scheduler) At(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("simtime: scheduling at %v which is before now %v", at, s.now))
	}
	e := &Event{At: at, Run: fn, seq: s.seq}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, fn func()) *Event { return s.At(s.now.Add(d), fn) }

// Step executes the single next event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.At
		s.nsteps++
		e.Run()
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty or the next event is
// after deadline. The clock is left at the later of its current value and
// deadline (a drained queue still advances the clock, so periodic metrics
// windows line up).
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.queue) > 0 {
		// Peek: queue[0] is the earliest event.
		next := s.queue[0]
		if next.canceled {
			heap.Pop(&s.queue)
			continue
		}
		if next.At > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Run executes every pending event until the queue drains. Use with care:
// simulations with self-rescheduling loops (render loops, periodic senders)
// never drain and must use RunUntil.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// Ticker invokes fn every interval until stop is called, starting one
// interval from now. It is the building block for frame loops and periodic
// probes.
type Ticker struct {
	s        *Scheduler
	interval Duration
	fn       func(Time)
	ev       *Event
	stopped  bool
}

// NewTicker schedules fn to run every interval on s. fn receives the virtual
// time of each tick.
func NewTicker(s *Scheduler, interval Duration, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("simtime: non-positive ticker interval")
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.s.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn(t.s.Now())
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
