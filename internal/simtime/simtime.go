// Package simtime provides a deterministic virtual clock and a
// discrete-event scheduler. Every simulated subsystem in this repository
// (network links, codecs, render loops) advances on this clock rather than
// the wall clock, so experiments are exactly reproducible from a seed.
//
// The scheduler is built for an allocation-free steady state: event nodes
// are pooled and recycled after they fire, hot callers can schedule a
// package-level function plus argument (AtArg) instead of a fresh closure,
// and Ticker allocates its trampoline closure once, not per tick.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp measured in nanoseconds since the start of the
// simulation. It is deliberately a distinct type from time.Time so that
// wall-clock values cannot leak into simulated code paths.
type Time int64

// Duration re-exports time.Duration for convenience; virtual durations use
// the same unit (nanoseconds) as real ones.
type Duration = time.Duration

// Common duration constants, re-exported so callers need not import time.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Never is a sentinel Time later than every reachable simulation instant.
const Never = Time(math.MaxInt64)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the virtual time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("t+%.3fs", t.Seconds()) }

// event is a pooled scheduler node. Events fire in timestamp order; ties are
// broken by scheduling order (FIFO), which keeps runs deterministic. Nodes
// are recycled once popped, so external code only ever holds a Handle.
type event struct {
	at  Time
	run func()
	// runArg+arg is the closure-free variant: a long-lived function pointer
	// applied to a per-event argument (typically a pooled struct pointer).
	runArg   func(any)
	arg      any
	seq      uint64
	index    int // heap index; -1 once popped
	gen      uint32
	canceled bool
}

// Handle refers to a scheduled event. The zero Handle is valid and inert.
// Handles stay safe after the event has fired or been cancelled: the node is
// recycled under a new generation, so a stale Cancel is a no-op.
type Handle struct {
	e   *event
	gen uint32
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled, or a zero Handle) is a no-op.
func (h Handle) Cancel() {
	if h.e != nil && h.e.gen == h.gen {
		h.e.canceled = true
	}
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event simulator. The zero value is
// ready to use. Schedulers are not safe for concurrent use; simulations in
// this repository are single-goroutine by design.
type Scheduler struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nsteps uint64
	free   []*event
}

// NewScheduler returns a scheduler whose clock starts at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Steps reports how many events have been executed so far.
func (s *Scheduler) Steps() uint64 { return s.nsteps }

// Pending reports how many events are queued (including cancelled ones that
// have not yet been reaped).
func (s *Scheduler) Pending() int { return len(s.queue) }

func (s *Scheduler) alloc(at Time) *event {
	if at < s.now {
		panic(fmt.Sprintf("simtime: scheduling at %v which is before now %v", at, s.now))
	}
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &event{}
	}
	e.at = at
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// recycle returns a popped node to the pool under a fresh generation, so
// stale Handles can never touch its next occupant.
func (s *Scheduler) recycle(e *event) {
	e.gen++
	e.run = nil
	e.runArg = nil
	e.arg = nil
	e.canceled = false
	s.free = append(s.free, e)
}

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past panics: that is always a logic error in a discrete-event simulation.
func (s *Scheduler) At(at Time, fn func()) Handle {
	e := s.alloc(at)
	e.run = fn
	return Handle{e: e, gen: e.gen}
}

// AtArg schedules fn(arg) at the absolute virtual time at. Unlike At, the
// hot path allocates nothing when fn is a package-level function and arg is
// a pointer (pointers box into an interface without allocating), which makes
// it the scheduling primitive for per-packet work.
func (s *Scheduler) AtArg(at Time, fn func(any), arg any) Handle {
	e := s.alloc(at)
	e.runArg = fn
	e.arg = arg
	return Handle{e: e, gen: e.gen}
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, fn func()) Handle { return s.At(s.now.Add(d), fn) }

// AfterArg schedules fn(arg) to run d after the current time.
func (s *Scheduler) AfterArg(d Duration, fn func(any), arg any) Handle {
	return s.AtArg(s.now.Add(d), fn, arg)
}

// Step executes the single next event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.canceled {
			s.recycle(e)
			continue
		}
		s.now = e.at
		s.nsteps++
		run, runArg, arg := e.run, e.runArg, e.arg
		// Recycle before running: the callback may schedule again and reuse
		// this very node; its Handle generation is already retired.
		s.recycle(e)
		if runArg != nil {
			runArg(arg)
		} else {
			run()
		}
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty or the next event is
// after deadline. The clock is left at the later of its current value and
// deadline (a drained queue still advances the clock, so periodic metrics
// windows line up).
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.queue) > 0 {
		// Peek: queue[0] is the earliest event.
		next := s.queue[0]
		if next.canceled {
			s.recycle(heap.Pop(&s.queue).(*event))
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Run executes every pending event until the queue drains. Use with care:
// simulations with self-rescheduling loops (render loops, periodic senders)
// never drain and must use RunUntil.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// Ticker invokes fn every interval until stop is called, starting one
// interval from now. It is the building block for frame loops and periodic
// probes. A ticker allocates its trampoline once at construction; each tick
// then reuses a pooled scheduler node, so steady-state ticking is
// allocation-free.
type Ticker struct {
	s        *Scheduler
	interval Duration
	fn       func(Time)
	run      func() // allocated once; rescheduled every tick
	h        Handle
	stopped  bool
}

// NewTicker schedules fn to run every interval on s. fn receives the virtual
// time of each tick.
func NewTicker(s *Scheduler, interval Duration, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("simtime: non-positive ticker interval")
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	t.run = func() {
		if t.stopped {
			return
		}
		t.fn(t.s.now)
		if !t.stopped {
			t.h = t.s.At(t.s.now.Add(t.interval), t.run)
		}
	}
	t.h = s.At(s.now.Add(interval), t.run)
	return t
}

// Stop cancels the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.h.Cancel()
}
