// Package simtime provides a deterministic virtual clock and a
// discrete-event scheduler. Every simulated subsystem in this repository
// (network links, codecs, render loops) advances on this clock rather than
// the wall clock, so experiments are exactly reproducible from a seed.
//
// The scheduler is built for an allocation-free steady state: event nodes
// are pooled and recycled after they fire, hot callers can schedule a
// package-level function plus argument (AtArg) instead of a fresh closure,
// and Ticker allocates its trampoline closure once, not per tick.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp measured in nanoseconds since the start of the
// simulation. It is deliberately a distinct type from time.Time so that
// wall-clock values cannot leak into simulated code paths.
type Time int64

// Duration re-exports time.Duration for convenience; virtual durations use
// the same unit (nanoseconds) as real ones.
type Duration = time.Duration

// Common duration constants, re-exported so callers need not import time.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Never is a sentinel Time later than every reachable simulation instant.
const Never = Time(math.MaxInt64)

// SiteID names a scheduling site: a stable label ("netem.deliver",
// "vca/recovery.scan") interned on one scheduler via Site. Site 0 is the
// unlabeled site; events scheduled through the unlabeled variants (At,
// After, ...) carry it. IDs are scheduler-local: the same name may intern
// to different IDs on different schedulers, so cross-run aggregation must
// key on SiteName, never on the raw ID.
type SiteID uint32

// Probe observes event execution. EventStart fires after the clock has
// advanced to the event's timestamp and before its callback runs; EventEnd
// fires after the callback returns. Probes observe but never steer: a
// scheduler with a nil probe behaves identically (and its dispatch path
// allocates nothing). Callbacks are not re-entered — Step is single-
// threaded and never recursive — so EventStart/EventEnd calls are strictly
// paired and never nest.
type Probe interface {
	EventStart(site SiteID, now Time)
	EventEnd(site SiteID)
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the virtual time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("t+%.3fs", t.Seconds()) }

// event is a pooled scheduler node. Events fire in timestamp order; ties are
// broken by scheduling order (FIFO), which keeps runs deterministic. Nodes
// are recycled once popped, so external code only ever holds a Handle.
type event struct {
	at  Time
	run func()
	// runArg+arg is the closure-free variant: a long-lived function pointer
	// applied to a per-event argument (typically a pooled struct pointer).
	runArg   func(any)
	arg      any
	seq      uint64
	index    int // heap index; -1 once popped
	gen      uint32
	site     SiteID
	canceled bool
}

// Handle refers to a scheduled event. The zero Handle is valid and inert.
// Handles stay safe after the event has fired or been cancelled: the node is
// recycled under a new generation, so a stale Cancel is a no-op.
type Handle struct {
	e   *event
	gen uint32
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled, or a zero Handle) is a no-op.
func (h Handle) Cancel() {
	if h.e != nil && h.e.gen == h.gen {
		h.e.canceled = true
	}
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event simulator. The zero value is
// ready to use. Schedulers are not safe for concurrent use; simulations in
// this repository are single-goroutine by design.
type Scheduler struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nsteps uint64
	free   []*event

	probe Probe
	// Site interning: siteNames[id] is the label, siteIDs its inverse. The
	// map is lookup-only after interning (never ranged), so iteration order
	// cannot leak into behavior.
	siteNames []string
	siteIDs   map[string]SiteID
}

// NewScheduler returns a scheduler whose clock starts at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Steps reports how many events have been executed so far.
func (s *Scheduler) Steps() uint64 { return s.nsteps }

// Pending reports how many events are queued (including cancelled ones that
// have not yet been reaped).
func (s *Scheduler) Pending() int { return len(s.queue) }

// SetProbe installs (or, with nil, removes) the execution probe. Probes
// observe every subsequently executed event; installing one mid-run is
// safe but misses events already fired.
func (s *Scheduler) SetProbe(p Probe) { s.probe = p }

// Site interns a scheduling-site label and returns its scheduler-local ID.
// Interning the same name twice returns the same ID. Interning is a setup-
// time operation (it may allocate); hot paths should intern once and reuse
// the SiteID.
func (s *Scheduler) Site(name string) SiteID {
	if s.siteIDs == nil {
		s.siteIDs = make(map[string]SiteID, 16)
		s.siteNames = append(s.siteNames, "") // SiteID 0: the unlabeled site
		s.siteIDs[""] = 0
	}
	if id, ok := s.siteIDs[name]; ok {
		return id
	}
	id := SiteID(len(s.siteNames))
	s.siteNames = append(s.siteNames, name)
	s.siteIDs[name] = id
	return id
}

// SiteName returns the label interned for id ("" for the unlabeled site or
// an ID this scheduler never issued).
func (s *Scheduler) SiteName(id SiteID) string {
	if int(id) < len(s.siteNames) {
		return s.siteNames[id]
	}
	return ""
}

// NumSites reports how many site IDs this scheduler has issued (including
// the implicit unlabeled site once anything has been interned).
func (s *Scheduler) NumSites() int { return len(s.siteNames) }

func (s *Scheduler) alloc(at Time) *event {
	if at < s.now {
		panic(fmt.Sprintf("simtime: scheduling at %v which is before now %v", at, s.now))
	}
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &event{}
	}
	e.at = at
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// recycle returns a popped node to the pool under a fresh generation, so
// stale Handles can never touch its next occupant.
func (s *Scheduler) recycle(e *event) {
	e.gen++
	e.run = nil
	e.runArg = nil
	e.arg = nil
	e.site = 0
	e.canceled = false
	s.free = append(s.free, e)
}

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past panics: that is always a logic error in a discrete-event simulation.
func (s *Scheduler) At(at Time, fn func()) Handle {
	e := s.alloc(at)
	e.run = fn
	return Handle{e: e, gen: e.gen}
}

// AtArg schedules fn(arg) at the absolute virtual time at. Unlike At, the
// hot path allocates nothing when fn is a package-level function and arg is
// a pointer (pointers box into an interface without allocating), which makes
// it the scheduling primitive for per-packet work.
func (s *Scheduler) AtArg(at Time, fn func(any), arg any) Handle {
	e := s.alloc(at)
	e.runArg = fn
	e.arg = arg
	return Handle{e: e, gen: e.gen}
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, fn func()) Handle { return s.At(s.now.Add(d), fn) }

// AfterArg schedules fn(arg) to run d after the current time.
func (s *Scheduler) AfterArg(d Duration, fn func(any), arg any) Handle {
	return s.AtArg(s.now.Add(d), fn, arg)
}

// AtSite is At with a scheduling-site label: the installed Probe (if any)
// attributes the event's execution to site. With no probe it is exactly At.
func (s *Scheduler) AtSite(at Time, fn func(), site SiteID) Handle {
	e := s.alloc(at)
	e.run = fn
	e.site = site
	return Handle{e: e, gen: e.gen}
}

// AtArgSite is AtArg with a scheduling-site label.
func (s *Scheduler) AtArgSite(at Time, fn func(any), arg any, site SiteID) Handle {
	e := s.alloc(at)
	e.runArg = fn
	e.arg = arg
	e.site = site
	return Handle{e: e, gen: e.gen}
}

// AfterSite is After with a scheduling-site label.
func (s *Scheduler) AfterSite(d Duration, fn func(), site SiteID) Handle {
	return s.AtSite(s.now.Add(d), fn, site)
}

// AfterArgSite is AfterArg with a scheduling-site label.
func (s *Scheduler) AfterArgSite(d Duration, fn func(any), arg any, site SiteID) Handle {
	return s.AtArgSite(s.now.Add(d), fn, arg, site)
}

// Step executes the single next event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.canceled {
			s.recycle(e)
			continue
		}
		s.now = e.at
		s.nsteps++
		run, runArg, arg, site := e.run, e.runArg, e.arg, e.site
		// Recycle before running: the callback may schedule again and reuse
		// this very node; its Handle generation is already retired.
		s.recycle(e)
		if p := s.probe; p != nil {
			p.EventStart(site, s.now)
			if runArg != nil {
				runArg(arg)
			} else {
				run()
			}
			p.EventEnd(site)
			return true
		}
		if runArg != nil {
			runArg(arg)
		} else {
			run()
		}
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty or the next event is
// after deadline. The clock is left at the later of its current value and
// deadline (a drained queue still advances the clock, so periodic metrics
// windows line up).
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.queue) > 0 {
		// Peek: queue[0] is the earliest event.
		next := s.queue[0]
		if next.canceled {
			s.recycle(heap.Pop(&s.queue).(*event))
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Run executes every pending event until the queue drains. Use with care:
// simulations with self-rescheduling loops (render loops, periodic senders)
// never drain and must use RunUntil.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// Ticker invokes fn every interval until stop is called, starting one
// interval from now. It is the building block for frame loops and periodic
// probes. A ticker allocates its trampoline once at construction; each tick
// then reuses a pooled scheduler node, so steady-state ticking is
// allocation-free.
//
// Reentrancy contract (relied on by profiler probes, which assume strictly
// paired, non-nested EventStart/EventEnd):
//   - fn runs inside Step, never recursively: a tick callback that creates
//     another Ticker or schedules more events only enqueues them — nothing
//     fires until the current callback returns.
//   - Stop from inside fn takes effect immediately: the tick in progress
//     completes, no further tick is scheduled, and Stop is idempotent
//     (Stop-then-Stop, or Stop racing a cancelled-but-unreaped node, is a
//     no-op).
type Ticker struct {
	s        *Scheduler
	interval Duration
	fn       func(Time)
	run      func() // allocated once; rescheduled every tick
	h        Handle
	site     SiteID
	stopped  bool
}

// NewTicker schedules fn to run every interval on s. fn receives the virtual
// time of each tick.
func NewTicker(s *Scheduler, interval Duration, fn func(Time)) *Ticker {
	return NewTickerSite(s, interval, fn, 0)
}

// NewTickerSite is NewTicker with a scheduling-site label: every tick of
// the returned Ticker is attributed to site by the installed Probe.
func NewTickerSite(s *Scheduler, interval Duration, fn func(Time), site SiteID) *Ticker {
	if interval <= 0 {
		panic("simtime: non-positive ticker interval")
	}
	t := &Ticker{s: s, interval: interval, fn: fn, site: site}
	t.run = func() {
		if t.stopped {
			return
		}
		t.fn(t.s.now)
		if !t.stopped {
			t.h = t.s.AtSite(t.s.now.Add(t.interval), t.run, t.site)
		}
	}
	t.h = s.AtSite(s.now.Add(interval), t.run, t.site)
	return t
}

// Stop cancels the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.h.Cancel()
}
