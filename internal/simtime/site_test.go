package simtime

import (
	"testing"
	"time"
)

func TestSiteInterning(t *testing.T) {
	s := NewScheduler()
	a := s.Site("netem.deliver")
	b := s.Site("vca/recovery.scan")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("interned IDs not distinct and nonzero: %d, %d", a, b)
	}
	if got := s.Site("netem.deliver"); got != a {
		t.Errorf("re-interning returned %d, want %d", got, a)
	}
	if got := s.SiteName(a); got != "netem.deliver" {
		t.Errorf("SiteName(%d) = %q", a, got)
	}
	if got := s.SiteName(0); got != "" {
		t.Errorf("SiteName(0) = %q, want unlabeled", got)
	}
	if got := s.SiteName(SiteID(999)); got != "" {
		t.Errorf("SiteName(unissued) = %q, want \"\"", got)
	}
	if got := s.NumSites(); got != 3 { // "", netem.deliver, vca/recovery.scan
		t.Errorf("NumSites = %d, want 3", got)
	}
	// A fresh scheduler has interned nothing.
	if got := NewScheduler().NumSites(); got != 0 {
		t.Errorf("fresh NumSites = %d, want 0", got)
	}
}

// recordingProbe logs EventStart/EventEnd pairs for attribution tests.
type recordingProbe struct {
	starts []SiteID
	nows   []Time
	ends   []SiteID
	depth  int // current nesting; must never exceed 1
	maxDep int
}

func (p *recordingProbe) EventStart(site SiteID, now Time) {
	p.starts = append(p.starts, site)
	p.nows = append(p.nows, now)
	p.depth++
	if p.depth > p.maxDep {
		p.maxDep = p.depth
	}
}

func (p *recordingProbe) EventEnd(site SiteID) {
	p.ends = append(p.ends, site)
	p.depth--
}

// TestProbeAttribution: labeled events report their site, unlabeled ones
// report site 0, the probe sees the event's own timestamp, and start/end
// calls are strictly paired and never nested — even when a callback
// schedules further events.
func TestProbeAttribution(t *testing.T) {
	s := NewScheduler()
	site := s.Site("test.site")
	p := &recordingProbe{}
	s.SetProbe(p)

	s.AtSite(10, func() {
		// Scheduling from inside a probed callback must not re-enter the
		// probe until this callback has returned.
		s.AfterSite(5, func() {}, site)
	}, site)
	s.At(20, func() {})
	s.AfterArgSite(30, func(any) {}, nil, site)
	s.Run()

	wantStarts := []SiteID{site, site, 0, site}
	if len(p.starts) != len(wantStarts) {
		t.Fatalf("starts = %v, want %v", p.starts, wantStarts)
	}
	for i, w := range wantStarts {
		if p.starts[i] != w {
			t.Errorf("starts[%d] = %d, want %d", i, p.starts[i], w)
		}
		if p.ends[i] != w {
			t.Errorf("ends[%d] = %d, want %d", i, p.ends[i], w)
		}
	}
	wantNows := []Time{10, 15, 20, 30}
	for i, w := range wantNows {
		if p.nows[i] != w {
			t.Errorf("nows[%d] = %v, want %v", i, p.nows[i], w)
		}
	}
	if p.maxDep != 1 {
		t.Errorf("probe calls nested to depth %d, want 1", p.maxDep)
	}
	if p.depth != 0 {
		t.Errorf("unbalanced probe: depth %d after drain", p.depth)
	}
}

// TestTickerSiteAttribution: every tick of a sited ticker carries its site,
// including reschedules.
func TestTickerSiteAttribution(t *testing.T) {
	s := NewScheduler()
	site := s.Site("test.tick")
	p := &recordingProbe{}
	s.SetProbe(p)
	tk := NewTickerSite(s, 10*time.Nanosecond, func(Time) {}, site)
	s.RunUntil(35)
	tk.Stop()
	if len(p.starts) != 3 {
		t.Fatalf("ticks = %d, want 3", len(p.starts))
	}
	for i, st := range p.starts {
		if st != site {
			t.Errorf("tick %d attributed to site %d, want %d", i, st, site)
		}
	}
}

// TestNilProbeDispatchAllocs pins the inertness contract: with no probe
// installed, the steady-state dispatch path (schedule a pooled-node event
// with a package-level callback, pop and run it) allocates nothing — site
// labels ride along for free.
func TestNilProbeDispatchAllocs(t *testing.T) {
	s := NewScheduler()
	site := s.Site("test.hot")
	var arg struct{ n int }
	// Warm the node pool and the heap's backing array.
	s.AtArgSite(s.Now().Add(1), nopArg, &arg, site)
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.AtArgSite(s.Now().Add(1), nopArg, &arg, site)
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("nil-probe dispatch allocates %.1f/op, want 0", allocs)
	}
}

func nopArg(any) {}

// TestTickerStopDuringFire: a ticker stopped from inside its own callback
// finishes that tick and never fires again.
func TestTickerStopDuringFire(t *testing.T) {
	s := NewScheduler()
	fires := 0
	var tk *Ticker
	tk = NewTicker(s, 10*time.Nanosecond, func(Time) {
		fires++
		if fires == 2 {
			tk.Stop()
		}
	})
	s.RunUntil(200)
	if fires != 2 {
		t.Errorf("ticker fired %d times after in-callback Stop, want 2", fires)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("%d events still pending after stop", got)
	}
}

// TestTickerReentrantNew: creating a ticker from inside another ticker's
// callback only enqueues it; the child's first tick fires one child
// interval later, interleaved deterministically with the parent.
func TestTickerReentrantNew(t *testing.T) {
	s := NewScheduler()
	var parentTicks, childTicks []Time
	var child *Ticker
	parent := NewTicker(s, 10*time.Nanosecond, func(now Time) {
		parentTicks = append(parentTicks, now)
		if child == nil {
			child = NewTicker(s, 4*time.Nanosecond, func(now Time) {
				childTicks = append(childTicks, now)
			})
		}
	})
	s.RunUntil(30)
	parent.Stop()
	child.Stop()
	wantParent := []Time{10, 20, 30}
	wantChild := []Time{14, 18, 22, 26, 30}
	if len(parentTicks) != len(wantParent) {
		t.Fatalf("parent ticks = %v, want %v", parentTicks, wantParent)
	}
	for i := range wantParent {
		if parentTicks[i] != wantParent[i] {
			t.Fatalf("parent ticks = %v, want %v", parentTicks, wantParent)
		}
	}
	if len(childTicks) != len(wantChild) {
		t.Fatalf("child ticks = %v, want %v", childTicks, wantChild)
	}
	for i := range wantChild {
		if childTicks[i] != wantChild[i] {
			t.Fatalf("child ticks = %v, want %v", childTicks, wantChild)
		}
	}
}

// TestTickerStopStop: Stop is idempotent, from outside or inside the
// callback, and a stopped ticker stays stopped across further Steps.
func TestTickerStopStop(t *testing.T) {
	s := NewScheduler()
	fires := 0
	tk := NewTicker(s, 10*time.Nanosecond, func(Time) { fires++ })
	s.RunUntil(10)
	tk.Stop()
	tk.Stop() // second Stop: no-op, must not cancel a recycled node
	// Schedule unrelated work so the queue isn't empty; the ticker must not
	// resurrect.
	s.At(40, func() {})
	s.RunUntil(100)
	if fires != 1 {
		t.Errorf("ticker fired %d times after double Stop, want 1", fires)
	}
}
