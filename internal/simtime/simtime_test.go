package simtime

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now() = %v, want 30", s.Now())
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		s.At(100, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order broken at %d: got %d", i, v)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.At(10, func() {
		s.After(5, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 1 || fired[0] != 15 {
		t.Fatalf("nested event fired at %v, want [15]", fired)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(100, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(50, func() {})
}

func TestEventCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(10, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Steps() != 0 {
		t.Errorf("Steps() = %d, want 0", s.Steps())
	}
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 20 {
		t.Errorf("Now() = %v, want 20 (clock should advance to deadline)", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 3 {
		t.Errorf("fired %d events after second run, want 3", len(fired))
	}
	if s.Now() != 100 {
		t.Errorf("Now() = %v, want 100", s.Now())
	}
}

func TestRunFor(t *testing.T) {
	s := NewScheduler()
	s.RunFor(3 * time.Second)
	if s.Now() != Time(3*Second) {
		t.Errorf("Now() = %v, want 3s", s.Now())
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	tk := NewTicker(s, 10*Millisecond, func(now Time) { ticks = append(ticks, now) })
	s.RunFor(55 * Millisecond)
	tk.Stop()
	s.RunFor(100 * Millisecond)
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5: %v", len(ticks), ticks)
	}
	for i, tt := range ticks {
		want := Time((i + 1) * 10 * int(Millisecond))
		if tt != want {
			t.Errorf("tick %d at %v, want %v", i, tt, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tk *Ticker
	tk = NewTicker(s, Millisecond, func(Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	s.RunFor(Second)
	if n != 3 {
		t.Errorf("ticker fired %d times after self-stop, want 3", n)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(0).Add(1500 * Millisecond)
	if tm.Seconds() != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", tm.Seconds())
	}
	if tm.Milliseconds() != 1500 {
		t.Errorf("Milliseconds() = %v, want 1500", tm.Milliseconds())
	}
	if d := tm.Sub(Time(Second)); d != 500*Millisecond {
		t.Errorf("Sub = %v, want 500ms", d)
	}
	if tm.String() != "t+1.500s" {
		t.Errorf("String() = %q", tm.String())
	}
}

func TestNonPositiveTickerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval ticker did not panic")
		}
	}()
	NewTicker(NewScheduler(), 0, func(Time) {})
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(Duration(i%100)*Microsecond, func() {})
		if s.Pending() > 1000 {
			for s.Pending() > 0 {
				s.Step()
			}
		}
	}
	s.Run()
}
