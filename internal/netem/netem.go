// Package netem emulates network paths for the simulation: unidirectional
// links with propagation delay, finite transmission rate, drop-tail queues,
// random loss, and jitter, plus a mutable Shaper that plays the role of
// Linux tc in the paper's delay-injection (§4.3) and bandwidth-cap
// experiments.
//
// The emulation is event-driven on a simtime.Scheduler and models a link as
// a serializer (rate) feeding a propagation pipe (delay): exactly the fluid
// model tc-netem implements.
package netem

import (
	"fmt"
	"math"

	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
	"telepresence/internal/telemetry"
)

// Frame is the unit transferred across links. Size is the virtual wire size
// in bytes and is authoritative for serialization and throughput accounting;
// Payload carries protocol bytes and may be shorter than Size when headers
// or padding are modeled but not materialized.
type Frame struct {
	Src, Dst string
	Size     int
	Payload  []byte
}

// Handler receives frames that survive a link.
type Handler func(now simtime.Time, f Frame)

// Direction tags tapped frames.
type Direction int

// Tap directions.
const (
	Ingress Direction = iota // frame entering the link (pre-queue)
	Egress                   // frame delivered at the far end
	Dropped                  // frame lost to queue overflow or random loss
)

func (d Direction) String() string {
	switch d {
	case Ingress:
		return "ingress"
	case Egress:
		return "egress"
	case Dropped:
		return "dropped"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Tap observes frames traversing a link; the capture package uses taps to
// implement the paper's Wireshark-on-the-AP methodology.
type Tap func(now simtime.Time, f Frame, dir Direction)

// Config describes a unidirectional link.
type Config struct {
	// Name identifies the link in captures and error messages.
	Name string
	// DelayMs is the one-way propagation delay in milliseconds.
	DelayMs float64
	// JitterMs adds lognormal-ish positive jitter to each frame (0 = none).
	JitterMs float64
	// RateBps is the transmission rate in bits per second (0 = infinite).
	RateBps float64
	// QueueBytes bounds the serializer's drop-tail queue (0 = a sensible
	// default of 256 KiB when the rate is finite).
	QueueBytes int
	// LossProb drops each frame independently with this probability.
	LossProb float64
	// ReorderProb, when >0, delivers a frame with an extra random delay,
	// modeling occasional out-of-order arrival.
	ReorderProb float64
}

// Link is a unidirectional emulated path. Create with NewLink; attach the
// receiver with SetHandler.
type Link struct {
	cfg     Config
	sched   *simtime.Scheduler
	rng     *simrand.Source
	handler Handler
	taps    []Tap
	shaper  *Shaper
	tr      *telemetry.Tracer

	// busyUntil is when the serializer finishes the current backlog.
	busyUntil simtime.Time
	queued    int // bytes currently in the serializer queue

	// pending records, in serialization-completion order, the queued frames
	// whose bytes still occupy the drop-tail queue. A frame leaves the queue
	// when its serialization completes (its slice of busyUntil), NOT when it
	// is delivered at the far end: bytes flying through the propagation pipe
	// do not occupy the serializer queue, exactly as in tc-netem's
	// rate-then-delay pipeline. Entries are reaped lazily (on Send and
	// QueuedBytes) so the delivery event stream is untouched. pendHead
	// indexes the first live entry; the ring is recycled in place.
	pending  []pendingTx
	pendHead int

	// free holds recycled delivery nodes; together with the scheduler's
	// pooled events this makes the per-frame path allocation-free.
	free []*delivery

	// deliverSite labels delivery events for the virtual-time profiler;
	// interned once at construction so the per-frame path stays map-free.
	deliverSite simtime.SiteID

	// lnJitter caches log(JitterMs) for the per-frame lognormal draw.
	lnJitter float64

	stats LinkStats
}

// pendingTx is one queued frame's claim on the drop-tail queue: size bytes
// are released once the virtual clock passes done.
type pendingTx struct {
	done simtime.Time
	size int
}

// reapPending releases the bytes of every queued frame whose serialization
// has completed by now. busyUntil only moves forward, so pending is sorted
// by completion time and the scan stops at the first live entry.
func (l *Link) reapPending(now simtime.Time) {
	h := l.pendHead
	for h < len(l.pending) && l.pending[h].done <= now {
		l.queued -= l.pending[h].size
		h++
	}
	if h == len(l.pending) {
		l.pending = l.pending[:0]
		h = 0
	} else if h > 64 && 2*h >= len(l.pending) {
		// Compact occasionally so the ring does not creep forever.
		n := copy(l.pending, l.pending[h:])
		l.pending = l.pending[:n]
		h = 0
	}
	l.pendHead = h
}

// delivery is the pooled in-flight state of one frame: what the link needs
// when the propagation timer fires. It replaces a per-frame closure.
type delivery struct {
	l *Link
	f Frame
}

func (l *Link) getDelivery() *delivery {
	if n := len(l.free) - 1; n >= 0 {
		d := l.free[n]
		l.free[n] = nil
		l.free = l.free[:n]
		return d
	}
	return &delivery{l: l}
}

// deliverFn is the package-level AtArg trampoline for frame delivery.
func deliverFn(a any) {
	d := a.(*delivery)
	l := d.l
	l.stats.DeliveredFrames++
	l.stats.DeliveredB += int64(d.f.Size)
	l.tap(d.f, Egress)
	if l.tr != nil {
		l.tr.NetemDeliver(l.sched.Now(), l.cfg.Name, d.f.Size)
	}
	if l.handler != nil {
		l.handler(l.sched.Now(), d.f)
	}
	d.f = Frame{}
	l.free = append(l.free, d)
}

// LinkStats counts traffic over the life of a link.
type LinkStats struct {
	SentFrames, SentBytes       int64
	DeliveredFrames, DeliveredB int64
	DroppedQueue, DroppedLoss   int64
	// DroppedBurst counts frames lost to the shaper's Gilbert-Elliott burst
	// model (a subset of total losses, tracked separately from the
	// independent DroppedLoss coin flips).
	DroppedBurst int64
}

// NewLink creates a link driven by sched. rng may not be nil.
func NewLink(sched *simtime.Scheduler, rng *simrand.Source, cfg Config) *Link {
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = 256 << 10
	}
	// Inverted comparisons so NaN (which fails every ordered comparison)
	// counts as invalid rather than slipping through.
	if !(cfg.DelayMs >= 0) || !(cfg.RateBps >= 0) || !(cfg.JitterMs >= 0) || cfg.QueueBytes < 0 ||
		!(cfg.LossProb >= 0 && cfg.LossProb <= 1) ||
		!(cfg.ReorderProb >= 0 && cfg.ReorderProb <= 1) {
		panic(fmt.Sprintf("netem: invalid config %+v", cfg))
	}
	l := &Link{cfg: cfg, sched: sched, rng: rng, deliverSite: sched.Site("netem.deliver")}
	if cfg.JitterMs > 0 {
		l.lnJitter = math.Log(cfg.JitterMs)
	}
	return l
}

// SetHandler installs the far-end receiver.
func (l *Link) SetHandler(h Handler) { l.handler = h }

// AddTap registers an observer for frames on this link.
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// SetTracer attaches a telemetry tracer (nil detaches). Unlike taps, the
// tracer emits typed events — enqueue/drop/deliver per frame plus
// Gilbert-Elliott state transitions — and costs exactly one pointer test
// per frame when nil.
func (l *Link) SetTracer(tr *telemetry.Tracer) { l.tr = tr }

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Name returns the configured link name.
func (l *Link) Name() string { return l.cfg.Name }

// Shaper returns the tc-like impairment stage attached to this link,
// creating it on first use.
func (l *Link) Shaper() *Shaper {
	if l.shaper == nil {
		l.shaper = &Shaper{}
	}
	return l.shaper
}

func (l *Link) tap(f Frame, dir Direction) {
	for _, t := range l.taps {
		t(l.sched.Now(), f, dir)
	}
}

// Send enqueues a frame. It returns false if the frame was dropped at entry
// (queue overflow or random loss); delivery itself is asynchronous.
func (l *Link) Send(f Frame) bool {
	if f.Size <= 0 {
		f.Size = len(f.Payload)
	}
	if f.Size <= 0 {
		f.Size = 1
	}
	now := l.sched.Now()
	l.stats.SentFrames++
	l.stats.SentBytes += int64(f.Size)
	l.tap(f, Ingress)

	// Release queue bytes whose serialization has completed; must happen
	// before the drop-tail admission check below sees l.queued.
	l.reapPending(now)

	// Reject invalid shaper values before they skew the experiment. The
	// fast path is a few branch-predictable comparisons (shaper fields are
	// public and mutable at any time, so there is no programming point to
	// validate at instead); the descriptive error is built only on failure.
	sh := l.shaper
	if sh != nil && (!(sh.ExtraDelayMs >= 0) || !(sh.RateBps >= 0) ||
		!(sh.LossProb >= 0 && sh.LossProb <= 1) ||
		(sh.Burst != nil && !sh.Burst.valid())) {
		panic("netem: " + sh.Validate().Error())
	}

	// Shaper-imposed random loss (tc netem loss).
	if sh != nil && sh.LossProb > 0 && l.rng.Bernoulli(sh.LossProb) {
		l.stats.DroppedLoss++
		l.tap(f, Dropped)
		if l.tr != nil {
			l.tr.NetemDrop(now, l.cfg.Name, f.Size, "loss")
		}
		return false
	}
	// Shaper-imposed burst loss (Gilbert-Elliott two-state model).
	if sh != nil && sh.Burst != nil {
		wasBad := sh.Burst.bad
		lost := sh.Burst.drop(l.rng)
		if l.tr != nil && sh.Burst.bad != wasBad {
			l.tr.NetemGEState(now, l.cfg.Name, sh.Burst.bad)
		}
		if lost {
			l.stats.DroppedLoss++
			l.stats.DroppedBurst++
			l.tap(f, Dropped)
			if l.tr != nil {
				l.tr.NetemDrop(now, l.cfg.Name, f.Size, "burst")
			}
			return false
		}
	}
	// Intrinsic random loss.
	if l.cfg.LossProb > 0 && l.rng.Bernoulli(l.cfg.LossProb) {
		l.stats.DroppedLoss++
		l.tap(f, Dropped)
		if l.tr != nil {
			l.tr.NetemDrop(now, l.cfg.Name, f.Size, "loss")
		}
		return false
	}

	// Effective rate: the slower of the link rate and the shaper cap. The
	// rate is sampled when the frame is accepted: a mid-backlog rate change
	// applies to subsequently sent frames only, while frames already
	// admitted keep the serialization schedule computed at admission (see
	// Shaper.RateBps for the contract).
	rate := l.cfg.RateBps
	if sh != nil && sh.RateBps > 0 && (rate == 0 || sh.RateBps < rate) {
		rate = sh.RateBps
	}

	txDone := now
	if rate == 0 && l.busyUntil > now {
		// The cap was lifted while a capped-era backlog is still in
		// service. The serializer is FIFO: an uncapped frame serializes in
		// zero time but still departs after the backlog drains — it must
		// never overtake frames admitted before it.
		txDone = l.busyUntil
	}
	if rate > 0 {
		queued := l.busyUntil > now
		if queued {
			// Serializer busy: the frame queues.
			if l.queued+f.Size > l.cfg.QueueBytes {
				l.stats.DroppedQueue++
				l.tap(f, Dropped)
				if l.tr != nil {
					l.tr.NetemDrop(now, l.cfg.Name, f.Size, "queue")
				}
				return false
			}
			l.queued += f.Size
			txDone = l.busyUntil
		}
		ser := simtime.Duration(float64(f.Size*8) / rate * float64(simtime.Second))
		txDone = txDone.Add(ser)
		l.busyUntil = txDone
		if queued {
			// The frame's bytes leave the queue when its serialization
			// completes; reapPending releases them once the clock passes
			// txDone.
			l.pending = append(l.pending, pendingTx{done: txDone, size: f.Size})
		}
	}

	delay := simtime.Duration(l.cfg.DelayMs * float64(simtime.Millisecond))
	if sh != nil && sh.ExtraDelayMs > 0 {
		delay += simtime.Duration(sh.ExtraDelayMs * float64(simtime.Millisecond))
	}
	if l.cfg.JitterMs > 0 {
		j := l.rng.LogNormal(l.lnJitter, 0.5)
		delay += simtime.Duration(j * float64(simtime.Millisecond))
	}
	if l.cfg.ReorderProb > 0 && l.rng.Bernoulli(l.cfg.ReorderProb) {
		delay += simtime.Duration(l.rng.Uniform(0, 2*l.cfg.DelayMs+1) * float64(simtime.Millisecond))
	}

	d := l.getDelivery()
	d.f = f
	l.sched.AtArgSite(txDone.Add(delay), deliverFn, d, l.deliverSite)
	if l.tr != nil {
		// queue is the occupancy gauge after admission; tx_ms is when the
		// serializer finishes this frame.
		l.tr.NetemEnqueue(now, l.cfg.Name, f.Size, l.queued, txDone.Milliseconds())
	}
	return true
}

// QueuedBytes reports the bytes currently occupying the serializer's
// drop-tail queue: frames admitted but whose serialization has not yet
// completed. Bytes in the propagation pipe (serialized, in flight) do not
// count.
func (l *Link) QueuedBytes() int {
	l.reapPending(l.sched.Now())
	return l.queued
}

// Shaper is the mutable impairment stage of a link — the simulation's stand-
// in for Linux tc (§4.3: "We use Linux tc to introduce extra network delays
// ranging from 0 to 1,000 ms" and "to constrain the bandwidth"). Fields may
// be changed at any time and apply to subsequently sent frames. Invalid
// field values (negative delays or rates, probabilities outside [0,1]) are
// rejected: Validate reports them, and Send panics on them, so a broken
// schedule cannot silently skew an experiment.
type Shaper struct {
	// ExtraDelayMs adds fixed one-way delay.
	ExtraDelayMs float64
	// RateBps caps throughput (0 = uncapped). The cap is sampled when a
	// frame is accepted by the serializer: changing it mid-backlog applies
	// to subsequently sent frames, while already-admitted frames keep the
	// serialization schedule computed at admission (the fluid-model
	// equivalent of tc swapping a token-bucket rate under a live qdisc).
	RateBps float64
	// LossProb drops frames independently with this probability.
	LossProb float64
	// Burst, when non-nil, applies two-state Gilbert-Elliott burst loss on
	// top of LossProb. The model's Markov state lives in the struct, so one
	// Burst instance must not be shared between links.
	Burst *GilbertElliott
}

// Clear removes all impairments.
func (s *Shaper) Clear() { *s = Shaper{} }

// Validate reports whether every shaper field is a legal impairment value.
// Comparisons are inverted so NaN counts as invalid.
func (s *Shaper) Validate() error {
	if !(s.ExtraDelayMs >= 0) {
		return fmt.Errorf("shaper: invalid ExtraDelayMs %v", s.ExtraDelayMs)
	}
	if !(s.RateBps >= 0) {
		return fmt.Errorf("shaper: invalid RateBps %v", s.RateBps)
	}
	if !(s.LossProb >= 0 && s.LossProb <= 1) {
		return fmt.Errorf("shaper: LossProb %v outside [0,1]", s.LossProb)
	}
	if s.Burst != nil {
		return s.Burst.Validate()
	}
	return nil
}

// GilbertElliott is the classic two-state Markov burst-loss model: the
// channel alternates between a Good and a Bad state, with independent loss
// probabilities in each. Per transmitted frame the chain first takes one
// transition step, then draws the loss coin of the resulting state. Mean
// burst (Bad-state dwell) length is 1/BadToGood frames; stationary loss is
// pB*LossBad + pG*LossGood with pB = GoodToBad/(GoodToBad+BadToGood).
//
// The zero value never transitions out of Good and never drops (with
// LossGood 0). The struct carries the chain's current state, so instances
// must not be shared between links.
type GilbertElliott struct {
	// GoodToBad is the per-frame probability of entering the Bad state.
	GoodToBad float64
	// BadToGood is the per-frame probability of leaving the Bad state.
	BadToGood float64
	// LossGood is the loss probability while Good (usually 0 or tiny).
	LossGood float64
	// LossBad is the loss probability while Bad (usually near 1).
	LossBad float64

	bad bool // current chain state
}

// NewGilbertElliott builds the common reduced model: loss-free Good state,
// lossBad losses while Bad.
func NewGilbertElliott(goodToBad, badToGood, lossBad float64) *GilbertElliott {
	return &GilbertElliott{GoodToBad: goodToBad, BadToGood: badToGood, LossBad: lossBad}
}

// valid is the branch-only probability-range check Send uses per frame;
// NaN fails every comparison and so counts as invalid.
func (g *GilbertElliott) valid() bool {
	return g.GoodToBad >= 0 && g.GoodToBad <= 1 &&
		g.BadToGood >= 0 && g.BadToGood <= 1 &&
		g.LossGood >= 0 && g.LossGood <= 1 &&
		g.LossBad >= 0 && g.LossBad <= 1
}

// Validate checks that all four chain parameters are probabilities (NaN is
// invalid).
func (g *GilbertElliott) Validate() error {
	for _, p := range [...]struct {
		name string
		v    float64
	}{
		{"GoodToBad", g.GoodToBad}, {"BadToGood", g.BadToGood},
		{"LossGood", g.LossGood}, {"LossBad", g.LossBad},
	} {
		if !(p.v >= 0 && p.v <= 1) {
			return fmt.Errorf("gilbert-elliott: %s %v outside [0,1]", p.name, p.v)
		}
	}
	return nil
}

// InBadState reports the chain's current state (for tests and probes).
func (g *GilbertElliott) InBadState() bool { return g.bad }

// Reset returns the chain to the Good state.
func (g *GilbertElliott) Reset() { g.bad = false }

// drop advances the chain one frame and reports whether that frame is lost.
func (g *GilbertElliott) drop(rng *simrand.Source) bool {
	if g.bad {
		if g.BadToGood > 0 && rng.Bernoulli(g.BadToGood) {
			g.bad = false
		}
	} else {
		if g.GoodToBad > 0 && rng.Bernoulli(g.GoodToBad) {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return p > 0 && rng.Bernoulli(p)
}

// Pipe is a bidirectional pair of links between two named endpoints.
type Pipe struct {
	AB, BA *Link
}

// NewPipe builds two symmetric links using cfg (Name gets a direction
// suffix).
func NewPipe(sched *simtime.Scheduler, rng *simrand.Source, cfg Config) *Pipe {
	ab, ba := cfg, cfg
	ab.Name = cfg.Name + "/ab"
	ba.Name = cfg.Name + "/ba"
	return &Pipe{
		AB: NewLink(sched, rng.Split(ab.Name), ab),
		BA: NewLink(sched, rng.Split(ba.Name), ba),
	}
}
