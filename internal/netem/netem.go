// Package netem emulates network paths for the simulation: unidirectional
// links with propagation delay, finite transmission rate, drop-tail queues,
// random loss, and jitter, plus a mutable Shaper that plays the role of
// Linux tc in the paper's delay-injection (§4.3) and bandwidth-cap
// experiments.
//
// The emulation is event-driven on a simtime.Scheduler and models a link as
// a serializer (rate) feeding a propagation pipe (delay): exactly the fluid
// model tc-netem implements.
package netem

import (
	"fmt"
	"math"

	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
)

// Frame is the unit transferred across links. Size is the virtual wire size
// in bytes and is authoritative for serialization and throughput accounting;
// Payload carries protocol bytes and may be shorter than Size when headers
// or padding are modeled but not materialized.
type Frame struct {
	Src, Dst string
	Size     int
	Payload  []byte
}

// Handler receives frames that survive a link.
type Handler func(now simtime.Time, f Frame)

// Direction tags tapped frames.
type Direction int

// Tap directions.
const (
	Ingress Direction = iota // frame entering the link (pre-queue)
	Egress                   // frame delivered at the far end
	Dropped                  // frame lost to queue overflow or random loss
)

func (d Direction) String() string {
	switch d {
	case Ingress:
		return "ingress"
	case Egress:
		return "egress"
	case Dropped:
		return "dropped"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Tap observes frames traversing a link; the capture package uses taps to
// implement the paper's Wireshark-on-the-AP methodology.
type Tap func(now simtime.Time, f Frame, dir Direction)

// Config describes a unidirectional link.
type Config struct {
	// Name identifies the link in captures and error messages.
	Name string
	// DelayMs is the one-way propagation delay in milliseconds.
	DelayMs float64
	// JitterMs adds lognormal-ish positive jitter to each frame (0 = none).
	JitterMs float64
	// RateBps is the transmission rate in bits per second (0 = infinite).
	RateBps float64
	// QueueBytes bounds the serializer's drop-tail queue (0 = a sensible
	// default of 256 KiB when the rate is finite).
	QueueBytes int
	// LossProb drops each frame independently with this probability.
	LossProb float64
	// ReorderProb, when >0, delivers a frame with an extra random delay,
	// modeling occasional out-of-order arrival.
	ReorderProb float64
}

// Link is a unidirectional emulated path. Create with NewLink; attach the
// receiver with SetHandler.
type Link struct {
	cfg     Config
	sched   *simtime.Scheduler
	rng     *simrand.Source
	handler Handler
	taps    []Tap
	shaper  *Shaper

	// busyUntil is when the serializer finishes the current backlog.
	busyUntil simtime.Time
	queued    int // bytes currently in the serializer queue

	// free holds recycled delivery nodes; together with the scheduler's
	// pooled events this makes the per-frame path allocation-free.
	free []*delivery

	// lnJitter caches log(JitterMs) for the per-frame lognormal draw.
	lnJitter float64

	stats LinkStats
}

// delivery is the pooled in-flight state of one frame: what the link needs
// when the propagation timer fires. It replaces a per-frame closure.
type delivery struct {
	l *Link
	f Frame
	// counted records whether this frame incremented the serializer queue,
	// so the decrement on delivery is exact (frames transmitted straight
	// from an idle serializer never queue).
	counted bool
}

func (l *Link) getDelivery() *delivery {
	if n := len(l.free) - 1; n >= 0 {
		d := l.free[n]
		l.free[n] = nil
		l.free = l.free[:n]
		return d
	}
	return &delivery{l: l}
}

// deliverFn is the package-level AtArg trampoline for frame delivery.
func deliverFn(a any) {
	d := a.(*delivery)
	l := d.l
	if d.counted {
		l.queued -= d.f.Size
	}
	l.stats.DeliveredFrames++
	l.stats.DeliveredB += int64(d.f.Size)
	l.tap(d.f, Egress)
	if l.handler != nil {
		l.handler(l.sched.Now(), d.f)
	}
	d.f = Frame{}
	d.counted = false
	l.free = append(l.free, d)
}

// LinkStats counts traffic over the life of a link.
type LinkStats struct {
	SentFrames, SentBytes       int64
	DeliveredFrames, DeliveredB int64
	DroppedQueue, DroppedLoss   int64
}

// NewLink creates a link driven by sched. rng may not be nil.
func NewLink(sched *simtime.Scheduler, rng *simrand.Source, cfg Config) *Link {
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = 256 << 10
	}
	if cfg.DelayMs < 0 || cfg.RateBps < 0 || cfg.LossProb < 0 || cfg.LossProb > 1 {
		panic(fmt.Sprintf("netem: invalid config %+v", cfg))
	}
	l := &Link{cfg: cfg, sched: sched, rng: rng}
	if cfg.JitterMs > 0 {
		l.lnJitter = math.Log(cfg.JitterMs)
	}
	return l
}

// SetHandler installs the far-end receiver.
func (l *Link) SetHandler(h Handler) { l.handler = h }

// AddTap registers an observer for frames on this link.
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Name returns the configured link name.
func (l *Link) Name() string { return l.cfg.Name }

// Shaper returns the tc-like impairment stage attached to this link,
// creating it on first use.
func (l *Link) Shaper() *Shaper {
	if l.shaper == nil {
		l.shaper = &Shaper{}
	}
	return l.shaper
}

func (l *Link) tap(f Frame, dir Direction) {
	for _, t := range l.taps {
		t(l.sched.Now(), f, dir)
	}
}

// Send enqueues a frame. It returns false if the frame was dropped at entry
// (queue overflow or random loss); delivery itself is asynchronous.
func (l *Link) Send(f Frame) bool {
	if f.Size <= 0 {
		f.Size = len(f.Payload)
	}
	if f.Size <= 0 {
		f.Size = 1
	}
	now := l.sched.Now()
	l.stats.SentFrames++
	l.stats.SentBytes += int64(f.Size)
	l.tap(f, Ingress)

	// Shaper-imposed random loss (tc netem loss).
	if sh := l.shaper; sh != nil && sh.LossProb > 0 && l.rng.Bernoulli(sh.LossProb) {
		l.stats.DroppedLoss++
		l.tap(f, Dropped)
		return false
	}
	// Intrinsic random loss.
	if l.cfg.LossProb > 0 && l.rng.Bernoulli(l.cfg.LossProb) {
		l.stats.DroppedLoss++
		l.tap(f, Dropped)
		return false
	}

	// Effective rate: the slower of the link rate and the shaper cap.
	rate := l.cfg.RateBps
	if sh := l.shaper; sh != nil && sh.RateBps > 0 && (rate == 0 || sh.RateBps < rate) {
		rate = sh.RateBps
	}

	txDone := now
	counted := false
	if rate > 0 {
		if l.busyUntil > now {
			// Serializer busy: the frame queues.
			if l.queued+f.Size > l.cfg.QueueBytes {
				l.stats.DroppedQueue++
				l.tap(f, Dropped)
				return false
			}
			l.queued += f.Size
			counted = true
			txDone = l.busyUntil
		}
		ser := simtime.Duration(float64(f.Size*8) / rate * float64(simtime.Second))
		txDone = txDone.Add(ser)
		l.busyUntil = txDone
	}

	delay := simtime.Duration(l.cfg.DelayMs * float64(simtime.Millisecond))
	if sh := l.shaper; sh != nil && sh.ExtraDelayMs > 0 {
		delay += simtime.Duration(sh.ExtraDelayMs * float64(simtime.Millisecond))
	}
	if l.cfg.JitterMs > 0 {
		j := l.rng.LogNormal(l.lnJitter, 0.5)
		delay += simtime.Duration(j * float64(simtime.Millisecond))
	}
	if l.cfg.ReorderProb > 0 && l.rng.Bernoulli(l.cfg.ReorderProb) {
		delay += simtime.Duration(l.rng.Uniform(0, 2*l.cfg.DelayMs+1) * float64(simtime.Millisecond))
	}

	d := l.getDelivery()
	d.f = f
	d.counted = counted
	l.sched.AtArg(txDone.Add(delay), deliverFn, d)
	return true
}

// QueuedBytes reports the bytes waiting in the serializer queue.
func (l *Link) QueuedBytes() int { return l.queued }

// Shaper is the mutable impairment stage of a link — the simulation's stand-
// in for Linux tc (§4.3: "We use Linux tc to introduce extra network delays
// ranging from 0 to 1,000 ms" and "to constrain the bandwidth"). Fields may
// be changed at any time and apply to subsequently sent frames.
type Shaper struct {
	// ExtraDelayMs adds fixed one-way delay.
	ExtraDelayMs float64
	// RateBps caps throughput (0 = uncapped).
	RateBps float64
	// LossProb drops frames with this probability.
	LossProb float64
}

// Clear removes all impairments.
func (s *Shaper) Clear() { *s = Shaper{} }

// Pipe is a bidirectional pair of links between two named endpoints.
type Pipe struct {
	AB, BA *Link
}

// NewPipe builds two symmetric links using cfg (Name gets a direction
// suffix).
func NewPipe(sched *simtime.Scheduler, rng *simrand.Source, cfg Config) *Pipe {
	ab, ba := cfg, cfg
	ab.Name = cfg.Name + "/ab"
	ba.Name = cfg.Name + "/ba"
	return &Pipe{
		AB: NewLink(sched, rng.Split(ab.Name), ab),
		BA: NewLink(sched, rng.Split(ba.Name), ba),
	}
}
