package netem

import (
	"bytes"
	"io"
	"testing"

	"telepresence/internal/simtime"
	"telepresence/internal/telemetry"
)

// TestTracerSendPathAllocs pins the telemetry cost contract on the link
// hot path from both sides: with no tracer (the default) the send path
// stays allocation-free exactly as TestSendDeliverySteadyStateAllocs pins,
// and with a tracer ATTACHED it must stay allocation-free too — the tracer
// reuses one line buffer and every emitter takes scalars only.
func TestTracerSendPathAllocs(t *testing.T) {
	run := func(name string, tr *telemetry.Tracer) {
		s, l := newLink(t, Config{Name: name, DelayMs: 1, RateBps: 1e8, JitterMs: 0.3})
		l.SetHandler(func(simtime.Time, Frame) {})
		l.SetTracer(tr)
		payload := make([]byte, 200)
		for i := 0; i < 10; i++ { // warm pools and the tracer's line buffer
			l.Send(Frame{Size: 1000, Payload: payload})
		}
		s.Run()
		allocs := testing.AllocsPerRun(200, func() {
			l.Send(Frame{Size: 1000, Payload: payload})
			s.Run()
		})
		if allocs > 0 {
			t.Errorf("%s: Send+delivery allocates %.1f per frame, want 0", name, allocs)
		}
	}
	run("untraced", nil)
	run("traced", telemetry.NewTracer(io.Discard))
}

// TestTracerEmitsLinkEvents drives every netem event through a traced
// link and checks the trace validates and accounts for every frame fate.
func TestTracerEmitsLinkEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf)

	s, l := newLink(t, Config{Name: "lossy", DelayMs: 1, RateBps: 1e6, QueueBytes: 2000})
	l.SetHandler(func(simtime.Time, Frame) {})
	l.SetTracer(tr)
	sh := l.Shaper()
	sh.Burst = NewGilbertElliott(0.3, 0.3, 1) // loss_bad=1: bad state always drops
	for i := 0; i < 400; i++ {
		l.Send(Frame{Size: 1000})
		if i%4 == 3 {
			s.Run() // drain periodically so the queue also overflows sometimes
		}
	}
	s.Run()

	sum, err := telemetry.Summarize(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	lk := sum.Links["lossy"]
	if lk == nil {
		t.Fatal("no summary for link")
	}
	st := l.Stats()
	// DroppedBurst is a subset of DroppedLoss in LinkStats; the trace splits
	// them into distinct kinds.
	if lk.Enqueued != st.SentFrames-st.DroppedLoss-st.DroppedQueue {
		t.Errorf("enqueued %d != sent-dropped %d", lk.Enqueued,
			st.SentFrames-st.DroppedLoss-st.DroppedQueue)
	}
	if lk.Delivered != st.DeliveredFrames {
		t.Errorf("delivered: trace %d, stats %d", lk.Delivered, st.DeliveredFrames)
	}
	if lk.DropBurst != st.DroppedBurst || lk.DropQueue != st.DroppedQueue ||
		lk.DropLoss != st.DroppedLoss-st.DroppedBurst {
		t.Errorf("drops: trace loss=%d burst=%d queue=%d, stats loss=%d burst=%d queue=%d",
			lk.DropLoss, lk.DropBurst, lk.DropQueue, st.DroppedLoss, st.DroppedBurst, st.DroppedQueue)
	}
	if lk.DropBurst == 0 || lk.DropQueue == 0 {
		t.Errorf("test did not exercise both drop kinds (burst=%d queue=%d)", lk.DropBurst, lk.DropQueue)
	}
	if lk.GEBadEntries == 0 {
		t.Error("no Gilbert-Elliott bad-state transitions traced")
	}
	if lk.MaxQueueBytes == 0 {
		t.Error("queue gauge never rose above zero")
	}
}

// TestTracerIntrinsicLossKind pins the drop-kind taxonomy: config-level
// random loss traces as kind "loss", distinct from burst and queue.
func TestTracerIntrinsicLossKind(t *testing.T) {
	var buf bytes.Buffer
	s, l := newLink(t, Config{Name: "l", LossProb: 0.5})
	l.SetHandler(func(simtime.Time, Frame) {})
	l.SetTracer(telemetry.NewTracer(&buf))
	for i := 0; i < 100; i++ {
		l.Send(Frame{Size: 100})
	}
	s.Run()
	sum, err := telemetry.Summarize(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lk := sum.Links["l"]
	if lk.DropLoss != l.Stats().DroppedLoss {
		t.Errorf("loss drops: trace %d, stats %d", lk.DropLoss, l.Stats().DroppedLoss)
	}
	if lk.DropLoss == 0 || lk.DropBurst != 0 || lk.DropQueue != 0 {
		t.Errorf("unexpected drop mix %+v", *lk)
	}
}
