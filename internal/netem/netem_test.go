package netem

import (
	"testing"

	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
)

func newLink(t *testing.T, cfg Config) (*simtime.Scheduler, *Link) {
	t.Helper()
	s := simtime.NewScheduler()
	return s, NewLink(s, simrand.New(1), cfg)
}

func TestPropagationDelay(t *testing.T) {
	s, l := newLink(t, Config{DelayMs: 25})
	var at simtime.Time
	l.SetHandler(func(now simtime.Time, f Frame) { at = now })
	l.Send(Frame{Size: 100})
	s.Run()
	if want := simtime.Time(25 * simtime.Millisecond); at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestSerializationDelay(t *testing.T) {
	// 8000-bit frame at 1 Mbps = 8 ms serialization.
	s, l := newLink(t, Config{RateBps: 1e6})
	var at simtime.Time
	l.SetHandler(func(now simtime.Time, f Frame) { at = now })
	l.Send(Frame{Size: 1000})
	s.Run()
	if want := simtime.Time(8 * simtime.Millisecond); at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestQueueingBackToBack(t *testing.T) {
	// Two frames sent simultaneously at 1 Mbps: second waits for first.
	s, l := newLink(t, Config{RateBps: 1e6})
	var times []simtime.Time
	l.SetHandler(func(now simtime.Time, f Frame) { times = append(times, now) })
	l.Send(Frame{Size: 1000})
	l.Send(Frame{Size: 1000})
	s.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(times))
	}
	if times[0] != simtime.Time(8*simtime.Millisecond) || times[1] != simtime.Time(16*simtime.Millisecond) {
		t.Errorf("delivery times %v, want [8ms 16ms]", times)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s, l := newLink(t, Config{RateBps: 1e6, QueueBytes: 1500})
	delivered := 0
	l.SetHandler(func(simtime.Time, Frame) { delivered++ })
	sent := 0
	for i := 0; i < 10; i++ {
		if l.Send(Frame{Size: 1000}) {
			sent++
		}
	}
	s.Run()
	// First frame transmits immediately; one more fits in the 1500 B queue.
	if sent != 2 {
		t.Errorf("accepted %d frames, want 2", sent)
	}
	if delivered != sent {
		t.Errorf("delivered %d, want %d", delivered, sent)
	}
	if got := l.Stats().DroppedQueue; got != 8 {
		t.Errorf("DroppedQueue = %d, want 8", got)
	}
}

func TestQueueDrainsOverTime(t *testing.T) {
	s, l := newLink(t, Config{RateBps: 1e6, QueueBytes: 4000})
	delivered := 0
	l.SetHandler(func(simtime.Time, Frame) { delivered++ })
	// Send 1000-byte frames at exactly link rate: all should survive.
	for i := 0; i < 50; i++ {
		i := i
		s.At(simtime.Time(i*8*int(simtime.Millisecond)), func() {
			_ = i
			l.Send(Frame{Size: 1000})
		})
	}
	s.Run()
	if delivered != 50 {
		t.Errorf("delivered %d/50 at exactly link rate", delivered)
	}
	if l.QueuedBytes() != 0 {
		t.Errorf("queue not drained: %d bytes", l.QueuedBytes())
	}
}

func TestRandomLoss(t *testing.T) {
	s, l := newLink(t, Config{LossProb: 0.3})
	delivered := 0
	l.SetHandler(func(simtime.Time, Frame) { delivered++ })
	const n = 20000
	for i := 0; i < n; i++ {
		l.Send(Frame{Size: 100})
	}
	s.Run()
	rate := float64(n-delivered) / n
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("loss rate = %.3f, want ~0.30", rate)
	}
	st := l.Stats()
	if st.DroppedLoss+int64(delivered) != n {
		t.Errorf("accounting mismatch: %d lost + %d delivered != %d", st.DroppedLoss, delivered, n)
	}
}

func TestShaperExtraDelay(t *testing.T) {
	// The paper's tc experiment: add up to 1000 ms of delay mid-session.
	s, l := newLink(t, Config{DelayMs: 10})
	var times []simtime.Time
	l.SetHandler(func(now simtime.Time, f Frame) { times = append(times, now) })
	l.Send(Frame{Size: 100})
	s.Run()
	l.Shaper().ExtraDelayMs = 1000
	l.Send(Frame{Size: 100})
	s.Run()
	if times[0] != simtime.Time(10*simtime.Millisecond) {
		t.Errorf("unshaped delivery at %v", times[0])
	}
	want := times[0].Add(1010 * simtime.Millisecond)
	if times[1] != want {
		t.Errorf("shaped delivery at %v, want %v", times[1], want)
	}
}

func TestShaperRateCap(t *testing.T) {
	s, l := newLink(t, Config{}) // infinite intrinsic rate
	l.Shaper().RateBps = 0.7e6   // the paper's 0.7 Mbps uplink cap
	var last simtime.Time
	n := 0
	l.SetHandler(func(now simtime.Time, f Frame) { last, n = now, n+1 })
	// 1 Mbps offered load for 1 second: 125 frames of 1000 B.
	for i := 0; i < 125; i++ {
		i := i
		s.At(simtime.Time(i*8*int(simtime.Millisecond)), func() { l.Send(Frame{Size: 1000}) })
	}
	s.RunFor(5 * simtime.Second)
	if n == 0 {
		t.Fatal("nothing delivered")
	}
	gotRate := float64(n*1000*8) / last.Seconds()
	if gotRate > 0.72e6 {
		t.Errorf("delivered rate %.0f bps exceeds 0.7 Mbps cap", gotRate)
	}
}

func TestShaperClear(t *testing.T) {
	s, l := newLink(t, Config{DelayMs: 5})
	l.Shaper().ExtraDelayMs = 500
	l.Shaper().Clear()
	var at simtime.Time
	l.SetHandler(func(now simtime.Time, f Frame) { at = now })
	l.Send(Frame{Size: 10})
	s.Run()
	if at != simtime.Time(5*simtime.Millisecond) {
		t.Errorf("delivery after Clear at %v, want 5ms", at)
	}
}

func TestTapsSeeAllDirections(t *testing.T) {
	s, l := newLink(t, Config{LossProb: 1})
	var dirs []Direction
	l.AddTap(func(_ simtime.Time, _ Frame, d Direction) { dirs = append(dirs, d) })
	l.Send(Frame{Size: 10})
	s.Run()
	if len(dirs) != 2 || dirs[0] != Ingress || dirs[1] != Dropped {
		t.Errorf("tap saw %v, want [ingress dropped]", dirs)
	}
}

func TestZeroSizeFrameNormalized(t *testing.T) {
	s, l := newLink(t, Config{})
	var got Frame
	l.SetHandler(func(_ simtime.Time, f Frame) { got = f })
	l.Send(Frame{Payload: []byte("abcd")})
	s.Run()
	if got.Size != 4 {
		t.Errorf("Size = %d, want 4 (derived from payload)", got.Size)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay accepted")
		}
	}()
	NewLink(simtime.NewScheduler(), simrand.New(1), Config{DelayMs: -1})
}

func TestPipeIsBidirectional(t *testing.T) {
	s := simtime.NewScheduler()
	p := NewPipe(s, simrand.New(3), Config{Name: "wan", DelayMs: 30})
	gotAB, gotBA := false, false
	p.AB.SetHandler(func(simtime.Time, Frame) { gotAB = true })
	p.BA.SetHandler(func(simtime.Time, Frame) { gotBA = true })
	p.AB.Send(Frame{Size: 1})
	p.BA.Send(Frame{Size: 1})
	s.Run()
	if !gotAB || !gotBA {
		t.Errorf("pipe delivery ab=%v ba=%v", gotAB, gotBA)
	}
	if p.AB.Name() == p.BA.Name() {
		t.Error("pipe directions share a name")
	}
}

func TestDirectionString(t *testing.T) {
	if Ingress.String() != "ingress" || Egress.String() != "egress" || Dropped.String() != "dropped" {
		t.Error("direction strings wrong")
	}
	if Direction(42).String() == "" {
		t.Error("unknown direction should still format")
	}
}

func TestStatsAccounting(t *testing.T) {
	s, l := newLink(t, Config{})
	l.SetHandler(func(simtime.Time, Frame) {})
	for i := 0; i < 10; i++ {
		l.Send(Frame{Size: 500})
	}
	s.Run()
	st := l.Stats()
	if st.SentFrames != 10 || st.SentBytes != 5000 {
		t.Errorf("sent %d/%d, want 10/5000", st.SentFrames, st.SentBytes)
	}
	if st.DeliveredFrames != 10 || st.DeliveredB != 5000 {
		t.Errorf("delivered %d/%d, want 10/5000", st.DeliveredFrames, st.DeliveredB)
	}
}

// TestQueuedBytesExactAccounting is the regression test for the serializer
// accounting bug: a frame transmitted straight from an idle serializer never
// increments queued, but its delivery used to decrement queued anyway
// whenever enough genuinely queued bytes were present — silently stealing
// bytes from queued frames and under-enforcing QueueBytes.
func TestQueuedBytesExactAccounting(t *testing.T) {
	s, l := newLink(t, Config{RateBps: 1e6}) // 1000-byte frame = 8 ms serialization
	l.SetHandler(func(simtime.Time, Frame) {})
	// A transmits immediately (idle serializer, not queued); B and C queue.
	for i := 0; i < 3; i++ {
		if !l.Send(Frame{Size: 1000}) {
			t.Fatalf("send %d dropped", i)
		}
	}
	if got := l.QueuedBytes(); got != 2000 {
		t.Fatalf("after sends: QueuedBytes = %d, want 2000 (B+C)", got)
	}
	// After A delivers (~8 ms), the queue must still hold exactly B+C: A
	// was never queued, so its delivery must not decrement.
	s.RunFor(9 * simtime.Millisecond)
	if got := l.QueuedBytes(); got != 2000 {
		t.Fatalf("after A delivers: QueuedBytes = %d, want 2000 (bytes stolen from queued frames)", got)
	}
	s.RunFor(8 * simtime.Millisecond) // B delivered
	if got := l.QueuedBytes(); got != 1000 {
		t.Fatalf("after B delivers: QueuedBytes = %d, want 1000", got)
	}
	s.Run()
	if got := l.QueuedBytes(); got != 0 {
		t.Fatalf("after drain: QueuedBytes = %d, want 0", got)
	}
}

// TestSendDeliverySteadyStateAllocs pins the per-frame budget of the link
// hot path: pooled delivery nodes and pooled scheduler events make
// Send+delivery allocation-free, and regressions should fail tier-1 rather
// than only showing in benchmarks.
func TestSendDeliverySteadyStateAllocs(t *testing.T) {
	s, l := newLink(t, Config{DelayMs: 1, RateBps: 1e8, JitterMs: 0.3})
	l.SetHandler(func(simtime.Time, Frame) {})
	payload := make([]byte, 200)
	// Warm the pools.
	for i := 0; i < 10; i++ {
		l.Send(Frame{Size: 1000, Payload: payload})
	}
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		l.Send(Frame{Size: 1000, Payload: payload})
		s.Run()
	})
	if allocs > 0 {
		t.Errorf("Send+delivery allocates %.1f per frame, want 0", allocs)
	}
}
