package netem

import (
	"math"
	"testing"

	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
)

func newLink(t *testing.T, cfg Config) (*simtime.Scheduler, *Link) {
	t.Helper()
	s := simtime.NewScheduler()
	return s, NewLink(s, simrand.New(1), cfg)
}

func TestPropagationDelay(t *testing.T) {
	s, l := newLink(t, Config{DelayMs: 25})
	var at simtime.Time
	l.SetHandler(func(now simtime.Time, f Frame) { at = now })
	l.Send(Frame{Size: 100})
	s.Run()
	if want := simtime.Time(25 * simtime.Millisecond); at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestSerializationDelay(t *testing.T) {
	// 8000-bit frame at 1 Mbps = 8 ms serialization.
	s, l := newLink(t, Config{RateBps: 1e6})
	var at simtime.Time
	l.SetHandler(func(now simtime.Time, f Frame) { at = now })
	l.Send(Frame{Size: 1000})
	s.Run()
	if want := simtime.Time(8 * simtime.Millisecond); at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestQueueingBackToBack(t *testing.T) {
	// Two frames sent simultaneously at 1 Mbps: second waits for first.
	s, l := newLink(t, Config{RateBps: 1e6})
	var times []simtime.Time
	l.SetHandler(func(now simtime.Time, f Frame) { times = append(times, now) })
	l.Send(Frame{Size: 1000})
	l.Send(Frame{Size: 1000})
	s.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(times))
	}
	if times[0] != simtime.Time(8*simtime.Millisecond) || times[1] != simtime.Time(16*simtime.Millisecond) {
		t.Errorf("delivery times %v, want [8ms 16ms]", times)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s, l := newLink(t, Config{RateBps: 1e6, QueueBytes: 1500})
	delivered := 0
	l.SetHandler(func(simtime.Time, Frame) { delivered++ })
	sent := 0
	for i := 0; i < 10; i++ {
		if l.Send(Frame{Size: 1000}) {
			sent++
		}
	}
	s.Run()
	// First frame transmits immediately; one more fits in the 1500 B queue.
	if sent != 2 {
		t.Errorf("accepted %d frames, want 2", sent)
	}
	if delivered != sent {
		t.Errorf("delivered %d, want %d", delivered, sent)
	}
	if got := l.Stats().DroppedQueue; got != 8 {
		t.Errorf("DroppedQueue = %d, want 8", got)
	}
}

func TestQueueDrainsOverTime(t *testing.T) {
	s, l := newLink(t, Config{RateBps: 1e6, QueueBytes: 4000})
	delivered := 0
	l.SetHandler(func(simtime.Time, Frame) { delivered++ })
	// Send 1000-byte frames at exactly link rate: all should survive.
	for i := 0; i < 50; i++ {
		i := i
		s.At(simtime.Time(i*8*int(simtime.Millisecond)), func() {
			_ = i
			l.Send(Frame{Size: 1000})
		})
	}
	s.Run()
	if delivered != 50 {
		t.Errorf("delivered %d/50 at exactly link rate", delivered)
	}
	if l.QueuedBytes() != 0 {
		t.Errorf("queue not drained: %d bytes", l.QueuedBytes())
	}
}

func TestRandomLoss(t *testing.T) {
	s, l := newLink(t, Config{LossProb: 0.3})
	delivered := 0
	l.SetHandler(func(simtime.Time, Frame) { delivered++ })
	const n = 20000
	for i := 0; i < n; i++ {
		l.Send(Frame{Size: 100})
	}
	s.Run()
	rate := float64(n-delivered) / n
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("loss rate = %.3f, want ~0.30", rate)
	}
	st := l.Stats()
	if st.DroppedLoss+int64(delivered) != n {
		t.Errorf("accounting mismatch: %d lost + %d delivered != %d", st.DroppedLoss, delivered, n)
	}
}

func TestShaperExtraDelay(t *testing.T) {
	// The paper's tc experiment: add up to 1000 ms of delay mid-session.
	s, l := newLink(t, Config{DelayMs: 10})
	var times []simtime.Time
	l.SetHandler(func(now simtime.Time, f Frame) { times = append(times, now) })
	l.Send(Frame{Size: 100})
	s.Run()
	l.Shaper().ExtraDelayMs = 1000
	l.Send(Frame{Size: 100})
	s.Run()
	if times[0] != simtime.Time(10*simtime.Millisecond) {
		t.Errorf("unshaped delivery at %v", times[0])
	}
	want := times[0].Add(1010 * simtime.Millisecond)
	if times[1] != want {
		t.Errorf("shaped delivery at %v, want %v", times[1], want)
	}
}

func TestShaperRateCap(t *testing.T) {
	s, l := newLink(t, Config{}) // infinite intrinsic rate
	l.Shaper().RateBps = 0.7e6   // the paper's 0.7 Mbps uplink cap
	var last simtime.Time
	n := 0
	l.SetHandler(func(now simtime.Time, f Frame) { last, n = now, n+1 })
	// 1 Mbps offered load for 1 second: 125 frames of 1000 B.
	for i := 0; i < 125; i++ {
		i := i
		s.At(simtime.Time(i*8*int(simtime.Millisecond)), func() { l.Send(Frame{Size: 1000}) })
	}
	s.RunFor(5 * simtime.Second)
	if n == 0 {
		t.Fatal("nothing delivered")
	}
	gotRate := float64(n*1000*8) / last.Seconds()
	if gotRate > 0.72e6 {
		t.Errorf("delivered rate %.0f bps exceeds 0.7 Mbps cap", gotRate)
	}
}

func TestShaperClear(t *testing.T) {
	s, l := newLink(t, Config{DelayMs: 5})
	l.Shaper().ExtraDelayMs = 500
	l.Shaper().Clear()
	var at simtime.Time
	l.SetHandler(func(now simtime.Time, f Frame) { at = now })
	l.Send(Frame{Size: 10})
	s.Run()
	if at != simtime.Time(5*simtime.Millisecond) {
		t.Errorf("delivery after Clear at %v, want 5ms", at)
	}
}

func TestTapsSeeAllDirections(t *testing.T) {
	s, l := newLink(t, Config{LossProb: 1})
	var dirs []Direction
	l.AddTap(func(_ simtime.Time, _ Frame, d Direction) { dirs = append(dirs, d) })
	l.Send(Frame{Size: 10})
	s.Run()
	if len(dirs) != 2 || dirs[0] != Ingress || dirs[1] != Dropped {
		t.Errorf("tap saw %v, want [ingress dropped]", dirs)
	}
}

func TestZeroSizeFrameNormalized(t *testing.T) {
	s, l := newLink(t, Config{})
	var got Frame
	l.SetHandler(func(_ simtime.Time, f Frame) { got = f })
	l.Send(Frame{Payload: []byte("abcd")})
	s.Run()
	if got.Size != 4 {
		t.Errorf("Size = %d, want 4 (derived from payload)", got.Size)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	bad := []Config{
		{DelayMs: -1},
		{JitterMs: -0.5},
		{RateBps: -1e6},
		{QueueBytes: -1},
		{LossProb: -0.1},
		{LossProb: 1.5},
		{ReorderProb: -0.1},
		{ReorderProb: 1.01},
	}
	for _, cfg := range bad {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config accepted: %+v", cfg)
				}
			}()
			NewLink(simtime.NewScheduler(), simrand.New(1), cfg)
		}()
	}
}

func TestNaNRejectedEverywhere(t *testing.T) {
	// NaN fails every ordered comparison, so naive range checks let it
	// through; every validation entry point must treat it as invalid.
	nan := math.NaN()
	for _, cfg := range []Config{
		{DelayMs: nan}, {JitterMs: nan}, {RateBps: nan},
		{LossProb: nan}, {ReorderProb: nan},
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLink accepted NaN config %+v", cfg)
				}
			}()
			NewLink(simtime.NewScheduler(), simrand.New(1), cfg)
		}()
	}
	for _, s := range []Shaper{
		{ExtraDelayMs: nan}, {RateBps: nan}, {LossProb: nan},
		{Burst: &GilbertElliott{GoodToBad: nan}},
		{Burst: &GilbertElliott{LossBad: nan}},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("Shaper.Validate accepted NaN: %+v", s)
		}
	}
	s, l := newLink(t, Config{})
	l.Shaper().ExtraDelayMs = nan
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Send accepted a NaN shaper delay")
			}
		}()
		l.Send(Frame{Size: 10})
		s.Run()
	}()
}

func TestShaperValidate(t *testing.T) {
	ok := Shaper{ExtraDelayMs: 100, RateBps: 1e6, LossProb: 0.3,
		Burst: NewGilbertElliott(0.01, 0.2, 0.9)}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid shaper rejected: %v", err)
	}
	bad := []Shaper{
		{ExtraDelayMs: -1},
		{RateBps: -1},
		{LossProb: -0.01},
		{LossProb: 1.01},
		{Burst: &GilbertElliott{GoodToBad: 1.5}},
		{Burst: &GilbertElliott{BadToGood: -0.2}},
		{Burst: &GilbertElliott{LossBad: 2}},
		{Burst: &GilbertElliott{LossGood: -1}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid shaper accepted: %+v", s)
		}
	}
}

func TestSendPanicsOnInvalidShaper(t *testing.T) {
	s, l := newLink(t, Config{})
	l.Shaper().LossProb = 1.5
	defer func() {
		if recover() == nil {
			t.Fatal("Send accepted a shaper with LossProb 1.5")
		}
	}()
	l.Send(Frame{Size: 10})
	s.Run()
}

// TestQueueReleasedAtSerialization is the regression test for the
// queue-accounting bug on long-delay, rate-capped links (the §4.3 regime):
// queued bytes used to be released at *delivery*, so frames sitting in the
// 500 ms propagation pipe still occupied the drop-tail queue and a link
// carrying exactly its line rate reported spurious DroppedQueue.
func TestQueueReleasedAtSerialization(t *testing.T) {
	s, l := newLink(t, Config{DelayMs: 500, RateBps: 1e6, QueueBytes: 4000})
	delivered := 0
	l.SetHandler(func(simtime.Time, Frame) { delivered++ })
	// Two back-to-back 1000 B frames every 16 ms is exactly 1 Mbps: the
	// serializer keeps up (each pair is fully serialized before the next
	// arrives), so nothing should ever overflow the queue.
	const pairs = 125
	for i := 0; i < pairs; i++ {
		i := i
		s.At(simtime.Time(i*16*int(simtime.Millisecond)), func() {
			l.Send(Frame{Size: 1000})
			l.Send(Frame{Size: 1000})
		})
	}
	s.Run()
	if got := l.Stats().DroppedQueue; got != 0 {
		t.Errorf("DroppedQueue = %d at exactly line rate; propagation-pipe bytes still occupy the queue", got)
	}
	if delivered != 2*pairs {
		t.Errorf("delivered %d/%d frames", delivered, 2*pairs)
	}
	if got := l.QueuedBytes(); got != 0 {
		t.Errorf("drained link reports QueuedBytes = %d", got)
	}
}

// TestQueuedBytesExcludesPropagationPipe pins the accounting instant: a
// queued frame's bytes leave the queue when its serialization completes
// (its slice of busyUntil), not when it lands after the propagation delay.
func TestQueuedBytesExcludesPropagationPipe(t *testing.T) {
	s, l := newLink(t, Config{DelayMs: 200, RateBps: 1e6})
	l.SetHandler(func(simtime.Time, Frame) {})
	// A transmits immediately (8 ms), B and C queue behind it.
	for i := 0; i < 3; i++ {
		l.Send(Frame{Size: 1000})
	}
	if got := l.QueuedBytes(); got != 2000 {
		t.Fatalf("after sends: QueuedBytes = %d, want 2000 (B+C)", got)
	}
	// t=17ms: B's serialization completed at 16 ms; B flies the pipe until
	// 216 ms but must no longer occupy the queue.
	s.RunFor(17 * simtime.Millisecond)
	if got := l.QueuedBytes(); got != 1000 {
		t.Fatalf("after B serializes: QueuedBytes = %d, want 1000 (C only)", got)
	}
	// t=25ms: C serialized too; all three frames are still in flight.
	s.RunFor(8 * simtime.Millisecond)
	if got := l.QueuedBytes(); got != 0 {
		t.Fatalf("after C serializes: QueuedBytes = %d, want 0", got)
	}
	if got := l.Stats().DeliveredFrames; got != 0 {
		t.Fatalf("frames delivered before the 200 ms pipe: %d", got)
	}
	s.Run()
	if got := l.Stats().DeliveredFrames; got != 3 {
		t.Fatalf("delivered %d/3", got)
	}
}

// TestMidBacklogRateChange pins the shaper's documented rate semantics: a
// rate change applies to frames sent after it; frames already admitted to
// the backlog keep the serialization schedule computed at admission.
func TestMidBacklogRateChange(t *testing.T) {
	s, l := newLink(t, Config{RateBps: 1e6})
	var times []simtime.Time
	l.SetHandler(func(now simtime.Time, f Frame) { times = append(times, now) })
	l.Send(Frame{Size: 1000}) // serializes at 1 Mbps: done 8 ms
	l.Send(Frame{Size: 1000}) // queued at 1 Mbps: done 16 ms
	// Halve the rate mid-backlog: the two admitted frames keep their
	// schedule; the next frame serializes at 0.5 Mbps after the backlog.
	l.Shaper().RateBps = 0.5e6
	l.Send(Frame{Size: 1000}) // 16 ms + 16 ms = done 32 ms
	s.Run()
	want := []simtime.Time{
		simtime.Time(8 * simtime.Millisecond),
		simtime.Time(16 * simtime.Millisecond),
		simtime.Time(32 * simtime.Millisecond),
	}
	if len(times) != len(want) {
		t.Fatalf("delivered %d frames, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("frame %d delivered at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestReorderDelivery(t *testing.T) {
	// ReorderProb 1 adds a uniform extra delay to every frame; frames sent
	// 1 ms apart with a 2*25+1 ms reorder window must arrive out of order
	// at least once in 200 sends, and nothing may be lost.
	s, l := newLink(t, Config{DelayMs: 25, ReorderProb: 1})
	var order []int
	l.SetHandler(func(_ simtime.Time, f Frame) { order = append(order, int(f.Payload[0])<<8|int(f.Payload[1])) })
	const n = 200
	for i := 0; i < n; i++ {
		i := i
		s.At(simtime.Time(i*int(simtime.Millisecond)), func() {
			l.Send(Frame{Payload: []byte{byte(i >> 8), byte(i)}})
		})
	}
	s.Run()
	if len(order) != n {
		t.Fatalf("delivered %d/%d frames", len(order), n)
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("ReorderProb=1 produced perfectly ordered delivery")
	}
	st := l.Stats()
	if st.DroppedLoss != 0 || st.DroppedQueue != 0 {
		t.Errorf("reordering dropped frames: %+v", st)
	}
}

func TestShaperClearMidSession(t *testing.T) {
	// Clear while shaped frames are still in flight: in-flight frames keep
	// their impairments, frames sent after Clear run clean.
	s, l := newLink(t, Config{DelayMs: 5})
	var times []simtime.Time
	l.SetHandler(func(now simtime.Time, f Frame) { times = append(times, now) })
	l.Shaper().ExtraDelayMs = 500
	l.Send(Frame{Size: 10}) // shaped: arrives at 505 ms
	l.Shaper().Clear()
	l.Send(Frame{Size: 10}) // clean: arrives at 5 ms, before the shaped one
	s.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(times))
	}
	if times[0] != simtime.Time(5*simtime.Millisecond) {
		t.Errorf("post-Clear frame at %v, want 5ms", times[0])
	}
	if times[1] != simtime.Time(505*simtime.Millisecond) {
		t.Errorf("in-flight shaped frame at %v, want 505ms (Clear must not touch it)", times[1])
	}
}

// TestClearedRateCapKeepsFIFO pins serializer ordering across a mid-backlog
// cap removal: frames sent after the cap clears serialize instantly but
// still depart behind the capped-era backlog, never overtaking it.
func TestClearedRateCapKeepsFIFO(t *testing.T) {
	s, l := newLink(t, Config{DelayMs: 10})
	l.Shaper().RateBps = 8000 // 1000 B = 1 s serialization
	var order []byte
	l.SetHandler(func(_ simtime.Time, f Frame) { order = append(order, f.Payload[0]) })
	l.Send(Frame{Size: 1000, Payload: []byte{1}})
	l.Send(Frame{Size: 1000, Payload: []byte{2}})
	l.Shaper().Clear()
	l.Send(Frame{Size: 1000, Payload: []byte{3}})
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("delivery order %v, want [1 2 3] (uncapped frame overtook the backlog)", order)
	}
}

func TestGilbertElliottBurstLoss(t *testing.T) {
	s, l := newLink(t, Config{})
	ge := NewGilbertElliott(0.02, 0.25, 1)
	l.Shaper().Burst = ge
	var got []bool // per send: delivered?
	l.SetHandler(func(simtime.Time, Frame) {})
	const n = 50000
	for i := 0; i < n; i++ {
		got = append(got, l.Send(Frame{Size: 100}))
		s.Run()
	}
	st := l.Stats()
	if st.DroppedBurst == 0 {
		t.Fatal("no burst drops with an always-lossy bad state")
	}
	if st.DroppedBurst != st.DroppedLoss {
		t.Errorf("DroppedBurst %d != DroppedLoss %d with only the burst model active",
			st.DroppedBurst, st.DroppedLoss)
	}
	// Stationary loss = pBad*LossBad with pBad = pGB/(pGB+pBG) = 0.074.
	rate := float64(st.DroppedLoss) / n
	if rate < 0.05 || rate > 0.10 {
		t.Errorf("burst loss rate %.3f, want ~0.074", rate)
	}
	// Burstiness: mean run length of consecutive drops should approach the
	// 1/BadToGood = 4-frame dwell, far above the ~1.08 an independent 7.4%
	// coin would produce.
	runs, inRun := 0, false
	for _, ok := range got {
		if !ok && !inRun {
			runs++
		}
		inRun = !ok
	}
	meanRun := float64(st.DroppedLoss) / float64(runs)
	if meanRun < 2 {
		t.Errorf("mean drop-burst length %.2f, want >=2 (losses not bursty)", meanRun)
	}
	// Reset returns the chain to Good.
	ge.bad = true
	ge.Reset()
	if ge.InBadState() {
		t.Error("Reset left the chain in the bad state")
	}
}

func TestPipeIsBidirectional(t *testing.T) {
	s := simtime.NewScheduler()
	p := NewPipe(s, simrand.New(3), Config{Name: "wan", DelayMs: 30})
	gotAB, gotBA := false, false
	p.AB.SetHandler(func(simtime.Time, Frame) { gotAB = true })
	p.BA.SetHandler(func(simtime.Time, Frame) { gotBA = true })
	p.AB.Send(Frame{Size: 1})
	p.BA.Send(Frame{Size: 1})
	s.Run()
	if !gotAB || !gotBA {
		t.Errorf("pipe delivery ab=%v ba=%v", gotAB, gotBA)
	}
	if p.AB.Name() == p.BA.Name() {
		t.Error("pipe directions share a name")
	}
}

func TestDirectionString(t *testing.T) {
	if Ingress.String() != "ingress" || Egress.String() != "egress" || Dropped.String() != "dropped" {
		t.Error("direction strings wrong")
	}
	if Direction(42).String() == "" {
		t.Error("unknown direction should still format")
	}
}

func TestStatsAccounting(t *testing.T) {
	s, l := newLink(t, Config{})
	l.SetHandler(func(simtime.Time, Frame) {})
	for i := 0; i < 10; i++ {
		l.Send(Frame{Size: 500})
	}
	s.Run()
	st := l.Stats()
	if st.SentFrames != 10 || st.SentBytes != 5000 {
		t.Errorf("sent %d/%d, want 10/5000", st.SentFrames, st.SentBytes)
	}
	if st.DeliveredFrames != 10 || st.DeliveredB != 5000 {
		t.Errorf("delivered %d/%d, want 10/5000", st.DeliveredFrames, st.DeliveredB)
	}
}

// TestQueuedBytesExactAccounting is the regression test for the serializer
// accounting bug: a frame transmitted straight from an idle serializer never
// increments queued, but its delivery used to decrement queued anyway
// whenever enough genuinely queued bytes were present — silently stealing
// bytes from queued frames and under-enforcing QueueBytes.
func TestQueuedBytesExactAccounting(t *testing.T) {
	s, l := newLink(t, Config{RateBps: 1e6}) // 1000-byte frame = 8 ms serialization
	l.SetHandler(func(simtime.Time, Frame) {})
	// A transmits immediately (idle serializer, not queued); B and C queue.
	for i := 0; i < 3; i++ {
		if !l.Send(Frame{Size: 1000}) {
			t.Fatalf("send %d dropped", i)
		}
	}
	if got := l.QueuedBytes(); got != 2000 {
		t.Fatalf("after sends: QueuedBytes = %d, want 2000 (B+C)", got)
	}
	// After A delivers (~8 ms), the queue must still hold exactly B+C: A
	// was never queued, so its delivery must not decrement.
	s.RunFor(9 * simtime.Millisecond)
	if got := l.QueuedBytes(); got != 2000 {
		t.Fatalf("after A delivers: QueuedBytes = %d, want 2000 (bytes stolen from queued frames)", got)
	}
	s.RunFor(8 * simtime.Millisecond) // B delivered
	if got := l.QueuedBytes(); got != 1000 {
		t.Fatalf("after B delivers: QueuedBytes = %d, want 1000", got)
	}
	s.Run()
	if got := l.QueuedBytes(); got != 0 {
		t.Fatalf("after drain: QueuedBytes = %d, want 0", got)
	}
}

// TestSendDeliverySteadyStateAllocs pins the per-frame budget of the link
// hot path: pooled delivery nodes and pooled scheduler events make
// Send+delivery allocation-free, and regressions should fail tier-1 rather
// than only showing in benchmarks.
func TestSendDeliverySteadyStateAllocs(t *testing.T) {
	s, l := newLink(t, Config{DelayMs: 1, RateBps: 1e8, JitterMs: 0.3})
	l.SetHandler(func(simtime.Time, Frame) {})
	payload := make([]byte, 200)
	// Warm the pools.
	for i := 0; i < 10; i++ {
		l.Send(Frame{Size: 1000, Payload: payload})
	}
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		l.Send(Frame{Size: 1000, Payload: payload})
		s.Run()
	})
	if allocs > 0 {
		t.Errorf("Send+delivery allocates %.1f per frame, want 0", allocs)
	}
}
