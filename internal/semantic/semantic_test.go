package semantic

import (
	"errors"
	"math"
	"testing"

	"telepresence/internal/keypoints"
	"telepresence/internal/simrand"
	"telepresence/internal/stats"
)

func genFrames(seed int64, n int) []keypoints.Frame {
	g := keypoints.NewGenerator(simrand.New(seed), keypoints.DefaultMotionConfig())
	out := make([]keypoints.Frame, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func TestFloat32RoundTripExact(t *testing.T) {
	enc, dec := NewEncoder(ModeFloat32), NewDecoder()
	for _, f := range genFrames(1, 50) {
		f := f
		wire := enc.Encode(&f)
		got, err := dec.Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		want := f.Tracked()
		for i, p := range got.Points {
			if p.Dist(want[i]) > 1e-6 {
				t.Fatalf("seq %d point %d off by %v", f.Seq, i, p.Dist(want[i]))
			}
		}
		if math.Abs(got.Yaw-f.HeadYaw) > 1e-6 {
			t.Fatalf("yaw %v != %v", got.Yaw, f.HeadYaw)
		}
		if got.Seq != f.Seq {
			t.Fatalf("seq %d != %d", got.Seq, f.Seq)
		}
	}
}

func TestQuantizedRoundTripWithinStep(t *testing.T) {
	enc, dec := NewEncoder(ModeQuantized), NewDecoder()
	maxErr := 2 * quantRange / (1<<quantBits - 1) // one quantization step
	for _, f := range genFrames(2, 200) {
		f := f
		got, err := dec.Decode(enc.Encode(&f))
		if err != nil {
			t.Fatal(err)
		}
		want := f.Tracked()
		for i, p := range got.Points {
			if d := p.Dist(want[i]); d > maxErr*2 {
				t.Fatalf("seq %d point %d error %v > %v", f.Seq, i, d, maxErr*2)
			}
		}
	}
}

func TestQuantizedEmitsKeyframesAndDeltas(t *testing.T) {
	enc := NewEncoder(ModeQuantized)
	enc.KeyframeInterval = 10
	keys, deltas := 0, 0
	for _, f := range genFrames(3, 50) {
		f := f
		wire := enc.Encode(&f)
		switch wire[0] {
		case kindKeyframe:
			keys++
		case kindDelta:
			deltas++
		}
	}
	if keys != 5 || deltas != 45 {
		t.Errorf("keys/deltas = %d/%d, want 5/45", keys, deltas)
	}
}

// The paper's headline number: 74 keypoints as float32 at 90 FPS, LZMA'd,
// come to 0.64±0.02 Mbps. Our lzma-like coder must land in the same band.
func TestFloat32BitrateMatchesPaper(t *testing.T) {
	enc := NewEncoder(ModeFloat32)
	sizes := &stats.Sample{}
	for _, f := range genFrames(4, 2000) { // the paper's 2000-frame capture
		f := f
		sizes.Add(float64(len(enc.Encode(&f))))
	}
	mbps := BitrateBps(sizes.Mean(), 90) / 1e6
	if mbps < 0.5 || mbps > 0.75 {
		t.Errorf("float32 semantic stream = %.3f Mbps, want 0.5-0.75 (paper: 0.64±0.02)", mbps)
	}
}

func TestQuantizedMuchSmallerThanFloat32(t *testing.T) {
	frames := genFrames(5, 500)
	encF, encQ := NewEncoder(ModeFloat32), NewEncoder(ModeQuantized)
	var fBytes, qBytes int
	for _, f := range frames {
		f := f
		fBytes += len(encF.Encode(&f))
		qBytes += len(encQ.Encode(&f))
	}
	if qBytes*2 >= fBytes {
		t.Errorf("quantized (%d B) not at least 2x smaller than float32 (%d B)", qBytes, fBytes)
	}
}

func TestDecodeRejectsAnyCorruption(t *testing.T) {
	enc := NewEncoder(ModeFloat32)
	f := genFrames(6, 1)[0]
	wire := enc.Encode(&f)
	// Flip one byte anywhere in the body: decode must fail (all-or-nothing
	// delivery, the semantic-communication property from §4.3).
	for i := headerLen; i < len(wire); i += 7 {
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0x01
		if _, err := NewDecoder().Decode(mut); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	// Truncations must fail too.
	for _, cut := range []int{0, 5, headerLen, len(wire) - 1} {
		if _, err := NewDecoder().Decode(wire[:cut]); err == nil {
			t.Fatalf("truncation to %d accepted", cut)
		}
	}
}

func TestQuantizedLossBreaksChainUntilKeyframe(t *testing.T) {
	enc := NewEncoder(ModeQuantized)
	enc.KeyframeInterval = 20
	dec := NewDecoder()
	frames := genFrames(7, 60)

	wires := make([][]byte, len(frames))
	for i := range frames {
		wires[i] = enc.Encode(&frames[i])
	}
	// Deliver 0..9, drop 10, then try the rest.
	for i := 0; i < 10; i++ {
		if _, err := dec.Decode(wires[i]); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	recovered := -1
	for i := 11; i < len(wires); i++ {
		_, err := dec.Decode(wires[i])
		if err == nil {
			recovered = i
			break
		}
		if !errors.Is(err, ErrLostSync) {
			t.Fatalf("frame %d: unexpected error %v", i, err)
		}
	}
	// Keyframes at 0,21,42 (interval counts deltas): recovery must happen
	// at the first keyframe after the loss and not before.
	if recovered == -1 {
		t.Fatal("never recovered after loss")
	}
	if wires[recovered][0] != kindKeyframe {
		t.Errorf("recovered on a non-keyframe at %d", recovered)
	}
	if !dec.InSync() {
		t.Error("decoder should be in sync after keyframe")
	}
}

func TestDecoderStartsOnDeltaRefuses(t *testing.T) {
	enc := NewEncoder(ModeQuantized)
	frames := genFrames(8, 3)
	_ = enc.Encode(&frames[0]) // keyframe, never delivered
	wire := enc.Encode(&frames[1])
	if wire[0] != kindDelta {
		t.Fatal("second frame should be a delta")
	}
	if _, err := NewDecoder().Decode(wire); !errors.Is(err, ErrLostSync) {
		t.Errorf("cold-start delta decode error = %v, want ErrLostSync", err)
	}
}

func TestBitrateBps(t *testing.T) {
	if got := BitrateBps(1000, 90); got != 720000 {
		t.Errorf("BitrateBps = %v, want 720000", got)
	}
}

func TestModeString(t *testing.T) {
	if ModeFloat32.String() != "float32" || ModeQuantized.String() != "quantized" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func TestEncoderDeterministic(t *testing.T) {
	f := genFrames(9, 1)[0]
	a := NewEncoder(ModeFloat32).Encode(&f)
	b := NewEncoder(ModeFloat32).Encode(&f)
	if string(a) != string(b) {
		t.Error("encoding not deterministic")
	}
}

func BenchmarkEncodeFloat32(b *testing.B) {
	enc := NewEncoder(ModeFloat32)
	f := genFrames(10, 1)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Encode(&f)
	}
}

func BenchmarkEncodeQuantized(b *testing.B) {
	enc := NewEncoder(ModeQuantized)
	frames := genFrames(11, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Encode(&frames[i%256])
	}
}

func BenchmarkDecodeFloat32(b *testing.B) {
	enc := NewEncoder(ModeFloat32)
	f := genFrames(12, 1)[0]
	wire := enc.Encode(&f)
	dec := NewDecoder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeSteadyStateAllocBudget pins Encode's per-frame allocation cost:
// one wire-frame buffer (owned by the caller) plus nothing else once the
// internal scratch is warm.
func TestEncodeSteadyStateAllocBudget(t *testing.T) {
	for _, mode := range []Mode{ModeFloat32, ModeQuantized} {
		gen := keypoints.NewGenerator(simrand.New(7), keypoints.DefaultMotionConfig())
		enc := NewEncoder(mode)
		for i := 0; i < 10; i++ { // warm scratch and compressor
			f := gen.Next()
			enc.Encode(&f)
		}
		allocs := testing.AllocsPerRun(100, func() {
			f := gen.Next()
			if len(enc.Encode(&f)) == 0 {
				t.Fatal("empty wire frame")
			}
		})
		if allocs > 2 {
			t.Errorf("%v: Encode allocates %.1f per frame, budget 2 (output + growth slack)", mode, allocs)
		}
	}
}

// TestValidateMatchesDecode pins Validate to Decode: for every frame of a
// live stream (both modes, including a delta-chain break) the two must
// agree on accept/reject, since the session layer counts decodability
// through Validate.
func TestValidateMatchesDecode(t *testing.T) {
	for _, mode := range []Mode{ModeFloat32, ModeQuantized} {
		gen := keypoints.NewGenerator(simrand.New(8), keypoints.DefaultMotionConfig())
		enc := NewEncoder(mode)
		enc.KeyframeInterval = 10
		val := NewDecoder()
		ref := NewDecoder()
		for i := 0; i < 40; i++ {
			f := gen.Next()
			wire := enc.Encode(&f)
			if i%7 == 3 {
				// Drop this frame at both decoders (delta chain break in
				// quantized mode; no-op for independent float32 frames).
				continue
			}
			vErr := val.Validate(wire)
			_, dErr := ref.Decode(wire)
			if (vErr == nil) != (dErr == nil) {
				t.Fatalf("%v frame %d: Validate err=%v, Decode err=%v", mode, i, vErr, dErr)
			}
		}
		// Corrupt frames must be rejected by both.
		f := gen.Next()
		wire := enc.Encode(&f)
		wire[len(wire)-1] ^= 0xFF
		if val.Validate(wire) == nil {
			t.Fatalf("%v: Validate accepted corrupt frame", mode)
		}
		if _, err := ref.Decode(wire); err == nil {
			t.Fatalf("%v: Decode accepted corrupt frame", mode)
		}
	}
}
