// Package semantic implements semantic communication for spatial personas
// (§4.3): instead of streaming 3D meshes or rendered video, the sender
// transmits only keypoints and the receiver reconstructs the persona
// locally.
//
// Two encodings are provided:
//
//   - ModeFloat32 reproduces the paper's experiment: 74 tracked keypoints as
//     raw float32 coordinates, compressed with the lzma-like entropy coder.
//     Float mantissas of natural motion are high-entropy, so compression
//     gains little and the stream runs at ~0.64 Mbps at 90 FPS — matching
//     both the paper's synthetic estimate and FaceTime's measured 0.67 Mbps.
//   - ModeQuantized is the ablation variant: 14-bit quantization plus
//     temporal deltas, showing the headroom semantic streams still have.
//
// The defining property of semantic communication — every frame must be
// fully delivered for reconstruction (§4.3, Implications 2) — is enforced
// structurally: frames carry a checksum and decode is all-or-nothing, and
// ModeQuantized delta frames additionally require an unbroken chain from the
// last keyframe.
package semantic

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"telepresence/internal/entropy"
	"telepresence/internal/keypoints"
)

// Mode selects the wire encoding.
type Mode int

// Encoding modes.
const (
	// ModeFloat32 transmits full-precision coordinates (paper-faithful).
	ModeFloat32 Mode = iota
	// ModeQuantized transmits 14-bit quantized temporal deltas.
	ModeQuantized
)

func (m Mode) String() string {
	switch m {
	case ModeFloat32:
		return "float32"
	case ModeQuantized:
		return "quantized"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Quantization parameters for ModeQuantized: positions live in a ±0.5 m
// head/hand-local box sampled with 14 bits (~61 µm steps, far below visual
// threshold).
const (
	quantBits  = 14
	quantRange = 0.5
	quantScale = (1<<quantBits - 1) / (2 * quantRange)
)

// Errors returned by Decode.
var (
	ErrCorruptFrame = errors.New("semantic: corrupt frame (semantic data must be fully delivered)")
	ErrLostSync     = errors.New("semantic: delta chain broken; waiting for keyframe")
)

// Frame kinds on the wire.
const (
	kindKeyframe = 0x4B // 'K'
	kindDelta    = 0x44 // 'D'
)

// headerLen is kind(1) + mode(1) + seq(4) + crc(4).
const headerLen = 10

// DecodedFrame is the receiver-side result: the 74 tracked keypoints plus
// head pose, ready for local reconstruction.
type DecodedFrame struct {
	Points   []keypoints.Point // len == keypoints.TrackedTotal
	Yaw      float64
	Pitch    float64
	Roll     float64
	Seq      uint32
	Keyframe bool
}

// Encoder turns captured frames into semantic wire frames.
type Encoder struct {
	mode Mode
	// KeyframeInterval controls how often ModeQuantized emits a keyframe
	// (every frame is independent in ModeFloat32).
	KeyframeInterval int

	prev     []int32 // previous quantized values (ModeQuantized)
	sinceKey int
	havePrev bool
	scratch  []byte
}

// NewEncoder returns an encoder for the given mode.
func NewEncoder(mode Mode) *Encoder {
	return &Encoder{mode: mode, KeyframeInterval: 90}
}

// Mode reports the encoder's wire mode.
func (e *Encoder) Mode() Mode { return e.mode }

func quantize(v float64) int32 {
	if v > quantRange {
		v = quantRange
	}
	if v < -quantRange {
		v = -quantRange
	}
	return int32(math.Round((v + quantRange) * quantScale))
}

func dequantize(q int32) float64 {
	return float64(q)/quantScale - quantRange
}

func zigzag(v int32) uint32 { return uint32((v << 1) ^ (v >> 31)) }
func unzig(u uint32) int32  { return int32(u>>1) ^ -int32(u&1) }

// coords flattens a frame into the 225 transmitted scalars: 74 points x 3
// coordinates plus the 3 head-pose angles.
func coords(f *keypoints.Frame) []float64 {
	pts := f.Tracked()
	out := make([]float64, 0, len(pts)*3+3)
	for _, p := range pts {
		out = append(out, p.X, p.Y, p.Z)
	}
	return append(out, f.HeadYaw, f.HeadPitch, f.HeadRoll)
}

// Encode produces the wire frame for f.
func (e *Encoder) Encode(f *keypoints.Frame) []byte {
	cs := coords(f)
	var body []byte
	kind := byte(kindKeyframe)

	switch e.mode {
	case ModeFloat32:
		raw := make([]byte, 0, len(cs)*4)
		var b4 [4]byte
		for _, v := range cs {
			binary.LittleEndian.PutUint32(b4[:], math.Float32bits(float32(v)))
			raw = append(raw, b4[:]...)
		}
		body = entropy.Compress(nil, raw)
	case ModeQuantized:
		qs := make([]int32, len(cs))
		for i, v := range cs {
			qs[i] = quantize(v)
		}
		raw := e.scratch[:0]
		var vbuf [binary.MaxVarintLen32]byte
		if e.havePrev && e.sinceKey < e.KeyframeInterval {
			kind = kindDelta
			for i, q := range qs {
				n := binary.PutUvarint(vbuf[:], uint64(zigzag(q-e.prev[i])))
				raw = append(raw, vbuf[:n]...)
			}
			e.sinceKey++
		} else {
			for _, q := range qs {
				n := binary.PutUvarint(vbuf[:], uint64(zigzag(q)))
				raw = append(raw, vbuf[:n]...)
			}
			e.sinceKey = 0
		}
		e.scratch = raw
		e.prev = append(e.prev[:0], qs...)
		e.havePrev = true
		body = entropy.Compress(nil, raw)
	default:
		panic(fmt.Sprintf("semantic: unknown mode %v", e.mode))
	}

	out := make([]byte, headerLen, headerLen+len(body))
	out[0] = kind
	out[1] = byte(e.mode)
	binary.BigEndian.PutUint32(out[2:], f.Seq)
	out = append(out, body...)
	binary.BigEndian.PutUint32(out[6:], crc32.ChecksumIEEE(out[headerLen:]))
	return out
}

// Decoder reconstructs semantic frames. It refuses partial data: any
// truncation or corruption yields ErrCorruptFrame, and in ModeQuantized a
// gap in the delta chain yields ErrLostSync until the next keyframe — the
// mechanism behind the paper's "no rate adaptation" finding.
type Decoder struct {
	prev     []int32
	haveSync bool
	lastSeq  uint32
}

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// Decode parses one wire frame.
func (d *Decoder) Decode(wire []byte) (*DecodedFrame, error) {
	if len(wire) < headerLen {
		return nil, ErrCorruptFrame
	}
	kind, mode := wire[0], Mode(wire[1])
	seq := binary.BigEndian.Uint32(wire[2:])
	wantCRC := binary.BigEndian.Uint32(wire[6:])
	body := wire[headerLen:]
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, ErrCorruptFrame
	}

	nScalars := keypoints.TrackedTotal*3 + 3
	raw, err := entropy.Decompress(nil, body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptFrame, err)
	}

	var cs []float64
	switch mode {
	case ModeFloat32:
		if len(raw) != nScalars*4 {
			return nil, ErrCorruptFrame
		}
		cs = make([]float64, nScalars)
		for i := range cs {
			cs[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		}
		d.haveSync = true
	case ModeQuantized:
		qs := make([]int32, nScalars)
		pos := 0
		for i := range qs {
			u, n := binary.Uvarint(raw[pos:])
			if n <= 0 {
				return nil, ErrCorruptFrame
			}
			pos += n
			qs[i] = unzig(uint32(u))
		}
		if pos != len(raw) {
			return nil, ErrCorruptFrame
		}
		switch kind {
		case kindKeyframe:
			d.haveSync = true
		case kindDelta:
			if !d.haveSync {
				return nil, ErrLostSync
			}
			if seq != d.lastSeq+1 {
				// A frame in the chain was lost: everything until the next
				// keyframe is unreconstructable.
				d.haveSync = false
				return nil, ErrLostSync
			}
			for i := range qs {
				qs[i] += d.prev[i]
			}
		default:
			return nil, ErrCorruptFrame
		}
		d.prev = append(d.prev[:0], qs...)
		cs = make([]float64, nScalars)
		for i, q := range qs {
			cs[i] = dequantize(q)
		}
	default:
		return nil, ErrCorruptFrame
	}
	d.lastSeq = seq

	out := &DecodedFrame{
		Points:   make([]keypoints.Point, keypoints.TrackedTotal),
		Seq:      seq,
		Keyframe: kind == kindKeyframe,
	}
	for i := 0; i < keypoints.TrackedTotal; i++ {
		out.Points[i] = keypoints.Point{X: cs[i*3], Y: cs[i*3+1], Z: cs[i*3+2]}
	}
	out.Yaw, out.Pitch, out.Roll = cs[nScalars-3], cs[nScalars-2], cs[nScalars-1]
	return out, nil
}

// InSync reports whether the decoder can currently decode delta frames.
func (d *Decoder) InSync() bool { return d.haveSync }

// BitrateBps converts a mean frame size to a bitrate at the given FPS.
func BitrateBps(meanFrameBytes float64, fps float64) float64 {
	return meanFrameBytes * 8 * fps
}
