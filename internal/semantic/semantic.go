// Package semantic implements semantic communication for spatial personas
// (§4.3): instead of streaming 3D meshes or rendered video, the sender
// transmits only keypoints and the receiver reconstructs the persona
// locally.
//
// Two encodings are provided:
//
//   - ModeFloat32 reproduces the paper's experiment: 74 tracked keypoints as
//     raw float32 coordinates, compressed with the lzma-like entropy coder.
//     Float mantissas of natural motion are high-entropy, so compression
//     gains little and the stream runs at ~0.64 Mbps at 90 FPS — matching
//     both the paper's synthetic estimate and FaceTime's measured 0.67 Mbps.
//   - ModeQuantized is the ablation variant: 14-bit quantization plus
//     temporal deltas, showing the headroom semantic streams still have.
//
// The defining property of semantic communication — every frame must be
// fully delivered for reconstruction (§4.3, Implications 2) — is enforced
// structurally: frames carry a checksum and decode is all-or-nothing, and
// ModeQuantized delta frames additionally require an unbroken chain from the
// last keyframe.
package semantic

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"telepresence/internal/entropy"
	"telepresence/internal/keypoints"
)

// Mode selects the wire encoding.
type Mode int

// Encoding modes.
const (
	// ModeFloat32 transmits full-precision coordinates (paper-faithful).
	ModeFloat32 Mode = iota
	// ModeQuantized transmits 14-bit quantized temporal deltas.
	ModeQuantized
)

func (m Mode) String() string {
	switch m {
	case ModeFloat32:
		return "float32"
	case ModeQuantized:
		return "quantized"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Quantization parameters for ModeQuantized: positions live in a ±0.5 m
// head/hand-local box sampled with 14 bits (~61 µm steps, far below visual
// threshold).
const (
	quantBits  = 14
	quantRange = 0.5
	quantScale = (1<<quantBits - 1) / (2 * quantRange)
)

// Errors returned by Decode.
var (
	ErrCorruptFrame = errors.New("semantic: corrupt frame (semantic data must be fully delivered)")
	ErrLostSync     = errors.New("semantic: delta chain broken; waiting for keyframe")
)

// Frame kinds on the wire.
const (
	kindKeyframe = 0x4B // 'K'
	kindDelta    = 0x44 // 'D'
)

// headerLen is kind(1) + mode(1) + seq(4) + crc(4).
const headerLen = 10

// DecodedFrame is the receiver-side result: the 74 tracked keypoints plus
// head pose, ready for local reconstruction.
type DecodedFrame struct {
	Points   []keypoints.Point // len == keypoints.TrackedTotal
	Yaw      float64
	Pitch    float64
	Roll     float64
	Seq      uint32
	Keyframe bool
}

// Encoder turns captured frames into semantic wire frames. All working
// state (coordinate flattening, quantization, the LZ hash chains and range-
// coder models) is reused across frames, so the steady-state cost of Encode
// is a single allocation: the returned wire frame, which the caller owns.
type Encoder struct {
	mode Mode
	// KeyframeInterval controls how often ModeQuantized emits a keyframe
	// (every frame is independent in ModeFloat32).
	KeyframeInterval int

	prev     []int32 // previous quantized values (ModeQuantized)
	sinceKey int
	havePrev bool
	scratch  []byte
	cs       []float64 // flattened coordinates scratch
	qs       []int32   // quantized values scratch
	cmp      *entropy.Compressor
	lastOut  int // previous wire size: sizes the next output buffer
}

// NewEncoder returns an encoder for the given mode.
func NewEncoder(mode Mode) *Encoder {
	return &Encoder{mode: mode, KeyframeInterval: 90, cmp: entropy.NewCompressor()}
}

// Mode reports the encoder's wire mode.
func (e *Encoder) Mode() Mode { return e.mode }

func quantize(v float64) int32 {
	if v > quantRange {
		v = quantRange
	}
	if v < -quantRange {
		v = -quantRange
	}
	return int32(math.Round((v + quantRange) * quantScale))
}

func dequantize(q int32) float64 {
	return float64(q)/quantScale - quantRange
}

func zigzag(v int32) uint32 { return uint32((v << 1) ^ (v >> 31)) }
func unzig(u uint32) int32  { return int32(u>>1) ^ -int32(u&1) }

// trackedIdx caches the tracked-face index set; it never changes.
var trackedIdx = keypoints.TrackedFaceIndices()

// coordsInto flattens a frame into the 225 transmitted scalars (74 points x
// 3 coordinates plus the 3 head-pose angles), appending to dst.
func coordsInto(dst []float64, f *keypoints.Frame) []float64 {
	for _, i := range trackedIdx {
		p := f.Face[i]
		dst = append(dst, p.X, p.Y, p.Z)
	}
	for i := range f.LeftHand {
		p := f.LeftHand[i]
		dst = append(dst, p.X, p.Y, p.Z)
	}
	for i := range f.RightHand {
		p := f.RightHand[i]
		dst = append(dst, p.X, p.Y, p.Z)
	}
	return append(dst, f.HeadYaw, f.HeadPitch, f.HeadRoll)
}

// Encode produces the wire frame for f. The returned slice is freshly
// allocated and owned by the caller (it may be handed to the network layer
// without copying).
func (e *Encoder) Encode(f *keypoints.Frame) []byte {
	cs := coordsInto(e.cs[:0], f)
	e.cs = cs
	kind := byte(kindKeyframe)

	// The returned buffer is fresh; everything else is reused. Compress
	// appends the body straight after the header, sized from the previous
	// frame so growth reallocation is rare.
	out := make([]byte, headerLen, headerLen+e.lastOut+64)

	switch e.mode {
	case ModeFloat32:
		raw := e.scratch[:0]
		var b4 [4]byte
		for _, v := range cs {
			binary.LittleEndian.PutUint32(b4[:], math.Float32bits(float32(v)))
			raw = append(raw, b4[:]...)
		}
		e.scratch = raw
		out = e.cmp.Compress(out, raw)
	case ModeQuantized:
		qs := e.qs[:0]
		for _, v := range cs {
			qs = append(qs, quantize(v))
		}
		e.qs = qs
		raw := e.scratch[:0]
		var vbuf [binary.MaxVarintLen32]byte
		if e.havePrev && e.sinceKey < e.KeyframeInterval {
			kind = kindDelta
			for i, q := range qs {
				n := binary.PutUvarint(vbuf[:], uint64(zigzag(q-e.prev[i])))
				raw = append(raw, vbuf[:n]...)
			}
			e.sinceKey++
		} else {
			for _, q := range qs {
				n := binary.PutUvarint(vbuf[:], uint64(zigzag(q)))
				raw = append(raw, vbuf[:n]...)
			}
			e.sinceKey = 0
		}
		e.scratch = raw
		e.prev = append(e.prev[:0], qs...)
		e.havePrev = true
		out = e.cmp.Compress(out, raw)
	default:
		panic(fmt.Sprintf("semantic: unknown mode %v", e.mode))
	}

	out[0] = kind
	out[1] = byte(e.mode)
	binary.BigEndian.PutUint32(out[2:], f.Seq)
	binary.BigEndian.PutUint32(out[6:], crc32.ChecksumIEEE(out[headerLen:]))
	e.lastOut = len(out)
	return out
}

// Decoder reconstructs semantic frames. It refuses partial data: any
// truncation or corruption yields ErrCorruptFrame, and in ModeQuantized a
// gap in the delta chain yields ErrLostSync until the next keyframe — the
// mechanism behind the paper's "no rate adaptation" finding.
//
// Decode reuses one DecodedFrame (and all internal scratch): the returned
// frame is valid until the next successful Decode on the same Decoder; copy
// the Points you need to retain. Failed decodes leave the previous frame's
// contents untouched.
type Decoder struct {
	prev     []int32
	haveSync bool
	lastSeq  uint32

	raw  []byte
	cs   []float64
	qs   []int32
	dcmp *entropy.Decompressor
	out  DecodedFrame
}

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder { return &Decoder{dcmp: entropy.NewDecompressor()} }

// Decode parses one wire frame.
func (d *Decoder) Decode(wire []byte) (*DecodedFrame, error) {
	if len(wire) < headerLen {
		return nil, ErrCorruptFrame
	}
	kind, mode := wire[0], Mode(wire[1])
	seq := binary.BigEndian.Uint32(wire[2:])
	wantCRC := binary.BigEndian.Uint32(wire[6:])
	body := wire[headerLen:]
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, ErrCorruptFrame
	}

	nScalars := keypoints.TrackedTotal*3 + 3
	raw, err := d.dcmp.Decompress(d.raw[:0], body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptFrame, err)
	}
	d.raw = raw

	if cap(d.cs) < nScalars {
		d.cs = make([]float64, nScalars)
	}
	cs := d.cs[:nScalars]
	switch mode {
	case ModeFloat32:
		if len(raw) != nScalars*4 {
			return nil, ErrCorruptFrame
		}
		for i := range cs {
			cs[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		}
		d.haveSync = true
	case ModeQuantized:
		if cap(d.qs) < nScalars {
			d.qs = make([]int32, nScalars)
		}
		qs := d.qs[:nScalars]
		pos := 0
		for i := range qs {
			u, n := binary.Uvarint(raw[pos:])
			if n <= 0 {
				return nil, ErrCorruptFrame
			}
			pos += n
			qs[i] = unzig(uint32(u))
		}
		if pos != len(raw) {
			return nil, ErrCorruptFrame
		}
		switch kind {
		case kindKeyframe:
			d.haveSync = true
		case kindDelta:
			if !d.haveSync {
				return nil, ErrLostSync
			}
			if seq != d.lastSeq+1 {
				// A frame in the chain was lost: everything until the next
				// keyframe is unreconstructable.
				d.haveSync = false
				return nil, ErrLostSync
			}
			for i := range qs {
				qs[i] += d.prev[i]
			}
		default:
			return nil, ErrCorruptFrame
		}
		d.prev = append(d.prev[:0], qs...)
		for i, q := range qs {
			cs[i] = dequantize(q)
		}
	default:
		return nil, ErrCorruptFrame
	}
	d.lastSeq = seq

	out := &d.out
	if out.Points == nil {
		out.Points = make([]keypoints.Point, keypoints.TrackedTotal)
	}
	out.Seq = seq
	out.Keyframe = kind == kindKeyframe
	for i := 0; i < keypoints.TrackedTotal; i++ {
		out.Points[i] = keypoints.Point{X: cs[i*3], Y: cs[i*3+1], Z: cs[i*3+2]}
	}
	out.Yaw, out.Pitch, out.Roll = cs[nScalars-3], cs[nScalars-2], cs[nScalars-1]
	return out, nil
}

// Validate checks that wire is a decodable semantic frame — the per-frame
// question the session measurement pipeline asks — without materializing
// coordinates. The all-or-nothing property rests on the same checks Decode
// performs: frame header, CRC-32 over the body, and the declared
// uncompressed size. ModeQuantized frames fall through to a full Decode so
// the delta-chain (ErrLostSync) semantics stay exact. Decoder state
// (sync/sequence tracking) advances exactly as under Decode, so the two can
// be interleaved.
func (d *Decoder) Validate(wire []byte) error {
	if len(wire) < headerLen {
		return ErrCorruptFrame
	}
	mode := Mode(wire[1])
	if mode != ModeFloat32 {
		_, err := d.Decode(wire)
		return err
	}
	// Decode ignores the kind byte in ModeFloat32 (every frame is
	// independent), so Validate does too.
	seq := binary.BigEndian.Uint32(wire[2:])
	wantCRC := binary.BigEndian.Uint32(wire[6:])
	body := wire[headerLen:]
	if crc32.ChecksumIEEE(body) != wantCRC {
		return ErrCorruptFrame
	}
	// A CRC-authenticated body is the encoder's exact output; the declared
	// size is then the decompressed length, so the nScalars*4 check holds
	// without running the entropy decoder.
	size, n := binary.Uvarint(body)
	if n <= 0 || size != uint64(keypoints.TrackedTotal*3+3)*4 {
		return ErrCorruptFrame
	}
	d.haveSync = true
	d.lastSeq = seq
	return nil
}

// InSync reports whether the decoder can currently decode delta frames.
func (d *Decoder) InSync() bool { return d.haveSync }

// BitrateBps converts a mean frame size to a bitrate at the given FPS.
func BitrateBps(meanFrameBytes float64, fps float64) float64 {
	return meanFrameBytes * 8 * fps
}
