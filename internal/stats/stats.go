// Package stats implements the descriptive statistics the paper reports:
// means with standard deviations, percentiles, CDFs (Figure 4), and the
// five-number box summaries (5th/25th/median/75th/95th, Figure 5).
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is an accumulating collection of float64 observations. The zero
// value is an empty sample ready to use. Quantile queries work on a
// separate sorted buffer, so Values() keeps insertion order no matter what
// is asked of the sample.
type Sample struct {
	xs      []float64
	sortBuf []float64
	sorted  bool
}

// NewSample returns a sample pre-populated with xs (copied).
func NewSample(xs ...float64) *Sample {
	s := &Sample{xs: append([]float64(nil), xs...)}
	return s
}

// NewSampleCap returns an empty sample with capacity for n observations, so
// callers that know their rep/bin counts avoid append regrowth.
func NewSampleCap(n int) *Sample {
	return &Sample{xs: make([]float64, 0, n)}
}

// Add appends observations to the sample.
func (s *Sample) Add(xs ...float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the raw observations in insertion order (not a copy;
// callers must not mutate).
func (s *Sample) Values() []float64 { return s.xs }

// Mean returns the arithmetic mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the population standard deviation, or NaN for an empty sample.
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n == 0 {
		return math.NaN()
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest observation, or NaN for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return s.sort()[0]
}

// Max returns the largest observation, or NaN for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sorted := s.sort()
	return sorted[len(sorted)-1]
}

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 {
	var t float64
	for _, x := range s.xs {
		t += x
	}
	return t
}

// sort returns the observations in ascending order without touching the
// insertion-ordered backing array: Values() documents raw observations, so
// quantile queries sort a separate buffer.
func (s *Sample) sort() []float64 {
	if !s.sorted {
		s.sortBuf = append(s.sortBuf[:0], s.xs...)
		sort.Float64s(s.sortBuf)
		s.sorted = true
	}
	return s.sortBuf
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics, or NaN for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s.Min()
	}
	if p >= 100 {
		return s.Max()
	}
	sorted := s.sort()
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// FractionBelow returns the empirical CDF evaluated at x: the fraction of
// observations strictly less than or equal to x.
func (s *Sample) FractionBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sorted := s.sort()
	i := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(sorted))
}

// Box is the five-number summary plus mean used by the paper's whisker
// plots: 5th, 25th, median, 75th and 95th percentiles.
type Box struct {
	P5, P25, Median, P75, P95, Mean float64
	N                               int
}

// meanSorted is the mean summed in ascending value order: deterministic in
// floating point regardless of insertion order, and identical to what the
// historical in-place sort produced for quantile-then-mean call sequences.
func (s *Sample) meanSorted() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.sort() {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// BoxStats computes the Box summary of the sample. Its Mean is summed over
// the sorted observations, so the box is a pure function of the observed
// value multiset.
func (s *Sample) BoxStats() Box {
	return Box{
		P5:     s.Percentile(5),
		P25:    s.Percentile(25),
		Median: s.Median(),
		P75:    s.Percentile(75),
		P95:    s.Percentile(95),
		Mean:   s.meanSorted(),
		N:      s.N(),
	}
}

// String renders the box summary in a compact single line.
func (b Box) String() string {
	return fmt.Sprintf("n=%d p5=%.3f p25=%.3f med=%.3f p75=%.3f p95=%.3f mean=%.3f",
		b.N, b.P5, b.P25, b.Median, b.P75, b.P95, b.Mean)
}

// MeanStd formats the sample as "mean±std" with the given decimal places,
// matching how the paper reports e.g. 108.4±16.7 Mbps.
func (s *Sample) MeanStd(decimals int) string {
	return fmt.Sprintf("%.*f±%.*f", decimals, s.Mean(), decimals, s.Std())
}

// summary is the JSON projection of a Sample: the descriptive statistics
// the paper reports, rather than the raw observations, so encoded rows stay
// compact and stable.
type summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
}

// MarshalJSON encodes the sample as its descriptive summary. Empty samples
// encode as {"n":0} (NaN is not representable in JSON).
func (s *Sample) MarshalJSON() ([]byte, error) {
	if s == nil || len(s.xs) == 0 {
		return []byte(`{"n":0}`), nil
	}
	return json.Marshal(summary{
		N: s.N(), Mean: s.Mean(), Std: s.Std(),
		Min: s.Min(), P25: s.Percentile(25), Median: s.Median(),
		P75: s.Percentile(75), P95: s.Percentile(95), Max: s.Max(),
	})
}

// CDFPoint is one (value, cumulative fraction) point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the full empirical CDF as a step function sampled at each
// distinct observation.
func (s *Sample) CDF() []CDFPoint {
	if len(s.xs) == 0 {
		return nil
	}
	sorted := s.sort()
	n := float64(len(sorted))
	var out []CDFPoint
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values to the last index.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{Value: sorted[i], Fraction: float64(i+1) / n})
	}
	return out
}

// Histogram bins the observations into nbins equal-width bins over
// [min,max] and returns the bin counts. Non-finite observations (NaN, ±Inf)
// are excluded: they have no bounded place on the real line, and converting
// their bin index to int is undefined behavior that used to misbin them —
// so they contribute to no bin and do not distort the [min,max] range. A
// sample with no finite observation yields (nil, nil) like an empty one.
func (s *Sample) Histogram(nbins int) (edges []float64, counts []int) {
	if len(s.xs) == 0 || nbins <= 0 {
		return nil, nil
	}
	finite := func(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
	// Range over the finite observations only.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range s.xs {
		if !finite(x) {
			continue
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if lo > hi { // no finite observation
		return nil, nil
	}
	if hi == lo {
		hi = lo + 1
	}
	w := (hi - lo) / float64(nbins)
	edges = make([]float64, nbins+1)
	for i := range edges {
		edges[i] = lo + w*float64(i)
	}
	counts = make([]int, nbins)
	for _, x := range s.xs {
		if !finite(x) {
			continue
		}
		i := int((x - lo) / w)
		if i >= nbins {
			i = nbins - 1
		}
		if i < 0 {
			i = 0
		}
		counts[i]++
	}
	return edges, counts
}

// ASCIICDF renders the CDF as a small text plot (for CLI output), width
// columns wide and height rows tall.
func (s *Sample) ASCIICDF(width, height int) string {
	pts := s.CDF()
	if len(pts) == 0 || width < 2 || height < 2 {
		return ""
	}
	lo, hi := pts[0].Value, pts[len(pts)-1].Value
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		col := int((p.Value - lo) / (hi - lo) * float64(width-1))
		row := height - 1 - int(p.Fraction*float64(height-1))
		grid[row][col] = '*'
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "[%.1f .. %.1f]\n", lo, hi)
	return b.String()
}
