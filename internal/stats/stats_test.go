package stats

import (
	"encoding/json"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStd(t *testing.T) {
	s := NewSample(2, 4, 4, 4, 5, 5, 7, 9)
	if !almost(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if !almost(s.Std(), 2, 1e-12) {
		t.Errorf("Std = %v, want 2", s.Std())
	}
	if s.MeanStd(1) != "5.0±2.0" {
		t.Errorf("MeanStd = %q", s.MeanStd(1))
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	for name, v := range map[string]float64{
		"Mean": s.Mean(), "Std": s.Std(), "Min": s.Min(), "Max": s.Max(),
		"Median": s.Median(), "FractionBelow": s.FractionBelow(1),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s on empty sample = %v, want NaN", name, v)
		}
	}
	if s.CDF() != nil {
		t.Error("CDF on empty sample should be nil")
	}
}

func TestPercentiles(t *testing.T) {
	s := NewSample(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {75, 7.75},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleValue(t *testing.T) {
	s := NewSample(42)
	for _, p := range []float64{0, 5, 50, 95, 100} {
		if got := s.Percentile(p); got != 42 {
			t.Errorf("Percentile(%v) = %v, want 42", p, got)
		}
	}
}

func TestAddInvalidatesSortCache(t *testing.T) {
	s := NewSample(5, 1)
	_ = s.Min() // forces sort
	s.Add(0)
	if s.Min() != 0 {
		t.Errorf("Min after Add = %v, want 0", s.Min())
	}
	if s.Max() != 5 {
		t.Errorf("Max after Add = %v, want 5", s.Max())
	}
}

func TestFractionBelow(t *testing.T) {
	s := NewSample(10, 20, 30, 40)
	cases := []struct{ x, want float64 }{
		{5, 0}, {10, 0.25}, {25, 0.5}, {40, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := s.FractionBelow(c.x); !almost(got, c.want, 1e-12) {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFMonotoneAndComplete(t *testing.T) {
	s := NewSample(3, 1, 4, 1, 5, 9, 2, 6, 5, 3)
	pts := s.CDF()
	if pts[len(pts)-1].Fraction != 1 {
		t.Errorf("CDF does not reach 1: %v", pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value || pts[i].Fraction <= pts[i-1].Fraction {
			t.Errorf("CDF not strictly increasing at %d: %v -> %v", i, pts[i-1], pts[i])
		}
	}
	// Duplicates collapse: 10 values, 7 distinct (1,2,3,4,5,6,9).
	if len(pts) != 7 {
		t.Errorf("CDF has %d points, want 7", len(pts))
	}
}

func TestBoxStats(t *testing.T) {
	s := &Sample{}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	b := s.BoxStats()
	if !almost(b.Median, 50.5, 1e-9) || !almost(b.Mean, 50.5, 1e-9) {
		t.Errorf("median/mean = %v/%v, want 50.5", b.Median, b.Mean)
	}
	if b.P5 >= b.P25 || b.P25 >= b.Median || b.Median >= b.P75 || b.P75 >= b.P95 {
		t.Errorf("box quantiles not ordered: %+v", b)
	}
	if b.N != 100 {
		t.Errorf("N = %d, want 100", b.N)
	}
	if b.String() == "" {
		t.Error("Box.String empty")
	}
}

func TestHistogram(t *testing.T) {
	s := NewSample(0, 1, 2, 3, 4, 5, 6, 7, 8, 10)
	edges, counts := s.Histogram(5)
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("histogram shape: %d edges, %d counts", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != s.N() {
		t.Errorf("histogram total = %d, want %d", total, s.N())
	}
}

func TestHistogramSkipsNaN(t *testing.T) {
	// NaN observations used to hit the undefined float->int conversion and
	// land in an arbitrary bin; they must be excluded from both the range
	// and the counts.
	s := NewSample(1, math.NaN(), 2, 3, math.NaN(), 4)
	edges, counts := s.Histogram(3)
	if len(edges) != 4 || len(counts) != 3 {
		t.Fatalf("histogram shape: %d edges, %d counts", len(edges), len(counts))
	}
	if edges[0] != 1 || edges[3] != 4 {
		t.Errorf("range [%v,%v] distorted by NaN, want [1,4]", edges[0], edges[3])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Errorf("binned %d observations, want 4 (NaNs must not count)", total)
	}
	for i, e := range edges {
		if math.IsNaN(e) {
			t.Errorf("edge %d is NaN", i)
		}
	}
}

func TestHistogramAllNaN(t *testing.T) {
	s := NewSample(math.NaN(), math.NaN())
	edges, counts := s.Histogram(4)
	if edges != nil || counts != nil {
		t.Errorf("all-NaN sample: got edges=%v counts=%v, want nil/nil", edges, counts)
	}
}

func TestHistogramSkipsInf(t *testing.T) {
	// ±Inf is the same undefined-int-conversion class as NaN: it must not
	// blow up the range (Inf edges) or land in a bin.
	s := NewSample(1, math.Inf(1), 2, math.Inf(-1), 3)
	edges, counts := s.Histogram(2)
	if edges[0] != 1 || edges[2] != 3 {
		t.Errorf("range [%v,%v] distorted by Inf, want [1,3]", edges[0], edges[2])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("binned %d observations, want 3 (Inf must not count)", total)
	}
	if e, c := func() ([]float64, []int) { return NewSample(math.Inf(1)).Histogram(3) }(); e != nil || c != nil {
		t.Errorf("all-Inf sample: got edges=%v counts=%v, want nil/nil", e, c)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	s := NewSample(5, 5, 5)
	_, counts := s.Histogram(4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("degenerate histogram lost observations: %v", counts)
	}
}

func TestASCIICDF(t *testing.T) {
	s := NewSample(1, 2, 3, 4, 5)
	out := s.ASCIICDF(20, 5)
	if out == "" {
		t.Fatal("empty ASCII CDF")
	}
}

// Property: percentile is monotone in p, bounded by min/max, and the median
// of a sample equals the median of its reverse.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		s := NewSample(xs...)
		lo, hi := s.Percentile(p1), s.Percentile(p2)
		if lo > hi {
			return false
		}
		if lo < s.Min() || hi > s.Max() {
			return false
		}
		rev := make([]float64, len(xs))
		for i, x := range xs {
			rev[len(xs)-1-i] = x
		}
		return NewSample(rev...).Median() == s.Median()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: FractionBelow agrees with a brute-force count.
func TestFractionBelowProperty(t *testing.T) {
	f := func(raw []float64, x float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 || math.IsNaN(x) {
			return true
		}
		n := 0
		for _, v := range xs {
			if v <= x {
				n++
			}
		}
		want := float64(n) / float64(len(xs))
		return almost(NewSample(xs...).FractionBelow(x), want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: CDF values are exactly the sorted distinct inputs.
func TestCDFValuesProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		distinct := map[float64]bool{}
		for _, v := range xs {
			distinct[v] = true
		}
		pts := NewSample(xs...).CDF()
		if len(pts) != len(distinct) {
			return false
		}
		vals := make([]float64, 0, len(distinct))
		for v := range distinct {
			vals = append(vals, v)
		}
		sort.Float64s(vals)
		for i, p := range pts {
			if p.Value != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleMarshalJSON(t *testing.T) {
	s := NewSample(3, 1, 2, 4, 5)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]float64
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	if got["n"] != 5 || got["mean"] != 3 || got["min"] != 1 || got["max"] != 5 || got["median"] != 3 {
		t.Errorf("summary = %s", b)
	}
	// Determinism: identical samples encode to identical bytes.
	b2, _ := json.Marshal(NewSample(3, 1, 2, 4, 5))
	if string(b) != string(b2) {
		t.Errorf("encoding not deterministic: %s vs %s", b, b2)
	}
	// Empty samples encode without NaN (json cannot represent NaN).
	if b, err := json.Marshal(&Sample{}); err != nil || string(b) != `{"n":0}` {
		t.Errorf("empty sample -> %s, %v", b, err)
	}
}

// TestValuesOrderSurvivesQuantiles pins the Values() contract: "raw
// observations" means insertion order, and no quantile query may reorder the
// backing array callers might hold.
func TestValuesOrderSurvivesQuantiles(t *testing.T) {
	in := []float64{5, 1, 4, 2, 3}
	s := NewSample(in...)
	held := s.Values()
	if got := s.Percentile(50); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	s.Min()
	s.Max()
	s.CDF()
	s.FractionBelow(2.5)
	for i, v := range held {
		if v != in[i] {
			t.Fatalf("Values()[%d] = %v after quantile queries, want %v (insertion order destroyed)", i, v, in[i])
		}
	}
	// Later additions must be visible to subsequent quantile queries.
	s.Add(0)
	if got := s.Min(); got != 0 {
		t.Errorf("Min after Add = %v, want 0", got)
	}
	if got := s.Values()[len(s.Values())-1]; got != 0 {
		t.Errorf("last value = %v, want 0", got)
	}
}
