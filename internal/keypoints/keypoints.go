// Package keypoints models the semantic data a spatial persona transmits:
// the canonical 68-point dlib facial layout, the 21-point OpenPose hand
// layout, and a stochastic "natural conversation" motion generator that
// stands in for the paper's human participants and ZED 2i captures (§4.3).
//
// The paper determined that FaceTime tracks only the eye and mouth regions
// of the face plus both hands: 32 facial + 2x21 hand = 74 keypoints. The
// Tracked helpers select exactly that subset.
package keypoints

import (
	"fmt"
	"math"

	"telepresence/internal/simrand"
)

// Point is a 3D keypoint position in meters, head-local coordinates.
type Point struct{ X, Y, Z float64 }

// Add returns p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s, p.Z * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Canonical layout sizes.
const (
	FaceCount    = 68 // dlib 68-point facial layout
	HandCount    = 21 // OpenPose hand layout
	TrackedFace  = 32 // eyes (12) + eyebrows (10) + mouth area subset (10)... see TrackedFaceIndices
	TrackedTotal = TrackedFace + 2*HandCount
)

// dlib 68-point regions (standard indexing).
const (
	jawStart, jawEnd             = 0, 16
	rightBrowStart, rightBrowEnd = 17, 21
	leftBrowStart, leftBrowEnd   = 22, 26
	noseStart, noseEnd           = 27, 35
	rightEyeStart, rightEyeEnd   = 36, 41
	leftEyeStart, leftEyeEnd     = 42, 47
	mouthStart, mouthEnd         = 48, 67
)

// TrackedFaceIndices returns the 32 facial keypoints FaceTime's spatial
// persona actually conveys: the 12 eye-contour points and the 20 mouth
// points (the paper: "the spatial persona primarily tracks the eye and
// mouth areas for facial expressions"; 12+20 = 32 keypoints).
func TrackedFaceIndices() []int {
	idx := make([]int, 0, TrackedFace)
	for i := rightEyeStart; i <= leftEyeEnd; i++ {
		idx = append(idx, i)
	}
	for i := mouthStart; i <= mouthEnd; i++ {
		idx = append(idx, i)
	}
	return idx
}

// Frame is one captured sample of a user's tracked body: full face, both
// hands, plus the rigid head pose.
type Frame struct {
	// Face holds the full 68-point layout in head-local coordinates.
	Face [FaceCount]Point
	// LeftHand and RightHand hold the 21-point hand layouts.
	LeftHand, RightHand [HandCount]Point
	// HeadYaw, HeadPitch, HeadRoll are the rigid head pose in radians.
	HeadYaw, HeadPitch, HeadRoll float64
	// Seq is the capture sequence number.
	Seq uint32
}

// Tracked flattens the transmitted subset (32 face + 42 hand points) into a
// contiguous slice of 74 points, the semantic payload of one frame.
func (f *Frame) Tracked() []Point {
	out := make([]Point, 0, TrackedTotal)
	for _, i := range TrackedFaceIndices() {
		out = append(out, f.Face[i])
	}
	out = append(out, f.LeftHand[:]...)
	out = append(out, f.RightHand[:]...)
	return out
}

// NeutralFace returns the rest pose of the 68-point layout: a stylized but
// geometrically plausible face in a ~16 cm-wide head frame.
func NeutralFace() [FaceCount]Point {
	var face [FaceCount]Point
	// Jaw line: parabola across the lower face.
	for i := jawStart; i <= jawEnd; i++ {
		t := float64(i-jawStart)/float64(jawEnd-jawStart)*2 - 1 // -1..1
		face[i] = Point{X: 0.08 * t, Y: -0.04 - 0.05*(1-t*t), Z: 0.02 * (1 - t*t)}
	}
	brow := func(start int, cx float64) {
		for k := 0; k < 5; k++ {
			t := float64(k)/4*2 - 1
			face[start+k] = Point{X: cx + 0.02*t, Y: 0.035 + 0.005*(1-t*t), Z: 0.045}
		}
	}
	brow(rightBrowStart, -0.04)
	brow(leftBrowStart, 0.04)
	// Nose bridge and base.
	for k := 0; k < 4; k++ {
		face[noseStart+k] = Point{X: 0, Y: 0.025 - 0.015*float64(k), Z: 0.05 + 0.005*float64(k)}
	}
	for k := 0; k < 5; k++ {
		t := float64(k)/4*2 - 1
		face[noseStart+4+k] = Point{X: 0.012 * t, Y: -0.015, Z: 0.055 * (1 - 0.3*t*t)}
	}
	// Eyes are mirrored point-for-point about the X=0 plane.
	eye := func(start int, mirror float64) {
		for k := 0; k < 6; k++ {
			ang := float64(k) / 6 * 2 * math.Pi
			face[start+k] = Point{
				X: mirror * (0.035 + 0.016*math.Cos(ang)),
				Y: 0.02 + 0.008*math.Sin(ang),
				Z: 0.04,
			}
		}
	}
	eye(rightEyeStart, -1)
	eye(leftEyeStart, 1)
	// Mouth: outer ring (12) + inner ring (8).
	for k := 0; k < 12; k++ {
		ang := float64(k) / 12 * 2 * math.Pi
		face[mouthStart+k] = Point{X: 0.025 * math.Cos(ang), Y: -0.045 + 0.012*math.Sin(ang), Z: 0.045}
	}
	for k := 0; k < 8; k++ {
		ang := float64(k) / 8 * 2 * math.Pi
		face[mouthStart+12+k] = Point{X: 0.015 * math.Cos(ang), Y: -0.045 + 0.006*math.Sin(ang), Z: 0.046}
	}
	return face
}

// NeutralHand returns the rest pose of a 21-point hand: wrist at origin,
// five fingers of four joints each. mirror=-1 flips for the left hand.
func NeutralHand(mirror float64) [HandCount]Point {
	var hand [HandCount]Point
	hand[0] = Point{} // wrist
	fingerX := []float64{-0.03, -0.015, 0, 0.015, 0.03}
	fingerL := []float64{0.05, 0.08, 0.085, 0.08, 0.065}
	for f := 0; f < 5; f++ {
		for j := 1; j <= 4; j++ {
			frac := float64(j) / 4
			hand[1+f*4+j-1] = Point{
				X: mirror * fingerX[f],
				Y: fingerL[f] * frac,
				Z: 0.01 * frac,
			}
		}
	}
	return hand
}

// MotionConfig tunes the synthetic conversation behaviour.
type MotionConfig struct {
	// FPS is the capture rate (the paper streams at 90 FPS).
	FPS float64
	// Expressiveness scales all motion amplitudes (1 = typical meeting).
	Expressiveness float64
	// SpeakingFraction is the fraction of time this user talks.
	SpeakingFraction float64
	// SensorNoise is the per-point, per-frame tracking jitter (meters,
	// std dev). Real keypoint extractors (dlib/OpenPose on RGB-D) have
	// sub-millimeter jitter; it is what makes raw float coordinates
	// nearly incompressible, the effect behind the paper's 0.64 Mbps.
	SensorNoise float64
}

// DefaultMotionConfig matches the paper's setup: 90 FPS natural
// conversation.
func DefaultMotionConfig() MotionConfig {
	return MotionConfig{FPS: 90, Expressiveness: 1, SpeakingFraction: 0.5, SensorNoise: 0.0004}
}

// Generator synthesizes a temporally coherent keypoint stream: head pose
// follows Ornstein-Uhlenbeck drift, blinks arrive as a Poisson process,
// mouth motion follows a speech envelope, and hands gesture while speaking.
type Generator struct {
	cfg  MotionConfig
	rng  *simrand.Source
	base Frame

	yaw, pitch, roll *simrand.OU
	handAmp          *simrand.OU
	noise            *simrand.Source
	speaking         bool
	speakLeft        float64 // seconds until speaking state flips
	blinkLeft        float64 // seconds until next blink
	blinkPhase       float64 // >0 while a blink is in progress
	mouthPhase       float64
	t                float64
	seq              uint32
}

// NewGenerator returns a generator seeded from rng.
func NewGenerator(rng *simrand.Source, cfg MotionConfig) *Generator {
	if cfg.FPS <= 0 {
		panic(fmt.Sprintf("keypoints: bad FPS %v", cfg.FPS))
	}
	g := &Generator{cfg: cfg, rng: rng}
	g.base.Face = NeutralFace()
	g.base.LeftHand = NeutralHand(-1)
	g.base.RightHand = NeutralHand(1)
	g.yaw = simrand.NewOU(rng.Split("yaw"), 0, 0.8, 0.15*cfg.Expressiveness)
	g.pitch = simrand.NewOU(rng.Split("pitch"), 0, 1.0, 0.08*cfg.Expressiveness)
	g.roll = simrand.NewOU(rng.Split("roll"), 0, 1.2, 0.05*cfg.Expressiveness)
	g.handAmp = simrand.NewOU(rng.Split("hand"), 0, 0.5, 0.4*cfg.Expressiveness)
	g.noise = rng.Split("noise")
	g.speakLeft = rng.Exponential(4)
	g.blinkLeft = rng.Exponential(3.5)
	return g
}

// Next produces the following frame of the stream.
func (g *Generator) Next() Frame {
	dt := 1 / g.cfg.FPS
	g.t += dt
	f := g.base
	f.Seq = g.seq
	g.seq++

	// Rigid head pose.
	f.HeadYaw = g.yaw.Step(dt)
	f.HeadPitch = g.pitch.Step(dt)
	f.HeadRoll = g.roll.Step(dt)

	// Speaking state machine.
	g.speakLeft -= dt
	if g.speakLeft <= 0 {
		g.speaking = !g.speaking
		mean := 4.0 * g.cfg.SpeakingFraction
		if !g.speaking {
			mean = 4.0 * (1 - g.cfg.SpeakingFraction)
		}
		if mean < 0.5 {
			mean = 0.5
		}
		g.speakLeft = g.rng.Exponential(mean)
	}

	// Mouth: a ~5 Hz syllabic open/close while speaking, tiny tremor
	// otherwise.
	amp := 0.002
	if g.speaking {
		g.mouthPhase += dt * 2 * math.Pi * 5
		amp = 0.010 * g.cfg.Expressiveness * (0.6 + 0.4*math.Sin(g.mouthPhase*0.31))
	}
	open := amp * (0.5 + 0.5*math.Sin(g.mouthPhase))
	for k := 0; k < 12; k++ { // outer ring
		i := mouthStart + k
		s := math.Sin(float64(k) / 12 * 2 * math.Pi)
		f.Face[i].Y += open * s
	}
	for k := 0; k < 8; k++ { // inner ring opens further
		i := mouthStart + 12 + k
		s := math.Sin(float64(k) / 8 * 2 * math.Pi)
		f.Face[i].Y += 1.5 * open * s
	}

	// Blinks: Poisson arrivals, ~150 ms duration, eyelids close (upper and
	// lower eye contour points converge).
	g.blinkLeft -= dt
	if g.blinkLeft <= 0 && g.blinkPhase <= 0 {
		g.blinkPhase = 0.15
		g.blinkLeft = g.rng.Exponential(3.5)
	}
	if g.blinkPhase > 0 {
		g.blinkPhase -= dt
		closure := math.Sin(math.Pi * (1 - g.blinkPhase/0.15)) // 0..1..0
		for _, start := range []int{rightEyeStart, leftEyeStart} {
			cy := f.Face[start].Y
			for k := 0; k < 6; k++ {
				f.Face[start+k].Y = f.Face[start+k].Y*(1-closure) + cy*closure
			}
		}
	}

	// Hands: gesture amplitude rises while speaking.
	level := g.handAmp.Step(dt)
	if g.speaking {
		level += 0.5
	}
	if level < 0 {
		level = 0
	}
	wave := math.Sin(2*math.Pi*1.3*g.t) * 0.03 * level
	lift := math.Sin(2*math.Pi*0.7*g.t+1) * 0.02 * level
	for i := range f.LeftHand {
		f.LeftHand[i].X += wave
		f.LeftHand[i].Y += lift
	}
	for i := range f.RightHand {
		f.RightHand[i].X -= wave
		f.RightHand[i].Y += lift * 0.8
	}

	// Sensor noise: independent per point per frame, as a real extractor
	// produces.
	if s := g.cfg.SensorNoise; s > 0 {
		jit := func(p *Point) {
			p.X += g.noise.Normal(0, s)
			p.Y += g.noise.Normal(0, s)
			p.Z += g.noise.Normal(0, s)
		}
		for i := range f.Face {
			jit(&f.Face[i])
		}
		for i := range f.LeftHand {
			jit(&f.LeftHand[i])
		}
		for i := range f.RightHand {
			jit(&f.RightHand[i])
		}
	}
	return f
}

// Speaking reports whether the synthetic user is currently talking.
func (g *Generator) Speaking() bool { return g.speaking }
