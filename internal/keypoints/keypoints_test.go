package keypoints

import (
	"math"
	"testing"

	"telepresence/internal/simrand"
)

func TestTrackedCounts(t *testing.T) {
	// The paper: 32 (mouth & eyes) + 2x21 (hands) = 74 keypoints.
	idx := TrackedFaceIndices()
	if len(idx) != 32 {
		t.Fatalf("tracked face keypoints = %d, want 32 (paper §4.3)", len(idx))
	}
	if TrackedTotal != 74 {
		t.Fatalf("TrackedTotal = %d, want 74", TrackedTotal)
	}
	var f Frame
	f.Face = NeutralFace()
	if got := len(f.Tracked()); got != 74 {
		t.Fatalf("Tracked() returned %d points, want 74", got)
	}
}

func TestTrackedIndicesAreEyesAndMouth(t *testing.T) {
	for _, i := range TrackedFaceIndices() {
		eyes := i >= rightEyeStart && i <= leftEyeEnd
		mouth := i >= mouthStart && i <= mouthEnd
		if !eyes && !mouth {
			t.Errorf("tracked index %d is neither eye nor mouth", i)
		}
	}
}

func TestNeutralFacePlausible(t *testing.T) {
	face := NeutralFace()
	// All points within a 20 cm head box.
	for i, p := range face {
		if math.Abs(p.X) > 0.1 || math.Abs(p.Y) > 0.15 || math.Abs(p.Z) > 0.1 {
			t.Errorf("face point %d out of head box: %+v", i, p)
		}
	}
	// Left/right eye symmetry about X=0.
	for k := 0; k < 6; k++ {
		r, l := face[rightEyeStart+k], face[leftEyeStart+k]
		if math.Abs(r.X+l.X) > 1e-9 || math.Abs(r.Y-l.Y) > 1e-9 {
			t.Errorf("eye symmetry broken at %d: %+v vs %+v", k, r, l)
		}
	}
}

func TestNeutralHandStructure(t *testing.T) {
	hand := NeutralHand(1)
	if hand[0] != (Point{}) {
		t.Errorf("wrist not at origin: %+v", hand[0])
	}
	// Fingertips are the farthest joints of each finger.
	for f := 0; f < 5; f++ {
		base := hand[1+f*4]
		tip := hand[1+f*4+3]
		if tip.Dist(hand[0]) <= base.Dist(hand[0]) {
			t.Errorf("finger %d: tip closer to wrist than base", f)
		}
	}
	// Mirroring flips X only.
	left := NeutralHand(-1)
	for i := range hand {
		if left[i].X != -hand[i].X || left[i].Y != hand[i].Y || left[i].Z != hand[i].Z {
			t.Errorf("mirror broken at joint %d", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(simrand.New(5), DefaultMotionConfig())
	g2 := NewGenerator(simrand.New(5), DefaultMotionConfig())
	for i := 0; i < 200; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("frame %d diverged", i)
		}
	}
}

func TestGeneratorSeqIncrements(t *testing.T) {
	g := NewGenerator(simrand.New(1), DefaultMotionConfig())
	for i := 0; i < 10; i++ {
		if f := g.Next(); f.Seq != uint32(i) {
			t.Fatalf("Seq = %d, want %d", f.Seq, i)
		}
	}
}

func TestGeneratorTemporalCoherence(t *testing.T) {
	// Consecutive frames at 90 FPS must move each keypoint by far less
	// than the head scale: this is what makes delta coding effective.
	g := NewGenerator(simrand.New(2), DefaultMotionConfig())
	prev := g.Next()
	var maxStep float64
	for i := 0; i < 900; i++ { // 10 seconds
		cur := g.Next()
		pp, cp := prev.Tracked(), cur.Tracked()
		for j := range cp {
			if d := cp[j].Dist(pp[j]); d > maxStep {
				maxStep = d
			}
		}
		prev = cur
	}
	if maxStep > 0.02 {
		t.Errorf("max per-frame keypoint step = %.4f m, want < 0.02 (temporal coherence)", maxStep)
	}
	if maxStep == 0 {
		t.Error("stream is static; motion generator not working")
	}
}

func TestGeneratorHeadPoseBounded(t *testing.T) {
	g := NewGenerator(simrand.New(3), DefaultMotionConfig())
	for i := 0; i < 9000; i++ {
		f := g.Next()
		if math.Abs(f.HeadYaw) > 1.2 || math.Abs(f.HeadPitch) > 1.0 || math.Abs(f.HeadRoll) > 1.0 {
			t.Fatalf("head pose unbounded at frame %d: %v/%v/%v", i, f.HeadYaw, f.HeadPitch, f.HeadRoll)
		}
	}
}

func TestGeneratorBlinksHappen(t *testing.T) {
	g := NewGenerator(simrand.New(4), DefaultMotionConfig())
	neutral := NeutralFace()
	eyeClosed := 0
	for i := 0; i < 90*60; i++ { // one minute
		f := g.Next()
		// During a blink the eye contour collapses toward its own center.
		spread := 0.0
		for k := 0; k < 6; k++ {
			spread += math.Abs(f.Face[rightEyeStart+k].Y - f.Face[rightEyeStart].Y)
		}
		neutralSpread := 0.0
		for k := 0; k < 6; k++ {
			neutralSpread += math.Abs(neutral[rightEyeStart+k].Y - neutral[rightEyeStart].Y)
		}
		if spread < neutralSpread*0.5 {
			eyeClosed++
		}
	}
	if eyeClosed == 0 {
		t.Error("no blinks observed in 60 s of conversation")
	}
}

func TestGeneratorSpeakingAlternates(t *testing.T) {
	g := NewGenerator(simrand.New(6), DefaultMotionConfig())
	speakFrames := 0
	const n = 90 * 120 // two minutes
	for i := 0; i < n; i++ {
		g.Next()
		if g.Speaking() {
			speakFrames++
		}
	}
	frac := float64(speakFrames) / n
	if frac < 0.2 || frac > 0.8 {
		t.Errorf("speaking fraction = %.2f over 2 min, want 0.2-0.8", frac)
	}
}

func TestGeneratorBadFPSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FPS=0 accepted")
		}
	}()
	NewGenerator(simrand.New(1), MotionConfig{FPS: 0})
}

func TestPointOps(t *testing.T) {
	p := Point{1, 2, 3}
	if q := p.Add(Point{1, 1, 1}); q != (Point{2, 3, 4}) {
		t.Errorf("Add = %+v", q)
	}
	if q := p.Scale(2); q != (Point{2, 4, 6}) {
		t.Errorf("Scale = %+v", q)
	}
	if d := (Point{0, 0, 0}).Dist(Point{3, 4, 0}); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
}
