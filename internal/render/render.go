// Package render models the Vision Pro rendering pipeline for spatial
// personas: viewport culling, foveated rendering, distance-aware LOD, and
// (as an extension the paper found FaceTime does NOT implement) occlusion
// culling, together with a calibrated per-frame GPU/CPU cost model.
//
// The paper's Figure 6 measurements anchor the model: a full persona is
// 78,030 triangles and 6.55 ms GPU at half a meter; out-of-viewport drops to
// 36 triangles / 2.68 ms (-59%); foveated periphery renders 21,036 triangles
// / 3.97 ms (-39%); beyond three meters 45,036 triangles / 3.91 ms (-40%).
// The cost model decomposes GPU time into a fixed pass (passthrough +
// compositor), a per-triangle vertex term, and a fragment term proportional
// to screen coverage and shading quality; the constants below are the unique
// solution fitting all four anchor points. The claims the repository
// reproduces (which optimization wins, by what factor, why five users breach
// the 11.1 ms deadline) emerge from this mechanism rather than table
// lookups.
package render

import (
	"fmt"
	"math"

	"telepresence/internal/mesh"
	"telepresence/internal/simrand"
)

// Optimizations selects which visibility-aware optimizations the renderer
// applies (§4.4).
type Optimizations struct {
	Viewport      bool // cull personas outside the field of view
	Foveated      bool // reduce LOD/shading in peripheral vision
	DistanceAware bool // reduce LOD beyond DistanceCutoff
	Occlusion     bool // skip personas hidden behind others (NOT in FaceTime)
}

// FaceTimeOptimizations returns the set the paper measured on FaceTime:
// viewport, foveated and distance-aware enabled, occlusion absent.
func FaceTimeOptimizations() Optimizations {
	return Optimizations{Viewport: true, Foveated: true, DistanceAware: true}
}

// NoOptimizations disables everything (the paper's baseline).
func NoOptimizations() Optimizations { return Optimizations{} }

// CostModel holds the calibrated constants of the per-frame cost
// decomposition. Values are documented where they are anchored to paper
// measurements.
type CostModel struct {
	// FixedGPUMs is the passthrough/compositor floor: the GPU time with a
	// persona present but fully culled (Figure 6b, "V": 2.68 ms) minus the
	// per-persona overhead.
	FixedGPUMs float64
	// PerPersonaGPUMs is scene-graph and skinning overhead per visible
	// remote persona.
	PerPersonaGPUMs float64
	// TriangleGPUMs is the vertex-pipeline cost per triangle.
	TriangleGPUMs float64
	// FragmentGPUMs is the shading cost of one persona at full screen
	// coverage and full quality.
	FragmentGPUMs float64
	// PeripheralShade is the average shading-quality factor of a persona
	// in peripheral vision under foveated rendering.
	PeripheralShade float64
	// RefDistanceM is the distance at which a persona fills the viewport
	// (the paper's half-meter baseline).
	RefDistanceM float64
	// DistanceCutoffM is where distance-aware LOD engages (paper: 3 m).
	DistanceCutoffM float64
	// FovealAngleRad is the eccentricity beyond which a persona counts as
	// peripheral.
	FovealAngleRad float64
	// HalfFOVRad is the half field-of-view for viewport culling.
	HalfFOVRad float64
	// CPUBaseMs and CPUPerPersonaMs model the CPU frame cost, which the
	// paper finds insensitive to visibility optimizations (§4.4) and
	// rising with user count (Figure 7b).
	CPUBaseMs       float64
	CPUPerPersonaMs float64
	// NoiseFrac is the relative std dev of frame-time noise.
	NoiseFrac float64
}

// DefaultCostModel returns constants calibrated to Figure 6b/7b:
//
//	V:  fixed + perPersona                      = 2.68 ms
//	BL: 2.68 + tri*78030 + frag*1.00            = 6.55 ms
//	F:  2.68 + tri*21036 + frag*0.42            = 3.97 ms
//	D:  2.68 + tri*45036 + frag*~0.03           = 3.91 ms
//
// which solves to tri = 2.73e-5 ms and frag = 1.74 ms.
func DefaultCostModel() CostModel {
	return CostModel{
		FixedGPUMs:      2.28,
		PerPersonaGPUMs: 0.40,
		TriangleGPUMs:   2.731e-5,
		FragmentGPUMs:   1.739,
		PeripheralShade: 0.42,
		RefDistanceM:    0.5,
		DistanceCutoffM: 3.0,
		FovealAngleRad:  18 * math.Pi / 180,
		HalfFOVRad:      50 * math.Pi / 180,
		CPUBaseMs:       5.31,
		CPUPerPersonaMs: 0.36,
		NoiseFrac:       0.11,
	}
}

// DeadlineMs is the per-frame budget for 90 FPS rendering on Vision Pro
// (§3.2: ~11.1 ms).
const DeadlineMs = 1000.0 / 90

// Camera is the local user's viewpoint: head position, head orientation
// (viewport) and eye gaze direction.
type Camera struct {
	Pos     mesh.Vec3
	Forward mesh.Vec3 // head/viewport direction (unit)
	Gaze    mesh.Vec3 // eye direction (unit); foveation follows this
}

// LookAt aims both head and gaze at target.
func (c *Camera) LookAt(target mesh.Vec3) {
	d := target.Sub(c.Pos)
	if l := d.Len(); l > 0 {
		c.Forward = d.Scale(1 / l)
		c.Gaze = c.Forward
	}
}

// Persona is a remote participant's renderable in the local scene.
type Persona struct {
	ID  string
	Pos mesh.Vec3
	// RadiusM is the bounding radius used for occlusion tests.
	RadiusM float64
	// LODTriangles holds the LOD chain triangle counts in decreasing
	// order: full, distance, peripheral, proxy. Defaults to the paper's
	// persona chain when nil.
	LODTriangles []int
}

func (p *Persona) lods() []int {
	if p.LODTriangles != nil {
		return p.LODTriangles
	}
	return mesh.PersonaLODTriangles()
}

func (p *Persona) radius() float64 {
	if p.RadiusM > 0 {
		return p.RadiusM
	}
	return 0.30
}

// LODLevel identifies which mesh of the chain was selected.
type LODLevel int

// LOD levels in decreasing quality.
const (
	LODFull LODLevel = iota
	LODDistance
	LODPeripheral
	LODProxy
	LODCulled // occluded: not rendered at all
)

func (l LODLevel) String() string {
	switch l {
	case LODFull:
		return "full"
	case LODDistance:
		return "distance"
	case LODPeripheral:
		return "peripheral"
	case LODProxy:
		return "proxy"
	case LODCulled:
		return "culled"
	default:
		return fmt.Sprintf("LOD(%d)", int(l))
	}
}

// PersonaCost is the per-persona render outcome for one frame.
type PersonaCost struct {
	ID        string
	LOD       LODLevel
	Triangles int
	// Coverage is the fraction of the viewport the persona covers.
	Coverage float64
	// Shade is the foveation shading-quality factor applied.
	Shade float64
	// GPUMs is this persona's share of the frame GPU time (excluding the
	// fixed floor).
	GPUMs float64
}

// FrameCost is the cost of rendering one frame.
type FrameCost struct {
	Personas  []PersonaCost
	Triangles int
	GPUMs     float64
	CPUMs     float64
	// MissedDeadline is set when GPU or CPU time exceeds the 90 FPS
	// budget.
	MissedDeadline bool
}

// Renderer evaluates frame costs for a scene. It is deterministic given its
// random source.
type Renderer struct {
	Model CostModel
	Opts  Optimizations
	rng   *simrand.Source
}

// NewRenderer builds a renderer; rng may be nil for a noise-free model
// (useful in calibration tests).
func NewRenderer(model CostModel, opts Optimizations, rng *simrand.Source) *Renderer {
	return &Renderer{Model: model, Opts: opts, rng: rng}
}

func angleBetween(a, b mesh.Vec3) float64 {
	la, lb := a.Len(), b.Len()
	if la == 0 || lb == 0 {
		return 0
	}
	c := a.Dot(b) / (la * lb)
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// selectLOD applies the optimization cascade for one persona and returns the
// level plus the shading factor.
func (r *Renderer) selectLOD(cam Camera, p *Persona, others []*Persona) (LODLevel, float64) {
	toP := p.Pos.Sub(cam.Pos)
	dist := toP.Len()
	m := &r.Model

	if r.Opts.Viewport && angleBetween(cam.Forward, toP) > m.HalfFOVRad {
		return LODProxy, 0
	}
	if r.Opts.Occlusion {
		for _, o := range others {
			if o == p {
				continue
			}
			toO := o.Pos.Sub(cam.Pos)
			dO := toO.Len()
			if dO >= dist || dO == 0 {
				continue // occluder must be nearer
			}
			// Angular radius of the occluder vs angular separation.
			sep := angleBetween(toP, toO)
			occR := math.Atan(o.radius() / dO)
			selfR := math.Atan(p.radius() / dist)
			if sep+selfR*0.5 < occR {
				return LODCulled, 0
			}
		}
	}
	peripheral := r.Opts.Foveated && angleBetween(cam.Gaze, toP) > m.FovealAngleRad
	far := r.Opts.DistanceAware && dist > m.DistanceCutoffM
	switch {
	case peripheral && far:
		return LODPeripheral, m.PeripheralShade // smaller of the two LODs
	case peripheral:
		return LODPeripheral, m.PeripheralShade
	case far:
		return LODDistance, 1
	default:
		return LODFull, 1
	}
}

// RenderFrame computes the cost of one frame of the scene: the camera plus
// all remote personas.
func (r *Renderer) RenderFrame(cam Camera, personas []*Persona) FrameCost {
	m := &r.Model
	out := FrameCost{}
	gpu := m.FixedGPUMs
	for _, p := range personas {
		lvl, shade := r.selectLOD(cam, p, personas)
		pc := PersonaCost{ID: p.ID, LOD: lvl, Shade: shade}
		if lvl != LODCulled {
			lods := p.lods()
			idx := int(lvl)
			if idx >= len(lods) {
				idx = len(lods) - 1
			}
			pc.Triangles = lods[idx]
			dist := p.Pos.Sub(cam.Pos).Len()
			if dist < m.RefDistanceM {
				dist = m.RefDistanceM
			}
			cov := (m.RefDistanceM / dist) * (m.RefDistanceM / dist)
			if lvl == LODProxy {
				cov = 0
			}
			pc.Coverage = cov
			pc.GPUMs = m.PerPersonaGPUMs +
				m.TriangleGPUMs*float64(pc.Triangles) +
				m.FragmentGPUMs*cov*shade
		}
		gpu += pc.GPUMs
		out.Triangles += pc.Triangles
		out.Personas = append(out.Personas, pc)
	}
	cpu := m.CPUBaseMs + m.CPUPerPersonaMs*float64(len(personas))
	if r.rng != nil {
		gpu *= math.Exp(r.rng.Normal(0, m.NoiseFrac))
		cpu *= math.Exp(r.rng.Normal(0, m.NoiseFrac))
	}
	out.GPUMs = gpu
	out.CPUMs = cpu
	out.MissedDeadline = gpu > DeadlineMs || cpu > DeadlineMs
	return out
}
