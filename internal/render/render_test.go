package render

import (
	"math"
	"testing"

	"telepresence/internal/mesh"
	"telepresence/internal/simrand"
)

// noiseless returns a renderer with the default model and no frame noise.
func noiseless(opts Optimizations) *Renderer {
	return NewRenderer(DefaultCostModel(), opts, nil)
}

func camAtOrigin() Camera {
	return Camera{Forward: mesh.Vec3{Z: 1}, Gaze: mesh.Vec3{Z: 1}}
}

// Figure 6 anchor scenarios. Paper values: BL 78,030 tris / 6.55 ms;
// V 36 / 2.68 ms; F 21,036 / 3.97 ms; D 45,036 / 3.91 ms.
func fig6Scenario(name string) (Camera, *Persona) {
	cam := camAtOrigin()
	p := &Persona{ID: "u2"}
	switch name {
	case "baseline":
		p.Pos = mesh.Vec3{Z: 0.5}
	case "viewport":
		p.Pos = mesh.Vec3{Z: -0.5} // behind the user
	case "foveated":
		// Still at half a meter, but ~40 deg off gaze (persona in the
		// corner of the viewport while the user looks elsewhere).
		p.Pos = mesh.Vec3{X: 0.321, Z: 0.383}
	case "distance":
		p.Pos = mesh.Vec3{Z: 3.5}
	}
	return cam, p
}

func TestFig6TriangleCounts(t *testing.T) {
	r := noiseless(FaceTimeOptimizations())
	want := map[string]int{
		"baseline": 78030,
		"viewport": 36,
		"foveated": 21036,
		"distance": 45036,
	}
	for name, tris := range want {
		cam, p := fig6Scenario(name)
		fc := r.RenderFrame(cam, []*Persona{p})
		if fc.Triangles != tris {
			t.Errorf("%s: %d triangles, want %d", name, fc.Triangles, tris)
		}
	}
}

func TestFig6GPUTimes(t *testing.T) {
	r := noiseless(FaceTimeOptimizations())
	want := map[string]float64{
		"baseline": 6.55,
		"viewport": 2.68,
		"foveated": 3.97,
		"distance": 3.91,
	}
	for name, ms := range want {
		cam, p := fig6Scenario(name)
		fc := r.RenderFrame(cam, []*Persona{p})
		if math.Abs(fc.GPUMs-ms) > 0.15 {
			t.Errorf("%s: GPU %.2f ms, want %.2f±0.15 (paper Fig.6b)", name, fc.GPUMs, ms)
		}
	}
}

func TestFig6ReductionFactors(t *testing.T) {
	r := noiseless(FaceTimeOptimizations())
	camBL, pBL := fig6Scenario("baseline")
	bl := r.RenderFrame(camBL, []*Persona{pBL})
	cases := []struct {
		name      string
		gpuRed    float64 // paper-reported GPU reduction
		triRed    float64 // paper-reported triangle reduction
		tolerance float64
	}{
		{"viewport", 0.59, 0.999, 0.05},
		{"foveated", 0.39, 0.73, 0.05},
		{"distance", 0.40, 0.42, 0.05},
	}
	for _, c := range cases {
		cam, p := fig6Scenario(c.name)
		fc := r.RenderFrame(cam, []*Persona{p})
		gpuRed := 1 - fc.GPUMs/bl.GPUMs
		triRed := 1 - float64(fc.Triangles)/float64(bl.Triangles)
		if math.Abs(gpuRed-c.gpuRed) > c.tolerance {
			t.Errorf("%s: GPU reduction %.2f, want %.2f", c.name, gpuRed, c.gpuRed)
		}
		if math.Abs(triRed-c.triRed) > c.tolerance {
			t.Errorf("%s: triangle reduction %.2f, want %.2f", c.name, triRed, c.triRed)
		}
	}
}

func TestOptimizationsOffMeansFullQuality(t *testing.T) {
	r := noiseless(NoOptimizations())
	for _, name := range []string{"baseline", "viewport", "foveated", "distance"} {
		cam, p := fig6Scenario(name)
		fc := r.RenderFrame(cam, []*Persona{p})
		if fc.Triangles != 78030 {
			t.Errorf("%s with opts off: %d triangles, want 78030", name, fc.Triangles)
		}
	}
}

// The paper's occlusion experiment (§4.4): five users, U2-U5 in a line, U1
// viewing from the front. FaceTime does not cull occluded personas.
func occlusionScene() (Camera, []*Persona) {
	cam := camAtOrigin()
	var ps []*Persona
	for i := 0; i < 4; i++ {
		ps = append(ps, &Persona{
			ID:  string(rune('a' + i)),
			Pos: mesh.Vec3{Z: 1.0 + 0.8*float64(i)},
		})
	}
	return cam, ps
}

func TestOcclusionNotAdoptedByFaceTime(t *testing.T) {
	cam, ps := occlusionScene()
	r := noiseless(FaceTimeOptimizations())
	fc := r.RenderFrame(cam, ps)
	// All four personas rendered with real LODs: no reduction from the
	// occluded arrangement.
	for _, pc := range fc.Personas {
		if pc.LOD == LODCulled {
			t.Errorf("persona %s culled although occlusion is off", pc.ID)
		}
		if pc.Triangles == 0 {
			t.Errorf("persona %s has zero triangles", pc.ID)
		}
	}
}

func TestOcclusionExtensionCulls(t *testing.T) {
	cam, ps := occlusionScene()
	opts := FaceTimeOptimizations()
	opts.Occlusion = true
	r := noiseless(opts)
	fc := r.RenderFrame(cam, ps)
	culled := 0
	for _, pc := range fc.Personas {
		if pc.LOD == LODCulled {
			culled++
		}
	}
	if culled == 0 {
		t.Fatal("occlusion enabled but nothing culled in a single-file arrangement")
	}
	if fc.Personas[0].LOD == LODCulled {
		t.Error("nearest persona culled; only hidden ones should be")
	}
	// Cost drops vs FaceTime's configuration.
	base := noiseless(FaceTimeOptimizations()).RenderFrame(cam, ps)
	if fc.GPUMs >= base.GPUMs {
		t.Errorf("occlusion culling did not reduce GPU time: %.2f vs %.2f", fc.GPUMs, base.GPUMs)
	}
}

func TestDeadlineDetection(t *testing.T) {
	r := noiseless(NoOptimizations())
	cam := camAtOrigin()
	// Many full-quality personas blow the 11.1 ms budget.
	var ps []*Persona
	for i := 0; i < 5; i++ {
		ps = append(ps, &Persona{ID: "p", Pos: mesh.Vec3{X: float64(i) * 0.2, Z: 0.8}})
	}
	fc := r.RenderFrame(cam, ps)
	if !fc.MissedDeadline {
		t.Errorf("5 unoptimized personas: GPU %.2f ms did not miss the %.1f ms deadline", fc.GPUMs, DeadlineMs)
	}
}

func TestGazeIndependentOfHead(t *testing.T) {
	// Persona inside the viewport but away from the gaze: foveated LOD.
	cam := camAtOrigin()
	cam.Gaze = mesh.Vec3{X: 0.5, Z: 0.86} // looking ~30 deg right
	p := &Persona{ID: "u2", Pos: mesh.Vec3{Z: 0.5}}
	r := noiseless(FaceTimeOptimizations())
	fc := r.RenderFrame(cam, []*Persona{p})
	if fc.Personas[0].LOD != LODPeripheral {
		t.Errorf("LOD = %v, want peripheral when gaze is averted", fc.Personas[0].LOD)
	}
}

func TestCPUInsensitiveToOptimizations(t *testing.T) {
	// §4.4: CPU time does not change with visibility optimizations.
	camBL, pBL := fig6Scenario("baseline")
	camV, pV := fig6Scenario("viewport")
	on := noiseless(FaceTimeOptimizations())
	off := noiseless(NoOptimizations())
	cpus := []float64{
		on.RenderFrame(camBL, []*Persona{pBL}).CPUMs,
		on.RenderFrame(camV, []*Persona{pV}).CPUMs,
		off.RenderFrame(camBL, []*Persona{pBL}).CPUMs,
	}
	for i := 1; i < len(cpus); i++ {
		if cpus[i] != cpus[0] {
			t.Errorf("CPU time varies with optimizations: %v", cpus)
		}
	}
}

func TestCPUScalesWithUsers(t *testing.T) {
	r := noiseless(FaceTimeOptimizations())
	cam := camAtOrigin()
	cpuAt := func(n int) float64 {
		var ps []*Persona
		for i := 0; i < n; i++ {
			ps = append(ps, &Persona{Pos: mesh.Vec3{X: float64(i)*0.5 - 1, Z: 1.2}})
		}
		return r.RenderFrame(cam, ps).CPUMs
	}
	// Paper Fig.7b: ~5.67 ms at 2 users (1 persona), ~6.76 ms at 5 users
	// (4 personas).
	if got := cpuAt(1); math.Abs(got-5.67) > 0.3 {
		t.Errorf("CPU at 2 users = %.2f ms, want ~5.67", got)
	}
	if got := cpuAt(4); math.Abs(got-6.76) > 0.4 {
		t.Errorf("CPU at 5 users = %.2f ms, want ~6.76", got)
	}
}

func TestTwoUserGPUNearPaper(t *testing.T) {
	// Fig.7b at 2 users: GPU 5.65±0.69 ms with the persona at
	// conversational distance.
	r := noiseless(FaceTimeOptimizations())
	cam := camAtOrigin()
	p := &Persona{Pos: mesh.Vec3{Z: 1.2}}
	fc := r.RenderFrame(cam, []*Persona{p})
	if fc.GPUMs < 4.9 || fc.GPUMs > 6.4 {
		t.Errorf("2-user GPU = %.2f ms, want within 5.65±0.7", fc.GPUMs)
	}
}

func TestNoiseIsLognormalAroundModel(t *testing.T) {
	cam, p := fig6Scenario("baseline")
	det := noiseless(FaceTimeOptimizations()).RenderFrame(cam, []*Persona{p})
	r := NewRenderer(DefaultCostModel(), FaceTimeOptimizations(), simrand.New(1))
	var sum float64
	const n = 3000
	for i := 0; i < n; i++ {
		sum += r.RenderFrame(cam, []*Persona{p}).GPUMs
	}
	mean := sum / n
	if math.Abs(mean-det.GPUMs)/det.GPUMs > 0.05 {
		t.Errorf("noisy mean %.2f vs model %.2f", mean, det.GPUMs)
	}
}

func TestLODLevelString(t *testing.T) {
	for lvl, want := range map[LODLevel]string{
		LODFull: "full", LODDistance: "distance", LODPeripheral: "peripheral",
		LODProxy: "proxy", LODCulled: "culled", LODLevel(9): "LOD(9)",
	} {
		if lvl.String() != want {
			t.Errorf("LODLevel(%d).String() = %q, want %q", int(lvl), lvl.String(), want)
		}
	}
}

func TestLookAt(t *testing.T) {
	c := Camera{Pos: mesh.Vec3{X: 1, Y: 2, Z: 3}}
	c.LookAt(mesh.Vec3{X: 1, Y: 2, Z: 5})
	if c.Forward.Sub(mesh.Vec3{Z: 1}).Len() > 1e-12 {
		t.Errorf("Forward = %+v, want +Z", c.Forward)
	}
	// LookAt self is a no-op, not NaN.
	c.LookAt(c.Pos)
	if math.IsNaN(c.Forward.X) {
		t.Error("LookAt self produced NaN")
	}
}

func TestCustomLODChain(t *testing.T) {
	r := noiseless(FaceTimeOptimizations())
	cam := camAtOrigin()
	p := &Persona{Pos: mesh.Vec3{Z: 0.5}, LODTriangles: []int{100, 50, 25, 4}}
	fc := r.RenderFrame(cam, []*Persona{p})
	if fc.Triangles != 100 {
		t.Errorf("custom LOD chain ignored: %d triangles", fc.Triangles)
	}
}

func BenchmarkRenderFrameFiveUsers(b *testing.B) {
	r := NewRenderer(DefaultCostModel(), FaceTimeOptimizations(), simrand.New(1))
	cam := camAtOrigin()
	var ps []*Persona
	for i := 0; i < 4; i++ {
		ps = append(ps, &Persona{Pos: mesh.Vec3{X: float64(i)*0.6 - 1, Z: 1.4}})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RenderFrame(cam, ps)
	}
}
