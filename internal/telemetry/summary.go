package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// StreamKey identifies one directed media stream (sender → receiver) by
// participant indices.
type StreamKey struct {
	Sender, Receiver int
}

// LinkSummary aggregates netem events for one named link.
type LinkSummary struct {
	Enqueued, EnqueuedBytes   int64
	Delivered, DeliveredBytes int64
	DropLoss, DropBurst       int64
	DropQueue                 int64
	MaxQueueBytes             int64
	GEBadEntries              int64
}

// SenderSummary aggregates sender-side events for one participant.
type SenderSummary struct {
	FramesSent, FramesThinned  int64
	FrameBytes                 int64
	RtxPackets, CacheMisses    int64
	ParityPackets              int64
	Reports                    int64
	TargetUpdates              int64
	TargetFirstBps             float64
	TargetLastBps              float64
	TargetMinBps, TargetMaxBps float64
	Reasons                    map[string]int64
}

// StreamSummary aggregates receiver-side events for one directed stream.
type StreamSummary struct {
	FramesDecoded, FramesLive int64
	FramesUndecodable         int64
	FrameTimeouts             int64
	RepairedRtx, RepairedFec  int64
	Unrepaired                int64
	NacksSent, NackSeqs       int64
	LatencySumMs              float64
	// DecodedPerSec is the per-second decoded-frame timeline (index =
	// floor(t_ms/1000)).
	DecodedPerSec []int64
}

// Summary is the reduction of one session trace: per-link packet fates,
// per-sender encode/control activity, and a per-stream receive timeline.
type Summary struct {
	Events          int64
	FirstMs, LastMs float64
	Links           map[string]*LinkSummary
	Senders         map[int]*SenderSummary
	Streams         map[StreamKey]*StreamSummary
}

// UserFrameCounts returns the UserStats-comparable frame/packet counters
// for one participant index: frames sent/thinned as a sender, and frames
// decoded/undecodable plus packets repaired/unrepaired summed over every
// stream it receives. This is the bridge the acceptance test walks: the
// event stream alone must reproduce the session's end-of-run aggregates.
func (s *Summary) UserFrameCounts(user int) (sent, thinned, decoded, undecodable, repaired, unrepaired int64) {
	if sd := s.Senders[user]; sd != nil {
		sent, thinned = sd.FramesSent, sd.FramesThinned
	}
	//vplint:allow maporder(accumulates commutative integer sums; every iteration order yields the same totals)
	for k, st := range s.Streams {
		if k.Receiver != user {
			continue
		}
		decoded += st.FramesDecoded
		undecodable += st.FramesUndecodable
		repaired += st.RepairedRtx + st.RepairedFec
		unrepaired += st.Unrepaired
	}
	return
}

type traceLine struct {
	TMs      float64 `json:"t_ms"`
	Cat      string  `json:"cat"`
	Ev       string  `json:"ev"`
	Link     string  `json:"link"`
	Kind     string  `json:"kind"`
	Reason   string  `json:"reason"`
	Size     int64   `json:"size"`
	Queue    int64   `json:"queue"`
	Sender   int     `json:"sender"`
	Receiver int     `json:"receiver"`
	Seqs     int64   `json:"seqs"`
	Count    int64   `json:"count"`
	Misses   int64   `json:"misses"`
	Bad      bool    `json:"bad"`
	Live     bool    `json:"live"`
	LatMs    float64 `json:"lat_ms"`
	Loss     float64 `json:"loss"`
	Target   float64 `json:"target_bps"`
	Applied  float64 `json:"applied_bps"`
}

// Summarize reads a JSONL trace, validating every line against the event
// schema, and reduces it to a Summary. It fails on the first malformed or
// undeclared line — a trace that does not validate is a bug, not data.
func Summarize(r io.Reader) (*Summary, error) {
	s := &Summary{
		FirstMs: math.NaN(),
		Links:   map[string]*LinkSummary{},
		Senders: map[int]*SenderSummary{},
		Streams: map[StreamKey]*StreamSummary{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if err := ValidateLine(raw); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		var l traceLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		s.add(&l)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if math.IsNaN(s.FirstMs) {
		s.FirstMs = 0
	}
	return s, nil
}

func (s *Summary) add(l *traceLine) {
	s.Events++
	if math.IsNaN(s.FirstMs) {
		s.FirstMs = l.TMs
	}
	if l.TMs > s.LastMs {
		s.LastMs = l.TMs
	}
	switch l.Cat {
	case "netem":
		lk := s.Links[l.Link]
		if lk == nil {
			lk = &LinkSummary{}
			s.Links[l.Link] = lk
		}
		switch l.Ev {
		case "enqueue":
			lk.Enqueued++
			lk.EnqueuedBytes += l.Size
			if l.Queue > lk.MaxQueueBytes {
				lk.MaxQueueBytes = l.Queue
			}
		case "deliver":
			lk.Delivered++
			lk.DeliveredBytes += l.Size
		case "drop":
			switch l.Kind {
			case "burst":
				lk.DropBurst++
			case "queue":
				lk.DropQueue++
			default:
				lk.DropLoss++
			}
		case "ge_state":
			if l.Bad {
				lk.GEBadEntries++
			}
		}
	case "rate":
		sd := s.sender(l.Sender)
		switch l.Ev {
		case "report":
			sd.Reports++
		case "target":
			if sd.TargetUpdates == 0 {
				sd.TargetFirstBps = l.Target
				sd.TargetMinBps, sd.TargetMaxBps = l.Target, l.Target
			}
			sd.TargetUpdates++
			sd.TargetLastBps = l.Target
			sd.TargetMinBps = math.Min(sd.TargetMinBps, l.Target)
			sd.TargetMaxBps = math.Max(sd.TargetMaxBps, l.Target)
			sd.Reasons[l.Reason]++
		}
	case "recovery":
		switch l.Ev {
		case "nack_sent":
			st := s.stream(l.Sender, l.Receiver)
			st.NacksSent++
			st.NackSeqs += l.Seqs
		case "nack_answered":
			sd := s.sender(l.Sender)
			sd.RtxPackets += l.Count
			sd.CacheMisses += l.Misses
		case "parity_sent":
			s.sender(l.Sender).ParityPackets++
		case "repair":
			st := s.stream(l.Sender, l.Receiver)
			if l.Kind == "fec" {
				st.RepairedFec += l.Count
			} else {
				st.RepairedRtx += l.Count
			}
		case "expire":
			s.stream(l.Sender, l.Receiver).Unrepaired += l.Count
		}
	case "vca":
		switch l.Ev {
		case "frame_sent":
			sd := s.sender(l.Sender)
			sd.FramesSent++
			sd.FrameBytes += l.Size
		case "frame_thinned":
			s.sender(l.Sender).FramesThinned++
		case "frame_decoded":
			st := s.stream(l.Sender, l.Receiver)
			st.FramesDecoded++
			st.LatencySumMs += l.LatMs
			if l.Live {
				st.FramesLive++
			}
			sec := int(l.TMs / 1000)
			for len(st.DecodedPerSec) <= sec {
				st.DecodedPerSec = append(st.DecodedPerSec, 0)
			}
			st.DecodedPerSec[sec]++
		case "frame_undecodable":
			s.stream(l.Sender, l.Receiver).FramesUndecodable++
		case "frame_timeout":
			s.stream(l.Sender, l.Receiver).FrameTimeouts += l.Count
		}
	}
}

func (s *Summary) sender(i int) *SenderSummary {
	sd := s.Senders[i]
	if sd == nil {
		sd = &SenderSummary{Reasons: map[string]int64{}}
		s.Senders[i] = sd
	}
	return sd
}

func (s *Summary) stream(snd, rcv int) *StreamSummary {
	k := StreamKey{snd, rcv}
	st := s.Streams[k]
	if st == nil {
		st = &StreamSummary{}
		s.Streams[k] = st
	}
	return st
}

// WriteReport renders the summary as a deterministic plain-text report:
// trace span, per-link packet fates, per-sender encode/control activity
// (with target-rate envelope and reason mix), and the per-stream timeline.
func (s *Summary) WriteReport(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d events over t=[%.3fms, %.3fms]\n", s.Events, s.FirstMs, s.LastMs)

	if len(s.Links) > 0 {
		sb.WriteString("\nlinks:\n")
		names := make([]string, 0, len(s.Links))
		for n := range s.Links {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			lk := s.Links[n]
			fmt.Fprintf(&sb, "  %-24s enq=%d (%dB) delivered=%d (%dB) drops loss=%d burst=%d queue=%d max_queue=%dB ge_bad=%d\n",
				n, lk.Enqueued, lk.EnqueuedBytes, lk.Delivered, lk.DeliveredBytes,
				lk.DropLoss, lk.DropBurst, lk.DropQueue, lk.MaxQueueBytes, lk.GEBadEntries)
		}
	}

	if len(s.Senders) > 0 {
		sb.WriteString("\nsenders:\n")
		idx := make([]int, 0, len(s.Senders))
		for i := range s.Senders {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		for _, i := range idx {
			sd := s.Senders[i]
			fmt.Fprintf(&sb, "  u%-3d frames=%d thinned=%d bytes=%d rtx=%d misses=%d parity=%d reports=%d\n",
				i, sd.FramesSent, sd.FramesThinned, sd.FrameBytes,
				sd.RtxPackets, sd.CacheMisses, sd.ParityPackets, sd.Reports)
			if sd.TargetUpdates > 0 {
				fmt.Fprintf(&sb, "       target: updates=%d first=%.0f last=%.0f min=%.0f max=%.0f reasons=%s\n",
					sd.TargetUpdates, sd.TargetFirstBps, sd.TargetLastBps,
					sd.TargetMinBps, sd.TargetMaxBps, reasonMix(sd.Reasons))
			}
		}
	}

	if len(s.Streams) > 0 {
		sb.WriteString("\nstreams (sender->receiver):\n")
		keys := make([]StreamKey, 0, len(s.Streams))
		for k := range s.Streams {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].Sender != keys[b].Sender {
				return keys[a].Sender < keys[b].Sender
			}
			return keys[a].Receiver < keys[b].Receiver
		})
		for _, k := range keys {
			st := s.Streams[k]
			meanLat := 0.0
			if st.FramesDecoded > 0 {
				meanLat = st.LatencySumMs / float64(st.FramesDecoded)
			}
			fmt.Fprintf(&sb, "  u%d->u%d decoded=%d live=%d undecodable=%d timeouts=%d repaired rtx=%d fec=%d unrepaired=%d nacks=%d (%d seqs) mean_lat=%.2fms\n",
				k.Sender, k.Receiver, st.FramesDecoded, st.FramesLive, st.FramesUndecodable,
				st.FrameTimeouts, st.RepairedRtx, st.RepairedFec, st.Unrepaired,
				st.NacksSent, st.NackSeqs, meanLat)
			if len(st.DecodedPerSec) > 0 {
				fmt.Fprintf(&sb, "       decoded/s:")
				for _, c := range st.DecodedPerSec {
					fmt.Fprintf(&sb, " %d", c)
				}
				sb.WriteByte('\n')
			}
		}
	}

	_, err := io.WriteString(w, sb.String())
	return err
}

func reasonMix(m map[string]int64) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, ",")
}
