// Package telemetry is the observability substrate for simulated sessions:
// a qlog-inspired structured event trace plus a lightweight metrics
// timeseries, both keyed by *virtual* time.
//
// Design rules, in priority order:
//
//  1. Zero cost when disabled. Every emitter is safe to call on a nil
//     *Tracer and returns immediately; call sites pass only scalars (no
//     interface boxing), so a disabled tracer adds one pointer test and no
//     allocations to hot paths.
//  2. Deterministic bytes. Events are hand-serialized JSONL with a fixed
//     key order and strconv-based number formatting — no encoding/json map
//     iteration, no wall clock, no rng. The same seed must produce a
//     byte-identical trace at any fleet worker count.
//  3. Virtual time only. Every line carries t_ms, the simulation clock in
//     milliseconds. Wall-clock timing belongs in fleet manifests, never in
//     traces.
package telemetry

import (
	"io"
	"strconv"

	"telepresence/internal/simtime"
)

// Tracer serializes typed session events as JSONL to an underlying writer.
// A nil *Tracer is valid and inert: every emitter no-ops. Tracers buffer one
// line at a time and reuse the buffer, so steady-state emission performs no
// allocations beyond the writer's own.
//
// Write errors latch: after the first failure the tracer drops subsequent
// events and Err returns the cause. Sessions are single-goroutine; Tracer is
// not safe for concurrent use.
type Tracer struct {
	w      io.Writer
	buf    []byte
	events int64
	err    error
}

// NewTracer returns a tracer emitting JSONL events to w. Callers own w's
// lifecycle (buffering, flushing, closing).
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, buf: make([]byte, 0, 256)}
}

// Events reports how many events have been written (0 on a nil tracer).
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	return t.events
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// begin starts a line with the common envelope. cat and ev are trusted
// schema literals and are not escaped.
func (t *Tracer) begin(now simtime.Time, cat, ev string) {
	b := t.buf[:0]
	b = append(b, `{"t_ms":`...)
	b = appendNum(b, now.Milliseconds())
	b = append(b, `,"cat":"`...)
	b = append(b, cat...)
	b = append(b, `","ev":"`...)
	b = append(b, ev...)
	b = append(b, '"')
	t.buf = b
}

func (t *Tracer) str(key, v string) {
	b := append(t.buf, ',', '"')
	b = append(b, key...)
	b = append(b, `":"`...)
	b = appendEscaped(b, v)
	t.buf = append(b, '"')
}

func (t *Tracer) num(key string, v int64) {
	b := append(t.buf, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	t.buf = strconv.AppendInt(b, v, 10)
}

func (t *Tracer) f64(key string, v float64) {
	b := append(t.buf, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	t.buf = appendNum(b, v)
}

func (t *Tracer) boolean(key string, v bool) {
	b := append(t.buf, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	t.buf = strconv.AppendBool(b, v)
}

func (t *Tracer) end() {
	t.buf = append(t.buf, '}', '\n')
	if t.err == nil {
		if _, err := t.w.Write(t.buf); err != nil {
			t.err = err
			return
		}
		t.events++
	}
}

// appendNum formats a float with the shortest representation that parses
// back exactly ('f' format, no exponent) — deterministic across platforms.
func appendNum(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'f', -1, 64)
}

// appendEscaped JSON-escapes v (quotes, backslashes, control bytes). Trace
// strings are ASCII identifiers in practice; the loop is the safety net.
func appendEscaped(b []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return b
}

// ---- netem events ----

// NetemEnqueue records a packet admitted to a link queue: its size, the
// queue occupancy in bytes after admission (the queue-bytes gauge), and the
// virtual time at which serialization completes.
func (t *Tracer) NetemEnqueue(now simtime.Time, link string, size, queueBytes int, txMs float64) {
	if t == nil {
		return
	}
	t.begin(now, "netem", "enqueue")
	t.str("link", link)
	t.num("size", int64(size))
	t.num("queue", int64(queueBytes))
	t.f64("tx_ms", txMs)
	t.end()
}

// NetemDrop records a packet dropped by a link. kind is one of "loss"
// (intrinsic or shaper random loss), "burst" (Gilbert-Elliott bad state), or
// "queue" (tail drop on a full queue).
func (t *Tracer) NetemDrop(now simtime.Time, link string, size int, kind string) {
	if t == nil {
		return
	}
	t.begin(now, "netem", "drop")
	t.str("link", link)
	t.num("size", int64(size))
	t.str("kind", kind)
	t.end()
}

// NetemDeliver records a packet handed to the link's receiver.
func (t *Tracer) NetemDeliver(now simtime.Time, link string, size int) {
	if t == nil {
		return
	}
	t.begin(now, "netem", "deliver")
	t.str("link", link)
	t.num("size", int64(size))
	t.end()
}

// NetemGEState records a Gilbert-Elliott burst-loss state transition.
func (t *Tracer) NetemGEState(now simtime.Time, link string, bad bool) {
	if t == nil {
		return
	}
	t.begin(now, "netem", "ge_state")
	t.str("link", link)
	t.boolean("bad", bad)
	t.end()
}

// ---- ratecontrol events ----

// RateReport records a transport feedback report arriving at sender's
// congestion controller: the fraction lost, the one-way delay sample, and
// the receive rate it carried.
func (t *Tracer) RateReport(now simtime.Time, sender int, loss, owdMs, rateBps float64) {
	if t == nil {
		return
	}
	t.begin(now, "rate", "report")
	t.num("sender", int64(sender))
	t.f64("loss", loss)
	t.f64("owd_ms", owdMs)
	t.f64("rate_bps", rateBps)
	t.end()
}

// RateTarget records a controller decision: the controller's raw target, the
// target after redundancy-overhead charging (what the encoder sees), and the
// controller's reason code for the move.
func (t *Tracer) RateTarget(now simtime.Time, sender int, targetBps, appliedBps float64, reason string) {
	if t == nil {
		return
	}
	t.begin(now, "rate", "target")
	t.num("sender", int64(sender))
	t.f64("target_bps", targetBps)
	t.f64("applied_bps", appliedBps)
	t.str("reason", reason)
	t.end()
}

// ---- recovery events ----

// NackSent records receiver sending a NACK for seqs missing packets of
// sender's stream.
func (t *Tracer) NackSent(now simtime.Time, sender, receiver, seqs int) {
	if t == nil {
		return
	}
	t.begin(now, "recovery", "nack_sent")
	t.num("sender", int64(sender))
	t.num("receiver", int64(receiver))
	t.num("seqs", int64(seqs))
	t.end()
}

// NackAnswered records sender answering a NACK with count retransmissions
// (misses = requested seqs no longer in the cache).
func (t *Tracer) NackAnswered(now simtime.Time, sender, count, misses int) {
	if t == nil {
		return
	}
	t.begin(now, "recovery", "nack_answered")
	t.num("sender", int64(sender))
	t.num("count", int64(count))
	t.num("misses", int64(misses))
	t.end()
}

// ParitySent records sender emitting one XOR parity packet of size bytes.
func (t *Tracer) ParitySent(now simtime.Time, sender, size int) {
	if t == nil {
		return
	}
	t.begin(now, "recovery", "parity_sent")
	t.num("sender", int64(sender))
	t.num("size", int64(size))
	t.end()
}

// Repair records receiver repairing count packets of sender's stream. kind
// is "rtx" (a late retransmission filled the gap) or "fec" (XOR parity
// reconstruction).
func (t *Tracer) Repair(now simtime.Time, sender, receiver int, kind string, count int) {
	if t == nil {
		return
	}
	t.begin(now, "recovery", "repair")
	t.num("sender", int64(sender))
	t.num("receiver", int64(receiver))
	t.str("kind", kind)
	t.num("count", int64(count))
	t.end()
}

// Expire records count gaps of sender's stream written off by receiver —
// the repair deadline passed (or bulk loss exceeded tracking capacity).
func (t *Tracer) Expire(now simtime.Time, sender, receiver, count int) {
	if t == nil {
		return
	}
	t.begin(now, "recovery", "expire")
	t.num("sender", int64(sender))
	t.num("receiver", int64(receiver))
	t.num("count", int64(count))
	t.end()
}

// ---- vca events ----

// FrameSent records sender encoding one video/spatial frame of size bytes.
func (t *Tracer) FrameSent(now simtime.Time, sender, size int) {
	if t == nil {
		return
	}
	t.begin(now, "vca", "frame_sent")
	t.num("sender", int64(sender))
	t.num("size", int64(size))
	t.end()
}

// FrameThinned records sender's encoder skipping a frame to honor the rate
// target (temporal thinning).
func (t *Tracer) FrameThinned(now simtime.Time, sender int) {
	if t == nil {
		return
	}
	t.begin(now, "vca", "frame_thinned")
	t.num("sender", int64(sender))
	t.end()
}

// FrameDecoded records receiver decoding a complete frame from sender:
// its end-to-end latency and whether it met the freshness (liveness) limit.
func (t *Tracer) FrameDecoded(now simtime.Time, sender, receiver int, latMs float64, live bool) {
	if t == nil {
		return
	}
	t.begin(now, "vca", "frame_decoded")
	t.num("sender", int64(sender))
	t.num("receiver", int64(receiver))
	t.f64("lat_ms", latMs)
	t.boolean("live", live)
	t.end()
}

// FrameUndecodable records receiver discarding a frame from sender that
// arrived incomplete or corrupt.
func (t *Tracer) FrameUndecodable(now simtime.Time, sender, receiver int) {
	if t == nil {
		return
	}
	t.begin(now, "vca", "frame_undecodable")
	t.num("sender", int64(sender))
	t.num("receiver", int64(receiver))
	t.end()
}

// FrameTimeout records receiver garbage-collecting count incomplete frames
// of sender's stream whose reassembly deadline passed.
func (t *Tracer) FrameTimeout(now simtime.Time, sender, receiver, count int) {
	if t == nil {
		return
	}
	t.begin(now, "vca", "frame_timeout")
	t.num("sender", int64(sender))
	t.num("receiver", int64(receiver))
	t.num("count", int64(count))
	t.end()
}
