package telemetry

import (
	"fmt"
	"io"
)

// Format selects the metrics timeseries encoding.
type Format uint8

const (
	// CSV writes a header row of series names then one row per sample.
	FormatCSV Format = iota
	// JSONL writes one {"t_ms":…,"name":value,…} object per sample, keys
	// in registration order.
	FormatJSONL
)

// Metrics is an ordered registry of gauge callbacks sampled on a virtual
// time tick. Series are registered once at wiring time; each Sample calls
// every gauge in registration order and writes one row, so the output is
// deterministic whenever the gauges are.
//
// A nil *Metrics is valid and inert. Like Tracer, Metrics is
// single-goroutine and latches its first write error.
type Metrics struct {
	w      io.Writer
	format Format
	names  []string
	gauges []func() float64
	buf    []byte
	rows   int64
	header bool
	err    error
}

// NewMetrics returns a metrics registry writing rows to w in the given
// format.
func NewMetrics(w io.Writer, format Format) *Metrics {
	return &Metrics{w: w, format: format, buf: make([]byte, 0, 256)}
}

// Register adds a named gauge. Names must be unique and registration must
// finish before the first Sample (the CSV header is emitted then). A nil
// receiver ignores the call.
func (m *Metrics) Register(name string, gauge func() float64) {
	if m == nil {
		return
	}
	if m.header {
		panic("telemetry: Register after first Sample")
	}
	for _, n := range m.names {
		if n == name {
			panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
		}
	}
	m.names = append(m.names, name)
	m.gauges = append(m.gauges, gauge)
}

// Names returns the registered series names in order.
func (m *Metrics) Names() []string {
	if m == nil {
		return nil
	}
	return m.names
}

// Rows reports how many sample rows have been written.
func (m *Metrics) Rows() int64 {
	if m == nil {
		return 0
	}
	return m.rows
}

// Err returns the first write error, if any.
func (m *Metrics) Err() error {
	if m == nil {
		return nil
	}
	return m.err
}

// Sample reads every gauge and writes one row stamped tMs (virtual
// milliseconds). A nil receiver ignores the call.
func (m *Metrics) Sample(tMs float64) {
	if m == nil {
		return
	}
	switch m.format {
	case FormatCSV:
		if !m.header {
			m.header = true
			b := append(m.buf[:0], "t_ms"...)
			for _, n := range m.names {
				b = append(b, ',')
				b = append(b, n...)
			}
			m.write(append(b, '\n'))
		}
		b := appendNum(m.buf[:0], tMs)
		for _, g := range m.gauges {
			b = append(b, ',')
			b = appendNum(b, g())
		}
		m.write(append(b, '\n'))
	case FormatJSONL:
		m.header = true
		b := append(m.buf[:0], `{"t_ms":`...)
		b = appendNum(b, tMs)
		for i, g := range m.gauges {
			b = append(b, ',', '"')
			b = appendEscaped(b, m.names[i])
			b = append(b, '"', ':')
			b = appendNum(b, g())
		}
		m.write(append(b, '}', '\n'))
	}
	m.rows++
}

func (m *Metrics) write(b []byte) {
	m.buf = b[:0]
	if m.err == nil {
		if _, err := m.w.Write(b); err != nil {
			m.err = err
		}
	}
}

// ParseFormat maps a CLI string to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "csv":
		return FormatCSV, nil
	case "jsonl":
		return FormatJSONL, nil
	}
	return 0, fmt.Errorf("telemetry: unknown metrics format %q (want csv or jsonl)", s)
}
