package telemetry

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"telepresence/internal/simtime"
)

// emitAll fires every emitter exactly once, covering the whole schema.
func emitAll(tr *Tracer, now simtime.Time) {
	tr.NetemEnqueue(now, "u1.up", 1200, 2400, 0.96)
	tr.NetemDrop(now, "u1.up", 1200, "burst")
	tr.NetemDeliver(now, "u1.up", 1200)
	tr.NetemGEState(now, "u1.up", true)
	tr.RateReport(now, 0, 0.05, 42.5, 1.4e6)
	tr.RateTarget(now, 0, 1.2e6, 1.1e6, "backoff-loss")
	tr.NackSent(now, 0, 1, 3)
	tr.NackAnswered(now, 0, 2, 1)
	tr.ParitySent(now, 0, 1100)
	tr.Repair(now, 0, 1, "rtx", 2)
	tr.Expire(now, 0, 1, 1)
	tr.FrameSent(now, 0, 9000)
	tr.FrameThinned(now, 0)
	tr.FrameDecoded(now, 0, 1, 83.25, true)
	tr.FrameUndecodable(now, 0, 1)
	tr.FrameTimeout(now, 0, 1, 2)
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	emitAll(tr, simtime.Time(5*simtime.Millisecond)) // must not panic
	if tr.Events() != 0 {
		t.Fatalf("nil tracer Events() = %d", tr.Events())
	}
	if tr.Err() != nil {
		t.Fatalf("nil tracer Err() = %v", tr.Err())
	}
}

func TestTracerBytesAreDeterministic(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		for i := 0; i < 3; i++ {
			emitAll(tr, simtime.Time(simtime.Duration(i)*simtime.Millisecond/4))
		}
		if err := tr.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical emission sequences produced different bytes")
	}
	if n := bytes.Count(a, []byte{'\n'}); n != 48 {
		t.Fatalf("expected 48 lines, got %d", n)
	}
}

func TestTracerExactEncoding(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	now := simtime.Time(1500 * simtime.Microsecond) // 1.5 ms
	tr.NetemEnqueue(now, "u1.up", 1200, 2400, 0.5)
	tr.FrameDecoded(now, 0, 1, 83.25, false)
	want := `{"t_ms":1.5,"cat":"netem","ev":"enqueue","link":"u1.up","size":1200,"queue":2400,"tx_ms":0.5}
{"t_ms":1.5,"cat":"vca","ev":"frame_decoded","sender":0,"receiver":1,"lat_ms":83.25,"live":false}
`
	if got := buf.String(); got != want {
		t.Fatalf("encoding mismatch:\ngot  %q\nwant %q", got, want)
	}
	if tr.Events() != 2 {
		t.Fatalf("Events() = %d, want 2", tr.Events())
	}
}

func TestTracerEscapesStrings(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.NetemDeliver(0, "we\"ird\\link\x01", 1)
	line := buf.String()
	if want := `"link":"we\"ird\\link\u0001"`; !strings.Contains(line, want) {
		t.Fatalf("escaping failed: %q", line)
	}
	if err := ValidateLine(bytes.TrimRight(buf.Bytes(), "\n")); err != nil {
		t.Fatalf("escaped line does not validate: %v", err)
	}
}

func TestTracerSteadyStateAllocs(t *testing.T) {
	tr := NewTracer(io.Discard)
	emitAll(tr, 0) // warm up: grow the line buffer once
	allocs := testing.AllocsPerRun(100, func() {
		emitAll(tr, simtime.Time(7*simtime.Millisecond))
	})
	if allocs != 0 {
		t.Fatalf("steady-state emission allocates %.1f/op, want 0", allocs)
	}
}

type failWriter struct{ err error }

func (w failWriter) Write(p []byte) (int, error) { return 0, w.err }

func TestTracerLatchesWriteError(t *testing.T) {
	boom := errors.New("boom")
	tr := NewTracer(failWriter{boom})
	tr.FrameThinned(0, 0)
	tr.FrameThinned(0, 0)
	if !errors.Is(tr.Err(), boom) {
		t.Fatalf("Err() = %v, want boom", tr.Err())
	}
	if tr.Events() != 0 {
		t.Fatalf("Events() = %d after failed writes", tr.Events())
	}
}

func TestEveryEmitterValidatesAgainstSchema(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	emitAll(tr, simtime.Time(3*simtime.Millisecond))
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte{'\n'})
	// One line per schema entry: emitAll covers the whole schema.
	var schemaEvents int
	for _, evs := range Schema {
		schemaEvents += len(evs)
	}
	if len(lines) != schemaEvents {
		t.Fatalf("emitAll wrote %d lines, schema has %d events", len(lines), schemaEvents)
	}
	seen := map[string]bool{}
	for i, line := range lines {
		if err := ValidateLine(line); err != nil {
			t.Errorf("line %d %q: %v", i+1, line, err)
		}
		// Track cat/ev coverage crudely via the envelope prefix.
		if j := bytes.Index(line, []byte(`"ev":"`)); j >= 0 {
			rest := line[j+6:]
			seen[string(rest[:bytes.IndexByte(rest, '"')])] = true
		}
	}
	for _, evs := range Schema {
		for ev := range evs {
			if !seen[ev] {
				t.Errorf("schema event %q not covered by emitAll", ev)
			}
		}
	}
}

func TestValidateLineRejections(t *testing.T) {
	cases := []struct {
		name, line string
	}{
		{"bad json", `{"t_ms":`},
		{"missing t_ms", `{"cat":"netem","ev":"deliver","link":"l","size":1}`},
		{"string t_ms", `{"t_ms":"5","cat":"netem","ev":"deliver","link":"l","size":1}`},
		{"unknown cat", `{"t_ms":1,"cat":"nope","ev":"deliver","link":"l","size":1}`},
		{"unknown ev", `{"t_ms":1,"cat":"netem","ev":"nope","link":"l","size":1}`},
		{"missing field", `{"t_ms":1,"cat":"netem","ev":"deliver","link":"l"}`},
		{"wrong type", `{"t_ms":1,"cat":"netem","ev":"deliver","link":"l","size":"1"}`},
		{"undeclared field", `{"t_ms":1,"cat":"netem","ev":"deliver","link":"l","size":1,"extra":2}`},
	}
	for _, c := range cases {
		if err := ValidateLine([]byte(c.line)); err == nil {
			t.Errorf("%s: ValidateLine accepted %q", c.name, c.line)
		}
	}
	ok := `{"t_ms":1.5,"cat":"netem","ev":"deliver","link":"l","size":1}`
	if err := ValidateLine([]byte(ok)); err != nil {
		t.Errorf("valid line rejected: %v", err)
	}
}

func TestSchemaDocIsSortedAndComplete(t *testing.T) {
	doc := SchemaDoc()
	var schemaEvents int
	for _, evs := range Schema {
		schemaEvents += len(evs)
	}
	lines := strings.Split(strings.TrimRight(doc, "\n"), "\n")
	if len(lines) != schemaEvents {
		t.Fatalf("SchemaDoc has %d lines, schema %d events", len(lines), schemaEvents)
	}
	if !sortedStrings(lines) {
		t.Fatal("SchemaDoc lines not sorted")
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// ---- metrics ----

func TestMetricsCSV(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetrics(&buf, FormatCSV)
	x := 1.0
	m.Register("a", func() float64 { return x })
	m.Register("b", func() float64 { return -x / 2 })
	m.Sample(100)
	x = 2
	m.Sample(200.5)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	want := "t_ms,a,b\n100,1,-0.5\n200.5,2,-1\n"
	if got := buf.String(); got != want {
		t.Fatalf("CSV mismatch:\ngot  %q\nwant %q", got, want)
	}
	if m.Rows() != 2 {
		t.Fatalf("Rows() = %d", m.Rows())
	}
}

func TestMetricsJSONL(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetrics(&buf, FormatJSONL)
	m.Register("rate", func() float64 { return 1.5e6 })
	m.Sample(0)
	want := `{"t_ms":0,"rate":1500000}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("JSONL mismatch:\ngot  %q\nwant %q", got, want)
	}
}

func TestNilMetricsIsInert(t *testing.T) {
	var m *Metrics
	m.Register("a", func() float64 { return 1 })
	m.Sample(0)
	if m.Rows() != 0 || m.Names() != nil || m.Err() != nil {
		t.Fatal("nil metrics not inert")
	}
}

func TestMetricsRegistrationGuards(t *testing.T) {
	m := NewMetrics(io.Discard, FormatCSV)
	m.Register("a", func() float64 { return 0 })
	mustPanic(t, "duplicate name", func() { m.Register("a", func() float64 { return 0 }) })
	m.Sample(0)
	mustPanic(t, "register after sample", func() { m.Register("b", func() float64 { return 0 }) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat("csv"); err != nil || f != FormatCSV {
		t.Fatalf("csv: %v %v", f, err)
	}
	if f, err := ParseFormat("jsonl"); err != nil || f != FormatJSONL {
		t.Fatalf("jsonl: %v %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("xml accepted")
	}
}

// ---- summary ----

func TestSummarizeAggregates(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	ms := func(v int) simtime.Time { return simtime.Time(simtime.Duration(v) * simtime.Millisecond) }
	tr.NetemEnqueue(ms(1), "u1.up", 1000, 1000, 0.8)
	tr.NetemEnqueue(ms(2), "u1.up", 500, 1500, 0.4)
	tr.NetemDeliver(ms(3), "u1.up", 1000)
	tr.NetemDrop(ms(4), "u1.up", 500, "burst")
	tr.NetemDrop(ms(5), "u1.up", 500, "queue")
	tr.NetemDrop(ms(6), "u1.up", 500, "loss")
	tr.NetemGEState(ms(7), "u1.up", true)
	tr.NetemGEState(ms(8), "u1.up", false)
	tr.RateReport(ms(100), 0, 0.1, 40, 1e6)
	tr.RateTarget(ms(100), 0, 2e6, 1.8e6, "backoff-loss")
	tr.RateTarget(ms(200), 0, 2.5e6, 2.3e6, "increase")
	tr.NackSent(ms(120), 0, 1, 4)
	tr.NackAnswered(ms(130), 0, 3, 1)
	tr.ParitySent(ms(140), 0, 1100)
	tr.Repair(ms(150), 0, 1, "rtx", 2)
	tr.Repair(ms(155), 0, 1, "fec", 1)
	tr.Expire(ms(160), 0, 1, 1)
	tr.FrameSent(ms(300), 0, 9000)
	tr.FrameThinned(ms(310), 0)
	tr.FrameDecoded(ms(1400), 0, 1, 80, true)
	tr.FrameDecoded(ms(2400), 0, 1, 300, false)
	tr.FrameUndecodable(ms(2500), 0, 1)
	tr.FrameTimeout(ms(2600), 0, 1, 2)

	sum, err := Summarize(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != 23 {
		t.Fatalf("Events = %d, want 23", sum.Events)
	}
	if sum.FirstMs != 1 || sum.LastMs != 2600 {
		t.Fatalf("span [%v, %v]", sum.FirstMs, sum.LastMs)
	}
	lk := sum.Links["u1.up"]
	if lk == nil {
		t.Fatal("no u1.up link")
	}
	if lk.Enqueued != 2 || lk.EnqueuedBytes != 1500 || lk.Delivered != 1 ||
		lk.DropBurst != 1 || lk.DropQueue != 1 || lk.DropLoss != 1 ||
		lk.MaxQueueBytes != 1500 || lk.GEBadEntries != 1 {
		t.Fatalf("link summary %+v", *lk)
	}
	sd := sum.Senders[0]
	if sd == nil {
		t.Fatal("no sender 0")
	}
	if sd.Reports != 1 || sd.TargetUpdates != 2 || sd.TargetFirstBps != 2e6 ||
		sd.TargetLastBps != 2.5e6 || sd.TargetMinBps != 2e6 || sd.TargetMaxBps != 2.5e6 ||
		sd.RtxPackets != 3 || sd.CacheMisses != 1 || sd.ParityPackets != 1 ||
		sd.FramesSent != 1 || sd.FramesThinned != 1 {
		t.Fatalf("sender summary %+v", *sd)
	}
	if sd.Reasons["backoff-loss"] != 1 || sd.Reasons["increase"] != 1 {
		t.Fatalf("reasons %v", sd.Reasons)
	}
	st := sum.Streams[StreamKey{0, 1}]
	if st == nil {
		t.Fatal("no stream 0->1")
	}
	if st.FramesDecoded != 2 || st.FramesLive != 1 || st.FramesUndecodable != 1 ||
		st.FrameTimeouts != 2 || st.RepairedRtx != 2 || st.RepairedFec != 1 ||
		st.Unrepaired != 1 || st.NacksSent != 1 || st.NackSeqs != 4 {
		t.Fatalf("stream summary %+v", *st)
	}
	if len(st.DecodedPerSec) != 3 || st.DecodedPerSec[1] != 1 || st.DecodedPerSec[2] != 1 {
		t.Fatalf("decoded/s %v", st.DecodedPerSec)
	}

	sent, thinned, decoded, undec, rep, unrep := sum.UserFrameCounts(1)
	if sent != 0 || thinned != 0 || decoded != 2 || undec != 1 || rep != 3 || unrep != 1 {
		t.Fatalf("UserFrameCounts(1) = %d %d %d %d %d %d", sent, thinned, decoded, undec, rep, unrep)
	}

	var rpt bytes.Buffer
	if err := sum.WriteReport(&rpt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"23 events", "u1.up", "u0", "u0->u1", "decoded/s: 0 1 1", "backoff-loss:1"} {
		if !strings.Contains(rpt.String(), want) {
			t.Errorf("report missing %q:\n%s", want, rpt.String())
		}
	}
}

func TestSummarizeRejectsBadLines(t *testing.T) {
	in := `{"t_ms":1,"cat":"netem","ev":"deliver","link":"l","size":1}
{"t_ms":2,"cat":"bogus","ev":"deliver"}
`
	if _, err := Summarize(strings.NewReader(in)); err == nil {
		t.Fatal("bad line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
}
