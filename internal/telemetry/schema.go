package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// FieldKind is the JSON type a schema field must carry.
type FieldKind uint8

const (
	// Number is any JSON number (integers and floats alike).
	Number FieldKind = iota
	// String is a JSON string.
	String
	// Bool is a JSON true/false.
	Bool
)

func (k FieldKind) String() string {
	switch k {
	case Number:
		return "number"
	case String:
		return "string"
	case Bool:
		return "bool"
	}
	return "unknown"
}

// Field is one typed attribute of an event beyond the common envelope.
type Field struct {
	Name string
	Kind FieldKind
}

// Schema maps category → event → required fields. Every emitted line
// carries the envelope (t_ms number, cat string, ev string) plus exactly
// the fields listed here — no optional attributes, which keeps traces
// column-stable for downstream tooling.
var Schema = map[string]map[string][]Field{
	"netem": {
		"enqueue":  {{"link", String}, {"size", Number}, {"queue", Number}, {"tx_ms", Number}},
		"drop":     {{"link", String}, {"size", Number}, {"kind", String}},
		"deliver":  {{"link", String}, {"size", Number}},
		"ge_state": {{"link", String}, {"bad", Bool}},
	},
	"rate": {
		"report": {{"sender", Number}, {"loss", Number}, {"owd_ms", Number}, {"rate_bps", Number}},
		"target": {{"sender", Number}, {"target_bps", Number}, {"applied_bps", Number}, {"reason", String}},
	},
	"recovery": {
		"nack_sent":     {{"sender", Number}, {"receiver", Number}, {"seqs", Number}},
		"nack_answered": {{"sender", Number}, {"count", Number}, {"misses", Number}},
		"parity_sent":   {{"sender", Number}, {"size", Number}},
		"repair":        {{"sender", Number}, {"receiver", Number}, {"kind", String}, {"count", Number}},
		"expire":        {{"sender", Number}, {"receiver", Number}, {"count", Number}},
	},
	"vca": {
		"frame_sent":        {{"sender", Number}, {"size", Number}},
		"frame_thinned":     {{"sender", Number}},
		"frame_decoded":     {{"sender", Number}, {"receiver", Number}, {"lat_ms", Number}, {"live", Bool}},
		"frame_undecodable": {{"sender", Number}, {"receiver", Number}},
		"frame_timeout":     {{"sender", Number}, {"receiver", Number}, {"count", Number}},
	},
}

// SchemaDoc renders the schema as a deterministic human-readable listing
// (for `vpfleet trace schema` style introspection and docs).
func SchemaDoc() string {
	var sb strings.Builder
	cats := make([]string, 0, len(Schema))
	for c := range Schema {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		evs := make([]string, 0, len(Schema[c]))
		for e := range Schema[c] {
			evs = append(evs, e)
		}
		sort.Strings(evs)
		for _, e := range evs {
			fmt.Fprintf(&sb, "%s/%s:", c, e)
			for _, f := range Schema[c][e] {
				fmt.Fprintf(&sb, " %s=%s", f.Name, f.Kind)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// rawKind classifies a JSON raw value by its first byte.
func rawKind(raw json.RawMessage) (FieldKind, bool) {
	if len(raw) == 0 {
		return 0, false
	}
	switch c := raw[0]; {
	case c == '"':
		return String, true
	case c == 't' || c == 'f':
		return Bool, true
	case c == '-' || (c >= '0' && c <= '9'):
		return Number, true
	}
	return 0, false
}

// ValidateLine checks one trace line against the event schema: valid JSON,
// complete envelope, a known cat/ev pair, every declared field present with
// the declared type, and no undeclared fields.
func ValidateLine(line []byte) error {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(line, &m); err != nil {
		return fmt.Errorf("telemetry: invalid JSON: %w", err)
	}
	if k, ok := rawKind(m["t_ms"]); !ok || k != Number {
		return fmt.Errorf("telemetry: missing or non-numeric t_ms")
	}
	var cat, ev string
	if err := json.Unmarshal(m["cat"], &cat); err != nil {
		return fmt.Errorf("telemetry: missing or non-string cat")
	}
	if err := json.Unmarshal(m["ev"], &ev); err != nil {
		return fmt.Errorf("telemetry: missing or non-string ev")
	}
	events, ok := Schema[cat]
	if !ok {
		return fmt.Errorf("telemetry: unknown category %q", cat)
	}
	fields, ok := events[ev]
	if !ok {
		return fmt.Errorf("telemetry: unknown event %s/%s", cat, ev)
	}
	for _, f := range fields {
		raw, ok := m[f.Name]
		if !ok {
			return fmt.Errorf("telemetry: %s/%s missing field %q", cat, ev, f.Name)
		}
		if k, ok := rawKind(raw); !ok || k != f.Kind {
			return fmt.Errorf("telemetry: %s/%s field %q is not a %s", cat, ev, f.Name, f.Kind)
		}
	}
	if want := len(fields) + 3; len(m) != want {
		// Report the lexically first undeclared field: with several extras
		// on one line, ranging the map directly would name a different one
		// each run, and validator output must be as deterministic as the
		// traces it polices.
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if k == "t_ms" || k == "cat" || k == "ev" {
				continue
			}
			known := false
			for _, f := range fields {
				if f.Name == k {
					known = true
					break
				}
			}
			if !known {
				return fmt.Errorf("telemetry: %s/%s has undeclared field %q", cat, ev, k)
			}
		}
	}
	return nil
}
