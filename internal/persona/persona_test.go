package persona

import (
	"math"
	"testing"

	"telepresence/internal/keypoints"
	"telepresence/internal/mesh"
	"telepresence/internal/semantic"
	"telepresence/internal/simrand"
)

func smallAsset(t *testing.T, seed int64) *Asset {
	t.Helper()
	a, err := NewAsset(simrand.New(seed), Config{
		Name: "u2", TargetTriangles: 2000, BuildLODs: true, BindK: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAssetLODChainRatios(t *testing.T) {
	a := smallAsset(t, 1)
	if len(a.LODs) != 4 {
		t.Fatalf("%d LODs, want 4", len(a.LODs))
	}
	full := a.LODs[0].TriangleCount()
	for i := 1; i < len(a.LODs); i++ {
		if a.LODs[i].TriangleCount() >= a.LODs[i-1].TriangleCount() {
			t.Errorf("LOD %d (%d tris) not smaller than LOD %d (%d)",
				i, a.LODs[i].TriangleCount(), i-1, a.LODs[i-1].TriangleCount())
		}
	}
	// Proxy LOD is tiny.
	if proxy := a.LODs[3].TriangleCount(); proxy > full/50 {
		t.Errorf("proxy LOD %d too large vs full %d", proxy, full)
	}
	for i, l := range a.LODs {
		if err := l.Validate(); err != nil {
			t.Errorf("LOD %d invalid: %v", i, err)
		}
	}
}

func TestPoseNeutralIsNearIdentity(t *testing.T) {
	a := smallAsset(t, 2)
	var nf keypoints.Frame
	nf.Face = keypoints.NeutralFace()
	nf.LeftHand = keypoints.NeutralHand(-1)
	nf.RightHand = keypoints.NeutralHand(1)
	df := &semantic.DecodedFrame{Points: nf.Tracked()}
	posed, err := a.Pose(df)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range posed.Vertices {
		if d := posed.Vertices[i].Sub(a.LODs[0].Vertices[i]).Len(); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Errorf("neutral pose moved vertices by %v", worst)
	}
}

func TestPoseYawRotates(t *testing.T) {
	a := smallAsset(t, 3)
	var nf keypoints.Frame
	nf.Face = keypoints.NeutralFace()
	nf.LeftHand = keypoints.NeutralHand(-1)
	nf.RightHand = keypoints.NeutralHand(1)
	df := &semantic.DecodedFrame{Points: nf.Tracked(), Yaw: math.Pi / 2}
	posed, err := a.Pose(df)
	if err != nil {
		t.Fatal(err)
	}
	// 90 degree yaw: x' = x cos + z sin, z' = -x sin + z cos -> (z, -x).
	for i, v := range a.LODs[0].Vertices[:50] {
		got := posed.Vertices[i]
		want := mesh.Vec3{X: v.Z, Y: v.Y, Z: -v.X}
		if got.Sub(want).Len() > 1e-9 {
			t.Fatalf("vertex %d rotated to %+v, want %+v", i, got, want)
		}
	}
}

func TestPoseExpressionMovesMouthRegion(t *testing.T) {
	a := smallAsset(t, 4)
	var nf keypoints.Frame
	nf.Face = keypoints.NeutralFace()
	nf.LeftHand = keypoints.NeutralHand(-1)
	nf.RightHand = keypoints.NeutralHand(1)
	pts := nf.Tracked()
	// Open the mouth: push all mouth keypoints (indices 12..31 of the
	// tracked set) down by 1 cm.
	moved := append([]keypoints.Point(nil), pts...)
	for i := 12; i < 32; i++ {
		moved[i].Y -= 0.01
	}
	neutral, _ := a.Pose(&semantic.DecodedFrame{Points: pts})
	open, err := a.Pose(&semantic.DecodedFrame{Points: moved})
	if err != nil {
		t.Fatal(err)
	}
	var movedCount int
	var maxMove float64
	for i := range neutral.Vertices {
		d := open.Vertices[i].Sub(neutral.Vertices[i]).Len()
		if d > 1e-4 {
			movedCount++
		}
		if d > maxMove {
			maxMove = d
		}
	}
	if movedCount == 0 {
		t.Fatal("expression did not move any vertices")
	}
	if movedCount == len(neutral.Vertices) {
		t.Error("expression moved every vertex; binding has no locality")
	}
	if maxMove > 0.011 {
		t.Errorf("max vertex move %v exceeds keypoint displacement", maxMove)
	}
}

func TestPoseWrongPointCount(t *testing.T) {
	a := smallAsset(t, 5)
	if _, err := a.Pose(&semantic.DecodedFrame{Points: make([]keypoints.Point, 3)}); err == nil {
		t.Error("wrong point count accepted")
	}
}

func TestReconstructorEndToEnd(t *testing.T) {
	a := smallAsset(t, 6)
	rec := NewReconstructor(a)
	if rec.HavePose() {
		t.Error("fresh reconstructor claims a pose")
	}
	if _, err := rec.CurrentMesh(); err == nil {
		t.Error("CurrentMesh before any frame should error")
	}
	gen := keypoints.NewGenerator(simrand.New(7), keypoints.DefaultMotionConfig())
	enc := semantic.NewEncoder(semantic.ModeFloat32)
	for i := 0; i < 10; i++ {
		f := gen.Next()
		if err := rec.Feed(enc.Encode(&f)); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if rec.FramesDecoded != 10 || rec.FramesRejected != 0 {
		t.Errorf("decoded/rejected = %d/%d", rec.FramesDecoded, rec.FramesRejected)
	}
	m, err := rec.CurrentMesh()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructorRejectsCorrupt(t *testing.T) {
	a := smallAsset(t, 8)
	rec := NewReconstructor(a)
	gen := keypoints.NewGenerator(simrand.New(9), keypoints.DefaultMotionConfig())
	enc := semantic.NewEncoder(semantic.ModeFloat32)
	f := gen.Next()
	wire := enc.Encode(&f)
	wire[len(wire)-1] ^= 0xFF
	if err := rec.Feed(wire); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	if rec.FramesRejected != 1 {
		t.Errorf("FramesRejected = %d", rec.FramesRejected)
	}
}

// The architectural property behind §4.3's display-latency experiment: once
// a frame is reconstructed, rendering it from a NEW viewpoint requires no
// further network data.
func TestViewpointChangeIsLocal(t *testing.T) {
	a := smallAsset(t, 10)
	rec := NewReconstructor(a)
	gen := keypoints.NewGenerator(simrand.New(11), keypoints.DefaultMotionConfig())
	enc := semantic.NewEncoder(semantic.ModeFloat32)
	f := gen.Next()
	if err := rec.Feed(enc.Encode(&f)); err != nil {
		t.Fatal(err)
	}
	m, _ := rec.CurrentMesh()
	// Render from the front and from an offset viewpoint with no
	// additional Feed.
	front := Splat(m, mesh.Vec3{Z: 0.5}, 160, 120)
	side := Splat(m, mesh.Vec3{X: 0.2, Z: 0.5}, 160, 120)
	count := func(p []uint8) int {
		n := 0
		for _, v := range p {
			if v != 0 {
				n++
			}
		}
		return n
	}
	if count(front.Pix) == 0 || count(side.Pix) == 0 {
		t.Fatal("splat produced empty images")
	}
	// The two viewpoints see different projections.
	same := 0
	for i := range front.Pix {
		if front.Pix[i] == side.Pix[i] {
			same++
		}
	}
	if same == len(front.Pix) {
		t.Error("front and side renders identical; viewpoint ignored")
	}
}

func TestSplatZBuffer(t *testing.T) {
	// Two vertices projecting to the same pixel: the nearer one wins.
	m := &mesh.Mesh{
		Vertices:  []mesh.Vec3{{X: 0, Y: 0, Z: -1}, {X: 0, Y: 0, Z: -3}},
		Triangles: []mesh.Triangle{}, // splat only needs vertices
	}
	f := Splat(m, mesh.Vec3{}, 64, 64)
	center := f.At(32, 32)
	if center == 0 {
		t.Fatal("nothing splatted at center")
	}
	// Nearer vertex (d=1) shades brighter than the far one would.
	mFar := &mesh.Mesh{Vertices: []mesh.Vec3{{X: 0, Y: 0, Z: -3}}}
	fFar := Splat(mFar, mesh.Vec3{}, 64, 64)
	if center <= fFar.At(32, 32) {
		t.Errorf("z-buffer broken: near shade %d vs far %d", center, fFar.At(32, 32))
	}
}

func BenchmarkPose(b *testing.B) {
	a, err := NewAsset(simrand.New(12), Config{
		Name: "bench", TargetTriangles: 20000, BuildLODs: false, BindK: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := keypoints.NewGenerator(simrand.New(13), keypoints.DefaultMotionConfig())
	f := gen.Next()
	enc := semantic.NewEncoder(semantic.ModeFloat32)
	dec := semantic.NewDecoder()
	df, _ := dec.Decode(enc.Encode(&f))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Pose(df); err != nil {
			b.Fatal(err)
		}
	}
}
