// Package persona assembles the spatial-persona asset: the pre-captured
// head mesh with its LOD chain (what Vision Pro builds offline from the
// TrueDepth cameras, §2) and the keypoint rig that deforms it from received
// semantic frames. Reconstruction happens entirely on the receiver, which is
// why viewport changes never wait on the network (§4.3's display-latency
// experiment).
package persona

import (
	"fmt"
	"math"

	"telepresence/internal/keypoints"
	"telepresence/internal/mesh"
	"telepresence/internal/semantic"
	"telepresence/internal/simrand"
	"telepresence/internal/video"
)

// Config controls asset generation.
type Config struct {
	// Name labels the asset (usually the user id).
	Name string
	// TargetTriangles is the full-quality mesh budget (default: the
	// paper's 78,030).
	TargetTriangles int
	// BuildLODs generates the whole LOD chain; disable for tests that
	// only need the full mesh.
	BuildLODs bool
	// BindK is how many keypoints influence each vertex.
	BindK int
}

// DefaultConfig returns the production persona configuration.
func DefaultConfig(name string) Config {
	return Config{Name: name, TargetTriangles: mesh.PersonaTriangles, BuildLODs: true, BindK: 3}
}

// Asset is a rig-bound persona ready for reconstruction.
type Asset struct {
	Name string
	// LODs holds the mesh chain in decreasing quality; LODs[0] is full.
	LODs []*mesh.Mesh
	// Neutral is the tracked keypoint set in the asset's rest pose.
	Neutral []keypoints.Point

	// binding: per full-LOD vertex, the influencing keypoints and weights.
	bindIdx [][]int
	bindW   [][]float64
}

// NewAsset generates a head, its LOD chain, and the rig binding.
func NewAsset(rng *simrand.Source, cfg Config) (*Asset, error) {
	if cfg.TargetTriangles == 0 {
		cfg.TargetTriangles = mesh.PersonaTriangles
	}
	if cfg.BindK <= 0 {
		cfg.BindK = 3
	}
	full := mesh.GenerateHead(rng, mesh.HeadConfig{
		TargetTriangles: cfg.TargetTriangles, Radius: 0.10, Variation: 1,
	})
	a := &Asset{Name: cfg.Name, LODs: []*mesh.Mesh{full}}
	if cfg.BuildLODs {
		if full.TriangleCount() == mesh.PersonaTriangles {
			lods, err := mesh.LODChain(full)
			if err != nil {
				return nil, err
			}
			a.LODs = lods
		} else {
			// Scaled-down chain with the same ratios as the paper's.
			cur := full
			for _, frac := range []float64{0.577, 0.270, 0.0005} {
				target := int(float64(full.TriangleCount()) * frac)
				if target < 4 {
					target = 4
				}
				s, err := mesh.Simplify(cur, target)
				if err != nil {
					return nil, err
				}
				a.LODs = append(a.LODs, s)
				cur = s
			}
		}
	}

	// Neutral tracked keypoints, scaled to the head size.
	var nf keypoints.Frame
	nf.Face = keypoints.NeutralFace()
	nf.LeftHand = keypoints.NeutralHand(-1)
	nf.RightHand = keypoints.NeutralHand(1)
	a.Neutral = nf.Tracked()

	a.bind(cfg.BindK)
	return a, nil
}

// bind precomputes, for each vertex of the full LOD, its BindK nearest
// facial keypoints with inverse-distance weights. Hands are separate bodies
// and do not deform the head mesh.
func (a *Asset) bind(k int) {
	full := a.LODs[0]
	nFace := keypoints.TrackedFace
	a.bindIdx = make([][]int, full.VertexCount())
	a.bindW = make([][]float64, full.VertexCount())
	for vi, v := range full.Vertices {
		type cand struct {
			i int
			d float64
		}
		best := make([]cand, 0, k+1)
		for ki := 0; ki < nFace; ki++ {
			kp := a.Neutral[ki]
			d := math.Sqrt((v.X-kp.X)*(v.X-kp.X) + (v.Y-kp.Y)*(v.Y-kp.Y) + (v.Z-kp.Z)*(v.Z-kp.Z))
			best = append(best, cand{ki, d})
			// Keep the k smallest by insertion.
			for j := len(best) - 1; j > 0 && best[j].d < best[j-1].d; j-- {
				best[j], best[j-1] = best[j-1], best[j]
			}
			if len(best) > k {
				best = best[:k]
			}
		}
		idx := make([]int, len(best))
		w := make([]float64, len(best))
		var sum float64
		for j, c := range best {
			idx[j] = c.i
			// Inverse-distance with a falloff radius: far vertices (back
			// of the skull) barely move with expressions.
			w[j] = 1 / (c.d/0.03 + 1)
			w[j] *= w[j]
			sum += w[j]
		}
		if sum > 0 {
			for j := range w {
				w[j] /= sum
			}
		}
		a.bindIdx[vi] = idx
		a.bindW[vi] = w
	}
}

// Pose deforms the full-quality mesh according to a decoded semantic frame:
// rigid head rotation plus expression displacement from the facial
// keypoints. The returned mesh is freshly allocated.
func (a *Asset) Pose(df *semantic.DecodedFrame) (*mesh.Mesh, error) {
	if len(df.Points) != keypoints.TrackedTotal {
		return nil, fmt.Errorf("persona: frame has %d points, want %d", len(df.Points), keypoints.TrackedTotal)
	}
	full := a.LODs[0]
	out := &mesh.Mesh{
		Vertices:  make([]mesh.Vec3, full.VertexCount()),
		Triangles: full.Triangles, // topology shared, geometry fresh
	}
	sy, cy := math.Sincos(df.Yaw)
	sp, cp := math.Sincos(df.Pitch)
	sr, cr := math.Sincos(df.Roll)
	for vi, v := range full.Vertices {
		// Expression displacement.
		var dx, dy, dz float64
		for j, ki := range a.bindIdx[vi] {
			w := a.bindW[vi][j]
			n := a.Neutral[ki]
			p := df.Points[ki]
			dx += w * (p.X - n.X)
			dy += w * (p.Y - n.Y)
			dz += w * (p.Z - n.Z)
		}
		x, y, z := v.X+dx, v.Y+dy, v.Z+dz
		// Rigid pose: roll (Z), pitch (X), yaw (Y).
		x, y = x*cr-y*sr, x*sr+y*cr
		y, z = y*cp-z*sp, y*sp+z*cp
		x, z = x*cy+z*sy, -x*sy+z*cy
		out.Vertices[vi] = mesh.Vec3{X: x, Y: y, Z: z}
	}
	return out, nil
}

// Reconstructor is the receiver-side pipeline: semantic decode plus local
// posing. It owns the latest good pose, so rendering any new viewpoint is a
// purely local operation.
type Reconstructor struct {
	asset *Asset
	dec   *semantic.Decoder
	last  *semantic.DecodedFrame
	// FramesDecoded and FramesRejected count pipeline health.
	FramesDecoded, FramesRejected int
}

// NewReconstructor builds a reconstructor over an asset.
func NewReconstructor(asset *Asset) *Reconstructor {
	return &Reconstructor{asset: asset, dec: semantic.NewDecoder()}
}

// Feed consumes one semantic wire frame. Errors follow the semantic
// package's all-or-nothing contract.
func (r *Reconstructor) Feed(wire []byte) error {
	df, err := r.dec.Decode(wire)
	if err != nil {
		r.FramesRejected++
		return err
	}
	r.FramesDecoded++
	r.last = df
	return nil
}

// HavePose reports whether at least one frame has been reconstructed.
func (r *Reconstructor) HavePose() bool { return r.last != nil }

// CurrentMesh returns the posed mesh for the most recent good frame.
func (r *Reconstructor) CurrentMesh() (*mesh.Mesh, error) {
	if r.last == nil {
		return nil, fmt.Errorf("persona: no frame reconstructed yet")
	}
	return r.asset.Pose(r.last)
}

// Splat rasterizes a mesh into a video frame with a perspective point
// splat and a z-buffer: the "pre-render the spatial persona to 2D video"
// path that FaceTime uses toward non-Vision-Pro devices (§4.1) and the
// remote-rendering ablation (Implications 4).
func Splat(m *mesh.Mesh, camPos mesh.Vec3, w, h int) *video.Frame {
	f := video.NewFrame(w, h)
	zbuf := make([]float64, w*h)
	for i := range zbuf {
		zbuf[i] = math.Inf(1)
	}
	focal := float64(h) // ~53 deg vertical FOV
	for _, v := range m.Vertices {
		dz := v.Z - camPos.Z
		if dz >= -1e-6 {
			continue // behind the camera plane (camera looks toward -Z)
		}
		d := -dz
		px := int(float64(w)/2 + (v.X-camPos.X)/d*focal)
		py := int(float64(h)/2 - (v.Y-camPos.Y)/d*focal)
		if px < 0 || px >= w || py < 0 || py >= h {
			continue
		}
		if d < zbuf[py*w+px] {
			zbuf[py*w+px] = d
			// Depth-shaded: nearer is brighter.
			shade := 255 - int(math.Min(1, d/1.5)*180)
			f.Set(px, py, uint8(shade))
		}
	}
	return f
}
