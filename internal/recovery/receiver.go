package recovery

import (
	"sort"

	"telepresence/internal/rtp"
)

const (
	// recentSlots is the receiver's window of buffered media packets for
	// XOR reconstruction (a power of two; ~400 ms of a 150 pkt/s stream,
	// far wider than any parity group).
	recentSlots = 64
	// maxPendingParity bounds buffered parity packets awaiting more group
	// members.
	maxPendingParity = 8
	// maxMissing bounds the tracked missing set; gaps beyond it count as
	// unrepaired immediately.
	maxMissing = 256
	// maxGapRun is the largest single sequence jump tracked packet by
	// packet; a larger jump is a resync (outage), counted lost in bulk.
	maxGapRun = 128
)

// ReceiverStats counts one receiver-side strategy instance's outcomes. The
// invariant Missed == RepairedRtx + RepairedFec + Unrepaired + outstanding
// holds at all times (outstanding = gaps still within their deadline).
type ReceiverStats struct {
	// Missed counts every sequence number ever detected missing.
	Missed int64
	// RepairedRtx counts missing seqs that later arrived as media — a
	// retransmission answering a NACK, or plain reordering.
	RepairedRtx int64
	// RepairedFec counts missing seqs reconstructed from XOR parity.
	RepairedFec int64
	// Unrepaired counts seqs that expired their deadline unrepaired.
	Unrepaired int64
	// NackSeqs counts seq entries handed out for NACKing (retries
	// included).
	NackSeqs int64
	// Dups counts duplicate or stale arrivals (already received, already
	// repaired, or past the tracking horizon).
	Dups int64
	// ParityReceived / ParityUnusable count parity packets seen and parity
	// packets dropped as unusable (corrupt length or failed validation).
	ParityReceived, ParityUnusable int64
	// RepairDelaysMs are the per-repair delays from first-missed to
	// repair, in arrival order (RTX and FEC repairs both).
	RepairDelaysMs []float64
}

type missState struct {
	firstMs    float64
	lastNackMs float64
	nacks      int
}

type recentSlot struct {
	seq uint16
	ok  bool
	pkt []byte
}

type pendingParity struct {
	base   uint16
	count  int
	lenXor uint16
	data   []byte
	atMs   float64
	ok     bool
}

// Receiver is the receiver half of a strategy for ONE incoming media
// stream: it detects sequence gaps, schedules NACKs (Tick), buffers recent
// packets, and reconstructs singles from parity. Recovered packets are
// returned to the caller for normal depacketizer delivery; the receiver has
// already accounted them, so they must NOT be fed back into OnMedia.
type Receiver struct {
	cfg  Config
	plan Plan

	haveSeq bool
	nextSeq uint16 // one past the highest in-order-tracked seq

	missing map[uint16]*missState
	recent  [recentSlots]recentSlot
	pending [maxPendingParity]pendingParity

	scratch []uint16 // reused NACK/expiry ordering buffer

	stats ReceiverStats
}

// NewReceiver builds the receiver half for the given strategy kind.
func NewReceiver(kind string, cfg Config) (*Receiver, error) {
	plan, err := PlanFor(kind)
	if err != nil {
		return nil, err
	}
	return &Receiver{cfg: cfg.withDefaults(), plan: plan, missing: map[uint16]*missState{}}, nil
}

// Plan returns the wiring plan of the receiver's strategy.
func (r *Receiver) Plan() Plan { return r.plan }

// Stats returns a snapshot of the receiver counters. The delay slice is
// shared with the receiver: read it only after the session has run.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// Outstanding reports gaps still within their deadline (for tests).
func (r *Receiver) Outstanding() int { return len(r.missing) }

// IsLate reports whether seq is behind the in-order tracking point: a
// retransmission answering a NACK, or a reordered duplicate. The session
// layer keeps such arrivals out of the transport report builder, so RTX
// repair delays cannot masquerade as path delay — the congestion controller
// must keep seeing true wire loss and true queueing delay.
func (r *Receiver) IsLate(seq uint16) bool {
	return r.haveSeq && int16(seq-r.nextSeq) < 0
}

// OnMedia ingests one arriving media packet (full RTP bytes). It advances
// gap tracking, buffers the packet for XOR reconstruction, and retries any
// pending parity group the packet belongs to; when that retry reconstructs
// the group's one remaining missing packet, the recovered packet is
// returned (already accounted — deliver it to the depacketizer only).
func (r *Receiver) OnMedia(pkt []byte, nowMs float64) (recovered []byte) {
	var h rtp.Header
	if _, err := h.Unmarshal(pkt); err != nil {
		return nil
	}
	r.markArrived(h.Seq, nowMs)
	r.remember(h.Seq, pkt)
	if !r.plan.FEC {
		return nil
	}
	// The arrival may leave exactly one unknown in a buffered parity group.
	for i := range r.pending {
		p := &r.pending[i]
		if p.ok && inGroup(h.Seq, p.base, p.count) {
			if rec, resolved := r.tryGroup(p.base, p.count, p.lenXor, p.data, nowMs); resolved {
				p.ok = false
				return rec
			}
			return nil // still short by two or more
		}
	}
	return nil
}

// markArrived advances the gap tracker for one arriving seq.
func (r *Receiver) markArrived(seq uint16, nowMs float64) {
	if !r.haveSeq {
		r.haveSeq = true
		r.nextSeq = seq + 1
		return
	}
	switch d := int16(seq - r.nextSeq); {
	case d == 0:
		r.nextSeq = seq + 1
	case d > 0:
		r.openGap(r.nextSeq, int(d), nowMs)
		r.nextSeq = seq + 1
	default:
		if ms, ok := r.missing[seq]; ok {
			delete(r.missing, seq)
			r.stats.RepairedRtx++
			r.stats.RepairDelaysMs = append(r.stats.RepairDelaysMs, nowMs-ms.firstMs)
		} else {
			r.stats.Dups++
		}
	}
}

// openGap records n consecutive seqs starting at first as missing.
func (r *Receiver) openGap(first uint16, n int, nowMs float64) {
	if n > maxGapRun {
		// Resync after an outage: counting 129+ packets as individually
		// NACKable would flood the reverse path for frames long past their
		// deadline.
		r.stats.Missed += int64(n)
		r.stats.Unrepaired += int64(n)
		return
	}
	for i := 0; i < n; i++ {
		r.stats.Missed++
		if len(r.missing) >= maxMissing {
			r.stats.Unrepaired++
			continue
		}
		r.missing[first+uint16(i)] = &missState{firstMs: nowMs}
	}
}

func (r *Receiver) remember(seq uint16, pkt []byte) {
	slot := &r.recent[int(seq)%recentSlots]
	cp := slot.pkt[:0]
	slot.pkt = append(cp, pkt...)
	slot.seq = seq
	slot.ok = true
}

func (r *Receiver) lookup(seq uint16) []byte {
	slot := &r.recent[int(seq)%recentSlots]
	if slot.ok && slot.seq == seq {
		return slot.pkt
	}
	return nil
}

func inGroup(seq, base uint16, count int) bool {
	return int16(seq-base) >= 0 && int(int16(seq-base)) < count
}

// OnParity ingests one arriving parity packet. If all but one group member
// is on hand the missing packet is reconstructed and returned (already
// accounted — deliver it to the depacketizer only); a group still short by
// two or more is buffered and retried as members arrive (OnMedia).
func (r *Receiver) OnParity(b []byte, nowMs float64) (recovered []byte) {
	if !r.plan.FEC {
		return nil
	}
	var p rtp.Parity
	if err := p.Unmarshal(b); err != nil {
		return nil
	}
	r.stats.ParityReceived++
	if len(p.Data) < rtp.HeaderLen {
		r.stats.ParityUnusable++
		return nil
	}
	rec, resolved := r.tryGroup(p.BaseSeq, int(p.Count), p.LenXor, p.Data, nowMs)
	if resolved {
		return rec
	}
	// Buffer for retry: the missing members may still be in flight
	// (jitter reorders a frame's packets around its parity).
	oldest, at := 0, nowMs+1
	for i := range r.pending {
		if !r.pending[i].ok {
			oldest = i
			break
		}
		if r.pending[i].atMs < at {
			oldest, at = i, r.pending[i].atMs
		}
	}
	slot := &r.pending[oldest]
	slot.base, slot.count, slot.lenXor, slot.atMs, slot.ok = p.BaseSeq, int(p.Count), p.LenXor, nowMs, true
	slot.data = append(slot.data[:0], p.Data...)
	return nil
}

// tryGroup attempts XOR reconstruction of the group [base, base+count).
// resolved reports whether the parity is spent (recovered, nothing missing,
// or unusable); !resolved means the group is still short by two or more.
func (r *Receiver) tryGroup(base uint16, count int, lenXor uint16, data []byte, nowMs float64) (recovered []byte, resolved bool) {
	missSeq, unknown := uint16(0), 0
	recLen := lenXor
	for i := 0; i < count; i++ {
		seq := base + uint16(i)
		if pkt := r.lookup(seq); pkt != nil {
			recLen ^= uint16(len(pkt))
		} else {
			missSeq = seq
			unknown++
			if unknown > 1 {
				return nil, false
			}
		}
	}
	if unknown == 0 {
		return nil, true // group fully received; parity spent
	}
	if int(recLen) < rtp.HeaderLen || int(recLen) > len(data) {
		r.stats.ParityUnusable++
		return nil, true
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	for i := 0; i < count; i++ {
		if pkt := r.lookup(base + uint16(i)); pkt != nil {
			for j, b := range pkt {
				buf[j] ^= b
			}
		}
	}
	buf = buf[:recLen]
	var h rtp.Header
	if _, err := h.Unmarshal(buf); err != nil || h.Seq != missSeq {
		r.stats.ParityUnusable++
		return nil, true
	}
	if !r.markFec(missSeq, nowMs) {
		return nil, true // stale group (member evicted or already settled)
	}
	r.remember(missSeq, buf)
	return buf, true
}

// markFec accounts one FEC reconstruction; it reports whether the recovered
// packet is new (worth delivering).
func (r *Receiver) markFec(seq uint16, nowMs float64) bool {
	if ms, ok := r.missing[seq]; ok {
		delete(r.missing, seq)
		r.stats.RepairedFec++
		r.stats.RepairDelaysMs = append(r.stats.RepairDelaysMs, nowMs-ms.firstMs)
		return true
	}
	if !r.haveSeq {
		r.haveSeq = true
		r.nextSeq = seq + 1
		r.stats.Missed++ // a wire loss detected via parity, not via a gap
		r.stats.RepairedFec++
		r.stats.RepairDelaysMs = append(r.stats.RepairDelaysMs, 0)
		return true
	}
	if d := int16(seq - r.nextSeq); d >= 0 {
		// Reconstructed before the gap was even observed (the lost packet
		// was the newest): a wire loss detected via parity, repaired with
		// zero delay.
		r.openGap(r.nextSeq, int(d), nowMs)
		r.nextSeq = seq + 1
		r.stats.Missed++
		r.stats.RepairedFec++
		r.stats.RepairDelaysMs = append(r.stats.RepairDelaysMs, 0)
		return true
	}
	r.stats.Dups++
	return false
}

// Tick expires overdue state and returns the seqs due for a NACK, oldest
// first, appended to into. The session layer calls it from a periodic
// ticker and batches the result into rtp.Nack packets (at most MaxNackSeqs
// per packet). Strategies without NACK still need Tick for deadline
// accounting; they always return an empty list.
func (r *Receiver) Tick(nowMs float64, into []uint16) []uint16 {
	for i := range r.pending {
		if r.pending[i].ok && nowMs-r.pending[i].atMs > r.cfg.NackDeadlineMs {
			r.pending[i].ok = false
		}
	}
	if len(r.missing) == 0 {
		return into
	}
	// Deterministic order: map iteration is randomized, so sort by age in
	// circular seq order (most overdue first).
	r.scratch = r.scratch[:0]
	for seq := range r.missing {
		r.scratch = append(r.scratch, seq)
	}
	next := r.nextSeq
	sort.Slice(r.scratch, func(i, j int) bool {
		return int16(r.scratch[i]-next) < int16(r.scratch[j]-next)
	})
	for _, seq := range r.scratch {
		ms := r.missing[seq]
		age := nowMs - ms.firstMs
		if age >= r.cfg.NackDeadlineMs {
			delete(r.missing, seq)
			r.stats.Unrepaired++
			continue
		}
		if !r.plan.Nack || ms.nacks >= r.cfg.NackRetries {
			continue
		}
		if ms.nacks == 0 {
			if age < r.cfg.NackDelayMs {
				continue // reordering grace
			}
		} else if nowMs-ms.lastNackMs < r.cfg.NackRetryMs {
			continue
		}
		ms.nacks++
		ms.lastNackMs = nowMs
		r.stats.NackSeqs++
		into = append(into, seq)
	}
	return into
}
