// Package recovery implements pluggable loss recovery for RTP media
// sessions: the repair half the paper's measured VCAs all have and the
// simulation's sessions lacked. Without it, one lost RTP packet stalls the
// receiver's in-order reassembly until the frame timeout concedes the frame
// (internal/rtp.Depacketizer.GC); with it, the packet is either
// retransmitted on request or reconstructed from XOR parity before the
// timeout, and the frame decodes.
//
// Three strategies are provided (plus the "none" baseline):
//
//   - "nack": receiver-driven NACK/RTX. The receiver tracks sequence gaps
//     and periodically requests missing packets (rtp.Nack over the reverse
//     path, with a per-seq retry and deadline budget); the sender answers
//     from a bounded retransmit cache. Costs ~one extra packet per loss but
//     a NACK round trip of repair delay.
//   - "fec": sender-side XOR parity over groups of k consecutive media
//     packets (rtp.Parity). The receiver reconstructs any single missing
//     packet of a group with zero feedback delay — but a burst that takes
//     two packets of one group defeats the parity, which is exactly the
//     strategy x burstiness contrast the recovery experiments measure.
//   - "hybrid": FEC first, NACK for whatever parity cannot rebuild, with
//     the parity group length adapted from the loss fraction the receiver
//     reports (rtp.ReceiverReport.FractionLost): more loss, shorter groups,
//     more redundancy — bounded so parity overhead stays within the
//     redundancy budget (<= 1/MinGroupLen of the media rate).
//
// Everything is deterministic and rng-free: state advances only on packet
// arrival, report arrival, and explicit Tick calls, so sessions stay
// byte-identical per seed and the fleet's worker-count invariance holds.
// Timestamps are plain float64 milliseconds; the package schedules nothing
// itself (internal/vca owns the tickers).
package recovery

import "fmt"

// Kinds lists the strategy kinds in grid order: the recovery and recramp
// experiments sweep the index into this list, so the order is part of the
// experiments' cell-seed contract and must stay stable. Index 0 is the
// no-recovery baseline.
func Kinds() []string { return []string{"none", "nack", "fec", "hybrid"} }

// Plan describes what a strategy kind needs from the session wiring: which
// halves to instantiate and which feedback flows to enable.
type Plan struct {
	// Nack enables receiver gap tracking with NACK feedback and the
	// sender's retransmit cache.
	Nack bool
	// FEC enables sender parity emission and receiver reconstruction.
	FEC bool
	// Adaptive makes the sender adapt its parity group length from the
	// loss fraction in receiver reports (requires report flow even when no
	// rate controller is attached).
	Adaptive bool
}

// Active reports whether the plan needs any wiring at all (false only for
// the "none" baseline, which must behave exactly like no recovery).
func (p Plan) Active() bool { return p.Nack || p.FEC }

// PlanFor resolves a strategy kind to its wiring plan.
func PlanFor(kind string) (Plan, error) {
	switch kind {
	case "none":
		return Plan{}, nil
	case "nack":
		return Plan{Nack: true}, nil
	case "fec":
		return Plan{FEC: true}, nil
	case "hybrid":
		return Plan{Nack: true, FEC: true, Adaptive: true}, nil
	default:
		return Plan{}, fmt.Errorf("recovery: unknown strategy kind %q (have %v)", kind, Kinds())
	}
}

// Config parameterizes a strategy. The zero value of every field selects a
// sane default (see withDefaults). All durations are float64 milliseconds:
// the package never touches simtime.
type Config struct {
	// NackDelayMs is the reordering grace: a gap must stay open this long
	// before the first NACK goes out (default 10).
	NackDelayMs float64
	// NackRetryMs is the minimum spacing between NACKs for the same seq
	// (default 40).
	NackRetryMs float64
	// NackRetries is the per-seq NACK budget (default 3).
	NackRetries int
	// NackDeadlineMs is the per-seq give-up horizon from first-missed;
	// after it the seq counts as unrepaired (default 160). The session
	// layer coordinates the depacketizer's frame timeout with it: a NACK'd
	// frame must not be garbage-collected before its retry budget expires.
	NackDeadlineMs float64
	// CachePackets bounds the sender's retransmit cache (default 512).
	CachePackets int
	// GroupLen is the XOR parity group size k for the static "fec"
	// strategy and the starting size for "hybrid" (default 6: parity adds
	// ~1/6 of the media rate).
	GroupLen int
	// MinGroupLen / MaxGroupLen bound hybrid's loss-adaptive group length
	// (defaults 6 and 12). MinGroupLen is the redundancy budget: parity
	// overhead can never exceed 1/MinGroupLen of the media rate.
	MinGroupLen, MaxGroupLen int
}

// WithDefaults returns the config with every zero field replaced by its
// default — for callers that need the effective values (the session layer
// coordinates its frame timeout with the effective NACK deadline).
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.NackDelayMs <= 0 {
		c.NackDelayMs = 10
	}
	if c.NackRetryMs <= 0 {
		c.NackRetryMs = 40
	}
	if c.NackRetries <= 0 {
		c.NackRetries = 3
	}
	if c.NackDeadlineMs <= 0 {
		c.NackDeadlineMs = 160
	}
	if c.CachePackets <= 0 {
		c.CachePackets = 512
	}
	if c.MinGroupLen < 2 {
		c.MinGroupLen = 6
	}
	if c.MaxGroupLen < c.MinGroupLen {
		c.MaxGroupLen = 12
		if c.MaxGroupLen < c.MinGroupLen {
			c.MaxGroupLen = c.MinGroupLen
		}
	}
	if c.GroupLen < 2 {
		c.GroupLen = c.MinGroupLen
	}
	return c
}
