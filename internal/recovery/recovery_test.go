package recovery

import (
	"bytes"
	"testing"

	"telepresence/internal/rtp"
)

func mkPackets(t *testing.T, n, size int) [][]byte {
	t.Helper()
	p := rtp.NewPacketizer(rtp.PTGenericVideo, rtp.VideoSSRC(0))
	var out [][]byte
	for i := 0; i < n; i++ {
		frame := make([]byte, size)
		for j := range frame {
			frame[j] = byte(i*31 + j)
		}
		out = append(out, p.Packetize(frame, float64(i)/30)...)
	}
	return out
}

func newPair(t *testing.T, kind string, cfg Config) (*Sender, *Receiver) {
	t.Helper()
	s, err := NewSender(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestPlanFor(t *testing.T) {
	for _, kind := range Kinds() {
		if _, err := PlanFor(kind); err != nil {
			t.Errorf("PlanFor(%q): %v", kind, err)
		}
	}
	if _, err := PlanFor("bogus"); err == nil {
		t.Error("unknown kind accepted")
	}
	if p, _ := PlanFor("none"); p.Active() {
		t.Error("none plan is active")
	}
	if p, _ := PlanFor("hybrid"); !p.Nack || !p.FEC || !p.Adaptive {
		t.Errorf("hybrid plan %+v", p)
	}
}

func TestSenderParityEmission(t *testing.T) {
	s, _ := newPair(t, "fec", Config{GroupLen: 4})
	pkts := mkPackets(t, 1, 4*1100) // 4 equal-ish MTU packets
	if len(pkts) != 4 {
		t.Fatalf("%d packets, want 4", len(pkts))
	}
	var parity []byte
	for i, pkt := range pkts {
		p := s.OnPacket(pkt)
		if i < 3 && p != nil {
			t.Fatalf("parity emitted early at packet %d", i)
		}
		if i == 3 {
			parity = p
		}
	}
	if parity == nil {
		t.Fatal("no parity after a full group")
	}
	var p rtp.Parity
	if err := p.Unmarshal(parity); err != nil {
		t.Fatal(err)
	}
	if p.Count != 4 || p.SSRC != rtp.VideoSSRC(0) {
		t.Fatalf("parity header %+v", p)
	}
	// Manual reconstruction of packet 2 from the other three.
	want := pkts[2]
	buf := make([]byte, len(p.Data))
	copy(buf, p.Data)
	recLen := p.LenXor
	for i, pkt := range pkts {
		if i == 2 {
			continue
		}
		recLen ^= uint16(len(pkt))
		for j, b := range pkt {
			buf[j] ^= b
		}
	}
	if int(recLen) != len(want) || !bytes.Equal(buf[:recLen], want) {
		t.Fatal("XOR reconstruction of a dropped packet failed")
	}
	if st := s.Stats(); st.ParityPackets != 1 || st.MediaPackets != 4 {
		t.Errorf("stats %+v", st)
	}
}

func TestSenderCacheAndNack(t *testing.T) {
	s, _ := newPair(t, "nack", Config{NackRetries: 2, CachePackets: 8})
	pkts := mkPackets(t, 3, 500)
	for _, pkt := range pkts {
		if s.OnPacket(pkt) != nil {
			t.Fatal("nack-only sender emitted parity")
		}
	}
	n := &rtp.Nack{SSRC: rtp.VideoSSRC(0), Seqs: []uint16{1, 99}}
	out := s.OnNack(n)
	if len(out) != 1 || !bytes.Equal(out[0], pkts[1]) {
		t.Fatalf("OnNack returned %d packets", len(out))
	}
	if st := s.Stats(); st.CacheMisses != 1 || st.RtxPackets != 1 {
		t.Errorf("stats %+v", st)
	}
	// Per-seq resend budget.
	s.OnNack(n)
	if out := s.OnNack(n); len(out) != 0 {
		t.Error("resend budget not enforced")
	}
}

func TestReceiverNackLifecycle(t *testing.T) {
	cfg := Config{NackDelayMs: 10, NackRetryMs: 40, NackRetries: 2, NackDeadlineMs: 100}
	_, r := newPair(t, "nack", cfg)
	pkts := mkPackets(t, 6, 500) // seqs 0..5
	r.OnMedia(pkts[0], 0)
	r.OnMedia(pkts[3], 5) // gap: 1, 2
	if got := r.Outstanding(); got != 2 {
		t.Fatalf("outstanding %d, want 2", got)
	}
	if due := r.Tick(6, nil); len(due) != 0 {
		t.Fatalf("NACK before the reordering grace: %v", due)
	}
	due := r.Tick(20, nil)
	if len(due) != 2 || due[0] != 1 || due[1] != 2 {
		t.Fatalf("due = %v, want [1 2]", due)
	}
	if due = r.Tick(30, nil); len(due) != 0 {
		t.Fatalf("retry before NackRetryMs: %v", due)
	}
	// Seq 1 arrives (the retransmission); 2 stays out.
	r.OnMedia(pkts[1], 40)
	due = r.Tick(65, nil)
	if len(due) != 1 || due[0] != 2 {
		t.Fatalf("due = %v, want [2]", due)
	}
	if due = r.Tick(110, nil); len(due) != 0 {
		t.Fatalf("retry budget exhausted but due = %v", due)
	}
	r.Tick(200, nil) // past the deadline
	st := r.Stats()
	if st.Missed != 2 || st.RepairedRtx != 1 || st.Unrepaired != 1 || r.Outstanding() != 0 {
		t.Errorf("stats %+v, outstanding %d", st, r.Outstanding())
	}
	if len(st.RepairDelaysMs) != 1 || st.RepairDelaysMs[0] != 35 {
		t.Errorf("repair delays %v, want [35]", st.RepairDelaysMs)
	}
}

func TestFecRecoversSingleLoss(t *testing.T) {
	s, r := newPair(t, "fec", Config{GroupLen: 4})
	pkts := mkPackets(t, 1, 4*1100)
	var parity []byte
	for _, pkt := range pkts {
		if p := s.OnPacket(pkt); p != nil {
			parity = p
		}
	}
	// Packet 2 lost; parity arrives after the rest.
	for i, pkt := range pkts {
		if i == 2 {
			continue
		}
		if rec := r.OnMedia(pkt, float64(i)); rec != nil {
			t.Fatal("recovered before parity arrived")
		}
	}
	rec := r.OnParity(parity, 10)
	if rec == nil {
		t.Fatal("no reconstruction from parity")
	}
	if !bytes.Equal(rec, pkts[2]) {
		t.Fatal("reconstructed packet differs from the lost one")
	}
	st := r.Stats()
	if st.RepairedFec != 1 || st.Unrepaired != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestFecParityBeforeMembers(t *testing.T) {
	// Jitter can deliver a group's parity before its last members: the
	// parity must be buffered and retried as media arrives.
	s, r := newPair(t, "fec", Config{GroupLen: 3})
	pkts := mkPackets(t, 1, 3*1100)
	var parity []byte
	for _, pkt := range pkts {
		if p := s.OnPacket(pkt); p != nil {
			parity = p
		}
	}
	if rec := r.OnMedia(pkts[0], 0); rec != nil {
		t.Fatal("early recovery")
	}
	if rec := r.OnParity(parity, 1); rec != nil {
		t.Fatal("recovered with two members missing")
	}
	// Packet 2 arrives; packet 1 is the single unknown now.
	rec := r.OnMedia(pkts[2], 2)
	if rec == nil || !bytes.Equal(rec, pkts[1]) {
		t.Fatal("pending parity not retried on member arrival")
	}
	// The recovered seq was never NACK-tracked as unrepaired.
	r.Tick(1000, nil)
	if st := r.Stats(); st.RepairedFec != 1 || st.Unrepaired != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestHybridAdaptsGroupLen(t *testing.T) {
	s, _ := newPair(t, "hybrid", Config{MinGroupLen: 6, MaxGroupLen: 12})
	if s.Stats().GroupLen != 6 {
		t.Fatalf("initial group %d, want 6 (MinGroupLen default start)", s.Stats().GroupLen)
	}
	// Clean reports: redundancy relaxes to the max group length.
	for i := 0; i < 100; i++ {
		s.OnReportLoss(0)
	}
	s.OnPacket(mkPackets(t, 1, 100)[0]) // boundary applies nextLen
	if got := s.Stats().GroupLen; got != 12 {
		t.Errorf("group after clean reports %d, want 12", got)
	}
	// Heavy loss: redundancy tightens back to the budget floor.
	for i := 0; i < 100; i++ {
		s.OnReportLoss(0.5)
	}
	pkts := mkPackets(t, 2, 100)
	s.OnPacket(pkts[0])
	s.OnPacket(pkts[1])
	if got := s.Stats().GroupLen; got < 6 || got > 12 {
		t.Errorf("group after lossy reports %d outside [6,12]", got)
	}
	// A non-adaptive strategy ignores reports.
	fs, _ := newPair(t, "fec", Config{GroupLen: 4})
	fs.OnReportLoss(0.9)
	if fs.Stats().GroupLen != 4 {
		t.Error("static fec adapted its group length")
	}
}

func TestReceiverSeqWraparound(t *testing.T) {
	cfg := Config{NackDelayMs: 1}
	_, r := newPair(t, "nack", cfg)
	p := rtp.NewPacketizer(rtp.PTGenericVideo, rtp.VideoSSRC(0))
	// Drive the packetizer to just below the wrap.
	mk := func(seq uint16) []byte {
		h := rtp.Header{PayloadType: rtp.PTGenericVideo, Seq: seq, SSRC: p.SSRC}
		return append(h.Marshal(nil), 1, 2, 3)
	}
	r.OnMedia(mk(0xFFFE), 0)
	r.OnMedia(mk(2), 1) // gap: FFFF, 0, 1 across the wrap
	if got := r.Outstanding(); got != 3 {
		t.Fatalf("outstanding %d, want 3", got)
	}
	due := r.Tick(10, nil)
	if len(due) != 3 || due[0] != 0xFFFF || due[1] != 0 || due[2] != 1 {
		t.Fatalf("due = %v, want wrap-ordered [65535 0 1]", due)
	}
}

func TestReceiverResyncAfterOutage(t *testing.T) {
	_, r := newPair(t, "nack", Config{})
	pkts := mkPackets(t, 1, 100)
	r.OnMedia(pkts[0], 0)
	h := rtp.Header{PayloadType: rtp.PTGenericVideo, Seq: 1000, SSRC: rtp.VideoSSRC(0)}
	r.OnMedia(append(h.Marshal(nil), 9), 1)
	if r.Outstanding() != 0 {
		t.Error("outage gap tracked packet by packet")
	}
	st := r.Stats()
	if st.Missed != 999 || st.Unrepaired != 999 {
		t.Errorf("stats %+v, want 999 missed and unrepaired in bulk", st)
	}
}

func TestNoneKindIsInert(t *testing.T) {
	s, r := newPair(t, "none", Config{})
	pkts := mkPackets(t, 8, 1000)
	for i, pkt := range pkts {
		if s.OnPacket(pkt) != nil {
			t.Fatal("none sender emitted parity")
		}
		if i != 2 { // drop one
			if r.OnMedia(pkt, float64(i)) != nil {
				t.Fatal("none receiver recovered a packet")
			}
		}
	}
	if due := r.Tick(1000, nil); len(due) != 0 {
		t.Fatalf("none receiver scheduled NACKs: %v", due)
	}
	if s.OverheadRatio() != 0 {
		t.Error("none sender has overhead")
	}
	if out := s.OnNack(&rtp.Nack{Seqs: []uint16{2}}); out != nil {
		t.Error("none sender answered a NACK")
	}
}
