package recovery

import (
	"fmt"

	"telepresence/internal/rtp"
)

// SenderStats counts one sender-side strategy instance's work.
type SenderStats struct {
	// MediaPackets / MediaBytes count the protected media stream.
	MediaPackets, MediaBytes int64
	// ParityPackets / ParityBytes count emitted FEC parity (wire bytes).
	ParityPackets, ParityBytes int64
	// RtxPackets / RtxBytes count retransmissions answered from the cache.
	RtxPackets, RtxBytes int64
	// NacksReceived counts NACK packets processed.
	NacksReceived int64
	// CacheMisses counts NACK'd seqs no longer (or never) in the cache.
	CacheMisses int64
	// GroupLen is the parity group length currently in effect.
	GroupLen int
}

// Sender is the sender half of a strategy: it owns the retransmit cache and
// the parity group accumulator for ONE outgoing media stream. Feed every
// outgoing media packet to OnPacket; hand arriving NACKs to OnNack and
// receiver-report loss fractions to OnReportLoss.
type Sender struct {
	cfg  Config
	plan Plan

	// Retransmit cache: a ring keyed seq % CachePackets. Entries own their
	// copies; a cached slice handed out by OnNack is never mutated again
	// (eviction allocates a fresh copy), so in-flight retransmissions stay
	// intact.
	cache []cacheEntry

	// Parity accumulator over the current group.
	groupLen  int // in effect for the current group
	nextLen   int // applied at the next group boundary (hybrid adaptation)
	parity    []byte
	parityLen int // length of the longest packet in the group
	lenXor    uint16
	baseSeq   uint16
	count     int

	lossEwma float64 // smoothed report loss fraction (hybrid)

	// Budget-window state: snapshots of the byte counters at the previous
	// BudgetOverheadRatio call, and the smoothed interval ratio.
	lastMediaB, lastRedB int64
	budgetEwma           float64

	stats SenderStats
}

type cacheEntry struct {
	seq     uint16
	pkt     []byte
	resends int
	ok      bool
}

// NewSender builds the sender half for the given strategy kind.
func NewSender(kind string, cfg Config) (*Sender, error) {
	plan, err := PlanFor(kind)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Sender{cfg: cfg, plan: plan, groupLen: cfg.GroupLen, nextLen: cfg.GroupLen}
	if plan.Nack {
		s.cache = make([]cacheEntry, cfg.CachePackets)
	}
	return s, nil
}

// Plan returns the wiring plan of the sender's strategy.
func (s *Sender) Plan() Plan { return s.plan }

// Stats returns a snapshot of the sender counters.
func (s *Sender) Stats() SenderStats {
	st := s.stats
	st.GroupLen = s.groupLen
	return st
}

// LossEwma reports the smoothed report-loss fraction driving hybrid's
// redundancy adaptation (0 for non-adaptive strategies) — a telemetry
// gauge.
func (s *Sender) LossEwma() float64 { return s.lossEwma }

// OverheadRatio is the redundancy the strategy has added over the whole
// session, as a fraction of the protected media bytes: (parity +
// retransmissions) / media — the reporting metric the experiment rows use.
func (s *Sender) OverheadRatio() float64 {
	if s.stats.MediaBytes == 0 {
		return 0
	}
	return float64(s.stats.ParityBytes+s.stats.RtxBytes) / float64(s.stats.MediaBytes)
}

// BudgetOverheadRatio is the charging metric: the redundancy ratio over
// recent feedback intervals (an EWMA of per-call deltas), not the session
// lifetime. Call it once per feedback arrival — it advances the window. A
// session whose loss episode ends stops paying for it within a few report
// intervals, and one whose episode starts is charged just as quickly,
// where the lifetime average would lag both ways.
func (s *Sender) BudgetOverheadRatio() float64 {
	red := s.stats.ParityBytes + s.stats.RtxBytes
	dm, dr := s.stats.MediaBytes-s.lastMediaB, red-s.lastRedB
	s.lastMediaB, s.lastRedB = s.stats.MediaBytes, red
	if dm > 0 {
		s.budgetEwma += (float64(dr)/float64(dm) - s.budgetEwma) / 4
	}
	return s.budgetEwma
}

// OnPacket ingests one outgoing media packet (a full RTP packet: header and
// payload). It caches a copy for retransmission and advances the parity
// group; when the group completes it returns the marshaled parity packet to
// transmit (nil otherwise). The returned buffer is freshly allocated and
// owned by the caller. Packets must be fed in send order; a sequence
// discontinuity restarts the parity group.
func (s *Sender) OnPacket(pkt []byte) []byte {
	var h rtp.Header
	if _, err := h.Unmarshal(pkt); err != nil {
		return nil
	}
	s.stats.MediaPackets++
	s.stats.MediaBytes += int64(len(pkt))

	if s.plan.Nack {
		slot := &s.cache[int(h.Seq)%len(s.cache)]
		// Allocate a fresh copy instead of reusing the evicted buffer: the
		// old slice may still be in flight as a retransmission.
		cp := make([]byte, len(pkt))
		copy(cp, pkt)
		*slot = cacheEntry{seq: h.Seq, pkt: cp, ok: true}
	}

	if !s.plan.FEC {
		return nil
	}
	if s.count > 0 && h.Seq != s.baseSeq+uint16(s.count) {
		s.resetGroup() // discontinuity: abandon the partial group
	}
	if s.count == 0 {
		s.baseSeq = h.Seq
		s.groupLen = s.nextLen // adaptation applies at group boundaries
	}
	if len(pkt) > s.parityLen {
		if cap(s.parity) < len(pkt) {
			grown := make([]byte, len(pkt))
			copy(grown, s.parity[:s.parityLen])
			s.parity = grown
		} else {
			s.parity = s.parity[:len(pkt)]
			for i := s.parityLen; i < len(pkt); i++ {
				s.parity[i] = 0
			}
		}
		s.parityLen = len(pkt)
	}
	for i, b := range pkt {
		s.parity[i] ^= b
	}
	s.lenXor ^= uint16(len(pkt))
	s.count++
	if s.count < s.groupLen {
		return nil
	}
	p := rtp.Parity{
		SSRC:    h.SSRC,
		BaseSeq: s.baseSeq,
		Count:   uint8(s.count),
		LenXor:  s.lenXor,
		Data:    s.parity[:s.parityLen],
	}
	wire := p.Marshal(make([]byte, 0, rtp.ParityHeaderLen+s.parityLen))
	s.resetGroup()
	s.stats.ParityPackets++
	s.stats.ParityBytes += int64(len(wire))
	return wire
}

func (s *Sender) resetGroup() {
	for i := 0; i < s.parityLen; i++ {
		s.parity[i] = 0
	}
	s.parityLen = 0
	s.lenXor = 0
	s.count = 0
	s.groupLen = s.nextLen
}

// OnNack answers one NACK: the cached packets to retransmit, oldest
// requested first (the NACK's own order). Returned slices are owned by the
// cache and must not be mutated; each seq is retransmitted at most
// NackRetries times. Requests for evicted or never-sent seqs count as cache
// misses and are skipped.
func (s *Sender) OnNack(n *rtp.Nack) [][]byte {
	if !s.plan.Nack {
		return nil
	}
	s.stats.NacksReceived++
	var out [][]byte
	for _, seq := range n.Seqs {
		slot := &s.cache[int(seq)%len(s.cache)]
		if !slot.ok || slot.seq != seq {
			s.stats.CacheMisses++
			continue
		}
		if slot.resends >= s.cfg.NackRetries {
			continue
		}
		slot.resends++
		out = append(out, slot.pkt)
		s.stats.RtxPackets++
		s.stats.RtxBytes += int64(len(slot.pkt))
	}
	return out
}

// OnReportLoss feeds one receiver-report loss fraction to hybrid's
// redundancy adaptation: the parity ratio targets 1.5x the smoothed loss,
// clamped to [1/MaxGroupLen, 1/MinGroupLen], and the group length applies
// at the next group boundary. Non-adaptive strategies ignore it.
func (s *Sender) OnReportLoss(fractionLost float64) {
	if !s.plan.Adaptive {
		return
	}
	if fractionLost < 0 {
		fractionLost = 0
	} else if fractionLost > 1 {
		fractionLost = 1
	}
	s.lossEwma += (fractionLost - s.lossEwma) / 8
	ratio := 1.5 * s.lossEwma
	k := s.cfg.MaxGroupLen
	if ratio > 0 {
		k = int(1/ratio + 0.5)
	}
	if k < s.cfg.MinGroupLen {
		k = s.cfg.MinGroupLen
	}
	if k > s.cfg.MaxGroupLen {
		k = s.cfg.MaxGroupLen
	}
	s.nextLen = k
}

// String renders the sender state for diagnostics.
func (s *Sender) String() string {
	return fmt.Sprintf("recovery.Sender{group %d/%d, media %d, parity %d, rtx %d}",
		s.count, s.groupLen, s.stats.MediaPackets, s.stats.ParityPackets, s.stats.RtxPackets)
}
