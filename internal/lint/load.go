package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package as the checks see it.
// Type-checking is best-effort: srcimporter resolves stdlib and
// module-internal imports from source, and any residual errors are
// collected rather than fatal so syntactic checks still run on code that
// is mid-refactor. Checks that need types (maporder, floatfmt) skip nodes
// whose types did not resolve.
type Package struct {
	Path  string // import path, e.g. "telepresence/internal/netem"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File

	TypesPkg   *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Loader parses and type-checks packages with a shared FileSet and a
// shared source importer, so stdlib dependencies are checked once per
// vplint run, not once per package.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader. The "source" compiler importer type-checks
// imports from source; module-internal import paths resolve only when the
// process working directory is inside the module (go/build shells out to
// the go command for module mode), which is how both the vplint CLI and
// `go test` run.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// LoadDir parses the non-test Go files of one directory as a single
// package with the given import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	pkg := &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: files}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	// Check never returns a nil package; errors are already collected.
	pkg.TypesPkg, _ = conf.Check(importPath, l.fset, files, pkg.Info)
	return pkg, nil
}

// Load resolves the patterns (directories, or "dir/..." trees) against
// baseDir, derives import paths from the enclosing go.mod, and loads every
// matched package. Directories named testdata and directories starting
// with "." or "_" are skipped, mirroring the go tool.
func Load(baseDir string, patterns []string) ([]*Package, error) {
	modRoot, modPath, err := findModule(baseDir)
	if err != nil {
		return nil, err
	}
	dirSet := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil {
			d = abs
		}
		if !dirSet[d] {
			dirSet[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Join(baseDir, rest)
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(baseDir, pat))
	}
	sort.Strings(dirs)

	loader := NewLoader()
	pkgs := make([]*Package, 0, len(dirs))
	for _, d := range dirs {
		rel, err := filepath.Rel(modRoot, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: %s is outside module %s", d, modRoot)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(d, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}
