package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// globalrandCheck bans math/rand package-level functions everywhere except
// the seeded-RNG wrapper package (internal/simrand). The top-level funcs
// (rand.Intn, rand.Float64, ...) draw from the process-global generator —
// shared, lock-contended, and seeded per process, so two workers or two
// runs disagree. rand.New/NewSource outside the wrapper is banned too:
// seed derivation must flow through simrand.Child so a unit's stream
// depends only on its identity, never on scheduling. Mentioning the types
// (*rand.Rand in a signature) and calling methods on an injected *rand.Rand
// remain legal — that is exactly the sanctioned pattern.
type globalrandCheck struct{}

func (globalrandCheck) Name() string { return "globalrand" }

func (globalrandCheck) Doc() string {
	return "no math/rand top-level functions or rand.New outside internal/simrand; randomness flows through simrand.Child / injected seeded RNGs"
}

func (globalrandCheck) Applies(pkg *Package, cfg *Config) bool {
	return !matchPkg(pkg.Path, cfg.GlobalrandAllowPackages)
}

// randTypeNames are the exported type names of math/rand and math/rand/v2:
// referencing a type is always allowed, and when an identifier fails to
// resolve (type errors) the member is assumed banned unless it names one
// of these.
var randTypeNames = map[string]bool{
	"Rand":     true,
	"Source":   true,
	"Source64": true,
	"Zipf":     true,
	"PCG":      true, // math/rand/v2
	"ChaCha8":  true, // math/rand/v2
}

func (globalrandCheck) Run(pkg *Package, cfg *Config) []Finding {
	var out []Finding
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		path := path
		pkgMemberRefs(pkg, path, func(file *ast.File, sel *ast.SelectorExpr) {
			name := sel.Sel.Name
			switch obj := pkg.Info.Uses[sel.Sel].(type) {
			case *types.TypeName:
				return // *rand.Rand in a signature: sanctioned
			case *types.Func:
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					return // method on a seeded value, not a package func
				}
			case nil:
				if randTypeNames[name] {
					return
				}
			}
			out = append(out, Finding{
				Pos:   pkg.Fset.Position(sel.Pos()),
				Check: "globalrand",
				Message: fmt.Sprintf("%s.%s: randomness must flow through simrand.Child or an injected seeded *rand.Rand, never package-level math/rand state",
					path, name),
			})
		})
	}
	return out
}
