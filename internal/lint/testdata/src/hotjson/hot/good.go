package hot

import (
	"fmt"
	"strconv"
)

type Direction int

// String is a cold-path human label: String()/Error() methods are exempt.
func (d Direction) String() string {
	return fmt.Sprintf("Direction(%d)", int(d))
}

// MustPositive formats only to crash: panic arguments are exempt.
func MustPositive(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("hot: n must be positive, got %d", n))
	}
}

// Check builds error text, not output bytes: fmt.Errorf is not banned.
func Check(n int) error {
	if n < 0 {
		return fmt.Errorf("hot: negative %d", n)
	}
	return nil
}

// AppendLabel is the sanctioned hot-path form: strconv into a reused buffer.
func AppendLabel(b []byte, i int) []byte {
	b = append(b, 'u')
	return strconv.AppendInt(b, int64(i), 10)
}
