// Package hot stands in for the hand-rolled-encoder packages (telemetry
// tracer, netem, rtp): reflection-based JSON and fmt string building are
// banned on these hot paths.
package hot

import (
	"encoding/json" // want "encoding/json imported in a hot-path package"
	"fmt"
)

type Row struct{ A int }

func Encode(r Row) ([]byte, error) {
	return json.Marshal(r)
}

func Label(i int) string {
	return fmt.Sprintf("u%d", i) // want "fmt.Sprintf allocates on a hot-path package"
}

func Append(b []byte, i int) []byte {
	return fmt.Appendf(b, "%d", i) // want "fmt.Appendf allocates on a hot-path package"
}
