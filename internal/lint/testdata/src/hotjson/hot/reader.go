package hot

import (
	"encoding/json"
	"fmt"
)

// Decode runs on finished artifacts, off the hot path — this file is on
// the fixture config's HotJSONAllowFiles list, mirroring the real
// allowlist for telemetry/summary.go and telemetry/schema.go, so nothing
// here is flagged.
func Decode(b []byte) (map[string]json.RawMessage, string, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, "", err
	}
	return m, fmt.Sprintf("%d fields", len(m)), nil
}
