package det

import "sort"

// Keys is the sanctioned collect-and-sort idiom, recognized structurally:
// the body only appends, and the collector is sorted in the same block.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Pairs collects into two slices; sorting one of them sanctions the loop
// (the companion slice is reordered with it by index, as in the fleet
// manifest encoders).
func Pairs(m map[string]int) []string {
	var ks []string
	var vs []int
	for k, v := range m {
		ks = append(ks, k)
		vs = append(vs, v)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	_ = vs
	return ks
}

// Count is provably order-independent — a pure integer count — and keeps
// its map range behind a reasoned pragma instead of a rewrite.
func Count(m map[string]int) int {
	n := 0
	//vplint:allow maporder(pure integer count; every iteration order yields the same result)
	for range m {
		n++
	}
	return n
}

// Slices and arrays iterate in index order; no finding.
func SliceSum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
