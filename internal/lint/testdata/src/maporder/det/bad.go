// Package det is a maporder fixture inside the deterministic set.
package det

import "fmt"

// FirstMatch mirrors the real regression fixed in telemetry/schema.go's
// ValidateLine: returning on the first matching key makes the result (here
// the rendered pair, there the error text) depend on map iteration order.
func FirstMatch(m map[string]int) string {
	for k, v := range m { // want "range over map m"
		if v > 0 {
			return fmt.Sprintf("%s=%d", k, v)
		}
	}
	return ""
}

// SumFloats looks commutative but is not: float addition rounds, so the
// iteration order leaks into the low bits of the result.
func SumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "range over map m"
		s += v
	}
	return s
}

// CollectNoSort collects keys but never sorts them: the slice is just the
// random order captured.
func CollectNoSort(m map[int]bool) []int {
	var keys []int
	for k := range m { // want "range over map m"
		keys = append(keys, k)
	}
	return keys
}
