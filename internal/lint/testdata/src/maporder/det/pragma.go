package det

// Stale: the loop below ranges a slice, so this pragma suppresses nothing
// and must itself fail the build.
//
//vplint:allow maporder(left behind after the map became a slice) // want "stale //vplint:allow maporder pragma"
func Stale(xs []string) int {
	n := 0
	for range xs {
		n++
	}
	return n
}

// A pragma without a reason is rejected, so the map range it meant to
// excuse is still reported too.
func NoReason(m map[string]bool) int {
	n := 0
	//vplint:allow maporder() // want "must give a reason"
	for range m { // want "range over map m"
		n++
	}
	return n
}

// Unknown check names and off-grammar pragmas are malformed.
//
//vplint:allow nosuchcheck(whatever) // want "unknown check"
//
//vplint:allow maporder missing-parens // want "malformed vplint pragma"
func Malformed() {}
