// Package app is any package outside internal/simrand: the process-global
// math/rand surface and local construction of generators are both banned —
// seeds must flow through simrand.Child.
package app

import "math/rand"

func Bad(n int) int {
	if rand.Float64() < 0.5 { // want "math/rand.Float64"
		return rand.Intn(n) // want "math/rand.Intn"
	}
	src := rand.NewSource(42) // want "math/rand.NewSource"
	r := rand.New(src)        // want "math/rand.New:"
	rand.Shuffle(n, func(i, j int) {}) // want "math/rand.Shuffle"
	return r.Intn(n)
}
