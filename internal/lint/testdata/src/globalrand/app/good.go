package app

import "math/rand"

// Good receives an injected, explicitly seeded generator: methods on the
// value are the sanctioned pattern, and naming the type in a signature is
// not a use of global state.
func Good(r *rand.Rand) float64 {
	return r.Float64() + r.NormFloat64()
}

// Pick draws from the injected generator only.
func Pick(r *rand.Rand, xs []int) int { return xs[r.Intn(len(xs))] }
