// Package simrandish stands in for internal/simrand, the one allowlisted
// package: the seeded-RNG wrapper itself must construct generators.
package simrandish

import "math/rand"

// New derives a child generator from an explicit seed.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
