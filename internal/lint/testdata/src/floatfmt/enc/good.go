package enc

import (
	"fmt"
	"strconv"
)

func Good(f float64, n int, s string) string {
	a := strconv.FormatFloat(f, 'f', 3, 64) // the sanctioned form: explicit format and precision
	b := fmt.Sprintf("%.3f", f)             // explicit precision fixes the shape
	c := fmt.Sprintf("%v %d %g", s, n, "txt") // %v/%g on non-floats is not this check's business
	d := fmt.Sprintf("%*.*f", 8, 2, f)      // starred width/precision still names a fixed shape
	return a + b + c + d
}

// Diag builds error text, not row bytes: fmt.Errorf is exempt even on
// floats (matching the real tree's "%g Mbps" validation errors).
func Diag(f float64) error {
	return fmt.Errorf("bad floor %g Mbps", f)
}
