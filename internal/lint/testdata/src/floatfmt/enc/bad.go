// Package enc stands in for the row/trace encoder packages: floats must
// never be rendered with the value-dependent %v / %g verbs.
package enc

import "fmt"

const rowFmt = "rate=%g qdrop=%d" // named-constant formats are scanned too

func Bad(f float64, g float32, n int) string {
	a := fmt.Sprintf("%v", f)   // want "%v formats float f"
	b := fmt.Sprintf("x=%g\n", g) // want "%g formats float g"
	c := fmt.Sprintf(rowFmt, f, n) // want "%g formats float f"
	var buf []byte
	buf = fmt.Appendf(buf, "%d %v", n, f) // want "%v formats float f"
	d := fmt.Sprintf("%[2]v %[1]d", n, f) // want "%v formats float f"
	return a + b + c + d + string(buf)
}
