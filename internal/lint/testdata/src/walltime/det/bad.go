// Package det is a walltime fixture inside the fixture config's
// deterministic set: every machine-clock read below must be flagged.
package det

import "time"

func Bad() time.Duration {
	start := time.Now()           // want "time.Now reads the machine clock"
	time.Sleep(time.Millisecond)  // want "time.Sleep reads the machine clock"
	<-time.After(time.Second)     // want "time.After reads the machine clock"
	tm := time.NewTimer(time.Second) // want "time.NewTimer reads the machine clock"
	defer tm.Stop()
	tk := time.NewTicker(time.Second) // want "time.NewTicker reads the machine clock"
	defer tk.Stop()
	d := time.Since(start) // want "time.Since reads the machine clock"
	_ = time.Until(start)  // want "time.Until reads the machine clock"
	return d
}
