package det

import "time"

const tick = 25 * time.Millisecond

// Good stays on the pure time surface: Duration arithmetic, constants,
// constructors, and methods on time.Time values are all deterministic.
func Good(epoch int64) time.Time {
	t := time.Unix(epoch, 0)
	return t.Add(3 * tick)
}

// Format is value-to-string, no clock involved.
func Format(d time.Duration) string { return d.String() }
