// Package other sits outside the deterministic set (think the fleet
// scheduler's watchdog): wall-clock reads are legal here and the file
// must produce no findings.
package other

import "time"

func Wall() time.Time { return time.Now() }

func Elapsed(start time.Time) time.Duration { return time.Since(start) }
