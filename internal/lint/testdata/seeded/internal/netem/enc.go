// Package netem (seeded corpus): hot-path package with a JSON encoder,
// fmt string building, global randomness, and an order-sensitive map walk.
package netem

import (
	"encoding/json"
	"fmt"
	"math/rand"
)

type Frame struct {
	Size int
	Link string
}

func Encode(f Frame) ([]byte, error) {
	return json.Marshal(f)
}

func Label(f Frame) string {
	return fmt.Sprintf("%s/%d", f.Link, f.Size)
}

func Jitter() float64 {
	return rand.Float64()
}

func Drain(queues map[string][]Frame) []Frame {
	var out []Frame
	for _, q := range queues {
		out = append(out, q...)
	}
	return out
}
