// Package simtime (seeded corpus): the directory suffix places this under
// DefaultConfig's deterministic set, so vplint over this tree must exit 1.
package simtime

import "time"

// Elapsed commits the cardinal sin: wall-clock reads in the virtual-time
// package itself.
func Elapsed() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
