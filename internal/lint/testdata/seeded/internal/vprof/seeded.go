// Package vprof (seeded corpus): the virtual-time profiler, where wall
// clock is sanctioned (CPU attribution is its whole point, so it is not a
// deterministic package), but map-ordered report output and
// value-dependent float verbs are still violations — its JSONL reports
// are byte-compared artifacts.
package vprof

import (
	"fmt"
	"strings"
	"time"
)

type siteStat struct {
	Events uint64
	CPU    time.Duration
}

// Charge legitimately reads the wall clock: vprof is exempt from
// walltime, so this must yield no finding.
func Charge(start time.Time) time.Duration {
	return time.Since(start)
}

// Rate formats a float with a value-dependent verb in an encoder
// package: seeded floatfmt violation.
func Rate(eventsPerVSec float64) string {
	return fmt.Sprintf("%g", eventsPerVSec)
}

// Render ranges a map straight into report text: order leaks.
func Render(sites map[string]siteStat) string {
	var b strings.Builder
	for name, s := range sites { // seeded maporder violation
		b.WriteString(name)
		_ = s
	}
	return b.String()
}
