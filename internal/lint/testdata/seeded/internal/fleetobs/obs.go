// Package fleetobs (seeded corpus): observability code where wall clock
// and encoding/json are sanctioned (not a deterministic or hot-path
// package), but map-ordered output and value-dependent float verbs are
// still violations — metrics and API bytes must not depend on iteration
// order or float formatting defaults.
package fleetobs

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

type snapshot struct {
	ID   string
	Rows int64
}

// Uptime legitimately reads the wall clock: fleetobs is exempt from
// walltime, so this must yield no finding.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Render legitimately uses encoding/json: fleetobs is exempt from
// hotjson, so this must yield no finding either.
func Render(s snapshot) ([]byte, error) {
	return json.Marshal(s)
}

// RowsPerSec formats a float with a value-dependent verb in an encoder
// package: seeded floatfmt violation.
func RowsPerSec(v float64) string {
	return fmt.Sprintf("%g", v)
}

// Metrics ranges a map straight into exposition text: order leaks.
func Metrics(runs map[string]snapshot) string {
	var b strings.Builder
	for id, s := range runs { // seeded maporder violation
		b.WriteString("fleet_rows_total{run=\"" + id + "\"} ")
		_ = s
	}
	return b.String()
}
