// Package core (seeded corpus): a row encoder formatting floats with
// value-dependent verbs.
package core

import "fmt"

type Row struct {
	Rate float64
	Loss float64
}

func (r Row) CSV() string {
	return fmt.Sprintf("%v,%g", r.Rate, r.Loss)
}
