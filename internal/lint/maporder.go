package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// maporderCheck flags `range` over a map in packages whose iteration order
// can leak into rows, traces, manifests, or wire behavior. Go randomizes
// map iteration per run, so any order-sensitive consumer is a determinism
// bug that golden tests only catch when the dice land badly.
//
// Two escape hatches, both explicit:
//
//   - The collect-and-sort idiom is recognized structurally: a range body
//     that only appends into slices, followed later in the same statement
//     list by a sort/slices call on one of those slices, is the sanctioned
//     fix and produces no finding.
//   - //vplint:allow maporder(reason) on or above the range statement
//     suppresses the finding for loops that are provably order-independent
//     (e.g. commutative integer sums). The reason is mandatory and the
//     pragma goes stale — and fails the build — once the loop is gone.
type maporderCheck struct{}

func (maporderCheck) Name() string { return "maporder" }

func (maporderCheck) Doc() string {
	return "no raw range over maps in deterministic/output packages: collect keys and sort, or //vplint:allow maporder(reason)"
}

func (maporderCheck) Applies(pkg *Package, cfg *Config) bool {
	return cfg.inDeterministic(pkg.Path) || matchPkg(pkg.Path, cfg.MapOrderExtraPackages)
}

func (maporderCheck) Run(pkg *Package, cfg *Config) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true // unresolved: cannot prove it is a map
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectsAndSorts(pkg, file, rs) {
				return true
			}
			out = append(out, Finding{
				Pos:   pkg.Fset.Position(rs.Pos()),
				Check: "maporder",
				Message: fmt.Sprintf("range over map %s: iteration order is randomized per run; collect keys and sort before iterating, or annotate //vplint:allow maporder(reason)",
					types.ExprString(rs.X)),
			})
			return true
		})
	}
	return out
}

// collectsAndSorts recognizes the sanctioned idiom: the range body only
// appends into collector slices, and a later statement in the same list
// sorts one of them (sort.Strings/Ints/Float64s/Slice/SliceStable/Stable
// or slices.Sort*). The order-sensitive work then runs over the sorted
// slice, not the map.
func collectsAndSorts(pkg *Package, file *ast.File, rs *ast.RangeStmt) bool {
	targets := collectorTargets(rs)
	if len(targets) == 0 {
		return false
	}
	list, idx, ok := stmtContext(file, rs)
	if !ok {
		return false
	}
	for _, stmt := range list[idx+1:] {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || !isSortCall(pkg, file, call) {
			continue
		}
		for _, arg := range call.Args {
			if targets[types.ExprString(arg)] {
				return true
			}
		}
	}
	return false
}

// collectorTargets returns the rendered expressions a pure collector loop
// appends into: every body statement must be `x = append(x, ...)`.
func collectorTargets(rs *ast.RangeStmt) map[string]bool {
	if rs.Body == nil || len(rs.Body.List) == 0 {
		return nil
	}
	targets := map[string]bool{}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 ||
			(as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
			return nil
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return nil
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return nil
		}
		lhs := types.ExprString(as.Lhs[0])
		if types.ExprString(call.Args[0]) != lhs {
			return nil
		}
		targets[lhs] = true
	}
	return targets
}

var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Stable": true, "Sort": true,
	"SortFunc": true, "SortStableFunc": true, // slices package
}

// isSortCall reports whether call invokes the sort or slices package.
func isSortCall(pkg *Package, file *ast.File, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !sortFuncs[sel.Sel.Name] {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	switch obj := pkg.Info.Uses[id].(type) {
	case *types.PkgName:
		p := obj.Imported().Path()
		return p == "sort" || p == "slices"
	case nil:
		return importAliases(file, "sort")[id.Name] || importAliases(file, "slices")[id.Name]
	}
	return false
}
