package lint

import (
	"fmt"
	"go/ast"
	"strconv"
)

// hotjsonCheck polices the hand-rolled-encoding contract on hot-path
// packages: the telemetry tracer, netem, and rtp serialize per-packet and
// per-frame state with preallocated buffers and strconv appends, because
// encoding/json reflection and fmt.Sprint* string building allocate on
// every call — PR 2's allocation budgets (0 allocs/frame on the link send
// path) die by a thousand Sprintfs. Banned there: importing encoding/json
// and calling the fmt string-building family. Exempt: files on the
// config allowlist (trace readers, report renderers), formatting passed
// directly to panic (the process is ending), and String()/Error() methods
// (cold-path human text).
type hotjsonCheck struct{}

func (hotjsonCheck) Name() string { return "hotjson" }

func (hotjsonCheck) Doc() string {
	return "no encoding/json or fmt.Sprint*/Fprintf/Appendf in hot-path packages (hand-rolled encoders); panic messages, String()/Error() methods, and allowlisted reader files are exempt"
}

func (hotjsonCheck) Applies(pkg *Package, cfg *Config) bool {
	return matchPkg(pkg.Path, cfg.HotPathPackages)
}

var hotFmtFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Fprintf":  true,
	"Appendf":  true,
}

func (hotjsonCheck) Run(pkg *Package, cfg *Config) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		fileName := pkg.Fset.Position(file.Pos()).Filename
		if matchFile(fileName, cfg.HotJSONAllowFiles) {
			continue
		}
		for _, imp := range file.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "encoding/json" {
				out = append(out, Finding{
					Pos:     pkg.Fset.Position(imp.Pos()),
					Check:   "hotjson",
					Message: "encoding/json imported in a hot-path package: hand-roll the encoding (see telemetry.Tracer) or allowlist this reader file in the lint config",
				})
			}
		}
		inPanic := panicArgCalls(pkg, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := fmtCall(pkg, file, call, hotFmtFuncs)
			if !ok || inPanic[call] || enclosingFuncExempt(file, call.Pos()) {
				return true
			}
			out = append(out, Finding{
				Pos:   pkg.Fset.Position(call.Pos()),
				Check: "hotjson",
				Message: fmt.Sprintf("fmt.%s allocates on a hot-path package: append into a reused buffer with strconv (see telemetry.Tracer), or move this to an allowlisted reader file",
					name),
			})
			return true
		})
	}
	return out
}
