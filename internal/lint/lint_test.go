package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureConfig retargets every check at the fixture package paths under
// testdata/src, exercising the same matching machinery DefaultConfig uses
// on the real tree.
func fixtureConfig() *Config {
	return &Config{
		DeterministicPackages:   []string{"det"},
		MapOrderExtraPackages:   []string{"sink"},
		GlobalrandAllowPackages: []string{"simrandish"},
		HotPathPackages:         []string{"hot"},
		HotJSONAllowFiles:       []string{"hot/reader.go"},
		EncoderPackages:         []string{"enc"},
	}
}

// TestFixtures is the mini-analysistest: every package under testdata/src
// runs through all checks plus the pragma machinery, and the findings must
// match the `// want "substring"` expectation comments line for line —
// positives, negatives, pragma-allow, stale-pragma, and malformed-pragma
// cases alike.
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	groups, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fixtureConfig()
	loader := NewLoader()
	ranAny := false
	for _, g := range groups {
		if !g.IsDir() {
			continue
		}
		pkgDirs, err := os.ReadDir(filepath.Join(root, g.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, pd := range pkgDirs {
			if !pd.IsDir() {
				continue
			}
			ranAny = true
			dir := filepath.Join(root, g.Name(), pd.Name())
			name := g.Name() + "/" + pd.Name()
			t.Run(name, func(t *testing.T) {
				pkg, err := loader.LoadDir(dir, name)
				if err != nil {
					t.Fatal(err)
				}
				for _, te := range pkg.TypeErrors {
					t.Errorf("fixture does not type-check: %v", te)
				}
				findings := Run([]*Package{pkg}, Checks(), cfg)
				checkExpectations(t, pkg, findings)
			})
		}
	}
	if !ranAny {
		t.Fatal("no fixture packages found under testdata/src")
	}
}

// wantRe captures the quoted-string list after a `want` marker in a
// comment; quotedRe then splits the individual expectations.
var (
	wantRe   = regexp.MustCompile(`\bwant\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
	quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

func checkExpectations(t *testing.T, pkg *Package, findings []Finding) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want expectation %s: %v", pos.Filename, pos.Line, q, err)
					}
					wants[k] = append(wants[k], s)
				}
			}
		}
	}

	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(f.String(), w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, w)
		}
	}
}

// TestSeededCorpus pins the acceptance contract: running the real
// DefaultConfig over the seeded-violation tree (whose directory suffixes
// match the production package sets) reports every check at least once.
func TestSeededCorpus(t *testing.T) {
	pkgs, err := Load(".", []string{"testdata/seeded/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 3 {
		t.Fatalf("expected >=3 seeded packages, got %d", len(pkgs))
	}
	findings := Run(pkgs, Checks(), DefaultConfig())
	byCheck := map[string]int{}
	for _, f := range findings {
		byCheck[f.Check]++
	}
	for _, c := range Checks() {
		if byCheck[c.Name()] == 0 {
			t.Errorf("seeded corpus produced no %s findings (got %v)", c.Name(), byCheck)
		}
	}
}

// TestSeededFleetobs pins the fleetobs exemption boundary: the seeded
// fleetobs package uses time.Now-ish wall clock and encoding/json with
// no findings (both sanctioned there), while its map-ranged metrics
// output and value-dependent float verb are still caught.
func TestSeededFleetobs(t *testing.T) {
	loader := NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "seeded", "internal", "fleetobs"),
		"seed/internal/fleetobs")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, Checks(), DefaultConfig())
	byCheck := map[string]int{}
	for _, f := range findings {
		byCheck[f.Check]++
	}
	if byCheck["walltime"] != 0 || byCheck["hotjson"] != 0 {
		t.Errorf("fleetobs must be exempt from walltime/hotjson, got %v", byCheck)
	}
	if byCheck["maporder"] == 0 {
		t.Errorf("seeded map-ranged metrics output not caught: %v", byCheck)
	}
	if byCheck["floatfmt"] == 0 {
		t.Errorf("seeded %%g float verb not caught: %v", byCheck)
	}
}

// TestSeededVprof pins the vprof exemption boundary: the seeded vprof
// package uses time.Now-ish wall clock with no finding (CPU attribution
// is sanctioned there), while its map-ranged report output and
// value-dependent float verb are still caught.
func TestSeededVprof(t *testing.T) {
	loader := NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "seeded", "internal", "vprof"),
		"seed/internal/vprof")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, Checks(), DefaultConfig())
	byCheck := map[string]int{}
	for _, f := range findings {
		byCheck[f.Check]++
	}
	if byCheck["walltime"] != 0 {
		t.Errorf("vprof must be exempt from walltime, got %v", byCheck)
	}
	if byCheck["maporder"] == 0 {
		t.Errorf("seeded map-ranged report output not caught: %v", byCheck)
	}
	if byCheck["floatfmt"] == 0 {
		t.Errorf("seeded %%g float verb not caught: %v", byCheck)
	}
}

// TestDefaultConfigTargets pins which real packages each check patrols.
func TestDefaultConfigTargets(t *testing.T) {
	cfg := DefaultConfig()
	pkgAt := func(path string) *Package { return &Package{Path: path} }
	cases := []struct {
		check Check
		path  string
		want  bool
	}{
		{walltimeCheck{}, "telepresence/internal/simtime", true},
		{walltimeCheck{}, "telepresence/internal/netem", true},
		{walltimeCheck{}, "telepresence/internal/fleet", false}, // watchdog/backoff are wall time by design
		{walltimeCheck{}, "telepresence/cmd/vpfleet", false},
		{walltimeCheck{}, "telepresence/internal/fleetobs", false}, // EWMA/uptime are wall time by design
		{walltimeCheck{}, "telepresence/internal/vprof", false},    // CPU attribution is wall time by design
		{globalrandCheck{}, "telepresence/internal/vca", true},
		{globalrandCheck{}, "telepresence/internal/simrand", false}, // the one sanctioned wrapper
		{maporderCheck{}, "telepresence/internal/quic", true},
		{maporderCheck{}, "telepresence/internal/fleet", true},    // manifests/sinks emit map-derived bytes
		{maporderCheck{}, "telepresence/internal/fleetobs", true}, // API/metrics ordering must not leak map order
		{maporderCheck{}, "telepresence/internal/vprof", true},    // merged reports are byte-compared artifacts
		{maporderCheck{}, "telepresence/internal/stats", false},
		{hotjsonCheck{}, "telepresence/internal/telemetry", true},
		{hotjsonCheck{}, "telepresence/internal/rtp", true},
		{hotjsonCheck{}, "telepresence/internal/core", false},
		{hotjsonCheck{}, "telepresence/internal/fleetobs", false}, // JSON API responses are off the hot path
		{floatfmtCheck{}, "telepresence/internal/fleet", true},
		{floatfmtCheck{}, "telepresence/internal/stats", true},
		{floatfmtCheck{}, "telepresence/internal/fleetobs", true}, // Prometheus text + progress line
		{floatfmtCheck{}, "telepresence/internal/vprof", true},    // byte-stable JSONL report floats
		{floatfmtCheck{}, "telepresence/internal/netem", false},
	}
	for _, c := range cases {
		if got := c.check.Applies(pkgAt(c.path), cfg); got != c.want {
			t.Errorf("%s.Applies(%s) = %v, want %v", c.check.Name(), c.path, got, c.want)
		}
	}
	if !matchFile("/abs/path/internal/telemetry/summary.go", cfg.HotJSONAllowFiles) {
		t.Error("summary.go should be hotjson-allowlisted")
	}
	if matchFile("/abs/path/internal/telemetry/tracer.go", cfg.HotJSONAllowFiles) {
		t.Error("tracer.go must not be hotjson-allowlisted")
	}
}

func TestChecksByName(t *testing.T) {
	got, err := ChecksByName([]string{"maporder", "walltime"})
	if err != nil || len(got) != 2 || got[0].Name() != "maporder" || got[1].Name() != "walltime" {
		t.Fatalf("ChecksByName = %v, %v", got, err)
	}
	if _, err := ChecksByName([]string{"nosuch"}); err == nil {
		t.Fatal("expected error for unknown check")
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verbArg
	}{
		{"plain", nil},
		{"%d", []verbArg{{'d', 0}}},
		{"%v %g", []verbArg{{'v', 0}, {'g', 1}}},
		{"100%% %v", []verbArg{{'v', 0}}},
		{"%-8.3f", []verbArg{{'f', 0}}},
		{"%*.*f", []verbArg{{'f', 2}}},
		{"%[2]v %[1]d", []verbArg{{'v', 1}, {'d', 0}}},
		{"%+v", []verbArg{{'v', 0}}},
	}
	for _, c := range cases {
		if got := formatVerbs(c.format); !reflect.DeepEqual(got, c.want) {
			t.Errorf("formatVerbs(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}

// TestFindingString pins the report format the CI step greps.
func TestFindingString(t *testing.T) {
	f := Finding{Check: "walltime", Message: "no"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 7
	if got, want := f.String(), "a/b.go:7: [walltime] no"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestRunSortsFindings guards the analyzer's own determinism: findings
// come out ordered by file, line, check regardless of check order.
func TestRunSortsFindings(t *testing.T) {
	loader := NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "seeded", "internal", "netem"), "seed/internal/netem")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, Checks(), DefaultConfig())
	if len(findings) < 3 {
		t.Fatalf("expected several findings, got %v", findings)
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Pos.Line > b.Pos.Line {
			t.Errorf("findings out of order: %s before %s", fmtFinding(a), fmtFinding(b))
		}
	}
}

func fmtFinding(f Finding) string {
	return fmt.Sprintf("%s:%d [%s]", f.Pos.Filename, f.Pos.Line, f.Check)
}
