package lint

import (
	"fmt"
	"go/ast"
)

// walltimeCheck bans wall-clock reads and real-time waits in deterministic
// packages. Everything that feeds golden rows must derive its notion of
// time from the simtime virtual clock: a single time.Now() turns
// byte-identical output into machine-speed-dependent output. The pure
// time package surface — Duration arithmetic, constants like
// time.Millisecond, constructors like time.Date/time.Unix — stays legal;
// only the functions that read or wait on the machine clock are banned.
type walltimeCheck struct{}

func (walltimeCheck) Name() string { return "walltime" }

func (walltimeCheck) Doc() string {
	return "no wall-clock reads or waits (time.Now/Since/Until/Sleep/After/Tick/NewTimer/NewTicker/AfterFunc) in deterministic packages; all time flows from simtime"
}

func (walltimeCheck) Applies(pkg *Package, cfg *Config) bool {
	return cfg.inDeterministic(pkg.Path)
}

// walltimeBanned is the machine-clock surface of package time. Methods on
// time.Time/time.Duration values never appear here: pkgMemberRefs only
// yields package-level selector references.
var walltimeBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func (walltimeCheck) Run(pkg *Package, cfg *Config) []Finding {
	var out []Finding
	pkgMemberRefs(pkg, "time", func(file *ast.File, sel *ast.SelectorExpr) {
		name := sel.Sel.Name
		if !walltimeBanned[name] {
			return
		}
		out = append(out, Finding{
			Pos:   pkg.Fset.Position(sel.Pos()),
			Check: "walltime",
			Message: fmt.Sprintf("time.%s reads the machine clock: deterministic packages must take time from the simtime scheduler (simtime.Time, tickers, After)",
				name),
		})
	})
	return out
}
