package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// importAliases returns the names by which file refers to importPath: the
// declared alias, or the path's base name when undeclared. Dot and blank
// imports yield nothing.
func importAliases(file *ast.File, importPath string) map[string]bool {
	out := map[string]bool{}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != importPath {
			continue
		}
		name := baseName(path)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "." || name == "_" {
			continue
		}
		out[name] = true
	}
	return out
}

func baseName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// pkgMemberRefs calls fn for every reference to a package-level member of
// importPath: selector expressions whose base identifier resolves (via
// type info) to that package. When the identifier did not resolve at all —
// a package mid-refactor — it falls back to matching the file's import
// alias, so the determinism checks do not go blind under type errors.
// Identifiers that resolve to anything other than the package (a local
// shadowing the alias) are skipped.
func pkgMemberRefs(pkg *Package, importPath string, fn func(file *ast.File, sel *ast.SelectorExpr)) {
	for _, file := range pkg.Files {
		aliases := importAliases(file, importPath)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch obj := pkg.Info.Uses[id].(type) {
			case *types.PkgName:
				if obj.Imported().Path() == importPath {
					fn(file, sel)
				}
			case nil:
				if aliases[id.Name] {
					fn(file, sel)
				}
			}
			return true
		})
	}
}

// fmtCall reports whether call is fmt.<name> for one of the given
// function names, returning the matched name.
func fmtCall(pkg *Package, file *ast.File, call *ast.CallExpr, names map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !names[sel.Sel.Name] {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	switch obj := pkg.Info.Uses[id].(type) {
	case *types.PkgName:
		if obj.Imported().Path() == "fmt" {
			return sel.Sel.Name, true
		}
	case nil:
		if importAliases(file, "fmt")[id.Name] {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// panicArgCalls returns the set of call expressions passed directly to
// panic(...): crash-path formatting is exempt from hot-path bans.
func panicArgCalls(pkg *Package, file *ast.File) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if obj := pkg.Info.Uses[id]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				return true
			}
		}
		for _, a := range call.Args {
			if c, ok := a.(*ast.CallExpr); ok {
				out[c] = true
			}
		}
		return true
	})
	return out
}

// isFloat reports whether t is a floating-point type (including untyped
// float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// stmtContext locates the statement list that directly contains stmt and
// its index there, so checks can reason about "what happens after this
// statement in the same block".
func stmtContext(file *ast.File, stmt ast.Stmt) (list []ast.Stmt, idx int, ok bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		if ok {
			return false
		}
		var stmts []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			stmts = b.List
		case *ast.CaseClause:
			stmts = b.Body
		case *ast.CommClause:
			stmts = b.Body
		default:
			return true
		}
		for i, s := range stmts {
			if s == stmt {
				list, idx, ok = stmts, i, true
				return false
			}
		}
		return true
	})
	return list, idx, ok
}
