// Package lint is a stdlib-only static analyzer enforcing the simulator's
// determinism contract: simulation output must be byte-identical at any
// worker count, which means no wall-clock reads, no global math/rand, no
// map-iteration-order dependence, and no locale/float formatting drift in
// row or trace encoders. The golden/determinism tests prove the contract
// dynamically at minutes of wall time; this package proves the common
// violations at `go build` speed.
//
// The framework is go/parser + go/ast + go/types only (the module declares
// zero dependencies, and the analyzer keeps it that way). Checks implement
// the Check interface and are registered in Checks(); per-check package
// sets and allowlists live in Config (config.go) so adding a check is a
// small diff. Findings can be suppressed in place with a reasoned pragma:
//
//	//vplint:allow <check>(<reason>)
//
// either on the offending line or on its own line directly above. A pragma
// must name a non-empty reason, and a pragma that does not match a finding
// is itself a finding (stale pragmas fail the build), so suppressions
// cannot silently outlive the code they excused.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Check   string // check name, e.g. "walltime"
	Message string
}

// String renders the canonical "file:line: [check] message" report line.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Message)
}

// Check is one determinism rule. Checks are pure: they read the loaded
// package and return findings; pragma suppression and ordering are the
// runner's job.
type Check interface {
	// Name is the short identifier used in reports and pragmas.
	Name() string
	// Doc is a one-line description for `vplint -list`.
	Doc() string
	// Applies reports whether the check runs on this package at all.
	Applies(pkg *Package, cfg *Config) bool
	// Run returns the raw findings for one package.
	Run(pkg *Package, cfg *Config) []Finding
}

// Checks returns every registered check in stable report order.
func Checks() []Check {
	return []Check{
		walltimeCheck{},
		globalrandCheck{},
		maporderCheck{},
		hotjsonCheck{},
		floatfmtCheck{},
	}
}

// ChecksByName resolves a subset of checks by name, erroring on unknowns.
func ChecksByName(names []string) ([]Check, error) {
	byName := map[string]Check{}
	for _, c := range Checks() {
		byName[c.Name()] = c
	}
	out := make([]Check, 0, len(names))
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// knownCheck reports whether name is a registered check (pragma validation).
func knownCheck(name string) bool {
	for _, c := range Checks() {
		if c.Name() == name {
			return true
		}
	}
	return false
}

// Run executes the checks over the loaded packages, applies pragma
// suppression, flags malformed and stale pragmas, and returns all
// findings sorted by file, line, check, message — a deterministic report
// for a tool that polices determinism.
func Run(pkgs []*Package, checks []Check, cfg *Config) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		out = append(out, runPackage(pkg, checks, cfg)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return out
}

func runPackage(pkg *Package, checks []Check, cfg *Config) []Finding {
	pragmas, pragmaFindings := collectPragmas(pkg)

	var raw []Finding
	ran := map[string]bool{}
	for _, c := range checks {
		ran[c.Name()] = true
		if !c.Applies(pkg, cfg) {
			continue
		}
		raw = append(raw, c.Run(pkg, cfg)...)
	}

	out := pragmaFindings
	for _, f := range raw {
		if p := matchPragma(pragmas, f); p != nil {
			p.used = true
			continue
		}
		out = append(out, f)
	}
	// A pragma that suppressed nothing is stale: either the violation it
	// excused was fixed, or it never pointed at one. Only pragmas for
	// checks that actually ran can be judged.
	for _, p := range pragmas {
		if !p.used && ran[p.Check] {
			out = append(out, Finding{
				Pos:   p.Pos,
				Check: "pragma",
				Message: fmt.Sprintf("stale //vplint:allow %s pragma: no %s finding on this or the next line (fix was merged? delete the pragma)",
					p.Check, p.Check),
			})
		}
	}
	return out
}

// matchPragma finds a pragma suppressing f: same check, same file, and the
// pragma sits on the finding's line (trailing comment) or the line above.
func matchPragma(pragmas []*pragma, f Finding) *pragma {
	for _, p := range pragmas {
		if p.Check != f.Check || p.Pos.Filename != f.Pos.Filename {
			continue
		}
		if f.Pos.Line == p.Pos.Line || f.Pos.Line == p.Pos.Line+1 {
			return p
		}
	}
	return nil
}
