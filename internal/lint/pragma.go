package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// pragma is one parsed //vplint:allow comment. A pragma suppresses findings
// of its check on the comment's own line (trailing form) or the next line
// (standalone form above a statement). used is set by the runner; unused
// pragmas are reported as stale.
type pragma struct {
	Check  string
	Reason string
	Pos    token.Position
	used   bool
}

// pragmaRe matches the allow grammar at the start of a //vplint comment:
// "vplint:allow <check>(<reason>)". The reason must be non-empty and may
// not contain ')', so trailing text (e.g. a test expectation comment) is
// ignored cleanly.
var pragmaRe = regexp.MustCompile(`^vplint:allow\s+([A-Za-z0-9_-]+)\(([^)]*)\)`)

// collectPragmas parses every //vplint: comment in the package. Comments
// that start the vplint namespace but do not parse, name an unknown check,
// or give an empty reason are findings in their own right — a suppression
// that does not say what it suppresses or why is itself contract drift.
func collectPragmas(pkg *Package) ([]*pragma, []Finding) {
	var (
		pragmas  []*pragma
		findings []Finding
	)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//vplint:")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := pragmaRe.FindStringSubmatch("vplint:" + text)
				if m == nil {
					findings = append(findings, Finding{
						Pos:     pos,
						Check:   "pragma",
						Message: `malformed vplint pragma: want //vplint:allow <check>(<reason>)`,
					})
					continue
				}
				check, reason := m[1], strings.TrimSpace(m[2])
				if !knownCheck(check) {
					findings = append(findings, Finding{
						Pos:     pos,
						Check:   "pragma",
						Message: fmt.Sprintf("vplint pragma names unknown check %q", check),
					})
					continue
				}
				if reason == "" {
					findings = append(findings, Finding{
						Pos:     pos,
						Check:   "pragma",
						Message: fmt.Sprintf("vplint:allow %s pragma must give a reason: //vplint:allow %s(<why this is deterministic>)", check, check),
					})
					continue
				}
				pragmas = append(pragmas, &pragma{Check: check, Reason: reason, Pos: pos})
			}
		}
	}
	return pragmas, findings
}

// enclosingFuncExempt reports whether pos sits inside a String() string or
// Error() string method — cold-path human-facing text the hot-path checks
// leave alone.
func enclosingFuncExempt(file *ast.File, pos token.Pos) bool {
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos > fd.End() {
			continue
		}
		if fd.Name == nil || (fd.Name.Name != "String" && fd.Name.Name != "Error") {
			return false
		}
		ft := fd.Type
		if ft.Params != nil && len(ft.Params.List) != 0 {
			return false
		}
		if ft.Results == nil || len(ft.Results.List) != 1 {
			return false
		}
		r, ok := ft.Results.List[0].Type.(*ast.Ident)
		return ok && r.Name == "string" && len(ft.Results.List[0].Names) <= 1
	}
	return false
}
