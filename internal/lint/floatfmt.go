package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
)

// floatfmtCheck bans %v and %g on floating-point arguments in the packages
// that encode rows and traces. Both verbs pick a shortest representation
// whose shape (fixed vs scientific, digit count) depends on the value, so
// a one-ulp drift flips an entire column's format and every downstream
// byte comparison with it; %v additionally means "whatever fmt decides",
// which is not a contract at all. Encoders must say what they mean:
// strconv.FormatFloat/AppendFloat with an explicit format byte and
// precision (the telemetry tracer and fleet CSV sink are the reference).
// fmt.Errorf is exempt — error text is diagnostics, not output bytes.
type floatfmtCheck struct{}

func (floatfmtCheck) Name() string { return "floatfmt" }

func (floatfmtCheck) Doc() string {
	return "row/trace encoder packages must not format floats with %v/%g; use strconv.Format*/Append* with explicit format and precision"
}

func (floatfmtCheck) Applies(pkg *Package, cfg *Config) bool {
	return matchPkg(pkg.Path, cfg.EncoderPackages)
}

// floatFmtFuncs maps the fmt formatting functions to the index of their
// format-string argument. Errorf is deliberately absent.
var floatFmtFuncs = map[string]int{
	"Sprintf": 0,
	"Printf":  0,
	"Fprintf": 1,
	"Appendf": 1,
}

func (floatfmtCheck) Run(pkg *Package, cfg *Config) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := fmtCall(pkg, file, call, fmtFuncNames())
			if !ok {
				return true
			}
			fmtIdx := floatFmtFuncs[name]
			if len(call.Args) <= fmtIdx {
				return true
			}
			format, ok := constStringValue(pkg, call.Args[fmtIdx])
			if !ok {
				return true // dynamic format string: nothing to scan
			}
			args := call.Args[fmtIdx+1:]
			for _, v := range formatVerbs(format) {
				if v.verb != 'v' && v.verb != 'g' && v.verb != 'G' {
					continue
				}
				if v.argIdx < 0 || v.argIdx >= len(args) {
					continue
				}
				argExpr := args[v.argIdx]
				tv, ok := pkg.Info.Types[argExpr]
				if !ok || !isFloat(tv.Type) {
					continue
				}
				out = append(out, Finding{
					Pos:   pkg.Fset.Position(argExpr.Pos()),
					Check: "floatfmt",
					Message: fmt.Sprintf("%%%c formats float %s with value-dependent shape: encoders must use strconv.FormatFloat/AppendFloat with explicit format and precision",
						v.verb, types.ExprString(argExpr)),
				})
			}
			return true
		})
	}
	return out
}

func fmtFuncNames() map[string]bool {
	out := make(map[string]bool, len(floatFmtFuncs))
	for n := range floatFmtFuncs {
		out[n] = true
	}
	return out
}

// constStringValue resolves arg to a compile-time string (literal or named
// constant) via the type checker.
func constStringValue(pkg *Package, arg ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verbArg is one conversion verb in a format string and the index of the
// operand it consumes (0-based into the variadic args).
type verbArg struct {
	verb   byte
	argIdx int
}

// formatVerbs scans a fmt format string and maps each verb to its operand,
// handling %%, flags, * width/precision (each consumes an operand), and
// explicit [n] argument indexes.
func formatVerbs(format string) []verbArg {
	var out []verbArg
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// Flags.
		for i < len(format) && (format[i] == '+' || format[i] == '-' || format[i] == '#' ||
			format[i] == ' ' || format[i] == '0' || format[i] == '\'') {
			i++
		}
		// Explicit argument index: %[n]v.
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		// Width.
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i < len(format) {
			out = append(out, verbArg{verb: format[i], argIdx: arg})
			arg++
		}
	}
	return out
}
