package lint

import "strings"

// Config carries every check's package sets and allowlists. Checks consult
// it instead of hard-coding paths, so retargeting the analyzer (or pointing
// it at a test fixture tree) is a data change, and adding a check is the
// check file plus a field or two here.
//
// Package matching is by import-path suffix on "/" boundaries:
// "internal/netem" matches "telepresence/internal/netem" but not
// ".../notnetem". File allowlists match the same way on slash-separated
// file paths ("internal/telemetry/summary.go").
type Config struct {
	// DeterministicPackages are the simulation packages whose output feeds
	// golden rows and traces: everything in them must derive from seeds and
	// virtual time. walltime and maporder enforce there. The fleet
	// scheduler/watchdog and the CLIs are deliberately absent: retry
	// backoff, watchdog timers, and manifest wall-clock stamps are real
	// time by design and never feed row bytes.
	DeterministicPackages []string

	// MapOrderExtraPackages extends maporder beyond the deterministic core
	// to packages whose map iteration feeds manifests or CSV/JSONL output
	// (the fleet sinks) even though wall-clock use is legitimate there.
	MapOrderExtraPackages []string

	// GlobalrandAllowPackages may call math/rand package-level functions:
	// only the seeded-RNG wrapper itself. Everywhere else randomness flows
	// through simrand.Child / explicitly seeded generators.
	GlobalrandAllowPackages []string

	// HotPathPackages hand-roll their encodings; encoding/json and the
	// fmt.Sprint* family are banned there (hotjson) except in allowlisted
	// files, panic messages, and String()/Error() methods.
	HotPathPackages []string

	// HotJSONAllowFiles are files inside HotPathPackages excused from
	// hotjson: trace *readers* and report renderers that legitimately
	// decode JSON or build human-facing text off the hot path.
	HotJSONAllowFiles []string

	// EncoderPackages produce row/trace bytes; floatfmt bans %v and %g on
	// floating-point arguments there in favor of strconv.Format* with an
	// explicit format (fmt.Errorf is exempt — error text is not output).
	EncoderPackages []string
}

// DefaultConfig is the repository's determinism contract.
func DefaultConfig() *Config {
	deterministic := []string{
		"internal/simtime",
		"internal/netem",
		"internal/vca",
		"internal/ratecontrol",
		"internal/recovery",
		"internal/rtp",
		"internal/scenario",
		"internal/telemetry",
		"internal/core",
		"internal/simrand",
		"internal/quic",
	}
	return &Config{
		DeterministicPackages: deterministic,
		// Fleet manifests and sinks serialize maps (axes, failures) into
		// JSONL/CSV artifacts that the resume/determinism contract compares
		// byte-for-byte. fleetobs renders API and Prometheus responses whose
		// ordering must not depend on map iteration either (its Registry keeps
		// an explicit order slice for exactly this reason) — but it is
		// deliberately NOT a deterministic package: EWMA rates and uptime are
		// wall-clock by design (time.Now is its whole point), and its JSON API
		// responses are off the hot path, so walltime and hotjson don't apply.
		// vprof is the virtual-time profiler: wall-clock CPU attribution is
		// its entire point (time.Now around every probed event), so like
		// fleetobs it is deliberately NOT a deterministic package — but its
		// JSONL reports and pprof string tables are byte-compared artifacts,
		// so map order must never leak into them (maporder), and its report
		// floats must use strconv with explicit formats (floatfmt, below).
		// Its deterministic counters feeding goldens are protected one layer
		// down instead: simtime, which vprof observes, never reads the wall
		// clock and stays in the walltime set above.
		MapOrderExtraPackages:   []string{"internal/fleet", "internal/fleetobs", "internal/vprof"},
		GlobalrandAllowPackages: []string{"internal/simrand"},
		HotPathPackages: []string{
			"internal/telemetry",
			"internal/netem",
			"internal/rtp",
		},
		HotJSONAllowFiles: []string{
			// Trace reader/validator and report renderer: decode-side code
			// that runs on finished trace files, not per-packet.
			"internal/telemetry/summary.go",
			"internal/telemetry/schema.go",
		},
		EncoderPackages: []string{
			"internal/telemetry",
			"internal/fleet",
			"internal/stats",
			"internal/core",
			// Prometheus exposition and the progress line format floats; both
			// must use strconv with explicit formats, never %v/%g.
			"internal/fleetobs",
			// vprof's JSONL reports are byte-stable goldens: every float in
			// them goes through strconv.AppendFloat with an explicit format.
			"internal/vprof",
		},
	}
}

// matchPkg reports whether pkgPath ends in one of the suffixes on a "/"
// boundary (or equals one exactly).
func matchPkg(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// matchFile reports whether the slash-separated file path ends in one of
// the allowlisted file suffixes on a "/" boundary.
func matchFile(file string, suffixes []string) bool {
	file = strings.ReplaceAll(file, "\\", "/")
	for _, s := range suffixes {
		if file == s || strings.HasSuffix(file, "/"+s) {
			return true
		}
	}
	return false
}

// inDeterministic is the Applies helper shared by walltime and maporder.
func (cfg *Config) inDeterministic(pkgPath string) bool {
	return matchPkg(pkgPath, cfg.DeterministicPackages)
}
