package fleet

import (
	"errors"
	"fmt"
	"math"
	"time"

	"telepresence/internal/core"
	"telepresence/internal/scenario"
)

// Axis is one swept parameter: a name recognized by the sweep target and
// the grid values it takes.
type Axis struct {
	Name   string
	Values []float64
}

// SweepSpec is a cartesian parameter grid over one registered sweep target
// (core.SweepTarget): the grid is the cross product of the axes, enumerated
// row-major with the FIRST axis slowest. Parameters not covered by an axis
// hold the target's defaults.
type SweepSpec struct {
	// Target names the registered sweep target ("handover").
	Target string
	// Axes are the swept parameters; at least one is required.
	Axes []Axis
}

// Validate checks the spec against the registry: the target must exist,
// every axis must name one of its parameters exactly once, and every grid
// value must be a finite number.
func (s SweepSpec) Validate() error {
	t, ok := core.LookupSweep(s.Target)
	if !ok {
		return fmt.Errorf("fleet: unknown sweep target %q (try: list)", s.Target)
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("fleet: sweep %s: no axes", s.Target)
	}
	known := t.DefaultParams()
	seen := map[string]bool{}
	for _, a := range s.Axes {
		if _, ok := known[a.Name]; !ok {
			return fmt.Errorf("fleet: sweep %s: unknown parameter %q (have %v)",
				s.Target, a.Name, paramNames(t))
		}
		if seen[a.Name] {
			return fmt.Errorf("fleet: sweep %s: duplicate axis %q", s.Target, a.Name)
		}
		seen[a.Name] = true
		if len(a.Values) == 0 {
			return fmt.Errorf("fleet: sweep %s: axis %q has no values", s.Target, a.Name)
		}
		for _, v := range a.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("fleet: sweep %s: axis %q value %v is not finite", s.Target, a.Name, v)
			}
		}
	}
	return nil
}

func paramNames(t core.SweepTarget) []string {
	names := make([]string, len(t.Params))
	for i, p := range t.Params {
		names[i] = p.Name
	}
	return names
}

// SweepCell is one grid point: its enumeration index, its full parameter
// map (axis values over target defaults), and the canonical label the
// per-cell seed derives from. The label depends only on the parameter
// values, so reshaping or reordering a grid never changes a cell's rows.
type SweepCell struct {
	Index  int
	Params map[string]float64
	Label  string
}

// Cells enumerates the grid. The spec must have passed Validate.
func (s SweepSpec) Cells() []SweepCell {
	t, _ := core.LookupSweep(s.Target)
	n := 1
	for _, a := range s.Axes {
		n *= len(a.Values)
	}
	cells := make([]SweepCell, 0, n)
	idx := make([]int, len(s.Axes))
	for i := 0; i < n; i++ {
		params := t.DefaultParams()
		for ai, a := range s.Axes {
			params[a.Name] = a.Values[idx[ai]]
		}
		cells = append(cells, SweepCell{
			Index:  i,
			Params: params,
			Label:  scenario.ParamLabel(params),
		})
		// Row-major increment: last axis fastest.
		for ai := len(idx) - 1; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(s.Axes[ai].Values) {
				break
			}
			idx[ai] = 0
		}
	}
	return cells
}

// SweepCellResult is one cell's merged outcome.
type SweepCellResult struct {
	Cell SweepCell
	// Rows holds the cell's rows. Streaming runs (RunSweepStream) leave it
	// nil — rows went to the sink — and report RowCount instead.
	Rows []core.Row
	// RowCount is the number of rows the cell emitted (set by both
	// buffered and streaming runs).
	RowCount int
	Wall     time.Duration
	// Attempts is how many tries the cell took (>1 when retries fired).
	Attempts int
	// Resumed reports the cell was served from the checkpoint journal.
	Resumed bool
	Err     error
	// Stack is the captured goroutine stack when the failure was a panic.
	Stack string
}

// sweepUnits flattens a validated spec's grid into scheduler units in grid
// order. Unit keys carry the target name and the cell's canonical
// parameter label — grid-shape-independent, like the cell seed itself.
func sweepUnits(spec SweepSpec, opts core.Options) ([]unit, []SweepCell) {
	target, _ := core.LookupSweep(spec.Target)
	cells := spec.Cells()
	units := make([]unit, len(cells))
	for i, cell := range cells {
		cell := cell
		units[i] = unit{
			key:    "sweep/" + spec.Target + "/" + cell.Label,
			labels: []string{"experiment", spec.Target, "cell", cell.Label},
			run:    func() ([]core.Row, error) { return target.Run(opts, cell.Params) },
		}
	}
	return units, cells
}

// RunSweep executes every cell of the grid, sharding cells across a worker
// pool of cfg.Workers goroutines. Per the CellRunner contract a cell's
// rows are a pure function of (opts, parameter values) — cell seeds derive
// from the run seed and the canonical parameter label, never from grid
// position — so results come back in grid order with byte-identical rows
// at any worker count, exactly like Run. A cell failure (error, panic, or
// watchdog timeout, after cfg.Retry's attempts) is recorded in its result
// but does not stop the others; the returned error joins all cell errors.
//
// RunSweep buffers every row; use RunSweepStream to stream rows per
// completed cell and to resume from a checkpoint journal.
func RunSweep(spec SweepSpec, opts core.Options, cfg Config) ([]SweepCellResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	if cfg.Resume {
		return nil, errors.New("fleet: RunSweep cannot resume from a journal (journaled rows are pre-encoded; use RunSweepStream)")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	units, cells := sweepUnits(spec, opts)

	results := make([]SweepCellResult, len(cells))
	if _, err := runOrdered(units, opts.Fingerprint(), cfg, func(i int, o unitOutcome) error {
		res := SweepCellResult{
			Cell: cells[i], Rows: o.rows, RowCount: o.rowCount(),
			Wall: o.wall, Attempts: o.attempts, Err: o.err, Stack: o.stack,
		}
		if o.err != nil {
			res.Err = fmt.Errorf("fleet: sweep %s cell %d (%s): %w", spec.Target, cells[i].Index, cells[i].Label, o.err)
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}

	var failures []error
	for _, r := range results {
		if r.Err != nil {
			failures = append(failures, r.Err)
		}
	}
	return results, errors.Join(failures...)
}

// RunSweepStream executes the grid like RunSweep but streams each cell's
// rows to sink as soon as the cell and all earlier cells have resolved, so
// memory stays bounded by the reorder window (Config.Window) instead of
// the grid size. Results carry per-cell metadata only: Rows is nil,
// RowCount/Attempts/Resumed are set. The sink is closed before returning.
//
// A failed cell leaves a gap in the stream exactly where its rows would
// be; an interrupted run (cfg.Interrupt) drains in-flight cells, journals
// them, and marks the rest with ErrInterrupted. With cfg.Checkpoint and
// cfg.Resume, journaled cells replay through the sink without running —
// the sink must implement EntrySink (NewJSONLSink and NewCSVSink do) —
// reassembling output byte-identical to an uninterrupted run.
func RunSweepStream(spec SweepSpec, opts core.Options, cfg Config, sink Sink) ([]SweepCellResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	units, cells := sweepUnits(spec, opts)

	results := make([]SweepCellResult, len(cells))
	for i := range results {
		// Pre-mark; emission overwrites. An emit abort leaves the
		// untouched tail marked resumable, which is what it is.
		results[i] = SweepCellResult{Cell: cells[i], Err: ErrInterrupted}
	}

	_, emitErr := runOrdered(units, opts.Fingerprint(), cfg, func(i int, o unitOutcome) error {
		res := SweepCellResult{
			Cell: cells[i], RowCount: o.rowCount(), Wall: o.wall,
			Attempts: o.attempts, Resumed: o.resumed, Err: o.err, Stack: o.stack,
		}
		if o.err != nil && !errors.Is(o.err, ErrInterrupted) {
			res.Err = fmt.Errorf("fleet: sweep %s cell %d (%s): %w", spec.Target, cells[i].Index, cells[i].Label, o.err)
		}
		results[i] = res
		if o.err != nil {
			return nil
		}
		if o.entry != nil {
			es, ok := sink.(EntrySink)
			if !ok {
				return fmt.Errorf("fleet: sink %T cannot replay journal entries (no EntrySink)", sink)
			}
			return es.WriteEntry(o.entry)
		}
		if err := cfg.Chaos.sinkFault(units[i].key); err != nil {
			return err
		}
		for _, row := range o.rows {
			if err := sink.Write(row); err != nil {
				return err
			}
		}
		return nil
	})
	closeErr := sink.Close()

	var joined []error
	for _, r := range results {
		if r.Err != nil {
			joined = append(joined, r.Err)
		}
	}
	if emitErr != nil {
		joined = append(joined, emitErr)
	}
	if closeErr != nil {
		joined = append(joined, closeErr)
	}
	return results, errors.Join(joined...)
}

// WriteSweep streams every successful cell's rows through one sink, in
// grid order. Failed cells are skipped (their error is already in the
// results).
func WriteSweep(results []SweepCellResult, sink Sink) error {
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		for _, row := range res.Rows {
			if err := sink.Write(row); err != nil {
				sink.Close()
				return err
			}
		}
	}
	return sink.Close()
}

// SweepAxisManifest records one swept axis in a sweep manifest.
type SweepAxisManifest struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// SweepCellManifest records one cell's timing inside a sweep manifest.
type SweepCellManifest struct {
	Index      int     `json:"index"`
	Label      string  `json:"label"`
	Rows       int     `json:"rows"`
	WallMs     float64 `json:"wall_ms"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// Attempts is how many tries the cell took; omitted (0) for cells
	// served from the journal without a recorded attempt count.
	Attempts int `json:"attempts,omitempty"`
	// Resumed marks cells replayed from the checkpoint journal.
	Resumed bool `json:"resumed,omitempty"`
	// Skipped marks cells an interrupted run never completed; a resumed
	// run fills them in.
	Skipped bool `json:"skipped,omitempty"`
}

// SweepManifest is the provenance record of a sweep run.
type SweepManifest struct {
	Format             string              `json:"format"`
	Target             string              `json:"target"`
	Seed               int64               `json:"seed"`
	SessionDurationSec float64             `json:"session_duration_sec"`
	Workers            int                 `json:"workers"`
	WallMs             float64             `json:"wall_ms"`
	Axes               []SweepAxisManifest `json:"axes"`
	Cells              int                 `json:"cells"`
	Rows               int                 `json:"rows"`
	// RowsPerSec is total rows over the run's elapsed wall time;
	// CellTimings breaks the work down per grid point (cumulative cell
	// wall time — parallel cells overlap).
	RowsPerSec  float64             `json:"rows_per_sec"`
	CellTimings []SweepCellManifest `json:"cell_timings"`
	File        string              `json:"file,omitempty"`
	// Failures details every failed cell: error, captured panic stack,
	// attempt count. Interrupted (skipped) cells are not failures.
	Failures []UnitFailure `json:"failures,omitempty"`
	// Interrupted marks a run that drained early (signal or abort); its
	// journal, if any, makes it resumable.
	Interrupted bool `json:"interrupted,omitempty"`
	// Resumed counts cells served from the checkpoint journal.
	Resumed int `json:"resumed,omitempty"`
	// Checkpoint is the journal directory the run wrote, when one was set.
	Checkpoint string   `json:"checkpoint,omitempty"`
	Errors     []string `json:"errors,omitempty"`
	// HotSites ranks the sweep's busiest scheduling sites when it profiled
	// (Options.ProfDir): merged deterministic event counts, plus wall CPU.
	// Set by the caller from MergeProfiles after the sweep completes.
	HotSites []HotSite `json:"hot_sites,omitempty"`
}

// SweepManifestFormat identifies the sweep manifest schema version. /2
// added the run-level rows_per_sec and the per-cell timing breakdown; /3
// added the failures section and the interrupted/resumed/checkpoint
// resume fields.
const SweepManifestFormat = "telepresence-sweep/3"

// NewSweepManifest builds the provenance record for a completed sweep.
func NewSweepManifest(spec SweepSpec, opts core.Options, workers int, wall time.Duration, results []SweepCellResult) SweepManifest {
	n, normErr := opts.Normalize()
	if normErr == nil {
		opts = n
	}
	m := SweepManifest{
		Format:             SweepManifestFormat,
		Target:             spec.Target,
		Seed:               opts.Seed,
		SessionDurationSec: opts.SessionDuration.Seconds(),
		Workers:            workers,
		WallMs:             float64(wall) / float64(time.Millisecond),
		Cells:              len(results),
	}
	if normErr != nil {
		// Invalid options used to be silently masked here; record them so
		// the manifest never misdescribes the run it documents.
		m.Errors = append(m.Errors, fmt.Sprintf("options: %v", normErr))
	}
	for _, a := range spec.Axes {
		m.Axes = append(m.Axes, SweepAxisManifest{Name: a.Name, Values: a.Values})
	}
	for _, r := range results {
		rows := r.RowCount
		if rows == 0 {
			rows = len(r.Rows)
		}
		cm := SweepCellManifest{
			Index:      r.Cell.Index,
			Label:      r.Cell.Label,
			Rows:       rows,
			WallMs:     float64(r.Wall) / float64(time.Millisecond),
			RowsPerSec: rowsPerSec(rows, r.Wall),
			Attempts:   r.Attempts,
			Resumed:    r.Resumed,
		}
		if r.Resumed {
			m.Resumed++
		}
		if r.Err != nil {
			if errors.Is(r.Err, ErrInterrupted) {
				m.Interrupted = true
				cm.Skipped = true
			} else {
				m.Failures = append(m.Failures, UnitFailure{
					Unit:     "sweep/" + spec.Target + "/" + r.Cell.Label,
					Error:    r.Err.Error(),
					Stack:    r.Stack,
					Attempts: r.Attempts,
				})
			}
			m.Errors = append(m.Errors, r.Err.Error())
		}
		m.Rows += rows
		m.CellTimings = append(m.CellTimings, cm)
	}
	m.RowsPerSec = rowsPerSec(m.Rows, wall)
	return m
}
