package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"telepresence/internal/core"
	"telepresence/internal/scenario"
)

// Axis is one swept parameter: a name recognized by the sweep target and
// the grid values it takes.
type Axis struct {
	Name   string
	Values []float64
}

// SweepSpec is a cartesian parameter grid over one registered sweep target
// (core.SweepTarget): the grid is the cross product of the axes, enumerated
// row-major with the FIRST axis slowest. Parameters not covered by an axis
// hold the target's defaults.
type SweepSpec struct {
	// Target names the registered sweep target ("handover").
	Target string
	// Axes are the swept parameters; at least one is required.
	Axes []Axis
}

// Validate checks the spec against the registry: the target must exist,
// every axis must name one of its parameters exactly once, and every grid
// value must be a finite number.
func (s SweepSpec) Validate() error {
	t, ok := core.LookupSweep(s.Target)
	if !ok {
		return fmt.Errorf("fleet: unknown sweep target %q (try: list)", s.Target)
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("fleet: sweep %s: no axes", s.Target)
	}
	known := t.DefaultParams()
	seen := map[string]bool{}
	for _, a := range s.Axes {
		if _, ok := known[a.Name]; !ok {
			return fmt.Errorf("fleet: sweep %s: unknown parameter %q (have %v)",
				s.Target, a.Name, paramNames(t))
		}
		if seen[a.Name] {
			return fmt.Errorf("fleet: sweep %s: duplicate axis %q", s.Target, a.Name)
		}
		seen[a.Name] = true
		if len(a.Values) == 0 {
			return fmt.Errorf("fleet: sweep %s: axis %q has no values", s.Target, a.Name)
		}
		for _, v := range a.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("fleet: sweep %s: axis %q value %v is not finite", s.Target, a.Name, v)
			}
		}
	}
	return nil
}

func paramNames(t core.SweepTarget) []string {
	names := make([]string, len(t.Params))
	for i, p := range t.Params {
		names[i] = p.Name
	}
	return names
}

// SweepCell is one grid point: its enumeration index, its full parameter
// map (axis values over target defaults), and the canonical label the
// per-cell seed derives from. The label depends only on the parameter
// values, so reshaping or reordering a grid never changes a cell's rows.
type SweepCell struct {
	Index  int
	Params map[string]float64
	Label  string
}

// Cells enumerates the grid. The spec must have passed Validate.
func (s SweepSpec) Cells() []SweepCell {
	t, _ := core.LookupSweep(s.Target)
	n := 1
	for _, a := range s.Axes {
		n *= len(a.Values)
	}
	cells := make([]SweepCell, 0, n)
	idx := make([]int, len(s.Axes))
	for i := 0; i < n; i++ {
		params := t.DefaultParams()
		for ai, a := range s.Axes {
			params[a.Name] = a.Values[idx[ai]]
		}
		cells = append(cells, SweepCell{
			Index:  i,
			Params: params,
			Label:  scenario.ParamLabel(params),
		})
		// Row-major increment: last axis fastest.
		for ai := len(idx) - 1; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(s.Axes[ai].Values) {
				break
			}
			idx[ai] = 0
		}
	}
	return cells
}

// SweepCellResult is one cell's merged outcome.
type SweepCellResult struct {
	Cell SweepCell
	Rows []core.Row
	Wall time.Duration
	Err  error
}

// RunSweep executes every cell of the grid, sharding cells across a worker
// pool of cfg.Workers goroutines. Per the CellRunner contract a cell's
// rows are a pure function of (opts, parameter values) — cell seeds derive
// from the run seed and the canonical parameter label, never from grid
// position — so results come back in grid order with byte-identical rows
// at any worker count, exactly like Run. A cell failure is recorded in its
// result but does not stop the others; the returned error joins all cell
// errors.
func RunSweep(spec SweepSpec, opts core.Options, cfg Config) ([]SweepCellResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	target, _ := core.LookupSweep(spec.Target)
	cells := spec.Cells()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]SweepCellResult, len(cells))
	ch := make(chan int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				cell := cells[i]
				start := time.Now()
				var rows []core.Row
				var err error
				// Label the cell for CPU profiling: samples attribute to
				// (target, cell) instead of an anonymous worker pool.
				pprof.Do(context.Background(), pprof.Labels("experiment", spec.Target, "cell", cell.Label), func(context.Context) {
					rows, err = target.Run(opts, cell.Params)
				})
				elapsed := time.Since(start)
				if err != nil {
					err = fmt.Errorf("fleet: sweep %s cell %d (%s): %w", spec.Target, cell.Index, cell.Label, err)
				}
				mu.Lock()
				results[i] = SweepCellResult{Cell: cell, Rows: rows, Wall: elapsed, Err: err}
				mu.Unlock()
			}
		}()
	}
	for i := range cells {
		ch <- i
	}
	close(ch)
	wg.Wait()

	var failures []error
	for _, r := range results {
		if r.Err != nil {
			failures = append(failures, r.Err)
		}
	}
	return results, errors.Join(failures...)
}

// WriteSweep streams every successful cell's rows through one sink, in
// grid order. Failed cells are skipped (their error is already in the
// results).
func WriteSweep(results []SweepCellResult, sink Sink) error {
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		for _, row := range res.Rows {
			if err := sink.Write(row); err != nil {
				sink.Close()
				return err
			}
		}
	}
	return sink.Close()
}

// SweepAxisManifest records one swept axis in a sweep manifest.
type SweepAxisManifest struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// SweepCellManifest records one cell's timing inside a sweep manifest.
type SweepCellManifest struct {
	Index      int     `json:"index"`
	Label      string  `json:"label"`
	Rows       int     `json:"rows"`
	WallMs     float64 `json:"wall_ms"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// SweepManifest is the provenance record of a sweep run.
type SweepManifest struct {
	Format             string              `json:"format"`
	Target             string              `json:"target"`
	Seed               int64               `json:"seed"`
	SessionDurationSec float64             `json:"session_duration_sec"`
	Workers            int                 `json:"workers"`
	WallMs             float64             `json:"wall_ms"`
	Axes               []SweepAxisManifest `json:"axes"`
	Cells              int                 `json:"cells"`
	Rows               int                 `json:"rows"`
	// RowsPerSec is total rows over the run's elapsed wall time;
	// CellTimings breaks the work down per grid point (cumulative cell
	// wall time — parallel cells overlap).
	RowsPerSec  float64             `json:"rows_per_sec"`
	CellTimings []SweepCellManifest `json:"cell_timings"`
	File        string              `json:"file,omitempty"`
	Errors      []string            `json:"errors,omitempty"`
}

// SweepManifestFormat identifies the sweep manifest schema version. /2
// added the run-level rows_per_sec and the per-cell timing breakdown.
const SweepManifestFormat = "telepresence-sweep/2"

// NewSweepManifest builds the provenance record for a completed sweep.
func NewSweepManifest(spec SweepSpec, opts core.Options, workers int, wall time.Duration, results []SweepCellResult) SweepManifest {
	if n, err := opts.Normalize(); err == nil {
		opts = n
	}
	m := SweepManifest{
		Format:             SweepManifestFormat,
		Target:             spec.Target,
		Seed:               opts.Seed,
		SessionDurationSec: opts.SessionDuration.Seconds(),
		Workers:            workers,
		WallMs:             float64(wall) / float64(time.Millisecond),
		Cells:              len(results),
	}
	for _, a := range spec.Axes {
		m.Axes = append(m.Axes, SweepAxisManifest{Name: a.Name, Values: a.Values})
	}
	for _, r := range results {
		m.Rows += len(r.Rows)
		m.CellTimings = append(m.CellTimings, SweepCellManifest{
			Index:      r.Cell.Index,
			Label:      r.Cell.Label,
			Rows:       len(r.Rows),
			WallMs:     float64(r.Wall) / float64(time.Millisecond),
			RowsPerSec: rowsPerSec(len(r.Rows), r.Wall),
		})
		if r.Err != nil {
			m.Errors = append(m.Errors, r.Err.Error())
		}
	}
	m.RowsPerSec = rowsPerSec(m.Rows, wall)
	return m
}
