// Package fleet is the parallel experiment-fleet scheduler: it runs
// registered experiments (internal/core's registry) by sharding each
// experiment's repetitions across one bounded worker pool, then merges the
// per-rep rows back in repetition order.
//
// Determinism is the core guarantee: repetitions derive their randomness
// from the experiment seed and the rep index alone (the RepRunner
// contract), and merged output preserves (experiment, rep) order, so a
// fleet run with any worker count produces byte-identical results to a
// sequential run. Sinks (JSONL, CSV, in-memory) serialize the merged rows;
// a run manifest records seed, options, worker count, wall time and rows
// emitted.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"telepresence/internal/core"
)

// Config tunes a fleet run.
type Config struct {
	// Workers bounds the worker pool; <=0 selects GOMAXPROCS.
	Workers int
}

// ExperimentResult is one experiment's merged outcome.
type ExperimentResult struct {
	// Experiment is the registry entry that produced the rows.
	Experiment core.Experiment
	// Rows holds every rep's rows concatenated in rep order.
	Rows []core.Row
	// Reps is how many work units the experiment sharded into.
	Reps int
	// Wall is the cumulative wall time spent in this experiment's reps
	// (across workers; parallel runs overlap these intervals).
	Wall time.Duration
	// Err is the first (lowest-rep) failure, if any; Rows is nil then.
	Err error
}

// Run executes the given experiments under opts, sharding every
// experiment's repetitions across one worker pool of cfg.Workers
// goroutines. Results come back in the order experiments were passed, each
// with rows merged in rep order — identical bytes for any worker count.
//
// A rep failure fails its experiment (recorded in ExperimentResult.Err)
// but does not stop the others; Run's error joins all experiment errors.
func Run(exps []core.Experiment, opts core.Options, cfg Config) ([]ExperimentResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type task struct{ exp, rep int }
	var tasks []task
	rows := make([][][]core.Row, len(exps)) // [exp][rep] -> rows
	errs := make([][]error, len(exps))
	walls := make([]time.Duration, len(exps))
	for ei, e := range exps {
		reps := e.Reps(opts)
		if reps <= 0 {
			return nil, fmt.Errorf("fleet: experiment %q reports %d reps", e.Name, reps)
		}
		rows[ei] = make([][]core.Row, reps)
		errs[ei] = make([]error, reps)
		for r := 0; r < reps; r++ {
			tasks = append(tasks, task{ei, r})
		}
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	ch := make(chan task)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				start := time.Now()
				var out []core.Row
				var err error
				// Label the rep for CPU profiling: -cpuprofile samples
				// attribute to experiments instead of one undifferentiated
				// worker-pool blob.
				pprof.Do(context.Background(), pprof.Labels("experiment", exps[t.exp].Name), func(context.Context) {
					out, err = exps[t.exp].Run(opts, t.rep)
				})
				elapsed := time.Since(start)
				mu.Lock()
				rows[t.exp][t.rep] = out
				errs[t.exp][t.rep] = err
				walls[t.exp] += elapsed
				mu.Unlock()
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()

	results := make([]ExperimentResult, len(exps))
	var failures []error
	for ei, e := range exps {
		res := ExperimentResult{Experiment: e, Reps: len(rows[ei]), Wall: walls[ei]}
		for rep, err := range errs[ei] {
			if err != nil {
				res.Err = fmt.Errorf("fleet: %s rep %d: %w", e.Name, rep, err)
				break
			}
		}
		if res.Err == nil {
			for _, rr := range rows[ei] {
				res.Rows = append(res.Rows, rr...)
			}
		} else {
			failures = append(failures, res.Err)
		}
		results[ei] = res
	}
	return results, errors.Join(failures...)
}

// RunAll runs every registered experiment (sorted by name).
func RunAll(opts core.Options, cfg Config) ([]ExperimentResult, error) {
	return Run(core.Experiments(), opts, cfg)
}

// Select resolves experiment names against the registry. The single name
// "all" (or no names) selects everything.
func Select(names ...string) ([]core.Experiment, error) {
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		return core.Experiments(), nil
	}
	var out []core.Experiment
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		e, ok := core.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("fleet: unknown experiment %q (try: list)", n)
		}
		out = append(out, e)
	}
	return out, nil
}
