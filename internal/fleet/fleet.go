// Package fleet is the parallel experiment-fleet scheduler: it runs
// registered experiments (internal/core's registry) by sharding each
// experiment's repetitions across one bounded worker pool, then merges the
// per-rep rows back in repetition order.
//
// Determinism is the core guarantee: repetitions derive their randomness
// from the experiment seed and the rep index alone (the RepRunner
// contract), and merged output preserves (experiment, rep) order, so a
// fleet run with any worker count produces byte-identical results to a
// sequential run. Sinks (JSONL, CSV, in-memory) serialize the merged rows;
// a run manifest records seed, options, worker count, wall time and rows
// emitted.
//
// The fleet is fault tolerant: a panicking runner is isolated (recovered,
// stack captured, its unit marked failed) instead of killing the process;
// failing or hung units retry under a RetryPolicy with a per-attempt
// watchdog and exponential backoff — and because units are pure, retried
// rows are byte-identical to first-try rows; completed units checkpoint to
// a content-addressed Journal so an interrupted or crashed run resumes
// without re-running finished work; and a deterministic chaos harness
// (FaultPlan) injects panics, errors and delays to keep all of the above
// honest. See DESIGN.md "Fault tolerance".
package fleet

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"telepresence/internal/core"
)

// Config tunes a fleet run.
type Config struct {
	// Workers bounds the worker pool; <=0 selects GOMAXPROCS.
	Workers int
	// Retry re-runs failing or hung units; the zero value runs each unit
	// once with no watchdog.
	Retry RetryPolicy
	// Chaos, when non-nil, injects deterministic faults into unit
	// attempts and sink emissions (see FaultPlan).
	Chaos *FaultPlan
	// Checkpoint, when non-nil, journals every completed unit's rows
	// (content-addressed, atomic) as soon as the unit finishes.
	Checkpoint *Journal
	// Resume serves units already present in Checkpoint from the journal
	// instead of re-running them. Only the streaming entry points
	// (RunStream, RunSweepStream) can resume: journaled rows are
	// pre-encoded bytes and cannot be restored as typed rows, which the
	// buffered Run/RunSweep results promise.
	Resume bool
	// Interrupt, when non-nil, triggers a graceful drain once it becomes
	// receivable (closed): no new units start, in-flight units finish and
	// journal, and the run returns an error satisfying
	// errors.Is(err, ErrInterrupted).
	Interrupt <-chan struct{}
	// Window bounds how many units may be in flight or completed but not
	// yet emitted (the reorder buffer); <=0 selects 4x workers. The bound
	// is what keeps streaming memory constant in grid size.
	Window int
	// Monitor, when non-nil, receives unit-lifecycle events (dispatch,
	// attempts, retries, panics, journal hits, ordered emission, window
	// occupancy) from every goroutine of the run; implementations must be
	// concurrency-safe. Monitors observe but never steer: emitted rows are
	// byte-identical with or without one, and a nil Monitor adds zero
	// allocations to the dispatch path. See internal/fleetobs for the live
	// HTTP/terminal views built on this.
	Monitor Monitor

	// onReport receives the engine's internal accounting (tests only).
	onReport func(engineReport)
}

// ExperimentResult is one experiment's merged outcome.
type ExperimentResult struct {
	// Experiment is the registry entry that produced the rows.
	Experiment core.Experiment
	// Rows holds every rep's rows concatenated in rep order. Streaming
	// runs (RunStream) leave it nil — rows went to the sink — and report
	// RowCount instead.
	Rows []core.Row
	// RowCount is the number of rows the experiment emitted (set by both
	// buffered and streaming runs).
	RowCount int
	// Reps is how many work units the experiment sharded into.
	Reps int
	// Wall is the cumulative wall time spent in this experiment's reps
	// (across workers and attempts; parallel runs overlap these
	// intervals).
	Wall time.Duration
	// Attempts is the total attempt count across reps (> Reps when
	// retries fired).
	Attempts int
	// Resumed counts reps served from the checkpoint journal.
	Resumed int
	// Err is the first (lowest-rep) failure, if any; buffered runs leave
	// Rows nil then.
	Err error
	// Failures records every failed rep with its error, captured panic
	// stack, and attempt count (the manifest's failures section).
	Failures []UnitFailure
}

// experimentUnits flattens experiments into scheduler units, exp-major in
// rep order, and returns the owner map from unit index to (exp, rep).
func experimentUnits(exps []core.Experiment, opts core.Options) ([]unit, []struct{ exp, rep int }, error) {
	var units []unit
	var owners []struct{ exp, rep int }
	for ei, e := range exps {
		reps := e.Reps(opts)
		if reps <= 0 {
			return nil, nil, fmt.Errorf("fleet: experiment %q reports %d reps", e.Name, reps)
		}
		for r := 0; r < reps; r++ {
			ei, r, e := ei, r, e
			units = append(units, unit{
				key:    "run/" + e.Name + "/rep" + strconv.Itoa(r),
				labels: []string{"experiment", e.Name},
				run:    func() ([]core.Row, error) { return e.Run(opts, r) },
			})
			owners = append(owners, struct{ exp, rep int }{ei, r})
		}
	}
	return units, owners, nil
}

// Run executes the given experiments under opts, sharding every
// experiment's repetitions across one worker pool of cfg.Workers
// goroutines. Results come back in the order experiments were passed, each
// with rows merged in rep order — identical bytes for any worker count.
//
// A rep failure (error, panic, or watchdog timeout, after retries) fails
// its experiment (recorded in ExperimentResult.Err with the captured stack
// in Failures) but does not stop the others; Run's error joins all
// experiment errors. Run buffers every row; use RunStream to stream rows
// per completed rep and to resume from a checkpoint journal.
func Run(exps []core.Experiment, opts core.Options, cfg Config) ([]ExperimentResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	if cfg.Resume {
		return nil, errors.New("fleet: Run cannot resume from a journal (journaled rows are pre-encoded; use RunStream)")
	}
	units, owners, err := experimentUnits(exps, opts)
	if err != nil {
		return nil, err
	}

	rows := make([][][]core.Row, len(exps)) // [exp][rep] -> rows
	errs := make([][]error, len(exps))
	walls := make([]time.Duration, len(exps))
	attempts := make([]int, len(exps))
	failures := make([][]UnitFailure, len(exps))
	for ei := range exps {
		reps := 0
		for _, o := range owners {
			if o.exp == ei {
				reps++
			}
		}
		rows[ei] = make([][]core.Row, reps)
		errs[ei] = make([]error, reps)
	}

	if _, err := runOrdered(units, opts.Fingerprint(), cfg, func(i int, o unitOutcome) error {
		t := owners[i]
		rows[t.exp][t.rep] = o.rows
		errs[t.exp][t.rep] = o.err
		walls[t.exp] += o.wall
		attempts[t.exp] += o.attempts
		if o.err != nil {
			failures[t.exp] = append(failures[t.exp], UnitFailure{
				Unit: units[i].key, Error: o.err.Error(), Stack: o.stack, Attempts: o.attempts,
			})
		}
		return nil
	}); err != nil {
		return nil, err
	}

	results := make([]ExperimentResult, len(exps))
	var joined []error
	for ei, e := range exps {
		res := ExperimentResult{
			Experiment: e, Reps: len(rows[ei]), Wall: walls[ei],
			Attempts: attempts[ei], Failures: failures[ei],
		}
		for rep, err := range errs[ei] {
			if err != nil {
				res.Err = fmt.Errorf("fleet: %s rep %d: %w", e.Name, rep, err)
				break
			}
		}
		if res.Err == nil {
			for _, rr := range rows[ei] {
				res.Rows = append(res.Rows, rr...)
			}
			res.RowCount = len(res.Rows)
		} else {
			joined = append(joined, res.Err)
		}
		results[ei] = res
	}
	return results, errors.Join(joined...)
}

// RunStream executes experiments like Run but streams each repetition's
// rows to per-experiment sinks (from factory) as soon as the repetition
// and all earlier ones have completed, so memory stays bounded by the
// reorder window instead of the whole run. Results carry per-rep metadata
// only: Rows is nil, RowCount/Attempts/Resumed/Failures are set.
//
// Unlike WriteResults (which skips a failed experiment entirely), a
// failing repetition does not suppress its siblings: completed reps
// stream immediately and failures land in Failures and the joined error —
// the resulting file has a gap exactly where the failed rep's rows would
// be, which a later resumed run fills in.
//
// With cfg.Checkpoint set, completed reps journal before they stream; with
// cfg.Resume, journaled reps replay through the sink without running — the
// sink must implement EntrySink (NewJSONLSink and NewCSVSink do).
func RunStream(exps []core.Experiment, opts core.Options, cfg Config, factory SinkFactory) ([]ExperimentResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	units, owners, err := experimentUnits(exps, opts)
	if err != nil {
		return nil, err
	}

	results := make([]ExperimentResult, len(exps))
	for ei, e := range exps {
		reps := 0
		for _, o := range owners {
			if o.exp == ei {
				reps++
			}
		}
		// Pre-mark every experiment interrupted; emission overwrites. A
		// run aborted by an emit error leaves the untouched tail marked
		// resumable, which is exactly what it is.
		results[ei] = ExperimentResult{Experiment: e, Reps: reps, Err: ErrInterrupted}
	}
	seenErr := make([]error, len(exps))

	var sink Sink
	openExp := -1
	closeOpen := func() error {
		if sink == nil {
			return nil
		}
		s := sink
		sink = nil
		openExp = -1
		return s.Close()
	}

	_, emitErr := runOrdered(units, opts.Fingerprint(), cfg, func(i int, o unitOutcome) error {
		t := owners[i]
		res := &results[t.exp]
		if res.Err != nil && errors.Is(res.Err, ErrInterrupted) && seenErr[t.exp] == nil {
			res.Err = nil // first emission for this experiment: clear the pre-mark
		}
		res.Wall += o.wall
		res.Attempts += o.attempts
		if o.resumed {
			res.Resumed++
		}
		if o.err != nil {
			if seenErr[t.exp] == nil {
				seenErr[t.exp] = fmt.Errorf("fleet: %s rep %d: %w", res.Experiment.Name, t.rep, o.err)
				res.Err = seenErr[t.exp]
			}
			// Interrupted units are skips, not failures: resumable work,
			// not defects worth a manifest failures entry.
			if !errors.Is(o.err, ErrInterrupted) {
				res.Failures = append(res.Failures, UnitFailure{
					Unit: units[i].key, Error: o.err.Error(), Stack: o.stack, Attempts: o.attempts,
				})
			}
			return nil
		}
		// Open this experiment's sink on its first emitted rep; close the
		// previous experiment's (emission order is exp-major).
		if openExp != t.exp {
			if err := closeOpen(); err != nil {
				return err
			}
			s, err := factory(res.Experiment)
			if err != nil {
				return err
			}
			sink, openExp = s, t.exp
		}
		if o.entry != nil {
			es, ok := sink.(EntrySink)
			if !ok {
				return fmt.Errorf("fleet: sink %T cannot replay journal entries (no EntrySink)", sink)
			}
			if err := es.WriteEntry(o.entry); err != nil {
				return err
			}
		} else {
			if err := cfg.Chaos.sinkFault(units[i].key); err != nil {
				return err
			}
			for _, row := range o.rows {
				if err := sink.Write(row); err != nil {
					return err
				}
			}
		}
		res.RowCount += o.rowCount()
		return nil
	})
	closeErr := closeOpen()

	var joined []error
	for ei := range results {
		if results[ei].Err != nil {
			joined = append(joined, fmt.Errorf("fleet: %s: %w", results[ei].Experiment.Name, results[ei].Err))
		}
	}
	if emitErr != nil {
		joined = append(joined, emitErr)
	}
	if closeErr != nil {
		joined = append(joined, closeErr)
	}
	return results, errors.Join(joined...)
}

// RunAll runs every registered experiment (sorted by name).
func RunAll(opts core.Options, cfg Config) ([]ExperimentResult, error) {
	return Run(core.Experiments(), opts, cfg)
}

// Select resolves experiment names against the registry. The single name
// "all" (or no names) selects everything.
func Select(names ...string) ([]core.Experiment, error) {
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		return core.Experiments(), nil
	}
	var out []core.Experiment
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		e, ok := core.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("fleet: unknown experiment %q (try: list)", n)
		}
		out = append(out, e)
	}
	return out, nil
}
