package fleet

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"telepresence/internal/core"
)

func TestJournalRoundTrip(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rows := []core.Row{
		map[string]float64{"a": 1, "seed": 42},
		map[string]float64{"a": 2, "seed": 43},
	}
	e, err := encodeEntry("sweep/x/a=1", "seed=1,dur=6000,reps=2", 3, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Write(e); err != nil {
		t.Fatal(err)
	}
	got, ok := j.Lookup("sweep/x/a=1", "seed=1,dur=6000,reps=2")
	if !ok {
		t.Fatal("written entry not found")
	}
	if !reflect.DeepEqual(e, got) {
		t.Errorf("round trip mutated entry:\nwrote %+v\nread  %+v", e, got)
	}
	if got.Attempts != 3 || got.Rows != 2 || len(got.JSONL) != 2 || len(got.CSV) != 2 {
		t.Errorf("entry fields wrong: %+v", got)
	}
	if j.Len() != 1 {
		t.Errorf("Len = %d, want 1", j.Len())
	}
}

// TestJournalScopeMismatch: an entry is only visible under the exact
// (unit, scope) it was written for — resuming with different options
// re-runs everything instead of serving stale rows.
func TestJournalScopeMismatch(t *testing.T) {
	j, _ := OpenJournal(t.TempDir())
	e, _ := encodeEntry("sweep/x/a=1", "seed=1,dur=6000,reps=2", 1, []core.Row{map[string]float64{"a": 1}})
	if err := j.Write(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Lookup("sweep/x/a=1", "seed=2,dur=6000,reps=2"); ok {
		t.Error("entry visible under a different scope")
	}
	if _, ok := j.Lookup("sweep/x/a=2", "seed=1,dur=6000,reps=2"); ok {
		t.Error("entry visible under a different unit")
	}
	if _, ok := j.Lookup("sweep/x/a=1", "seed=1,dur=6000,reps=2"); !ok {
		t.Error("entry lost under its own key")
	}
}

// TestJournalTornEntryRemoved: a torn or foreign file under an entry's
// name is treated as a miss and removed, so the unit re-runs and rewrites
// it.
func TestJournalTornEntryRemoved(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(dir)
	path := j.entryPath("sweep/x/a=1", "s")
	for _, torn := range []string{
		"",                     // empty (crash before any bytes)
		`{"format":"telep`,     // truncated JSON
		`{"format":"other/1"}`, // foreign format
		`{"format":"` + JournalEntryFormat + `","unit":"sweep/x/a=1","scope":"s","rows":2,"jsonl":[],"csv":[]}`, // row-count mismatch
	} {
		if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := j.Lookup("sweep/x/a=1", "s"); ok {
			t.Errorf("torn entry %.30q accepted", torn)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("torn entry %.30q not removed", torn)
		}
	}
}

// TestJournalNoTempLeak: atomic writes leave no temp files behind, and
// temp files never count as entries.
func TestJournalNoTempLeak(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(dir)
	for i := 0; i < 8; i++ {
		e, _ := encodeEntry("u"+string(rune('0'+i)), "s", 1, []core.Row{map[string]float64{"i": float64(i)}})
		if err := j.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	matches, _ := filepath.Glob(filepath.Join(dir, ".entry-*"))
	if len(matches) != 0 {
		t.Errorf("temp files leaked: %v", matches)
	}
	if j.Len() != 8 {
		t.Errorf("Len = %d, want 8", j.Len())
	}
}

func TestOpenJournalRejectsEmpty(t *testing.T) {
	if _, err := OpenJournal(""); err == nil {
		t.Error("empty journal dir accepted")
	}
}
