package fleet

import (
	"testing"

	"telepresence/internal/core"
)

// TestSweepManifestCellTimingsComplete pins the manifest's per-cell
// accounting at both serial and parallel worker counts: every grid cell
// appears in cell_timings exactly once (indexed, in grid order), with a
// non-negative duration and at least one attempt, and the per-run
// rows_per_sec derives from the recorded totals.
func TestSweepManifestCellTimingsComplete(t *testing.T) {
	spec := testSweepSpec()
	cells := spec.Cells()
	for _, workers := range []int{1, 4} {
		opts := core.Quick(5)
		results, err := RunSweep(spec, opts, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		m := NewSweepManifest(spec, opts, workers, 10, results)
		if len(m.CellTimings) != len(cells) {
			t.Fatalf("workers=%d: cell_timings has %d entries, grid has %d",
				workers, len(m.CellTimings), len(cells))
		}
		seen := map[int]bool{}
		for i, ct := range m.CellTimings {
			if seen[ct.Index] {
				t.Errorf("workers=%d: cell %d appears twice in cell_timings", workers, ct.Index)
			}
			seen[ct.Index] = true
			if ct.Index != cells[i].Index || ct.Label != cells[i].Label {
				t.Errorf("workers=%d: entry %d is cell %d %q, want %d %q",
					workers, i, ct.Index, ct.Label, cells[i].Index, cells[i].Label)
			}
			if ct.WallMs < 0 {
				t.Errorf("workers=%d: cell %d wall %v ms is negative", workers, ct.Index, ct.WallMs)
			}
			if ct.Attempts < 1 {
				t.Errorf("workers=%d: cell %d attempts = %d, want >= 1", workers, ct.Index, ct.Attempts)
			}
			if ct.Rows != 1 {
				t.Errorf("workers=%d: cell %d rows = %d, want 1", workers, ct.Index, ct.Rows)
			}
		}
		if m.RowsPerSec <= 0 {
			t.Errorf("workers=%d: run rows_per_sec = %v, want > 0", workers, m.RowsPerSec)
		}
	}
}

// TestManifestPerExperimentRowsPerSec pins the run manifest's throughput
// accounting: each experiment entry reports rows over its cumulative rep
// wall time, positive whenever rows were emitted and wall time elapsed.
func TestManifestPerExperimentRowsPerSec(t *testing.T) {
	exp, _ := flakyExperiment("rps", 3, 0, false)
	results, err := Run([]core.Experiment{exp}, core.Quick(3), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManifest(core.Quick(3), 4, 10, results)
	if len(m.Experiments) != 1 {
		t.Fatalf("manifest experiments = %d, want 1", len(m.Experiments))
	}
	e := m.Experiments[0]
	if e.Rows == 0 || e.Reps != 3 || e.Attempts < e.Reps {
		t.Errorf("experiment accounting wrong: %+v", e)
	}
	if e.WallMs < 0 {
		t.Errorf("experiment wall %v ms is negative", e.WallMs)
	}
	if e.RowsPerSec <= 0 {
		t.Errorf("experiment rows_per_sec = %v, want > 0 (rows %d over %v ms)",
			e.RowsPerSec, e.Rows, e.WallMs)
	}
}
