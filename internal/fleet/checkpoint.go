package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"telepresence/internal/core"
)

// JournalEntryFormat identifies the journal entry schema version.
const JournalEntryFormat = "telepresence-journal/1"

// JournalEntry is one completed unit's checkpointed rows. Rows are stored
// pre-encoded in both sink encodings — JSONL lines exactly as NewJSONLSink
// emits them and CSV records exactly as NewCSVSink flattens them — so a
// resumed run reassembles final output byte-identical to an uninterrupted
// one without needing to restore typed row values.
type JournalEntry struct {
	Format string `json:"format"`
	// Unit is the unit's stable identity ("sweep/handover/delay_ms=100",
	// "run/fig4/rep0").
	Unit string `json:"unit"`
	// Scope pins the result-affecting options (core.Options.Fingerprint):
	// an entry is only reusable by a run whose scope matches, so resuming
	// with a different seed or session scale re-runs everything.
	Scope string `json:"scope"`
	// Attempts is how many tries the unit took when it was journaled.
	Attempts int `json:"attempts"`
	// Rows is the row count (redundant with the encodings; a mismatch
	// marks the entry torn).
	Rows  int               `json:"rows"`
	JSONL []json.RawMessage `json:"jsonl"`
	CSV   [][]string        `json:"csv"`
}

// Journal is a per-run checkpoint directory: each completed unit's rows
// persist as one content-addressed file keyed by (unit identity, options
// scope), written atomically via temp-file+rename. Because cell seeds are
// value-derived and worker-count-invariant, entries are location-
// independent: any run with the same seed and options can reuse them, at
// any worker count, in any grid shape that contains the cell.
type Journal struct {
	dir string
}

// OpenJournal opens (creating if needed) a checkpoint directory.
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		return nil, errors.New("fleet: empty journal directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: open journal: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// entryPath content-addresses a unit: the file name is the hash of the
// (unit, scope) key, so lookups never scan and foreign entries never
// collide.
func (j *Journal) entryPath(unit, scope string) string {
	h := sha256.Sum256([]byte(unit + "\x00" + scope))
	return filepath.Join(j.dir, hex.EncodeToString(h[:16])+".json")
}

// Lookup returns the journaled entry for a unit, or false when none is
// usable. A torn entry (interrupted mid-write without the atomic rename
// completing, or truncated by a crash) fails to parse or fails its
// self-checks; it counts as a miss and is removed so the unit re-runs.
func (j *Journal) Lookup(unit, scope string) (*JournalEntry, bool) {
	path := j.entryPath(unit, scope)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var e JournalEntry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Format != JournalEntryFormat || e.Unit != unit || e.Scope != scope ||
		len(e.JSONL) != e.Rows || len(e.CSV) != e.Rows {
		os.Remove(path)
		return nil, false
	}
	return &e, true
}

// Write persists one completed unit crash-consistently: the entry is
// written to a temp file in the journal directory, synced, then renamed
// into its content-addressed name. A crash at any point leaves either no
// entry or a complete one — never a torn file under the final name.
func (j *Journal) Write(e *JournalEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("fleet: journal encode %s: %w", e.Unit, err)
	}
	f, err := os.CreateTemp(j.dir, ".entry-*")
	if err != nil {
		return fmt.Errorf("fleet: journal write %s: %w", e.Unit, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fleet: journal write %s: %w", e.Unit, err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: journal write %s: %w", e.Unit, err)
	}
	if err := os.Rename(tmp, j.entryPath(e.Unit, e.Scope)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: journal write %s: %w", e.Unit, err)
	}
	return nil
}

// Len counts the complete entries currently in the journal.
func (j *Journal) Len() int {
	matches, err := filepath.Glob(filepath.Join(j.dir, "*.json"))
	if err != nil {
		return 0
	}
	n := 0
	for _, m := range matches {
		if !strings.HasPrefix(filepath.Base(m), ".") {
			n++
		}
	}
	return n
}

// encodeEntry renders a unit's rows in both sink encodings. The JSONL
// bytes match json.Encoder output (modulo the trailing newline the sink
// adds) and the CSV records match NewCSVSink's flattening, so replayed
// entries are byte-identical to live writes.
func encodeEntry(unitKey, scope string, attempts int, rs []core.Row) (*JournalEntry, error) {
	e := &JournalEntry{
		Format:   JournalEntryFormat,
		Unit:     unitKey,
		Scope:    scope,
		Attempts: attempts,
		Rows:     len(rs),
		JSONL:    make([]json.RawMessage, 0, len(rs)),
		CSV:      make([][]string, 0, len(rs)),
	}
	for _, r := range rs {
		b, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		e.JSONL = append(e.JSONL, b)
		e.CSV = append(e.CSV, flattenRecord(r))
	}
	return e, nil
}
