package fleet

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"telepresence/internal/core"
)

// flakyExperiment fails (or panics) the first failPer attempts of every
// rep, then succeeds with rows that depend only on the rep — the purity
// contract that makes retried output byte-identical. Counters are atomic:
// a watchdog-abandoned attempt may still be running when its retry starts.
func flakyExperiment(name string, reps, failPer int, doPanic bool) (core.Experiment, *sync.Map) {
	var attempts sync.Map // rep -> *atomic.Int64
	exp := core.Experiment{
		Name: name, Desc: "test", Row: 0,
		Reps: func(core.Options) int { return reps },
		Run: func(_ core.Options, rep int) ([]core.Row, error) {
			v, _ := attempts.LoadOrStore(rep, new(atomic.Int64))
			if v.(*atomic.Int64).Add(1) <= int64(failPer) {
				if doPanic {
					panic("synthetic rep panic")
				}
				return nil, errors.New("synthetic rep failure")
			}
			return []core.Row{rep * 10, rep*10 + 1}, nil
		},
	}
	return exp, &attempts
}

// TestPanicIsolation: a panicking rep must not kill the process or its
// sibling experiments — it becomes that experiment's error, with the
// panic stack captured for the manifest.
func TestPanicIsolation(t *testing.T) {
	boom, _ := flakyExperiment("boom", 2, 99, true)
	good, _ := flakyExperiment("good", 2, 0, false)
	res, err := Run([]core.Experiment{boom, good}, core.Quick(1), Config{Workers: 4})
	if err == nil {
		t.Fatal("panicking experiment produced no error")
	}
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "panic: synthetic rep panic") {
		t.Errorf("panic not converted to error: %v", res[0].Err)
	}
	if len(res[0].Failures) != 2 {
		t.Fatalf("%d failures recorded, want 2 (one per rep)", len(res[0].Failures))
	}
	f := res[0].Failures[0]
	if f.Stack == "" || !strings.Contains(f.Stack, "goroutine") {
		t.Errorf("panic stack not captured: %q", f.Stack)
	}
	if f.Unit != "run/boom/rep0" && f.Unit != "run/boom/rep1" {
		t.Errorf("failure unit key %q", f.Unit)
	}
	if res[1].Err != nil || len(res[1].Rows) != 4 {
		t.Errorf("sibling experiment harmed: err=%v rows=%d", res[1].Err, len(res[1].Rows))
	}
}

// TestRetryDeterminism is the acceptance pin: a runner failing its first
// N-1 attempts under RetryPolicy{MaxAttempts: N} must yield rows
// byte-identical to a never-failing runner.
func TestRetryDeterminism(t *testing.T) {
	const n = 3
	flaky, _ := flakyExperiment("flaky", 4, n-1, false)
	clean, _ := flakyExperiment("flaky", 4, 0, false) // same name: same unit keys
	opts := core.Quick(1)

	want, err := Run([]core.Experiment{clean}, opts, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run([]core.Experiment{flaky}, opts, Config{Workers: 4, Retry: RetryPolicy{MaxAttempts: n}})
	if err != nil {
		t.Fatalf("retries did not converge: %v", err)
	}
	w := encodeJSONL(t, want)["flaky"]
	g := encodeJSONL(t, got)["flaky"]
	if string(w) != string(g) {
		t.Errorf("retried rows diverge from clean rows\nclean: %s\nretry: %s", w, g)
	}
	if got[0].Attempts != 4*n {
		t.Errorf("attempts = %d, want %d (every rep retried %d times)", got[0].Attempts, 4*n, n)
	}
	// Same runner with one attempt fewer must fail instead of converging.
	flaky2, _ := flakyExperiment("flaky", 4, n-1, false)
	if _, err := Run([]core.Experiment{flaky2}, opts, Config{Workers: 4, Retry: RetryPolicy{MaxAttempts: n - 1}}); err == nil {
		t.Error("under-budgeted retry succeeded")
	}
}

// TestWatchdogTimeout: a hung attempt is abandoned on PerCellTimeout and
// either retried (converging when a later attempt is fast) or surfaced as
// ErrUnitTimeout when the budget is exhausted.
func TestWatchdogTimeout(t *testing.T) {
	var attempts sync.Map
	hangFirst := core.Experiment{
		Name: "hang", Desc: "test", Row: 0,
		Reps: func(core.Options) int { return 1 },
		Run: func(_ core.Options, rep int) ([]core.Row, error) {
			v, _ := attempts.LoadOrStore(rep, new(atomic.Int64))
			if v.(*atomic.Int64).Add(1) == 1 {
				time.Sleep(10 * time.Second) // hung; watchdog abandons it
			}
			return []core.Row{42}, nil
		},
	}
	cfg := Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 2, PerCellTimeout: 50 * time.Millisecond}}
	res, err := Run([]core.Experiment{hangFirst}, core.Quick(1), cfg)
	if err != nil {
		t.Fatalf("watchdog retry did not converge: %v", err)
	}
	if len(res[0].Rows) != 1 || res[0].Attempts != 2 {
		t.Errorf("rows=%d attempts=%d, want 1 row in 2 attempts", len(res[0].Rows), res[0].Attempts)
	}

	alwaysHang := core.Experiment{
		Name: "hang2", Desc: "test", Row: 0,
		Reps: func(core.Options) int { return 1 },
		Run: func(core.Options, int) ([]core.Row, error) {
			time.Sleep(10 * time.Second)
			return []core.Row{0}, nil
		},
	}
	cfg = Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 1, PerCellTimeout: 50 * time.Millisecond}}
	_, err = Run([]core.Experiment{alwaysHang}, core.Quick(1), cfg)
	if !errors.Is(err, ErrUnitTimeout) {
		t.Errorf("hung unit error = %v, want ErrUnitTimeout", err)
	}
}

// TestBackoffSchedule pins the doubling schedule.
func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{Backoff: 10 * time.Millisecond}
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{{1, 0}, {2, 10 * time.Millisecond}, {3, 20 * time.Millisecond}, {4, 40 * time.Millisecond}} {
		if got := p.backoffBefore(tc.attempt); got != tc.want {
			t.Errorf("backoffBefore(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
	if got := (RetryPolicy{}).backoffBefore(5); got != 0 {
		t.Errorf("zero policy backoff = %v, want 0", got)
	}
}

// TestBufferedRunsRejectResume: the buffered entry points promise typed
// rows, which journal entries cannot provide.
func TestBufferedRunsRejectResume(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Checkpoint: j, Resume: true}
	if _, err := RunAll(core.Quick(1), cfg); err == nil || !strings.Contains(err.Error(), "RunStream") {
		t.Errorf("Run with Resume: %v, want a rejection pointing at RunStream", err)
	}
	spec := SweepSpec{Target: "synth-sweep", Axes: []Axis{{Name: "a", Values: []float64{1}}}}
	if _, err := RunSweep(spec, core.Quick(1), cfg); err == nil || !strings.Contains(err.Error(), "RunSweepStream") {
		t.Errorf("RunSweep with Resume: %v, want a rejection pointing at RunSweepStream", err)
	}
}

// TestSweepPanicIsolated: the sweep path shares the same isolation (panic
// stack lands in the cell result and the manifest failures section).
func TestSweepPanicIsolated(t *testing.T) {
	spec := SweepSpec{Target: "synth-sweep", Axes: []Axis{
		{Name: "a", Values: []float64{-2, 1}}}}
	results, err := RunSweep(spec, core.Quick(1), Config{Workers: 2})
	if err == nil {
		t.Fatal("panicking cell produced no error")
	}
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "panic: synthetic panic") {
		t.Errorf("cell 0: %v, want recovered panic", results[0].Err)
	}
	if results[0].Stack == "" {
		t.Error("panic stack not captured on cell result")
	}
	if results[1].Err != nil || len(results[1].Rows) != 1 {
		t.Errorf("surviving cell harmed: %v", results[1].Err)
	}
	m := NewSweepManifest(spec, core.Quick(1), 2, time.Millisecond, results)
	if len(m.Failures) != 1 || m.Failures[0].Stack == "" || m.Failures[0].Attempts != 1 {
		t.Errorf("manifest failures = %+v", m.Failures)
	}
}
