package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"telepresence/internal/core"
)

// testSweepSpec is the 12-cell grid the streaming and resume tests share.
func testSweepSpec() SweepSpec {
	return SweepSpec{Target: "synth-sweep", Axes: []Axis{
		{Name: "a", Values: []float64{1, 2, 3, 4, 5, 6}},
		{Name: "b", Values: []float64{10, 20}},
	}}
}

// streamSweepJSONL runs the sweep through the streaming path into one
// JSONL buffer.
func streamSweepJSONL(t *testing.T, spec SweepSpec, opts core.Options, cfg Config) ([]byte, []SweepCellResult, error) {
	t.Helper()
	var buf bytes.Buffer
	results, err := RunSweepStream(spec, opts, cfg, NewJSONLSink(&buf))
	return buf.Bytes(), results, err
}

// TestSweepStreamMatchesBuffered: the streaming path must emit exactly the
// bytes the buffered path does, at any worker count.
func TestSweepStreamMatchesBuffered(t *testing.T) {
	spec := testSweepSpec()
	opts := core.Quick(7)
	buffered, err := RunSweep(spec, opts, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := sweepJSONL(t, buffered)
	for _, workers := range []int{1, 8} {
		got, results, err := streamSweepJSONL(t, spec, opts, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("workers=%d stream bytes diverge from buffered\nbuf:    %s\nstream: %s", workers, want, got)
		}
		for _, r := range results {
			if r.Rows != nil || r.RowCount != 1 {
				t.Fatalf("workers=%d cell %d: Rows=%v RowCount=%d, want nil/1", workers, r.Cell.Index, r.Rows, r.RowCount)
			}
		}
	}
}

// TestStreamWindowBoundsBuffer is the bounded-memory pin: with an
// explicit window, the reorder buffer's high-water mark never exceeds it,
// no matter how large the grid is or how out-of-order workers finish.
func TestStreamWindowBoundsBuffer(t *testing.T) {
	// 60 units finishing in adversarial (reverse) order.
	var units []unit
	for i := 0; i < 60; i++ {
		i := i
		units = append(units, unit{
			key: fmt.Sprintf("run/synth/rep%d", i),
			run: func() ([]core.Row, error) {
				time.Sleep(time.Duration(3-i%4) * time.Millisecond)
				return []core.Row{i}, nil
			},
		})
	}
	const window = 5
	var mu sync.Mutex
	var report engineReport
	cfg := Config{
		Workers: 8, Window: window,
		onReport: func(r engineReport) { mu.Lock(); report = r; mu.Unlock() },
	}
	next := 0
	if _, err := runOrdered(units, "s", cfg, func(i int, o unitOutcome) error {
		if i != next {
			t.Fatalf("emitted unit %d before %d", i, next)
		}
		next++
		return o.err
	}); err != nil {
		t.Fatal(err)
	}
	if next != 60 {
		t.Fatalf("emitted %d units, want 60", next)
	}
	if report.maxBuffered == 0 || report.maxBuffered > window {
		t.Errorf("reorder buffer high-water mark %d, want 1..%d (memory must not scale with run size)",
			report.maxBuffered, window)
	}
}

// trippingSink wraps a sink and closes interrupt after the Nth write,
// simulating a kill arriving mid-run.
type trippingSink struct {
	Sink
	after     int
	writes    int
	interrupt chan struct{}
	once      sync.Once
}

func (s *trippingSink) Write(row core.Row) error {
	err := s.Sink.Write(row)
	s.writes++
	if s.writes >= s.after {
		s.once.Do(func() { close(s.interrupt) })
	}
	return err
}

// TestKillAndResume is the acceptance pin: a sweep killed mid-run under
// chaos, then resumed from its journal, reassembles byte-identical output
// to an uninterrupted run — at worker counts 1 and 8.
func TestKillAndResume(t *testing.T) {
	spec := testSweepSpec()
	opts := core.Quick(13)
	clean, _, err := streamSweepJSONL(t, spec, opts, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	journal, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Run 1: chaos panics on first attempts, cells slowed so the trip
	// lands while work is still in flight, kill after the 3rd row reaches
	// the sink.
	interrupt := make(chan struct{})
	var buf bytes.Buffer
	sink := &trippingSink{Sink: NewJSONLSink(&buf), after: 3, interrupt: interrupt}
	cfg := Config{
		Workers: 2, Window: 4,
		Chaos:      &FaultPlan{Seed: 13, PanicProb: 0.5, DelayProb: 1, Delay: 15 * time.Millisecond, FailAttempts: 1},
		Retry:      RetryPolicy{MaxAttempts: 3},
		Checkpoint: journal,
		Interrupt:  interrupt,
	}
	results, runErr := RunSweepStream(spec, opts, cfg, sink)
	if !errors.Is(runErr, ErrInterrupted) {
		t.Fatalf("interrupted run error = %v, want ErrInterrupted", runErr)
	}
	skipped := 0
	for _, r := range results {
		if errors.Is(r.Err, ErrInterrupted) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("kill skipped no cells; interrupt arrived too late to test resume")
	}
	if journal.Len() == 0 {
		t.Fatal("no cells journaled before the kill")
	}
	m := NewSweepManifest(spec, opts, 2, time.Second, results)
	if !m.Interrupted || len(m.Failures) != 0 {
		t.Errorf("interrupted manifest: interrupted=%v failures=%+v, want true/none", m.Interrupted, m.Failures)
	}

	// Runs 2..: resume from the journal at both worker counts; bytes must
	// match the uninterrupted run exactly.
	for _, workers := range []int{1, 8} {
		got, results, err := streamSweepJSONL(t, spec, opts, Config{
			Workers: workers, Checkpoint: journal, Resume: true,
		})
		if err != nil {
			t.Fatalf("resume workers=%d: %v", workers, err)
		}
		if !bytes.Equal(clean, got) {
			t.Errorf("resume workers=%d bytes diverge from clean run\nclean:  %s\nresume: %s", workers, clean, got)
		}
		resumed := 0
		for _, r := range results {
			if r.Resumed {
				resumed++
			}
		}
		if resumed == 0 {
			t.Errorf("resume workers=%d served no cells from the journal", workers)
		}
		m := NewSweepManifest(spec, opts, workers, time.Second, results)
		if m.Resumed != resumed || m.Interrupted {
			t.Errorf("resumed manifest: %+v", m)
		}
	}
	// After a completed resume the journal holds every cell; a further
	// resume runs nothing live and still reproduces the bytes.
	if journal.Len() != len(spec.Cells()) {
		t.Fatalf("journal has %d entries after full resume, want %d", journal.Len(), len(spec.Cells()))
	}
	got, results, err := streamSweepJSONL(t, spec, opts, Config{Workers: 4, Checkpoint: journal, Resume: true})
	if err != nil || !bytes.Equal(clean, got) {
		t.Errorf("fully-journaled resume: err=%v, bytes equal=%v", err, bytes.Equal(clean, got))
	}
	for _, r := range results {
		if !r.Resumed {
			t.Fatalf("cell %d ran live despite a full journal", r.Cell.Index)
		}
	}
}

// TestSinkChaosErrorThenResume: an injected sink-write error aborts the
// run, but completed cells are already journaled, so a resume recovers
// them without re-running and replays clean (sink faults never fire on
// journal replays).
func TestSinkChaosErrorThenResume(t *testing.T) {
	spec := testSweepSpec()
	opts := core.Quick(5)
	clean, _, err := streamSweepJSONL(t, spec, opts, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	journal, _ := OpenJournal(t.TempDir())
	_, _, runErr := streamSweepJSONL(t, spec, opts, Config{
		Workers: 2, Checkpoint: journal,
		Chaos: &FaultPlan{Seed: 5, SinkErrorProb: 1},
	})
	if runErr == nil {
		t.Fatal("SinkErrorProb=1 run succeeded")
	}
	if journal.Len() == 0 {
		t.Fatal("sink failure lost completed cells (nothing journaled)")
	}
	got, results, err := streamSweepJSONL(t, spec, opts, Config{
		Workers: 2, Checkpoint: journal, Resume: true,
	})
	if err != nil {
		t.Fatalf("resume after sink failure: %v", err)
	}
	if !bytes.Equal(clean, got) {
		t.Errorf("post-sink-failure resume diverges from clean\nclean:  %s\nresume: %s", clean, got)
	}
	resumed := 0
	for _, r := range results {
		if r.Resumed {
			resumed++
		}
	}
	if resumed == 0 {
		t.Error("resume served nothing from the journal")
	}
}

// TestRunStreamExperiments: the experiment streaming path opens one sink
// per experiment, streams rep rows in order, isolates failures as gaps,
// and reports counts instead of buffering rows.
func TestRunStreamExperiments(t *testing.T) {
	good, _ := flakyExperiment("s-good", 3, 0, false)
	half := core.Experiment{ // rep 1 of 3 fails: reps 0 and 2 still stream
		Name: "s-half", Desc: "test", Row: 0,
		Reps: func(core.Options) int { return 3 },
		Run: func(_ core.Options, rep int) ([]core.Row, error) {
			if rep == 1 {
				return nil, errors.New("synthetic rep failure")
			}
			return []core.Row{rep * 10, rep*10 + 1}, nil
		},
	}
	sinks := map[string]*MemorySink{}
	results, err := RunStream([]core.Experiment{good, half}, core.Quick(1), Config{Workers: 4},
		func(e core.Experiment) (Sink, error) {
			s := NewMemorySink()
			sinks[e.Name] = s
			return s, nil
		})
	if err == nil {
		t.Fatal("failing rep produced no joined error")
	}
	if results[0].Err != nil || results[0].RowCount != 6 || results[0].Rows != nil {
		t.Errorf("good experiment: %+v", results[0])
	}
	if len(sinks["s-good"].Rows) != 6 {
		t.Errorf("good sink rows = %d, want 6", len(sinks["s-good"].Rows))
	}
	// The failed rep leaves a gap: reps 0 and 2 present, rep 1 absent.
	wantHalf := []core.Row{0, 1, 20, 21}
	gotHalf := sinks["s-half"].Rows
	if fmt.Sprint(gotHalf) != fmt.Sprint(wantHalf) {
		t.Errorf("half sink rows = %v, want %v (gap where rep 1 failed)", gotHalf, wantHalf)
	}
	if results[1].Err == nil || results[1].RowCount != 4 || len(results[1].Failures) != 1 {
		t.Errorf("half experiment: err=%v count=%d failures=%+v", results[1].Err, results[1].RowCount, results[1].Failures)
	}
	man := NewManifest(core.Quick(1), 4, time.Second, results)
	if len(man.Failures) != 1 || man.Failures[0].Unit != "run/s-half/rep1" {
		t.Errorf("manifest failures = %+v", man.Failures)
	}
}

// TestEntryReplayByteIdentical: replaying a journal entry through the
// JSONL and CSV sinks yields exactly the bytes live writes would.
func TestEntryReplayByteIdentical(t *testing.T) {
	type row struct {
		Label string
		V     float64
		N     int
	}
	rows := []core.Row{row{"x", 1.5, 2}, row{"y", -0.25, 7}}
	e, err := encodeEntry("u", "s", 1, rows)
	if err != nil {
		t.Fatal(err)
	}

	var liveJ, replayJ bytes.Buffer
	live := NewJSONLSink(&liveJ)
	for _, r := range rows {
		if err := live.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := NewJSONLSink(&replayJ).(EntrySink).WriteEntry(e); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJ.Bytes(), replayJ.Bytes()) {
		t.Errorf("JSONL replay diverges\nlive:   %q\nreplay: %q", liveJ.Bytes(), replayJ.Bytes())
	}

	var liveC, replayC bytes.Buffer
	cs := NewCSVSink(&liveC, row{})
	for _, r := range rows {
		if err := cs.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	rs := NewCSVSink(&replayC, row{}).(EntrySink)
	if err := rs.WriteEntry(e); err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveC.Bytes(), replayC.Bytes()) {
		t.Errorf("CSV replay diverges\nlive:   %q\nreplay: %q", liveC.Bytes(), replayC.Bytes())
	}
}
