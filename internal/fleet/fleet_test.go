package fleet

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"telepresence/internal/core"
	"telepresence/internal/simtime"
	"telepresence/internal/stats"
)

// testOpts keeps the full-suite tests fast: short sessions, two reps.
func testOpts(seed int64) core.Options {
	o := core.Quick(seed)
	o.SessionDuration = 4 * simtime.Second
	return o
}

// encodeJSONL renders every experiment's rows as JSONL, keyed by name.
func encodeJSONL(t *testing.T, results []ExperimentResult) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Experiment.Name, res.Err)
		}
		var buf bytes.Buffer
		s := NewJSONLSink(&buf)
		for _, row := range res.Rows {
			if err := s.Write(row); err != nil {
				t.Fatal(err)
			}
		}
		out[res.Experiment.Name] = buf.Bytes()
	}
	return out
}

// TestDeterminismAcrossWorkers is the fleet's core guarantee: `run all`
// with one worker and with eight workers must produce byte-identical JSONL
// for every experiment. In -short mode every experiment runs a 1-rep subset
// on both sides; non-short the sequential side reuses the cached golden
// full-suite run (fullSuite), so the double-suite cost collapses to one
// extra parallel run.
func TestDeterminismAcrossWorkers(t *testing.T) {
	var want, got map[string][]byte
	if testing.Short() {
		exps := subsetExperiments(core.Experiments())
		want = suiteJSONL(t, exps, 1)
		got = suiteJSONL(t, exps, 8)
	} else {
		want = fullSuite(t)
		got = suiteJSONL(t, core.Experiments(), 8)
	}
	if len(want) != len(got) {
		t.Fatalf("experiment counts differ: %d vs %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s missing from parallel run", name)
			continue
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s: workers=1 and workers=8 output differ\nseq: %.200s\npar: %.200s", name, w, g)
		}
		if len(w) == 0 {
			t.Errorf("%s emitted no rows", name)
		}
	}
}

func TestRunMergesRepOrder(t *testing.T) {
	// A synthetic experiment whose rows encode their rep index proves the
	// merge preserves rep order even when workers finish out of order.
	exp := core.Experiment{
		Name: "synthetic", Desc: "test", Row: 0,
		Reps: func(core.Options) int { return 16 },
		Run: func(_ core.Options, rep int) ([]core.Row, error) {
			time.Sleep(time.Duration(16-rep) * time.Millisecond) // later reps finish first
			return []core.Row{rep * 10, rep*10 + 1}, nil
		},
	}
	res, err := Run([]core.Experiment{exp}, core.Quick(1), Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) != 32 {
		t.Fatalf("%d rows, want 32", len(rows))
	}
	for i, r := range rows {
		want := (i/2)*10 + i%2
		if r.(int) != want {
			t.Fatalf("row %d = %v, want %d (merge order broken)", i, r, want)
		}
	}
}

func TestRunInvalidOptions(t *testing.T) {
	if _, err := RunAll(core.Options{Reps: -1}, Config{}); err == nil {
		t.Error("negative Reps not rejected")
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("all")
	if err != nil || len(all) != len(core.Experiments()) {
		t.Fatalf("Select(all) = %d exps, %v", len(all), err)
	}
	some, err := Select("fig5", "servers", "fig5")
	if err != nil || len(some) != 2 {
		t.Fatalf("Select dedup failed: %d exps, %v", len(some), err)
	}
	if _, err := Select("bogus"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestManifest(t *testing.T) {
	exps, _ := Select("servers", "protocols")
	opts := testOpts(3)
	res, err := Run(exps, opts, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManifest(opts, 2, 5*time.Millisecond, res)
	if m.Format != ManifestFormat || m.Seed != 3 || m.Workers != 2 {
		t.Errorf("manifest header wrong: %+v", m)
	}
	if len(m.Experiments) != 2 || m.Experiments[0].Name != "servers" || m.Experiments[0].Rows != 3 {
		t.Errorf("experiment manifests wrong: %+v", m.Experiments)
	}
	if _, err := json.Marshal(m); err != nil {
		t.Errorf("manifest not serializable: %v", err)
	}
}

func TestMemorySink(t *testing.T) {
	exps, _ := Select("servers")
	res, err := Run(exps, testOpts(4), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sink := NewMemorySink()
	if err := WriteResults(res, func(core.Experiment) (Sink, error) { return sink, nil }); err != nil {
		t.Fatal(err)
	}
	if len(sink.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(sink.Rows))
	}
	if _, ok := sink.Rows[0].(core.MultiServerRow); !ok {
		t.Errorf("row type %T, want core.MultiServerRow", sink.Rows[0])
	}
}

func TestCSVSinkFlattening(t *testing.T) {
	type inner struct{ A, B float64 }
	type row struct {
		Label  string
		Nested inner
		Vals   []int
		Sample *stats.Sample
		OK     bool
	}
	var buf bytes.Buffer
	s := NewCSVSink(&buf, row{})
	err := s.Write(row{
		Label: "x", Nested: inner{1.5, 2},
		Vals: []int{7, 8}, Sample: stats.NewSample(1, 2, 3), OK: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := strings.Join(recs[0], ",")
	want := "Label,Nested.A,Nested.B,Vals,Sample.n,Sample.mean,Sample.std,Sample.min,Sample.p25,Sample.median,Sample.p75,Sample.p95,Sample.max,OK"
	if header != want {
		t.Errorf("header = %s\nwant     %s", header, want)
	}
	rec := recs[1]
	if rec[0] != "x" || rec[1] != "1.5" || rec[3] != "7;8" || rec[4] != "3" || rec[5] != "2" || rec[13] != "true" {
		t.Errorf("record = %v", rec)
	}
}

func TestCSVSinkHeaderOnEmpty(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf, core.RateAdaptationRow{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "CapMbps,UnavailableFrac,MeanLatencyMs" {
		t.Errorf("empty-file header = %q", got)
	}
}
