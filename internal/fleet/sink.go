package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"telepresence/internal/core"
	"telepresence/internal/simtime"
)

// Sink consumes one experiment's merged rows. Implementations are not
// safe for concurrent use; the fleet writes to each sink from one
// goroutine, in deterministic row order.
type Sink interface {
	Write(row core.Row) error
	Close() error
}

// SinkFactory opens a sink for one experiment (e.g. a per-experiment
// output file).
type SinkFactory func(e core.Experiment) (Sink, error)

// EntrySink is implemented by sinks that can replay a checkpointed
// journal entry's pre-encoded rows byte-identically to live writes.
// Resuming a run (Config.Resume) requires the sink to implement it;
// NewJSONLSink and NewCSVSink both do.
type EntrySink interface {
	Sink
	WriteEntry(e *JournalEntry) error
}

// WriteResults streams every successful result's rows through a fresh sink
// from factory, in result order. Failed experiments are skipped.
func WriteResults(results []ExperimentResult, factory SinkFactory) error {
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		s, err := factory(res.Experiment)
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			if err := s.Write(row); err != nil {
				s.Close()
				return err
			}
		}
		if err := s.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ------------------------------------------------------------------ JSONL

type jsonlSink struct {
	w   io.Writer
	enc *json.Encoder
}

// NewJSONLSink writes one JSON object per row to w. Encoding is
// deterministic: struct fields serialize in declaration order and samples
// serialize as their descriptive summary.
func NewJSONLSink(w io.Writer) Sink {
	return jsonlSink{w: w, enc: json.NewEncoder(w)}
}

func (s jsonlSink) Write(row core.Row) error { return s.enc.Encode(row) }
func (s jsonlSink) Close() error             { return nil }

// WriteEntry replays a journal entry's pre-encoded JSONL lines. The
// stored lines are json.Marshal output, which matches json.Encoder's
// encoding exactly, so a resumed file is byte-identical to a live one.
func (s jsonlSink) WriteEntry(e *JournalEntry) error {
	for _, line := range e.JSONL {
		if _, err := s.w.Write(line); err != nil {
			return err
		}
		if _, err := s.w.Write([]byte{'\n'}); err != nil {
			return err
		}
	}
	return nil
}

// ----------------------------------------------------------------- Memory

// MemorySink accumulates rows in memory, for tests and programmatic use.
type MemorySink struct{ Rows []core.Row }

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

func (s *MemorySink) Write(row core.Row) error { s.Rows = append(s.Rows, row); return nil }

// Close is a no-op; rows stay readable after closing.
func (s *MemorySink) Close() error { return nil }

// --------------------------------------------------------------- Manifest

// ExperimentManifest summarizes one experiment inside a run manifest.
type ExperimentManifest struct {
	Name   string  `json:"name"`
	Reps   int     `json:"reps"`
	Rows   int     `json:"rows"`
	WallMs float64 `json:"wall_ms"`
	// RowsPerSec is rows over the experiment's cumulative rep wall time —
	// a per-experiment throughput figure (parallel reps overlap, so the
	// run-level rate can exceed the per-experiment ones summed).
	RowsPerSec float64 `json:"rows_per_sec"`
	File       string  `json:"file,omitempty"`
	// Attempts is the total attempt count across reps (> Reps when
	// retries fired).
	Attempts int `json:"attempts,omitempty"`
	// Resumed counts reps served from the checkpoint journal.
	Resumed int `json:"resumed,omitempty"`
	// Skipped marks experiments an interrupted run never completed; a
	// resumed run fills them in.
	Skipped bool   `json:"skipped,omitempty"`
	Error   string `json:"error,omitempty"`
}

// rowsPerSec computes a rows-per-second rate, 0 when the interval is
// degenerate (zero wall time or no rows).
func rowsPerSec(rows int, wall time.Duration) float64 {
	if rows <= 0 || wall <= 0 {
		return 0
	}
	return float64(rows) / wall.Seconds()
}

// Manifest records what a fleet run did: the options that parameterized
// it, the worker count, wall time, and per-experiment row counts. It is
// the run's provenance document; rows themselves go to sinks.
type Manifest struct {
	Format             string  `json:"format"`
	Seed               int64   `json:"seed"`
	SessionDurationSec float64 `json:"session_duration_sec"`
	OptionReps         int     `json:"option_reps"`
	Workers            int     `json:"workers"`
	WallMs             float64 `json:"wall_ms"`
	// Rows is the total row count across all successful experiments;
	// RowsPerSec is that total over the run's elapsed wall time (the
	// fleet-throughput number BENCH_fleet.json tracks).
	Rows        int                  `json:"rows"`
	RowsPerSec  float64              `json:"rows_per_sec"`
	Experiments []ExperimentManifest `json:"experiments"`
	// Failures details every failed rep: error, captured panic stack,
	// attempt count. Interrupted (skipped) reps are not failures.
	Failures []UnitFailure `json:"failures,omitempty"`
	// Interrupted marks a run that drained early (signal or abort); its
	// journal, if any, makes it resumable.
	Interrupted bool `json:"interrupted,omitempty"`
	// Resumed counts reps served from the checkpoint journal.
	Resumed int `json:"resumed,omitempty"`
	// Checkpoint is the journal directory the run wrote, when one was set.
	Checkpoint string   `json:"checkpoint,omitempty"`
	Errors     []string `json:"errors,omitempty"`
	// HotSites ranks the run's busiest scheduling sites when it profiled
	// (Options.ProfDir): merged deterministic event counts, plus wall CPU.
	// Set by the caller from MergeProfiles after the run completes.
	HotSites []HotSite `json:"hot_sites,omitempty"`
}

// ManifestFormat identifies the manifest schema version. /2 added the
// run-level rows/rows_per_sec totals and per-experiment rows_per_sec; /3
// added the failures section and the interrupted/resumed/checkpoint
// resume fields.
const ManifestFormat = "telepresence-fleet/3"

// NewManifest builds the provenance record for a completed run.
func NewManifest(opts core.Options, workers int, wall time.Duration, results []ExperimentResult) Manifest {
	n, normErr := opts.Normalize()
	if normErr == nil {
		opts = n
	}
	m := Manifest{
		Format:             ManifestFormat,
		Seed:               opts.Seed,
		SessionDurationSec: float64(opts.SessionDuration) / float64(simtime.Second),
		OptionReps:         opts.Reps,
		Workers:            workers,
		WallMs:             float64(wall) / float64(time.Millisecond),
	}
	if normErr != nil {
		// Invalid options used to be silently masked here; record them so
		// the manifest never misdescribes the run it documents.
		m.Errors = append(m.Errors, fmt.Sprintf("options: %v", normErr))
	}
	for _, res := range results {
		rows := res.RowCount
		if rows == 0 {
			rows = len(res.Rows)
		}
		em := ExperimentManifest{
			Name:       res.Experiment.Name,
			Reps:       res.Reps,
			Rows:       rows,
			WallMs:     float64(res.Wall) / float64(time.Millisecond),
			RowsPerSec: rowsPerSec(rows, res.Wall),
			Attempts:   res.Attempts,
			Resumed:    res.Resumed,
		}
		m.Resumed += res.Resumed
		m.Failures = append(m.Failures, res.Failures...)
		if res.Err != nil {
			em.Error = res.Err.Error()
			if errors.Is(res.Err, ErrInterrupted) {
				m.Interrupted = true
				em.Skipped = true
			}
		}
		m.Rows += rows
		m.Experiments = append(m.Experiments, em)
	}
	m.RowsPerSec = rowsPerSec(m.Rows, wall)
	return m
}
