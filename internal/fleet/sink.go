package fleet

import (
	"encoding/json"
	"io"
	"time"

	"telepresence/internal/core"
	"telepresence/internal/simtime"
)

// Sink consumes one experiment's merged rows. Implementations are not
// safe for concurrent use; the fleet writes to each sink from one
// goroutine, in deterministic row order.
type Sink interface {
	Write(row core.Row) error
	Close() error
}

// SinkFactory opens a sink for one experiment (e.g. a per-experiment
// output file).
type SinkFactory func(e core.Experiment) (Sink, error)

// WriteResults streams every successful result's rows through a fresh sink
// from factory, in result order. Failed experiments are skipped.
func WriteResults(results []ExperimentResult, factory SinkFactory) error {
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		s, err := factory(res.Experiment)
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			if err := s.Write(row); err != nil {
				s.Close()
				return err
			}
		}
		if err := s.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ------------------------------------------------------------------ JSONL

type jsonlSink struct{ enc *json.Encoder }

// NewJSONLSink writes one JSON object per row to w. Encoding is
// deterministic: struct fields serialize in declaration order and samples
// serialize as their descriptive summary.
func NewJSONLSink(w io.Writer) Sink {
	return jsonlSink{enc: json.NewEncoder(w)}
}

func (s jsonlSink) Write(row core.Row) error { return s.enc.Encode(row) }
func (s jsonlSink) Close() error             { return nil }

// ----------------------------------------------------------------- Memory

// MemorySink accumulates rows in memory, for tests and programmatic use.
type MemorySink struct{ Rows []core.Row }

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

func (s *MemorySink) Write(row core.Row) error { s.Rows = append(s.Rows, row); return nil }

// Close is a no-op; rows stay readable after closing.
func (s *MemorySink) Close() error { return nil }

// --------------------------------------------------------------- Manifest

// ExperimentManifest summarizes one experiment inside a run manifest.
type ExperimentManifest struct {
	Name   string  `json:"name"`
	Reps   int     `json:"reps"`
	Rows   int     `json:"rows"`
	WallMs float64 `json:"wall_ms"`
	// RowsPerSec is rows over the experiment's cumulative rep wall time —
	// a per-experiment throughput figure (parallel reps overlap, so the
	// run-level rate can exceed the per-experiment ones summed).
	RowsPerSec float64 `json:"rows_per_sec"`
	File       string  `json:"file,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// rowsPerSec computes a rows-per-second rate, 0 when the interval is
// degenerate (zero wall time or no rows).
func rowsPerSec(rows int, wall time.Duration) float64 {
	if rows <= 0 || wall <= 0 {
		return 0
	}
	return float64(rows) / wall.Seconds()
}

// Manifest records what a fleet run did: the options that parameterized
// it, the worker count, wall time, and per-experiment row counts. It is
// the run's provenance document; rows themselves go to sinks.
type Manifest struct {
	Format             string  `json:"format"`
	Seed               int64   `json:"seed"`
	SessionDurationSec float64 `json:"session_duration_sec"`
	OptionReps         int     `json:"option_reps"`
	Workers            int     `json:"workers"`
	WallMs             float64 `json:"wall_ms"`
	// Rows is the total row count across all successful experiments;
	// RowsPerSec is that total over the run's elapsed wall time (the
	// fleet-throughput number BENCH_fleet.json tracks).
	Rows        int                  `json:"rows"`
	RowsPerSec  float64              `json:"rows_per_sec"`
	Experiments []ExperimentManifest `json:"experiments"`
}

// ManifestFormat identifies the manifest schema version. /2 added the
// run-level rows/rows_per_sec totals and per-experiment rows_per_sec.
const ManifestFormat = "telepresence-fleet/2"

// NewManifest builds the provenance record for a completed run. It
// assumes opts already passed validation (Run rejects invalid options
// before producing any results to record); invalid values are recorded
// as-is rather than masked.
func NewManifest(opts core.Options, workers int, wall time.Duration, results []ExperimentResult) Manifest {
	if n, err := opts.Normalize(); err == nil {
		opts = n
	}
	m := Manifest{
		Format:             ManifestFormat,
		Seed:               opts.Seed,
		SessionDurationSec: float64(opts.SessionDuration) / float64(simtime.Second),
		OptionReps:         opts.Reps,
		Workers:            workers,
		WallMs:             float64(wall) / float64(time.Millisecond),
	}
	for _, res := range results {
		em := ExperimentManifest{
			Name:       res.Experiment.Name,
			Reps:       res.Reps,
			Rows:       len(res.Rows),
			WallMs:     float64(res.Wall) / float64(time.Millisecond),
			RowsPerSec: rowsPerSec(len(res.Rows), res.Wall),
		}
		if res.Err != nil {
			em.Error = res.Err.Error()
		}
		m.Rows += len(res.Rows)
		m.Experiments = append(m.Experiments, em)
	}
	m.RowsPerSec = rowsPerSec(m.Rows, wall)
	return m
}
