package fleet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"telepresence/internal/core"
	"telepresence/internal/vprof"
)

// MergedProfJSONL / MergedProfPprof name the run-level profile artifacts
// MergeProfiles writes next to the per-cell files.
const (
	MergedProfJSONL = "merged" + core.ProfJSONLSuffix
	MergedProfPprof = "merged" + core.ProfPprofSuffix
)

// HotSite is one entry of a manifest's hot_sites ranking: a scheduling
// site and its merged deterministic event count, plus wall CPU when the
// pprof inputs carried it. The ranking (by events, ties by name) is
// deterministic; the CPU figure, like every manifest timing, is not.
type HotSite struct {
	Site    string `json:"site"`
	Events  uint64 `json:"events"`
	CPUNano int64  `json:"cpu_ns,omitempty"`
}

// HotSitesN is how many sites MergeProfiles ranks into a manifest.
const HotSitesN = 5

// MergeProfiles merges every per-unit profile a run left in dir into
// run-level artifacts and returns the hot-site ranking for the manifest.
//
//   - All *.vprof.jsonl files (the deterministic site counters) merge into
//     merged.vprof.jsonl. Each input is worker-count-invariant, and
//     vprof.Merge keys on site names in sorted order, so the merged file is
//     byte-identical at any worker count too.
//   - All *.vprof.pb.gz files (pprof, additionally carrying wall CPU)
//     merge into merged.vprof.pb.gz, stamped with the merge wall time so
//     `go tool pprof` displays when the profile was assembled.
//
// Previous merged outputs in dir are ignored as inputs, so reruns
// overwrite rather than compound. A dir with no per-unit profiles yields
// (nil, nil): not an error, just nothing to merge.
func MergeProfiles(dir string) ([]HotSite, error) {
	jsonls, err := profInputs(dir, core.ProfJSONLSuffix)
	if err != nil {
		return nil, err
	}
	pprofs, err := profInputs(dir, core.ProfPprofSuffix)
	if err != nil {
		return nil, err
	}
	if len(jsonls) == 0 && len(pprofs) == 0 {
		return nil, nil
	}

	var det *vprof.Report
	if len(jsonls) > 0 {
		reports := make([]*vprof.Report, 0, len(jsonls))
		for _, path := range jsonls {
			r, err := readProf(path, vprof.ParseReport)
			if err != nil {
				return nil, err
			}
			reports = append(reports, r)
		}
		det = vprof.Merge(reports...)
		err := writeProf(filepath.Join(dir, MergedProfJSONL), func(w *bufio.Writer) error {
			return det.WriteJSONL(w)
		})
		if err != nil {
			return nil, err
		}
	}

	ranked := det
	if len(pprofs) > 0 {
		reports := make([]*vprof.Report, 0, len(pprofs))
		for _, path := range pprofs {
			r, err := readProf(path, vprof.ParsePprof)
			if err != nil {
				return nil, err
			}
			reports = append(reports, r)
		}
		cpu := vprof.Merge(reports...)
		stamp := time.Now().UnixNano()
		err := writeProf(filepath.Join(dir, MergedProfPprof), func(w *bufio.Writer) error {
			return cpu.WritePprof(w, stamp)
		})
		if err != nil {
			return nil, err
		}
		// Rank from the pprof merge when present: same deterministic event
		// counts as the JSONL merge, plus the CPU attribution.
		ranked = cpu
	}
	if ranked == nil {
		return nil, nil
	}
	var hot []HotSite
	for _, s := range ranked.Top(HotSitesN) {
		hot = append(hot, HotSite{Site: s.Site, Events: s.Events, CPUNano: s.CPUNanos})
	}
	return hot, nil
}

// profInputs lists dir's per-unit profile files with the given suffix,
// sorted by name (merge order never changes the result, but a stable walk
// makes failures reproducible). Merged outputs are excluded.
func profInputs(dir, suffix string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fleet: prof dir: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, suffix) || strings.HasPrefix(name, "merged.") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// readProf parses one profile file with the given decoder.
func readProf(path string, parse func(rd io.Reader) (*vprof.Report, error)) (*vprof.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: prof input: %w", err)
	}
	defer f.Close()
	r, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("fleet: prof input %s: %w", filepath.Base(path), err)
	}
	return r, nil
}

// writeProf writes one merged artifact through a buffered writer.
func writeProf(path string, emit func(w *bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fleet: prof output: %w", err)
	}
	b := bufio.NewWriterSize(f, 1<<16)
	if err := emit(b); err != nil {
		f.Close()
		return fmt.Errorf("fleet: prof output %s: %w", filepath.Base(path), err)
	}
	if err := b.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("fleet: prof output %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fleet: prof output %s: %w", filepath.Base(path), err)
	}
	return nil
}
