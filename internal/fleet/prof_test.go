package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"telepresence/internal/core"
	"telepresence/internal/vprof"
)

// TestProfFilesDeterministicAcrossWorkers pins the profiler's fleet-level
// determinism contract: per-cell deterministic profile reports — and the
// run-level merge built from them — are byte-identical whether the cells
// run sequentially or race across eight workers, because every counter in
// them derives from virtual time and cell-derived seeds only. (The pprof
// outputs carry wall CPU and are deliberately NOT compared.)
func TestProfFilesDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full burstloss sessions")
	}
	exps, err := Select("burstloss")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Quick(5)
	run := func(workers int) (string, map[string][]byte, []HotSite) {
		dir := t.TempDir()
		o := opts
		o.ProfDir = dir
		if _, err := Run(exps, o, Config{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		hot, err := MergeProfiles(dir)
		if err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), core.ProfJSONLSuffix) {
				continue
			}
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = b
		}
		return dir, files, hot
	}
	seqDir, seq, seqHot := run(1)
	_, par, parHot := run(8)

	if len(seq) < 2 {
		t.Fatalf("expected per-cell reports plus a merge, got %d files", len(seq))
	}
	if _, ok := seq[MergedProfJSONL]; !ok {
		t.Fatalf("no %s written", MergedProfJSONL)
	}
	for name, b := range seq {
		pb, ok := par[name]
		if !ok {
			t.Errorf("parallel run missing %s", name)
			continue
		}
		if !bytes.Equal(b, pb) {
			t.Errorf("%s differs between workers=1 and workers=8", name)
		}
	}
	if len(seq) != len(par) {
		t.Errorf("file count differs: %d vs %d", len(seq), len(par))
	}

	// The hot-site ranking is deterministic on sites and event counts (CPU
	// is not compared) and must name the simulation's scheduling sites.
	if len(seqHot) == 0 {
		t.Fatal("no hot sites from a profiled run")
	}
	if len(seqHot) != len(parHot) {
		t.Fatalf("hot site count differs: %d vs %d", len(seqHot), len(parHot))
	}
	for i := range seqHot {
		if seqHot[i].Site != parHot[i].Site || seqHot[i].Events != parHot[i].Events {
			t.Errorf("hot site %d differs: %s/%d vs %s/%d", i,
				seqHot[i].Site, seqHot[i].Events, parHot[i].Site, parHot[i].Events)
		}
	}

	// The merged pprof output parses back into a report whose deterministic
	// counters match the merged JSONL report exactly.
	pprofFile, err := os.Open(filepath.Join(seqDir, MergedProfPprof))
	if err != nil {
		t.Fatal(err)
	}
	defer pprofFile.Close()
	fromPprof, err := vprof.ParsePprof(pprofFile)
	if err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := vprof.ParseReport(bytes.NewReader(seq[MergedProfJSONL]))
	if err != nil {
		t.Fatal(err)
	}
	if fromPprof.TotalEvents != fromJSONL.TotalEvents || len(fromPprof.Sites) != len(fromJSONL.Sites) {
		t.Errorf("pprof merge (%d events, %d sites) disagrees with JSONL merge (%d events, %d sites)",
			fromPprof.TotalEvents, len(fromPprof.Sites), fromJSONL.TotalEvents, len(fromJSONL.Sites))
	}
	for i := range fromPprof.Sites {
		if i < len(fromJSONL.Sites) && fromPprof.Sites[i].Site != fromJSONL.Sites[i].Site {
			t.Errorf("site %d: pprof %q vs jsonl %q", i, fromPprof.Sites[i].Site, fromJSONL.Sites[i].Site)
		}
	}
}

// TestMergeProfilesEmptyDir pins the no-op contract: a directory with no
// profile files merges to nothing without error.
func TestMergeProfilesEmptyDir(t *testing.T) {
	hot, err := MergeProfiles(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if hot != nil {
		t.Errorf("hot sites from empty dir: %v", hot)
	}
}
