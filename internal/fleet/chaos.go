package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// FaultPlan is the deterministic chaos harness: it injects panics, errors,
// and delays into unit attempts, and write errors into sink emissions, so
// the fault-tolerance machinery (panic isolation, retry, checkpointing) is
// itself exercised by tests and CI. Every decision is a pure function of
// (Seed, fault kind, unit key, attempt number) — a chaos run is exactly
// reproducible, and because runners are pure and retries re-derive the
// same rows, a chaos run whose units eventually succeed emits output
// byte-identical to a fault-free run.
type FaultPlan struct {
	// Seed drives every fault decision; vpfleet sets it to the run seed.
	Seed int64
	// PanicProb is the per-attempt probability of an injected panic
	// (exercising the fleet's recover path).
	PanicProb float64
	// ErrorProb is the per-attempt probability of an injected error.
	ErrorProb float64
	// DelayProb is the per-attempt probability of sleeping Delay before
	// the runner starts (exercising the watchdog and drain paths).
	DelayProb float64
	// Delay is the injected sleep duration.
	Delay time.Duration
	// SinkErrorProb is the probability of an injected write error when a
	// unit's rows reach the sink. It fires only on live emissions —
	// journaled entries replay clean, so a checkpointed run recovers on
	// resume.
	SinkErrorProb float64
	// FailAttempts caps which attempts are eligible for faults: attempts
	// numbered beyond it always run clean, so a retry budget of
	// FailAttempts+1 is guaranteed to converge. <=0 means 1 (only the
	// first attempt is faulted).
	FailAttempts int
}

func (p *FaultPlan) failAttempts() int {
	if p.FailAttempts <= 0 {
		return 1
	}
	return p.FailAttempts
}

// roll returns a uniform value in [0,1), deterministic in
// (Seed, kind, key, attempt).
func (p *FaultPlan) roll(kind, key string, attempt int) float64 {
	h := sha256.Sum256([]byte(fmt.Sprintf("chaos|%d|%s|%s|%d", p.Seed, kind, key, attempt)))
	return float64(binary.BigEndian.Uint64(h[:8])>>11) / float64(uint64(1)<<53)
}

// perturb applies the plan to one unit attempt: it may sleep, panic, or
// return an injected error. A nil plan (chaos off) is a no-op, as is any
// attempt beyond FailAttempts.
func (p *FaultPlan) perturb(key string, attempt int) error {
	if p == nil || attempt > p.failAttempts() {
		return nil
	}
	if p.DelayProb > 0 && p.Delay > 0 && p.roll("delay", key, attempt) < p.DelayProb {
		time.Sleep(p.Delay)
	}
	if p.PanicProb > 0 && p.roll("panic", key, attempt) < p.PanicProb {
		panic(fmt.Sprintf("chaos: injected panic (%s attempt %d)", key, attempt))
	}
	if p.ErrorProb > 0 && p.roll("error", key, attempt) < p.ErrorProb {
		return fmt.Errorf("chaos: injected error (%s attempt %d)", key, attempt)
	}
	return nil
}

// sinkFault decides whether the given unit's live sink emission fails.
func (p *FaultPlan) sinkFault(key string) error {
	if p == nil || p.SinkErrorProb <= 0 {
		return nil
	}
	if p.roll("sink", key, 1) < p.SinkErrorProb {
		return fmt.Errorf("chaos: injected sink error (%s)", key)
	}
	return nil
}

// ParseFaultPlan parses a vpfleet -chaos spec: comma-separated key=value
// pairs among panic, error, delay, sink (probabilities in [0,1]),
// delay_ms (injected sleep), and attempts (FailAttempts). The run seed
// becomes the plan seed, keeping chaos decisions reproducible per run.
//
//	panic=0.5,error=0.2,delay=0.3,delay_ms=50,sink=0.1,attempts=2
func ParseFaultPlan(spec string, seed int64) (*FaultPlan, error) {
	p := &FaultPlan{Seed: seed}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fleet: chaos field %q not of the form key=value", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: chaos field %s: bad value %q", name, val)
		}
		switch strings.TrimSpace(name) {
		case "panic":
			p.PanicProb = v
		case "error":
			p.ErrorProb = v
		case "delay":
			p.DelayProb = v
		case "delay_ms":
			p.Delay = time.Duration(v * float64(time.Millisecond))
		case "sink":
			p.SinkErrorProb = v
		case "attempts":
			p.FailAttempts = int(v)
		default:
			return nil, fmt.Errorf("fleet: unknown chaos field %q (have panic, error, delay, delay_ms, sink, attempts)", name)
		}
	}
	for _, prob := range []struct {
		name string
		v    float64
	}{{"panic", p.PanicProb}, {"error", p.ErrorProb}, {"delay", p.DelayProb}, {"sink", p.SinkErrorProb}} {
		if prob.v < 0 || prob.v > 1 {
			return nil, fmt.Errorf("fleet: chaos %s=%v outside [0,1]", prob.name, prob.v)
		}
	}
	if p.Delay < 0 {
		return nil, fmt.Errorf("fleet: negative chaos delay %v", p.Delay)
	}
	if p.DelayProb > 0 && p.Delay == 0 {
		p.Delay = 50 * time.Millisecond
	}
	return p, nil
}
