package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"telepresence/internal/core"
	"telepresence/internal/telemetry"
)

// readDir returns name → contents for every file in dir.
func readDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestTraceFilesDeterministicAcrossWorkers pins the fleet-level telemetry
// determinism contract: per-cell trace and metrics files are byte-identical
// whether the cells run sequentially or race across eight workers, because
// traces are keyed by virtual time and cell-derived seeds only.
func TestTraceFilesDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full burstloss sessions")
	}
	exps, err := Select("burstloss")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Quick(5)
	run := func(workers int) map[string][]byte {
		dir := t.TempDir()
		o := opts
		o.TraceDir, o.MetricsDir = dir, dir
		if _, err := Run(exps, o, Config{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return readDir(t, dir)
	}
	seq := run(1)
	par := run(8)

	if len(seq) == 0 {
		t.Fatal("no telemetry files written")
	}
	var traces int
	for name, b := range seq {
		pb, ok := par[name]
		if !ok {
			t.Errorf("parallel run missing %s", name)
			continue
		}
		if !bytes.Equal(b, pb) {
			t.Errorf("%s differs between workers=1 and workers=8", name)
		}
		if filepath.Ext(name) == ".jsonl" {
			traces++
			sum, err := telemetry.Summarize(bytes.NewReader(b))
			if err != nil {
				t.Errorf("%s does not validate: %v", name, err)
			} else if sum.Events == 0 {
				t.Errorf("%s is empty", name)
			}
		}
	}
	if want := len(par); len(seq) != want {
		t.Errorf("file count differs: %d vs %d", len(seq), want)
	}
	// One trace per default-grid cell.
	if want := exps[0].Reps(opts); traces != want {
		t.Errorf("%d trace files for %d cells", traces, want)
	}
}

// TestManifestTimingBreakdown pins the run-manifest throughput fields:
// per-experiment and run-level rows/sec derived from rows and wall time.
func TestManifestTimingBreakdown(t *testing.T) {
	results := []ExperimentResult{
		{
			Experiment: core.Experiment{Name: "a"},
			Rows:       make([]core.Row, 10),
			Reps:       2,
			Wall:       2 * time.Second,
		},
		{
			Experiment: core.Experiment{Name: "b"},
			Reps:       1,
			Err:        os.ErrClosed,
		},
	}
	m := NewManifest(core.Options{Seed: 1}, 4, 5*time.Second, results)
	if m.Format != ManifestFormat {
		t.Errorf("format %q", m.Format)
	}
	if m.Rows != 10 || m.RowsPerSec != 2 {
		t.Errorf("run totals rows=%d rows/sec=%g, want 10 and 2", m.Rows, m.RowsPerSec)
	}
	if m.Experiments[0].RowsPerSec != 5 {
		t.Errorf("experiment a rows/sec %g, want 5", m.Experiments[0].RowsPerSec)
	}
	if m.Experiments[1].RowsPerSec != 0 || m.Experiments[1].Error == "" {
		t.Errorf("failed experiment manifest %+v", m.Experiments[1])
	}
}

// TestSweepManifestCellTimings pins the sweep manifest's per-cell timing
// breakdown and run-level throughput.
func TestSweepManifestCellTimings(t *testing.T) {
	spec := SweepSpec{Target: "burstloss", Axes: []Axis{{Name: "loss_bad", Values: []float64{0.5, 0.9}}}}
	results := []SweepCellResult{
		{Cell: SweepCell{Index: 0, Label: "loss_bad-0.5"}, Rows: make([]core.Row, 1), Wall: 500 * time.Millisecond},
		{Cell: SweepCell{Index: 1, Label: "loss_bad-0.9"}, Rows: make([]core.Row, 3), Wall: time.Second},
	}
	m := NewSweepManifest(spec, core.Options{Seed: 1}, 2, 2*time.Second, results)
	if m.Format != SweepManifestFormat {
		t.Errorf("format %q", m.Format)
	}
	if m.Rows != 4 || m.RowsPerSec != 2 {
		t.Errorf("totals rows=%d rows/sec=%g", m.Rows, m.RowsPerSec)
	}
	if len(m.CellTimings) != 2 {
		t.Fatalf("%d cell timings", len(m.CellTimings))
	}
	sort.Slice(m.CellTimings, func(i, j int) bool { return m.CellTimings[i].Index < m.CellTimings[j].Index })
	c0, c1 := m.CellTimings[0], m.CellTimings[1]
	if c0.Label != "loss_bad-0.5" || c0.Rows != 1 || c0.WallMs != 500 || c0.RowsPerSec != 2 {
		t.Errorf("cell 0 %+v", c0)
	}
	if c1.Label != "loss_bad-0.9" || c1.Rows != 3 || c1.WallMs != 1000 || c1.RowsPerSec != 3 {
		t.Errorf("cell 1 %+v", c1)
	}
}
