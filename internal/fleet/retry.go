package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"telepresence/internal/core"
)

// ErrInterrupted marks work skipped or abandoned by a graceful drain: the
// run stopped dispatching, finished what was in flight, and every completed
// unit is preserved (journaled when a checkpoint is configured). A run that
// returns an error satisfying errors.Is(err, ErrInterrupted) can be resumed
// from its journal.
var ErrInterrupted = errors.New("fleet: interrupted (resumable)")

// ErrUnitTimeout marks an attempt abandoned by the per-cell watchdog
// (RetryPolicy.PerCellTimeout).
var ErrUnitTimeout = errors.New("fleet: unit timed out")

// RetryPolicy bounds how stubbornly the fleet re-runs a failing or hung
// work unit (an experiment repetition or a sweep cell). Because runners are
// pure — all randomness derives from the seed and the unit's identity —
// a retried unit produces byte-identical rows to one that succeeded first
// try, so retries never perturb results.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per unit, first run
	// included; <=0 means 1 (no retry).
	MaxAttempts int
	// PerCellTimeout is a wall-clock watchdog per attempt: an attempt
	// still running after this long is abandoned and counted as a
	// failure. The runner goroutine is left to finish in the background —
	// runners are pure, so its eventual result is simply discarded.
	// 0 disables the watchdog.
	PerCellTimeout time.Duration
	// Backoff is the wall-clock delay before the second attempt; it
	// doubles on each further attempt. 0 retries immediately.
	Backoff time.Duration
}

// maxAttempts resolves the policy's attempt budget.
func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// backoffBefore returns the sleep preceding the given 1-based attempt:
// Backoff before attempt 2, doubling each attempt after that.
func (p RetryPolicy) backoffBefore(attempt int) time.Duration {
	if p.Backoff <= 0 || attempt < 2 {
		return 0
	}
	d := p.Backoff
	for i := 2; i < attempt && d < time.Minute; i++ {
		d *= 2
	}
	return d
}

// UnitFailure records one unit's terminal failure for manifests: which
// unit, what it said, the captured panic stack if it crashed, and how many
// attempts were spent on it.
type UnitFailure struct {
	Unit     string `json:"unit"`
	Error    string `json:"error"`
	Stack    string `json:"stack,omitempty"`
	Attempts int    `json:"attempts"`
}

// attemptResult carries one attempt's outcome across the watchdog channel.
type attemptResult struct {
	rows  []core.Row
	err   error
	stack string
}

// runAttempt executes a single attempt of u: chaos faults first (the plan
// may sleep, return an injected error, or panic), then the runner itself,
// all inside a recover() so a panicking runner becomes an error with its
// stack captured instead of killing the process. A positive timeout arms
// the watchdog; on expiry the attempt is abandoned (the goroutine keeps
// running but its result is discarded via the buffered channel).
func runAttempt(u unit, plan *FaultPlan, attempt int, timeout time.Duration) attemptResult {
	ch := make(chan attemptResult, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- attemptResult{
					err:   fmt.Errorf("panic: %v", p),
					stack: string(debug.Stack()),
				}
			}
		}()
		if err := plan.perturb(u.key, attempt); err != nil {
			ch <- attemptResult{err: err}
			return
		}
		var rows []core.Row
		var err error
		// Label the unit for CPU profiling: -cpuprofile samples attribute
		// to (experiment, cell) instead of an undifferentiated pool.
		pprof.Do(context.Background(), pprof.Labels(u.labels...), func(context.Context) {
			rows, err = u.run()
		})
		ch <- attemptResult{rows: rows, err: err}
	}()
	if timeout <= 0 {
		return <-ch
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r
	case <-t.C:
		return attemptResult{err: fmt.Errorf("%w: attempt %d still running after %v (abandoned)",
			ErrUnitTimeout, attempt, timeout)}
	}
}

// executeUnit runs unit i to completion under cfg's retry policy: up to
// MaxAttempts tries, exponential backoff between them, each attempt under
// the watchdog and panic isolation. Backoff sleeps abort on interrupt so a
// graceful drain is not held up by a retry schedule. Attempt lifecycle
// events (started, panicked, timed out, retried-with-backoff) publish to
// cfg.Monitor when one is attached.
func executeUnit(i int, u unit, cfg Config, interrupt <-chan struct{}) unitOutcome {
	start := time.Now()
	max := cfg.Retry.maxAttempts()
	var last attemptResult
	for attempt := 1; attempt <= max; attempt++ {
		if d := cfg.Retry.backoffBefore(attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-interrupt:
				t.Stop()
				return unitOutcome{err: ErrInterrupted, attempts: attempt - 1, wall: time.Since(start)}
			}
		}
		cfg.publish(MonitorEvent{Kind: EventAttemptStarted, Unit: i, Key: u.key, Attempt: attempt})
		last = runAttempt(u, cfg.Chaos, attempt, cfg.Retry.PerCellTimeout)
		if last.err == nil {
			return unitOutcome{rows: last.rows, attempts: attempt, wall: time.Since(start)}
		}
		if cfg.Monitor != nil {
			switch {
			case last.stack != "":
				cfg.publish(MonitorEvent{Kind: EventUnitPanicked, Unit: i, Key: u.key,
					Attempt: attempt, Err: last.err, Stack: last.stack})
			case errors.Is(last.err, ErrUnitTimeout):
				cfg.publish(MonitorEvent{Kind: EventUnitTimedOut, Unit: i, Key: u.key,
					Attempt: attempt, Err: last.err})
			}
			if attempt < max {
				cfg.publish(MonitorEvent{Kind: EventUnitRetried, Unit: i, Key: u.key,
					Attempt: attempt, Err: last.err, Backoff: cfg.Retry.backoffBefore(attempt + 1)})
			}
		}
	}
	return unitOutcome{
		err:      fmt.Errorf("fleet: %s failed after %d attempt(s): %w", u.key, max, last.err),
		stack:    last.stack,
		attempts: max,
		wall:     time.Since(start),
	}
}
