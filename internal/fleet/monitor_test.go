package fleet

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"telepresence/internal/core"
)

// recordingMonitor captures every published event; safe for the engine's
// concurrent publishers.
type recordingMonitor struct {
	mu     sync.Mutex
	events []MonitorEvent
}

func (m *recordingMonitor) Event(ev MonitorEvent) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
}

// byKind returns the captured events of one kind, in capture order.
func (m *recordingMonitor) byKind(k EventKind) []MonitorEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []MonitorEvent
	for _, ev := range m.events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// TestMonitorLifecycleEvents: a clean run publishes the full event
// skeleton — one RunStarted with the unit universe, one Dispatched /
// AttemptStarted / UnitDone / RowsEmitted per unit, and a final RunDone —
// with unit indices and keys that match dispatch order.
func TestMonitorLifecycleEvents(t *testing.T) {
	mon := &recordingMonitor{}
	exp, _ := flakyExperiment("steady", 4, 0, false)
	res, err := Run([]core.Experiment{exp}, core.Quick(1), Config{Workers: 2, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].RowCount != 8 {
		t.Fatalf("rows = %d, want 8", res[0].RowCount)
	}

	started := mon.byKind(EventRunStarted)
	if len(started) != 1 || started[0].Units != 4 || started[0].Unit != -1 {
		t.Errorf("RunStarted = %+v, want one event with Units=4 Unit=-1", started)
	}
	for _, tc := range []struct {
		kind EventKind
		name string
	}{
		{EventUnitDispatched, "Dispatched"},
		{EventAttemptStarted, "AttemptStarted"},
		{EventUnitDone, "UnitDone"},
		{EventRowsEmitted, "RowsEmitted"},
	} {
		evs := mon.byKind(tc.kind)
		if len(evs) != 4 {
			t.Fatalf("%d %s events, want 4", len(evs), tc.name)
		}
		seen := map[int]bool{}
		for _, ev := range evs {
			if !strings.HasPrefix(ev.Key, "run/steady/rep") {
				t.Errorf("%s key = %q", tc.name, ev.Key)
			}
			if ev.Unit < 0 || ev.Unit > 3 || seen[ev.Unit] {
				t.Errorf("%s unit = %d (duplicate or out of range)", tc.name, ev.Unit)
			}
			seen[ev.Unit] = true
		}
	}
	for _, ev := range mon.byKind(EventUnitDone) {
		if ev.Err != nil || ev.Rows != 2 || ev.Attempt != 1 || ev.Wall < 0 {
			t.Errorf("UnitDone = %+v, want clean 2-row single-attempt outcome", ev)
		}
	}
	// RowsEmitted follows sink order: unit indices ascending.
	emitted := mon.byKind(EventRowsEmitted)
	for i, ev := range emitted {
		if ev.Unit != i {
			t.Errorf("RowsEmitted[%d].Unit = %d, want %d (ordered emission)", i, ev.Unit, i)
		}
	}
	done := mon.byKind(EventRunDone)
	if len(done) != 1 || done[0].Err != nil {
		t.Errorf("RunDone = %+v, want exactly one clean event", done)
	}
	mon.mu.Lock()
	last := mon.events[len(mon.events)-1]
	mon.mu.Unlock()
	if last.Kind != EventRunDone {
		t.Errorf("last event kind = %d, want EventRunDone", last.Kind)
	}
	if len(mon.byKind(EventInterrupted)) != 0 {
		t.Error("clean run published EventInterrupted")
	}
}

// TestMonitorRetryPanicEvents: panicking attempts publish UnitPanicked
// (with the recovered stack) and UnitRetried (with the backoff preceding
// the next attempt), and the terminal UnitDone still reports success once
// retries converge.
func TestMonitorRetryPanicEvents(t *testing.T) {
	mon := &recordingMonitor{}
	exp, _ := flakyExperiment("crashy", 2, 1, true) // each rep panics once
	cfg := Config{Workers: 2, Monitor: mon,
		Retry: RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}}
	if _, err := Run([]core.Experiment{exp}, core.Quick(1), cfg); err != nil {
		t.Fatalf("retries did not converge: %v", err)
	}

	panics := mon.byKind(EventUnitPanicked)
	if len(panics) != 2 {
		t.Fatalf("%d UnitPanicked events, want 2 (one per rep)", len(panics))
	}
	for _, ev := range panics {
		if ev.Attempt != 1 || ev.Err == nil || !strings.Contains(ev.Stack, "goroutine") {
			t.Errorf("UnitPanicked = attempt %d err %v stack %d bytes", ev.Attempt, ev.Err, len(ev.Stack))
		}
	}
	retries := mon.byKind(EventUnitRetried)
	if len(retries) != 2 {
		t.Fatalf("%d UnitRetried events, want 2", len(retries))
	}
	for _, ev := range retries {
		if ev.Attempt != 1 || ev.Backoff != time.Millisecond {
			t.Errorf("UnitRetried = attempt %d backoff %v, want 1 / 1ms", ev.Attempt, ev.Backoff)
		}
	}
	if got := len(mon.byKind(EventAttemptStarted)); got != 4 {
		t.Errorf("%d AttemptStarted events, want 4 (2 reps x 2 attempts)", got)
	}
	for _, ev := range mon.byKind(EventUnitDone) {
		if ev.Err != nil || ev.Attempt != 2 {
			t.Errorf("terminal UnitDone = %+v, want clean second-attempt outcome", ev)
		}
	}
}

// TestMonitorTimeout: a watchdog-abandoned attempt publishes UnitTimedOut
// and the exhausted unit's UnitDone carries ErrUnitTimeout.
func TestMonitorTimeout(t *testing.T) {
	mon := &recordingMonitor{}
	hang := core.Experiment{
		Name: "hang", Desc: "test", Row: 0,
		Reps: func(core.Options) int { return 1 },
		Run: func(core.Options, int) ([]core.Row, error) {
			time.Sleep(10 * time.Second)
			return []core.Row{0}, nil
		},
	}
	cfg := Config{Workers: 1, Monitor: mon,
		Retry: RetryPolicy{MaxAttempts: 1, PerCellTimeout: 30 * time.Millisecond}}
	if _, err := Run([]core.Experiment{hang}, core.Quick(1), cfg); !errors.Is(err, ErrUnitTimeout) {
		t.Fatalf("err = %v, want ErrUnitTimeout", err)
	}
	timeouts := mon.byKind(EventUnitTimedOut)
	if len(timeouts) != 1 || !errors.Is(timeouts[0].Err, ErrUnitTimeout) {
		t.Fatalf("UnitTimedOut events = %+v, want one carrying ErrUnitTimeout", timeouts)
	}
	dones := mon.byKind(EventUnitDone)
	if len(dones) != 1 || !errors.Is(dones[0].Err, ErrUnitTimeout) {
		t.Errorf("UnitDone = %+v, want terminal timeout", dones)
	}
}

// TestMonitorJournalHit: a resumed run publishes JournalHit (not
// Dispatched/AttemptStarted) for every journaled unit, with the journaled
// row and attempt counts.
func TestMonitorJournalHit(t *testing.T) {
	spec := testSweepSpec()
	opts := core.Quick(7)
	dir := t.TempDir()

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := streamSweepJSONL(t, spec, opts, Config{Workers: 4, Checkpoint: j}); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	mon := &recordingMonitor{}
	cfg := Config{Workers: 4, Checkpoint: j2, Resume: true, Monitor: mon}
	if _, _, err := streamSweepJSONL(t, spec, opts, cfg); err != nil {
		t.Fatal(err)
	}

	hits := mon.byKind(EventJournalHit)
	if len(hits) != 12 {
		t.Fatalf("%d JournalHit events, want 12 (every cell journaled)", len(hits))
	}
	for _, ev := range hits {
		if ev.Rows != 1 || ev.Attempt != 1 || !strings.HasPrefix(ev.Key, "sweep/synth-sweep/") {
			t.Errorf("JournalHit = %+v", ev)
		}
	}
	if got := len(mon.byKind(EventUnitDispatched)); got != 0 {
		t.Errorf("%d Dispatched events on a fully journaled run, want 0", got)
	}
	if got := len(mon.byKind(EventAttemptStarted)); got != 0 {
		t.Errorf("%d AttemptStarted events on a fully journaled run, want 0", got)
	}
	if got := len(mon.byKind(EventRowsEmitted)); got != 12 {
		t.Errorf("%d RowsEmitted events, want 12 (replayed entries still emit)", got)
	}
}

// TestMonitorInterrupted: an interrupt closed before dispatch publishes
// EventInterrupted, and every never-started unit's UnitDone carries
// ErrInterrupted (the resumable-skip contract).
func TestMonitorInterrupted(t *testing.T) {
	mon := &recordingMonitor{}
	interrupt := make(chan struct{})
	close(interrupt)
	exp, _ := flakyExperiment("skippy", 3, 0, false)
	_, err := RunStream([]core.Experiment{exp}, core.Quick(1),
		Config{Workers: 2, Monitor: mon, Interrupt: interrupt},
		func(core.Experiment) (Sink, error) { return NewJSONLSink(&bytes.Buffer{}), nil })
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if got := len(mon.byKind(EventInterrupted)); got != 1 {
		t.Fatalf("%d EventInterrupted, want 1", got)
	}
	dones := mon.byKind(EventUnitDone)
	if len(dones) != 3 {
		t.Fatalf("%d UnitDone events, want 3 (skipped units still report)", len(dones))
	}
	for _, ev := range dones {
		if !errors.Is(ev.Err, ErrInterrupted) {
			t.Errorf("skipped unit %q err = %v, want ErrInterrupted", ev.Key, ev.Err)
		}
	}
	if last := mon.byKind(EventRunDone); len(last) != 1 {
		t.Errorf("%d RunDone events, want 1", len(last))
	}
}

// TestMonitorWindowGauges: window events report non-negative occupancy
// bounded by the configured window.
func TestMonitorWindowGauges(t *testing.T) {
	mon := &recordingMonitor{}
	spec := testSweepSpec()
	cfg := Config{Workers: 4, Window: 6, Monitor: mon}
	if _, _, err := streamSweepJSONL(t, spec, core.Quick(7), cfg); err != nil {
		t.Fatal(err)
	}
	windows := mon.byKind(EventWindow)
	if len(windows) == 0 {
		t.Fatal("no EventWindow published")
	}
	for _, ev := range windows {
		if ev.InFlight < 0 || ev.Buffered < 0 || ev.InFlight+ev.Buffered > 6 {
			t.Errorf("window gauges InFlight=%d Buffered=%d exceed window 6", ev.InFlight, ev.Buffered)
		}
	}
}

// TestNilMonitorNoAllocsOnDispatch is the inertness pin: with no monitor
// attached, publishing an event — what the dispatch path does per unit —
// allocates nothing.
func TestNilMonitorNoAllocsOnDispatch(t *testing.T) {
	cfg := Config{}
	key := "sweep/synth-sweep/a=1"
	allocs := testing.AllocsPerRun(1000, func() {
		cfg.publish(MonitorEvent{Kind: EventUnitDispatched, Unit: 3, Key: key})
		cfg.publish(MonitorEvent{Kind: EventUnitDone, Unit: 3, Key: key, Attempt: 1, Rows: 2})
	})
	if allocs != 0 {
		t.Errorf("nil-monitor publish allocates %.1f per unit, want 0", allocs)
	}
}

// TestMonitoredRunBytesIdentical is observe-never-steer: attaching a
// monitor changes no emitted byte at any worker count.
func TestMonitoredRunBytesIdentical(t *testing.T) {
	spec := testSweepSpec()
	opts := core.Quick(7)
	bare, _, err := streamSweepJSONL(t, spec, opts, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		mon := &recordingMonitor{}
		got, _, err := streamSweepJSONL(t, spec, opts, Config{Workers: workers, Monitor: mon})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(bare, got) {
			t.Errorf("workers=%d monitored bytes diverge from bare run", workers)
		}
		if len(mon.byKind(EventRowsEmitted)) != 12 {
			t.Errorf("workers=%d monitor missed emissions", workers)
		}
	}
}
