package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"telepresence/internal/core"
)

// init registers a throwaway sweep target whose rows echo the cell
// parameters and the derived seed, proving sharding and seed derivation
// without the cost of real sessions.
func init() {
	core.RegisterSweep(core.SweepTarget{
		Name: "synth-sweep", Desc: "test target",
		Row: map[string]float64{},
		Params: []core.SweepParam{
			{Name: "a", Default: 1},
			{Name: "b", Default: 2},
			{Name: "c", Default: 30},
		},
		Run: func(opts core.Options, params map[string]float64) ([]core.Row, error) {
			cell := core.SweepCellOptions(opts, "synth-sweep", params)
			row := map[string]float64{
				"a": params["a"], "b": params["b"], "c": params["c"],
				"seed": float64(cell.Seed % 1e6),
			}
			if params["a"] == -2 {
				panic("synthetic panic")
			}
			if params["a"] < 0 {
				return nil, fmt.Errorf("synthetic failure")
			}
			return []core.Row{row}, nil
		},
	})
}

func TestSweepSpecValidate(t *testing.T) {
	ok := SweepSpec{Target: "synth-sweep", Axes: []Axis{{Name: "a", Values: []float64{1, 2}}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []SweepSpec{
		{Target: "nope", Axes: []Axis{{Name: "a", Values: []float64{1}}}},
		{Target: "synth-sweep"},
		{Target: "synth-sweep", Axes: []Axis{{Name: "zz", Values: []float64{1}}}},
		{Target: "synth-sweep", Axes: []Axis{{Name: "a", Values: nil}}},
		{Target: "synth-sweep", Axes: []Axis{
			{Name: "a", Values: []float64{1}}, {Name: "a", Values: []float64{2}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
		if _, err := RunSweep(s, core.Quick(1), Config{}); err == nil {
			t.Errorf("RunSweep accepted bad spec %d", i)
		}
	}
}

func TestSweepCellsEnumeration(t *testing.T) {
	spec := SweepSpec{Target: "synth-sweep", Axes: []Axis{
		{Name: "a", Values: []float64{1, 2}},
		{Name: "b", Values: []float64{10, 20, 30}},
	}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := spec.Cells()
	if len(cells) != 6 {
		t.Fatalf("%d cells, want 6", len(cells))
	}
	// Row-major: first axis slowest, defaults filled for c.
	want := []struct{ a, b float64 }{{1, 10}, {1, 20}, {1, 30}, {2, 10}, {2, 20}, {2, 30}}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
		if c.Params["a"] != want[i].a || c.Params["b"] != want[i].b {
			t.Errorf("cell %d params %v, want a=%v b=%v", i, c.Params, want[i].a, want[i].b)
		}
		if c.Params["c"] != 30 {
			t.Errorf("cell %d missing default c=30: %v", i, c.Params)
		}
		if c.Label != fmt.Sprintf("a=%g,b=%g,c=30", want[i].a, want[i].b) {
			t.Errorf("cell %d label %q", i, c.Label)
		}
	}
}

func sweepJSONL(t *testing.T, results []SweepCellResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSweep(results, NewJSONLSink(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSweepDeterminismAcrossWorkers(t *testing.T) {
	spec := SweepSpec{Target: "synth-sweep", Axes: []Axis{
		{Name: "a", Values: []float64{1, 2, 3}},
		{Name: "b", Values: []float64{10, 20}},
	}}
	opts := core.Quick(7)
	seq, err := RunSweep(spec, opts, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSweep(spec, opts, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	w, g := sweepJSONL(t, seq), sweepJSONL(t, par)
	if !bytes.Equal(w, g) {
		t.Errorf("workers=1 and workers=8 sweep output differ\nseq: %s\npar: %s", w, g)
	}
	if len(seq) != 6 {
		t.Fatalf("%d results, want 6", len(seq))
	}
}

func TestSweepSeedsDependOnValuesNotPosition(t *testing.T) {
	// The same parameter values must yield the same rows in any grid shape.
	wide := SweepSpec{Target: "synth-sweep", Axes: []Axis{
		{Name: "a", Values: []float64{1, 2, 3, 4}}}}
	narrow := SweepSpec{Target: "synth-sweep", Axes: []Axis{
		{Name: "a", Values: []float64{3}}}}
	opts := core.Quick(5)
	rw, err := RunSweep(wide, opts, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := RunSweep(narrow, opts, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantRow := rw[2].Rows[0].(map[string]float64) // a=3 at index 2
	gotRow := rn[0].Rows[0].(map[string]float64)  // a=3 at index 0
	if wantRow["seed"] != gotRow["seed"] || wantRow["a"] != gotRow["a"] {
		t.Errorf("cell a=3 differs by grid position: %v vs %v", wantRow, gotRow)
	}
	// Different values get different seeds.
	if s0, s1 := rw[0].Rows[0].(map[string]float64)["seed"], rw[1].Rows[0].(map[string]float64)["seed"]; s0 == s1 {
		t.Errorf("distinct cells share a derived seed: %v", s0)
	}
}

func TestSweepCellFailureIsolated(t *testing.T) {
	spec := SweepSpec{Target: "synth-sweep", Axes: []Axis{
		{Name: "a", Values: []float64{-1, 1}}}}
	results, err := RunSweep(spec, core.Quick(1), Config{Workers: 2})
	if err == nil {
		t.Fatal("failing cell produced no error")
	}
	if results[0].Err == nil || results[1].Err != nil {
		t.Errorf("failure not isolated to cell 0: %v / %v", results[0].Err, results[1].Err)
	}
	if len(results[1].Rows) != 1 {
		t.Errorf("surviving cell lost its rows")
	}
	out := sweepJSONL(t, results)
	if n := bytes.Count(out, []byte("\n")); n != 1 {
		t.Errorf("sink saw %d rows, want 1 (failed cell skipped)", n)
	}
}

func TestSweepManifest(t *testing.T) {
	spec := SweepSpec{Target: "synth-sweep", Axes: []Axis{
		{Name: "a", Values: []float64{1, 2}}}}
	opts := core.Quick(9)
	results, err := RunSweep(spec, opts, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := NewSweepManifest(spec, opts, 2, 0, results)
	if m.Format != SweepManifestFormat || m.Target != "synth-sweep" ||
		m.Seed != 9 || m.Cells != 2 || m.Rows != 2 || len(m.Axes) != 1 {
		t.Errorf("manifest wrong: %+v", m)
	}
	if _, err := json.Marshal(m); err != nil {
		t.Errorf("manifest not serializable: %v", err)
	}
}

// TestSweepTargetsRegistered pins the three scenario sweep targets the CLI
// documents.
func TestSweepTargetsRegistered(t *testing.T) {
	for _, name := range []string{"handover", "burstloss", "congestion"} {
		tgt, ok := core.LookupSweep(name)
		if !ok {
			t.Errorf("sweep target %q not registered", name)
			continue
		}
		if len(tgt.Params) == 0 || tgt.Row == nil {
			t.Errorf("sweep target %q incomplete: %+v", name, tgt)
		}
	}
}

// TestScenarioSweepMatchesExperiment proves the dual registration: a sweep
// cell at the registry experiment's grid value produces the experiment's
// row byte-for-byte (shared seed derivation from parameter values).
func TestScenarioSweepMatchesExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real session")
	}
	opts := testOpts(1)
	spec := SweepSpec{Target: "handover", Axes: []Axis{
		{Name: "delay_ms", Values: []float64{core.DefaultHandoverDelaysMs()[0]}}}}
	sweep, err := RunSweep(spec, opts, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	exp, _ := core.Lookup("handover")
	rows, err := exp.Run(opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(sweep[0].Rows[0])
	b, _ := json.Marshal(rows[0])
	if !bytes.Equal(a, b) {
		t.Errorf("sweep cell and experiment rep diverge:\nsweep: %s\nexp:   %s", a, b)
	}
}

// TestCCRateSweepDeterminism pins the closed-loop experiments' worker
// invariance on a real grid: two ccrate cells (open-loop vs delay-gradient
// at the same cap) must emit byte-identical rows at any worker count. The
// full-suite TestDeterminismAcrossWorkers covers the complete ccrate and
// ccramp grids in non-short runs; this small grid keeps the guarantee
// exercised in -short CI too.
func TestCCRateSweepDeterminism(t *testing.T) {
	spec := SweepSpec{Target: "ccrate", Axes: []Axis{
		{Name: "controller", Values: []float64{0, 2}},
		{Name: "cap_mbps", Values: []float64{0.9}},
	}}
	opts := core.Quick(3)
	seq, err := RunSweep(spec, opts, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSweep(spec, opts, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, g := sweepJSONL(t, seq), sweepJSONL(t, par)
	if !bytes.Equal(w, g) {
		t.Errorf("workers=1 and workers=2 ccrate sweep output differ\nseq: %s\npar: %s", w, g)
	}
	// The two controllers must actually diverge (the loop is closed).
	open := seq[0].Rows[0].(core.CCRateRow)
	gcc := seq[1].Rows[0].(core.CCRateRow)
	if open.Controller != "fixed" || gcc.Controller != "gcc" {
		t.Fatalf("controller labels wrong: %q, %q", open.Controller, gcc.Controller)
	}
	if gcc.UnavailableFrac >= open.UnavailableFrac {
		t.Errorf("closed loop (%.3f) not more available than open loop (%.3f) under the same cap",
			gcc.UnavailableFrac, open.UnavailableFrac)
	}
}
