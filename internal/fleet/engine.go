package fleet

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"telepresence/internal/core"
)

// unit is one schedulable work item: an experiment repetition or a sweep
// cell. Units are pure (all randomness derives from the seed and the
// unit's identity), which is what makes retry, resume, and worker-count
// invariance cheap — a unit's rows are the same wherever and whenever it
// runs.
type unit struct {
	// key is the unit's stable identity ("run/fig4/rep0",
	// "sweep/handover/delay_ms=100"); with the options scope it forms the
	// journal key and seeds chaos decisions.
	key string
	// labels are pprof label pairs attached while the unit runs.
	labels []string
	run    func() ([]core.Row, error)
}

// unitOutcome is a unit's terminal result after retries (or a journal
// replay).
type unitOutcome struct {
	rows     []core.Row    // live success: the typed rows
	entry    *JournalEntry // resumed: the pre-encoded rows (rows is nil)
	err      error
	stack    string // captured panic stack, when the failure was a panic
	attempts int
	wall     time.Duration
	resumed  bool
}

// rowCount works for both live and resumed outcomes.
func (o unitOutcome) rowCount() int {
	if o.entry != nil {
		return o.entry.Rows
	}
	return len(o.rows)
}

// engineReport is runOrdered's internal accounting, surfaced to tests via
// Config.onReport.
type engineReport struct {
	interrupted bool
	resumed     int
	// maxBuffered is the high-water mark of completed-but-unemitted
	// units (the reorder buffer); bounded by the dispatch window.
	maxBuffered int
}

// runOrdered executes units under cfg's pool, retry policy, chaos plan and
// journal, calling emit exactly once per unit in index order as soon as the
// unit and all its predecessors have resolved. Guarantees:
//
//   - Dispatch is index-ordered and window-gated: at most window units are
//     in flight or completed-but-unemitted, so streamed memory is bounded
//     by the window, not the run size.
//   - Completed units journal immediately (order-independent, keyed
//     writes), so an interrupt or crash never loses finished work even
//     when emission hasn't reached the unit yet.
//   - With cfg.Resume, journaled units are served without running; they
//     flow through emission in order like live ones.
//   - On interrupt, no new units start; in-flight units finish, journal,
//     and emit; never-started units emit with ErrInterrupted.
//   - An emit error aborts the run: dispatch stops, in-flight work drains,
//     and no further emit calls are made.
func runOrdered(units []unit, scope string, cfg Config, emit func(i int, o unitOutcome) error) (engineReport, error) {
	var rep engineReport
	n := len(units)
	if n == 0 {
		return rep, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	window := cfg.Window
	if window <= 0 {
		window = 4 * workers
	}
	// The window is a hard memory bound; extra workers beyond it could
	// never all be in flight, so shrink the pool rather than the promise.
	if workers > window {
		workers = window
	}

	interrupt := cfg.Interrupt
	stop := make(chan struct{}) // closed on emit error: stop dispatching
	var stopOnce sync.Once

	// dispatchedN feeds the window-occupancy events; the counter itself is
	// engine accounting (an atomic add, no allocation) and the events only
	// fire when a monitor is attached.
	var dispatchedN atomic.Int64
	cfg.publish(MonitorEvent{Kind: EventRunStarted, Unit: -1, Units: n})

	type indexed struct {
		i int
		o unitOutcome
	}
	tasks := make(chan int)
	done := make(chan indexed)
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				o := executeUnit(i, units[i], cfg, interrupt)
				if o.err == nil && cfg.Checkpoint != nil {
					if e, err := encodeEntry(units[i].key, scope, o.attempts, o.rows); err != nil {
						o.err = err
					} else if err := cfg.Checkpoint.Write(e); err != nil {
						o.err = err
					}
				}
				cfg.publish(MonitorEvent{Kind: EventUnitDone, Unit: i, Key: units[i].key,
					Attempt: o.attempts, Rows: len(o.rows), Wall: o.wall, Err: o.err, Stack: o.stack})
				done <- indexed{i, o}
			}
		}()
	}

	// Dispatcher: in index order, one window token per unit. Journal hits
	// bypass the worker pool but still ride the done channel so emission
	// interleaves them in order.
	dispatched := make(chan struct{})
	go func() {
		defer close(dispatched)
		defer close(tasks)
		for i := 0; i < n; i++ {
			// Priority check: a closed interrupt/stop must win over an
			// available token, or a drain could keep dispatching for as
			// long as the random select favors the token case.
			select {
			case <-interrupt:
				cfg.publish(MonitorEvent{Kind: EventInterrupted, Unit: -1})
				return
			case <-stop:
				return
			default:
			}
			select {
			case <-tokens:
			case <-interrupt:
				cfg.publish(MonitorEvent{Kind: EventInterrupted, Unit: -1})
				return
			case <-stop:
				return
			}
			if cfg.Resume && cfg.Checkpoint != nil {
				if e, ok := cfg.Checkpoint.Lookup(units[i].key, scope); ok {
					dispatchedN.Add(1)
					cfg.publish(MonitorEvent{Kind: EventJournalHit, Unit: i, Key: units[i].key,
						Attempt: e.Attempts, Rows: e.Rows})
					select {
					case done <- indexed{i, unitOutcome{entry: e, attempts: e.Attempts, resumed: true}}:
					case <-stop:
						return
					}
					continue
				}
			}
			dispatchedN.Add(1)
			cfg.publish(MonitorEvent{Kind: EventUnitDispatched, Unit: i, Key: units[i].key})
			select {
			case tasks <- i:
			case <-interrupt:
				cfg.publish(MonitorEvent{Kind: EventInterrupted, Unit: -1})
				return
			case <-stop:
				return
			}
		}
	}()
	go func() {
		<-dispatched
		wg.Wait()
		close(done)
	}()

	// Collector: buffer out-of-order completions, emit the contiguous
	// prefix, release window tokens per emitted unit.
	next := 0
	buf := map[int]unitOutcome{}
	var emitErr error
	flush := func() {
		for {
			o, ok := buf[next]
			if !ok {
				return
			}
			delete(buf, next)
			if o.resumed {
				rep.resumed++
			}
			if errors.Is(o.err, ErrInterrupted) {
				rep.interrupted = true
			}
			if emitErr == nil {
				if err := emit(next, o); err != nil {
					emitErr = err
					stopOnce.Do(func() { close(stop) })
				} else if o.err == nil {
					cfg.publish(MonitorEvent{Kind: EventRowsEmitted, Unit: next,
						Key: units[next].key, Rows: o.rowCount()})
				}
			}
			next++
			tokens <- struct{}{}
		}
	}
	for ix := range done {
		buf[ix.i] = ix.o
		if len(buf) > rep.maxBuffered {
			rep.maxBuffered = len(buf)
		}
		flush()
		if cfg.Monitor != nil {
			cfg.publish(MonitorEvent{Kind: EventWindow, Unit: -1,
				InFlight: int(dispatchedN.Load()) - next - len(buf), Buffered: len(buf)})
		}
	}
	flush()

	// Units never dispatched (a contiguous suffix, since dispatch is
	// index-ordered) were skipped by an interrupt or an emit abort.
	if next < n {
		rep.interrupted = true
		for ; next < n; next++ {
			cfg.publish(MonitorEvent{Kind: EventUnitDone, Unit: next, Key: units[next].key,
				Err: ErrInterrupted})
			if emitErr == nil {
				if err := emit(next, unitOutcome{err: ErrInterrupted}); err != nil {
					emitErr = err
				}
			}
		}
	}
	cfg.publish(MonitorEvent{Kind: EventRunDone, Unit: -1, Err: emitErr})
	if cfg.onReport != nil {
		cfg.onReport(rep)
	}
	return rep, emitErr
}
