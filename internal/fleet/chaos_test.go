package fleet

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"telepresence/internal/core"
)

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("panic=0.5,error=0.25,delay=0.1,delay_ms=20,sink=0.75,attempts=2", 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.PanicProb != 0.5 || p.ErrorProb != 0.25 || p.DelayProb != 0.1 ||
		p.Delay != 20*time.Millisecond || p.SinkErrorProb != 0.75 || p.FailAttempts != 2 {
		t.Errorf("parsed plan wrong: %+v", p)
	}
	// DelayProb without delay_ms gets a default delay.
	p, err = ParseFaultPlan("delay=1", 1)
	if err != nil || p.Delay == 0 {
		t.Errorf("delay default not applied: %+v (%v)", p, err)
	}
	for _, bad := range []string{"panic", "panic=x", "panic=1.5", "wat=1", "delay_ms=-5"} {
		if _, err := ParseFaultPlan(bad, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestChaosDeterministic: fault decisions are pure functions of
// (seed, kind, key, attempt) — the same plan rolls the same outcomes, and
// a different seed rolls a different pattern somewhere.
func TestChaosDeterministic(t *testing.T) {
	a := &FaultPlan{Seed: 3}
	b := &FaultPlan{Seed: 3}
	c := &FaultPlan{Seed: 4}
	same, diff := true, false
	for i := 0; i < 64; i++ {
		key := "sweep/x/cell" + string(rune('a'+i%26))
		if a.roll("panic", key, 1) != b.roll("panic", key, 1) {
			same = false
		}
		if a.roll("panic", key, 1) != c.roll("panic", key, 1) {
			diff = true
		}
	}
	if !same {
		t.Error("identical plans rolled different outcomes")
	}
	if !diff {
		t.Error("different seeds rolled identical outcomes everywhere")
	}
	// Rolls are roughly uniform: an always/never pattern would make the
	// probability knobs meaningless.
	hits := 0
	p := &FaultPlan{Seed: 9, ErrorProb: 0.5}
	for i := 0; i < 200; i++ {
		if p.roll("error", "unit"+string(rune('0'+i%10)), i) < 0.5 {
			hits++
		}
	}
	if hits < 60 || hits > 140 {
		t.Errorf("roll uniformity suspect: %d/200 under 0.5", hits)
	}
}

// TestChaosFailAttemptsCapsFaults: attempts beyond FailAttempts always run
// clean, so MaxAttempts = FailAttempts+1 is guaranteed to converge.
func TestChaosFailAttemptsCapsFaults(t *testing.T) {
	p := &FaultPlan{Seed: 1, ErrorProb: 1, FailAttempts: 2}
	if err := p.perturb("u", 1); err == nil {
		t.Error("attempt 1 not faulted at ErrorProb=1")
	}
	if err := p.perturb("u", 2); err == nil {
		t.Error("attempt 2 not faulted within FailAttempts")
	}
	if err := p.perturb("u", 3); err != nil {
		t.Errorf("attempt 3 faulted beyond FailAttempts: %v", err)
	}
	var nilPlan *FaultPlan
	if err := nilPlan.perturb("u", 1); err != nil {
		t.Errorf("nil plan perturbed: %v", err)
	}
	if err := nilPlan.sinkFault("u"); err != nil {
		t.Errorf("nil plan sink-faulted: %v", err)
	}
}

// TestChaosHealedMatchesClean: a chaos run whose units all converge under
// retry emits byte-identical output to a fault-free run — the purity
// guarantee that makes the chaos harness a determinism test, not just a
// crash test.
func TestChaosHealedMatchesClean(t *testing.T) {
	spec := SweepSpec{Target: "synth-sweep", Axes: []Axis{
		{Name: "a", Values: []float64{1, 2, 3}},
		{Name: "b", Values: []float64{10, 20}},
	}}
	opts := core.Quick(11)
	clean, err := RunSweep(spec, opts, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	chaos := &FaultPlan{Seed: 11, PanicProb: 0.7, ErrorProb: 0.5, FailAttempts: 2}
	hurt, err := RunSweep(spec, opts, Config{Workers: 4, Chaos: chaos, Retry: RetryPolicy{MaxAttempts: 3}})
	if err != nil {
		t.Fatalf("chaos run did not converge under retry: %v", err)
	}
	w, g := sweepJSONL(t, clean), sweepJSONL(t, hurt)
	if !bytes.Equal(w, g) {
		t.Errorf("chaos-healed output diverges from clean\nclean: %s\nchaos: %s", w, g)
	}
	total := 0
	for _, r := range hurt {
		total += r.Attempts
	}
	if total <= len(hurt) {
		t.Errorf("chaos injected no faults (total attempts %d over %d cells); plan too weak for the test", total, len(hurt))
	}
}

// TestChaosPanicMessageNamesUnit keeps injected panics identifiable in
// captured stacks and failure sections.
func TestChaosPanicMessageNamesUnit(t *testing.T) {
	spec := SweepSpec{Target: "synth-sweep", Axes: []Axis{{Name: "a", Values: []float64{1}}}}
	chaos := &FaultPlan{Seed: 1, PanicProb: 1}
	results, err := RunSweep(spec, core.Quick(1), Config{Workers: 1, Chaos: chaos})
	if err == nil {
		t.Fatal("PanicProb=1 run succeeded")
	}
	if !strings.Contains(results[0].Err.Error(), "chaos: injected panic") ||
		!strings.Contains(results[0].Err.Error(), "sweep/synth-sweep/") {
		t.Errorf("injected panic unidentifiable: %v", results[0].Err)
	}
}
