package fleet

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// regenGolden rewrites the checked-in golden suite output. Run it only when a
// row-format or experiment-definition change is *intended* to alter results:
//
//	go test ./internal/fleet -run TestGoldenSuite -regen-golden
var regenGolden = flag.Bool("regen-golden", false, "rewrite testdata/golden_suite.jsonl")

const goldenPath = "testdata/golden_suite.jsonl"

// goldenSuite renders the full registered suite at the golden options as one
// deterministic byte stream: experiments sorted by name, each prefixed with a
// '#' header line, rows as JSONL.
func goldenSuite(t *testing.T, workers int) []byte {
	t.Helper()
	results, err := RunAll(testOpts(1), Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	byName := encodeJSONL(t, results)
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	for _, name := range names {
		fmt.Fprintf(&buf, "# %s\n", name)
		buf.Write(byName[name])
	}
	return buf.Bytes()
}

// TestGoldenSuite pins every experiment row to the checked-in pre-refactor
// output: performance work on the session hot path (streaming capture,
// buffer pooling, scheduler changes) must not move a single byte of any
// experiment result. Run with -short to skip the full-suite run.
func TestGoldenSuite(t *testing.T) {
	if testing.Short() && !*regenGolden {
		t.Skip("full-suite golden comparison skipped in -short mode")
	}
	got := goldenSuite(t, 1)
	if *regenGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (generate with -regen-golden): %v", err)
	}
	if bytes.Equal(want, got) {
		return
	}
	// Pin down the first diverging line so failures are actionable.
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			t.Fatalf("suite output diverges from golden at line %d:\nwant: %.300s\ngot:  %.300s", i+1, wl[i], gl[i])
		}
	}
	t.Fatalf("suite output length differs from golden: want %d lines, got %d", len(wl), len(gl))
}
