package fleet

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"telepresence/internal/core"
)

// regenGolden rewrites the checked-in golden suite output. Run it only when a
// row-format or experiment-definition change is *intended* to alter results:
//
//	go test ./internal/fleet -run TestGoldenSuite -regen-golden
var regenGolden = flag.Bool("regen-golden", false, "rewrite testdata/golden_suite.jsonl")

const goldenPath = "testdata/golden_suite.jsonl"

// suiteJSONL runs the given experiments at the golden options and renders
// each one's rows as JSONL, keyed by name.
func suiteJSONL(t *testing.T, exps []core.Experiment, workers int) map[string][]byte {
	t.Helper()
	results, err := Run(exps, testOpts(1), Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return encodeJSONL(t, results)
}

// fullSuiteW1 caches the workers=1 full-suite run: it is both the golden
// comparison subject and the sequential side of the worker-determinism
// check, so sharing it saves a full multi-minute suite run per `go test`.
var fullSuiteW1 struct {
	once   sync.Once
	byName map[string][]byte
}

func fullSuite(t *testing.T) map[string][]byte {
	t.Helper()
	fullSuiteW1.once.Do(func() {
		fullSuiteW1.byName = suiteJSONL(t, core.Experiments(), 1)
	})
	if fullSuiteW1.byName == nil {
		t.Fatal("full-suite run failed in an earlier test")
	}
	return fullSuiteW1.byName
}

// renderSuite flattens per-experiment JSONL into the golden byte stream:
// experiments sorted by name, each prefixed with a '#' header line.
func renderSuite(byName map[string][]byte) []byte {
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	for _, name := range names {
		fmt.Fprintf(&buf, "# %s\n", name)
		buf.Write(byName[name])
	}
	return buf.Bytes()
}

// subsetExperiments trims every experiment to its first repetition: the
// -short golden and determinism subset. Because the fleet merges rows in
// rep order, a 1-rep run's rows are a byte prefix of the full run's rows.
func subsetExperiments(exps []core.Experiment) []core.Experiment {
	out := make([]core.Experiment, len(exps))
	for i, e := range exps {
		orig := e.Reps
		e.Reps = func(o core.Options) int {
			if n := orig(o); n < 1 {
				return n
			}
			return 1
		}
		out[i] = e
	}
	return out
}

// goldenSections splits the golden file into per-experiment JSONL bodies.
func goldenSections(t *testing.T, data []byte) map[string][]byte {
	t.Helper()
	sections := map[string][]byte{}
	var name string
	var body []byte
	flush := func() {
		if name != "" {
			sections[name] = body
		}
	}
	for _, line := range bytes.SplitAfter(data, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("# ")) {
			flush()
			name = string(bytes.TrimSpace(line[2:]))
			body = nil
			continue
		}
		body = append(body, line...)
	}
	flush()
	if len(sections) == 0 {
		t.Fatalf("golden file has no sections")
	}
	return sections
}

// TestGoldenSuite pins every experiment row to the checked-in output:
// changes to the session hot path, the scheduler, or any substrate must not
// move a single byte of any experiment result. In -short mode each
// experiment runs its first repetition only and is checked as a byte prefix
// of its golden section — real golden coverage in seconds instead of the
// multi-minute full-suite run (which CI still performs non-short).
func TestGoldenSuite(t *testing.T) {
	if *regenGolden {
		got := renderSuite(fullSuite(t))
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (generate with -regen-golden): %v", err)
	}
	if testing.Short() {
		got := suiteJSONL(t, subsetExperiments(core.Experiments()), 1)
		sections := goldenSections(t, want)
		if len(got) != len(sections) {
			t.Fatalf("experiment count %d differs from golden sections %d", len(got), len(sections))
		}
		for name, rows := range got {
			section, ok := sections[name]
			if !ok {
				t.Errorf("%s: no golden section (regen needed?)", name)
				continue
			}
			if len(rows) == 0 {
				t.Errorf("%s: 1-rep subset emitted no rows", name)
				continue
			}
			if !bytes.HasPrefix(section, rows) {
				t.Errorf("%s: 1-rep rows are not a prefix of the golden section\ngot:    %.200s\ngolden: %.200s",
					name, rows, section)
			}
		}
		return
	}
	got := renderSuite(fullSuite(t))
	if bytes.Equal(want, got) {
		return
	}
	// Pin down the first diverging line so failures are actionable.
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			t.Fatalf("suite output diverges from golden at line %d:\nwant: %.300s\ngot:  %.300s", i+1, wl[i], gl[i])
		}
	}
	t.Fatalf("suite output length differs from golden: want %d lines, got %d", len(wl), len(gl))
}
