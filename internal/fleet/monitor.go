package fleet

import "time"

// EventKind enumerates the unit-lifecycle notifications the engine
// publishes to Config.Monitor. Kinds cover the whole life of a run: the
// unit universe (run started), scheduling (dispatched, journal hit),
// execution (attempt started, retried, panicked, timed out, done), ordered
// emission (rows emitted, window occupancy), and the drain path
// (interrupted, run done).
type EventKind uint8

const (
	// EventRunStarted fires once before dispatch begins; Units carries the
	// total unit count of the run.
	EventRunStarted EventKind = iota
	// EventUnitDispatched fires when a unit is handed to the worker pool.
	EventUnitDispatched
	// EventAttemptStarted fires per attempt, first try included.
	EventAttemptStarted
	// EventUnitRetried fires after a failed attempt that will be retried;
	// Backoff is the sleep preceding the next attempt.
	EventUnitRetried
	// EventUnitPanicked fires when an attempt panicked; Stack carries the
	// recovered goroutine stack.
	EventUnitPanicked
	// EventUnitTimedOut fires when the per-cell watchdog abandoned an
	// attempt.
	EventUnitTimedOut
	// EventJournalHit fires when a resumed unit is served from the
	// checkpoint journal instead of running; Rows and Attempt carry the
	// journaled counts.
	EventJournalHit
	// EventUnitDone fires at a unit's terminal outcome (after retries):
	// Rows/Wall/Attempt describe the outcome, Err and Stack the failure if
	// any. Units skipped by an interrupt report Err = ErrInterrupted.
	EventUnitDone
	// EventRowsEmitted fires when a successful unit's rows pass the
	// ordered emission point into the sink stream.
	EventRowsEmitted
	// EventWindow reports dispatch-window occupancy after each completion:
	// InFlight units are running, Buffered are completed but not yet
	// emitted (the reorder buffer).
	EventWindow
	// EventInterrupted fires once when a graceful drain stops dispatch.
	EventInterrupted
	// EventRunDone fires once when the run's emission stream is complete.
	EventRunDone
)

// MonitorEvent is one engine notification. Events are plain values — the
// engine never allocates on their behalf — and only the fields relevant to
// the Kind are set.
type MonitorEvent struct {
	Kind EventKind
	// Unit is the unit's index in dispatch order; -1 for run-level events.
	Unit int
	// Key is the unit's stable identity ("run/fig4/rep0",
	// "sweep/handover/delay_ms=100"); empty for run-level events.
	Key string
	// Attempt is the 1-based attempt number (or the terminal attempt
	// count on EventUnitDone / EventJournalHit).
	Attempt int
	// Rows is the unit's row count (EventUnitDone, EventJournalHit,
	// EventRowsEmitted).
	Rows int
	// Units is the run's total unit count (EventRunStarted).
	Units int
	// Backoff is the sleep before the next attempt (EventUnitRetried).
	Backoff time.Duration
	// Wall is the unit's cumulative wall time (EventUnitDone).
	Wall time.Duration
	// Err is the attempt or unit error, when the event reports a failure.
	Err error
	// Stack is the recovered panic stack (EventUnitPanicked,
	// EventUnitDone after a terminal panic).
	Stack string
	// InFlight and Buffered are the window-occupancy gauges (EventWindow).
	InFlight int
	Buffered int
}

// Monitor observes engine events. Implementations MUST be safe for
// concurrent use: events are published from the dispatcher, every worker
// goroutine, and the ordered-emission collector. Like
// SessionConfig.Telemetry, a monitor observes but never steers — it cannot
// fail a run, reorder emission, or change a single emitted row byte — and
// a nil Config.Monitor is provably inert (no allocations, no atomics
// beyond the engine's own accounting, no behavioral difference).
type Monitor interface {
	Event(MonitorEvent)
}

// publish forwards an event to the configured monitor; a nil monitor makes
// this a guarded no-op on every call site, which is what keeps the
// unmonitored dispatch path allocation-free.
func (c *Config) publish(ev MonitorEvent) {
	if c.Monitor != nil {
		c.Monitor.Event(ev)
	}
}
