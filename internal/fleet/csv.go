package fleet

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"strings"

	"telepresence/internal/core"
	"telepresence/internal/geo"
	"telepresence/internal/stats"
)

// csvSink flattens row structs into CSV records. The header comes from the
// experiment's zero row, so every row type the registry knows — including
// nested stats.Box summaries and *stats.Sample fields — encodes without
// per-type code.
type csvSink struct {
	w      *csv.Writer
	header []string
}

// NewCSVSink writes rows of zeroRow's type to w as CSV with a header row.
// The header is derived (and written lazily, on first Write or Close) from
// zeroRow's flattened fields.
func NewCSVSink(w io.Writer, zeroRow core.Row) Sink {
	return &csvSink{w: csv.NewWriter(w), header: flattenHeader(zeroRow)}
}

func (s *csvSink) Write(row core.Row) error {
	if s.header != nil {
		if err := s.w.Write(s.header); err != nil {
			return err
		}
		s.header = nil
	}
	return s.w.Write(flattenRecord(row))
}

// WriteEntry replays a journal entry's pre-flattened CSV records,
// byte-identical to the live Write sequence for the same rows.
func (s *csvSink) WriteEntry(e *JournalEntry) error {
	if s.header != nil {
		if err := s.w.Write(s.header); err != nil {
			return err
		}
		s.header = nil
	}
	for _, rec := range e.CSV {
		if err := s.w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func (s *csvSink) Close() error {
	if s.header != nil { // no rows: still emit the header
		if err := s.w.Write(s.header); err != nil {
			return err
		}
		s.header = nil
	}
	s.w.Flush()
	return s.w.Error()
}

// flattenHeader lists the column names of a row type.
func flattenHeader(row core.Row) []string {
	var cols []string
	walkRow("", reflect.ValueOf(row), func(name, _ string) {
		cols = append(cols, name)
	})
	return cols
}

// flattenRecord lists a row's column values, aligned with flattenHeader.
func flattenRecord(row core.Row) []string {
	var vals []string
	walkRow("", reflect.ValueOf(row), func(_, val string) {
		vals = append(vals, val)
	})
	return vals
}

var (
	sampleType   = reflect.TypeOf(&stats.Sample{})
	locationType = reflect.TypeOf(geo.Location{})
	stringerType = reflect.TypeOf((*fmt.Stringer)(nil)).Elem()
)

// sampleCols are the per-sample summary columns, mirroring the JSON
// projection in stats.Sample.MarshalJSON.
var sampleCols = []string{"n", "mean", "std", "min", "p25", "median", "p75", "p95", "max"}

// walkRow visits every flattened (column, value) pair of a row in struct
// declaration order, which makes CSV output deterministic.
func walkRow(prefix string, v reflect.Value, emit func(name, val string)) {
	t := v.Type()
	switch {
	case t == sampleType:
		s, _ := v.Interface().(*stats.Sample)
		for _, c := range sampleCols {
			emit(join(prefix, c), sampleCol(s, c))
		}
	case t == locationType:
		emit(prefix, v.Interface().(geo.Location).Name)
	case t.Implements(stringerType) && t.Kind() != reflect.Pointer && t.Kind() != reflect.Struct:
		emit(prefix, v.Interface().(fmt.Stringer).String())
	case t.Kind() == reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			walkRow(join(prefix, f.Name), v.Field(i), emit)
		}
	case t.Kind() == reflect.Slice || t.Kind() == reflect.Array:
		var parts []string
		for i := 0; i < v.Len(); i++ {
			parts = append(parts, scalar(v.Index(i)))
		}
		emit(prefix, strings.Join(parts, ";"))
	default:
		emit(prefix, scalar(v))
	}
}

// scalar renders one leaf value. Stringer scalars (app/device/transport
// enums) render as their names, matching walkRow's top-level handling so
// slice elements and scalar fields encode alike.
func scalar(v reflect.Value) string {
	t := v.Type()
	if t.Implements(stringerType) && t.Kind() != reflect.Pointer && t.Kind() != reflect.Struct {
		return v.Interface().(fmt.Stringer).String()
	}
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(v.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return strconv.FormatUint(v.Uint(), 10)
	case reflect.Bool:
		return strconv.FormatBool(v.Bool())
	case reflect.String:
		return v.String()
	default:
		return fmt.Sprintf("%v", v.Interface())
	}
}

func sampleCol(s *stats.Sample, col string) string {
	if s == nil || s.N() == 0 {
		if col == "n" {
			return "0"
		}
		return ""
	}
	var f float64
	switch col {
	case "n":
		return strconv.Itoa(s.N())
	case "mean":
		f = s.Mean()
	case "std":
		f = s.Std()
	case "min":
		f = s.Min()
	case "p25":
		f = s.Percentile(25)
	case "median":
		f = s.Median()
	case "p75":
		f = s.Percentile(75)
	case "p95":
		f = s.Percentile(95)
	case "max":
		f = s.Max()
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func join(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "." + name
}
