package entropy

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"telepresence/internal/simrand"
)

func TestRangeCoderBits(t *testing.T) {
	enc := NewRangeEncoder(nil)
	probs := NewProbs(4)
	bits := []int{0, 1, 1, 0, 1, 0, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1}
	for i, b := range bits {
		enc.EncodeBit(&probs[i%4], b)
	}
	out := enc.Flush()

	dec, err := NewRangeDecoder(out)
	if err != nil {
		t.Fatal(err)
	}
	dprobs := NewProbs(4)
	for i, want := range bits {
		if got := dec.DecodeBit(&dprobs[i%4]); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestRangeCoderDirect(t *testing.T) {
	enc := NewRangeEncoder(nil)
	vals := []struct {
		v    uint32
		bits int
	}{{0, 1}, {1, 1}, {0xFFFF, 16}, {12345, 16}, {0, 16}, {0xABCDEF, 24}, {1, 32}}
	for _, c := range vals {
		enc.EncodeDirect(c.v, c.bits)
	}
	dec, err := NewRangeDecoder(enc.Flush())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range vals {
		if got := dec.DecodeDirect(c.bits); got != c.v {
			t.Fatalf("direct %d-bit = %d, want %d", c.bits, got, c.v)
		}
	}
}

func TestBitTreeRoundTrip(t *testing.T) {
	enc := NewRangeEncoder(nil)
	tree := NewBitTree(8)
	syms := []uint32{0, 255, 128, 1, 2, 3, 250, 17, 17, 17}
	for _, s := range syms {
		tree.Encode(enc, s)
	}
	dec, err := NewRangeDecoder(enc.Flush())
	if err != nil {
		t.Fatal(err)
	}
	dtree := NewBitTree(8)
	for i, want := range syms {
		if got := dtree.Decode(dec); got != want {
			t.Fatalf("sym %d = %d, want %d", i, got, want)
		}
	}
}

func TestAdaptiveCoderBeatsUniform(t *testing.T) {
	// A 95/5 biased bit stream should compress well below 1 bit/symbol.
	rng := simrand.New(1)
	enc := NewRangeEncoder(nil)
	p := NewProbs(1)
	const n = 100000
	for i := 0; i < n; i++ {
		bit := 0
		if rng.Bernoulli(0.05) {
			bit = 1
		}
		enc.EncodeBit(&p[0], bit)
	}
	out := enc.Flush()
	bitsPerSym := float64(len(out)*8) / n
	// Shannon entropy of Bernoulli(0.05) is ~0.286 bits.
	if bitsPerSym > 0.35 {
		t.Errorf("adaptive coder: %.3f bits/sym, want < 0.35", bitsPerSym)
	}
}

func TestCompressRoundTripCases(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		[]byte("a"),
		[]byte("ab"),
		[]byte("abcabcabcabcabcabcabc"),
		bytes.Repeat([]byte{0x55}, 10000),
		[]byte("the quick brown fox jumps over the lazy dog"),
	}
	for i, src := range cases {
		comp := Compress(nil, src)
		got, err := Decompress(nil, comp)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: round trip mismatch (%d vs %d bytes)", i, len(got), len(src))
		}
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		comp := Compress(nil, src)
		got, err := Decompress(nil, comp)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompressRepetitiveRatio(t *testing.T) {
	// Delta-coded keypoint frames are highly repetitive; the compressor
	// must exploit that heavily.
	src := bytes.Repeat([]byte{1, 0, 2, 0, 1, 0, 0, 0}, 1000)
	comp := Compress(nil, src)
	if ratio := float64(len(comp)) / float64(len(src)); ratio > 0.05 {
		t.Errorf("repetitive data compressed to %.1f%%, want < 5%%", ratio*100)
	}
}

func TestCompressIncompressibleOverheadBounded(t *testing.T) {
	rng := simrand.New(2)
	src := make([]byte, 10000)
	for i := range src {
		src[i] = byte(rng.Intn(256))
	}
	comp := Compress(nil, src)
	if float64(len(comp)) > float64(len(src))*1.05+16 {
		t.Errorf("random data expanded to %d bytes from %d", len(comp), len(src))
	}
	got, err := Decompress(nil, comp)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("random round trip failed: %v", err)
	}
}

func TestDecompressCorruptInputs(t *testing.T) {
	src := bytes.Repeat([]byte("semantic keypoints "), 50)
	comp := Compress(nil, src)

	// Truncations must error, not hang or return wrong-length data.
	for _, cut := range []int{0, 1, 4, len(comp) / 2, len(comp) - 1} {
		if got, err := Decompress(nil, comp[:cut]); err == nil && bytes.Equal(got, src) {
			t.Errorf("truncation to %d silently succeeded", cut)
		}
	}
}

func TestDecompressEmptyAndGarbage(t *testing.T) {
	if _, err := Decompress(nil, nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Decompress(nil, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Error("implausible length header accepted")
	}
}

func TestDecompressAppendsToDst(t *testing.T) {
	prefix := []byte("prefix")
	src := []byte("payload payload payload")
	comp := Compress(nil, src)
	got, err := Decompress(append([]byte(nil), prefix...), comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(append([]byte(nil), prefix...), src...)) {
		t.Errorf("append semantics broken: %q", got)
	}
}

func TestCompressDeterministic(t *testing.T) {
	src := bytes.Repeat([]byte{9, 8, 7, 9, 8, 7, 1}, 500)
	a := Compress(nil, src)
	b := Compress(nil, src)
	if !bytes.Equal(a, b) {
		t.Error("compression is not deterministic")
	}
}

// Entropy sanity: measured output size tracks the source entropy for biased
// byte distributions.
func TestCompressTracksEntropy(t *testing.T) {
	rng := simrand.New(3)
	const n = 50000
	src := make([]byte, n)
	for i := range src {
		// Geometric-ish distribution over a few symbols.
		v := 0
		for v < 7 && rng.Bernoulli(0.5) {
			v++
		}
		src[i] = byte(v)
	}
	// Empirical entropy.
	var hist [256]float64
	for _, b := range src {
		hist[b]++
	}
	H := 0.0
	for _, c := range hist {
		if c > 0 {
			p := c / n
			H -= p * math.Log2(p)
		}
	}
	comp := Compress(nil, src)
	bitsPerByte := float64(len(comp)*8) / n
	// LZ layer may find spurious matches; allow generous headroom but the
	// result must be in the entropy ballpark, not 8 bits.
	if bitsPerByte > H*1.3+0.3 {
		t.Errorf("compressed to %.2f bits/byte, source entropy %.2f", bitsPerByte, H)
	}
}

func BenchmarkCompressKeypointLike(b *testing.B) {
	// Simulates a delta-coded keypoint frame: small signed values.
	rng := simrand.New(4)
	src := make([]byte, 444) // 74 keypoints x 3 coords x 2 bytes
	for i := range src {
		if i%2 == 0 {
			src[i] = byte(rng.Intn(7))
		}
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compress(nil, src)
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := bytes.Repeat([]byte("persona"), 1000)
	comp := Compress(nil, src)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(nil, comp); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCompressorReuseBitIdentical pins the reusable Compressor to the
// one-shot Compress output: the generation-stamped hash table and recycled
// models must never change a single output byte, or every golden experiment
// result downstream would move.
func TestCompressorReuseBitIdentical(t *testing.T) {
	rng := simrand.New(9)
	c := NewCompressor()
	d := NewDecompressor()
	var dst, raw []byte
	for i := 0; i < 50; i++ {
		src := make([]byte, rng.Intn(3000))
		for j := range src {
			src[j] = byte(rng.Intn(1 << uint(1+i%8)))
		}
		want := Compress(nil, src)
		got := c.Compress(dst[:0], src)
		if !bytes.Equal(want, got) {
			t.Fatalf("call %d: reused compressor output differs (%d vs %d bytes)", i, len(got), len(want))
		}
		dst = got
		raw, _ = d.Decompress(raw[:0], got)
		if !bytes.Equal(raw, src) {
			t.Fatalf("call %d: reused decompressor round trip failed", i)
		}
	}
}

// TestCompressorSteadyStateAllocs pins the reusable pipeline's allocation
// budget so hot-path regressions fail tier-1 instead of only showing in
// benchmarks.
func TestCompressorSteadyStateAllocs(t *testing.T) {
	c := NewCompressor()
	d := NewDecompressor()
	src := bytes.Repeat([]byte("keypointframe"), 70)
	var dst, raw []byte
	c.Compress(dst[:0], src) // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		dst = c.Compress(dst[:0], src)
		var err error
		raw, err = d.Decompress(raw[:0], dst)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state compress+decompress allocates %.1f times per op, want 0", allocs)
	}
}
