// Package entropy implements the compression machinery shared by the mesh
// codec and the semantic (keypoint) codec: an adaptive binary range coder in
// the LZMA style plus an LZ77 front end. The paper compresses keypoints with
// LZMA (§4.3); stdlib Go has no LZMA, so this package is the documented
// substitute — same architecture (match finding + adaptive range coding),
// same behaviour class on the low-entropy delta streams we feed it.
package entropy

import (
	"errors"
)

const (
	probBits  = 11
	probInit  = 1 << (probBits - 1) // 1024: p=0.5
	moveBits  = 5
	topValue  = 1 << 24
	probTotal = 1 << probBits
)

// Prob is an adaptive binary probability state (11-bit, LZMA-style).
type Prob uint16

// NewProbs allocates n probability states initialized to p=0.5.
func NewProbs(n int) []Prob {
	ps := make([]Prob, n)
	for i := range ps {
		ps[i] = probInit
	}
	return ps
}

// RangeEncoder is a carry-handling binary range encoder.
type RangeEncoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

// NewRangeEncoder returns an encoder appending to out (may be nil).
func NewRangeEncoder(out []byte) *RangeEncoder {
	return &RangeEncoder{rng: 0xFFFFFFFF, cacheSize: 1, out: out}
}

// Reset re-initializes the encoder to append a fresh stream to out,
// reusing the receiver.
func (e *RangeEncoder) Reset(out []byte) {
	*e = RangeEncoder{rng: 0xFFFFFFFF, cacheSize: 1, out: out}
}

func (e *RangeEncoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		carry := byte(e.low >> 32)
		temp := e.cache
		for {
			e.out = append(e.out, temp+carry)
			temp = 0xFF
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// EncodeBit encodes bit under the adaptive probability p. The normalization
// loop lives in a separate method so this hot path stays inlinable.
func (e *RangeEncoder) EncodeBit(p *Prob, bit int) {
	bound := (e.rng >> probBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (probTotal - *p) >> moveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> moveBits
	}
	if e.rng < topValue {
		e.normalize()
	}
}

func (e *RangeEncoder) normalize() {
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// EncodeDirect encodes nbits of v (MSB first) at fixed probability 0.5.
func (e *RangeEncoder) EncodeDirect(v uint32, nbits int) {
	for i := nbits - 1; i >= 0; i-- {
		e.rng >>= 1
		if (v>>uint(i))&1 != 0 {
			e.low += uint64(e.rng)
		}
		for e.rng < topValue {
			e.rng <<= 8
			e.shiftLow()
		}
	}
}

// Flush finalizes the stream and returns the encoded bytes.
func (e *RangeEncoder) Flush() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// ErrCorrupt is returned when a compressed stream cannot be decoded.
var ErrCorrupt = errors.New("entropy: corrupt stream")

// RangeDecoder mirrors RangeEncoder.
type RangeDecoder struct {
	code uint32
	rng  uint32
	in   []byte
	pos  int
	err  bool
}

// NewRangeDecoder initializes a decoder over the encoder's output.
func NewRangeDecoder(in []byte) (*RangeDecoder, error) {
	d := &RangeDecoder{}
	if err := d.Reset(in); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset re-initializes the decoder over a fresh stream, reusing the
// receiver.
func (d *RangeDecoder) Reset(in []byte) error {
	if len(in) < 5 {
		return ErrCorrupt
	}
	*d = RangeDecoder{rng: 0xFFFFFFFF, in: in, pos: 1} // first byte is always 0
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return nil
}

func (d *RangeDecoder) next() byte {
	if d.pos >= len(d.in) {
		// Reading past the end is how truncation manifests; remember it so
		// callers get a hard error instead of garbage.
		d.err = true
		return 0
	}
	b := d.in[d.pos]
	d.pos++
	return b
}

// Err reports whether the decoder ran off the end of its input.
func (d *RangeDecoder) Err() error {
	if d.err {
		return ErrCorrupt
	}
	return nil
}

// DecodeBit decodes one bit under p. Normalization is split out so the hot
// path inlines, mirroring EncodeBit.
func (d *RangeDecoder) DecodeBit(p *Prob) int {
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (probTotal - *p) >> moveBits
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> moveBits
		bit = 1
	}
	if d.rng < topValue {
		d.normalize()
	}
	return bit
}

func (d *RangeDecoder) normalize() {
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.next())
	}
}

// DecodeDirect decodes nbits encoded with EncodeDirect.
func (d *RangeDecoder) DecodeDirect(nbits int) uint32 {
	var v uint32
	for i := 0; i < nbits; i++ {
		d.rng >>= 1
		bit := uint32(0)
		if d.code >= d.rng {
			d.code -= d.rng
			bit = 1
		}
		v = v<<1 | bit
		for d.rng < topValue {
			d.rng <<= 8
			d.code = d.code<<8 | uint32(d.next())
		}
	}
	return v
}

// BitTree codes fixed-width symbols bit by bit with per-node adaptive
// probabilities (the standard LZMA building block).
type BitTree struct {
	probs []Prob
	bits  int
}

// NewBitTree returns a tree for symbols of the given bit width.
func NewBitTree(bits int) *BitTree {
	return &BitTree{probs: NewProbs(1 << bits), bits: bits}
}

// Reset restores every node to p=0.5 so the tree can code a fresh stream.
func (t *BitTree) Reset() {
	for i := range t.probs {
		t.probs[i] = probInit
	}
}

// Encode writes sym (must fit in the tree's width). The per-bit range-coder
// update is inlined with the range register held in a local so the hot loop
// runs without call overhead; the arithmetic is exactly EncodeBit's.
func (t *BitTree) Encode(e *RangeEncoder, sym uint32) {
	probs := t.probs
	rng := e.rng
	ctx := uint32(1)
	for i := t.bits - 1; i >= 0; i-- {
		bit := (sym >> uint(i)) & 1
		p := probs[ctx]
		bound := (rng >> probBits) * uint32(p)
		if bit == 0 {
			rng = bound
			probs[ctx] = p + (probTotal-p)>>moveBits
		} else {
			e.low += uint64(bound)
			rng -= bound
			probs[ctx] = p - p>>moveBits
		}
		for rng < topValue {
			rng <<= 8
			e.shiftLow()
		}
		ctx = ctx<<1 | bit
	}
	e.rng = rng
}

// Decode reads one symbol, mirroring Encode's inlined hot loop.
func (t *BitTree) Decode(d *RangeDecoder) uint32 {
	probs := t.probs
	rng, code := d.rng, d.code
	in, pos := d.in, d.pos
	ctx := uint32(1)
	for i := 0; i < t.bits; i++ {
		p := probs[ctx]
		bound := (rng >> probBits) * uint32(p)
		var bit uint32
		if code < bound {
			rng = bound
			probs[ctx] = p + (probTotal-p)>>moveBits
		} else {
			code -= bound
			rng -= bound
			probs[ctx] = p - p>>moveBits
			bit = 1
		}
		for rng < topValue {
			rng <<= 8
			var b byte
			if pos < len(in) {
				b = in[pos]
				pos++
			} else {
				d.err = true
			}
			code = code<<8 | uint32(b)
		}
		ctx = ctx<<1 | bit
	}
	d.rng, d.code, d.pos = rng, code, pos
	return ctx - 1<<t.bits
}
