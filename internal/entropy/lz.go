package entropy

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// LZ parameters. Window and match bounds are fixed for the whole repository;
// the streams we compress (delta-coded keypoints, quantized mesh residuals)
// are small per frame, so a 64 KiB window always covers them.
const (
	minMatch    = 3
	maxMatch    = minMatch + 254 // length-minMatch fits the 8-bit tree
	maxDistance = 1 << 16
	hashBits    = 15
)

func hash3(b []byte) uint32 {
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16
	return (v * 2654435761) >> (32 - hashBits)
}

type lzModels struct {
	isMatch  Prob
	lit      *BitTree
	length   *BitTree
	distSlot *BitTree
}

func newLZModels() *lzModels {
	return &lzModels{
		isMatch:  probInit,
		lit:      NewBitTree(8),
		length:   NewBitTree(8),
		distSlot: NewBitTree(5),
	}
}

// reset restores all adaptive probabilities to p=0.5, making the models
// reusable across independent streams without reallocating.
func (m *lzModels) reset() {
	m.isMatch = probInit
	m.lit.Reset()
	m.length.Reset()
	m.distSlot.Reset()
}

// nbits returns the bit width of v (>=1 for v>=0; nbits(0)==0).
func nbits(v uint32) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}

// matchLen returns the length of the common prefix of src[a:] and src[b:]
// capped at limit, comparing 8 bytes at a time. Equivalent to the obvious
// byte loop (the coherent streams we compress have long runs, where the
// word comparison is ~8x cheaper).
func matchLen(src []byte, a, b, limit int) int {
	l := 0
	for l+8 <= limit {
		x := binary.LittleEndian.Uint64(src[a+l:])
		y := binary.LittleEndian.Uint64(src[b+l:])
		if x != y {
			return l + bits.TrailingZeros64(x^y)/8
		}
		l += 8
	}
	for l < limit && src[a+l] == src[b+l] {
		l++
	}
	return l
}

// worthIt reports whether a match of the given length and distance is
// expected to beat coding the same bytes as adaptive literals. Long
// distances cost more bits, so they need longer matches to pay off.
func worthIt(length, dist int) bool {
	switch {
	case dist < 256:
		return length >= minMatch
	case dist < 4096:
		return length >= minMatch+1
	default:
		return length >= minMatch+2
	}
}

// Compressor is a reusable LZ77 + range-coder pipeline. Reuse across calls
// eliminates the dominant allocation of one-shot Compress: the 128 KiB hash
// head table, which a generation stamp makes reusable without clearing.
// Output is byte-identical to the package-level Compress.
type Compressor struct {
	m   *lzModels
	enc RangeEncoder
	// head[h] holds (gen<<32 | position) of the latest insertion for hash
	// h; entries from earlier calls fail the generation check and read as
	// absent, so the table never needs re-initialization.
	head []uint64
	prev []int32
	gen  uint64
}

// NewCompressor returns an empty, reusable compressor.
func NewCompressor() *Compressor {
	return &Compressor{m: newLZModels(), head: make([]uint64, 1<<hashBits)}
}

// Compress compresses src with LZ77 match finding and adaptive range coding
// and appends the result to dst. The output embeds the uncompressed length.
func (c *Compressor) Compress(dst, src []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(src)))
	dst = append(dst, hdr[:n]...)
	if len(src) == 0 {
		return dst
	}

	c.gen++
	if c.gen >= 1<<32 {
		// Generation space exhausted (after 4G calls): clear and restart.
		for i := range c.head {
			c.head[i] = 0
		}
		c.gen = 1
	}
	gen := c.gen << 32
	head := c.head
	if cap(c.prev) < len(src) {
		c.prev = make([]int32, len(src))
	}
	prev := c.prev[:len(src)]

	c.m.reset()
	m := c.m
	c.enc.Reset(dst)
	enc := &c.enc

	// isMatchBit is EncodeBit(&m.isMatch, bit) inlined by hand: the call
	// sits on the per-symbol hot path and is too costly for the inliner.
	isMatchBit := func(bit uint32) {
		p := m.isMatch
		bound := (enc.rng >> probBits) * uint32(p)
		if bit == 0 {
			enc.rng = bound
			m.isMatch = p + (probTotal-p)>>moveBits
		} else {
			enc.low += uint64(bound)
			enc.rng -= bound
			m.isMatch = p - p>>moveBits
		}
		if enc.rng < topValue {
			enc.normalize()
		}
	}
	emitLiteral := func(b byte) {
		isMatchBit(0)
		m.lit.Encode(enc, uint32(b))
	}
	emitMatch := func(length, dist int) {
		isMatchBit(1)
		m.length.Encode(enc, uint32(length-minMatch))
		// Distance-1 coded as a bit-width slot plus the low bits directly:
		// cheap for the short distances that dominate coherent streams.
		d := uint32(dist - 1)
		slot := nbits(d)
		m.distSlot.Encode(enc, uint32(slot))
		if slot > 1 {
			enc.EncodeDirect(d&((1<<(slot-1))-1), slot-1)
		}
	}

	// lookup returns the chain head for hash h, or -1 for entries written
	// by earlier Compress calls.
	lookup := func(h uint32) int32 {
		if e := head[h]; e>>32 == c.gen {
			return int32(uint32(e))
		}
		return -1
	}
	insert := func(i int) {
		if i+minMatch <= len(src) {
			h := hash3(src[i:])
			prev[i] = lookup(h)
			head[h] = gen | uint64(uint32(i))
		}
	}

	i := 0
	for i < len(src) {
		bestLen, bestDist := 0, 0
		if i+minMatch <= len(src) {
			h := hash3(src[i:])
			cand := lookup(h)
			tries := 32
			limit := len(src) - i
			if limit > maxMatch {
				limit = maxMatch
			}
			for cand >= 0 && tries > 0 {
				d := i - int(cand)
				if d > maxDistance {
					break
				}
				l := matchLen(src, int(cand), i, limit)
				if l > bestLen && worthIt(l, d) {
					bestLen, bestDist = l, d
					if l == limit {
						break
					}
				}
				cand = prev[cand]
				tries--
			}
		}
		if bestLen >= minMatch && worthIt(bestLen, bestDist) {
			emitMatch(bestLen, bestDist)
			for k := 0; k < bestLen; k++ {
				insert(i + k)
			}
			i += bestLen
		} else {
			emitLiteral(src[i])
			insert(i)
			i++
		}
	}
	return enc.Flush()
}

// Compress compresses src with LZ77 match finding and adaptive range coding
// and appends the result to dst. One-shot convenience over Compressor; hot
// paths should hold a Compressor and reuse it.
func Compress(dst, src []byte) []byte {
	return NewCompressor().Compress(dst, src)
}

// Decompressor is the reusable counterpart of Compressor.
type Decompressor struct {
	m   *lzModels
	dec RangeDecoder
}

// NewDecompressor returns an empty, reusable decompressor.
func NewDecompressor() *Decompressor {
	return &Decompressor{m: newLZModels()}
}

// Decompress decodes a Compress stream appended after dst. It fails loudly
// on corrupt or truncated input.
func (c *Decompressor) Decompress(dst, src []byte) ([]byte, error) {
	size, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad length header", ErrCorrupt)
	}
	if size == 0 {
		return dst, nil
	}
	if size > 1<<31 {
		return nil, fmt.Errorf("%w: implausible length %d", ErrCorrupt, size)
	}
	if err := c.dec.Reset(src[n:]); err != nil {
		return nil, err
	}
	dec := &c.dec
	c.m.reset()
	m := c.m

	// isMatchBit mirrors the hand-inlined encoder-side bit.
	isMatchBit := func() int {
		p := m.isMatch
		bound := (dec.rng >> probBits) * uint32(p)
		var bit int
		if dec.code < bound {
			dec.rng = bound
			m.isMatch = p + (probTotal-p)>>moveBits
		} else {
			dec.code -= bound
			dec.rng -= bound
			m.isMatch = p - p>>moveBits
			bit = 1
		}
		if dec.rng < topValue {
			dec.normalize()
		}
		return bit
	}

	// The stream declares its decoded size up front: allocate once and
	// write through a cursor instead of paying append bookkeeping per
	// literal.
	base := len(dst)
	need := base + int(size)
	out := dst
	if cap(out) < need {
		grown := make([]byte, len(out), need)
		copy(grown, out)
		out = grown
	}
	out = out[:need]
	w := base
	for w < need {
		if isMatchBit() == 0 {
			out[w] = byte(m.lit.Decode(dec))
			w++
		} else {
			length := int(m.length.Decode(dec)) + minMatch
			slot := int(m.distSlot.Decode(dec))
			var d uint32
			if slot > 0 {
				d = 1 << (slot - 1)
				if slot > 1 {
					d |= dec.DecodeDirect(slot - 1)
				}
			}
			dist := int(d) + 1
			start := w - dist
			if start < base {
				return nil, fmt.Errorf("%w: match before window start", ErrCorrupt)
			}
			if w+length > need {
				return nil, fmt.Errorf("%w: match overruns declared size", ErrCorrupt)
			}
			if dist >= length {
				copy(out[w:w+length], out[start:start+length])
				w += length
			} else {
				for k := 0; k < length; k++ {
					out[w] = out[start+k]
					w++
				}
			}
		}
		if dec.Err() != nil {
			return nil, dec.Err()
		}
	}
	return out, nil
}

// Decompress decodes a Compress stream appended after dst. One-shot
// convenience over Decompressor; hot paths should hold a Decompressor.
func Decompress(dst, src []byte) ([]byte, error) {
	return NewDecompressor().Decompress(dst, src)
}
