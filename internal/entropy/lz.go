package entropy

import (
	"encoding/binary"
	"fmt"
)

// LZ parameters. Window and match bounds are fixed for the whole repository;
// the streams we compress (delta-coded keypoints, quantized mesh residuals)
// are small per frame, so a 64 KiB window always covers them.
const (
	minMatch    = 3
	maxMatch    = minMatch + 254 // length-minMatch fits the 8-bit tree
	maxDistance = 1 << 16
	hashBits    = 15
)

func hash3(b []byte) uint32 {
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16
	return (v * 2654435761) >> (32 - hashBits)
}

type lzModels struct {
	isMatch  Prob
	lit      *BitTree
	length   *BitTree
	distSlot *BitTree
}

func newLZModels() *lzModels {
	return &lzModels{
		isMatch:  probInit,
		lit:      NewBitTree(8),
		length:   NewBitTree(8),
		distSlot: NewBitTree(5),
	}
}

// nbits returns the bit width of v (>=1 for v>=0; nbits(0)==0).
func nbits(v uint32) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}

// worthIt reports whether a match of the given length and distance is
// expected to beat coding the same bytes as adaptive literals. Long
// distances cost more bits, so they need longer matches to pay off.
func worthIt(length, dist int) bool {
	switch {
	case dist < 256:
		return length >= minMatch
	case dist < 4096:
		return length >= minMatch+1
	default:
		return length >= minMatch+2
	}
}

// Compress compresses src with LZ77 match finding and adaptive range coding
// and appends the result to dst. The output embeds the uncompressed length.
func Compress(dst, src []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(src)))
	dst = append(dst, hdr[:n]...)
	if len(src) == 0 {
		return dst
	}

	enc := NewRangeEncoder(dst)
	m := newLZModels()

	head := make([]int32, 1<<hashBits)
	prev := make([]int32, len(src))
	for i := range head {
		head[i] = -1
	}

	emitLiteral := func(b byte) {
		enc.EncodeBit(&m.isMatch, 0)
		m.lit.Encode(enc, uint32(b))
	}
	emitMatch := func(length, dist int) {
		enc.EncodeBit(&m.isMatch, 1)
		m.length.Encode(enc, uint32(length-minMatch))
		// Distance-1 coded as a bit-width slot plus the low bits directly:
		// cheap for the short distances that dominate coherent streams.
		d := uint32(dist - 1)
		slot := nbits(d)
		m.distSlot.Encode(enc, uint32(slot))
		if slot > 1 {
			enc.EncodeDirect(d&((1<<(slot-1))-1), slot-1)
		}
	}

	insert := func(i int) {
		if i+minMatch <= len(src) {
			h := hash3(src[i:])
			prev[i] = head[h]
			head[h] = int32(i)
		}
	}

	i := 0
	for i < len(src) {
		bestLen, bestDist := 0, 0
		if i+minMatch <= len(src) {
			h := hash3(src[i:])
			cand := head[h]
			tries := 32
			limit := len(src) - i
			if limit > maxMatch {
				limit = maxMatch
			}
			for cand >= 0 && tries > 0 {
				d := i - int(cand)
				if d > maxDistance {
					break
				}
				l := 0
				for l < limit && src[int(cand)+l] == src[i+l] {
					l++
				}
				if l > bestLen && worthIt(l, d) {
					bestLen, bestDist = l, d
					if l == limit {
						break
					}
				}
				cand = prev[cand]
				tries--
			}
		}
		if bestLen >= minMatch && worthIt(bestLen, bestDist) {
			emitMatch(bestLen, bestDist)
			for k := 0; k < bestLen; k++ {
				insert(i + k)
			}
			i += bestLen
		} else {
			emitLiteral(src[i])
			insert(i)
			i++
		}
	}
	return enc.Flush()
}

// Decompress decodes a Compress stream appended after dst. It fails loudly
// on corrupt or truncated input.
func Decompress(dst, src []byte) ([]byte, error) {
	size, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad length header", ErrCorrupt)
	}
	if size == 0 {
		return dst, nil
	}
	if size > 1<<31 {
		return nil, fmt.Errorf("%w: implausible length %d", ErrCorrupt, size)
	}
	dec, err := NewRangeDecoder(src[n:])
	if err != nil {
		return nil, err
	}
	m := newLZModels()

	base := len(dst)
	out := dst
	for uint64(len(out)-base) < size {
		if dec.DecodeBit(&m.isMatch) == 0 {
			out = append(out, byte(m.lit.Decode(dec)))
		} else {
			length := int(m.length.Decode(dec)) + minMatch
			slot := int(m.distSlot.Decode(dec))
			var d uint32
			if slot > 0 {
				d = 1 << (slot - 1)
				if slot > 1 {
					d |= dec.DecodeDirect(slot - 1)
				}
			}
			dist := int(d) + 1
			start := len(out) - dist
			if start < base {
				return nil, fmt.Errorf("%w: match before window start", ErrCorrupt)
			}
			if uint64(len(out)-base+length) > size {
				return nil, fmt.Errorf("%w: match overruns declared size", ErrCorrupt)
			}
			for k := 0; k < length; k++ {
				out = append(out, out[start+k])
			}
		}
		if dec.Err() != nil {
			return nil, dec.Err()
		}
	}
	return out, nil
}
