package capture

import (
	"testing"

	"telepresence/internal/netem"
	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
)

func runLink(t *testing.T, cfg netem.Config, sends int) (*Capture, *netem.Link) {
	t.Helper()
	s := simtime.NewScheduler()
	l := netem.NewLink(s, simrand.New(1), cfg)
	l.SetHandler(func(simtime.Time, netem.Frame) {})
	c := New("test")
	c.Attach(l)
	for i := 0; i < sends; i++ {
		l.Send(netem.Frame{Size: 1000, Payload: []byte{byte(i), 1, 2, 3}})
	}
	s.Run()
	return c, l
}

func TestCaptureRecordsBothDirections(t *testing.T) {
	c, _ := runLink(t, netem.Config{Name: "ap", DelayMs: 5}, 3)
	if c.Len() != 6 { // 3 ingress + 3 egress
		t.Fatalf("captured %d records, want 6", c.Len())
	}
	in, out := 0, 0
	for _, r := range c.Records() {
		switch r.Dir {
		case netem.Ingress:
			in++
		case netem.Egress:
			out++
		}
		if r.Link != "ap" {
			t.Errorf("record link %q", r.Link)
		}
		if r.Size != 1000 {
			t.Errorf("record size %d", r.Size)
		}
	}
	if in != 3 || out != 3 {
		t.Errorf("in/out = %d/%d", in, out)
	}
	if got := len(c.Egress()); got != 3 {
		t.Errorf("Egress() = %d records", got)
	}
}

func TestCaptureRecordsDrops(t *testing.T) {
	c, _ := runLink(t, netem.Config{Name: "lossy", LossProb: 1}, 5)
	dropped := c.Filter(func(r Record) bool { return r.Dir == netem.Dropped })
	if len(dropped) != 5 {
		t.Errorf("%d dropped records, want 5", len(dropped))
	}
	if len(c.Egress()) != 0 {
		t.Error("egress records on a fully lossy link")
	}
}

func TestCaptureTimestampsOrdered(t *testing.T) {
	c, _ := runLink(t, netem.Config{Name: "t", DelayMs: 2, RateBps: 1e6}, 10)
	recs := c.Egress()
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatalf("egress records out of order at %d", i)
		}
	}
}

func TestSnapLenTruncation(t *testing.T) {
	s := simtime.NewScheduler()
	l := netem.NewLink(s, simrand.New(2), netem.Config{Name: "big"})
	l.SetHandler(func(simtime.Time, netem.Frame) {})
	c := New("snap")
	c.Attach(l)
	big := make([]byte, 4000)
	for i := range big {
		big[i] = byte(i)
	}
	l.Send(netem.Frame{Payload: big})
	s.Run()
	for _, r := range c.Records() {
		if len(r.Payload) != SnapLen {
			t.Errorf("payload kept %d bytes, want %d", len(r.Payload), SnapLen)
		}
		if r.Size != 4000 {
			t.Errorf("size %d, want full 4000", r.Size)
		}
	}
}

func TestPayloadIsCopied(t *testing.T) {
	s := simtime.NewScheduler()
	l := netem.NewLink(s, simrand.New(3), netem.Config{Name: "copy"})
	l.SetHandler(func(simtime.Time, netem.Frame) {})
	c := New("c")
	c.Attach(l)
	buf := []byte{1, 2, 3, 4}
	l.Send(netem.Frame{Payload: buf})
	buf[0] = 99 // mutate after capture
	s.Run()
	if c.Records()[0].Payload[0] != 1 {
		t.Error("capture aliased the caller's buffer")
	}
}

func TestResetAndReuse(t *testing.T) {
	c, _ := runLink(t, netem.Config{Name: "r"}, 2)
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset left records")
	}
}
