package capture

import (
	"math"
	"testing"

	"telepresence/internal/netem"
	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
)

func runLink(t *testing.T, cfg netem.Config, sends int) (*Capture, *netem.Link) {
	t.Helper()
	s := simtime.NewScheduler()
	l := netem.NewLink(s, simrand.New(1), cfg)
	l.SetHandler(func(simtime.Time, netem.Frame) {})
	c := New("test")
	c.SetRetain(true)
	c.Attach(l)
	for i := 0; i < sends; i++ {
		l.Send(netem.Frame{Size: 1000, Payload: []byte{byte(i), 1, 2, 3}})
	}
	s.Run()
	return c, l
}

func TestCaptureRecordsBothDirections(t *testing.T) {
	c, _ := runLink(t, netem.Config{Name: "ap", DelayMs: 5}, 3)
	if c.Len() != 6 { // 3 ingress + 3 egress
		t.Fatalf("captured %d records, want 6", c.Len())
	}
	in, out := 0, 0
	for _, r := range c.Records() {
		switch r.Dir {
		case netem.Ingress:
			in++
		case netem.Egress:
			out++
		}
		if r.Link != "ap" {
			t.Errorf("record link %q", r.Link)
		}
		if r.Size != 1000 {
			t.Errorf("record size %d", r.Size)
		}
	}
	if in != 3 || out != 3 {
		t.Errorf("in/out = %d/%d", in, out)
	}
	if got := len(c.Egress()); got != 3 {
		t.Errorf("Egress() = %d records", got)
	}
}

func TestCaptureRecordsDrops(t *testing.T) {
	c, _ := runLink(t, netem.Config{Name: "lossy", LossProb: 1}, 5)
	dropped := c.Filter(func(r Record) bool { return r.Dir == netem.Dropped })
	if len(dropped) != 5 {
		t.Errorf("%d dropped records, want 5", len(dropped))
	}
	if len(c.Egress()) != 0 {
		t.Error("egress records on a fully lossy link")
	}
}

func TestCaptureTimestampsOrdered(t *testing.T) {
	c, _ := runLink(t, netem.Config{Name: "t", DelayMs: 2, RateBps: 1e6}, 10)
	recs := c.Egress()
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatalf("egress records out of order at %d", i)
		}
	}
}

func TestSnapLenTruncation(t *testing.T) {
	s := simtime.NewScheduler()
	l := netem.NewLink(s, simrand.New(2), netem.Config{Name: "big"})
	l.SetHandler(func(simtime.Time, netem.Frame) {})
	c := New("snap")
	c.SetRetain(true)
	c.Attach(l)
	big := make([]byte, 4000)
	for i := range big {
		big[i] = byte(i)
	}
	l.Send(netem.Frame{Payload: big})
	s.Run()
	for _, r := range c.Records() {
		if len(r.Payload) != SnapLen {
			t.Errorf("payload kept %d bytes, want %d", len(r.Payload), SnapLen)
		}
		if r.Size != 4000 {
			t.Errorf("size %d, want full 4000", r.Size)
		}
	}
}

func TestPayloadIsCopied(t *testing.T) {
	s := simtime.NewScheduler()
	l := netem.NewLink(s, simrand.New(3), netem.Config{Name: "copy"})
	l.SetHandler(func(simtime.Time, netem.Frame) {})
	c := New("c")
	c.SetRetain(true)
	c.Attach(l)
	buf := []byte{1, 2, 3, 4}
	l.Send(netem.Frame{Payload: buf})
	buf[0] = 99 // mutate after capture
	s.Run()
	if c.Records()[0].Payload[0] != 1 {
		t.Error("capture aliased the caller's buffer")
	}
}

func TestResetAndReuse(t *testing.T) {
	c, _ := runLink(t, netem.Config{Name: "r"}, 2)
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset left records")
	}
}

// streamLink drives traffic through a default (streaming) capture.
func streamLink(t *testing.T, classifier Classifier) (*Capture, *simtime.Scheduler, *netem.Link) {
	t.Helper()
	s := simtime.NewScheduler()
	l := netem.NewLink(s, simrand.New(4), netem.Config{Name: "ap", DelayMs: 1})
	l.SetHandler(func(simtime.Time, netem.Frame) {})
	c := New("stream")
	if classifier != nil {
		c.SetClassifier(classifier)
	}
	c.Attach(l)
	return c, s, l
}

func TestStreamingModeKeepsNoRecords(t *testing.T) {
	c, s, l := streamLink(t, nil)
	for i := 0; i < 100; i++ {
		l.Send(netem.Frame{Size: 500, Payload: []byte{1, 2, 3}})
	}
	s.Run()
	if len(c.Records()) != 0 {
		t.Errorf("streaming capture retained %d records", len(c.Records()))
	}
	if c.Len() != 200 { // 100 ingress + 100 egress counted, not stored
		t.Errorf("Len() = %d, want 200", c.Len())
	}
	a := c.Agg("ap")
	if a == nil || a.Frames[netem.Egress] != 100 || a.Bytes[netem.Egress] != 50000 {
		t.Fatalf("egress aggregate wrong: %+v", a)
	}
}

// TestStreamingThroughputMatchesRecordScan pins the online binning to the
// record-based reference computation (ThroughputSample semantics: 1-second
// bins, first and last windows dropped).
func TestStreamingThroughputMatchesRecordScan(t *testing.T) {
	s := simtime.NewScheduler()
	l := netem.NewLink(s, simrand.New(5), netem.Config{Name: "tp"})
	l.SetHandler(func(simtime.Time, netem.Frame) {})
	c := New("tp")
	c.Attach(l)
	// 1250 bytes every 10 ms = 1 Mbps for 3.5 seconds.
	tk := simtime.NewTicker(s, 10*simtime.Millisecond, func(simtime.Time) {
		l.Send(netem.Frame{Size: 1250, Payload: []byte{0x80}})
	})
	s.RunFor(3500 * simtime.Millisecond)
	tk.Stop()
	sm := c.EgressThroughputSample("tp")
	if sm.N() != 2 { // 4 bins minus first and last
		t.Fatalf("sample N = %d, want 2", sm.N())
	}
	for _, v := range sm.Values() {
		if math.Abs(v-1.0) > 0.02 {
			t.Errorf("bin = %.3f Mbps, want ~1.0", v)
		}
	}
}

func TestStreamingClassifierCounts(t *testing.T) {
	// Class 2 for payloads starting 0x80, class 1 otherwise.
	c, s, l := streamLink(t, func(p []byte) int {
		if p[0] == 0x80 {
			return 2
		}
		return 1
	})
	for i := 0; i < 10; i++ {
		l.Send(netem.Frame{Size: 100, Payload: []byte{0x80}})
	}
	for i := 0; i < 4; i++ {
		l.Send(netem.Frame{Size: 100, Payload: []byte{0x40}})
	}
	l.Send(netem.Frame{Size: 100}) // no payload: not classified
	s.Run()
	best, counts := c.DominantClass("ap")
	if best != 2 || counts[2] != 10 || counts[1] != 4 {
		t.Errorf("DominantClass = %d, counts %v", best, counts)
	}
}

// TestTapSteadyStateAllocs pins the streaming tap's allocation budget: the
// per-packet capture path must not allocate once the bin array exists.
func TestTapSteadyStateAllocs(t *testing.T) {
	c, s, l := streamLink(t, func([]byte) int { return 1 })
	payload := []byte{0x80, 1, 2, 3}
	l.Send(netem.Frame{Size: 100, Payload: payload}) // warm up bins
	s.Run()
	tap := c.TapFor("ap")
	now := s.Now()
	allocs := testing.AllocsPerRun(200, func() {
		tap(now, netem.Frame{Size: 100, Payload: payload}, netem.Egress)
		tap(now, netem.Frame{Size: 100, Payload: payload}, netem.Ingress)
	})
	if allocs > 0 {
		t.Errorf("streaming tap allocates %.1f per frame, want 0", allocs)
	}
}
