// Package capture implements the paper's measurement vantage point: a
// wiretap on the WiFi AP links recording every frame's timestamp, size,
// direction and payload prefix (§3.2, "We use Wireshark on each AP to
// capture and analyze network traffic"). Payloads stay encrypted; the
// analysis package classifies and measures from headers and sizes alone,
// exactly as the paper had to.
package capture

import (
	"telepresence/internal/netem"
	"telepresence/internal/simtime"
)

// SnapLen bounds how much payload each record keeps, like tcpdump's -s.
const SnapLen = 64

// Record is one captured frame.
type Record struct {
	At   simtime.Time
	Size int
	Dir  netem.Direction
	Link string
	// Payload holds up to SnapLen bytes of the frame payload.
	Payload []byte
}

// Capture accumulates records from one or more link taps.
type Capture struct {
	Name    string
	records []Record
}

// New returns an empty capture.
func New(name string) *Capture { return &Capture{Name: name} }

// TapFor returns a netem.Tap that records frames traversing the named link.
func (c *Capture) TapFor(linkName string) netem.Tap {
	return func(now simtime.Time, f netem.Frame, dir netem.Direction) {
		r := Record{At: now, Size: f.Size, Dir: dir, Link: linkName}
		if n := len(f.Payload); n > 0 {
			if n > SnapLen {
				n = SnapLen
			}
			r.Payload = append([]byte(nil), f.Payload[:n]...)
		}
		c.records = append(c.records, r)
	}
}

// Attach installs taps on all the given links.
func (c *Capture) Attach(links ...*netem.Link) {
	for _, l := range links {
		l.AddTap(c.TapFor(l.Name()))
	}
}

// Records returns all captured records (not a copy).
func (c *Capture) Records() []Record { return c.records }

// Len reports the number of records.
func (c *Capture) Len() int { return len(c.records) }

// Reset clears the capture.
func (c *Capture) Reset() { c.records = c.records[:0] }

// Filter returns the records matching pred.
func (c *Capture) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, r := range c.records {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Egress returns only delivered frames — what a passive observer on the far
// side of the AP counts as throughput.
func (c *Capture) Egress() []Record {
	return c.Filter(func(r Record) bool { return r.Dir == netem.Egress })
}
