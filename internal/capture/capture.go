// Package capture implements the paper's measurement vantage point: a
// wiretap on the WiFi AP links recording every frame's timestamp, size,
// direction and payload prefix (§3.2, "We use Wireshark on each AP to
// capture and analyze network traffic"). Payloads stay encrypted; the
// analysis package classifies and measures from headers and sizes alone,
// exactly as the paper had to.
//
// By default a Capture is a streaming aggregator: per link it maintains
// online 1-second throughput bins, per-direction frame/byte counters and
// (when a Classifier is installed) per-protocol packet counts, all computed
// at the tap — O(session seconds) memory instead of O(packets), and no
// payload copies. Full per-packet records are an opt-in (SetRetain) used by
// tests and the passive-QoE experiments that genuinely need packet timing.
package capture

import (
	"telepresence/internal/netem"
	"telepresence/internal/simtime"
	"telepresence/internal/stats"
)

// SnapLen bounds how much payload each retained record keeps, like
// tcpdump's -s.
const SnapLen = 64

// Record is one captured frame (retained mode only).
type Record struct {
	At   simtime.Time
	Size int
	Dir  netem.Direction
	Link string
	// Payload holds up to SnapLen bytes of the frame payload.
	Payload []byte
}

// Classifier assigns a small non-negative class index (e.g. a protocol) to
// a payload prefix. Classification happens synchronously at the tap, so no
// payload bytes need to be retained.
type Classifier func(payload []byte) int

// maxClasses bounds the classifier's index range.
const maxClasses = 8

// nDirections covers netem.Ingress, Egress and Dropped.
const nDirections = 3

// LinkAgg is the streaming per-link aggregate a tap maintains.
type LinkAgg struct {
	Link string

	// Frames and Bytes count per direction (indexed by netem.Direction).
	Frames [nDirections]int64
	Bytes  [nDirections]int64

	// Egress throughput binning (online ThroughputSample).
	haveEgress  bool
	first, last simtime.Time
	bins        []int64

	// Egress protocol counts by classifier index.
	classes [maxClasses]int64
}

// Capture accumulates aggregates (and optionally records) from one or more
// link taps.
type Capture struct {
	Name string
	// BinWidth is the egress throughput binning window; the paper's
	// analysis uses 1-second bins. Set before attaching taps.
	BinWidth simtime.Duration

	classifier Classifier
	retain     bool
	records    []Record
	aggs       []*LinkAgg
	byLink     map[string]*LinkAgg
}

// New returns an empty, streaming-mode capture.
func New(name string) *Capture {
	return &Capture{Name: name, BinWidth: simtime.Second, byLink: map[string]*LinkAgg{}}
}

// SetRetain toggles full per-packet record retention (with payload
// prefixes). Retention costs O(packets) memory; enable it only when record-
// level analysis is required. Call before traffic flows.
func (c *Capture) SetRetain(retain bool) { c.retain = retain }

// Retaining reports whether full records are kept.
func (c *Capture) Retaining() bool { return c.retain }

// SetClassifier installs the streaming protocol classifier applied to every
// delivered frame. Call before traffic flows.
func (c *Capture) SetClassifier(fn Classifier) { c.classifier = fn }

// agg returns (creating if needed) the aggregate for a link name.
func (c *Capture) agg(linkName string) *LinkAgg {
	if a, ok := c.byLink[linkName]; ok {
		return a
	}
	a := &LinkAgg{Link: linkName}
	c.aggs = append(c.aggs, a)
	c.byLink[linkName] = a
	return a
}

// TapFor returns a netem.Tap that observes frames traversing the named link.
func (c *Capture) TapFor(linkName string) netem.Tap {
	a := c.agg(linkName)
	return func(now simtime.Time, f netem.Frame, dir netem.Direction) {
		a.Frames[dir]++
		a.Bytes[dir] += int64(f.Size)
		if dir == netem.Egress {
			if !a.haveEgress {
				a.haveEgress = true
				a.first = now
			}
			a.last = now
			bin := int(now.Sub(a.first) / c.BinWidth)
			for bin >= len(a.bins) {
				a.bins = append(a.bins, 0)
			}
			a.bins[bin] += int64(f.Size)
			if c.classifier != nil && len(f.Payload) > 0 {
				if cl := c.classifier(f.Payload); cl >= 0 && cl < maxClasses {
					a.classes[cl]++
				}
			}
		}
		if c.retain {
			r := Record{At: now, Size: f.Size, Dir: dir, Link: linkName}
			if n := len(f.Payload); n > 0 {
				if n > SnapLen {
					n = SnapLen
				}
				r.Payload = append([]byte(nil), f.Payload[:n]...)
			}
			c.records = append(c.records, r)
		}
	}
}

// Attach installs taps on all the given links.
func (c *Capture) Attach(links ...*netem.Link) {
	for _, l := range links {
		l.AddTap(c.TapFor(l.Name()))
	}
}

// Agg returns the streaming aggregate for a link, or nil if the link was
// never attached.
func (c *Capture) Agg(linkName string) *LinkAgg { return c.byLink[linkName] }

// EgressThroughputSample bins the link's delivered bytes into BinWidth
// windows and returns one Mbps sample per full window, dropping the first
// and last (partial) windows as the paper's tools do. It reproduces
// analysis.ThroughputSample over the link's egress records, computed online.
func (c *Capture) EgressThroughputSample(linkName string) *stats.Sample {
	a := c.byLink[linkName]
	if a == nil || !a.haveEgress {
		return &stats.Sample{}
	}
	n := int(a.last.Sub(a.first)/c.BinWidth) + 1
	binSec := float64(c.BinWidth) / float64(simtime.Second)
	lo, hi := 0, n
	if n > 2 {
		lo, hi = 1, n-1
	}
	s := stats.NewSampleCap(hi - lo)
	for i := lo; i < hi; i++ {
		var b int64
		if i < len(a.bins) {
			b = a.bins[i]
		}
		s.Add(float64(b) * 8 / binSec / 1e6)
	}
	return s
}

// DominantClass sums the egress classifier counts over the named links and
// returns the nonzero class with the most packets (ties to the lowest
// index), or 0 when nothing was classified. Class 0 is reserved for
// "unknown" and never wins.
func (c *Capture) DominantClass(linkNames ...string) (best int, counts [maxClasses]int64) {
	for _, name := range linkNames {
		if a := c.byLink[name]; a != nil {
			for i, n := range a.classes {
				counts[i] += n
			}
		}
	}
	bestN := int64(0)
	for i := 1; i < maxClasses; i++ {
		if counts[i] > bestN {
			best, bestN = i, counts[i]
		}
	}
	return best, counts
}

// Records returns all captured records (not a copy). Empty unless retention
// is enabled.
func (c *Capture) Records() []Record { return c.records }

// Len reports the number of observed frames (all directions, all links).
func (c *Capture) Len() int {
	if c.retain {
		return len(c.records)
	}
	var n int64
	for _, a := range c.aggs {
		n += a.Frames[netem.Ingress] + a.Frames[netem.Egress] + a.Frames[netem.Dropped]
	}
	return int(n)
}

// Reset clears records and aggregates.
func (c *Capture) Reset() {
	c.records = c.records[:0]
	for _, a := range c.aggs {
		*a = LinkAgg{Link: a.Link}
	}
}

// Filter returns the retained records matching pred.
func (c *Capture) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, r := range c.records {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Egress returns only delivered frames — what a passive observer on the far
// side of the AP counts as throughput. Retained mode only.
func (c *Capture) Egress() []Record {
	return c.Filter(func(r Record) bool { return r.Dir == netem.Egress })
}
