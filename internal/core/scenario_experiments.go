package core

import (
	"fmt"

	"telepresence/internal/geo"
	"telepresence/internal/scenario"
	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
	"telepresence/internal/vca"
)

// The scenario experiments run full spatial sessions under time-varying
// impairment schedules — the paper's §4.3 methodology made declarative.
// Each is registered twice: as a fixed-grid fleet experiment (one rep per
// default-grid cell, so the golden suite pins its rows) and as a sweep
// target (vpfleet sweep) whose grid axes are the schedule parameters.
//
// A cell's randomness derives from the run seed and the cell's parameter
// values alone (SweepCellOptions), so a sweep cell at the default
// parameters reproduces the registry experiment's row byte-for-byte, and
// reshaping a grid never changes any cell's rows.

// SweepCellOptions derives the per-cell options for one sweep cell: the
// cell's seed is a pure function of the run seed, the target name, and the
// canonical parameter label — never the cell's position in a grid.
func SweepCellOptions(opts Options, target string, params map[string]float64) Options {
	opts.Seed = simrand.ChildSeed(opts.Seed, "sweep/"+target+"/"+scenario.ParamLabel(params))
	return opts
}

// scenarioSessionConfig is the standard two-user spatial session the
// scenario experiments impair: FaceTime between two Vision Pros,
// Ashburn-New York, like the paper's testbed calls. Schedules need time to
// bite, so the session never runs shorter than 12 s regardless of scale.
func scenarioSessionConfig(seed int64, dur simtime.Duration) vca.SessionConfig {
	sc := vca.DefaultSessionConfig(vca.FaceTime, []vca.Participant{
		{ID: "u1", Loc: geo.Ashburn, Device: vca.VisionPro},
		{ID: "u2", Loc: geo.NewYork, Device: vca.VisionPro},
	})
	if dur < 12*simtime.Second {
		dur = 12 * simtime.Second
	}
	sc.Duration = dur
	sc.Seed = seed
	return sc
}

// --------------------------------------------------------------- handover

// HandoverRow is one cell of the handover experiment: a mid-call path
// switch modeled as a one-way delay step of StepDelayMs for the middle
// third of the session.
type HandoverRow struct {
	StepDelayMs float64
	// UnavailableFrac is the fraction of the session the receiver's persona
	// showed "poor connection".
	UnavailableFrac float64
	// MeanLatencyMs is the mean capture-to-decode frame latency.
	MeanLatencyMs float64
	// DecodedFrac is receiver decodes over sender emissions.
	DecodedFrac float64
}

// DefaultHandoverDelaysMs is the registry experiment's delay-step grid,
// inside the paper's 0-1,000 ms injection range.
func DefaultHandoverDelaysMs() []float64 { return []float64{100, 500, 1000} }

// handoverCell runs one delay-step cell.
func handoverCell(opts Options, params map[string]float64) (HandoverRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return HandoverRow{}, err
	}
	cell := SweepCellOptions(opts, "handover", params)
	sc := scenarioSessionConfig(cell.Seed, cell.SessionDuration)
	tc, tdone, err := cellTelemetry(cell, "handover", scenario.ParamLabel(params))
	if err != nil {
		return HandoverRow{}, err
	}
	sc.Telemetry = tc
	pp, pdone, err := cellProf(cell, "handover", scenario.ParamLabel(params))
	if err != nil {
		return HandoverRow{}, err
	}
	sc.Prof = pp
	sess, err := vca.NewSession(sc)
	if err != nil {
		return HandoverRow{}, err
	}
	stepMs := params["delay_ms"]
	sched := scenario.DelayStep(stepMs, sc.Duration/3, 2*sc.Duration/3)
	if err := sched.Bind(sess.Scheduler(), sess.UplinkShaper(0)); err != nil {
		return HandoverRow{}, err
	}
	res := sess.Run()
	if err := tdone(); err != nil {
		return HandoverRow{}, err
	}
	if err := pdone(); err != nil {
		return HandoverRow{}, err
	}
	return HandoverRow{
		StepDelayMs:     stepMs,
		UnavailableFrac: res.Users[1].UnavailableFrac,
		MeanLatencyMs:   res.Users[1].MeanFrameLatencyMs,
		DecodedFrac:     decodedFrac(res, 0, 1),
	}, nil
}

// decodedFrac is receiver j's decode count over sender i's emissions.
func decodedFrac(res *vca.Results, i, j int) float64 {
	if res.Users[i].FramesSent == 0 {
		return 0
	}
	return float64(res.Users[j].FramesDecoded) / float64(res.Users[i].FramesSent)
}

// -------------------------------------------------------------- burstloss

// BurstLossRow is one cell of the burst-loss experiment: a Gilbert-Elliott
// channel on the sender's uplink for the whole session.
type BurstLossRow struct {
	GoodToBad float64
	BadToGood float64
	LossBad   float64
	// MeasuredLoss is the uplink's realized frame-loss fraction.
	MeasuredLoss    float64
	UnavailableFrac float64
	MeanLatencyMs   float64
	DecodedFrac     float64
}

// burstLossGrid is the registry experiment's default channel grid: light,
// moderate and heavy bursting (mean burst lengths 3.3, 4 and 6.7 frames).
var burstLossGrid = []map[string]float64{
	{"p_good_bad": 0.005, "p_bad_good": 0.3, "loss_bad": 0.9},
	{"p_good_bad": 0.02, "p_bad_good": 0.25, "loss_bad": 0.9},
	{"p_good_bad": 0.05, "p_bad_good": 0.15, "loss_bad": 0.95},
}

// burstLossCell runs one Gilbert-Elliott cell.
func burstLossCell(opts Options, params map[string]float64) (BurstLossRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return BurstLossRow{}, err
	}
	cell := SweepCellOptions(opts, "burstloss", params)
	sc := scenarioSessionConfig(cell.Seed, cell.SessionDuration)
	tc, tdone, err := cellTelemetry(cell, "burstloss", scenario.ParamLabel(params))
	if err != nil {
		return BurstLossRow{}, err
	}
	sc.Telemetry = tc
	pp, pdone, err := cellProf(cell, "burstloss", scenario.ParamLabel(params))
	if err != nil {
		return BurstLossRow{}, err
	}
	sc.Prof = pp
	sess, err := vca.NewSession(sc)
	if err != nil {
		return BurstLossRow{}, err
	}
	bp := scenario.BurstParams{
		GoodToBad: params["p_good_bad"],
		BadToGood: params["p_bad_good"],
		LossBad:   params["loss_bad"],
	}
	sched := scenario.BurstLoss(bp, 0, 0)
	if err := sched.Bind(sess.Scheduler(), sess.UplinkShaper(0)); err != nil {
		return BurstLossRow{}, err
	}
	res := sess.Run()
	if err := tdone(); err != nil {
		return BurstLossRow{}, err
	}
	if err := pdone(); err != nil {
		return BurstLossRow{}, err
	}
	up := sess.UplinkStats(0)
	var measured float64
	if up.SentFrames > 0 {
		measured = float64(up.DroppedLoss) / float64(up.SentFrames)
	}
	return BurstLossRow{
		GoodToBad: bp.GoodToBad, BadToGood: bp.BadToGood, LossBad: bp.LossBad,
		MeasuredLoss:    measured,
		UnavailableFrac: res.Users[1].UnavailableFrac,
		MeanLatencyMs:   res.Users[1].MeanFrameLatencyMs,
		DecodedFrac:     decodedFrac(res, 0, 1),
	}, nil
}

// ------------------------------------------------------------- congestion

// CongestionRow is one cell of the congestion experiment: the uplink's
// rate cap ramps from StartMbps down to FloorMbps and back over the middle
// of the session, modeling congestion onset and recovery.
type CongestionRow struct {
	StartMbps float64
	FloorMbps float64
	// QueueDropFrac is the uplink's drop-tail overflow fraction — nonzero
	// only while the shrinking cap makes the serializer queue bite.
	QueueDropFrac   float64
	UnavailableFrac float64
	MeanLatencyMs   float64
	DecodedFrac     float64
}

// DefaultCongestionFloorsMbps is the registry experiment's floor grid,
// straddling the spatial persona's ~1.5 Mbps uplink demand.
func DefaultCongestionFloorsMbps() []float64 { return []float64{2.0, 1.0, 0.5} }

// congestionCell runs one bandwidth-ramp cell. The ramp falls over
// [D/4, D/4+D/8], holds the floor until 5D/8, rises back over D/8, then
// clears.
func congestionCell(opts Options, params map[string]float64) (CongestionRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return CongestionRow{}, err
	}
	cell := SweepCellOptions(opts, "congestion", params)
	sc := scenarioSessionConfig(cell.Seed, cell.SessionDuration)
	tc, tdone, err := cellTelemetry(cell, "congestion", scenario.ParamLabel(params))
	if err != nil {
		return CongestionRow{}, err
	}
	sc.Telemetry = tc
	pp, pdone, err := cellProf(cell, "congestion", scenario.ParamLabel(params))
	if err != nil {
		return CongestionRow{}, err
	}
	sc.Prof = pp
	sess, err := vca.NewSession(sc)
	if err != nil {
		return CongestionRow{}, err
	}
	start, floor := params["start_mbps"]*1e6, params["floor_mbps"]*1e6
	if !(floor > 0) || !(start > 0) {
		return CongestionRow{}, fmt.Errorf("congestion: start_mbps %g and floor_mbps %g must both be positive",
			params["start_mbps"], params["floor_mbps"])
	}
	if floor > start {
		return CongestionRow{}, fmt.Errorf("congestion: floor %g Mbps above start %g Mbps",
			params["floor_mbps"], params["start_mbps"])
	}
	d := sc.Duration
	sched := scenario.BandwidthRamp(start, floor, d/4, d/8, 5*d/8, d/8)
	if err := sched.Bind(sess.Scheduler(), sess.UplinkShaper(0)); err != nil {
		return CongestionRow{}, err
	}
	res := sess.Run()
	if err := tdone(); err != nil {
		return CongestionRow{}, err
	}
	if err := pdone(); err != nil {
		return CongestionRow{}, err
	}
	up := sess.UplinkStats(0)
	var qdrop float64
	if up.SentFrames > 0 {
		qdrop = float64(up.DroppedQueue) / float64(up.SentFrames)
	}
	return CongestionRow{
		StartMbps: params["start_mbps"], FloorMbps: params["floor_mbps"],
		QueueDropFrac:   qdrop,
		UnavailableFrac: res.Users[1].UnavailableFrac,
		MeanLatencyMs:   res.Users[1].MeanFrameLatencyMs,
		DecodedFrac:     decodedFrac(res, 0, 1),
	}, nil
}

// ---------------------------------------------------------- registration

// withDefaults overlays grid onto the target's defaults so every recognized
// parameter is present.
func withDefaults(t SweepTarget, grid map[string]float64) map[string]float64 {
	p := t.DefaultParams()
	//vplint:allow maporder(keyed map-into-map overlay; each key is written once, so order cannot matter)
	for k, v := range grid {
		p[k] = v
	}
	return p
}

func init() {
	handover := SweepTarget{
		Name: "handover", Desc: "§4.3 scenario: mid-call one-way delay step (path handover)",
		Row: HandoverRow{},
		Params: []SweepParam{
			{Name: "delay_ms", Default: 500, Desc: "injected one-way delay during the step"},
		},
		Run: func(o Options, p map[string]float64) ([]Row, error) { return rows(handoverCell(o, p)) },
	}
	burst := SweepTarget{
		Name: "burstloss", Desc: "§4.3 scenario: Gilbert-Elliott burst loss on the uplink",
		Row: BurstLossRow{},
		Params: []SweepParam{
			{Name: "p_good_bad", Default: 0.02, Desc: "per-frame P(good->bad)"},
			{Name: "p_bad_good", Default: 0.25, Desc: "per-frame P(bad->good)"},
			{Name: "loss_bad", Default: 0.9, Desc: "loss probability in the bad state"},
		},
		Run: func(o Options, p map[string]float64) ([]Row, error) { return rows(burstLossCell(o, p)) },
	}
	congestion := SweepTarget{
		Name: "congestion", Desc: "§4.3 scenario: mid-call bandwidth ramp to a floor and back",
		Row: CongestionRow{},
		Params: []SweepParam{
			{Name: "start_mbps", Default: 4, Desc: "uncongested rate cap"},
			{Name: "floor_mbps", Default: 1, Desc: "rate floor at peak congestion"},
		},
		Run: func(o Options, p map[string]float64) ([]Row, error) { return rows(congestionCell(o, p)) },
	}
	RegisterSweep(handover)
	RegisterSweep(burst)
	RegisterSweep(congestion)

	Register(Experiment{
		Name: "handover", Desc: handover.Desc + " (default grid)",
		Row: HandoverRow{}, Reps: fixed(len(DefaultHandoverDelaysMs())),
		Run: func(o Options, rep int) ([]Row, error) {
			p := withDefaults(handover, map[string]float64{"delay_ms": DefaultHandoverDelaysMs()[rep]})
			return rows(handoverCell(o, p))
		},
	})
	Register(Experiment{
		Name: "burstloss", Desc: burst.Desc + " (default grid)",
		Row: BurstLossRow{}, Reps: fixed(len(burstLossGrid)),
		Run: func(o Options, rep int) ([]Row, error) {
			return rows(burstLossCell(o, withDefaults(burst, burstLossGrid[rep])))
		},
	})
	Register(Experiment{
		Name: "congestion", Desc: congestion.Desc + " (default grid)",
		Row: CongestionRow{}, Reps: fixed(len(DefaultCongestionFloorsMbps())),
		Run: func(o Options, rep int) ([]Row, error) {
			p := withDefaults(congestion, map[string]float64{"floor_mbps": DefaultCongestionFloorsMbps()[rep]})
			return rows(congestionCell(o, p))
		},
	})
}
