// Package core assembles the substrates into the paper's experiments: one
// runner per figure and per §4.3 analysis, each returning the rows the
// paper plots. The bench harness (bench_test.go) and cmd/vpbench print
// these next to the paper's numbers.
package core

import (
	"fmt"
	"sort"

	"telepresence/internal/geo"
	"telepresence/internal/keypoints"
	"telepresence/internal/mesh"
	"telepresence/internal/meshcodec"
	"telepresence/internal/semantic"
	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
	"telepresence/internal/stats"
	"telepresence/internal/vca"
)

// Options tunes experiment scale. Quick mode shrinks durations and
// repetition counts so the full suite runs in seconds; full mode approaches
// the paper's 120-second, five-repetition methodology.
type Options struct {
	Seed int64
	// SessionDuration is the simulated length of each throughput session.
	SessionDuration simtime.Duration
	// Reps is how many times each experiment repeats (paper: >=5).
	Reps int
	// TraceDir, when non-empty, makes every scenario cell write its session
	// event trace (internal/telemetry JSONL) to
	// <TraceDir>/<target>__<label>.trace.jsonl. Traces observe but never
	// steer: rows are byte-identical with or without tracing.
	TraceDir string
	// MetricsDir, when non-empty, makes every scenario cell write its
	// sampled metrics timeseries to <MetricsDir>/<target>__<label>.metrics.csv.
	MetricsDir string
	// ProfDir, when non-empty, makes every scenario cell attach a
	// virtual-time profiler (internal/vprof) and write
	// <ProfDir>/<target>__<label>.vprof.jsonl (deterministic site counters)
	// plus <target>__<label>.vprof.pb.gz (pprof, includes wall CPU).
	// Profiles observe but never steer: rows are byte-identical with or
	// without profiling.
	ProfDir string
}

// Quick returns fast options for tests and CI.
func Quick(seed int64) Options {
	return Options{Seed: seed, SessionDuration: 6 * simtime.Second, Reps: 2}
}

// Full returns paper-scale options.
func Full(seed int64) Options {
	return Options{Seed: seed, SessionDuration: 120 * simtime.Second, Reps: 5}
}

// Validate rejects nonsensical option values. Zero values are legal (they
// select defaults); negative values are configuration errors and are
// surfaced rather than silently replaced.
func (o Options) Validate() error {
	if o.SessionDuration < 0 {
		return fmt.Errorf("core: negative SessionDuration %v", o.SessionDuration)
	}
	if o.Reps < 0 {
		return fmt.Errorf("core: negative Reps %d", o.Reps)
	}
	return nil
}

// Normalize validates o and fills defaults for unset (zero) fields: a
// 6-second session and 2 repetitions, the Quick scale.
func (o Options) Normalize() (Options, error) {
	if err := o.Validate(); err != nil {
		return o, err
	}
	if o.SessionDuration == 0 {
		o.SessionDuration = 6 * simtime.Second
	}
	if o.Reps == 0 {
		o.Reps = 2
	}
	return o, nil
}

// Fingerprint is a stable digest of every result-affecting option — the
// checkpoint journal's "params-hash". Two runs whose fingerprints (and unit
// identities) match produce byte-identical rows, so journaled work is
// reusable exactly when fingerprints agree; resuming with a different seed
// or scale simply misses and re-runs. Observability settings (TraceDir,
// MetricsDir, ProfDir) never steer results and are excluded.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("seed=%d,dur=%d,reps=%d", o.Seed, int64(o.SessionDuration), o.Reps)
}

// ---------------------------------------------------------------- Figure 4

// Fig4Row is one CDF line of Figure 4.
type Fig4Row struct {
	Label  string
	Sample *stats.Sample
}

// fig4Rep measures one repetition of the Figure 4 matrix: ten RTT samples
// per vantage toward every server, under a rep-derived child seed, so
// repetitions are independent and can run on any worker in any order.
func fig4Rep(opts Options, rep int) ([]Fig4Row, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	rng := simrand.Child(opts.Seed, fmt.Sprintf("fig4/rep%d", rep))
	series := vca.Fig4Series(rng, 10)
	labels := make([]string, 0, len(series))
	for l := range series {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]Fig4Row, 0, len(labels))
	for _, l := range labels {
		out = append(out, Fig4Row{Label: l, Sample: series[l]})
	}
	return out, nil
}

// Fig4 measures RTTs from the nine vantage points to every provider server,
// merging opts.Reps independent repetitions.
func Fig4(opts Options) ([]Fig4Row, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	agg := map[string]*stats.Sample{}
	var labels []string
	for rep := 0; rep < opts.Reps; rep++ {
		rows, err := fig4Rep(opts, rep)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			s, ok := agg[r.Label]
			if !ok {
				s = &stats.Sample{}
				agg[r.Label] = s
				labels = append(labels, r.Label)
			}
			s.Add(r.Sample.Values()...)
		}
	}
	sort.Strings(labels)
	out := make([]Fig4Row, 0, len(labels))
	for _, l := range labels {
		out = append(out, Fig4Row{Label: l, Sample: agg[l]})
	}
	return out, nil
}

// anycastApp audits one provider's servers; rep indexes into vca.Apps().
func anycastApp(opts Options, rep int) ([]vca.AnycastVerdict, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	app := vca.Apps()[rep]
	probe := vca.NewRTTProbe()
	var out []vca.AnycastVerdict
	for _, srv := range vca.SpecFor(app).Servers {
		rng := simrand.Child(opts.Seed, "anycast/"+app.String()+srv.Name)
		m := probe.MinRTTMatrix(app, srv, rng, 5*opts.Reps)
		out = append(out, vca.DetectAnycast(srv, m))
	}
	return out, nil
}

// AnycastAudit runs the §4.1 anycast check against every provider server.
func AnycastAudit(opts Options) ([]vca.AnycastVerdict, error) {
	var out []vca.AnycastVerdict
	for i := range vca.Apps() {
		rows, err := anycastApp(opts, i)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// ------------------------------------------------------------ §4.1 matrix

// ProtocolCase is one row of the §4.1 protocol/topology matrix.
type ProtocolCase struct {
	Desc      string
	App       vca.App
	Devices   []vca.Device
	Media     vca.MediaKind
	Transport vca.Transport
	P2P       bool
}

// ProtocolMatrix evaluates the §4.1 decision matrix over the paper's device
// mixes and returns observed plans.
func ProtocolMatrix() []ProtocolCase {
	mixes := []struct {
		desc    string
		app     vca.App
		devices []vca.Device
	}{
		{"FaceTime VP+VP", vca.FaceTime, []vca.Device{vca.VisionPro, vca.VisionPro}},
		{"FaceTime VP+MacBook", vca.FaceTime, []vca.Device{vca.VisionPro, vca.MacBook}},
		{"FaceTime VP+iPad", vca.FaceTime, []vca.Device{vca.VisionPro, vca.IPad}},
		{"FaceTime VP+iPhone", vca.FaceTime, []vca.Device{vca.VisionPro, vca.IPhone}},
		{"Zoom VP+VP", vca.Zoom, []vca.Device{vca.VisionPro, vca.VisionPro}},
		{"Zoom VP+VP+VP", vca.Zoom, []vca.Device{vca.VisionPro, vca.VisionPro, vca.VisionPro}},
		{"Webex VP+VP", vca.Webex, []vca.Device{vca.VisionPro, vca.VisionPro}},
		{"Teams VP+VP", vca.Teams, []vca.Device{vca.VisionPro, vca.VisionPro}},
	}
	locs := []geo.Location{geo.Ashburn, geo.NewYork, geo.Chicago}
	var out []ProtocolCase
	for _, m := range mixes {
		parts := make([]vca.Participant, len(m.devices))
		for i, d := range m.devices {
			parts[i] = vca.Participant{ID: fmt.Sprintf("u%d", i+1), Loc: locs[i%len(locs)], Device: d}
		}
		plan, err := vca.PlanSession(m.app, parts, 0)
		if err != nil {
			continue
		}
		out = append(out, ProtocolCase{
			Desc: m.desc, App: m.app, Devices: m.devices,
			Media: plan.Media, Transport: plan.Transport, P2P: plan.P2P,
		})
	}
	return out
}

// ---------------------------------------------------------------- Figure 5

// Fig5Row is one box of Figure 5: per-app two-user uplink throughput.
type Fig5Row struct {
	Label string // F, F*, Z, W, T as in the paper
	Box   stats.Box
}

// fig5Cases are the five measured app/peer mixes, in the paper's order.
var fig5Cases = []struct {
	label  string
	app    vca.App
	peerTy vca.Device
}{
	{"F", vca.FaceTime, vca.VisionPro},
	{"F*", vca.FaceTime, vca.MacBook},
	{"Z", vca.Zoom, vca.VisionPro},
	{"W", vca.Webex, vca.VisionPro},
	{"T", vca.Teams, vca.VisionPro},
}

// fig5Case runs all repetitions of one app/peer mix. Each case draws from
// its own seed range, so cases are independent work units.
func fig5Case(opts Options, ci int) (Fig5Row, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return Fig5Row{}, err
	}
	c := fig5Cases[ci]
	agg := &stats.Sample{}
	for rep := 0; rep < opts.Reps; rep++ {
		sc := vca.DefaultSessionConfig(c.app, []vca.Participant{
			{ID: "u1", Loc: geo.Ashburn, Device: vca.VisionPro},
			{ID: "u2", Loc: geo.NewYork, Device: c.peerTy},
		})
		sc.Duration = opts.SessionDuration
		sc.Seed = opts.Seed + int64(ci*100+rep)
		sess, err := vca.NewSession(sc)
		if err != nil {
			return Fig5Row{}, fmt.Errorf("fig5 %s: %w", c.label, err)
		}
		res := sess.Run()
		agg.Add(res.Users[0].Uplink.Values()...)
	}
	return Fig5Row{Label: c.label, Box: agg.BoxStats()}, nil
}

// Fig5 measures two-user throughput for FaceTime spatial (F), FaceTime 2D
// persona (F*, Vision Pro with a MacBook peer), Zoom, Webex and Teams.
func Fig5(opts Options) ([]Fig5Row, error) {
	out := make([]Fig5Row, 0, len(fig5Cases))
	for ci := range fig5Cases {
		row, err := fig5Case(opts, ci)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// ------------------------------------------------------- §4.3 estimations

// MeshStreamingResult is the direct-3D-streaming estimate of §4.3.
type MeshStreamingResult struct {
	// MbpsSample holds one bitrate estimate per head mesh.
	MbpsSample *stats.Sample
	// Triangles records each head's triangle count.
	Triangles []int
}

// MeshHeadRow is one head's Draco-class streaming estimate, the unit row
// the fleet scheduler shards MeshStreaming into.
type MeshHeadRow struct {
	Head      int
	Triangles int
	Mbps      float64
}

// meshHead generates, compresses and prices one head under a head-derived
// child seed, so the ten heads are independent work units.
func meshHead(opts Options, head int) (MeshHeadRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return MeshHeadRow{}, err
	}
	rng := simrand.Child(opts.Seed, fmt.Sprintf("mesh/head%d", head))
	tris := 70000 + rng.Intn(20001)
	m := mesh.GenerateHead(rng.Split("geom"), mesh.HeadConfig{
		TargetTriangles: tris, Radius: 0.1, Variation: 1,
	})
	enc, err := meshcodec.Encode(m, meshcodec.DefaultQuantBits)
	if err != nil {
		return MeshHeadRow{}, err
	}
	return MeshHeadRow{
		Head:      head,
		Triangles: m.TriangleCount(),
		Mbps:      meshcodec.StreamBitrateBps(len(enc), 90) / 1e6,
	}, nil
}

// MeshStreaming reproduces the Draco estimate: ten human-head meshes with
// 70-90K triangles, compressed and streamed at 90 FPS.
func MeshStreaming(opts Options) (*MeshStreamingResult, error) {
	res := &MeshStreamingResult{MbpsSample: &stats.Sample{}}
	for i := 0; i < 10; i++ {
		row, err := meshHead(opts, i)
		if err != nil {
			return nil, err
		}
		res.Triangles = append(res.Triangles, row.Triangles)
		res.MbpsSample.Add(row.Mbps)
	}
	return res, nil
}

// KeypointStreamingResult is the semantic-communication estimate of §4.3.
type KeypointStreamingResult struct {
	// MbpsSample holds one bitrate estimate per repetition.
	MbpsSample *stats.Sample
	// Keypoints is the transmitted keypoint count (74 in the paper).
	Keypoints int
}

// KeypointRow is one repetition's semantic-streaming estimate, the unit row
// the fleet scheduler shards KeypointStreaming into.
type KeypointRow struct {
	Rep       int
	Keypoints int
	Mbps      float64
}

// keypointRep prices one repetition: 2,000 captured frames of 74 keypoints,
// compressed and streamed at 90 FPS, under the rep's own seed.
func keypointRep(opts Options, rep int) (KeypointRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return KeypointRow{}, err
	}
	gen := keypoints.NewGenerator(simrand.New(opts.Seed+int64(rep)), keypoints.DefaultMotionConfig())
	enc := semantic.NewEncoder(semantic.ModeFloat32)
	var total int
	const frames = 2000
	for i := 0; i < frames; i++ {
		f := gen.Next()
		total += len(enc.Encode(&f))
	}
	return KeypointRow{
		Rep:       rep,
		Keypoints: keypoints.TrackedTotal,
		Mbps:      semantic.BitrateBps(float64(total)/frames, 90) / 1e6,
	}, nil
}

// KeypointStreaming reproduces the paper's estimate: 2,000 captured frames
// of 74 keypoints, compressed (lzma-like) and streamed at 90 FPS.
func KeypointStreaming(opts Options) (*KeypointStreamingResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	res := &KeypointStreamingResult{
		MbpsSample: &stats.Sample{},
		Keypoints:  keypoints.TrackedTotal,
	}
	for rep := 0; rep < opts.Reps; rep++ {
		row, err := keypointRep(opts, rep)
		if err != nil {
			return nil, err
		}
		res.MbpsSample.Add(row.Mbps)
	}
	return res, nil
}

// RateAdaptationRow is one point of the §4.3 bandwidth-cap sweep.
type RateAdaptationRow struct {
	CapMbps float64
	// UnavailableFrac is how much of the session the receiver's persona
	// was in "poor connection" state.
	UnavailableFrac float64
	// MeanLatencyMs is the mean frame age at decode.
	MeanLatencyMs float64
}

// DefaultRateCaps is the registry's bandwidth-cap sweep (Mbps; 0 = no cap),
// the caps cmd/vpbench prints.
func DefaultRateCaps() []float64 { return []float64{0, 2.0, 1.0, 0.7} }

// rateCase runs one capped session; i seeds the session so each cap is an
// independent work unit.
func rateCase(opts Options, i int, capMbps float64) (RateAdaptationRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return RateAdaptationRow{}, err
	}
	sc := vca.DefaultSessionConfig(vca.FaceTime, []vca.Participant{
		{ID: "u1", Loc: geo.Ashburn, Device: vca.VisionPro},
		{ID: "u2", Loc: geo.NewYork, Device: vca.VisionPro},
	})
	sc.Duration = opts.SessionDuration
	if sc.Duration < 12*simtime.Second {
		sc.Duration = 12 * simtime.Second // queues need time to bite
	}
	sc.Seed = opts.Seed + int64(i)
	sess, err := vca.NewSession(sc)
	if err != nil {
		return RateAdaptationRow{}, err
	}
	if capMbps > 0 {
		sess.UplinkShaper(0).RateBps = capMbps * 1e6
	}
	res := sess.Run()
	return RateAdaptationRow{
		CapMbps:         capMbps,
		UnavailableFrac: res.Users[1].UnavailableFrac,
		MeanLatencyMs:   res.Users[1].MeanFrameLatencyMs,
	}, nil
}

// RateAdaptation sweeps uplink caps over a spatial session and reports
// persona availability: semantic streams cannot shed rate, so availability
// collapses once the cap bites (§4.3).
func RateAdaptation(opts Options, capsMbps []float64) ([]RateAdaptationRow, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var out []RateAdaptationRow
	for i, capMbps := range capsMbps {
		row, err := rateCase(opts, i, capMbps)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}
