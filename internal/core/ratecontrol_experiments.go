package core

import (
	"fmt"
	"math"

	"telepresence/internal/geo"
	"telepresence/internal/ratecontrol"
	"telepresence/internal/scenario"
	"telepresence/internal/simtime"
	"telepresence/internal/vca"
)

// The rate-control experiments close the loop the paper's §4.3 open-loop
// measurements leave dangling: the same capped/ramped uplinks, but with the
// sender running a congestion controller (internal/ratecontrol) fed by
// RTCP-style receiver reports over the reverse path (internal/vca's
// RateControl wiring). Each cell compares a controller against the
// open-loop baseline ("fixed") at the same impairment.
//
// Both experiments follow the scenario-experiment determinism contract:
// registered twice (fixed default grid for the golden suite, sweep target
// for vpfleet sweep grids), with every cell's seed derived from the run
// seed and the cell's parameter values alone via SweepCellOptions.
// Controllers are addressed by their index in ratecontrol.Kinds() so they
// can ride a numeric sweep axis; the index order is part of the cell-seed
// contract.

// controllerFromParam resolves the "controller" sweep parameter (an index
// into ratecontrol.Kinds) to its kind name.
func controllerFromParam(params map[string]float64) (string, error) {
	v := params["controller"]
	idx := int(math.Round(v))
	kinds := ratecontrol.Kinds()
	if math.Abs(v-float64(idx)) > 1e-9 || idx < 0 || idx >= len(kinds) {
		return "", fmt.Errorf("ratecontrol: controller index %g not in [0,%d] (%v)",
			v, len(kinds)-1, kinds)
	}
	return kinds[idx], nil
}

// ------------------------------------------------------------------ ccrate

// CCRateRow is one cell of the closed-loop rate-adaptation experiment: a
// 2D-video Zoom call (P2P two-party) under a static uplink cap, with the
// named controller closing the loop. Controller "fixed" is the open-loop
// baseline the paper measured.
type CCRateRow struct {
	Controller string
	// CapMbps is the static uplink cap (0 = uncapped).
	CapMbps float64
	// AchievedMbps is the uplink's delivered rate over the whole session,
	// as the AP observer sees it (media + audio + feedback).
	AchievedMbps float64
	// MeanTargetMbps is the controller target averaged over all feedback
	// arrivals.
	MeanTargetMbps float64
	// QueueDropFrac is the uplink's drop-tail overflow fraction.
	QueueDropFrac   float64
	UnavailableFrac float64
	MeanLatencyMs   float64
	DecodedFrac     float64
}

// DefaultCCRateControllers returns the controller-index grid (every kind).
func DefaultCCRateControllers() []float64 {
	out := make([]float64, len(ratecontrol.Kinds()))
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// DefaultCCRateCaps is the ccrate registry grid in Mbps (0 = uncapped),
// straddling Zoom's 1.4 Mbps encoder target: a cap that never bites, one
// that barely bites, and two that strangle a fixed-rate sender.
func DefaultCCRateCaps() []float64 { return []float64{0, 1.2, 0.9, 0.6} }

// ccrateSessionConfig is the standard 2D-video session the closed-loop cap
// experiment impairs: a two-party Zoom call (640x360, 1.4 Mbps target),
// which plans to P2P RTP, so the feedback path is the raw reverse pipe.
// Like the scenario experiments, sessions never run shorter than 12 s so
// queues have time to bite.
func ccrateSessionConfig(seed int64, dur simtime.Duration, controller string) vca.SessionConfig {
	sc := vca.DefaultSessionConfig(vca.Zoom, []vca.Participant{
		{ID: "u1", Loc: geo.Ashburn, Device: vca.VisionPro},
		{ID: "u2", Loc: geo.NewYork, Device: vca.VisionPro},
	})
	if dur < 12*simtime.Second {
		dur = 12 * simtime.Second
	}
	sc.Duration = dur
	sc.Seed = seed
	sc.RateControl = &vca.RateControlConfig{Controller: controller}
	return sc
}

// ccrateCell runs one controller x cap cell.
func ccrateCell(opts Options, params map[string]float64) (CCRateRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return CCRateRow{}, err
	}
	kind, err := controllerFromParam(params)
	if err != nil {
		return CCRateRow{}, err
	}
	capMbps := params["cap_mbps"]
	if capMbps < 0 {
		return CCRateRow{}, fmt.Errorf("ccrate: negative cap_mbps %g", capMbps)
	}
	cell := SweepCellOptions(opts, "ccrate", params)
	sc := ccrateSessionConfig(cell.Seed, cell.SessionDuration, kind)
	tc, tdone, err := cellTelemetry(cell, "ccrate", scenario.ParamLabel(params))
	if err != nil {
		return CCRateRow{}, err
	}
	sc.Telemetry = tc
	pp, pdone, err := cellProf(cell, "ccrate", scenario.ParamLabel(params))
	if err != nil {
		return CCRateRow{}, err
	}
	sc.Prof = pp
	sess, err := vca.NewSession(sc)
	if err != nil {
		return CCRateRow{}, err
	}
	if capMbps > 0 {
		sess.UplinkShaper(0).RateBps = capMbps * 1e6
	}
	res := sess.Run()
	if err := tdone(); err != nil {
		return CCRateRow{}, err
	}
	if err := pdone(); err != nil {
		return CCRateRow{}, err
	}
	up := sess.UplinkStats(0)
	var qdrop float64
	if up.SentFrames > 0 {
		qdrop = float64(up.DroppedQueue) / float64(up.SentFrames)
	}
	return CCRateRow{
		Controller:      kind,
		CapMbps:         capMbps,
		AchievedMbps:    float64(up.DeliveredB*8) / sc.Duration.Seconds() / 1e6,
		MeanTargetMbps:  sess.RateTargetMeanBps(0) / 1e6,
		QueueDropFrac:   qdrop,
		UnavailableFrac: res.Users[1].UnavailableFrac,
		MeanLatencyMs:   res.Users[1].MeanFrameLatencyMs,
		DecodedFrac:     decodedFrac(res, 0, 1),
	}, nil
}

// ------------------------------------------------------------------ ccramp

// CCRampRow is one cell of the closed-loop congestion-ramp experiment: a
// 2D-video Teams call (server-relayed, so feedback crosses the SFU) under
// the PR 3 bandwidth-ramp schedule, with the named controller closing the
// loop.
type CCRampRow struct {
	Controller string
	StartMbps  float64
	FloorMbps  float64
	// FloorAchievedMbps is the uplink's delivered rate over the middle
	// floor-hold window [3D/8, 5D/8] — how closely the sender tracked the
	// ramp's bottom.
	FloorAchievedMbps float64
	MeanTargetMbps    float64
	QueueDropFrac     float64
	UnavailableFrac   float64
	MeanLatencyMs     float64
	DecodedFrac       float64
}

// ccrampSessionConfig is the server-relayed 2D session the ramp impairs:
// Teams between two Vision Pros (720p via SFU), so receiver reports cross
// the relay like any media frame. The session runs at 15 fps — the rate
// dynamics under the ramp depend on the bitrate target, not the frame
// cadence, and halving the frame count halves the 720p encode cost of
// every golden-suite run.
func ccrampSessionConfig(seed int64, dur simtime.Duration, controller string) vca.SessionConfig {
	sc := vca.DefaultSessionConfig(vca.Teams, []vca.Participant{
		{ID: "u1", Loc: geo.Ashburn, Device: vca.VisionPro},
		{ID: "u2", Loc: geo.NewYork, Device: vca.VisionPro},
	})
	if dur < 12*simtime.Second {
		dur = 12 * simtime.Second
	}
	sc.Duration = dur
	sc.Seed = seed
	sc.VideoFPS = 15
	sc.RateControl = &vca.RateControlConfig{Controller: controller}
	return sc
}

// ccrampCell runs one controller x floor cell under the congestion ramp
// (fall over [D/4, 3D/8], hold the floor until 5D/8, rise over D/8).
func ccrampCell(opts Options, params map[string]float64) (CCRampRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return CCRampRow{}, err
	}
	kind, err := controllerFromParam(params)
	if err != nil {
		return CCRampRow{}, err
	}
	start, floor := params["start_mbps"]*1e6, params["floor_mbps"]*1e6
	if !(floor > 0) || !(start > 0) {
		return CCRampRow{}, fmt.Errorf("ccramp: start_mbps %g and floor_mbps %g must both be positive",
			params["start_mbps"], params["floor_mbps"])
	}
	if floor > start {
		return CCRampRow{}, fmt.Errorf("ccramp: floor %g Mbps above start %g Mbps",
			params["floor_mbps"], params["start_mbps"])
	}
	cell := SweepCellOptions(opts, "ccramp", params)
	sc := ccrampSessionConfig(cell.Seed, cell.SessionDuration, kind)
	tc, tdone, err := cellTelemetry(cell, "ccramp", scenario.ParamLabel(params))
	if err != nil {
		return CCRampRow{}, err
	}
	sc.Telemetry = tc
	pp, pdone, err := cellProf(cell, "ccramp", scenario.ParamLabel(params))
	if err != nil {
		return CCRampRow{}, err
	}
	sc.Prof = pp
	sess, err := vca.NewSession(sc)
	if err != nil {
		return CCRampRow{}, err
	}
	d := sc.Duration
	sched := scenario.BandwidthRamp(start, floor, d/4, d/8, 5*d/8, d/8)
	if err := sched.Bind(sess.Scheduler(), sess.UplinkShaper(0)); err != nil {
		return CCRampRow{}, err
	}
	// Sample the uplink's delivered-byte counter at the floor-hold window
	// edges; the difference is the achieved rate at the ramp's bottom.
	var floorStartB, floorEndB int64
	sess.Scheduler().At(simtime.Time(3*d/8), func() { floorStartB = sess.UplinkStats(0).DeliveredB })
	sess.Scheduler().At(simtime.Time(5*d/8), func() { floorEndB = sess.UplinkStats(0).DeliveredB })

	res := sess.Run()
	if err := tdone(); err != nil {
		return CCRampRow{}, err
	}
	if err := pdone(); err != nil {
		return CCRampRow{}, err
	}
	up := sess.UplinkStats(0)
	var qdrop float64
	if up.SentFrames > 0 {
		qdrop = float64(up.DroppedQueue) / float64(up.SentFrames)
	}
	holdSec := (d / 4).Seconds()
	return CCRampRow{
		Controller:        kind,
		StartMbps:         params["start_mbps"],
		FloorMbps:         params["floor_mbps"],
		FloorAchievedMbps: float64((floorEndB-floorStartB)*8) / holdSec / 1e6,
		MeanTargetMbps:    sess.RateTargetMeanBps(0) / 1e6,
		QueueDropFrac:     qdrop,
		UnavailableFrac:   res.Users[1].UnavailableFrac,
		MeanLatencyMs:     res.Users[1].MeanFrameLatencyMs,
		DecodedFrac:       decodedFrac(res, 0, 1),
	}, nil
}

// ---------------------------------------------------------- registration

func init() {
	ccrate := SweepTarget{
		Name: "ccrate", Desc: "closed-loop §4.3 rate adaptation: controller x static uplink cap (controller: 0=fixed 1=loss 2=gcc)",
		Row: CCRateRow{},
		Params: []SweepParam{
			{Name: "controller", Default: 2, Desc: "ratecontrol.Kinds() index: 0=fixed (open loop), 1=loss, 2=gcc"},
			{Name: "cap_mbps", Default: 1, Desc: "static uplink cap in Mbps (0 = uncapped)"},
		},
		Run: func(o Options, p map[string]float64) ([]Row, error) { return rows(ccrateCell(o, p)) },
	}
	ccramp := SweepTarget{
		Name: "ccramp", Desc: "closed-loop congestion ramp: controller x rate floor under the mid-call bandwidth ramp (controller: 0=fixed 1=loss 2=gcc)",
		Row: CCRampRow{},
		Params: []SweepParam{
			{Name: "controller", Default: 2, Desc: "ratecontrol.Kinds() index: 0=fixed (open loop), 1=loss, 2=gcc"},
			{Name: "start_mbps", Default: 4, Desc: "uncongested rate cap"},
			{Name: "floor_mbps", Default: 1, Desc: "rate floor at peak congestion"},
		},
		Run: func(o Options, p map[string]float64) ([]Row, error) { return rows(ccrampCell(o, p)) },
	}
	RegisterSweep(ccrate)
	RegisterSweep(ccramp)

	// Default grids: every controller against every impairment level, the
	// open-loop "fixed" rows doubling as the baseline within the section.
	ctrls := DefaultCCRateControllers()
	caps := DefaultCCRateCaps()
	Register(Experiment{
		Name: "ccrate", Desc: ccrate.Desc + " (default grid)",
		Row: CCRateRow{}, Reps: fixed(len(ctrls) * len(caps)),
		Run: func(o Options, rep int) ([]Row, error) {
			p := withDefaults(ccrate, map[string]float64{
				"controller": ctrls[rep/len(caps)],
				"cap_mbps":   caps[rep%len(caps)],
			})
			return rows(ccrateCell(o, p))
		},
	})
	floors := DefaultCongestionFloorsMbps()
	Register(Experiment{
		Name: "ccramp", Desc: ccramp.Desc + " (default grid)",
		Row: CCRampRow{}, Reps: fixed(len(ctrls) * len(floors)),
		Run: func(o Options, rep int) ([]Row, error) {
			p := withDefaults(ccramp, map[string]float64{
				"controller": ctrls[rep/len(floors)],
				"floor_mbps": floors[rep%len(floors)],
			})
			return rows(ccrampCell(o, p))
		},
	})
}
