package core

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"telepresence/internal/vprof"
)

// ProfJSONLSuffix / ProfPprofSuffix name the two per-cell profile outputs:
// the deterministic JSONL site report and the gzipped pprof profile (which
// additionally carries wall-CPU attribution).
const (
	ProfJSONLSuffix = ".vprof.jsonl"
	ProfPprofSuffix = ".vprof.pb.gz"
)

// cellProf builds the virtual-time profiler one scenario cell was asked for
// (opts.ProfDir) and returns it plus a done func that, called after the
// session runs, snapshots the profile and writes both outputs. When ProfDir
// is unset it returns (nil, no-op, nil): the session runs with the
// scheduler's probe hook unset — the allocation-free inert default.
//
// Like cellTelemetry, each cell owns its own files, named
// <target>__<label>, so parallel fleet workers never share a writer and a
// rerun overwrites rather than appends. The pprof time_nanos stamp is left
// zero here: core is a deterministic package and never reads the wall
// clock; merge-time consumers (internal/fleet, vpfleet prof) stamp their
// own artifacts.
func cellProf(opts Options, target, label string) (*vprof.Profiler, func() error, error) {
	noop := func() error { return nil }
	if opts.ProfDir == "" {
		return nil, noop, nil
	}
	stem := target + "__" + sanitizeLabel(label)
	p := vprof.New()
	done := func() error {
		r := p.Report()
		var errs []error
		write := func(suffix string, emit func(*bufio.Writer) error) {
			f, err := os.Create(filepath.Join(opts.ProfDir, stem+suffix))
			if err != nil {
				errs = append(errs, err)
				return
			}
			b := bufio.NewWriterSize(f, 1<<16)
			errs = append(errs, emit(b), b.Flush(), f.Close())
		}
		write(ProfJSONLSuffix, func(w *bufio.Writer) error { return r.WriteJSONL(w) })
		write(ProfPprofSuffix, func(w *bufio.Writer) error { return r.WritePprof(w, 0) })
		if err := errors.Join(errs...); err != nil {
			return fmt.Errorf("core: vprof %s: %w", stem, err)
		}
		return nil
	}
	return p, done, nil
}
