package core

import (
	"fmt"
	"math"

	"telepresence/internal/geo"
	"telepresence/internal/recovery"
	"telepresence/internal/scenario"
	"telepresence/internal/simtime"
	"telepresence/internal/stats"
	"telepresence/internal/vca"
)

// The recovery experiments measure loss recovery (internal/recovery) under
// the PR 3 impairment families: "recovery" crosses every strategy with the
// Gilbert-Elliott burst grid (strategy x burstiness — XOR parity repairs
// scattered singles, NACK/RTX repairs bursts, hybrid should dominate), and
// "recramp" crosses strategies with the mid-call bandwidth ramp under gcc
// rate control (does reactive repair traffic blow the congestion budget?).
//
// Both follow the scenario-experiment determinism contract: registered as
// a fixed default grid (golden-pinned) and as a sweep target, with every
// cell's seed derived from the run seed and parameter values alone via
// SweepCellOptions. Strategies ride a numeric axis as the index into
// recovery.Kinds() (0=none 1=nack 2=fec 3=hybrid); the order is part of
// the cell-seed contract like ratecontrol.Kinds in ccrate/ccramp.

// strategyFromParam resolves the "strategy" sweep parameter (an index into
// recovery.Kinds) to its kind name.
func strategyFromParam(params map[string]float64) (string, error) {
	v := params["strategy"]
	idx := int(math.Round(v))
	kinds := recovery.Kinds()
	if math.Abs(v-float64(idx)) > 1e-9 || idx < 0 || idx >= len(kinds) {
		return "", fmt.Errorf("recovery: strategy index %g not in [0,%d] (%v)",
			v, len(kinds)-1, kinds)
	}
	return kinds[idx], nil
}

// DefaultRecoveryStrategies returns the strategy-index grid (every kind).
func DefaultRecoveryStrategies() []float64 {
	out := make([]float64, len(recovery.Kinds()))
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// recoverySessionConfig is the standard lossy-path session both recovery
// experiments run: a two-party Zoom call (P2P 2D video at 640x360), so the
// NACK/parity reverse path is the raw pipe. The frame rate drops to 15 fps
// (the repair dynamics depend on packets per frame and the loss process,
// not the frame cadence, and it halves the per-cell encode cost) and the
// freshness window tightens to 200 ms so a single frame-timeout stall is
// visible in UnavailableFrac — the sensitivity the strategy contrast needs.
// Sessions never run shorter than 12 s so burst statistics accumulate.
func recoverySessionConfig(seed int64, dur simtime.Duration, strategy string) vca.SessionConfig {
	sc := vca.DefaultSessionConfig(vca.Zoom, []vca.Participant{
		{ID: "u1", Loc: geo.Ashburn, Device: vca.VisionPro},
		{ID: "u2", Loc: geo.NewYork, Device: vca.VisionPro},
	})
	if dur < 12*simtime.Second {
		dur = 12 * simtime.Second
	}
	sc.Duration = dur
	sc.Seed = seed
	sc.VideoFPS = 15
	sc.FreshnessLimit = 200 * simtime.Millisecond
	// "none" is wired but inert — byte-identical to no recovery at all
	// (TestRecoveryOffIsInert), so the baseline rows share the config path.
	sc.Recovery = &vca.RecoveryConfig{Strategy: strategy}
	return sc
}

// ---------------------------------------------------------------- recovery

// RecoveryRow is one cell of the loss-recovery experiment: a recovery
// strategy against a Gilbert-Elliott burst channel on the sender's uplink.
type RecoveryRow struct {
	Strategy  string
	GoodToBad float64
	BadToGood float64
	LossBad   float64
	// MeasuredLoss is the uplink's realized frame-loss fraction (all
	// traffic: media, audio, feedback, recovery).
	MeasuredLoss float64
	// RepairedFrac / UnrepairedFrac split the receiver's detected missing
	// media packets into repaired (RTX or FEC) and lost for good; they do
	// not sum to 1 when gaps are still within their deadline at session
	// end.
	RepairedFrac   float64
	UnrepairedFrac float64
	// RedundancyFrac is the proactive redundancy the sender added — parity
	// wire bytes as a fraction of the rate target over the session. The
	// pinned acceptance bound (TestHybridRecoveryAcceptance) keeps it at
	// or under 20%.
	RedundancyFrac float64
	// RtxFrac is the reactive repair traffic — retransmitted bytes as a
	// fraction of the rate target over the session.
	RtxFrac float64
	// RtxDelayP50Ms / RtxDelayP95Ms are repair-delay quantiles from first
	// detection to repair (RTX and FEC repairs; FEC repairs are ~0 ms).
	RtxDelayP50Ms float64
	RtxDelayP95Ms float64
	// UnavailableFrac is the residual unavailability after repair.
	UnavailableFrac float64
	MeanLatencyMs   float64
	DecodedFrac     float64
}

// recoveryCell runs one strategy x channel cell.
func recoveryCell(opts Options, params map[string]float64) (RecoveryRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return RecoveryRow{}, err
	}
	kind, err := strategyFromParam(params)
	if err != nil {
		return RecoveryRow{}, err
	}
	cell := SweepCellOptions(opts, "recovery", params)
	sc := recoverySessionConfig(cell.Seed, cell.SessionDuration, kind)
	tc, tdone, err := cellTelemetry(cell, "recovery", scenario.ParamLabel(params))
	if err != nil {
		return RecoveryRow{}, err
	}
	sc.Telemetry = tc
	pp, pdone, err := cellProf(cell, "recovery", scenario.ParamLabel(params))
	if err != nil {
		return RecoveryRow{}, err
	}
	sc.Prof = pp
	sess, err := vca.NewSession(sc)
	if err != nil {
		return RecoveryRow{}, err
	}
	bp := scenario.BurstParams{
		GoodToBad: params["p_good_bad"],
		BadToGood: params["p_bad_good"],
		LossBad:   params["loss_bad"],
	}
	sched := scenario.BurstLoss(bp, 0, 0)
	if err := sched.Bind(sess.Scheduler(), sess.UplinkShaper(0)); err != nil {
		return RecoveryRow{}, err
	}
	res := sess.Run()
	if err := tdone(); err != nil {
		return RecoveryRow{}, err
	}
	if err := pdone(); err != nil {
		return RecoveryRow{}, err
	}
	up := sess.UplinkStats(0)
	row := RecoveryRow{
		Strategy: kind, GoodToBad: bp.GoodToBad, BadToGood: bp.BadToGood, LossBad: bp.LossBad,
		UnavailableFrac: res.Users[1].UnavailableFrac,
		MeanLatencyMs:   res.Users[1].MeanFrameLatencyMs,
		DecodedFrac:     decodedFrac(res, 0, 1),
	}
	if up.SentFrames > 0 {
		row.MeasuredLoss = float64(up.DroppedLoss) / float64(up.SentFrames)
	}
	// Overhead against the rate target: the open-loop encoder target is
	// the budget these sessions spend.
	targetBytes := vca.SpecFor(sc.App).VideoTargetBps / 8 * sc.Duration.Seconds()
	if sst, ok := sess.RecoverySenderStats(0); ok && targetBytes > 0 {
		row.RedundancyFrac = float64(sst.ParityBytes) / targetBytes
		row.RtxFrac = float64(sst.RtxBytes) / targetBytes
	}
	if rst, ok := sess.RecoveryReceiverStats(0, 1); ok && rst.Missed > 0 {
		row.RepairedFrac = float64(rst.RepairedRtx+rst.RepairedFec) / float64(rst.Missed)
		row.UnrepairedFrac = float64(rst.Unrepaired) / float64(rst.Missed)
		if len(rst.RepairDelaysMs) > 0 {
			d := stats.NewSample(rst.RepairDelaysMs...)
			row.RtxDelayP50Ms = d.Median()
			row.RtxDelayP95Ms = d.Percentile(95)
		}
	}
	return row, nil
}

// ----------------------------------------------------------------- recramp

// RecRampRow is one cell of the recovery-under-congestion experiment: a
// recovery strategy riding the PR 3 bandwidth ramp with gcc rate control
// closing the loop — queue-overflow losses must be repaired without the
// repair traffic itself blowing the congestion budget (redundancy bytes
// are charged against the controller target).
type RecRampRow struct {
	Strategy  string
	StartMbps float64
	FloorMbps float64
	// FloorAchievedMbps is the uplink's delivered rate over the floor-hold
	// window [3D/8, 5D/8].
	FloorAchievedMbps float64
	// MeanTargetMbps is the applied (overhead-charged) controller target
	// averaged over feedback arrivals.
	MeanTargetMbps float64
	// OverheadFrac is the sender's redundancy ratio: (parity + RTX) bytes
	// per media byte.
	OverheadFrac    float64
	RepairedFrac    float64
	QueueDropFrac   float64
	UnavailableFrac float64
	MeanLatencyMs   float64
	DecodedFrac     float64
}

// DefaultRecRampFloorsMbps is the recramp registry floor grid: a floor the
// 1.4 Mbps Zoom encoder can almost hold and one that strangles it.
func DefaultRecRampFloorsMbps() []float64 { return []float64{1.0, 0.5} }

// recrampCell runs one strategy x floor cell under the congestion ramp
// (fall over [D/4, 3D/8], hold the floor until 5D/8, rise over D/8).
func recrampCell(opts Options, params map[string]float64) (RecRampRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return RecRampRow{}, err
	}
	kind, err := strategyFromParam(params)
	if err != nil {
		return RecRampRow{}, err
	}
	start, floor := params["start_mbps"]*1e6, params["floor_mbps"]*1e6
	if !(floor > 0) || !(start > 0) {
		return RecRampRow{}, fmt.Errorf("recramp: start_mbps %g and floor_mbps %g must both be positive",
			params["start_mbps"], params["floor_mbps"])
	}
	if floor > start {
		return RecRampRow{}, fmt.Errorf("recramp: floor %g Mbps above start %g Mbps",
			params["floor_mbps"], params["start_mbps"])
	}
	cell := SweepCellOptions(opts, "recramp", params)
	sc := recoverySessionConfig(cell.Seed, cell.SessionDuration, kind)
	sc.RateControl = &vca.RateControlConfig{Controller: "gcc"}
	tc, tdone, err := cellTelemetry(cell, "recramp", scenario.ParamLabel(params))
	if err != nil {
		return RecRampRow{}, err
	}
	sc.Telemetry = tc
	pp, pdone, err := cellProf(cell, "recramp", scenario.ParamLabel(params))
	if err != nil {
		return RecRampRow{}, err
	}
	sc.Prof = pp
	sess, err := vca.NewSession(sc)
	if err != nil {
		return RecRampRow{}, err
	}
	d := sc.Duration
	sched := scenario.BandwidthRamp(start, floor, d/4, d/8, 5*d/8, d/8)
	if err := sched.Bind(sess.Scheduler(), sess.UplinkShaper(0)); err != nil {
		return RecRampRow{}, err
	}
	var floorStartB, floorEndB int64
	sess.Scheduler().At(simtime.Time(3*d/8), func() { floorStartB = sess.UplinkStats(0).DeliveredB })
	sess.Scheduler().At(simtime.Time(5*d/8), func() { floorEndB = sess.UplinkStats(0).DeliveredB })

	res := sess.Run()
	if err := tdone(); err != nil {
		return RecRampRow{}, err
	}
	if err := pdone(); err != nil {
		return RecRampRow{}, err
	}
	up := sess.UplinkStats(0)
	row := RecRampRow{
		Strategy:          kind,
		StartMbps:         params["start_mbps"],
		FloorMbps:         params["floor_mbps"],
		FloorAchievedMbps: float64((floorEndB-floorStartB)*8) / (d / 4).Seconds() / 1e6,
		MeanTargetMbps:    sess.RateTargetMeanBps(0) / 1e6,
		OverheadFrac:      sess.RecoveryOverheadRatio(0),
		UnavailableFrac:   res.Users[1].UnavailableFrac,
		MeanLatencyMs:     res.Users[1].MeanFrameLatencyMs,
		DecodedFrac:       decodedFrac(res, 0, 1),
	}
	if up.SentFrames > 0 {
		row.QueueDropFrac = float64(up.DroppedQueue) / float64(up.SentFrames)
	}
	if rst, ok := sess.RecoveryReceiverStats(0, 1); ok && rst.Missed > 0 {
		row.RepairedFrac = float64(rst.RepairedRtx+rst.RepairedFec) / float64(rst.Missed)
	}
	return row, nil
}

// ---------------------------------------------------------- registration

func init() {
	rec := SweepTarget{
		Name: "recovery", Desc: "loss recovery: strategy x Gilbert-Elliott burst channel (strategy: 0=none 1=nack 2=fec 3=hybrid)",
		Row: RecoveryRow{},
		Params: []SweepParam{
			{Name: "strategy", Default: 3, Desc: "recovery.Kinds() index: 0=none 1=nack 2=fec 3=hybrid"},
			{Name: "p_good_bad", Default: 0.02, Desc: "per-frame P(good->bad)"},
			{Name: "p_bad_good", Default: 0.25, Desc: "per-frame P(bad->good)"},
			{Name: "loss_bad", Default: 0.9, Desc: "loss probability in the bad state"},
		},
		Run: func(o Options, p map[string]float64) ([]Row, error) { return rows(recoveryCell(o, p)) },
	}
	recramp := SweepTarget{
		Name: "recramp", Desc: "loss recovery under congestion: strategy x ramp floor with gcc rate control (strategy: 0=none 1=nack 2=fec 3=hybrid)",
		Row: RecRampRow{},
		Params: []SweepParam{
			{Name: "strategy", Default: 3, Desc: "recovery.Kinds() index: 0=none 1=nack 2=fec 3=hybrid"},
			{Name: "start_mbps", Default: 4, Desc: "uncongested rate cap"},
			{Name: "floor_mbps", Default: 1, Desc: "rate floor at peak congestion"},
		},
		Run: func(o Options, p map[string]float64) ([]Row, error) { return rows(recrampCell(o, p)) },
	}
	RegisterSweep(rec)
	RegisterSweep(recramp)

	// Default grids: every strategy against every impairment level; the
	// inert "none" rows double as the no-recovery baseline within the
	// section.
	strategies := DefaultRecoveryStrategies()
	Register(Experiment{
		Name: "recovery", Desc: rec.Desc + " (default grid)",
		Row: RecoveryRow{}, Reps: fixed(len(strategies) * len(burstLossGrid)),
		Run: func(o Options, rep int) ([]Row, error) {
			p := withDefaults(rec, burstLossGrid[rep%len(burstLossGrid)])
			p["strategy"] = strategies[rep/len(burstLossGrid)]
			return rows(recoveryCell(o, p))
		},
	})
	floors := DefaultRecRampFloorsMbps()
	Register(Experiment{
		Name: "recramp", Desc: recramp.Desc + " (default grid)",
		Row: RecRampRow{}, Reps: fixed(len(strategies) * len(floors)),
		Run: func(o Options, rep int) ([]Row, error) {
			p := withDefaults(recramp, map[string]float64{
				"strategy":   strategies[rep/len(floors)],
				"floor_mbps": floors[rep%len(floors)],
			})
			return rows(recrampCell(o, p))
		},
	})
}
