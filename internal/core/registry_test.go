package core

import (
	"reflect"
	"testing"
)

// expectedExperiments is the stable registry index documented in DESIGN.md.
var expectedExperiments = []string{
	"anycast", "burstloss", "ccramp", "ccrate", "congestion", "fig4", "fig5",
	"fig6", "fig7", "handover", "keypoints", "latency", "mesh", "protocols",
	"qoe", "rate", "recovery", "recramp", "remote", "servers", "viewport",
}

// expectedSweepTargets is the stable sweep-target index.
var expectedSweepTargets = []string{
	"burstloss", "ccramp", "ccrate", "congestion", "handover", "recovery", "recramp",
}

func TestSweepRegistryComplete(t *testing.T) {
	var names []string
	for _, tgt := range SweepTargets() {
		names = append(names, tgt.Name)
		if tgt.Desc == "" || tgt.Row == nil || len(tgt.Params) == 0 {
			t.Errorf("%s: incomplete sweep target %+v", tgt.Name, tgt)
		}
		for _, p := range tgt.Params {
			if p.Name == "" || p.Desc == "" {
				t.Errorf("%s: incomplete parameter %+v", tgt.Name, p)
			}
		}
	}
	if !reflect.DeepEqual(names, expectedSweepTargets) {
		t.Errorf("sweep registry drifted:\n got %v\nwant %v", names, expectedSweepTargets)
	}
	if _, ok := LookupSweep("handover"); !ok {
		t.Error("LookupSweep(handover) failed")
	}
	if _, ok := LookupSweep("nope"); ok {
		t.Error("LookupSweep invented a target")
	}
}

func TestRegisterSweepRejectsBadTargets(t *testing.T) {
	for _, tgt := range []SweepTarget{
		{},
		{Name: "x"},
		{Name: "handover", Run: func(Options, map[string]float64) ([]Row, error) { return nil, nil }}, // duplicate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterSweep(%+v) did not panic", tgt)
				}
			}()
			RegisterSweep(tgt)
		}()
	}
}

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	var names []string
	for _, e := range exps {
		names = append(names, e.Name)
		if e.Desc == "" {
			t.Errorf("%s: no description", e.Name)
		}
		if e.Row == nil {
			t.Errorf("%s: no row type", e.Name)
		}
		if n := e.Reps(Quick(1)); n <= 0 {
			t.Errorf("%s: %d reps at Quick scale", e.Name, n)
		}
	}
	if !reflect.DeepEqual(names, expectedExperiments) {
		t.Errorf("registry index drifted:\n got %v\nwant %v", names, expectedExperiments)
	}
}

func TestRegistryLookup(t *testing.T) {
	e, ok := Lookup("fig5")
	if !ok || e.Name != "fig5" {
		t.Fatalf("Lookup(fig5) = %+v, %v", e, ok)
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup invented an experiment")
	}
	if e.String() == "" || e.String()[:4] != "fig5" {
		t.Errorf("String() = %q", e.String())
	}
}

func TestRegisterRejectsBadExperiments(t *testing.T) {
	for _, e := range []Experiment{
		{},
		{Name: "x"},
		{Name: "fig5", Reps: fixed(1), Run: func(Options, int) ([]Row, error) { return nil, nil }}, // duplicate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", e)
				}
			}()
			Register(e)
		}()
	}
}

// TestRepRunnerIndependence spot-checks the RepRunner contract the fleet
// scheduler relies on: running a rep twice, or out of order, produces
// identical rows.
func TestRepRunnerIndependence(t *testing.T) {
	opts := Quick(7)
	for _, name := range []string{"fig5", "keypoints", "mesh", "servers", "handover", "burstloss"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		n := e.Reps(opts)
		last := n - 1
		// Run the last rep first, then rep 0, then the last rep again.
		first, err := e.Run(opts, last)
		if err != nil {
			t.Fatalf("%s rep %d: %v", name, last, err)
		}
		if _, err := e.Run(opts, 0); err != nil {
			t.Fatalf("%s rep 0: %v", name, err)
		}
		again, err := e.Run(opts, last)
		if err != nil {
			t.Fatalf("%s rep %d again: %v", name, last, err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Errorf("%s: rep %d not reproducible across orderings", name, last)
		}
	}
}
