package core

import (
	"fmt"
	"sort"
	"sync"

	"telepresence/internal/vca"
)

// Row is one emitted experiment row: a concrete row struct such as Fig4Row
// or RateAdaptationRow. Sinks serialize rows; see internal/fleet.
type Row = any

// RepRunner runs one repetition (work unit) of an experiment and returns
// the rows that repetition produced. Repetitions MUST be independent: each
// derives its own randomness from opts.Seed and the rep index (via
// simrand.Child or a rep-offset seed), shares no mutable state with other
// reps, and produces the same rows whether it runs first, last, or
// concurrently with its siblings. That contract is what lets the fleet
// scheduler shard reps across workers and still merge byte-identical
// output at any worker count.
type RepRunner func(opts Options, rep int) ([]Row, error)

// Experiment is one registered runner: a stable name, its row type, how
// many shardable repetitions it has at a given scale, and the per-rep
// entry point.
type Experiment struct {
	// Name addresses the experiment from CLIs and manifests ("fig4").
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Row is a zero value of the row type, used by sinks for CSV headers
	// and by callers for type discovery.
	Row Row
	// Reps reports the number of independent work units at the given
	// options. Options are normalized first; Reps must not be called with
	// invalid options (the scheduler validates before asking).
	Reps func(opts Options) int
	// Run executes work unit rep in [0, Reps(opts)).
	Run RepRunner
}

var registry struct {
	sync.Mutex
	byName map[string]Experiment
	sweeps map[string]SweepTarget
}

// Register adds an experiment to the global registry. It panics on an
// empty or duplicate name — registration happens at init time, where a
// panic is a programming error caught by any test.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil || e.Reps == nil {
		panic("core: Register: experiment needs a name, Reps and Run")
	}
	registry.Lock()
	defer registry.Unlock()
	if registry.byName == nil {
		registry.byName = map[string]Experiment{}
	}
	if _, dup := registry.byName[e.Name]; dup {
		panic("core: Register: duplicate experiment " + e.Name)
	}
	registry.byName[e.Name] = e
}

// Experiments returns all registered experiments sorted by name.
func Experiments() []Experiment {
	registry.Lock()
	defer registry.Unlock()
	out := make([]Experiment, 0, len(registry.byName))
	for _, e := range registry.byName {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (Experiment, bool) {
	registry.Lock()
	defer registry.Unlock()
	e, ok := registry.byName[name]
	return e, ok
}

// SweepParam describes one recognized parameter of a sweep target, with
// the value used when a sweep grid does not cover it.
type SweepParam struct {
	Name    string
	Default float64
	// Desc is a one-line description for listings.
	Desc string
}

// CellRunner executes one cell of a parameter sweep, given a full
// parameter map (every recognized parameter present). Like RepRunner,
// cells MUST be independent and deterministic: same (opts, params) in,
// same rows out, on any worker in any order. Implementations derive all
// cell randomness from opts.Seed and the parameter values — typically via
// SweepCellOptions — never from grid position, so the fleet can shard
// grids across workers, merge byte-identical output at any worker count,
// and reshape grids without moving any cell's rows.
type CellRunner func(opts Options, params map[string]float64) ([]Row, error)

// SweepTarget is a parameterized experiment for vpfleet's sweep grids: the
// scenario experiments register one target per schedule family (handover,
// burstloss, congestion), exposing their schedule parameters as named
// sweep axes.
type SweepTarget struct {
	// Name addresses the target from the sweep CLI ("handover").
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Row is a zero value of the row type cells emit.
	Row Row
	// Params lists the recognized parameters with their defaults. Axes
	// sweeping any other name are rejected before anything runs.
	Params []SweepParam
	// Run executes one cell.
	Run CellRunner
}

// RegisterSweep adds a sweep target to the global registry; like Register
// it panics on an empty or duplicate name at init time.
func RegisterSweep(t SweepTarget) {
	if t.Name == "" || t.Run == nil {
		panic("core: RegisterSweep: target needs a name and Run")
	}
	registry.Lock()
	defer registry.Unlock()
	if registry.sweeps == nil {
		registry.sweeps = map[string]SweepTarget{}
	}
	if _, dup := registry.sweeps[t.Name]; dup {
		panic("core: RegisterSweep: duplicate target " + t.Name)
	}
	registry.sweeps[t.Name] = t
}

// SweepTargets returns all registered sweep targets sorted by name.
func SweepTargets() []SweepTarget {
	registry.Lock()
	defer registry.Unlock()
	out := make([]SweepTarget, 0, len(registry.sweeps))
	for _, t := range registry.sweeps {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupSweep finds a registered sweep target by name.
func LookupSweep(name string) (SweepTarget, bool) {
	registry.Lock()
	defer registry.Unlock()
	t, ok := registry.sweeps[name]
	return t, ok
}

// DefaultParams returns the target's parameter map at its defaults.
func (t SweepTarget) DefaultParams() map[string]float64 {
	out := make(map[string]float64, len(t.Params))
	for _, p := range t.Params {
		out[p.Name] = p.Default
	}
	return out
}

// rows lifts a single typed row into a Row slice.
func rows[T any](r T, err error) ([]Row, error) {
	if err != nil {
		return nil, err
	}
	return []Row{r}, nil
}

// rowSlice lifts a typed row slice into a Row slice.
func rowSlice[T any](rs []T, err error) ([]Row, error) {
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rs))
	for i, r := range rs {
		out[i] = r
	}
	return out, nil
}

// optReps normalizes and returns opts.Reps; registration-time helper for
// experiments whose unit count is the repetition count.
func optReps(opts Options) int {
	opts, err := opts.Normalize()
	if err != nil {
		return 0
	}
	return opts.Reps
}

func fixed(n int) func(Options) int { return func(Options) int { return n } }

// init self-registers every experiment in internal/core. Names match the
// -only keys of cmd/vpbench; see DESIGN.md for the full index.
func init() {
	Register(Experiment{
		Name: "fig4", Desc: "Figure 4: RTT CDFs, nine vantage points to every provider server",
		Row: Fig4Row{}, Reps: optReps,
		Run: func(o Options, rep int) ([]Row, error) { return rowSlice(fig4Rep(o, rep)) },
	})
	Register(Experiment{
		Name: "anycast", Desc: "§4.1: speed-of-light anycast audit of every provider server",
		Row: vca.AnycastVerdict{}, Reps: fixed(len(vca.Apps())),
		Run: func(o Options, rep int) ([]Row, error) { return rowSlice(anycastApp(o, rep)) },
	})
	Register(Experiment{
		Name: "protocols", Desc: "§4.1: protocol & topology decision matrix over device mixes",
		Row: ProtocolCase{}, Reps: fixed(1),
		Run: func(o Options, _ int) ([]Row, error) {
			if _, err := o.Normalize(); err != nil {
				return nil, err
			}
			return rowSlice(ProtocolMatrix(), nil)
		},
	})
	Register(Experiment{
		Name: "fig5", Desc: "Figure 5: two-user uplink throughput per app",
		Row: Fig5Row{}, Reps: fixed(len(fig5Cases)),
		Run: func(o Options, rep int) ([]Row, error) { return rows(fig5Case(o, rep)) },
	})
	Register(Experiment{
		Name: "mesh", Desc: "§4.3: direct 3D (Draco-class) streaming estimate, ten heads",
		Row: MeshHeadRow{}, Reps: fixed(10),
		Run: func(o Options, rep int) ([]Row, error) { return rows(meshHead(o, rep)) },
	})
	Register(Experiment{
		Name: "keypoints", Desc: "§4.3: semantic keypoint streaming estimate",
		Row: KeypointRow{}, Reps: optReps,
		Run: func(o Options, rep int) ([]Row, error) { return rows(keypointRep(o, rep)) },
	})
	Register(Experiment{
		Name: "latency", Desc: "§4.3: display-latency gap vs injected delay",
		Row: DisplayLatencyRow{}, Reps: fixed(len(DefaultInjectedDelaysMs())),
		Run: func(o Options, rep int) ([]Row, error) {
			return rows(displayLatencyCase(o, DefaultInjectedDelaysMs()[rep]))
		},
	})
	Register(Experiment{
		Name: "rate", Desc: "§4.3: rate adaptation under uplink caps",
		Row: RateAdaptationRow{}, Reps: fixed(len(DefaultRateCaps())),
		Run: func(o Options, rep int) ([]Row, error) {
			return rows(rateCase(o, rep, DefaultRateCaps()[rep]))
		},
	})
	Register(Experiment{
		Name: "fig6", Desc: "Figure 6: visibility-aware rendering optimizations",
		Row: Fig6Row{}, Reps: fixed(len(fig6Scenarios)),
		Run: func(o Options, rep int) ([]Row, error) { return rows(fig6Case(o, rep)) },
	})
	Register(Experiment{
		Name: "fig7", Desc: "Figure 7: scalability with 2-5 Vision Pro users",
		Row: Fig7Row{}, Reps: fixed(vca.MaxSpatialUsers - 1),
		Run: func(o Options, rep int) ([]Row, error) { return rows(fig7Users(o, rep+2)) },
	})
	Register(Experiment{
		Name: "remote", Desc: "Implications 4: remote-rendering downlink ablation",
		Row: RemoteRenderRow{}, Reps: fixed(vca.MaxSpatialUsers - 1),
		Run: func(o Options, rep int) ([]Row, error) { return rows(remoteRenderUsers(o, rep+2)) },
	})
	Register(Experiment{
		Name: "servers", Desc: "Implications 1: server-allocation policy latency comparison",
		Row: MultiServerRow{}, Reps: fixed(len(multiServerPolicies)),
		Run: func(o Options, rep int) ([]Row, error) {
			return rows(multiServerPolicy(o, multiServerPolicies[rep]))
		},
	})
	Register(Experiment{
		Name: "viewport", Desc: "Implications 3: viewport-aware delivery savings",
		Row: ViewportDeliveryRow{}, Reps: fixed(1),
		Run: func(o Options, _ int) ([]Row, error) { return rows(ViewportDeliveryAblation(o)) },
	})
	Register(Experiment{
		Name: "qoe", Desc: "§5: passive QoE inference from encrypted packet timing",
		Row: QoESweepRow{}, Reps: fixed(len(qoeApps)),
		Run: func(o Options, rep int) ([]Row, error) { return rows(qoeApp(o, rep)) },
	})
}

// String renders the experiment as "name: desc" for listings.
func (e Experiment) String() string { return fmt.Sprintf("%s: %s", e.Name, e.Desc) }
