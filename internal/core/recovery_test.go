package core

import (
	"testing"

	"telepresence/internal/recovery"
)

func TestStrategyFromParam(t *testing.T) {
	for i, kind := range recovery.Kinds() {
		got, err := strategyFromParam(map[string]float64{"strategy": float64(i)})
		if err != nil || got != kind {
			t.Errorf("strategy=%d -> (%q, %v), want %q", i, got, err, kind)
		}
	}
	for _, bad := range []float64{-1, 0.5, 99} {
		if _, err := strategyFromParam(map[string]float64{"strategy": bad}); err == nil {
			t.Errorf("strategy=%g accepted", bad)
		}
	}
}

func TestRecRampCellParamValidation(t *testing.T) {
	opts := Quick(1)
	if _, err := recrampCell(opts, map[string]float64{"strategy": 3, "start_mbps": 1, "floor_mbps": 2}); err == nil {
		t.Error("floor above start accepted")
	}
	if _, err := recrampCell(opts, map[string]float64{"strategy": 3, "start_mbps": 4, "floor_mbps": 0}); err == nil {
		t.Error("zero floor accepted")
	}
}

// TestHybridRecoveryAcceptance is the subsystem's pinned acceptance bar: on
// the default Gilbert-Elliott burst grid, hybrid recovery must (a) keep the
// receiver strictly more available than no recovery at every cell, and (b)
// spend at most 20% of the rate target on proactive redundancy (parity).
// In -short mode only the middle (moderate-bursting) cell runs.
func TestHybridRecoveryAcceptance(t *testing.T) {
	opts := Quick(1)
	grid := burstLossGrid
	if testing.Short() {
		grid = grid[1:2]
	}
	hybridIdx := float64(3) // recovery.Kinds(): 0=none 1=nack 2=fec 3=hybrid
	for _, ge := range grid {
		params := withDefaults(mustSweep(t, "recovery"), ge)
		params["strategy"] = 0
		none, err := recoveryCell(opts, params)
		if err != nil {
			t.Fatal(err)
		}
		params["strategy"] = hybridIdx
		hybrid, err := recoveryCell(opts, params)
		if err != nil {
			t.Fatal(err)
		}
		if hybrid.UnavailableFrac >= none.UnavailableFrac {
			t.Errorf("cell %v: hybrid UnavailableFrac %.3f not strictly below no-recovery %.3f",
				ge, hybrid.UnavailableFrac, none.UnavailableFrac)
		}
		if hybrid.RedundancyFrac > 0.20 {
			t.Errorf("cell %v: parity overhead %.3f of the rate target exceeds the 20%% budget",
				ge, hybrid.RedundancyFrac)
		}
		if hybrid.RepairedFrac <= 0.5 {
			t.Errorf("cell %v: hybrid repaired only %.2f of detected losses", ge, hybrid.RepairedFrac)
		}
		if hybrid.DecodedFrac <= none.DecodedFrac {
			t.Errorf("cell %v: hybrid decoded %.3f not above no-recovery %.3f",
				ge, hybrid.DecodedFrac, none.DecodedFrac)
		}
		if none.RedundancyFrac != 0 || none.RtxFrac != 0 || none.RepairedFrac != 0 {
			t.Errorf("cell %v: no-recovery baseline shows recovery activity: %+v", ge, none)
		}
	}
}

func mustSweep(t *testing.T, name string) SweepTarget {
	t.Helper()
	target, ok := LookupSweep(name)
	if !ok {
		t.Fatalf("sweep target %q not registered", name)
	}
	return target
}

// TestRecoveryCellDeterminism: a cell's row is a pure function of
// (opts, params), the contract behind fleet sharding and sweep reshaping.
// The hybrid cell under moderate bursting must actually repair losses and
// record repair delays.
func TestRecoveryCellDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two 12 s sessions; skipped in -short")
	}
	params := withDefaults(mustSweep(t, "recovery"), map[string]float64{"strategy": 3})
	a, err := recoveryCell(Quick(7), params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := recoveryCell(Quick(7), params)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same cell differs:\n a: %+v\n b: %+v", a, b)
	}
	if a.RepairedFrac == 0 || a.RtxDelayP95Ms == 0 {
		t.Errorf("hybrid cell repaired nothing: %+v", a)
	}
}

// TestRecRampRecoveryStaysInBudget: under the congestion ramp with gcc,
// hybrid recovery's total redundancy (parity + RTX per media byte) must
// stay within the charged overhead bound and not raise queue drops above
// the recovery-free closed loop.
func TestRecRampRecoveryStaysInBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("two 12 s sessions; skipped in -short")
	}
	opts := Quick(1)
	params := withDefaults(mustSweep(t, "recramp"), map[string]float64{"floor_mbps": 0.5})
	params["strategy"] = 0
	none, err := recrampCell(opts, params)
	if err != nil {
		t.Fatal(err)
	}
	params["strategy"] = 3
	hybrid, err := recrampCell(opts, params)
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.OverheadFrac <= 0 {
		t.Error("hybrid rode the ramp without any redundancy")
	}
	// The overhead charge keeps the applied target below the raw grant, so
	// media + redundancy must not exceed the no-recovery achieved rate by
	// more than measurement slack.
	if hybrid.FloorAchievedMbps > none.FloorAchievedMbps*1.25+0.1 {
		t.Errorf("hybrid floor rate %.3f Mbps far above no-recovery %.3f: overhead not charged",
			hybrid.FloorAchievedMbps, none.FloorAchievedMbps)
	}
	if hybrid.UnavailableFrac > none.UnavailableFrac {
		t.Errorf("hybrid unavailability %.3f above no-recovery %.3f under the ramp",
			hybrid.UnavailableFrac, none.UnavailableFrac)
	}
}
