package core

import (
	"fmt"

	"telepresence/internal/geo"
	"telepresence/internal/keypoints"
	"telepresence/internal/netem"
	"telepresence/internal/semantic"
	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
	"telepresence/internal/stats"
	"telepresence/internal/vca"
)

// ----------------------------------------------------- Implications 1

// ServerPolicy names a server-allocation strategy in the multi-server
// ablation.
type ServerPolicy int

// Policies compared by MultiServerAblation.
const (
	// PolicyInitiator is what every measured VCA does: one server,
	// closest to the session initiator (§4.1).
	PolicyInitiator ServerPolicy = iota
	// PolicyCentral is the "put it in the middle of the US" strategy the
	// paper discusses (Texas).
	PolicyCentral
	// PolicyGeoDistributed is the paper's Implications-1 proposal: each
	// client attaches to its nearest server; servers interconnect over a
	// low-inflation private backbone.
	PolicyGeoDistributed
)

func (p ServerPolicy) String() string {
	switch p {
	case PolicyInitiator:
		return "initiator-nearest"
	case PolicyCentral:
		return "central-US"
	case PolicyGeoDistributed:
		return "geo-distributed"
	default:
		return fmt.Sprintf("ServerPolicy(%d)", int(p))
	}
}

// MultiServerRow is one policy's outcome over all client pairs.
type MultiServerRow struct {
	Policy ServerPolicy
	// MaxOneWayMs is the worst client-to-client one-way media latency.
	MaxOneWayMs float64
	// MeanOneWayMs is the mean over all ordered pairs.
	MeanOneWayMs float64
	// FracUnder100 is the fraction of pairs meeting the 100 ms immersive
	// QoE threshold the paper cites (§4.1, Implications 1).
	FracUnder100 float64
}

// multiServerPolicies lists the compared policies in report order.
var multiServerPolicies = []ServerPolicy{PolicyInitiator, PolicyCentral, PolicyGeoDistributed}

// multiServerPolicy evaluates one server-allocation policy over all ordered
// vantage pairs; policies are independent (and deterministic) work units.
func multiServerPolicy(opts Options, policy ServerPolicy) (MultiServerRow, error) {
	if _, err := opts.Normalize(); err != nil {
		return MultiServerRow{}, err
	}
	model := geo.DefaultPathModel()
	backbone := model
	backbone.Inflation = 1.1
	backbone.AccessMs = 0 // server-to-server: no last mile
	spec := vca.SpecFor(vca.FaceTime)
	clients := geo.VantagePoints()

	oneWay := func(m geo.PathModel, a, b geo.Location) float64 {
		return m.BaseRTTMs(a, b) / 2
	}

	row := MultiServerRow{Policy: policy, MaxOneWayMs: 0}
	var sum float64
	var n, under int
	for i, c1 := range clients {
		for j, c2 := range clients {
			if i == j {
				continue
			}
			var lat float64
			switch policy {
			case PolicyInitiator:
				// c1 initiates; both attach to c1's nearest server.
				srv := spec.AllocateServer(c1)
				lat = oneWay(model, c1, srv) + oneWay(model, srv, c2)
			case PolicyCentral:
				lat = oneWay(model, c1, geo.ServerTX) + oneWay(model, geo.ServerTX, c2)
			case PolicyGeoDistributed:
				s1, _ := geo.Nearest(c1, spec.Servers)
				s2, _ := geo.Nearest(c2, spec.Servers)
				lat = oneWay(model, c1, s1) + oneWay(backbone, s1, s2) + oneWay(model, s2, c2)
			}
			sum += lat
			n++
			if lat < 100 {
				under++
			}
			if lat > row.MaxOneWayMs {
				row.MaxOneWayMs = lat
			}
		}
	}
	row.MeanOneWayMs = sum / float64(n)
	row.FracUnder100 = float64(under) / float64(n)
	return row, nil
}

// MultiServerAblation quantifies Implications 1: it computes client-to-
// client one-way latency for every ordered pair of the nine vantage points
// under each server policy, using FaceTime's fleet. The geo-distributed
// backbone uses a 1.1 route inflation (dedicated fiber) versus the public
// Internet's 1.8.
func MultiServerAblation(opts Options) ([]MultiServerRow, error) {
	out := make([]MultiServerRow, 0, len(multiServerPolicies))
	for _, p := range multiServerPolicies {
		row, err := multiServerPolicy(opts, p)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// ----------------------------------------------------- Implications 3

// ViewportDeliveryRow compares delivery bandwidth with and without the
// Implications-3 proposal: stop sending a persona that is outside the
// receiver's viewport.
type ViewportDeliveryRow struct {
	// OutOfViewFrac is the fraction of time the persona was outside the
	// receiver's viewport in this run.
	OutOfViewFrac float64
	// BaselineMbps is FaceTime's behaviour: delivery is viewport-blind.
	BaselineMbps float64
	// GatedMbps is with viewport-aware delivery (sender pauses on
	// feedback, with one-way-delay reaction lag).
	GatedMbps float64
	// SavingsFrac is 1 - Gated/Baseline.
	SavingsFrac float64
}

// ViewportDeliveryAblation implements the paper's proposed bandwidth
// optimization: the receiver reports viewport enter/leave events upstream;
// the sender gates the semantic stream (keeping a 2 Hz heartbeat so pose
// recovery is instant). The paper measured that FaceTime does NOT do this
// (§4.4); this experiment shows what it would save.
func ViewportDeliveryAblation(opts Options) (ViewportDeliveryRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return ViewportDeliveryRow{}, err
	}
	sched := simtime.NewScheduler()
	rng := simrand.New(opts.Seed)
	oneWay := geo.DefaultPathModel().BaseRTTMs(geo.Ashburn, geo.NewYork) / 2
	pipe := netem.NewPipe(sched, rng.Split("pipe"), netem.Config{Name: "vp", DelayMs: oneWay})

	gen := keypoints.NewGenerator(rng.Split("kp"), keypoints.DefaultMotionConfig())
	enc := semantic.NewEncoder(semantic.ModeFloat32)

	// Receiver-side viewport state: the remote persona drifts in and out
	// of view as the local user looks around. Dwell times ~ exponential.
	inView := true
	var outNs, lastFlip int64
	flipLeft := rng.Exponential(4)

	// Sender-side gate, driven by (delayed) feedback.
	senderGate := true
	pipe.BA.SetHandler(func(_ simtime.Time, f netem.Frame) {
		senderGate = f.Payload[0] == 1
	})

	var baselineBytes, gatedBytes int64
	heartbeatLeft := 0.0
	const dt = 1.0 / 90
	frame := simtime.Duration(simtime.Second / 90)
	simtime.NewTicker(sched, frame, func(now simtime.Time) {
		// Viewport process.
		flipLeft -= dt
		if flipLeft <= 0 {
			if inView {
				flipLeft = rng.Exponential(2) // out-of-view dwell
			} else {
				flipLeft = rng.Exponential(4) // in-view dwell
			}
			inView = !inView
			if !inView {
				lastFlip = int64(now)
			} else {
				outNs += int64(now) - lastFlip
			}
			// Feedback packet upstream.
			state := byte(0)
			if inView {
				state = 1
			}
			pipe.BA.Send(netem.Frame{Size: 40, Payload: []byte{state}})
		}
		// Media.
		kf := gen.Next()
		wire := enc.Encode(&kf)
		size := len(wire) + 28
		baselineBytes += int64(size)
		heartbeatLeft -= dt
		if senderGate {
			gatedBytes += int64(size)
		} else if heartbeatLeft <= 0 {
			gatedBytes += int64(size) // keepalive pose refresh
			heartbeatLeft = 0.5
		}
		pipe.AB.Send(netem.Frame{Size: size, Payload: wire})
	})

	dur := opts.SessionDuration
	if dur < 20*simtime.Second {
		dur = 20 * simtime.Second // viewport dwells are seconds-long
	}
	sched.RunFor(dur)
	if !inView {
		outNs += int64(sched.Now()) - lastFlip
	}
	sec := float64(dur) / float64(simtime.Second)
	base := float64(baselineBytes) * 8 / sec / 1e6
	gated := float64(gatedBytes) * 8 / sec / 1e6
	return ViewportDeliveryRow{
		OutOfViewFrac: float64(outNs) / float64(dur),
		BaselineMbps:  base,
		GatedMbps:     gated,
		SavingsFrac:   1 - gated/base,
	}, nil
}

// ----------------------------------------------------------------- QoE

// QoESweepRow is one passively-inferred QoE estimate (see §5: "analyzing IP
// headers and packet transmission patterns may help better understand the
// delivered content").
type QoESweepRow struct {
	App vca.App
	// TrueFPS is the configured media frame rate.
	TrueFPS float64
	// InferredFPS is estimated purely from packet timing at the AP.
	InferredFPS float64
	// MeanFrameBytes is the inferred media frame size.
	MeanFrameBytes float64
}

// qoeApps are the sessions the passive sweep fingerprints.
var qoeApps = []vca.App{vca.FaceTime, vca.Zoom}

// qoeApp fingerprints one app's session; each app seeds its own session and
// is an independent work unit.
func qoeApp(opts Options, i int) (QoESweepRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return QoESweepRow{}, err
	}
	app := qoeApps[i]
	sc := vca.DefaultSessionConfig(app, []vca.Participant{
		{ID: "u1", Loc: geo.Ashburn, Device: vca.VisionPro},
		{ID: "u2", Loc: geo.NewYork, Device: vca.VisionPro},
	})
	sc.Duration = opts.SessionDuration
	sc.Seed = opts.Seed + int64(i)
	// Passive QoE genuinely needs per-packet timing: opt in to record
	// retention (the default capture mode streams aggregates only).
	sc.RetainPackets = true
	sess, err := vca.NewSession(sc)
	if err != nil {
		return QoESweepRow{}, err
	}
	sess.Run()
	est := estimateQoE(sess, sc)
	trueFPS := sc.VideoFPS
	if sess.Plan().Media == vca.MediaSpatialPersona {
		trueFPS = sc.SpatialFPS
	}
	return QoESweepRow{
		App: app, TrueFPS: trueFPS,
		InferredFPS:    est.fps,
		MeanFrameBytes: est.frameBytes,
	}, nil
}

// PassiveQoESweep runs a two-user session per app and infers frame rate and
// frame size from the encrypted packet stream alone, validating the
// paper's suggested passive-measurement direction.
func PassiveQoESweep(opts Options) ([]QoESweepRow, error) {
	var out []QoESweepRow
	for i := range qoeApps {
		row, err := qoeApp(opts, i)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

type qoeEstimate struct {
	fps        float64
	frameBytes float64
}

// estimateQoE clusters the uplink packet stream into frame bursts by
// inter-arrival gap and derives FPS and frame size — headers only.
func estimateQoE(sess *vca.Session, sc vca.SessionConfig) qoeEstimate {
	recs := sess.UplinkRecords(0)
	if len(recs) < 10 {
		return qoeEstimate{}
	}
	// Media packets dominate; drop tiny packets (ACKs/audio) first.
	sizes := &stats.Sample{}
	for _, r := range recs {
		sizes.Add(float64(r.Size))
	}
	// Media packets sit at the top of the size distribution; audio and
	// ACKs below. Cut at 60% of the 90th-percentile size.
	cut := sizes.Percentile(90) * 0.6
	var times []simtime.Time
	var bytes []int
	for _, r := range recs {
		if float64(r.Size) >= cut {
			times = append(times, r.At)
			bytes = append(bytes, r.Size)
		}
	}
	if len(times) < 10 {
		return qoeEstimate{}
	}
	// Burst split: a gap above 40% of the median frame interval starts a
	// new frame. First pass with a coarse guess, refined once.
	gapThresh := 3 * simtime.Millisecond
	var frames int
	var frameBytes []float64
	cur := float64(bytes[0])
	for i := 1; i < len(times); i++ {
		if times[i].Sub(times[i-1]) > gapThresh {
			frames++
			frameBytes = append(frameBytes, cur)
			cur = 0
		}
		cur += float64(bytes[i])
	}
	frames++
	frameBytes = append(frameBytes, cur)
	span := times[len(times)-1].Sub(times[0]).Seconds()
	if span <= 0 {
		return qoeEstimate{}
	}
	fb := stats.NewSample(frameBytes...)
	return qoeEstimate{fps: float64(frames) / span, frameBytes: fb.Mean()}
}
