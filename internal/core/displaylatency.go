package core

import (
	"telepresence/internal/geo"
	"telepresence/internal/keypoints"
	"telepresence/internal/netem"
	"telepresence/internal/persona"
	"telepresence/internal/semantic"
	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
)

// DisplayLatencyRow is one point of the §4.3 display-latency experiment:
// the gap between rendering newly visible real-world content and the remote
// persona after an abrupt viewport change, under injected network delay.
type DisplayLatencyRow struct {
	InjectedDelayMs float64
	// SemanticDiffMs is the gap with semantic delivery: reconstruction is
	// local, so the gap stays within a frame time regardless of delay.
	SemanticDiffMs float64
	// PrerenderedDiffMs is the gap if the sender pre-rendered the persona
	// for the receiver's viewport: a viewport change costs a round trip.
	PrerenderedDiffMs float64
}

// frameAlign quantizes t up to the next 90 FPS display refresh.
func frameAlign(t simtime.Time) simtime.Time {
	frame := simtime.Time(simtime.Second) / 90
	return ((t + frame - 1) / frame) * frame
}

// DefaultInjectedDelaysMs is the registry's delay sweep, matching the
// paper's 0-1000 ms injection range.
func DefaultInjectedDelaysMs() []float64 { return []float64{0, 100, 250, 500, 1000} }

// DisplayLatency reproduces the §4.3 experiment. U1 watches U2's persona
// over a link with injected one-way delay; at a fixed instant U1 flips the
// viewport to reveal a new side of the persona. Real-world passthrough
// renders on the next 90 FPS refresh. The semantic pipeline re-poses the
// locally reconstructed mesh, so it also hits the next refresh; the
// pre-rendered-video pipeline must request the new view from the sender.
func DisplayLatency(opts Options, injectedMs []float64) ([]DisplayLatencyRow, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var out []DisplayLatencyRow
	for _, inj := range injectedMs {
		row, err := displayLatencyCase(opts, inj)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// displayLatencyCase measures one injected-delay point. Every point builds
// its own scheduler and derives all randomness from opts.Seed, so points
// are independent work units.
func displayLatencyCase(opts Options, inj float64) (DisplayLatencyRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return DisplayLatencyRow{}, err
	}
	sched := simtime.NewScheduler()
	rng := simrand.New(opts.Seed)
	base := geo.DefaultPathModel().BaseRTTMs(geo.Ashburn, geo.NewYork) / 2
	pipe := netem.NewPipe(sched, rng.Split("dl"), netem.Config{
		Name: "dl", DelayMs: base,
	})
	pipe.AB.Shaper().ExtraDelayMs = inj // tc on the U2 -> U1 direction
	pipe.BA.Shaper().ExtraDelayMs = inj

	// Semantic pipeline: continuous keypoint stream feeding a local
	// reconstructor at U1.
	asset, err := persona.NewAsset(rng.Split("asset"), persona.Config{
		Name: "u2", TargetTriangles: 500, BuildLODs: false, BindK: 2,
	})
	if err != nil {
		return DisplayLatencyRow{}, err
	}
	rec := persona.NewReconstructor(asset)
	gen := keypoints.NewGenerator(rng.Split("kp"), keypoints.DefaultMotionConfig())
	enc := semantic.NewEncoder(semantic.ModeFloat32)
	pipe.AB.SetHandler(func(_ simtime.Time, f netem.Frame) {
		_ = rec.Feed(f.Payload)
	})
	frame := simtime.Time(simtime.Second) / 90
	simtime.NewTicker(sched, simtime.Duration(frame), func(simtime.Time) {
		kf := gen.Next()
		pipe.AB.Send(netem.Frame{Payload: enc.Encode(&kf)})
	})

	// Warm up for two seconds so the reconstructor holds a pose.
	warm := simtime.Time(2 * simtime.Second)
	flipAt := warm + simtime.Time(500*simtime.Millisecond)
	row := DisplayLatencyRow{InjectedDelayMs: inj}

	// Pre-rendered pipeline state: U1's request travels BA, the new
	// view returns on AB.
	var prerenderedAt simtime.Time
	pipe.BA.SetHandler(func(now simtime.Time, f netem.Frame) {
		// Sender receives the viewport request, renders (one frame
		// budget), ships the new view back.
		sched.After(simtime.Duration(frame), func() {
			pipe.AB.Send(netem.Frame{Size: 20000, Payload: []byte("VIEW")})
		})
	})
	handlerInstalled := false

	sched.At(flipAt, func() {
		// Real-world passthrough: visible at the next refresh.
		realWorldAt := frameAlign(flipAt)
		// Semantic: pose is local; renders at the same refresh if a
		// pose exists, else it would wait for the network.
		semanticAt := realWorldAt
		if !rec.HavePose() {
			semanticAt = simtime.Never
		}
		row.SemanticDiffMs = semanticAt.Sub(realWorldAt).Seconds() * 1000
		// Pre-rendered: issue the viewport request now.
		if !handlerInstalled {
			handlerInstalled = true
			pipe.AB.SetHandler(func(now simtime.Time, f netem.Frame) {
				if string(f.Payload) == "VIEW" && prerenderedAt == 0 {
					prerenderedAt = frameAlign(now)
				}
			})
		}
		pipe.BA.Send(netem.Frame{Size: 100, Payload: []byte("REQ")})
	})
	sched.RunUntil(flipAt + simtime.Time(10*simtime.Second))
	realWorldAt := frameAlign(flipAt)
	if prerenderedAt > 0 {
		row.PrerenderedDiffMs = prerenderedAt.Sub(realWorldAt).Seconds() * 1000
	}
	return row, nil
}
