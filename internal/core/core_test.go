package core

import (
	"math"
	"testing"

	"telepresence/internal/simtime"
	"telepresence/internal/vca"
)

func TestFig4RowsAndFindings(t *testing.T) {
	rows, err := Fig4(Quick(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d series, want 10", len(rows))
	}
	byLabel := map[string]Fig4Row{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.Sample.N() == 0 {
			t.Errorf("series %s empty", r.Label)
		}
	}
	// Headline: RTT can exceed 100 ms even inside the US.
	worst := 0.0
	for _, r := range rows {
		if m := r.Sample.Max(); m > worst {
			worst = m
		}
	}
	if worst < 100 {
		t.Errorf("worst RTT %.1f ms, want >100 (paper Fig.4)", worst)
	}
}

func TestAnycastAuditAllUnicast(t *testing.T) {
	verdicts, err := AnycastAudit(Quick(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if v.Anycast {
			t.Errorf("server %v flagged anycast: %s", v.Server, v.Evidence)
		}
	}
}

func TestProtocolMatrix(t *testing.T) {
	cases := ProtocolMatrix()
	if len(cases) != 8 {
		t.Fatalf("%d cases, want 8", len(cases))
	}
	spatial := 0
	for _, c := range cases {
		if c.Media == vca.MediaSpatialPersona {
			spatial++
			if c.Transport != vca.TransportQUIC {
				t.Errorf("%s: spatial persona over %v", c.Desc, c.Transport)
			}
			if c.P2P {
				t.Errorf("%s: spatial persona must relay via server", c.Desc)
			}
		} else if c.Transport != vca.TransportRTP {
			t.Errorf("%s: 2D persona over %v, want RTP", c.Desc, c.Transport)
		}
	}
	if spatial != 1 {
		t.Errorf("%d spatial cases, want exactly 1 (FaceTime all-VP)", spatial)
	}
}

func TestFig5Ordering(t *testing.T) {
	rows, err := Fig5(Quick(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	m := map[string]float64{}
	for _, r := range rows {
		m[r.Label] = r.Box.Mean
	}
	// The paper's central counterintuitive result: the immersive spatial
	// persona needs LESS bandwidth than every 2D persona.
	for _, other := range []string{"F*", "Z", "W", "T"} {
		if m["F"] >= m[other] {
			t.Errorf("spatial F (%.2f Mbps) not below %s (%.2f Mbps)", m["F"], other, m[other])
		}
	}
	// Webex is the hungriest; Zoom the lightest 2D persona.
	if m["W"] <= m["T"] || m["W"] <= m["Z"] || m["W"] <= m["F*"] {
		t.Errorf("Webex (%.2f) should dominate 2D personas: %v", m["W"], m)
	}
	if m["Z"] >= m["T"] {
		t.Errorf("Zoom (%.2f) should be below Teams (%.2f)", m["Z"], m["T"])
	}
	// Absolute bands (generous): F ~0.7, W >3.5.
	if m["F"] < 0.4 || m["F"] > 1.0 {
		t.Errorf("F = %.2f Mbps, want ~0.7", m["F"])
	}
	if m["W"] < 3.0 {
		t.Errorf("W = %.2f Mbps, want >3 (paper: >4)", m["W"])
	}
}

func TestMeshVsKeypointGap(t *testing.T) {
	ms, err := MeshStreaming(Quick(4))
	if err != nil {
		t.Fatal(err)
	}
	kp, err := KeypointStreaming(Quick(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Triangles) != 10 {
		t.Fatalf("%d heads, want 10", len(ms.Triangles))
	}
	for _, tr := range ms.Triangles {
		if tr < 69000 || tr > 91000 {
			t.Errorf("head with %d triangles outside 70-90K", tr)
		}
	}
	if kp.Keypoints != 74 {
		t.Errorf("keypoints = %d, want 74", kp.Keypoints)
	}
	meshMbps, kpMbps := ms.MbpsSample.Mean(), kp.MbpsSample.Mean()
	// Paper: 108.4±16.7 vs 0.64±0.02 — two orders of magnitude.
	if meshMbps/kpMbps < 50 {
		t.Errorf("mesh/keypoint ratio %.0f, want >50 (paper ~170x)", meshMbps/kpMbps)
	}
	if kpMbps < 0.5 || kpMbps > 0.8 {
		t.Errorf("keypoint stream %.2f Mbps, want 0.64±0.15", kpMbps)
	}
	if kp.MbpsSample.Std() > 0.05 {
		t.Errorf("keypoint stream std %.3f, want tight (paper ±0.02)", kp.MbpsSample.Std())
	}
}

func TestDisplayLatencyInvariance(t *testing.T) {
	rows, err := DisplayLatency(Quick(6), []float64{0, 100, 500, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Semantic: gap stays under 16 ms regardless of injected delay
		// (the paper's measured bound).
		if r.SemanticDiffMs > 16 {
			t.Errorf("delay %v ms: semantic gap %.1f ms, want <16", r.InjectedDelayMs, r.SemanticDiffMs)
		}
		// Pre-rendered: gap tracks the round trip.
		if r.PrerenderedDiffMs < 2*r.InjectedDelayMs {
			t.Errorf("delay %v ms: prerendered gap %.1f ms should exceed the RTT %v",
				r.InjectedDelayMs, r.PrerenderedDiffMs, 2*r.InjectedDelayMs)
		}
	}
	// The distinguishing signature: prerendered grows with delay,
	// semantic does not.
	if !(rows[3].PrerenderedDiffMs > rows[0].PrerenderedDiffMs+1500) {
		t.Errorf("prerendered gap did not track delay: %v vs %v",
			rows[3].PrerenderedDiffMs, rows[0].PrerenderedDiffMs)
	}
	if math.Abs(rows[3].SemanticDiffMs-rows[0].SemanticDiffMs) > 16 {
		t.Errorf("semantic gap varies with delay: %v vs %v",
			rows[0].SemanticDiffMs, rows[3].SemanticDiffMs)
	}
}

func TestFig6InvariantBandwidth(t *testing.T) {
	rows, err := Fig6(Quick(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	base := rows[0]
	if base.Mode != "BL" || base.Triangles != 78030 {
		t.Errorf("baseline row wrong: %+v", base)
	}
	for _, r := range rows[1:] {
		// GPU drops with every optimization...
		if r.GPUMs >= base.GPUMs {
			t.Errorf("%s: GPU %.2f not below baseline %.2f", r.Mode, r.GPUMs, base.GPUMs)
		}
		// ...but CPU and bandwidth do not change (§4.4).
		if r.CPUMs != base.CPUMs {
			t.Errorf("%s: CPU %.2f != baseline %.2f", r.Mode, r.CPUMs, base.CPUMs)
		}
		if math.Abs(r.UplinkMbps-base.UplinkMbps) > 0.08 {
			t.Errorf("%s: uplink %.3f deviates from baseline %.3f (optimizations must not affect delivery)",
				r.Mode, r.UplinkMbps, base.UplinkMbps)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	opts := Quick(8)
	opts.SessionDuration = 5 * simtime.Second
	rows, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2..5 users
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		// Triangles, GPU, CPU and downlink all rise with user count
		// (triangles may plateau within a few percent at five users when
		// edge personas leave the viewport, as in the paper's Fig. 7a).
		if rows[i].TriMean < rows[i-1].TriMean*0.96 {
			t.Errorf("triangles decreasing: %v -> %v", rows[i-1].TriMean, rows[i].TriMean)
		}
		if rows[i].GPUMean <= rows[i-1].GPUMean {
			t.Errorf("GPU not increasing: %v -> %v", rows[i-1].GPUMean, rows[i].GPUMean)
		}
		if rows[i].CPUMean <= rows[i-1].CPUMean {
			t.Errorf("CPU not increasing: %v -> %v", rows[i-1].CPUMean, rows[i].CPUMean)
		}
		if rows[i].DownMbps <= rows[i-1].DownMbps {
			t.Errorf("downlink not increasing: %v -> %v", rows[i-1].DownMbps, rows[i].DownMbps)
		}
	}
	// Downlink linearity (Fig.7c): per-remote-user rate roughly constant.
	perUser2 := rows[0].DownMbps / 1
	perUser5 := rows[3].DownMbps / 4
	if math.Abs(perUser5-perUser2)/perUser2 > 0.3 {
		t.Errorf("downlink not linear: %.2f Mbps/user at 2 vs %.2f at 5", perUser2, perUser5)
	}
	// GPU at 5 users approaches the 11.1 ms deadline: p95 > 9 ms (paper).
	if rows[3].GPUP95 < 8.3 {
		t.Errorf("GPU p95 at 5 users = %.2f ms, want >8.3 (paper: >9)", rows[3].GPUP95)
	}
	// 2-user anchors (paper: GPU 5.65±0.69, CPU 5.67±0.69).
	if math.Abs(rows[0].GPUMean-5.65) > 1.0 {
		t.Errorf("2-user GPU = %.2f ms, want 5.65±1", rows[0].GPUMean)
	}
	if math.Abs(rows[0].CPUMean-5.67) > 1.0 {
		t.Errorf("2-user CPU = %.2f ms, want 5.67±1", rows[0].CPUMean)
	}
	// Foveation keeps the 5th percentile of triangles nearly flat from 3
	// to 5 users (paper Fig.7a).
	if rows[3].TriP5 > rows[1].TriP5*1.6 {
		t.Errorf("5th-percentile triangles grew too much: %v (3 users) -> %v (5 users)",
			rows[1].TriP5, rows[3].TriP5)
	}
}

func TestRateAdaptationSweep(t *testing.T) {
	rows, err := RateAdaptation(Quick(9), []float64{0, 2.0, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	uncapped, generous, tight := rows[0], rows[1], rows[2]
	if uncapped.UnavailableFrac > 0.1 {
		t.Errorf("uncapped session unavailable %.0f%%", uncapped.UnavailableFrac*100)
	}
	if generous.UnavailableFrac > 0.1 {
		t.Errorf("2 Mbps cap unavailable %.0f%%", generous.UnavailableFrac*100)
	}
	if tight.UnavailableFrac < 0.3 {
		t.Errorf("0.7 Mbps cap: persona %.0f%% unavailable, want >30%% (paper: unusable)",
			tight.UnavailableFrac*100)
	}
	if tight.MeanLatencyMs <= generous.MeanLatencyMs {
		t.Error("capped session should show inflated frame latency")
	}
}

func TestRemoteRenderAblation(t *testing.T) {
	opts := Quick(10)
	opts.SessionDuration = 4 * simtime.Second
	rows, err := RemoteRenderAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Fan-out grows with users; remote rendering stays flat.
	first, last := rows[0], rows[len(rows)-1]
	if last.FanoutMbps <= first.FanoutMbps*1.5 {
		t.Errorf("fan-out did not grow: %.2f -> %.2f", first.FanoutMbps, last.FanoutMbps)
	}
	ratio := last.RemoteRenderMbps / first.RemoteRenderMbps
	if ratio > 1.3 || ratio < 0.7 {
		t.Errorf("remote render not flat: %.2f -> %.2f", first.RemoteRenderMbps, last.RemoteRenderMbps)
	}
	// At five users fan-out exceeds the remote-render stream.
	if last.FanoutMbps <= last.RemoteRenderMbps {
		t.Errorf("at 5 users fan-out (%.2f) should exceed remote render (%.2f)",
			last.FanoutMbps, last.RemoteRenderMbps)
	}
}

func TestOptionsNormalization(t *testing.T) {
	o, err := Options{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if o.SessionDuration <= 0 || o.Reps <= 0 {
		t.Error("normalization failed")
	}
	if Full(1).Reps < 5 {
		t.Error("Full() should use paper-scale reps")
	}
}

func TestOptionsRejectNegatives(t *testing.T) {
	// Negative values used to be silently replaced with defaults; they
	// must surface as errors now.
	if _, err := (Options{Reps: -1}).Normalize(); err == nil {
		t.Error("negative Reps not rejected")
	}
	if _, err := (Options{SessionDuration: -simtime.Second}).Normalize(); err == nil {
		t.Error("negative SessionDuration not rejected")
	}
	if err := (Options{Reps: -1}).Validate(); err == nil {
		t.Error("Validate passed negative Reps")
	}
	// Every runner propagates the error instead of running.
	bad := Options{Seed: 1, Reps: -3}
	if _, err := Fig5(bad); err == nil {
		t.Error("Fig5 ignored invalid options")
	}
	if _, err := Fig4(bad); err == nil {
		t.Error("Fig4 ignored invalid options")
	}
	if _, err := KeypointStreaming(bad); err == nil {
		t.Error("KeypointStreaming ignored invalid options")
	}
	if _, err := ViewportDeliveryAblation(bad); err == nil {
		t.Error("ViewportDeliveryAblation ignored invalid options")
	}
	// Sweep runners must reject invalid options even with an empty sweep.
	if _, err := DisplayLatency(bad, nil); err == nil {
		t.Error("DisplayLatency ignored invalid options on empty sweep")
	}
	if _, err := RateAdaptation(bad, nil); err == nil {
		t.Error("RateAdaptation ignored invalid options on empty sweep")
	}
}
