package core

import (
	"fmt"
	"math"

	"telepresence/internal/geo"
	"telepresence/internal/mesh"
	"telepresence/internal/render"
	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
	"telepresence/internal/stats"
	"telepresence/internal/vca"
	"telepresence/internal/video"
)

// Fig6Row is one bar group of Figure 6: a visibility-optimization scenario.
type Fig6Row struct {
	Mode      string // BL, V, F, D
	Triangles int
	GPUMs     float64
	CPUMs     float64
	// UplinkMbps demonstrates that the optimization does NOT change
	// transmission (§4.4).
	UplinkMbps float64
}

// fig6Scenarios are the four §4.4 visibility scenarios.
var fig6Scenarios = []struct {
	mode string
	pos  mesh.Vec3
}{
	{"BL", mesh.Vec3{Z: 0.5}},
	{"V", mesh.Vec3{Z: -0.5}},
	{"F", mesh.Vec3{X: 0.321, Z: 0.383}},
	{"D", mesh.Vec3{Z: 3.5}},
}

// fig6Case evaluates one scenario: rendering cost for the persona placement
// plus one spatial session for the (invariant) uplink bandwidth. The sender
// knows nothing about the receiver's optimizations, so uplink is invariant.
func fig6Case(opts Options, i int) (Fig6Row, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return Fig6Row{}, err
	}
	sc := fig6Scenarios[i]
	r := render.NewRenderer(render.DefaultCostModel(), render.FaceTimeOptimizations(), nil)
	cam := render.Camera{Forward: mesh.Vec3{Z: 1}, Gaze: mesh.Vec3{Z: 1}}
	p := &render.Persona{ID: "u2", Pos: sc.pos}
	fc := r.RenderFrame(cam, []*render.Persona{p})
	sess, err := vca.NewSession(func() vca.SessionConfig {
		c := vca.DefaultSessionConfig(vca.FaceTime, []vca.Participant{
			{ID: "u1", Loc: geo.Ashburn, Device: vca.VisionPro},
			{ID: "u2", Loc: geo.NewYork, Device: vca.VisionPro},
		})
		c.Duration = opts.SessionDuration
		c.Seed = opts.Seed + int64(i)
		return c
	}())
	if err != nil {
		return Fig6Row{}, err
	}
	res := sess.Run()
	return Fig6Row{
		Mode:       sc.mode,
		Triangles:  fc.Triangles,
		GPUMs:      fc.GPUMs,
		CPUMs:      fc.CPUMs,
		UplinkMbps: res.Users[1].Uplink.Mean(),
	}, nil
}

// Fig6 evaluates the four §4.4 scenarios: baseline (half-meter stare),
// viewport-culled, foveated-peripheral, and distance-reduced, reporting
// rendered triangles, GPU/CPU per-frame cost, and the (unchanged) semantic
// uplink bandwidth.
func Fig6(opts Options) ([]Fig6Row, error) {
	var rows []Fig6Row
	for i := range fig6Scenarios {
		row, err := fig6Case(opts, i)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7Row is one user-count column of Figure 7.
type Fig7Row struct {
	Users            int
	TriMean          float64
	TriP5            float64
	TriP95           float64
	CPUMean          float64
	GPUMean          float64
	GPUP95           float64
	DownMbps         float64
	DeadlineMissFrac float64
}

// fig7Locations spreads participants over the US like the paper's testbed.
var fig7Locations = []geo.Location{
	geo.Ashburn, geo.NewYork, geo.Chicago, geo.Austin, geo.Miami,
}

// fig7Session runs the n-user all-Vision-Pro FaceTime session that both
// fig7Users and remoteRenderUsers measure. Sharing the construction (and
// in particular the seed derivation) keeps their downlink columns
// comparable.
func fig7Session(opts Options, n int) (*vca.Results, error) {
	parts := make([]vca.Participant, n)
	for i := 0; i < n; i++ {
		parts[i] = vca.Participant{ID: fmt.Sprintf("u%d", i+1), Loc: fig7Locations[i], Device: vca.VisionPro}
	}
	sc := vca.DefaultSessionConfig(vca.FaceTime, parts)
	sc.Duration = opts.SessionDuration
	sc.Seed = opts.Seed + int64(n)
	sess, err := vca.NewSession(sc)
	if err != nil {
		return nil, err
	}
	return sess.Run(), nil
}

// fig7Users measures one user count (n = 2..MaxSpatialUsers); each count
// seeds its own session and render loop, forming an independent work unit.
func fig7Users(opts Options, n int) (Fig7Row, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return Fig7Row{}, err
	}
	res, err := fig7Session(opts, n)
	if err != nil {
		return Fig7Row{}, err
	}

	rl := renderLoop(opts.Seed+int64(n*7), n, opts.SessionDuration)
	return Fig7Row{
		Users:            n,
		TriMean:          rl.tris.Mean(),
		TriP5:            rl.tris.Percentile(5),
		TriP95:           rl.tris.Percentile(95),
		CPUMean:          rl.cpu.Mean(),
		GPUMean:          rl.gpu.Mean(),
		GPUP95:           rl.gpu.Percentile(95),
		DownMbps:         res.Users[0].Downlink.Mean(),
		DeadlineMissFrac: rl.missFrac,
	}, nil
}

// Fig7 runs the scalability analysis: 2-5 Vision Pro users in one FaceTime
// session. Throughput comes from the session simulation; rendering load
// comes from a seated-meeting scene replayed at 90 FPS with wandering gaze.
func Fig7(opts Options) ([]Fig7Row, error) {
	var rows []Fig7Row
	for n := 2; n <= vca.MaxSpatialUsers; n++ {
		row, err := fig7Users(opts, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

type renderLoopResult struct {
	tris, cpu, gpu *stats.Sample
	missFrac       float64
}

// renderLoop replays a seated meeting: n-1 remote personas in an arc at
// conversational distance, the local user's gaze dwelling on one speaker at
// a time with natural wander, the head turning toward the gaze.
func renderLoop(seed int64, nUsers int, dur simtime.Duration) renderLoopResult {
	rng := simrand.New(seed)
	r := render.NewRenderer(render.DefaultCostModel(), render.FaceTimeOptimizations(), rng.Split("noise"))
	nP := nUsers - 1
	personas := make([]*render.Persona, nP)
	// Personas seated across an arc with a fixed ~20 degree gap between
	// neighbors (conversational spacing at ~1.1 m): with five users the
	// edge seats sit ~30 degrees out, so looking at one end pushes the far
	// end out of the viewport entirely — the source of the flat 5th
	// percentile in Figure 7a.
	const gap = 22 * math.Pi / 180
	for i := range personas {
		ang := (float64(i) - float64(nP-1)/2) * gap
		dist := 1.1 + 0.15*float64(i%2)
		personas[i] = &render.Persona{
			ID:  fmt.Sprintf("p%d", i),
			Pos: mesh.Vec3{X: dist * math.Sin(ang), Z: dist * math.Cos(ang)},
		}
	}
	cam := render.Camera{Forward: mesh.Vec3{Z: 1}, Gaze: mesh.Vec3{Z: 1}}

	frames := int(dur / (simtime.Duration(simtime.Second) / 90))
	if frames < 900 {
		frames = 900
	}
	attended := 0
	dwellLeft := rng.Exponential(2.0)
	res := renderLoopResult{tris: &stats.Sample{}, cpu: &stats.Sample{}, gpu: &stats.Sample{}}
	misses := 0
	const dt = 1.0 / 90
	gazeWander := simrand.NewOU(rng.Split("gw"), 0, 2.5, 0.08)
	for f := 0; f < frames; f++ {
		dwellLeft -= dt
		if dwellLeft <= 0 {
			attended = rng.Intn(nP)
			dwellLeft = rng.Exponential(2.0)
		}
		target := personas[attended].Pos
		// Gaze: at the attended persona plus saccadic wander.
		w := gazeWander.Step(dt)
		gx, gz := target.X+w, target.Z
		gl := math.Hypot(gx, gz)
		cam.Gaze = mesh.Vec3{X: gx / gl, Z: gz / gl}
		// Head turns toward the gaze with a ~300 ms time constant.
		alpha := dt / 0.3
		fx := cam.Forward.X + (cam.Gaze.X-cam.Forward.X)*alpha
		fz := cam.Forward.Z + (cam.Gaze.Z-cam.Forward.Z)*alpha
		fl := math.Hypot(fx, fz)
		cam.Forward = mesh.Vec3{X: fx / fl, Z: fz / fl}

		fc := r.RenderFrame(cam, personas)
		res.tris.Add(float64(fc.Triangles))
		res.cpu.Add(fc.CPUMs)
		res.gpu.Add(fc.GPUMs)
		if fc.MissedDeadline {
			misses++
		}
	}
	res.missFrac = float64(misses) / float64(frames)
	return res
}

// RemoteRenderRow compares per-user downlink for persona fan-out versus the
// Implications-4 alternative: the server renders all personas into one
// video stream, decoupling bandwidth from user count.
type RemoteRenderRow struct {
	Users            int
	FanoutMbps       float64
	RemoteRenderMbps float64
}

// remoteRenderUsers compares fan-out and remote-render downlink for one
// user count; an independent work unit like fig7Users.
func remoteRenderUsers(opts Options, n int) (RemoteRenderRow, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return RemoteRenderRow{}, err
	}
	// The remote-render stream: the server composites every persona into
	// one fixed-resolution video; its bitrate is set by the encoder's
	// rate controller, independent of n.
	remote := func(seed int64) (float64, error) {
		scene := video.NewScene(simrand.New(seed), 960, 540, 30)
		enc, err := video.NewEncoder(video.DefaultConfig(960, 540, 2.0e6))
		if err != nil {
			return 0, err
		}
		frames := int(opts.SessionDuration/simtime.Second) * 30
		if frames < 90 {
			frames = 90
		}
		var bytes int
		for i := 0; i < frames; i++ {
			ef, err := enc.Encode(scene.Next())
			if err != nil {
				return 0, err
			}
			bytes += len(ef.Data) + 40*((len(ef.Data)/1200)+1) // RTP+IP overhead
		}
		return float64(bytes) * 8 / (float64(frames) / 30) / 1e6, nil
	}
	res, err := fig7Session(opts, n)
	if err != nil {
		return RemoteRenderRow{}, err
	}
	rr, err := remote(opts.Seed + int64(n))
	if err != nil {
		return RemoteRenderRow{}, err
	}
	return RemoteRenderRow{
		Users:            n,
		FanoutMbps:       res.Users[0].Downlink.Mean(),
		RemoteRenderMbps: rr,
	}, nil
}

// RemoteRenderAblation implements the paper's proposed fix for the
// scalability bottleneck and quantifies it.
func RemoteRenderAblation(opts Options) ([]RemoteRenderRow, error) {
	var out []RemoteRenderRow
	for n := 2; n <= vca.MaxSpatialUsers; n++ {
		row, err := remoteRenderUsers(opts, n)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}
