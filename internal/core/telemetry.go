package core

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"telepresence/internal/telemetry"
	"telepresence/internal/vca"
)

// sanitizeLabel maps a canonical parameter label to a filesystem-safe file
// stem: every byte outside [A-Za-z0-9._-] becomes '-'. Labels are
// deterministic functions of the cell parameters, so the mapping is too.
func sanitizeLabel(label string) string {
	out := []byte(label)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			out[i] = '-'
		}
	}
	return string(out)
}

// cellTelemetry opens the telemetry outputs one scenario cell was asked for
// (opts.TraceDir / opts.MetricsDir) and returns the session config to
// attach plus a done func that flushes and closes them. When neither dir is
// set it returns (nil, no-op, nil): the session runs with telemetry fully
// disabled — the inert default.
//
// Each cell owns its own files, named <target>__<label> after the cell's
// canonical parameter label, so parallel fleet workers never share a
// writer and a rerun overwrites rather than appends.
func cellTelemetry(opts Options, target, label string) (*vca.TelemetryConfig, func() error, error) {
	noop := func() error { return nil }
	if opts.TraceDir == "" && opts.MetricsDir == "" {
		return nil, noop, nil
	}
	stem := target + "__" + sanitizeLabel(label)
	tc := &vca.TelemetryConfig{}
	var files []*os.File
	var bufs []*bufio.Writer
	cleanup := func() {
		for _, f := range files {
			f.Close()
		}
	}
	open := func(dir, suffix string) (*bufio.Writer, error) {
		f, err := os.Create(filepath.Join(dir, stem+suffix))
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		b := bufio.NewWriterSize(f, 1<<16)
		bufs = append(bufs, b)
		return b, nil
	}
	if opts.TraceDir != "" {
		w, err := open(opts.TraceDir, ".trace.jsonl")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		tc.Trace = telemetry.NewTracer(w)
	}
	if opts.MetricsDir != "" {
		w, err := open(opts.MetricsDir, ".metrics.csv")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		tc.Metrics = telemetry.NewMetrics(w, telemetry.FormatCSV)
	}
	done := func() error {
		errs := []error{tc.Trace.Err(), tc.Metrics.Err()}
		for _, b := range bufs {
			errs = append(errs, b.Flush())
		}
		for _, f := range files {
			errs = append(errs, f.Close())
		}
		if err := errors.Join(errs...); err != nil {
			return fmt.Errorf("core: telemetry %s: %w", stem, err)
		}
		return nil
	}
	return tc, done, nil
}
