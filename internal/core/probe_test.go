package core

import (
	"testing"

	"telepresence/internal/simtime"
)

func TestProbeFig7Values(t *testing.T) {
	opts := Quick(8)
	opts.SessionDuration = 5 * simtime.Second
	rows, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("n=%d tri p5/mean/p95=%.0f/%.0f/%.0f cpu=%.2f gpu=%.2f gpuP95=%.2f down=%.2f miss=%.3f",
			r.Users, r.TriP5, r.TriMean, r.TriP95, r.CPUMean, r.GPUMean, r.GPUP95, r.DownMbps, r.DeadlineMissFrac)
	}
}
