package core

import (
	"testing"

	"telepresence/internal/ratecontrol"
)

func TestControllerFromParam(t *testing.T) {
	for i, kind := range ratecontrol.Kinds() {
		got, err := controllerFromParam(map[string]float64{"controller": float64(i)})
		if err != nil || got != kind {
			t.Errorf("controller=%d -> (%q, %v), want %q", i, got, err, kind)
		}
	}
	for _, bad := range []float64{-1, 0.5, 99} {
		if _, err := controllerFromParam(map[string]float64{"controller": bad}); err == nil {
			t.Errorf("controller=%g accepted", bad)
		}
	}
}

func TestCCCellParamValidation(t *testing.T) {
	opts := Quick(1)
	if _, err := ccrateCell(opts, map[string]float64{"controller": 2, "cap_mbps": -1}); err == nil {
		t.Error("negative cap accepted")
	}
	if _, err := ccrampCell(opts, map[string]float64{"controller": 2, "start_mbps": 1, "floor_mbps": 2}); err == nil {
		t.Error("floor above start accepted")
	}
	if _, err := ccrampCell(opts, map[string]float64{"controller": 2, "start_mbps": 4, "floor_mbps": 0}); err == nil {
		t.Error("zero floor accepted")
	}
}

// TestCCRampClosedLoopBeatsOpenLoop is the subsystem's acceptance bar:
// under the congestion-ramp schedule, at every floor of the default grid,
// the delay-gradient controller must (a) keep the receiver's persona
// strictly more available than the open-loop baseline, and (b) track the
// ramp's floor — achieved rate within one AIMD backoff below the floor
// cap, and not above what the cap plus the pre-ramp drain can deliver.
func TestCCRampClosedLoopBeatsOpenLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("six 12 s 720p sessions; skipped in -short")
	}
	opts := Quick(1)
	gccIdx := float64(2) // ratecontrol.Kinds(): 0=fixed, 1=loss, 2=gcc
	for _, floor := range DefaultCongestionFloorsMbps() {
		params := map[string]float64{"start_mbps": 4, "floor_mbps": floor}
		params["controller"] = 0
		open, err := ccrampCell(opts, params)
		if err != nil {
			t.Fatal(err)
		}
		params["controller"] = gccIdx
		closed, err := ccrampCell(opts, params)
		if err != nil {
			t.Fatal(err)
		}
		if closed.UnavailableFrac >= open.UnavailableFrac {
			t.Errorf("floor %g: gcc UnavailableFrac %.3f not strictly below open loop %.3f",
				floor, closed.UnavailableFrac, open.UnavailableFrac)
		}
		// Achieved rate at the floor: within one multiplicative backoff
		// (Beta = 0.85) below the cap; the upper slack covers the backlog
		// serialized at pre-ramp rates still draining into the window.
		if lo, hi := 0.85*floor, floor+0.15; closed.FloorAchievedMbps < lo || closed.FloorAchievedMbps > hi {
			t.Errorf("floor %g: gcc achieved %.3f Mbps outside [%.3f, %.3f]",
				floor, closed.FloorAchievedMbps, lo, hi)
		}
		if closed.QueueDropFrac > open.QueueDropFrac {
			t.Errorf("floor %g: gcc queue drops %.3f above open loop %.3f",
				floor, closed.QueueDropFrac, open.QueueDropFrac)
		}
		if closed.DecodedFrac <= open.DecodedFrac {
			t.Errorf("floor %g: gcc decoded %.3f not above open loop %.3f",
				floor, closed.DecodedFrac, open.DecodedFrac)
		}
	}
}

// TestCCRateCellDeterminism: a cell's row is a pure function of
// (opts, params) — the contract that makes ccrate shardable across fleet
// workers and reshape-stable in sweep grids.
func TestCCRateCellDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two 12 s sessions; skipped in -short")
	}
	params := map[string]float64{"controller": 2, "cap_mbps": 0.9}
	a, err := ccrateCell(Quick(7), params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ccrateCell(Quick(7), params)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same cell differs:\n a: %+v\n b: %+v", a, b)
	}
	// The closed loop must actually have engaged in this cell.
	if a.MeanTargetMbps >= 1.4 || a.QueueDropFrac != 0 {
		t.Errorf("gcc cell did not adapt: %+v", a)
	}
}
