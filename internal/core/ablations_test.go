package core

import (
	"math"
	"testing"

	"telepresence/internal/simtime"
)

func TestMultiServerAblation(t *testing.T) {
	rows, err := MultiServerAblation(Quick(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	byPolicy := map[ServerPolicy]MultiServerRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
		if r.MaxOneWayMs <= 0 || r.MeanOneWayMs <= 0 {
			t.Errorf("%v: degenerate latencies %+v", r.Policy, r)
		}
		if r.MeanOneWayMs > r.MaxOneWayMs {
			t.Errorf("%v: mean %.1f > max %.1f", r.Policy, r.MeanOneWayMs, r.MaxOneWayMs)
		}
	}
	init := byPolicy[PolicyInitiator]
	central := byPolicy[PolicyCentral]
	dist := byPolicy[PolicyGeoDistributed]
	// Implications 1: geo-distributed serving beats the measured
	// initiator-nearest policy on worst-case latency.
	if dist.MaxOneWayMs >= init.MaxOneWayMs {
		t.Errorf("geo-distributed max %.1f not below initiator %.1f", dist.MaxOneWayMs, init.MaxOneWayMs)
	}
	// The central-US strategy caps the worst case versus coastal
	// allocation (the paper's TX/IL observation)...
	if central.MaxOneWayMs >= init.MaxOneWayMs {
		t.Errorf("central max %.1f not below initiator %.1f", central.MaxOneWayMs, init.MaxOneWayMs)
	}
	// ...and geo-distributed wins on mean as well.
	if dist.MeanOneWayMs >= init.MeanOneWayMs {
		t.Errorf("geo-distributed mean %.1f not below initiator %.1f", dist.MeanOneWayMs, init.MeanOneWayMs)
	}
	// All policies keep US-internal one-way latency under the 100 ms QoE
	// bar; the ordering is what matters.
	if dist.FracUnder100 < init.FracUnder100 {
		t.Errorf("geo-distributed QoE fraction %.2f below initiator %.2f", dist.FracUnder100, init.FracUnder100)
	}
}

func TestServerPolicyString(t *testing.T) {
	for p, want := range map[ServerPolicy]string{
		PolicyInitiator: "initiator-nearest", PolicyCentral: "central-US",
		PolicyGeoDistributed: "geo-distributed", ServerPolicy(9): "ServerPolicy(9)",
	} {
		if p.String() != want {
			t.Errorf("%d -> %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestViewportDeliveryAblation(t *testing.T) {
	opts := Quick(2)
	opts.SessionDuration = 40 * simtime.Second
	row, err := ViewportDeliveryAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if row.OutOfViewFrac <= 0.05 || row.OutOfViewFrac >= 0.8 {
		t.Fatalf("out-of-view fraction %.2f implausible", row.OutOfViewFrac)
	}
	if row.GatedMbps >= row.BaselineMbps {
		t.Errorf("gating saved nothing: %.2f vs %.2f", row.GatedMbps, row.BaselineMbps)
	}
	// Savings should track the out-of-view fraction, minus reaction lag
	// and heartbeats.
	if row.SavingsFrac < row.OutOfViewFrac*0.5 {
		t.Errorf("savings %.2f too small for %.2f out-of-view time",
			row.SavingsFrac, row.OutOfViewFrac)
	}
	if row.SavingsFrac > row.OutOfViewFrac {
		t.Errorf("savings %.2f exceed out-of-view time %.2f", row.SavingsFrac, row.OutOfViewFrac)
	}
}

func TestPassiveQoESweep(t *testing.T) {
	opts := Quick(3)
	opts.SessionDuration = 6 * simtime.Second
	rows, err := PassiveQoESweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.InferredFPS <= 0 {
			t.Errorf("%v: no FPS inferred", r.App)
			continue
		}
		err := math.Abs(r.InferredFPS-r.TrueFPS) / r.TrueFPS
		if err > 0.25 {
			t.Errorf("%v: inferred %.1f FPS vs true %.0f (err %.0f%%)",
				r.App, r.InferredFPS, r.TrueFPS, err*100)
		}
		if r.MeanFrameBytes <= 0 {
			t.Errorf("%v: no frame size inferred", r.App)
		}
	}
	// The passive fingerprint separates spatial (90 FPS) from video (30).
	if rows[0].InferredFPS < rows[1].InferredFPS*2 {
		t.Errorf("FaceTime spatial (%.0f FPS) vs Zoom (%.0f): 90-vs-30 fingerprint lost",
			rows[0].InferredFPS, rows[1].InferredFPS)
	}
}
