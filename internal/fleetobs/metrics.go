package fleetobs

import (
	"io"
	"strconv"
	"strings"
)

// metricDef is one exposed metric: name, type, help, and the per-run
// value extractor.
type metricDef struct {
	name  string
	typ   string // "counter" or "gauge"
	help  string
	value func(Snapshot) float64
}

// metricDefs is the exposition order; every metric carries a run="<id>"
// label. Counter semantics match the written manifest so scraped totals
// can be reconciled against it.
var metricDefs = []metricDef{
	{"fleet_rows_total", "counter", "Rows emitted through ordered emission.",
		func(s Snapshot) float64 { return float64(s.Rows) }},
	{"fleet_failures_total", "counter", "Units that failed terminally (after retries).",
		func(s Snapshot) float64 { return float64(s.FailuresTotal) }},
	{"fleet_retries_total", "counter", "Failed attempts that were retried.",
		func(s Snapshot) float64 { return float64(s.Retries) }},
	{"fleet_journal_hits_total", "counter", "Units served from the checkpoint journal.",
		func(s Snapshot) float64 { return float64(s.JournalHits) }},
	{"fleet_panics_total", "counter", "Attempts that panicked (recovered, stack captured).",
		func(s Snapshot) float64 { return float64(s.Panics) }},
	{"fleet_timeouts_total", "counter", "Attempts abandoned by the per-cell watchdog.",
		func(s Snapshot) float64 { return float64(s.Timeouts) }},
	{"fleet_units_total", "gauge", "Unit universe of the run.",
		func(s Snapshot) float64 { return float64(s.Units) }},
	{"fleet_units_completed", "gauge", "Units at a terminal state (done, failed, skipped, or journal hit).",
		func(s Snapshot) float64 { return float64(s.Done + s.Failed + s.Skipped + s.JournalHits) }},
	{"fleet_window_occupancy", "gauge", "Dispatch-window occupancy: units in flight plus buffered for reorder.",
		func(s Snapshot) float64 { return float64(s.InFlight + s.Buffered) }},
	{"fleet_rows_per_sec", "gauge", "Rows/sec EWMA over ordered emission.",
		func(s Snapshot) float64 { return s.RowsPerSec }},
}

// writeMetrics renders the runs' snapshots in Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE preamble per metric, one sample
// per run with a run="<id>" label. Hand-rolled on strconv — no client
// library, no fmt float formatting.
func writeMetrics(w io.Writer, snaps []Snapshot) error {
	var b strings.Builder
	for _, def := range metricDefs {
		b.WriteString("# HELP ")
		b.WriteString(def.name)
		b.WriteByte(' ')
		b.WriteString(def.help)
		b.WriteString("\n# TYPE ")
		b.WriteString(def.name)
		b.WriteByte(' ')
		b.WriteString(def.typ)
		b.WriteByte('\n')
		for _, s := range snaps {
			b.WriteString(def.name)
			b.WriteString(`{run="`)
			b.WriteString(escapeLabel(s.ID))
			b.WriteString(`"} `)
			b.WriteString(formatSample(def.value(s)))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatSample renders a sample value: integers without a fraction,
// everything else in shortest round-trip form.
func formatSample(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
