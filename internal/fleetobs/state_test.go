package fleetobs

import (
	"errors"
	"strings"
	"testing"
	"time"

	"telepresence/internal/fleet"
)

// fakeClock drives a RunState's injectable clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time                 { return c.t }
func (c *fakeClock) advance(d time.Duration)        { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                      { return &fakeClock{t: time.Unix(1700000000, 0)} }
func withClock(s *RunState, c *fakeClock) *RunState { s.now = c.now; return s }

// TestEWMARate: a steady event stream converges near its true rate.
func TestEWMARate(t *testing.T) {
	c := newFakeClock()
	e := ewma{tau: 10 * time.Second, primed: true, last: c.t}
	// 10 rows per 100ms = 100 rows/sec for 30 seconds.
	for i := 0; i < 300; i++ {
		c.advance(100 * time.Millisecond)
		e.add(10, c.t)
	}
	if got := e.value(c.t); got < 90 || got > 110 {
		t.Errorf("steady 100/s stream: ewma = %v", got)
	}
	// A burst inside the minimum interval must accumulate, not spike.
	e2 := ewma{tau: 10 * time.Second, primed: true, last: c.t}
	for i := 0; i < 100; i++ {
		e2.add(1, c.t) // zero elapsed time
	}
	c.advance(time.Second)
	e2.add(0, c.t)
	if got := e2.value(c.t); got > 200 {
		t.Errorf("burst ewma = %v, want near 100 (accumulated over 1s)", got)
	}
}

// TestRunStateLifecycle drives a synthetic event sequence and checks the
// snapshot at each stage.
func TestRunStateLifecycle(t *testing.T) {
	c := newFakeClock()
	s := withClock(NewRunState("sweep-x", "sweep"), c)
	if got := s.Snapshot(false); got.State != RunPending || got.ID != "sweep-x" {
		t.Fatalf("initial snapshot = %+v", got)
	}

	s.Event(fleet.MonitorEvent{Kind: fleet.EventRunStarted, Unit: -1, Units: 3})
	s.Event(fleet.MonitorEvent{Kind: fleet.EventUnitDispatched, Unit: 0, Key: "sweep/x/a=1"})
	s.Event(fleet.MonitorEvent{Kind: fleet.EventAttemptStarted, Unit: 0, Key: "sweep/x/a=1", Attempt: 1})
	snap := s.Snapshot(true)
	if snap.State != RunRunning || snap.Units != 3 || snap.Dispatched != 1 {
		t.Errorf("running snapshot = %+v", snap)
	}
	if len(snap.UnitViews) != 3 || snap.UnitViews[0].Status != StatusRunning ||
		snap.UnitViews[1].Status != StatusPending {
		t.Errorf("unit views = %+v", snap.UnitViews)
	}

	// Unit 0 fails an attempt, retries, then panics terminally.
	s.Event(fleet.MonitorEvent{Kind: fleet.EventUnitRetried, Unit: 0, Key: "sweep/x/a=1",
		Attempt: 1, Err: errors.New("boom"), Backoff: time.Millisecond})
	if got := s.Snapshot(true); got.Retries != 1 || got.UnitViews[0].Status != StatusRetrying {
		t.Errorf("after retry: %+v", got.UnitViews[0])
	}
	s.Event(fleet.MonitorEvent{Kind: fleet.EventUnitPanicked, Unit: 0, Key: "sweep/x/a=1",
		Attempt: 2, Err: errors.New("panic: boom"), Stack: "goroutine 1 [running]"})
	s.Event(fleet.MonitorEvent{Kind: fleet.EventUnitDone, Unit: 0, Key: "sweep/x/a=1",
		Attempt: 2, Err: errors.New("fleet: sweep/x/a=1 failed after 2 attempt(s): panic: boom"),
		Stack: "goroutine 1 [running]"})
	snap = s.Snapshot(true)
	if snap.Failed != 1 || snap.Panics != 1 || snap.FailuresTotal != 1 {
		t.Errorf("after terminal failure: %+v", snap)
	}
	if len(snap.Failures) != 1 || snap.Failures[0].Stack == "" || snap.Failures[0].Attempts != 2 {
		t.Errorf("failure ring = %+v", snap.Failures)
	}

	// Unit 1 succeeds; unit 2 resumes from the journal; both emit.
	s.Event(fleet.MonitorEvent{Kind: fleet.EventUnitDispatched, Unit: 1, Key: "sweep/x/a=2"})
	s.Event(fleet.MonitorEvent{Kind: fleet.EventUnitDone, Unit: 1, Key: "sweep/x/a=2",
		Attempt: 1, Rows: 2, Wall: 5 * time.Millisecond})
	s.Event(fleet.MonitorEvent{Kind: fleet.EventJournalHit, Unit: 2, Key: "sweep/x/a=3",
		Attempt: 1, Rows: 2})
	c.advance(time.Second)
	s.Event(fleet.MonitorEvent{Kind: fleet.EventRowsEmitted, Unit: 1, Key: "sweep/x/a=2", Rows: 2})
	s.Event(fleet.MonitorEvent{Kind: fleet.EventRowsEmitted, Unit: 2, Key: "sweep/x/a=3", Rows: 2})
	s.Event(fleet.MonitorEvent{Kind: fleet.EventRunDone, Unit: -1})
	snap = s.Snapshot(true)
	if snap.State != RunFailed { // one unit failed terminally
		t.Errorf("final state = %q, want failed", snap.State)
	}
	if snap.Rows != 4 || snap.Done != 1 || snap.JournalHits != 1 {
		t.Errorf("final counters = %+v", snap)
	}
	if snap.UnitViews[2].Status != StatusResumed || snap.UnitViews[2].Rows != 2 {
		t.Errorf("resumed unit view = %+v", snap.UnitViews[2])
	}
	if snap.UnitViews[1].WallMs != 5 {
		t.Errorf("unit 1 wall = %v ms, want 5", snap.UnitViews[1].WallMs)
	}
}

// TestRunStateInterruptAndFinish: the drain path reports interrupted
// immediately (live, before the CLI finalizes) and Finish attaches the
// resume hint and closes the row log.
func TestRunStateInterruptAndFinish(t *testing.T) {
	s := NewRunState("sweep-y", "sweep")
	s.Event(fleet.MonitorEvent{Kind: fleet.EventRunStarted, Unit: -1, Units: 2})
	s.Event(fleet.MonitorEvent{Kind: fleet.EventInterrupted, Unit: -1})
	if got := s.Snapshot(false); got.State != RunInterrupted || !got.Interrupted {
		t.Fatalf("live interrupt snapshot = %+v", got)
	}
	s.Event(fleet.MonitorEvent{Kind: fleet.EventUnitDone, Unit: 1, Key: "sweep/y/a=2",
		Err: fleet.ErrInterrupted})
	s.Event(fleet.MonitorEvent{Kind: fleet.EventRunDone, Unit: -1, Err: fleet.ErrInterrupted})
	s.Finish(fleet.ErrInterrupted, "re-run with -checkpoint dir -resume")
	snap := s.Snapshot(true)
	if snap.State != RunInterrupted || snap.ResumeHint == "" {
		t.Errorf("finished snapshot = %+v", snap)
	}
	if snap.Skipped != 1 || snap.FailuresTotal != 0 {
		t.Errorf("skipped unit misccounted: %+v", snap)
	}
	if snap.UnitViews[1].Status != StatusSkipped {
		t.Errorf("unit view = %+v", snap.UnitViews[1])
	}
	// Finish closed the log: a reader drains and sees closed.
	if _, _, closed, _ := s.RowLog().read(0); !closed {
		t.Error("row log not closed by Finish")
	}
}

// TestFailureRingBounded: the ring keeps the newest failureRingCap
// entries while FailuresTotal counts all of them.
func TestFailureRingBounded(t *testing.T) {
	s := NewRunState("r", "run")
	n := failureRingCap + 10
	s.Event(fleet.MonitorEvent{Kind: fleet.EventRunStarted, Unit: -1, Units: n})
	for i := 0; i < n; i++ {
		s.Event(fleet.MonitorEvent{Kind: fleet.EventUnitDone, Unit: i,
			Key: "run/x/rep" + string(rune('A'+i%26)), Attempt: 1, Err: errors.New("fail")})
	}
	snap := s.Snapshot(false)
	if snap.FailuresTotal != n {
		t.Errorf("FailuresTotal = %d, want %d", snap.FailuresTotal, n)
	}
	if len(snap.Failures) != failureRingCap {
		t.Errorf("ring holds %d, want %d", len(snap.Failures), failureRingCap)
	}
}

// TestRowLog: line assembly across partial writes, ring eviction with
// stable sequence numbers, and close flushing the final fragment.
func TestRowLog(t *testing.T) {
	l := NewRowLog(3)
	l.Write([]byte("{\"a\":1}\n{\"a\":"))
	l.Write([]byte("2}\n"))
	lines, next, closed, _ := l.read(0)
	if len(lines) != 2 || string(lines[0]) != `{"a":1}` || string(lines[1]) != `{"a":2}` || next != 2 || closed {
		t.Fatalf("read = %q next=%d closed=%v", lines, next, closed)
	}
	l.Write([]byte("{\"a\":3}\n{\"a\":4}\n")) // overflows cap 3: line 0 evicted
	lines, next, _, _ = l.read(0)
	if len(lines) != 3 || string(lines[0]) != `{"a":2}` || next != 4 {
		t.Fatalf("after eviction: %q next=%d", lines, next)
	}
	// Reading from a sequence mid-ring returns the suffix.
	lines, _, _, _ = l.read(3)
	if len(lines) != 1 || string(lines[0]) != `{"a":4}` {
		t.Fatalf("suffix read = %q", lines)
	}
	// A change channel wakes on append.
	_, _, _, changed := l.read(4)
	go l.Write([]byte("{\"a\":5}\n"))
	select {
	case <-changed:
	case <-time.After(2 * time.Second):
		t.Fatal("change channel never woke")
	}
	// Close flushes an unterminated fragment and marks the log closed.
	l.Write([]byte("tail-without-newline"))
	l.Close()
	lines, _, closed, _ = l.read(0)
	if !closed || !strings.Contains(string(lines[len(lines)-1]), "tail-without-newline") {
		t.Fatalf("close: closed=%v last=%q", closed, lines[len(lines)-1])
	}
	l.Write([]byte("ignored\n")) // writes after close are dropped
	if got, _, _, _ := l.read(0); strings.Contains(string(got[len(got)-1]), "ignored") {
		t.Error("write after close not dropped")
	}
}

// TestRegistryOrder: snapshots come back in registration order, and
// re-registering an id replaces in place.
func TestRegistryOrder(t *testing.T) {
	g := NewRegistry()
	g.NewRun("b", "run")
	g.NewRun("a", "sweep")
	g.NewRun("b", "run") // replace
	snaps := g.Snapshots()
	if len(snaps) != 2 || snaps[0].ID != "b" || snaps[1].ID != "a" {
		t.Fatalf("snapshot order = %+v", snaps)
	}
	if g.Get("nope") != nil {
		t.Error("Get of unknown id != nil")
	}
}
