// Package fleetobs is the live observability layer over internal/fleet's
// Monitor event bus: a lock-protected RunState aggregator (per-unit
// status, failure ring, rows/sec EWMA), an HTTP server exposing
// manifest-shaped run JSON, NDJSON row tailing, Prometheus metrics and
// pprof, and a single-line terminal progress renderer. Everything here
// observes and never steers — detaching the whole package changes no
// emitted row byte (pinned by the fleet's monitor tests).
//
// Unlike the simulation packages, fleetobs deliberately reads the wall
// clock (EWMA rates, uptime) and uses encoding/json for API responses;
// internal/lint's DefaultConfig records both exemptions.
package fleetobs

import (
	"errors"
	"math"
	"sync"
	"time"

	"telepresence/internal/fleet"
)

// Unit status values reported by RunState snapshots.
const (
	StatusPending  = "pending"  // not yet dispatched
	StatusRunning  = "running"  // an attempt is executing
	StatusRetrying = "retrying" // failed an attempt, backoff before the next
	StatusResumed  = "resumed"  // served from the checkpoint journal
	StatusDone     = "done"     // terminal success
	StatusFailed   = "failed"   // terminal failure (after retries)
	StatusSkipped  = "skipped"  // never started: interrupted, resumable
)

// Run-level state values.
const (
	RunPending     = "pending"
	RunRunning     = "running"
	RunInterrupted = "interrupted"
	RunDone        = "done"
	RunFailed      = "failed"
)

// failureRingCap bounds the failure ring buffer; FailuresTotal keeps the
// true count when the ring wraps.
const failureRingCap = 32

// ewma is an irregular-interval exponentially-weighted rate estimator
// (events per second). Samples accumulate until enough wall time has
// passed to form a stable instantaneous rate, then blend with weight
// 1-exp(-dt/tau). Not safe for concurrent use; RunState's lock guards it.
type ewma struct {
	tau     time.Duration
	last    time.Time
	pending float64
	rate    float64
	primed  bool
}

// minEwmaInterval is the shortest interval folded into the rate; bursts
// inside it accumulate so a pile of sub-millisecond events cannot spike
// the estimate.
const minEwmaInterval = 50 * time.Millisecond

func (e *ewma) add(n float64, now time.Time) {
	if !e.primed {
		e.primed = true
		e.last = now
	}
	e.pending += n
	e.fold(now)
}

// fold blends accumulated samples into the rate once the interval is long
// enough to be meaningful.
func (e *ewma) fold(now time.Time) {
	dt := now.Sub(e.last)
	if dt < minEwmaInterval {
		return
	}
	inst := e.pending / dt.Seconds()
	w := 1 - math.Exp(-float64(dt)/float64(e.tau))
	if e.rate == 0 {
		e.rate = inst
	} else {
		e.rate = w*inst + (1-w)*e.rate
	}
	e.pending = 0
	e.last = now
}

func (e *ewma) value(now time.Time) float64 {
	e.fold(now)
	return e.rate
}

// unitRec is one unit's live record.
type unitRec struct {
	key      string
	status   string
	attempts int
	rows     int
	wall     time.Duration
	errText  string
}

// UnitView is the JSON shape of one unit in a detailed run snapshot.
type UnitView struct {
	Index    int     `json:"index"`
	Key      string  `json:"key"`
	Status   string  `json:"status"`
	Attempts int     `json:"attempts,omitempty"`
	Rows     int     `json:"rows,omitempty"`
	WallMs   float64 `json:"wall_ms,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// Failure mirrors fleet.UnitFailure for the live failure ring.
type Failure struct {
	Unit     string `json:"unit"`
	Error    string `json:"error"`
	Stack    string `json:"stack,omitempty"`
	Attempts int    `json:"attempts"`
}

// Snapshot is the manifest-shaped live view of a run, served by
// /api/runs and /api/runs/{id}. Counter semantics match the written
// manifest: Rows counts rows past ordered emission, JournalHits equals
// the manifest's resumed count, Failures lists terminal unit failures.
type Snapshot struct {
	ID        string  `json:"id"`
	Kind      string  `json:"kind"` // "run" or "sweep"
	State     string  `json:"state"`
	StartedAt string  `json:"started_at"`
	UptimeSec float64 `json:"uptime_sec"`

	Units       int `json:"units"`
	Dispatched  int `json:"dispatched"`
	Done        int `json:"done"`
	Failed      int `json:"failed"`
	Skipped     int `json:"skipped"`
	JournalHits int `json:"journal_hits"`

	Rows     int64 `json:"rows"`
	Retries  int64 `json:"retries"`
	Panics   int64 `json:"panics"`
	Timeouts int64 `json:"timeouts"`

	InFlight   int     `json:"in_flight"`
	Buffered   int     `json:"buffered"`
	RowsPerSec float64 `json:"rows_per_sec"`
	EtaSec     float64 `json:"eta_sec,omitempty"`

	Interrupted   bool      `json:"interrupted,omitempty"`
	ResumeHint    string    `json:"resume_hint,omitempty"`
	Error         string    `json:"error,omitempty"`
	FailuresTotal int       `json:"failures_total"`
	Failures      []Failure `json:"failures,omitempty"`

	// UnitViews is the per-unit detail, present only on /api/runs/{id}.
	UnitViews []UnitView `json:"unit_views,omitempty"`
}

// RunState aggregates one run's Monitor events into a live, queryable
// view. It implements fleet.Monitor; all methods are safe for concurrent
// use (the engine publishes from the dispatcher, every worker, and the
// collector).
type RunState struct {
	id   string
	kind string
	now  func() time.Time // injectable for tests
	log  *RowLog

	mu          sync.Mutex
	started     time.Time
	state       string
	units       []unitRec
	total       int
	dispatched  int
	done        int
	failed      int
	skipped     int
	journalHits int
	rows        int64
	retries     int64
	panics      int64
	timeouts    int64
	inFlight    int
	buffered    int
	interrupted bool
	resumeHint  string
	finalErr    string
	failures    []Failure // ring, newest last, capped at failureRingCap
	failTotal   int
	rowsRate    ewma
	unitsRate   ewma
}

// NewRunState returns a pending RunState identified as id ("run",
// "sweep-handover", ...) of the given kind ("run" or "sweep"), with an
// attached RowLog for NDJSON tailing.
func NewRunState(id, kind string) *RunState {
	return &RunState{
		id:        id,
		kind:      kind,
		now:       time.Now,
		log:       NewRowLog(defaultRowLogCap),
		state:     RunPending,
		rowsRate:  ewma{tau: 10 * time.Second},
		unitsRate: ewma{tau: 10 * time.Second},
	}
}

// ID returns the run's registry identity.
func (s *RunState) ID() string { return s.id }

// RowLog returns the run's row tail buffer; tee the sink's writer into it
// to make /api/runs/{id}/rows serve the exact emitted bytes.
func (s *RunState) RowLog() *RowLog { return s.log }

// Event implements fleet.Monitor.
func (s *RunState) Event(ev fleet.MonitorEvent) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Kind {
	case fleet.EventRunStarted:
		s.started = now
		s.state = RunRunning
		s.total = ev.Units
		s.units = make([]unitRec, ev.Units)
		for i := range s.units {
			s.units[i].status = StatusPending
		}
	case fleet.EventUnitDispatched:
		s.dispatched++
		if u := s.unit(ev.Unit); u != nil {
			u.key = ev.Key
			u.status = StatusRunning
		}
	case fleet.EventAttemptStarted:
		if u := s.unit(ev.Unit); u != nil {
			u.key = ev.Key
			u.status = StatusRunning
			u.attempts = ev.Attempt
		}
	case fleet.EventUnitRetried:
		s.retries++
		if u := s.unit(ev.Unit); u != nil {
			u.status = StatusRetrying
			u.errText = ev.Err.Error()
		}
	case fleet.EventUnitPanicked:
		s.panics++
	case fleet.EventUnitTimedOut:
		s.timeouts++
	case fleet.EventJournalHit:
		s.dispatched++
		s.journalHits++
		if u := s.unit(ev.Unit); u != nil {
			u.key = ev.Key
			u.status = StatusResumed
			u.attempts = ev.Attempt
			u.rows = ev.Rows
		}
	case fleet.EventUnitDone:
		u := s.unit(ev.Unit)
		if u != nil {
			u.key = ev.Key
			u.attempts = ev.Attempt
			u.rows = ev.Rows
			u.wall = ev.Wall
		}
		switch {
		case ev.Err == nil:
			s.done++
			if u != nil {
				u.status = StatusDone
				u.errText = ""
			}
		case errors.Is(ev.Err, fleet.ErrInterrupted):
			s.skipped++
			if u != nil {
				u.status = StatusSkipped
				u.errText = ev.Err.Error()
			}
		default:
			s.failed++
			if u != nil {
				u.status = StatusFailed
				u.errText = ev.Err.Error()
			}
			s.failTotal++
			s.failures = append(s.failures, Failure{
				Unit: ev.Key, Error: ev.Err.Error(), Stack: ev.Stack, Attempts: ev.Attempt,
			})
			if len(s.failures) > failureRingCap {
				s.failures = s.failures[1:]
			}
		}
	case fleet.EventRowsEmitted:
		s.rows += int64(ev.Rows)
		s.rowsRate.add(float64(ev.Rows), now)
		s.unitsRate.add(1, now)
	case fleet.EventWindow:
		s.inFlight = ev.InFlight
		s.buffered = ev.Buffered
	case fleet.EventInterrupted:
		s.interrupted = true
		s.state = RunInterrupted
	case fleet.EventRunDone:
		s.inFlight = 0
		s.buffered = 0
		if ev.Err != nil && s.finalErr == "" {
			s.finalErr = ev.Err.Error()
		}
		if !s.interrupted {
			if s.failed > 0 || ev.Err != nil {
				s.state = RunFailed
			} else {
				s.state = RunDone
			}
		}
	}
}

// unit returns the record for a valid unit index, nil for run-level
// events (Unit == -1) or indices outside the announced universe.
func (s *RunState) unit(i int) *unitRec {
	if i < 0 || i >= len(s.units) {
		return nil
	}
	return &s.units[i]
}

// Finish finalizes the run from the CLI's perspective: the fleet call
// returned err, and resumeHint (when non-empty) tells an interrupted
// run's users how to pick the work back up. Closes the row log so
// tail-followers terminate.
func (s *RunState) Finish(err error, resumeHint string) {
	s.mu.Lock()
	switch {
	case err == nil:
		if s.state != RunInterrupted {
			s.state = RunDone
		}
	case errors.Is(err, fleet.ErrInterrupted):
		s.interrupted = true
		s.state = RunInterrupted
		s.finalErr = err.Error()
	default:
		s.state = RunFailed
		s.finalErr = err.Error()
	}
	if s.interrupted {
		s.resumeHint = resumeHint
	}
	s.mu.Unlock()
	s.log.Close()
}

// Snapshot returns the manifest-shaped live view; detail adds the
// per-unit list.
func (s *RunState) Snapshot(detail bool) Snapshot {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		ID: s.id, Kind: s.kind, State: s.state,
		Units: s.total, Dispatched: s.dispatched,
		Done: s.done, Failed: s.failed, Skipped: s.skipped,
		JournalHits: s.journalHits,
		Rows:        s.rows, Retries: s.retries,
		Panics: s.panics, Timeouts: s.timeouts,
		InFlight: s.inFlight, Buffered: s.buffered,
		RowsPerSec:    s.rowsRate.value(now),
		Interrupted:   s.interrupted,
		ResumeHint:    s.resumeHint,
		Error:         s.finalErr,
		FailuresTotal: s.failTotal,
	}
	if !s.started.IsZero() {
		snap.StartedAt = s.started.UTC().Format(time.RFC3339)
		snap.UptimeSec = now.Sub(s.started).Seconds()
	}
	completed := s.done + s.failed + s.skipped + s.journalHits
	if s.state == RunRunning {
		if rate := s.unitsRate.value(now); rate > 0 && completed < s.total {
			snap.EtaSec = float64(s.total-completed) / rate
		}
	}
	snap.Failures = append(snap.Failures, s.failures...)
	if detail {
		snap.UnitViews = make([]UnitView, len(s.units))
		for i := range s.units {
			u := &s.units[i]
			snap.UnitViews[i] = UnitView{
				Index: i, Key: u.key, Status: u.status,
				Attempts: u.attempts, Rows: u.rows,
				WallMs: float64(u.wall) / float64(time.Millisecond),
				Error:  u.errText,
			}
		}
	}
	return snap
}

// Progress returns the compact counters the terminal renderer needs:
// completed units (done+failed+skipped+journal hits), the unit universe,
// and the current rates.
func (s *RunState) progressLine(now time.Time) (completed, total int, rows, retries, failed int64, rowsPerSec, etaSec float64, state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	completed = s.done + s.failed + s.skipped + s.journalHits
	total = s.total
	rows = s.rows
	retries = s.retries
	failed = int64(s.failed)
	rowsPerSec = s.rowsRate.value(now)
	if s.state == RunRunning {
		if rate := s.unitsRate.value(now); rate > 0 && completed < total {
			etaSec = float64(total-completed) / rate
		}
	}
	state = s.state
	return
}
