package fleetobs

import (
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Progress renders a single-line live view of one run to a terminal
// writer, redrawn in place with carriage returns:
//
//	sweep-handover 7/12 units · 7 rows · 2 retries · 1 failed · 3.1 rows/s · ETA 0:05
//
// It reads the same RunState the HTTP server serves, so the terminal and
// API views can never disagree.
type Progress struct {
	state    *RunState
	w        io.Writer
	interval time.Duration

	once  sync.Once
	stop  chan struct{}
	done  chan struct{}
	width int // widest line drawn, for trailing-space erasure
}

// NewProgress returns a renderer for st writing to w (normally stderr).
func NewProgress(st *RunState, w io.Writer) *Progress {
	return &Progress{
		state: st, w: w, interval: 250 * time.Millisecond,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
}

// Start begins redrawing in a background goroutine.
func (p *Progress) Start() {
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.draw()
			case <-p.stop:
				return
			}
		}
	}()
}

// Stop halts redrawing, draws the final state once, and terminates the
// line with a newline so subsequent output starts clean.
func (p *Progress) Stop() {
	p.once.Do(func() { close(p.stop) })
	<-p.done
	p.draw()
	io.WriteString(p.w, "\n")
}

// draw renders one frame.
func (p *Progress) draw() {
	completed, total, rows, retries, failed, rate, eta, state := p.state.progressLine(time.Now())
	var b strings.Builder
	b.WriteByte('\r')
	b.WriteString(p.state.ID())
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(completed))
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(total))
	b.WriteString(" units · ")
	b.WriteString(strconv.FormatInt(rows, 10))
	b.WriteString(" rows")
	if retries > 0 {
		b.WriteString(" · ")
		b.WriteString(strconv.FormatInt(retries, 10))
		b.WriteString(" retries")
	}
	if failed > 0 {
		b.WriteString(" · ")
		b.WriteString(strconv.FormatInt(failed, 10))
		b.WriteString(" failed")
	}
	if rate > 0 {
		b.WriteString(" · ")
		b.WriteString(strconv.FormatFloat(rate, 'f', 1, 64))
		b.WriteString(" rows/s")
	}
	if eta > 0 {
		b.WriteString(" · ETA ")
		b.WriteString(formatETA(eta))
	}
	if state != RunRunning && state != RunPending {
		b.WriteString(" · ")
		b.WriteString(state)
	}
	line := b.String()
	if pad := p.width - (len(line) - 1); pad > 0 {
		line += strings.Repeat(" ", pad)
	} else {
		p.width = len(line) - 1
	}
	io.WriteString(p.w, line)
}

// formatETA renders seconds as m:ss (or h:mm:ss beyond an hour).
func formatETA(sec float64) string {
	s := int64(sec + 0.5)
	if s < 0 {
		s = 0
	}
	h, m := s/3600, (s%3600)/60
	ss := s % 60
	var b strings.Builder
	if h > 0 {
		b.WriteString(strconv.FormatInt(h, 10))
		b.WriteByte(':')
		if m < 10 {
			b.WriteByte('0')
		}
	}
	b.WriteString(strconv.FormatInt(m, 10))
	b.WriteByte(':')
	if ss < 10 {
		b.WriteByte('0')
	}
	b.WriteString(strconv.FormatInt(ss, 10))
	return b.String()
}
