package fleetobs

import "sync"

// defaultRowLogCap bounds the tail buffer: the newest lines kept for
// /api/runs/{id}/rows. Old lines fall off the front (the sequence numbers
// make the gap visible to readers), so live tailing stays O(cap) in
// memory no matter how many rows a run emits.
const defaultRowLogCap = 4096

// RowLog is a bounded, append-only line buffer fed by teeing the sink's
// writer (io.MultiWriter), so it holds the exact bytes the sink emitted —
// live writes and journal replays alike — with no re-encoding. Readers
// tail it by sequence number and block on a change channel.
type RowLog struct {
	mu       sync.Mutex
	lines    [][]byte // ring, newest last; lines[0] has sequence firstSeq
	firstSeq int64
	partial  []byte // bytes after the last newline, not yet a line
	cap      int
	closed   bool
	changed  chan struct{} // closed and replaced on every append/Close
}

// NewRowLog returns an empty log keeping at most capLines lines.
func NewRowLog(capLines int) *RowLog {
	if capLines <= 0 {
		capLines = defaultRowLogCap
	}
	return &RowLog{cap: capLines, changed: make(chan struct{})}
}

// Write implements io.Writer: p is split on newlines into complete lines
// (a trailing fragment is buffered until its newline arrives). Always
// reports full success so a tee never fails the sink — the log observes,
// it cannot steer.
func (l *RowLog) Write(p []byte) (int, error) {
	n := len(p)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return n, nil
	}
	appended := false
	for len(p) > 0 {
		nl := -1
		for i, b := range p {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			l.partial = append(l.partial, p...)
			break
		}
		line := append(l.partial, p[:nl]...)
		l.partial = nil
		p = p[nl+1:]
		l.lines = append(l.lines, line)
		if len(l.lines) > l.cap {
			drop := len(l.lines) - l.cap
			l.lines = l.lines[drop:]
			l.firstSeq += int64(drop)
		}
		appended = true
	}
	if appended {
		close(l.changed)
		l.changed = make(chan struct{})
	}
	return n, nil
}

// Close marks the stream complete (flushing any unterminated final
// fragment as a line) and wakes all waiting readers; tail-followers
// terminate once they've drained. Further writes are discarded.
func (l *RowLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if len(l.partial) > 0 {
		l.lines = append(l.lines, l.partial)
		l.partial = nil
		if len(l.lines) > l.cap {
			drop := len(l.lines) - l.cap
			l.lines = l.lines[drop:]
			l.firstSeq += int64(drop)
		}
	}
	l.closed = true
	close(l.changed)
	l.changed = make(chan struct{})
}

// read returns the lines at sequence >= from (clamped to what the ring
// still holds), the sequence just past them, whether the log is closed,
// and a channel that closes on the next append or Close. The returned
// line slices are the log's own backing arrays; callers must not mutate
// them.
func (l *RowLog) read(from int64) (lines [][]byte, next int64, closed bool, changed <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.firstSeq {
		from = l.firstSeq
	}
	end := l.firstSeq + int64(len(l.lines))
	if from < end {
		lines = l.lines[from-l.firstSeq:]
	}
	return lines, end, l.closed, l.changed
}
