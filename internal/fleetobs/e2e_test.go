package fleetobs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"telepresence/internal/core"
	"telepresence/internal/fleet"
)

// init registers this package's own synthetic sweep target (the fleet
// package's "synth-sweep" lives in its test binary, not ours). Cells emit
// two rows echoing their parameters; a < 0 fails every attempt.
func init() {
	core.RegisterSweep(core.SweepTarget{
		Name: "obs-sweep", Desc: "fleetobs test target",
		Row: map[string]float64{},
		Params: []core.SweepParam{
			{Name: "a", Default: 1},
			{Name: "b", Default: 10},
		},
		Run: func(opts core.Options, params map[string]float64) ([]core.Row, error) {
			cell := core.SweepCellOptions(opts, "obs-sweep", params)
			if params["a"] < 0 {
				return nil, fmt.Errorf("synthetic failure a=%v", params["a"])
			}
			mk := func(k int) core.Row {
				return map[string]float64{
					"a": params["a"], "b": params["b"], "k": float64(k),
					"seed": float64(cell.Seed % 1e6),
				}
			}
			return []core.Row{mk(0), mk(1)}, nil
		},
	})
}

// obsSpec is the shared 8-cell grid: two cells (a=-1) fail terminally.
func obsSpec() fleet.SweepSpec {
	return fleet.SweepSpec{Target: "obs-sweep", Axes: []fleet.Axis{
		{Name: "a", Values: []float64{-1, 1, 2, 3}},
		{Name: "b", Values: []float64{10, 20}},
	}}
}

// metricValue extracts `name{run="id"} v` from exposition text.
func metricValue(t *testing.T, text, name, id string) float64 {
	t.Helper()
	prefix := name + `{run="` + id + `"} `
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, prefix), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value in %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s{run=%q} absent from:\n%s", name, id, text)
	return 0
}

// TestLiveServerMatchesManifest is the end-to-end acceptance pin: a chaos
// sweep runs under the live HTTP server, and the server's final
// /api/runs/{id} state (rows, failures, retries, journal hits) must equal
// the written manifest field-for-field, with /metrics counters matching
// the same totals.
func TestLiveServerMatchesManifest(t *testing.T) {
	spec := obsSpec()
	opts := core.Quick(11)
	reg := NewRegistry()
	st := reg.NewRun("sweep-obs", "sweep")
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	var buf bytes.Buffer
	sink := fleet.NewJSONLSink(io.MultiWriter(&buf, st.RowLog()))
	cfg := fleet.Config{
		Workers: 4,
		Monitor: st,
		Retry:   fleet.RetryPolicy{MaxAttempts: 3},
		// Chaos: half the first attempts fail, later attempts run clean, so
		// retries fire and converge deterministically.
		Chaos: &fleet.FaultPlan{Seed: 11, ErrorProb: 0.5, FailAttempts: 1},
	}
	start := time.Now()
	results, runErr := fleet.RunSweepStream(spec, opts, cfg, sink)
	wall := time.Since(start)
	if runErr == nil {
		t.Fatal("sweep with two always-failing cells returned nil error")
	}
	st.Finish(runErr, "")
	m := fleet.NewSweepManifest(spec, opts, cfg.Workers, wall, results)
	if len(m.Failures) != 2 {
		t.Fatalf("manifest failures = %d, want 2 (the a=-1 cells)", len(m.Failures))
	}

	var snap Snapshot
	getJSON(t, srv.URL+"/api/runs/sweep-obs", &snap)

	// Field-for-field against the manifest.
	if snap.State != RunFailed {
		t.Errorf("state = %q, want failed", snap.State)
	}
	if int(snap.Rows) != m.Rows {
		t.Errorf("rows: api %d, manifest %d", snap.Rows, m.Rows)
	}
	if snap.FailuresTotal != len(m.Failures) {
		t.Errorf("failures: api %d, manifest %d", snap.FailuresTotal, len(m.Failures))
	}
	if snap.JournalHits != m.Resumed {
		t.Errorf("journal hits: api %d, manifest resumed %d", snap.JournalHits, m.Resumed)
	}
	// Retries: every live cell's manifest attempt count beyond 1 came from
	// an EventUnitRetried.
	wantRetries := 0
	for _, c := range m.CellTimings {
		if !c.Resumed && !c.Skipped && c.Attempts > 1 {
			wantRetries += c.Attempts - 1
		}
	}
	if wantRetries == 0 {
		t.Fatal("chaos produced no retries; the comparison is vacuous")
	}
	if int(snap.Retries) != wantRetries {
		t.Errorf("retries: api %d, manifest-derived %d", snap.Retries, wantRetries)
	}
	// Failure entries line up: same unit, attempts and stack; the manifest
	// error wraps the unit error the monitor saw.
	for i, f := range m.Failures {
		af := snap.Failures[i]
		if af.Unit != f.Unit || af.Attempts != f.Attempts || af.Stack != f.Stack {
			t.Errorf("failure %d: api %+v, manifest %+v", i, af, f)
		}
		if !strings.Contains(f.Error, af.Error) && !strings.Contains(af.Error, f.Error) {
			t.Errorf("failure %d error mismatch: api %q, manifest %q", i, af.Error, f.Error)
		}
	}
	// Per-unit detail: every cell visible, terminal, attempts >= 1.
	if len(snap.UnitViews) != len(m.CellTimings) {
		t.Fatalf("unit views = %d, cells = %d", len(snap.UnitViews), len(m.CellTimings))
	}
	for i, u := range snap.UnitViews {
		if u.Status != StatusDone && u.Status != StatusFailed {
			t.Errorf("unit %d status %q", i, u.Status)
		}
		if u.Attempts < 1 || u.Attempts != m.CellTimings[i].Attempts {
			t.Errorf("unit %d attempts %d, manifest %d", i, u.Attempts, m.CellTimings[i].Attempts)
		}
	}

	// /metrics counters match the same manifest totals.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if got := metricValue(t, text, "fleet_rows_total", "sweep-obs"); got != float64(m.Rows) {
		t.Errorf("fleet_rows_total = %v, manifest rows %d", got, m.Rows)
	}
	if got := metricValue(t, text, "fleet_failures_total", "sweep-obs"); got != float64(len(m.Failures)) {
		t.Errorf("fleet_failures_total = %v, manifest failures %d", got, len(m.Failures))
	}
	if got := metricValue(t, text, "fleet_retries_total", "sweep-obs"); got != float64(wantRetries) {
		t.Errorf("fleet_retries_total = %v, want %d", got, wantRetries)
	}
	if got := metricValue(t, text, "fleet_journal_hits_total", "sweep-obs"); got != float64(m.Resumed) {
		t.Errorf("fleet_journal_hits_total = %v, manifest resumed %d", got, m.Resumed)
	}

	// The rows endpoint replays the sink's exact bytes (the log closed with
	// Finish, so the request terminates).
	resp, err = http.Get(srv.URL + "/api/runs/sweep-obs/rows")
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(rows, buf.Bytes()) {
		t.Errorf("rows endpoint diverges from sink bytes:\napi:  %q\nsink: %q", rows, buf.Bytes())
	}
}

// TestServerAttachedOutputByteIdentical: running under the full
// observability stack (RunState monitor, RowLog tee, live HTTP server)
// changes no emitted byte at workers 1 vs 8 — observe, never steer.
func TestServerAttachedOutputByteIdentical(t *testing.T) {
	spec := fleet.SweepSpec{Target: "obs-sweep", Axes: []fleet.Axis{
		{Name: "a", Values: []float64{1, 2, 3, 4, 5, 6}},
		{Name: "b", Values: []float64{10, 20}},
	}}
	opts := core.Quick(7)

	var bare bytes.Buffer
	if _, err := fleet.RunSweepStream(spec, opts, fleet.Config{Workers: 4}, fleet.NewJSONLSink(&bare)); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		reg := NewRegistry()
		st := reg.NewRun("sweep-obs", "sweep")
		srv := httptest.NewServer(NewMux(reg))
		var got bytes.Buffer
		sink := fleet.NewJSONLSink(io.MultiWriter(&got, st.RowLog()))
		_, err := fleet.RunSweepStream(spec, opts, fleet.Config{Workers: workers, Monitor: st}, sink)
		st.Finish(err, "")
		srv.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(bare.Bytes(), got.Bytes()) {
			t.Errorf("workers=%d: served run bytes diverge from bare run", workers)
		}
	}
}
