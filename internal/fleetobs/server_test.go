package fleetobs

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"telepresence/internal/fleet"
)

// seedServer builds a registry with one synthetic finished run and
// returns its test server.
func seedServer(t *testing.T) (*httptest.Server, *RunState) {
	t.Helper()
	reg := NewRegistry()
	st := reg.NewRun("sweep-demo", "sweep")
	st.Event(fleet.MonitorEvent{Kind: fleet.EventRunStarted, Unit: -1, Units: 2})
	st.Event(fleet.MonitorEvent{Kind: fleet.EventUnitDispatched, Unit: 0, Key: "sweep/demo/a=1"})
	st.Event(fleet.MonitorEvent{Kind: fleet.EventUnitDone, Unit: 0, Key: "sweep/demo/a=1", Attempt: 1, Rows: 1})
	st.Event(fleet.MonitorEvent{Kind: fleet.EventRowsEmitted, Unit: 0, Key: "sweep/demo/a=1", Rows: 1})
	st.Event(fleet.MonitorEvent{Kind: fleet.EventUnitDispatched, Unit: 1, Key: "sweep/demo/a=2"})
	st.Event(fleet.MonitorEvent{Kind: fleet.EventUnitDone, Unit: 1, Key: "sweep/demo/a=2", Attempt: 2,
		Err: errors.New("fleet: sweep/demo/a=2 failed after 2 attempt(s): boom")})
	st.Event(fleet.MonitorEvent{Kind: fleet.EventRunDone, Unit: -1})
	srv := httptest.NewServer(NewMux(reg))
	t.Cleanup(srv.Close)
	return srv, st
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp
}

func TestAPIRunEndpoints(t *testing.T) {
	srv, _ := seedServer(t)

	var list []Snapshot
	getJSON(t, srv.URL+"/api/runs", &list)
	if len(list) != 1 || list[0].ID != "sweep-demo" || list[0].State != RunFailed {
		t.Fatalf("/api/runs = %+v", list)
	}
	if list[0].UnitViews != nil {
		t.Error("list view leaked per-unit detail")
	}

	var one Snapshot
	getJSON(t, srv.URL+"/api/runs/sweep-demo", &one)
	if len(one.UnitViews) != 2 || one.UnitViews[1].Status != StatusFailed {
		t.Fatalf("detail unit views = %+v", one.UnitViews)
	}
	if one.Rows != 1 || one.FailuresTotal != 1 {
		t.Errorf("detail counters = %+v", one)
	}

	resp, err := http.Get(srv.URL + "/api/runs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run status = %d, want 404", resp.StatusCode)
	}
}

// promLine matches the two legal line shapes of the text exposition
// format as this server emits it.
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) fleet_[a-z_]+ .+|fleet_[a-z_]+\{run="[^"]*"\} -?[0-9]+(\.[0-9eE+-]+)?)$`)

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := seedServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`fleet_rows_total{run="sweep-demo"} 1`,
		`fleet_failures_total{run="sweep-demo"} 1`,
		`fleet_units_total{run="sweep-demo"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestRowsEndpoint(t *testing.T) {
	srv, st := seedServer(t)
	log := st.RowLog()
	log.Write([]byte("{\"r\":0}\n{\"r\":1}\n{\"r\":2}\n"))

	// Bounded read returns immediately with max lines.
	resp, err := http.Get(srv.URL + "/api/runs/sweep-demo/rows?max=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := string(body); got != "{\"r\":0}\n{\"r\":1}\n" {
		t.Fatalf("max=2 body = %q", got)
	}

	// A follower sees lines appended after it connected, then terminates
	// when the log closes.
	resp, err = http.Get(srv.URL + "/api/runs/sweep-demo/rows?from=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	go func() {
		log.Write([]byte("{\"r\":3}\n"))
		log.Close()
	}()
	sc := bufio.NewScanner(resp.Body)
	var tail []string
	for sc.Scan() {
		tail = append(tail, sc.Text())
	}
	if len(tail) != 1 || tail[0] != `{"r":3}` {
		t.Fatalf("follow tail = %q", tail)
	}

	for _, bad := range []string{"?max=0", "?max=x", "?from=-1"} {
		resp, err := http.Get(srv.URL + "/api/runs/sweep-demo/rows" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv, _ := seedServer(t)
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status = %d", resp.StatusCode)
	}
}
