package fleetobs

import "sync"

// Registry holds the runs a server exposes, in registration order (an
// explicit order slice — map iteration order must never leak into API or
// metrics output).
type Registry struct {
	mu    sync.Mutex
	order []string
	runs  map[string]*RunState
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{runs: map[string]*RunState{}}
}

// NewRun creates, registers and returns a RunState under id. Registering
// the same id again replaces the previous run in place (same position),
// which is what a resumed run wants.
func (g *Registry) NewRun(id, kind string) *RunState {
	st := NewRunState(id, kind)
	g.mu.Lock()
	if _, ok := g.runs[id]; !ok {
		g.order = append(g.order, id)
	}
	g.runs[id] = st
	g.mu.Unlock()
	return st
}

// Get returns the run registered under id, or nil.
func (g *Registry) Get(id string) *RunState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs[id]
}

// Runs returns the registered runs in registration order.
func (g *Registry) Runs() []*RunState {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*RunState, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.runs[id])
	}
	return out
}

// Snapshots returns a summary snapshot (no per-unit detail) per run, in
// registration order.
func (g *Registry) Snapshots() []Snapshot {
	runs := g.Runs()
	out := make([]Snapshot, 0, len(runs))
	for _, st := range runs {
		out = append(out, st.Snapshot(false))
	}
	return out
}
