package fleetobs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// NewMux builds the introspection handler over reg:
//
//	GET /api/runs            — summary snapshot per run (JSON array)
//	GET /api/runs/{id}       — one run with per-unit detail (JSON)
//	GET /api/runs/{id}/rows  — NDJSON tail-follow of the sink stream
//	GET /metrics             — Prometheus text exposition
//	    /debug/pprof/...     — the standard pprof handlers
//
// Row streaming serves the sink's exact emitted bytes (the RowLog tee),
// so what the API shows can never disagree with what landed on disk.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, reg.Snapshots())
	})
	mux.HandleFunc("GET /api/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st := reg.Get(r.PathValue("id"))
		if st == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, st.Snapshot(true))
	})
	mux.HandleFunc("GET /api/runs/{id}/rows", func(w http.ResponseWriter, r *http.Request) {
		st := reg.Get(r.PathValue("id"))
		if st == nil {
			http.NotFound(w, r)
			return
		}
		serveRows(w, r, st.RowLog())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, reg.Snapshots())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeJSON renders v as an indented JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// serveRows streams the log's lines as NDJSON from ?from=<seq> (default
// 0: earliest retained), following appends until the run closes its log,
// the client hangs up, or ?max=<n> lines have been sent. Responses flush
// per batch so curl sees rows as they land.
func serveRows(w http.ResponseWriter, r *http.Request, log *RowLog) {
	var from int64
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v < 0 {
			http.Error(w, "bad from", http.StatusBadRequest)
			return
		}
		from = v
	}
	max := int64(-1) // unbounded
	if q := r.URL.Query().Get("max"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v <= 0 {
			http.Error(w, "bad max", http.StatusBadRequest)
			return
		}
		max = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	// Send headers before the first wait so a tail-follower's client sees
	// the response open immediately, rows or not.
	if flusher != nil {
		flusher.Flush()
	}
	var sent int64
	for {
		lines, next, closed, changed := log.read(from)
		for _, line := range lines {
			if _, err := w.Write(line); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
			sent++
			if max >= 0 && sent >= max {
				return
			}
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		from = next
		if closed {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-time.After(30 * time.Second):
			// Heartbeat timeout: re-check state so an abandoned log (a run
			// that never closes it) cannot pin the handler forever.
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// Serve starts an http.Server for reg's mux on l in a background
// goroutine and returns it; callers own shutdown (srv.Close). Serve
// errors after shutdown are expected and dropped.
func Serve(l net.Listener, reg *Registry) *http.Server {
	srv := &http.Server{Handler: NewMux(reg)}
	go srv.Serve(l)
	return srv
}
