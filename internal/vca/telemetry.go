package vca

import (
	"fmt"

	"telepresence/internal/recovery"
	"telepresence/internal/simtime"
	"telepresence/internal/telemetry"
)

// TelemetryConfig attaches the observability subsystem to a session. Nil —
// the default — is provably inert: no events, no metrics ticker, no
// allocations on the hot paths, no randomness, and byte-identical golden
// rows (TestTelemetryOffIsInert).
//
// Telemetry observes but never steers: gauges and events read session state
// without mutating it, so even an *enabled* tracer leaves every
// experiment row identical — traces are deterministic functions of the
// seed, byte-identical at any fleet worker count.
type TelemetryConfig struct {
	// Trace receives the session's typed event stream as JSONL (see
	// internal/telemetry's schema). Nil disables event tracing.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, is sampled every MetricsInterval of virtual
	// time: per-sender rate target vs achieved uplink rate, queue depth,
	// recovery loss EWMA, cumulative repairs, and frames outstanding in the
	// reassembler.
	Metrics *telemetry.Metrics
	// MetricsInterval is the virtual-time sampling period (default 100 ms).
	MetricsInterval simtime.Duration
}

// metricsInterval returns the sampling period with the default applied.
func (tc *TelemetryConfig) metricsInterval() simtime.Duration {
	if tc.MetricsInterval <= 0 {
		return 100 * simtime.Millisecond
	}
	return tc.MetricsInterval
}

// setupTelemetry wires the configured tracer into every link and registers
// the metrics gauges plus their sampling ticker. Called once from
// NewSession after the media path is wired, so the gauges can read whatever
// state (controllers, recovery, reassemblers) the plan created.
func (s *Session) setupTelemetry() {
	tc := s.cfg.Telemetry
	if tc == nil {
		return
	}
	s.tr = tc.Trace
	if s.tr != nil {
		for i := range s.up {
			s.up[i].SetTracer(s.tr)
			s.down[i].SetTracer(s.tr)
		}
	}
	m := tc.Metrics
	if m == nil {
		return
	}
	n := len(s.cfg.Participants)
	// Achieved uplink rate is a windowed delta of the link's delivered
	// bytes, recomputed by the sampling ticker just before each Sample.
	achieved := make([]float64, n)
	lastB := make([]int64, n)
	var lastT simtime.Time
	for i := 0; i < n; i++ {
		i := i
		m.Register(fmt.Sprintf("target_bps/u%d", i), func() float64 {
			return s.RateTargetBps(i)
		})
		m.Register(fmt.Sprintf("achieved_up_bps/u%d", i), func() float64 {
			return achieved[i]
		})
		m.Register(fmt.Sprintf("queue_up_bytes/u%d", i), func() float64 {
			return float64(s.up[i].QueuedBytes())
		})
		m.Register(fmt.Sprintf("loss_ewma/u%d", i), func() float64 {
			if s.recSend != nil && s.recSend[i] != nil {
				return s.recSend[i].LossEwma()
			}
			return 0
		})
		m.Register(fmt.Sprintf("repaired/u%d", i), func() float64 {
			var total int64
			if s.recRecv != nil {
				for k := range s.recRecv {
					if rr := s.recRecv[k][i]; rr != nil {
						st := rr.Stats()
						total += st.RepairedRtx + st.RepairedFec
					}
				}
			}
			return float64(total)
		})
		m.Register(fmt.Sprintf("frames_outstanding/u%d", i), func() float64 {
			var total int
			if s.depacks != nil {
				for k := range s.depacks {
					if d := s.depacks[k][i]; d != nil {
						total += d.Pending()
					}
				}
			}
			return float64(total)
		})
	}
	simtime.NewTickerSite(s.sched, tc.metricsInterval(), func(now simtime.Time) {
		dt := now.Sub(lastT).Seconds()
		for i := 0; i < n; i++ {
			b := s.up[i].Stats().DeliveredB
			if dt > 0 {
				achieved[i] = float64(b-lastB[i]) * 8 / dt
			}
			lastB[i] = b
		}
		lastT = now
		m.Sample(now.Milliseconds())
	}, s.sched.Site("vca/telemetry.metrics"))
}

// recSnap is a snapshot of one recovery receiver's repair counters, taken
// before a call that may repair or expire gaps; traceRepairDelta emits the
// difference as typed events. Diffing the engine's own counters keeps the
// trace exactly consistent with end-of-run ReceiverStats — the property the
// summarize-reproduces-UserStats acceptance test pins.
type recSnap struct {
	rtx, fec, unrep int64
}

func snapRecovery(rr *recovery.Receiver) recSnap {
	st := rr.Stats()
	return recSnap{rtx: st.RepairedRtx, fec: st.RepairedFec, unrep: st.Unrepaired}
}

// traceRepairDelta emits repair/expire events for counter movement since
// pre. Caller must hold s.tr != nil.
func (s *Session) traceRepairDelta(now simtime.Time, i, j int, rr *recovery.Receiver, pre recSnap) {
	st := rr.Stats()
	if d := st.RepairedRtx - pre.rtx; d > 0 {
		s.tr.Repair(now, i, j, "rtx", int(d))
	}
	if d := st.RepairedFec - pre.fec; d > 0 {
		s.tr.Repair(now, i, j, "fec", int(d))
	}
	if d := st.Unrepaired - pre.unrep; d > 0 {
		s.tr.Expire(now, i, j, int(d))
	}
}
