package vca

import (
	"fmt"

	"telepresence/internal/geo"
	"telepresence/internal/simrand"
	"telepresence/internal/stats"
)

// RTTProbe is the TCP-ping stand-in (§3.2: the paper runs TCP pings because
// the providers drop ICMP): it samples round-trip times between a vantage
// point and a provider server through the path model.
type RTTProbe struct {
	Model geo.PathModel
	// ExtraServerMs adds provider-specific processing (the paper's Webex
	// CA server showed elevated RTTs).
	ExtraServerMs map[string]float64
}

// NewRTTProbe returns a probe with the default path model.
func NewRTTProbe() *RTTProbe {
	return &RTTProbe{
		Model: geo.DefaultPathModel(),
		// Calibrated to the one outlier in Figure 4: Webex's California
		// server exceeded 100 ms for far clients.
		ExtraServerMs: map[string]float64{"Webex/CA": 18},
	}
}

// Measure samples reps RTTs between the vantage point and the server of the
// given app.
func (p *RTTProbe) Measure(app App, server, vantage geo.Location, rng *simrand.Source, reps int) *stats.Sample {
	extra := p.ExtraServerMs[fmt.Sprintf("%v/%v", app, server)]
	s := &stats.Sample{}
	for i := 0; i < reps; i++ {
		s.Add(p.Model.SampleRTTMs(vantage, server, rng) + extra)
	}
	return s
}

// SeriesKey names one CDF line of Figure 4, e.g. "CA-F".
type SeriesKey struct {
	App    App
	Server geo.Location
}

// Label renders the paper's legend form: server abbreviation, dash, app
// initial.
func (k SeriesKey) Label() string {
	return fmt.Sprintf("%s-%c", k.Server.Name, k.App.String()[0])
}

// Fig4Series measures the full Figure 4 matrix: every provider server
// probed from all nine vantage points, reps samples each. Results are keyed
// by the paper's series labels.
func Fig4Series(rng *simrand.Source, repsPerVantage int) map[string]*stats.Sample {
	probe := NewRTTProbe()
	out := map[string]*stats.Sample{}
	for _, app := range Apps() {
		spec := SpecFor(app)
		for _, srv := range spec.Servers {
			key := SeriesKey{App: app, Server: srv}
			agg := &stats.Sample{}
			for _, vp := range geo.VantagePoints() {
				s := probe.Measure(app, srv, vp, rng.Split(key.Label()+vp.Name), repsPerVantage)
				agg.Add(s.Values()...)
			}
			out[key.Label()] = agg
		}
	}
	return out
}

// AnycastVerdict is the outcome of the anycast check for one server.
type AnycastVerdict struct {
	Server  geo.Location
	Anycast bool
	// Evidence holds the vantage pair violating the speed-of-light bound
	// when Anycast is true.
	Evidence string
}

// DetectAnycast applies the prior-work test the paper uses (§4.1): if the
// same server address shows minimum RTTs from two vantage points that sum
// to less than the minimum RTT between those vantage points, one physical
// site cannot explain both measurements and the address must be anycast.
// minRTTs maps vantage name to the minimum RTT (ms) observed toward the
// server.
func DetectAnycast(server geo.Location, minRTTs map[string]float64) AnycastVerdict {
	vps := geo.VantagePoints()
	for i := 0; i < len(vps); i++ {
		for j := i + 1; j < len(vps); j++ {
			a, b := vps[i], vps[j]
			ra, okA := minRTTs[a.Name]
			rb, okB := minRTTs[b.Name]
			if !okA || !okB {
				continue
			}
			if ra+rb < geo.MinRTTMs(a, b) {
				return AnycastVerdict{
					Server:  server,
					Anycast: true,
					Evidence: fmt.Sprintf("%s (%.1f ms) + %s (%.1f ms) < light bound %.1f ms",
						a.Name, ra, b.Name, rb, geo.MinRTTMs(a, b)),
				}
			}
		}
	}
	return AnycastVerdict{Server: server}
}

// MinRTTMatrix measures the per-vantage minimum RTT toward a server, the
// input DetectAnycast needs.
func (p *RTTProbe) MinRTTMatrix(app App, server geo.Location, rng *simrand.Source, reps int) map[string]float64 {
	out := map[string]float64{}
	for _, vp := range geo.VantagePoints() {
		s := p.Measure(app, server, vp, rng.Split(vp.Name), reps)
		out[vp.Name] = s.Min()
	}
	return out
}
