package vca

import (
	"math"
	"testing"

	"telepresence/internal/analysis"
	"telepresence/internal/geo"
	"telepresence/internal/rtp"
	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
)

func vp(id string, loc geo.Location) Participant {
	return Participant{ID: id, Loc: loc, Device: VisionPro}
}

func TestSpecFleetsMatchPaper(t *testing.T) {
	// §4.1: FaceTime 4 servers, Zoom 2, Webex 3, Teams 1.
	want := map[App]int{FaceTime: 4, Zoom: 2, Webex: 3, Teams: 1}
	for app, n := range want {
		if got := len(SpecFor(app).Servers); got != n {
			t.Errorf("%v fleet = %d servers, want %d", app, got, n)
		}
	}
	if !SpecFor(FaceTime).SupportsSpatial {
		t.Error("FaceTime must support spatial personas")
	}
	for _, app := range []App{Zoom, Webex, Teams} {
		if SpecFor(app).SupportsSpatial {
			t.Errorf("%v should not support spatial personas", app)
		}
	}
	// §4.2 resolutions.
	if s := SpecFor(Webex); s.VideoW != 1920 || s.VideoH != 1080 {
		t.Error("Webex resolution wrong")
	}
	if s := SpecFor(Zoom); s.VideoW != 640 || s.VideoH != 360 {
		t.Error("Zoom resolution wrong")
	}
}

func TestAllocateServerClosestToInitiator(t *testing.T) {
	spec := SpecFor(FaceTime)
	cases := []struct {
		initiator geo.Location
		want      string
	}{
		{geo.NewYork, "VA"},
		{geo.SanFrancisco, "CA"},
		{geo.Chicago, "IL"},
		{geo.Austin, "TX"},
	}
	for _, c := range cases {
		if got := spec.AllocateServer(c.initiator); got.Name != c.want {
			t.Errorf("initiator %v -> server %v, want %v", c.initiator, got, c.want)
		}
	}
}

func TestAllocationIgnoresOtherParticipants(t *testing.T) {
	// §4.1: "if a user in the Eastern US initiates a session, the server
	// will always be in the Eastern US regardless of the locations of
	// other participants."
	parts := []Participant{vp("east", geo.NewYork), vp("west1", geo.Seattle), vp("west2", geo.LosAngeles)}
	plan, err := PlanSession(FaceTime, parts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Server.Name != "VA" {
		t.Errorf("server %v, want VA for an Eastern initiator", plan.Server)
	}
	plan2, _ := PlanSession(FaceTime, parts, 1)
	if plan2.Server.Name != "CA" {
		t.Errorf("server %v, want CA for a Western initiator", plan2.Server)
	}
}

// §4.1's full decision matrix.
func TestPlanSessionMatrix(t *testing.T) {
	ny, sf := geo.NewYork, geo.SanFrancisco
	cases := []struct {
		name      string
		app       App
		devices   []Device
		media     MediaKind
		transport Transport
		p2p       bool
	}{
		{"facetime-all-vp", FaceTime, []Device{VisionPro, VisionPro}, MediaSpatialPersona, TransportQUIC, false},
		{"facetime-vp-mac", FaceTime, []Device{VisionPro, MacBook}, Media2DVideo, TransportRTP, true},
		{"facetime-vp-ipad", FaceTime, []Device{VisionPro, IPad}, Media2DVideo, TransportRTP, true},
		{"facetime-vp-iphone", FaceTime, []Device{VisionPro, IPhone}, Media2DVideo, TransportRTP, true},
		{"zoom-two-vp", Zoom, []Device{VisionPro, VisionPro}, Media2DVideo, TransportRTP, true},
		{"zoom-three", Zoom, []Device{VisionPro, VisionPro, VisionPro}, Media2DVideo, TransportRTP, false},
		{"webex-two", Webex, []Device{VisionPro, VisionPro}, Media2DVideo, TransportRTP, false},
		{"teams-two", Teams, []Device{VisionPro, VisionPro}, Media2DVideo, TransportRTP, false},
	}
	for _, c := range cases {
		parts := make([]Participant, len(c.devices))
		for i, d := range c.devices {
			loc := ny
			if i%2 == 1 {
				loc = sf
			}
			parts[i] = Participant{ID: string(rune('a' + i)), Loc: loc, Device: d}
		}
		plan, err := PlanSession(c.app, parts, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if plan.Media != c.media || plan.Transport != c.transport || plan.P2P != c.p2p {
			t.Errorf("%s: got media=%v transport=%v p2p=%v, want %v/%v/%v",
				c.name, plan.Media, plan.Transport, plan.P2P, c.media, c.transport, c.p2p)
		}
	}
}

func TestPlanSessionErrors(t *testing.T) {
	if _, err := PlanSession(FaceTime, []Participant{vp("solo", geo.NewYork)}, 0); err == nil {
		t.Error("1-participant session accepted")
	}
	parts := []Participant{vp("a", geo.NewYork), vp("b", geo.Austin)}
	if _, err := PlanSession(FaceTime, parts, 5); err == nil {
		t.Error("out-of-range initiator accepted")
	}
	// Six Vision Pro users exceed FaceTime's spatial cap.
	six := make([]Participant, 6)
	for i := range six {
		six[i] = vp(string(rune('a'+i)), geo.NewYork)
	}
	if _, err := PlanSession(FaceTime, six, 0); err == nil {
		t.Error("6 spatial personas accepted (cap is 5)")
	}
}

func TestFig4SeriesShape(t *testing.T) {
	series := Fig4Series(simrand.New(1), 20)
	// 4+2+3+1 = 10 series, matching Figure 4's legend.
	if len(series) != 10 {
		t.Fatalf("%d series, want 10", len(series))
	}
	for _, label := range []string{"CA-F", "TX-F", "IL-F", "VA-F", "CA-Z", "VA-Z", "CA-W", "TX-W", "NJ-W", "WA-T"} {
		if _, ok := series[label]; !ok {
			t.Errorf("missing series %q", label)
		}
	}
	// Paper findings: some RTTs exceed 100 ms (Webex CA); coastal servers
	// exceed 80 ms from the opposite coast; mid-US servers stay under
	// ~70 ms for everyone.
	if series["CA-W"].Max() < 100 {
		t.Errorf("CA-W max = %.1f ms, want >100", series["CA-W"].Max())
	}
	if series["CA-F"].Max() < 80 {
		t.Errorf("CA-F max = %.1f ms, want >80", series["CA-F"].Max())
	}
	for _, mid := range []string{"TX-F", "IL-F"} {
		if p95 := series[mid].Percentile(95); p95 > 75 {
			t.Errorf("%s p95 = %.1f ms, want <75 (mid-US trade-off)", mid, p95)
		}
	}
	// The population trade-off: TX serves fewer ultra-low RTTs than VA.
	txLow := series["TX-F"].FractionBelow(20)
	vaLow := series["VA-F"].FractionBelow(20)
	if txLow >= vaLow {
		t.Errorf("fraction below 20 ms: TX %.2f >= VA %.2f; paper has TX 20%% vs VA 38%%", txLow, vaLow)
	}
}

func TestDetectAnycastNegativeForRealServers(t *testing.T) {
	probe := NewRTTProbe()
	rng := simrand.New(2)
	for _, app := range Apps() {
		for _, srv := range SpecFor(app).Servers {
			m := probe.MinRTTMatrix(app, srv, rng.Split(srv.Name), 10)
			if v := DetectAnycast(srv, m); v.Anycast {
				t.Errorf("%v/%v flagged as anycast: %s", app, srv, v.Evidence)
			}
		}
	}
}

func TestDetectAnycastPositiveForSyntheticAnycast(t *testing.T) {
	// A fake anycast address: every vantage point sees a 5 ms RTT, which
	// is physically impossible for one site.
	m := map[string]float64{}
	for _, vpnt := range geo.VantagePoints() {
		m[vpnt.Name] = 5
	}
	if v := DetectAnycast(geo.ServerCA, m); !v.Anycast {
		t.Error("synthetic anycast not detected")
	}
}

func TestSpatialSessionThroughputAndProtocol(t *testing.T) {
	cfg := DefaultSessionConfig(FaceTime, []Participant{
		vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
	})
	cfg.Duration = 8 * simtime.Second
	cfg.Seed = 1
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Plan().Media != MediaSpatialPersona {
		t.Fatal("expected spatial persona plan")
	}
	res := sess.Run()
	for _, u := range res.Users {
		// Paper Fig.5: spatial persona ~0.67 Mbps (we allow 0.5-0.9 with
		// transport overhead).
		up := u.Uplink.Mean()
		if up < 0.5 || up > 0.95 {
			t.Errorf("%s uplink = %.3f Mbps, want ~0.7 (paper Fig.5 F)", u.ID, up)
		}
		if u.Protocol != analysis.ProtoQUIC {
			t.Errorf("%s classified as %v, want QUIC (§4.1)", u.ID, u.Protocol)
		}
		if u.FramesDecoded < 500 {
			t.Errorf("%s decoded only %d frames", u.ID, u.FramesDecoded)
		}
		if u.UnavailableFrac > 0.1 {
			t.Errorf("%s persona unavailable %.0f%% of the session", u.ID, u.UnavailableFrac*100)
		}
	}
}

func TestVideoSessionZoomP2P(t *testing.T) {
	cfg := DefaultSessionConfig(Zoom, []Participant{
		vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
	})
	cfg.Duration = 6 * simtime.Second
	cfg.Seed = 2
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Plan().P2P {
		t.Fatal("2-user Zoom should be P2P (§4.1)")
	}
	res := sess.Run()
	for _, u := range res.Users {
		up := u.Uplink.Mean()
		// Paper Fig.5: Zoom ~1.5 Mbps.
		if up < 0.9 || up > 2.2 {
			t.Errorf("%s uplink = %.2f Mbps, want ~1.5 (paper Fig.5 Z)", u.ID, up)
		}
		if u.Protocol != analysis.ProtoRTP {
			t.Errorf("%s classified as %v, want RTP", u.ID, u.Protocol)
		}
		if u.FramesDecoded == 0 {
			t.Errorf("%s decoded no video frames", u.ID)
		}
	}
}

func TestSpatialScalesLinearlyWithUsers(t *testing.T) {
	// Fig.7c: downlink throughput grows ~linearly with participants
	// because the server merely forwards.
	locs := []geo.Location{geo.Ashburn, geo.NewYork, geo.Chicago, geo.Austin, geo.Miami}
	down := map[int]float64{}
	for _, n := range []int{2, 3} {
		parts := make([]Participant, n)
		for i := 0; i < n; i++ {
			parts[i] = vp(string(rune('a'+i)), locs[i])
		}
		cfg := DefaultSessionConfig(FaceTime, parts)
		cfg.Duration = 5 * simtime.Second
		cfg.Seed = 3
		sess, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := sess.Run()
		down[n] = res.Users[0].Downlink.Mean()
	}
	ratio := down[3] / down[2]
	if math.Abs(ratio-2) > 0.35 {
		t.Errorf("downlink 3-user/2-user ratio = %.2f, want ~2 (linear growth)", ratio)
	}
}

func TestRateCapKillsSpatialPersona(t *testing.T) {
	// §4.3: capping the uplink at 0.7 Mbps makes the spatial persona
	// unavailable; semantic streams cannot rate-adapt.
	cfg := DefaultSessionConfig(FaceTime, []Participant{
		vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
	})
	cfg.Duration = 15 * simtime.Second
	cfg.Seed = 4
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.UplinkShaper(0).RateBps = 0.7e6
	res := sess.Run()
	// u2 (receiving u1's capped stream) sees heavy unavailability: the
	// semantic stream cannot shed rate, so queueing delay grows without
	// bound and the persona goes stale permanently.
	if res.Users[1].UnavailableFrac < 0.3 {
		t.Errorf("persona still %.0f%% available under a 0.7 Mbps cap; expected failure",
			100*(1-res.Users[1].UnavailableFrac))
	}
	// The reverse direction is unimpaired.
	if res.Users[0].UnavailableFrac > 0.2 {
		t.Errorf("unimpaired direction unavailable %.0f%%", res.Users[0].UnavailableFrac*100)
	}
}

func TestStringers(t *testing.T) {
	if FaceTime.String() != "FaceTime" || App(99).String() != "App(99)" {
		t.Error("App strings")
	}
	if VisionPro.String() != "VisionPro" || Device(9).String() != "Device(9)" {
		t.Error("Device strings")
	}
	if MediaSpatialPersona.String() != "spatial-persona" || Media2DVideo.String() != "2d-video" {
		t.Error("Media strings")
	}
	if TransportQUIC.String() != "QUIC" || TransportRTP.String() != "RTP" {
		t.Error("Transport strings")
	}
	if (SeriesKey{App: FaceTime, Server: geo.ServerCA}).Label() != "CA-F" {
		t.Error("series label")
	}
}

func TestSessionDeterminism(t *testing.T) {
	run := func() float64 {
		cfg := DefaultSessionConfig(FaceTime, []Participant{
			vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
		})
		cfg.Duration = 3 * simtime.Second
		cfg.Seed = 42
		sess, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sess.Run().Users[0].Uplink.Mean()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed sessions differ: %v vs %v", a, b)
	}
}

func TestFaceTime2DKeepsPayloadTypeOnWire(t *testing.T) {
	// §4.1: FaceTime's RTP Payload Type toward non-Vision-Pro devices is
	// the same as in traditional 2D calls — verified here from captured
	// wire bytes, the way the paper did it.
	cfg := DefaultSessionConfig(FaceTime, []Participant{
		vp("u1", geo.Ashburn),
		{ID: "u2", Loc: geo.NewYork, Device: MacBook},
	})
	cfg.Duration = 3 * simtime.Second
	cfg.Seed = 5
	cfg.RetainPackets = true // this test reads per-packet records
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Plan().Media != Media2DVideo || !sess.Plan().P2P {
		t.Fatalf("plan = %+v, want P2P 2D video", sess.Plan())
	}
	sess.Run()
	videoPkts, audioPkts := 0, 0
	for _, r := range sess.UplinkRecords(0) {
		var h rtp.Header
		if _, err := h.Unmarshal(r.Payload); err != nil {
			continue
		}
		switch h.PayloadType {
		case rtp.PTFaceTimeVideo:
			videoPkts++
		case rtp.PTFaceTimeAudio:
			audioPkts++
		default:
			t.Fatalf("unexpected PT %d on a FaceTime call", h.PayloadType)
		}
	}
	if videoPkts == 0 || audioPkts == 0 {
		t.Errorf("video/audio packets = %d/%d; want both present", videoPkts, audioPkts)
	}
}

func TestSpatialTrafficOpaqueAtAP(t *testing.T) {
	// §5: spatial-persona payloads are end-to-end encrypted; the AP
	// observer can classify QUIC but must not see keypoint floats.
	cfg := DefaultSessionConfig(FaceTime, []Participant{
		vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
	})
	cfg.Duration = 2 * simtime.Second
	cfg.Seed = 6
	cfg.RetainPackets = true // this test inspects captured payload bytes
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.Run()
	recs := sess.UplinkRecords(0)
	if len(recs) == 0 {
		t.Fatal("no uplink records")
	}
	// The semantic wire format starts with 'K' or 'D' plus a mode byte;
	// after QUIC scrambling that prefix must not appear at the QUIC
	// payload offset of media packets.
	leaks := 0
	for _, r := range recs {
		p := r.Payload
		// Short header: 1 + 8 CID + >=1 PN, then frame type byte.
		if len(p) > 14 && p[0] == 0x40 {
			// Media frames would start with the 8-byte timestamp then
			// kind byte 'K'; scan the snaplen window for the plaintext
			// signature kind+mode (0x4B 0x00).
			for i := 10; i+1 < len(p); i++ {
				if p[i] == 0x4B && p[i+1] == 0x00 {
					leaks++
					break
				}
			}
		}
	}
	// A couple of coincidental byte pairs are statistically possible in
	// scrambled data; systematic presence would mean no encryption.
	if frac := float64(leaks) / float64(len(recs)); frac > 0.05 {
		t.Errorf("plaintext semantic signature visible in %.0f%% of packets", frac*100)
	}
}

// TestDefaultSessionCaptureIsStreaming pins the memory-O(1) acceptance: in
// the default capture mode a session keeps no per-packet records — only
// streaming aggregates — yet still produces throughput and protocol
// results.
func TestDefaultSessionCaptureIsStreaming(t *testing.T) {
	cfg := DefaultSessionConfig(FaceTime, []Participant{
		vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
	})
	cfg.Duration = 2 * simtime.Second
	cfg.Seed = 7
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sess.Run()
	for i := range res.Users {
		if sess.Capture(i).Retaining() {
			t.Fatalf("user %d capture retains records by default", i)
		}
		if n := len(sess.Capture(i).Records()); n != 0 {
			t.Fatalf("user %d capture stored %d records in streaming mode", i, n)
		}
		if sess.Capture(i).Len() == 0 {
			t.Errorf("user %d capture observed no frames", i)
		}
	}
	if res.Users[0].Uplink.N() == 0 {
		t.Error("streaming capture produced no throughput sample")
	}
	if res.Users[0].Protocol != analysis.ProtoQUIC {
		t.Errorf("streaming protocol verdict = %v, want QUIC", res.Users[0].Protocol)
	}
	if recs := sess.UplinkRecords(0); recs != nil {
		t.Errorf("UplinkRecords returned %d records without RetainPackets", len(recs))
	}
}

// TestVideoP2PUnderLoss exercises the P2P RTP path under random loss: the
// depacketizer must drop incomplete frames without mis-framing, decode
// accounting must stay consistent, and the unimpaired reverse direction
// must not degrade.
func TestVideoP2PUnderLoss(t *testing.T) {
	cfg := DefaultSessionConfig(FaceTime, []Participant{
		vp("u1", geo.Ashburn),
		{ID: "u2", Loc: geo.NewYork, Device: MacBook},
	})
	cfg.Duration = 6 * simtime.Second
	cfg.Seed = 11
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Plan().P2P || sess.Plan().Media != Media2DVideo {
		t.Fatalf("plan = %+v, want P2P 2D video", sess.Plan())
	}
	sess.UplinkShaper(0).LossProb = 0.05
	res := sess.Run()
	lossy, clean := res.Users[1], res.Users[0]
	if lossy.FramesDecoded == 0 {
		t.Fatal("no frames decoded through 5% loss")
	}
	// ~5% packet loss at several packets per frame kills a visible
	// fraction of frames; the stream must degrade, not die.
	lossyFrac := float64(lossy.FramesDecoded) / float64(clean.FramesSent)
	if lossyFrac > 0.97 {
		t.Errorf("lossy direction decoded %.0f%% of frames; loss had no effect", lossyFrac*100)
	}
	if lossyFrac < 0.3 {
		t.Errorf("lossy direction decoded only %.0f%% of frames", lossyFrac*100)
	}
	cleanFrac := float64(clean.FramesDecoded) / float64(lossy.FramesSent)
	if cleanFrac < 0.9 {
		t.Errorf("unimpaired direction decoded only %.0f%% of frames", cleanFrac*100)
	}
	if up := sess.UplinkStats(0); up.DroppedLoss == 0 {
		t.Error("shaper loss dropped nothing")
	}
}

// TestClosedLoopVideoAdaptsToCap pins the closed loop end to end on the
// RTP path: under a 0.7 Mbps cap the delay-gradient controller must pull
// the encoder target down near the cap, where the open-loop twin drowns
// its queue.
func TestClosedLoopVideoAdaptsToCap(t *testing.T) {
	if testing.Short() {
		t.Skip("two 10 s capped sessions; skipped in -short (the -race CI job)")
	}
	run := func(rc *RateControlConfig) (*Results, *Session) {
		cfg := DefaultSessionConfig(Zoom, []Participant{
			vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
		})
		cfg.Duration = 12 * simtime.Second
		cfg.Seed = 12
		cfg.RateControl = rc
		sess, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sess.UplinkShaper(0).RateBps = 0.7e6
		return sess.Run(), sess
	}
	openRes, _ := run(nil)
	closedRes, closedSess := run(&RateControlConfig{Controller: "gcc"})

	target := closedSess.RateTargetBps(0)
	if target <= 0 || target > 0.9e6 {
		t.Errorf("closed-loop target = %.0f bps, want adapted near the 0.7 Mbps cap", target)
	}
	if closedSess.RateTargetMeanBps(0) == 0 {
		t.Error("no feedback ever reached the sender")
	}
	// The closed loop must deliver fresher frames: strictly lower receiver
	// latency and unavailability than open loop.
	if c, o := closedRes.Users[1].MeanFrameLatencyMs, openRes.Users[1].MeanFrameLatencyMs; c >= o {
		t.Errorf("closed-loop latency %.0f ms not below open loop %.0f ms", c, o)
	}
	if c, o := closedRes.Users[1].UnavailableFrac, openRes.Users[1].UnavailableFrac; c >= o {
		t.Errorf("closed-loop unavailability %.2f not below open loop %.2f", c, o)
	}
}

// TestSpatialThinningUnderRateControl pins the semantic-layer scaling: a
// spatial sender cannot shrink frames, so under a cap the controller thins
// the frame rate — keeping the persona fresh where the open-loop session
// goes permanently stale (§4.3's failure, fixed).
func TestSpatialThinningUnderRateControl(t *testing.T) {
	run := func(rc *RateControlConfig) *Results {
		cfg := DefaultSessionConfig(FaceTime, []Participant{
			vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
		})
		cfg.Duration = 15 * simtime.Second
		cfg.Seed = 13
		cfg.RateControl = rc
		sess, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sess.UplinkShaper(0).RateBps = 0.7e6
		return sess.Run()
	}
	open := run(nil)
	closed := run(&RateControlConfig{Controller: "gcc"})

	if closed.Users[0].FramesThinned == 0 {
		t.Error("capped spatial sender thinned no frames")
	}
	if open.Users[0].FramesThinned != 0 {
		t.Error("open-loop sender thinned frames")
	}
	// Open loop collapses (pinned by TestRateCapKillsSpatialPersona);
	// closed loop must stay mostly available at a reduced frame rate.
	if c, o := closed.Users[1].UnavailableFrac, open.Users[1].UnavailableFrac; c >= o/2 {
		t.Errorf("closed-loop unavailability %.2f, open loop %.2f; thinning should at least halve it", c, o)
	}
	if closed.Users[1].UnavailableFrac > 0.25 {
		t.Errorf("closed-loop persona still unavailable %.0f%% of the session",
			closed.Users[1].UnavailableFrac*100)
	}
	// Thinned but live: frames still decode at the reduced rate.
	if closed.Users[1].FramesDecoded < 10*15/2 {
		t.Errorf("closed loop decoded only %d frames", closed.Users[1].FramesDecoded)
	}
}

// TestRateControlOffDrawsNothing pins the gate: an open-loop session built
// with the rate-control subsystem present must behave byte-identically to
// the pre-subsystem code — same rng draws, same events, same stats.
func TestRateControlOffIsInert(t *testing.T) {
	cfg := DefaultSessionConfig(FaceTime, []Participant{
		vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
	})
	cfg.Duration = 3 * simtime.Second
	cfg.Seed = 42
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sess.RateController(0) != nil || sess.RateTargetBps(0) != 0 || sess.RateTargetMeanBps(0) != 0 {
		t.Error("open-loop session has controller state")
	}
	res := sess.Run()
	if res.Users[0].FramesThinned != 0 {
		t.Error("open-loop session thinned frames")
	}
}
