package vca

import (
	"fmt"

	"telepresence/internal/analysis"
	"telepresence/internal/capture"
	"telepresence/internal/geo"
	"telepresence/internal/keypoints"
	"telepresence/internal/netem"
	"telepresence/internal/quic"
	"telepresence/internal/ratecontrol"
	"telepresence/internal/recovery"
	"telepresence/internal/rtp"
	"telepresence/internal/semantic"
	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
	"telepresence/internal/stats"
	"telepresence/internal/telemetry"
	"telepresence/internal/video"
	"telepresence/internal/vprof"
)

// SessionConfig describes one telepresence session to simulate.
type SessionConfig struct {
	App          App
	Participants []Participant
	// Initiator indexes Participants; server allocation follows it.
	Initiator int
	Seed      int64
	// Duration is the simulated session length (the paper uses >=120 s;
	// tests use less).
	Duration simtime.Duration
	// SpatialFPS is the persona frame rate (90 on Vision Pro).
	SpatialFPS float64
	// VideoFPS is the 2D-persona frame rate.
	VideoFPS float64
	// PathModel converts geography to delays.
	PathModel geo.PathModel
	// FreshnessLimit is how stale the newest decoded persona frame may be
	// before the UI shows "poor connection" (persona unavailable).
	FreshnessLimit simtime.Duration
	// LatencyLimit is the end-to-end media age beyond which a delivered
	// frame no longer counts as live (queueing delay under a bandwidth
	// cap drives frames past this and the persona goes unavailable).
	LatencyLimit simtime.Duration
	// SemanticMode selects the spatial-persona encoding (default:
	// paper-faithful float32).
	SemanticMode semantic.Mode
	// RetainPackets keeps full per-packet capture records (O(packets)
	// memory). The default streaming mode aggregates throughput and
	// protocol counts online at the AP tap; enable retention only for
	// analyses that need packet-level records (UplinkRecords etc.).
	RetainPackets bool
	// RateControl, when non-nil, closes the feedback loop: every receiver
	// periodically sends RTCP-style receiver reports back across the
	// reverse network path, and every sender runs a
	// ratecontrol.Controller that retargets its encoder (2D video) or
	// thins its frame stream (spatial persona) from that feedback. Nil —
	// the default — keeps the paper's open-loop behavior: no reports are
	// sent, no controller state exists, and sessions are byte-identical
	// to builds without the subsystem.
	RateControl *RateControlConfig
	// Recovery, when non-nil, adds loss recovery to the RTP media path
	// (internal/recovery): receiver-driven NACK/RTX, XOR-parity FEC, or
	// both, with NACKs and parity riding the same links as media and
	// receiver reports. Nil — the default — schedules no recovery events
	// and draws no randomness, so sessions are byte-identical to builds
	// without the subsystem (TestRecoveryOffIsInert, golden suite).
	// Spatial sessions reject active recovery: their QUIC streams already
	// retransmit, so there is nothing for the RTP-level machinery to do.
	Recovery *RecoveryConfig
	// FrameTimeout is how long the receiver's depacketizer holds an
	// incomplete RTP frame before abandoning it (DefaultFrameTimeout when
	// zero). Under Recovery with NACK the effective timeout is raised to
	// cover the NACK deadline plus two scan intervals, so a NACK'd frame
	// is never garbage-collected before its retry budget expires.
	FrameTimeout simtime.Duration
	// Telemetry, when non-nil, attaches the observability subsystem
	// (internal/telemetry): a typed virtual-time event trace and/or a
	// sampled metrics timeseries. Nil — the default — emits no events,
	// starts no tickers, draws no randomness, and adds zero allocations to
	// the hot paths, so sessions are byte-identical to builds without the
	// subsystem. Telemetry observes but never steers: even when enabled,
	// every experiment row stays identical.
	Telemetry *TelemetryConfig
	// Prof, when non-nil, attaches the virtual-time profiler
	// (internal/vprof) to the session's scheduler before any subsystem
	// schedules its first event. Nil — the default — leaves the
	// scheduler's probe hook unset, which costs zero allocations on the
	// dispatch path, so sessions are byte-identical to builds without the
	// profiler. Like Telemetry, the profiler observes but never steers:
	// its deterministic counters are identical at any worker count, and
	// its wall-clock CPU attribution never reaches golden outputs.
	Prof *vprof.Profiler
}

// DefaultFrameTimeout is the default depacketizer incomplete-frame timeout:
// how long a receiver waits for a missing packet before conceding the frame
// and letting later frames deliver. 200 ms holds a frame across a NACK
// round trip with retries yet stays under the 250 ms default LatencyLimit,
// so a frame that completes just before the timeout still counts as live.
const DefaultFrameTimeout = 200 * simtime.Millisecond

// RateControlConfig wires a congestion controller into a session.
type RateControlConfig struct {
	// Controller selects the ratecontrol kind: "gcc" (delay-gradient),
	// "loss" (loss-based AIMD) or "fixed" (open-loop baseline). Default
	// "gcc".
	Controller string
	// Interval is the receiver-report period (default 100 ms).
	Interval simtime.Duration
	// MinBps / MaxBps bound the controller target. MaxBps defaults to the
	// sender's nominal media rate (the encoder target for 2D video, 4 Mbps
	// for spatial personas), so a closed-loop session never demands more
	// than its open-loop twin; MinBps defaults to 150 kbps.
	MinBps, MaxBps float64
}

// controllerKind returns the configured kind with the default applied.
func (rc *RateControlConfig) controllerKind() string {
	if rc.Controller == "" {
		return "gcc"
	}
	return rc.Controller
}

// interval returns the report period with the default applied.
func (rc *RateControlConfig) interval() simtime.Duration {
	if rc.Interval <= 0 {
		return 100 * simtime.Millisecond
	}
	return rc.Interval
}

// controllerConfig builds the ratecontrol.Config for a sender whose
// open-loop media rate is nominalBps.
func (rc *RateControlConfig) controllerConfig(nominalBps float64) ratecontrol.Config {
	cfg := ratecontrol.Config{
		InitialBps: nominalBps,
		MinBps:     rc.MinBps,
		MaxBps:     rc.MaxBps,
	}
	if cfg.MaxBps <= 0 {
		cfg.MaxBps = nominalBps
	}
	return cfg
}

// RecoveryConfig wires a loss-recovery strategy into a session's RTP media
// path. Zero-valued fields select the internal/recovery defaults.
type RecoveryConfig struct {
	// Strategy selects the recovery kind: "nack" (receiver-driven
	// NACK/RTX), "fec" (XOR parity groups), "hybrid" (FEC with NACK
	// fallback and loss-adaptive redundancy) or "none" (wired but inert —
	// the experiments' baseline). Default "hybrid".
	Strategy string
	// Interval is the receiver's NACK/deadline scan period (default
	// 25 ms). Each tick sends at most one burst of NACKs per remote
	// stream.
	Interval simtime.Duration
	// NackRetries / NackDeadline bound the per-seq retry budget; zero
	// selects the recovery defaults (3 retries, 160 ms).
	NackRetries  int
	NackDeadline simtime.Duration
	// FECGroupLen is the XOR parity group size for "fec", and the start
	// size for "hybrid" (default 6). MinGroupLen/MaxGroupLen bound
	// hybrid's loss-adaptive group length (defaults 6 and 12).
	FECGroupLen              int
	MinGroupLen, MaxGroupLen int
}

// strategy returns the configured kind with the default applied.
func (rc *RecoveryConfig) strategy() string {
	if rc.Strategy == "" {
		return "hybrid"
	}
	return rc.Strategy
}

// interval returns the scan period with the default applied.
func (rc *RecoveryConfig) interval() simtime.Duration {
	if rc.Interval <= 0 {
		return 25 * simtime.Millisecond
	}
	return rc.Interval
}

// engineConfig maps the session knobs onto internal/recovery's config.
func (rc *RecoveryConfig) engineConfig() recovery.Config {
	cfg := recovery.Config{
		NackRetries: rc.NackRetries,
		GroupLen:    rc.FECGroupLen,
		MinGroupLen: rc.MinGroupLen,
		MaxGroupLen: rc.MaxGroupLen,
	}
	if rc.NackDeadline > 0 {
		cfg.NackDeadlineMs = float64(rc.NackDeadline) / float64(simtime.Millisecond)
	}
	return cfg
}

// DefaultSessionConfig returns a ready-to-run two-user configuration.
func DefaultSessionConfig(app App, parts []Participant) SessionConfig {
	return SessionConfig{
		App:            app,
		Participants:   parts,
		Duration:       10 * simtime.Second,
		SpatialFPS:     90,
		VideoFPS:       30,
		PathModel:      geo.DefaultPathModel(),
		FreshnessLimit: 500 * simtime.Millisecond,
	}
}

// UserStats is the per-participant measurement outcome.
type UserStats struct {
	ID string
	// Uplink and Downlink are 1-second throughput samples in Mbps, as an
	// observer at the user's AP measures them.
	Uplink, Downlink *stats.Sample
	// Protocol is the majority classification of this user's traffic.
	Protocol analysis.Protocol
	// FramesSent counts media frames emitted.
	FramesSent int
	// FramesDecoded counts media frames successfully decoded from all
	// remote senders.
	FramesDecoded int
	// FramesUndecodable counts frames that arrived but failed the
	// all-or-nothing semantic check.
	FramesUndecodable int
	// FramesThinned counts captured frames the sender's rate controller
	// declined to transmit (spatial-persona sessions under RateControl:
	// semantic frames cannot shrink, so the controller sheds rate by
	// lowering the persona frame rate instead).
	FramesThinned int
	// PacketsRepaired counts media packets this user's receivers restored
	// via loss recovery (retransmission or FEC reconstruction), summed
	// over all remote streams; zero unless SessionConfig.Recovery is set.
	PacketsRepaired int
	// PacketsUnrepaired counts media packets that stayed lost despite
	// recovery (deadline or retry budget exhausted).
	PacketsUnrepaired int
	// UnavailableFrac is the fraction of session time the spatial persona
	// was unavailable ("poor connection").
	UnavailableFrac float64
	// MeanFrameLatencyMs is the capture-to-decode latency of delivered
	// media frames.
	MeanFrameLatencyMs float64
}

// Results is the outcome of a session run.
type Results struct {
	Plan  Plan
	Users []UserStats
}

// Session is a fully wired simulated telepresence call.
type Session struct {
	cfg   SessionConfig
	plan  Plan
	sched *simtime.Scheduler
	rng   *simrand.Source

	// Per participant: access pipes (to server, or directly to the peer
	// in P2P mode).
	up, down []*netem.Link
	caps     []*capture.Capture

	// Spatial state.
	quicUp   []*quic.Conn   // user -> server (or peer in theory; spatial is never P2P)
	quicDown [][]*quic.Conn // [sender][receiver] server -> receiver conns
	decoders [][]*semantic.Decoder

	// Video state.
	encoders []*video.Encoder
	scenes   []*video.Scene
	packers  []*rtp.Packetizer
	depacks  [][]*rtp.Depacketizer
	vdecs    [][]*video.Decoder

	stats      []UserStats
	lastDecode []simtime.Time // per receiver: time of last decoded frame
	staleNs    []int64        // per receiver: accumulated unavailable time
	latSum     []float64
	latN       []int

	relayFree []*relayJob    // pooled SFU forwarding jobs
	relaySite simtime.SiteID // profiler label for SFU forwarding events

	// Rate-control state, nil/empty unless SessionConfig.RateControl is
	// set (the closed loop draws nothing — no events, no rng, no frames —
	// when disabled).
	ctrls    []ratecontrol.Controller // per sender
	builders [][]*rtp.ReportBuilder   // [sender][receiver] receive stats
	ctrlSum  []float64                // per sender: sum of applied targets
	ctrlN    []int                    // per sender: feedback count
	thinAcc  []float64                // per spatial sender: frame-budget accumulator
	nominal  []float64                // per spatial sender: measured nominal bps

	// Loss-recovery state, nil/empty unless SessionConfig.Recovery selects
	// an active strategy (same inertness contract as rate control).
	recPlan recovery.Plan
	recSend []*recovery.Sender     // per sender
	recRecv [][]*recovery.Receiver // [sender][receiver]
	nackScr rtp.Nack               // reused NACK parse scratch
	dueScr  []uint16               // reused due-seq scratch
	gcTicks uint32                 // frame-timeout horizon in 90 kHz RTP ticks

	// tr is the event tracer, nil unless SessionConfig.Telemetry carries
	// one (the inertness contract: a nil tracer costs one pointer test per
	// emission site and nothing else).
	tr *telemetry.Tracer
}

// relayJob carries one uplink packet from the SFU ingress to its delayed
// fan-out without a per-packet closure or payload copy.
type relayJob struct {
	s    *Session
	from int
	size int
	pkt  []byte
}

func (s *Session) getRelayJob() *relayJob {
	if n := len(s.relayFree) - 1; n >= 0 {
		j := s.relayFree[n]
		s.relayFree[n] = nil
		s.relayFree = s.relayFree[:n]
		return j
	}
	return &relayJob{s: s}
}

// relayFn forwards a processed uplink packet to every other participant's
// downlink, then recycles the job.
func relayFn(a any) {
	j := a.(*relayJob)
	s := j.s
	for k := 0; k < len(s.down); k++ {
		if k == j.from {
			continue
		}
		s.down[k].Send(netem.Frame{Size: j.size, Payload: j.pkt})
	}
	j.pkt = nil
	s.relayFree = append(s.relayFree, j)
}

// NewSession plans and wires a session.
func NewSession(cfg SessionConfig) (*Session, error) {
	plan, err := PlanSession(cfg.App, cfg.Participants, cfg.Initiator)
	if err != nil {
		return nil, err
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("vca: non-positive duration")
	}
	if cfg.SpatialFPS <= 0 {
		cfg.SpatialFPS = 90
	}
	if cfg.VideoFPS <= 0 {
		cfg.VideoFPS = 30
	}
	if cfg.FreshnessLimit <= 0 {
		cfg.FreshnessLimit = 500 * simtime.Millisecond
	}
	if cfg.LatencyLimit <= 0 {
		cfg.LatencyLimit = 250 * simtime.Millisecond
	}
	if cfg.FrameTimeout <= 0 {
		cfg.FrameTimeout = DefaultFrameTimeout
	}
	var recPlan recovery.Plan
	if cfg.Recovery != nil {
		recPlan, err = recovery.PlanFor(cfg.Recovery.strategy())
		if err != nil {
			return nil, err
		}
		if recPlan.Active() && plan.Media == MediaSpatialPersona {
			return nil, fmt.Errorf("vca: recovery strategy %q on a spatial session: QUIC streams already retransmit, RTP-level recovery has nothing to repair", cfg.Recovery.strategy())
		}
	}
	s := &Session{
		cfg:   cfg,
		plan:  plan,
		sched: simtime.NewScheduler(),
		rng:   simrand.New(cfg.Seed),
	}
	if cfg.Prof != nil {
		// Attach before any subsystem schedules, so the profiler observes
		// the whole run. Profilers observe but never steer: event order,
		// rows, and traces are byte-identical with or without one.
		cfg.Prof.Attach(s.sched)
	}
	s.relaySite = s.sched.Site("vca/sfu.relay")
	s.recPlan = recPlan
	n := len(cfg.Participants)
	s.up = make([]*netem.Link, n)
	s.down = make([]*netem.Link, n)
	s.caps = make([]*capture.Capture, n)
	s.stats = make([]UserStats, n)
	s.lastDecode = make([]simtime.Time, n)
	s.staleNs = make([]int64, n)
	s.latSum = make([]float64, n)
	s.latN = make([]int, n)

	spec := SpecFor(cfg.App)
	// mkCap builds the per-user AP capture: streaming aggregation with the
	// protocol classifier at the tap; full records only on request.
	mkCap := func(i int, links ...*netem.Link) {
		c := capture.New(cfg.Participants[i].ID)
		c.SetClassifier(analysis.ClassIndex)
		c.SetRetain(cfg.RetainPackets)
		c.Attach(links...)
		s.caps[i] = c
	}
	mkPipe := func(i int, a, b geo.Location, extraMs float64) {
		oneWay := cfg.PathModel.BaseRTTMs(a, b)/2 + extraMs
		p := netem.NewPipe(s.sched, s.rng.Split(fmt.Sprintf("pipe%d", i)), netem.Config{
			Name:     fmt.Sprintf("ap-%s", cfg.Participants[i].ID),
			DelayMs:  oneWay,
			JitterMs: 0.3,
		})
		s.up[i], s.down[i] = p.AB, p.BA
		mkCap(i, p.AB, p.BA)
	}
	if plan.P2P {
		// One pipe between the two users; each user's "uplink" is their
		// sending direction.
		oneWay := cfg.PathModel.BaseRTTMs(cfg.Participants[0].Loc, cfg.Participants[1].Loc) / 2
		p := netem.NewPipe(s.sched, s.rng.Split("p2p"), netem.Config{
			Name: "p2p", DelayMs: oneWay, JitterMs: 0.3,
		})
		s.up[0], s.down[0] = p.AB, p.BA
		s.up[1], s.down[1] = p.BA, p.AB
		mkCap(0, p.AB, p.BA)
		mkCap(1, p.BA, p.AB)
	} else {
		for i := range cfg.Participants {
			mkPipe(i, cfg.Participants[i].Loc, plan.Server, spec.ServerProcMs/2)
		}
	}

	switch plan.Media {
	case MediaSpatialPersona:
		if err := s.wireSpatial(); err != nil {
			return nil, err
		}
	case Media2DVideo:
		if err := s.wireVideo(); err != nil {
			return nil, err
		}
	}
	s.setupTelemetry()
	return s, nil
}

// Plan returns the session's connectivity decision.
func (s *Session) Plan() Plan { return s.plan }

// Scheduler exposes the session's discrete-event scheduler so callers can
// bind impairment schedules (internal/scenario) or plant custom mid-call
// events before Run. The scheduler is the session's single thread of
// execution: do not drive it directly while Run is in progress.
func (s *Session) Scheduler() *simtime.Scheduler { return s.sched }

// UplinkStats returns a copy of the link counters of user i's uplink
// (drops, deliveries, queue overflow) — the sender-side ground truth the
// scenario experiments report alongside receiver-side QoE.
func (s *Session) UplinkStats(i int) netem.LinkStats { return s.up[i].Stats() }

// DownlinkStats returns a copy of the link counters of user i's downlink.
func (s *Session) DownlinkStats(i int) netem.LinkStats { return s.down[i].Stats() }

// UplinkShaper exposes the tc-equivalent impairment stage on user i's
// uplink (§4.3's delay and bandwidth-cap experiments).
func (s *Session) UplinkShaper(i int) *netem.Shaper { return s.up[i].Shaper() }

// DownlinkShaper exposes the shaper on user i's downlink.
func (s *Session) DownlinkShaper(i int) *netem.Shaper { return s.down[i].Shaper() }

// Capture returns the AP capture of user i.
func (s *Session) Capture(i int) *capture.Capture { return s.caps[i] }

// RateController returns sender i's congestion controller, or nil when the
// session runs open loop (SessionConfig.RateControl unset).
func (s *Session) RateController(i int) ratecontrol.Controller {
	if s.ctrls == nil {
		return nil
	}
	return s.ctrls[i]
}

// RateTargetBps returns sender i's current controller target, or 0 when
// the session runs open loop.
func (s *Session) RateTargetBps(i int) float64 {
	if c := s.RateController(i); c != nil {
		return c.TargetBps()
	}
	return 0
}

// RateTargetMeanBps returns the mean of sender i's controller target
// sampled at every feedback arrival, or 0 before any feedback. The ccrate
// and ccramp experiment rows report it next to the achieved rate.
func (s *Session) RateTargetMeanBps(i int) float64 {
	if s.ctrlN == nil || s.ctrlN[i] == 0 {
		return 0
	}
	return s.ctrlSum[i] / float64(s.ctrlN[i])
}

// RecoverySenderStats returns sender i's loss-recovery counters (cache,
// parity, retransmissions); ok is false when the session runs without an
// active recovery strategy.
func (s *Session) RecoverySenderStats(i int) (recovery.SenderStats, bool) {
	if s.recSend == nil || s.recSend[i] == nil {
		return recovery.SenderStats{}, false
	}
	return s.recSend[i].Stats(), true
}

// RecoveryReceiverStats returns receiver j's loss-recovery counters for
// sender i's stream (gaps, repairs, repair delays); ok is false when the
// session runs without an active recovery strategy.
func (s *Session) RecoveryReceiverStats(i, j int) (recovery.ReceiverStats, bool) {
	if s.recRecv == nil || s.recRecv[i] == nil || s.recRecv[i][j] == nil {
		return recovery.ReceiverStats{}, false
	}
	return s.recRecv[i][j].Stats(), true
}

// RecoveryOverheadRatio returns sender i's redundancy overhead (parity plus
// retransmission bytes per media byte), or 0 without active recovery.
func (s *Session) RecoveryOverheadRatio(i int) float64 {
	if s.recSend == nil || s.recSend[i] == nil {
		return 0
	}
	return s.recSend[i].OverheadRatio()
}

// setupFeedback builds the per-stream report builders: the receiver half of
// the feedback loop, needed by rate control and by hybrid recovery's
// redundancy adaptation alike.
func (s *Session) setupFeedback() {
	if s.builders != nil {
		return
	}
	n := len(s.cfg.Participants)
	s.builders = make([][]*rtp.ReportBuilder, n)
	for i := 0; i < n; i++ {
		s.builders[i] = make([]*rtp.ReportBuilder, n)
		for j := 0; j < n; j++ {
			if j != i {
				s.builders[i][j] = rtp.NewReportBuilder(rtp.VideoSSRC(i))
			}
		}
	}
}

// reportInterval is the receiver-report period: the rate-control setting
// when present, its default otherwise (recovery-only sessions still need
// report flow for redundancy adaptation).
func (s *Session) reportInterval() simtime.Duration {
	if rc := s.cfg.RateControl; rc != nil {
		return rc.interval()
	}
	return 100 * simtime.Millisecond
}

// setupRateControl builds the per-sender controllers and per-stream report
// builders; nominalBps is the open-loop media rate controllers start from.
func (s *Session) setupRateControl(nominalBps float64) error {
	rc := s.cfg.RateControl
	n := len(s.cfg.Participants)
	s.ctrls = make([]ratecontrol.Controller, n)
	s.ctrlSum = make([]float64, n)
	s.ctrlN = make([]int, n)
	s.setupFeedback()
	for i := 0; i < n; i++ {
		c, err := ratecontrol.New(rc.controllerKind(), rc.controllerConfig(nominalBps))
		if err != nil {
			return err
		}
		s.ctrls[i] = c
	}
	return nil
}

// onFeedback delivers one receiver report to sender i: hybrid recovery
// adapts its redundancy from the reported loss, and the rate controller —
// when present — retargets the sender's encoder (2D video; spatial senders
// read the target at the next frame tick and thin instead). With both
// subsystems active the redundancy bytes are charged against the controller
// target (ratecontrol.ApplyOverhead): media plus parity plus RTX together
// stay within what the controller granted.
func (s *Session) onFeedback(i int, rep *rtp.ReceiverReport, now simtime.Time) {
	if s.tr != nil {
		s.tr.RateReport(now, i, rep.FractionLost, rep.MeanOwdMs, rep.RecvRateBps)
	}
	if s.recSend != nil && s.recSend[i] != nil {
		s.recSend[i].OnReportLoss(rep.FractionLost)
	}
	if s.ctrls == nil || s.ctrls[i] == nil {
		return
	}
	c := s.ctrls[i]
	c.OnFeedback(ratecontrol.Feedback{AtMs: now.Milliseconds(), Report: *rep})
	target := c.TargetBps()
	raw := target
	if s.recSend != nil && s.recSend[i] != nil {
		min := s.cfg.RateControl.MinBps
		if min <= 0 {
			min = ratecontrol.DefaultMinBps
		}
		target = ratecontrol.ApplyOverhead(target, s.recSend[i].BudgetOverheadRatio(), min)
	}
	if s.tr != nil {
		reason := ratecontrol.ReasonHold
		if r, ok := c.(ratecontrol.Reasoner); ok {
			reason = r.LastReason()
		}
		s.tr.RateTarget(now, i, raw, target, reason)
	}
	if s.encoders != nil && s.encoders[i] != nil {
		s.encoders[i].SetTargetBps(target)
	}
	s.ctrlSum[i] += target
	s.ctrlN[i]++
}

// handleReportFrame demuxes one wire payload that may be a marshaled
// receiver report addressed to participant me. It reports whether the
// payload was consumed (it was a report — valid or not, reports never fall
// through to media parsing).
func (s *Session) handleReportFrame(me int, payload []byte, now simtime.Time) bool {
	if s.builders == nil || !rtp.IsReport(payload) {
		return false
	}
	var rep rtp.ReceiverReport
	if err := rep.Unmarshal(payload); err != nil {
		return true
	}
	if sender, audio, ok := rtp.SenderOf(rep.SSRC); ok && !audio && sender == me {
		s.onFeedback(me, &rep, now)
	}
	return true
}

// handleRecoveryFrame demuxes one wire payload that may be a recovery
// packet as seen by participant me: a NACK for a stream me sends (answered
// from the retransmit cache over me's own uplink) or a parity packet for a
// stream me receives (handed to the stream's receiver, which may
// reconstruct the missing packet). Like reports, recovery packets never
// fall through to media parsing.
func (s *Session) handleRecoveryFrame(me int, payload []byte, now simtime.Time) bool {
	if s.recRecv == nil {
		return false
	}
	if rtp.IsNack(payload) {
		if err := s.nackScr.Unmarshal(payload); err != nil {
			return true
		}
		sender, audio, ok := rtp.SenderOf(s.nackScr.SSRC)
		if ok && !audio && sender == me && s.recSend[me] != nil {
			var preRtx, preMiss int64
			if s.tr != nil {
				st := s.recSend[me].Stats()
				preRtx, preMiss = st.RtxPackets, st.CacheMisses
			}
			for _, pkt := range s.recSend[me].OnNack(&s.nackScr) {
				// Cached packets are immutable once handed out, so the
				// retransmission can share them with the network layer.
				s.up[me].Send(netem.Frame{Size: len(pkt) + 28, Payload: pkt})
			}
			if s.tr != nil {
				st := s.recSend[me].Stats()
				s.tr.NackAnswered(now, me, int(st.RtxPackets-preRtx), int(st.CacheMisses-preMiss))
			}
		}
		return true
	}
	if rtp.IsParity(payload) {
		sender, audio, ok := rtp.SenderOf(rtp.ParitySSRC(payload))
		if ok && !audio && sender != me && sender < len(s.recRecv) && s.recRecv[sender][me] != nil {
			rr := s.recRecv[sender][me]
			var pre recSnap
			if s.tr != nil {
				pre = snapRecovery(rr)
			}
			if rec := rr.OnParity(payload, now.Milliseconds()); rec != nil {
				s.pushMedia(sender, me, rec, now)
			}
			if s.tr != nil {
				s.traceRepairDelta(now, sender, me, rr, pre)
			}
		}
		return true
	}
	return false
}

// UplinkRecords returns the delivered frames of user i's uplink only — the
// direction a passive observer attributes to this user's sending. Requires
// SessionConfig.RetainPackets; the default streaming capture keeps no
// per-packet records and yields nil here.
func (s *Session) UplinkRecords(i int) []capture.Record {
	return s.caps[i].Filter(func(r capture.Record) bool {
		return r.Dir == netem.Egress && r.Link == s.up[i].Name()
	})
}

// DownlinkRecords returns the delivered frames of user i's downlink only.
// Requires SessionConfig.RetainPackets, like UplinkRecords.
func (s *Session) DownlinkRecords(i int) []capture.Record {
	return s.caps[i].Filter(func(r capture.Record) bool {
		return r.Dir == netem.Egress && r.Link == s.down[i].Name()
	})
}

// wireSpatial sets up the all-Vision-Pro FaceTime path: semantic frames
// over QUIC, always relayed by the server (§4.1). Connection IDs follow a
// scheme: user i's uplink conn is 100+i (server side 200+i); the server's
// downlink conn for sender i toward receiver j is 1000+i*16+j (user side
// 2000+i*16+j), so receivers know which sender each frame came from.
func (s *Session) wireSpatial() error {
	n := len(s.cfg.Participants)
	if s.cfg.RateControl != nil {
		// 4 Mbps is the default target ceiling for spatial senders: above
		// the ~1.5 Mbps nominal stream, so an unimpaired closed-loop
		// session behaves exactly like its open-loop twin (thinning ratio
		// clamps at 1).
		if err := s.setupRateControl(4e6); err != nil {
			return err
		}
	}
	s.quicUp = make([]*quic.Conn, n)
	s.quicDown = make([][]*quic.Conn, n)
	s.decoders = make([][]*semantic.Decoder, n)
	for i := 0; i < n; i++ {
		s.quicDown[i] = make([]*quic.Conn, n)
		s.decoders[i] = make([]*semantic.Decoder, n)
	}
	upDemux := make([]*quic.Demux, n)   // server side of up[i]
	downDemux := make([]*quic.Demux, n) // user side of down[i]
	for i := 0; i < n; i++ {
		upDemux[i] = quic.NewDemux()
		downDemux[i] = quic.NewDemux()
		i := i
		s.up[i].SetHandler(func(now simtime.Time, f netem.Frame) { upDemux[i].Handler(now, f) })
		s.down[i].SetHandler(func(now simtime.Time, f netem.Frame) { downDemux[i].Handler(now, f) })
	}

	for i := 0; i < n; i++ {
		i := i
		// User i's uplink conn and its server-side peer.
		up := quic.NewConn(s.sched, s.up[i], quic.Config{
			ConnID: uint64(100 + i), PeerID: uint64(200 + i), Key: 0x5A, IsClient: true,
		})
		s.quicUp[i] = up
		downDemux[i].Add(up) // ACKs from the server arrive on down[i]
		srv := quic.NewConn(s.sched, s.down[i], quic.Config{
			ConnID: uint64(200 + i), PeerID: uint64(100 + i), Key: 0x5A,
		})
		upDemux[i].Add(srv)
		srv.OnMessage(func(m quic.Message) {
			for j := 0; j < n; j++ {
				if j != i {
					s.quicDown[i][j].SendMessage(m.Data)
				}
			}
		})
	}
	// Per (sender i, receiver j): server->receiver conn pair.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			i, j := i, j
			srvSide := quic.NewConn(s.sched, s.down[j], quic.Config{
				ConnID: uint64(1000 + i*16 + j), PeerID: uint64(2000 + i*16 + j), Key: 0x5A, IsClient: true,
			})
			s.quicDown[i][j] = srvSide
			upDemux[j].Add(srvSide) // receiver ACKs travel on up[j]
			userSide := quic.NewConn(s.sched, s.up[j], quic.Config{
				ConnID: uint64(2000 + i*16 + j), PeerID: uint64(1000 + i*16 + j), Key: 0x5A,
			})
			downDemux[j].Add(userSide)
			s.decoders[i][j] = semantic.NewDecoder()
			userSide.OnMessage(func(m quic.Message) {
				s.onSpatialFrame(i, j, m.Data, s.sched.Now())
			})
		}
	}

	// Senders: keypoint generators at SpatialFPS plus 24 kbps audio. The
	// stamp and audio buffers are per-sender scratch: SendMessage copies
	// into pooled connection buffers, so reuse here is safe and the steady
	// state allocates nothing but the encoder's wire frame.
	//
	// Under RateControl the sender thins: semantic frames are
	// all-or-nothing (§4.3 — they cannot shed bits per frame), so the only
	// rate the controller can shed is frame rate. A deterministic budget
	// accumulator keeps every k-th frame so the sent rate tracks the
	// controller target, floored at 1/9 of nominal (a 10 fps persona at
	// the default 90) so the stream never starves feedback entirely.
	rc := s.cfg.RateControl
	if rc != nil {
		s.thinAcc = make([]float64, n)
		s.nominal = make([]float64, n)
		for i := range s.thinAcc {
			s.thinAcc[i] = 1 // always send the first frame
		}
	}
	interval := simtime.Duration(float64(simtime.Second) / s.cfg.SpatialFPS)
	for i := 0; i < n; i++ {
		i := i
		gen := keypoints.NewGenerator(s.rng.Split(fmt.Sprintf("kp%d", i)), keypoints.MotionConfig{
			FPS: s.cfg.SpatialFPS, Expressiveness: 1, SpeakingFraction: 1 / float64(n),
			SensorNoise: 0.0004,
		})
		enc := semantic.NewEncoder(s.cfg.SemanticMode)
		var stamped []byte
		simtime.NewTickerSite(s.sched, interval, func(now simtime.Time) {
			f := gen.Next() // motion advances even for thinned frames
			if rc != nil {
				keep := 1.0
				if nom := s.nominal[i]; nom > 0 {
					keep = s.ctrls[i].TargetBps() / nom
					if keep > 1 {
						keep = 1
					}
					if keep < 1.0/9 {
						keep = 1.0 / 9
					}
				}
				s.thinAcc[i] += keep
				if s.thinAcc[i] < 1 {
					s.stats[i].FramesThinned++
					if s.tr != nil {
						s.tr.FrameThinned(now, i)
					}
					return
				}
				s.thinAcc[i]--
			}
			s.stats[i].FramesSent++
			wire := enc.Encode(&f)
			if cap(stamped) < 8+len(wire) {
				stamped = make([]byte, 8+len(wire))
			}
			stamped = stamped[:8+len(wire)]
			putTime(stamped, now)
			copy(stamped[8:], wire)
			if rc != nil {
				// Nominal = full-frame-rate wire cost of the stream, the
				// denominator of the thinning ratio.
				s.nominal[i] = float64(len(stamped)*8) * s.cfg.SpatialFPS
			}
			if s.tr != nil {
				s.tr.FrameSent(now, i, len(stamped))
			}
			s.quicUp[i].SendMessage(stamped)
		}, s.sched.Site("vca/quic.frame"))
		// Audio: 60-byte frames every 20 ms ~ 24 kbps.
		audioBuf := make([]byte, 60)
		simtime.NewTickerSite(s.sched, 20*simtime.Millisecond, func(simtime.Time) {
			s.quicUp[i].SendMessage(audioBuf)
		}, s.sched.Site("vca/quic.audio"))
	}

	// Receiver-report tickers: each receiver reports every remote spatial
	// stream back over its own uplink QUIC conn; the server relays the
	// report like any frame and the stream's sender demuxes it in
	// onSpatialFrame.
	if rc != nil {
		var scratch []byte
		for j := 0; j < n; j++ {
			j := j
			simtime.NewTickerSite(s.sched, rc.interval(), func(now simtime.Time) {
				for i := 0; i < n; i++ {
					b := s.builders[i][j]
					if b == nil || b.Received() == 0 {
						continue
					}
					rep := b.MakeReport(now.Milliseconds())
					scratch = rep.Marshal(scratch[:0])
					s.quicUp[j].SendMessage(scratch) // SendMessage copies
				}
			}, s.sched.Site("vca/ratecontrol.report"))
		}
	}
	return nil
}

func putTime(b []byte, t simtime.Time) {
	v := uint64(t)
	for k := 0; k < 8; k++ {
		b[k] = byte(v >> (8 * (7 - k)))
	}
}

func getTime(b []byte) simtime.Time {
	var v uint64
	for k := 0; k < 8; k++ {
		v = v<<8 | uint64(b[k])
	}
	return simtime.Time(v)
}

// onSpatialFrame handles a reassembled message from sender i at receiver j.
func (s *Session) onSpatialFrame(i, j int, data []byte, now simtime.Time) {
	// Receiver reports ride the same relay fan-out as media; demux them
	// before the size-based audio check (a report is shorter than a
	// keypoint frame).
	if s.handleReportFrame(j, data, now) {
		return
	}
	if len(data) < 72 {
		return // audio frame
	}
	sent := getTime(data[:8])
	if s.builders != nil && s.builders[i][j] != nil {
		// QUIC delivers frames reliably and in order, so a synthetic
		// per-stream sequence number (the arrival count) stands in for an
		// RTP seq: loss shows up as delay here, never as gaps — exactly
		// the §4.3 semantics the delay-based controller exploits.
		b := s.builders[i][j]
		b.OnPacket(uint16(b.Received()), sent.Milliseconds(), now.Milliseconds(), len(data))
	}
	wire := data[8:]
	// Validate applies Decode's integrity checks (header, CRC, size)
	// without materializing keypoints no session measurement reads.
	if err := s.decoders[i][j].Validate(wire); err != nil {
		s.stats[j].FramesUndecodable++
		if s.tr != nil {
			s.tr.FrameUndecodable(now, i, j)
		}
		return
	}
	s.stats[j].FramesDecoded++
	lat := now.Sub(sent)
	s.latSum[j] += float64(lat) / float64(simtime.Millisecond)
	s.latN[j]++
	if s.tr != nil {
		s.tr.FrameDecoded(now, i, j, float64(lat)/float64(simtime.Millisecond), lat <= s.cfg.LatencyLimit)
	}
	if lat > s.cfg.LatencyLimit {
		// Decoded but too old to animate a live persona: does not refresh
		// availability.
		return
	}
	if s.lastDecode[j] != 0 {
		gap := now.Sub(s.lastDecode[j])
		if gap > s.cfg.FreshnessLimit {
			s.staleNs[j] += int64(gap - s.cfg.FreshnessLimit)
		}
	}
	s.lastDecode[j] = now
}

// deliverVideo runs one network-delivered wire packet of sender i's stream
// through receiver j's pipeline: report accounting, recovery gap tracking
// (which may reconstruct a buffered parity group's missing packet),
// frame-timeout GC, then reassembly and decode.
func (s *Session) deliverVideo(i, j int, pkt []byte, size int, now simtime.Time) {
	var h rtp.Header
	if _, err := h.Unmarshal(pkt); err != nil {
		return
	}
	if h.PayloadType == rtp.PTGenericAudio || h.PayloadType == rtp.PTFaceTimeAudio {
		return // audio contributes to throughput, not frame decode
	}
	// A late arrival — a retransmission or reordered duplicate — stays out
	// of the report builder: its capture-stamped one-way delay includes
	// the whole detection+NACK round trip, and feeding that to the
	// congestion controller would read repair latency as queue buildup.
	// Wire loss likewise stays visible: an RTX-repaired seq still counts
	// lost in the transport stats, which is what actually happened.
	late := s.recRecv != nil && s.recRecv[i][j] != nil && s.recRecv[i][j].IsLate(h.Seq)
	if !late && s.builders != nil && s.builders[i][j] != nil {
		// RTP timestamps run at the packetizer clock rate (90 kHz), so
		// the capture instant in ms is ts/90.
		s.builders[i][j].OnPacket(h.Seq, float64(h.Timestamp)/90, now.Milliseconds(), size)
	}
	if s.recRecv != nil && s.recRecv[i][j] != nil {
		rr := s.recRecv[i][j]
		var pre recSnap
		if s.tr != nil {
			pre = snapRecovery(rr)
		}
		if rec := rr.OnMedia(pkt, now.Milliseconds()); rec != nil {
			// This arrival left exactly one unknown in a buffered parity
			// group; the reconstruction is an older packet, so it joins
			// the reassembler first.
			s.pushMedia(i, j, rec, now)
		}
		if s.tr != nil {
			s.traceRepairDelta(now, i, j, rr, pre)
		}
	}
	if h.Timestamp > s.gcTicks {
		d := s.depacks[i][j]
		var preDropped int64
		if s.tr != nil {
			preDropped = d.FramesDropped
		}
		d.GC(h.Timestamp - s.gcTicks)
		if s.tr != nil {
			if dd := d.FramesDropped - preDropped; dd > 0 {
				s.tr.FrameTimeout(now, i, j, int(dd))
			}
		}
	}
	s.pushMedia(i, j, pkt, now)
}

// pushMedia feeds one media packet — network-delivered, retransmitted, or
// FEC-reconstructed — to receiver j's reassembler and accounts every frame
// that completes.
func (s *Session) pushMedia(i, j int, pkt []byte, now simtime.Time) {
	d := s.depacks[i][j]
	var preDropped int64
	if s.tr != nil {
		preDropped = d.FramesDropped
	}
	frames, err := d.Push(pkt)
	if s.tr != nil {
		// Push may abandon stalled frames when a later complete frame
		// overtakes them — the same fate as a GC timeout.
		if dd := d.FramesDropped - preDropped; dd > 0 {
			s.tr.FrameTimeout(now, i, j, int(dd))
		}
	}
	if err != nil {
		return
	}
	for _, frame := range frames {
		if len(frame) < 9 {
			continue
		}
		sent := getTime(frame[:8])
		// Validate replicates Decode's success/error behavior without
		// reconstructing pixels nobody reads.
		if err := s.vdecs[i][j].Validate(frame[8:]); err != nil {
			s.stats[j].FramesUndecodable++
			if s.tr != nil {
				s.tr.FrameUndecodable(now, i, j)
			}
			continue
		}
		s.stats[j].FramesDecoded++
		lat := now.Sub(sent)
		s.latSum[j] += float64(lat) / float64(simtime.Millisecond)
		s.latN[j]++
		if s.tr != nil {
			s.tr.FrameDecoded(now, i, j, float64(lat)/float64(simtime.Millisecond), lat <= s.cfg.LatencyLimit)
		}
		if lat > s.cfg.LatencyLimit {
			// Decoded but too old to count as a live persona frame;
			// does not refresh availability (same rule as the spatial
			// path — queueing under a cap drives frames past this).
			continue
		}
		if s.lastDecode[j] != 0 {
			if gap := now.Sub(s.lastDecode[j]); gap > s.cfg.FreshnessLimit {
				s.staleNs[j] += int64(gap - s.cfg.FreshnessLimit)
			}
		}
		s.lastDecode[j] = now
	}
}

// wireVideo sets up the RTP 2D-persona path used by Zoom/Webex/Teams and
// non-all-Vision-Pro FaceTime.
func (s *Session) wireVideo() error {
	n := len(s.cfg.Participants)
	spec := SpecFor(s.cfg.App)
	s.encoders = make([]*video.Encoder, n)
	s.scenes = make([]*video.Scene, n)
	s.packers = make([]*rtp.Packetizer, n)
	s.depacks = make([][]*rtp.Depacketizer, n)
	s.vdecs = make([][]*video.Decoder, n)
	for i := 0; i < n; i++ {
		enc, err := video.NewEncoder(video.Config{
			W: spec.VideoW, H: spec.VideoH, FPS: s.cfg.VideoFPS,
			TargetBps: spec.VideoTargetBps, Quality: 1,
			GOP: int(s.cfg.VideoFPS) * 2, SkipThreshold: 2,
		})
		if err != nil {
			return err
		}
		s.encoders[i] = enc
		s.scenes[i] = video.NewScene(s.rng.Split(fmt.Sprintf("scene%d", i)), spec.VideoW, spec.VideoH, s.cfg.VideoFPS)
		pt := rtp.PTGenericVideo
		if s.cfg.App == FaceTime {
			pt = rtp.PTFaceTimeVideo
		}
		s.packers[i] = rtp.NewPacketizer(pt, rtp.VideoSSRC(i))
		s.depacks[i] = make([]*rtp.Depacketizer, n)
		s.vdecs[i] = make([]*video.Decoder, n)
		for j := 0; j < n; j++ {
			if j != i {
				s.depacks[i][j] = rtp.NewDepacketizer()
				s.vdecs[i][j] = video.NewDecoder()
			}
		}
	}
	if s.cfg.RateControl != nil {
		if err := s.setupRateControl(spec.VideoTargetBps); err != nil {
			return err
		}
	}
	if rcv := s.cfg.Recovery; rcv != nil && s.recPlan.Active() {
		ecfg := rcv.engineConfig()
		s.recSend = make([]*recovery.Sender, n)
		s.recRecv = make([][]*recovery.Receiver, n)
		for i := 0; i < n; i++ {
			snd, err := recovery.NewSender(rcv.strategy(), ecfg)
			if err != nil {
				return err
			}
			s.recSend[i] = snd
			s.recRecv[i] = make([]*recovery.Receiver, n)
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				rr, err := recovery.NewReceiver(rcv.strategy(), ecfg)
				if err != nil {
					return err
				}
				s.recRecv[i][j] = rr
			}
		}
		if s.recPlan.Adaptive {
			// Hybrid adapts redundancy from receiver-report loss even when
			// no rate controller is attached.
			s.setupFeedback()
		}
	}
	// Jitter-buffer timeout horizon: an incomplete frame stalls the
	// in-order anchor (decoders wait for a packet that may never come);
	// after FrameTimeout it is abandoned and later frames deliver. Under
	// NACK recovery the horizon stretches to cover the NACK deadline plus
	// two scan intervals, so a frame is never garbage-collected while its
	// retransmission budget is still live. Loss-free sessions never have a
	// frame pending that long, so the GC is a no-op for them.
	timeoutMs := float64(s.cfg.FrameTimeout) / float64(simtime.Millisecond)
	if s.recPlan.Nack {
		e := s.cfg.Recovery.engineConfig().WithDefaults()
		minMs := e.NackDeadlineMs + 2*float64(s.cfg.Recovery.interval())/float64(simtime.Millisecond)
		if timeoutMs < minMs {
			timeoutMs = minMs
		}
	}
	s.gcTicks = uint32(timeoutMs * 90) // FrameTimeout at the 90 kHz RTP clock

	if s.plan.P2P {
		// In P2P the pipe endpoints are shared; one handler per direction.
		// Receiver reports, NACKs and parity ride the same reverse link as
		// media and are demuxed off before RTP parsing.
		s.up[0].SetHandler(func(now simtime.Time, f netem.Frame) {
			if s.handleReportFrame(1, f.Payload, now) || s.handleRecoveryFrame(1, f.Payload, now) {
				return
			}
			s.deliverVideo(0, 1, f.Payload, f.Size, now)
		})
		s.up[1].SetHandler(func(now simtime.Time, f netem.Frame) {
			if s.handleReportFrame(0, f.Payload, now) || s.handleRecoveryFrame(0, f.Payload, now) {
				return
			}
			s.deliverVideo(1, 0, f.Payload, f.Size, now)
		})
	} else {
		procDelay := simtime.Duration(SpecFor(s.cfg.App).ServerProcMs * float64(simtime.Millisecond))
		for i := 0; i < n; i++ {
			i := i
			s.up[i].SetHandler(func(now simtime.Time, f netem.Frame) {
				// SFU fan-out: take ownership of the delivered payload
				// (the sender never reuses packet buffers) instead of
				// copying it, and carry it to the forwarding instant in a
				// pooled job rather than a fresh closure. Receiver reports
				// relay exactly like media: the SFU is payload-agnostic.
				j := s.getRelayJob()
				j.from, j.size, j.pkt = i, f.Size, f.Payload
				s.sched.AfterArgSite(procDelay, relayFn, j, s.relaySite)
			})
			s.down[i].SetHandler(func(now simtime.Time, f netem.Frame) {
				if s.handleReportFrame(i, f.Payload, now) || s.handleRecoveryFrame(i, f.Payload, now) {
					return
				}
				var h rtp.Header
				if _, err := h.Unmarshal(f.Payload); err != nil {
					return
				}
				sender, audio, ok := rtp.SenderOf(h.SSRC)
				if ok && !audio && sender < n && sender != i && s.depacks[sender][i] != nil {
					s.deliverVideo(sender, i, f.Payload, f.Size, now)
				}
			})
		}
	}

	// Receiver-report tickers: each receiver periodically reports every
	// remote stream back across its own uplink; the SFU (or the P2P pipe)
	// carries the report to the stream's sender like any other frame.
	// Builders exist when rate control or hybrid recovery needs reports.
	if s.builders != nil {
		for j := 0; j < n; j++ {
			j := j
			simtime.NewTickerSite(s.sched, s.reportInterval(), func(now simtime.Time) {
				for i := 0; i < n; i++ {
					b := s.builders[i][j]
					if b == nil || b.Received() == 0 {
						continue // stream not flowing yet
					}
					rep := b.MakeReport(now.Milliseconds())
					// The report buffer is retained by the network layer
					// until delivery, so each send owns a fresh one.
					wire := rep.Marshal(make([]byte, 0, rtp.ReportLen))
					s.up[j].Send(netem.Frame{Size: len(wire) + 28, Payload: wire})
				}
			}, s.sched.Site("vca/ratecontrol.report"))
		}
	}

	// Recovery scan tickers: each receiver periodically expires overdue
	// gaps and NACKs the rest, batched per remote stream (at most
	// MaxNackSeqs per packet); NACKs travel the receiver's own uplink like
	// reports, and the stream's sender answers with retransmissions.
	if s.recRecv != nil {
		for j := 0; j < n; j++ {
			j := j
			simtime.NewTickerSite(s.sched, s.cfg.Recovery.interval(), func(now simtime.Time) {
				nowMs := now.Milliseconds()
				for i := 0; i < n; i++ {
					rr := s.recRecv[i][j]
					if rr == nil {
						continue
					}
					var pre recSnap
					if s.tr != nil {
						pre = snapRecovery(rr)
					}
					s.dueScr = rr.Tick(nowMs, s.dueScr[:0])
					if s.tr != nil {
						if len(s.dueScr) > 0 {
							s.tr.NackSent(now, i, j, len(s.dueScr))
						}
						s.traceRepairDelta(now, i, j, rr, pre)
					}
					for off := 0; off < len(s.dueScr); off += rtp.MaxNackSeqs {
						end := off + rtp.MaxNackSeqs
						if end > len(s.dueScr) {
							end = len(s.dueScr)
						}
						nk := rtp.Nack{SSRC: rtp.VideoSSRC(i), Seqs: s.dueScr[off:end]}
						wire := nk.Marshal(make([]byte, 0, 8+2*(end-off)))
						s.up[j].Send(netem.Frame{Size: len(wire) + 28, Payload: wire})
					}
				}
			}, s.sched.Site("vca/recovery.scan"))
		}
	}

	// Senders. The stamp buffer is per-sender scratch (Packetize copies
	// frame bytes into each packet); the audio payload is a constant.
	interval := simtime.Duration(float64(simtime.Second) / s.cfg.VideoFPS)
	for i := 0; i < n; i++ {
		i := i
		audio := rtp.NewPacketizer(rtp.PTGenericAudio, rtp.AudioSSRC(i))
		if s.cfg.App == FaceTime {
			audio.PT = rtp.PTFaceTimeAudio
		}
		var stamped []byte
		simtime.NewTickerSite(s.sched, interval, func(now simtime.Time) {
			frame := s.scenes[i].Next()
			ef, err := s.encoders[i].Encode(frame)
			if err != nil {
				return
			}
			s.stats[i].FramesSent++
			if cap(stamped) < 8+len(ef.Data) {
				stamped = make([]byte, 8+len(ef.Data))
			}
			stamped = stamped[:8+len(ef.Data)]
			putTime(stamped, now)
			copy(stamped[8:], ef.Data)
			if s.tr != nil {
				s.tr.FrameSent(now, i, len(stamped))
			}
			for _, pkt := range s.packers[i].Packetize(stamped, now.Seconds()) {
				var parity []byte
				if s.recSend != nil && s.recSend[i] != nil {
					// Cache for retransmission and advance the XOR group
					// (OnPacket copies; the network owns pkt after Send).
					parity = s.recSend[i].OnPacket(pkt)
				}
				s.up[i].Send(netem.Frame{Size: len(pkt) + 28, Payload: pkt}) // +IP/UDP overhead
				if parity != nil {
					if s.tr != nil {
						s.tr.ParitySent(now, i, len(parity))
					}
					s.up[i].Send(netem.Frame{Size: len(parity) + 28, Payload: parity})
				}
			}
		}, s.sched.Site("vca/rtp.frame"))
		audioBuf := make([]byte, 60)
		simtime.NewTickerSite(s.sched, 20*simtime.Millisecond, func(now simtime.Time) {
			for _, pkt := range audio.Packetize(audioBuf, now.Seconds()) {
				s.up[i].Send(netem.Frame{Size: len(pkt) + 28, Payload: pkt})
			}
		}, s.sched.Site("vca/rtp.audio"))
	}
	return nil
}

// Run executes the session and collects results.
func (s *Session) Run() *Results {
	s.sched.RunFor(s.cfg.Duration)
	n := len(s.cfg.Participants)
	res := &Results{Plan: s.plan, Users: make([]UserStats, n)}
	for i := 0; i < n; i++ {
		st := s.stats[i]
		st.ID = s.cfg.Participants[i].ID
		// Throughput and protocol come from the streaming AP aggregates,
		// computed online at the tap — no record scan, no retained packets.
		upName, downName := s.up[i].Name(), s.down[i].Name()
		st.Uplink = s.caps[i].EgressThroughputSample(upName)
		st.Downlink = s.caps[i].EgressThroughputSample(downName)
		cls, _ := s.caps[i].DominantClass(upName, downName)
		st.Protocol = analysis.Protocol(cls)
		if s.latN[i] > 0 {
			st.MeanFrameLatencyMs = s.latSum[i] / float64(s.latN[i])
		}
		if s.recRecv != nil {
			for k := 0; k < n; k++ {
				if rr := s.recRecv[k][i]; rr != nil {
					rst := rr.Stats()
					st.PacketsRepaired += int(rst.RepairedRtx + rst.RepairedFec)
					st.PacketsUnrepaired += int(rst.Unrepaired)
				}
			}
		}
		// Unavailability: stale gaps plus never-having-decoded time. A
		// participant who never decoded a single live remote frame was
		// unavailable for the whole session, whichever media the plan
		// carries.
		total := float64(s.cfg.Duration)
		stale := float64(s.staleNs[i])
		if s.lastDecode[i] == 0 {
			stale = total
		} else {
			// Tail gap after the last decode.
			if gap := s.sched.Now().Sub(s.lastDecode[i]); gap > s.cfg.FreshnessLimit {
				stale += float64(gap - s.cfg.FreshnessLimit)
			}
		}
		st.UnavailableFrac = stale / total
		res.Users[i] = st
	}
	return res
}
