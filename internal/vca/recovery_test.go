package vca

import (
	"reflect"
	"testing"

	"telepresence/internal/geo"
	"telepresence/internal/netem"
	"telepresence/internal/simtime"
)

// zoomP2P builds the standard lossy-path recovery session: a two-party Zoom
// call (P2P 2D video) with the freshness window tightened so frame-timeout
// stalls are visible in UnavailableFrac.
func zoomP2P(seed int64, rec *RecoveryConfig) SessionConfig {
	cfg := DefaultSessionConfig(Zoom, []Participant{
		vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
	})
	cfg.Duration = 8 * simtime.Second
	if testing.Short() {
		cfg.Duration = 4 * simtime.Second // keeps the -race -short CI job fast
	}
	cfg.Seed = seed
	cfg.FreshnessLimit = 200 * simtime.Millisecond
	cfg.Recovery = rec
	return cfg
}

func runWithBurst(t *testing.T, cfg SessionConfig) (*Session, *Results) {
	t.Helper()
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.UplinkShaper(0).Burst = netem.NewGilbertElliott(0.02, 0.25, 0.9)
	return sess, sess.Run()
}

// TestRecoveryOffIsInert pins the determinism gate: a session with
// Recovery == nil has no recovery state, and the "none" strategy — wired
// but inert — produces byte-identical results to nil under the same loss,
// proving the gate adds no events, no rng draws, and no behavior until a
// strategy is active.
func TestRecoveryOffIsInert(t *testing.T) {
	off, offRes := runWithBurst(t, zoomP2P(7, nil))
	if _, ok := off.RecoverySenderStats(0); ok {
		t.Error("Recovery=nil session has sender recovery state")
	}
	if _, ok := off.RecoveryReceiverStats(0, 1); ok {
		t.Error("Recovery=nil session has receiver recovery state")
	}
	if off.RecoveryOverheadRatio(0) != 0 {
		t.Error("Recovery=nil session reports overhead")
	}
	if offRes.Users[1].PacketsRepaired != 0 || offRes.Users[1].PacketsUnrepaired != 0 {
		t.Error("Recovery=nil session counted repairs")
	}
	_, noneRes := runWithBurst(t, zoomP2P(7, &RecoveryConfig{Strategy: "none"}))
	if !reflect.DeepEqual(offRes, noneRes) {
		t.Errorf("strategy \"none\" diverges from Recovery=nil:\nnil:  %+v\nnone: %+v",
			offRes.Users[1], noneRes.Users[1])
	}
}

// TestRecoveryRepairsBurstLoss pins the subsystem end to end on the P2P
// path: under a Gilbert-Elliott burst channel, every active strategy must
// repair packets, and hybrid must beat no-recovery on availability.
func TestRecoveryRepairsBurstLoss(t *testing.T) {
	_, none := runWithBurst(t, zoomP2P(7, nil))
	for _, strategy := range []string{"nack", "fec", "hybrid"} {
		sess, res := runWithBurst(t, zoomP2P(7, &RecoveryConfig{Strategy: strategy}))
		u := res.Users[1]
		if u.PacketsRepaired == 0 {
			t.Errorf("%s: no packets repaired through burst loss", strategy)
		}
		sst, ok := sess.RecoverySenderStats(0)
		if !ok {
			t.Fatalf("%s: no sender stats", strategy)
		}
		switch strategy {
		case "nack":
			if sst.RtxPackets == 0 || sst.ParityPackets != 0 {
				t.Errorf("nack sender stats %+v", sst)
			}
		case "fec":
			if sst.ParityPackets == 0 || sst.RtxPackets != 0 {
				t.Errorf("fec sender stats %+v", sst)
			}
		case "hybrid":
			if sst.ParityPackets == 0 {
				t.Errorf("hybrid sender sent no parity: %+v", sst)
			}
		}
		rst, _ := sess.RecoveryReceiverStats(0, 1)
		if got := rst.RepairedRtx + rst.RepairedFec + rst.Unrepaired; rst.Missed < got {
			t.Errorf("%s: accounting broken: missed %d < settled %d", strategy, rst.Missed, got)
		}
		if strategy == "hybrid" {
			// The availability margin needs a full-length session; the
			// repair machinery itself is asserted above at any length.
			if !testing.Short() && u.UnavailableFrac >= none.Users[1].UnavailableFrac {
				t.Errorf("hybrid unavailable %.3f not below no-recovery %.3f",
					u.UnavailableFrac, none.Users[1].UnavailableFrac)
			}
			if len(rst.RepairDelaysMs) == 0 {
				t.Error("hybrid recorded no repair delays")
			}
		}
	}
}

// TestRecoveryAcrossSFU proves NACKs, retransmissions and parity survive
// the server relay: a Teams call (always SFU) under burst loss must still
// repair packets end to end.
func TestRecoveryAcrossSFU(t *testing.T) {
	cfg := DefaultSessionConfig(Teams, []Participant{
		vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
	})
	cfg.Duration = 6 * simtime.Second
	if testing.Short() {
		cfg.Duration = 4 * simtime.Second
	}
	cfg.Seed = 9
	cfg.VideoFPS = 15
	cfg.Recovery = &RecoveryConfig{Strategy: "hybrid"}
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Plan().P2P {
		t.Fatal("Teams planned P2P; SFU path not exercised")
	}
	sess.UplinkShaper(0).Burst = netem.NewGilbertElliott(0.02, 0.25, 0.9)
	res := sess.Run()
	if res.Users[1].PacketsRepaired == 0 {
		t.Error("no packets repaired across the SFU")
	}
	if sst, _ := sess.RecoverySenderStats(0); sst.RtxPackets == 0 && sst.ParityPackets == 0 {
		t.Errorf("sender emitted no recovery traffic: %+v", sst)
	}
}

// TestRecoveryChargedAgainstRateTarget pins the rate-budget interaction:
// with gcc rate control and hybrid recovery on the same capped link, the
// encoder target is reduced by the redundancy overhead, so media plus
// parity plus RTX stay within the controller's grant.
func TestRecoveryChargedAgainstRateTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("controller convergence needs a 10 s session; skipped in -short")
	}
	cfg := zoomP2P(5, &RecoveryConfig{Strategy: "hybrid"})
	cfg.Duration = 10 * simtime.Second
	cfg.RateControl = &RateControlConfig{Controller: "gcc"}
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.UplinkShaper(0).RateBps = 0.9e6
	sess.UplinkShaper(0).Burst = netem.NewGilbertElliott(0.01, 0.3, 0.9)
	sess.Run()
	overhead := sess.RecoveryOverheadRatio(0)
	if overhead <= 0 {
		t.Fatal("no redundancy overhead measured")
	}
	// The applied target (mean) must sit below the raw controller target:
	// the redundancy charge divides it by 1+overhead.
	applied := sess.RateTargetMeanBps(0)
	raw := sess.RateController(0).TargetBps()
	if applied <= 0 || raw <= 0 {
		t.Fatal("no targets recorded")
	}
	if enc := sess.encoders[0].TargetBps(); enc > raw/(1+overhead)*1.001 && enc > 150e3 {
		t.Errorf("encoder target %.0f above charged budget %.0f (raw %.0f, overhead %.2f)",
			enc, raw/(1+overhead), raw, overhead)
	}
}

// TestRecoveryRejectsSpatial: spatial sessions stream over reliable QUIC;
// wiring RTP-level recovery into one is a configuration error.
func TestRecoveryRejectsSpatial(t *testing.T) {
	cfg := DefaultSessionConfig(FaceTime, []Participant{
		vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
	})
	cfg.Duration = simtime.Second
	cfg.Recovery = &RecoveryConfig{Strategy: "hybrid"}
	if _, err := NewSession(cfg); err == nil {
		t.Fatal("spatial session accepted active recovery")
	}
	// The inert "none" strategy is allowed anywhere.
	cfg.Recovery = &RecoveryConfig{Strategy: "none"}
	if _, err := NewSession(cfg); err != nil {
		t.Fatalf("spatial session rejected inert recovery: %v", err)
	}
	cfg.Recovery = &RecoveryConfig{Strategy: "bogus"}
	if _, err := NewSession(cfg); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestFrameTimeoutCoordination pins the satellite contract: the
// depacketizer horizon honors SessionConfig.FrameTimeout, and under NACK
// recovery it can never undercut the NACK deadline plus two scan intervals
// — a NACK'd frame must survive its retry budget.
func TestFrameTimeoutCoordination(t *testing.T) {
	mk := func(mut func(*SessionConfig)) *Session {
		cfg := zoomP2P(1, nil)
		mut(&cfg)
		sess, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	if got := mk(func(*SessionConfig) {}).gcTicks; got != 200*90 {
		t.Errorf("default horizon %d ticks, want %d (DefaultFrameTimeout)", got, 200*90)
	}
	if got := mk(func(c *SessionConfig) { c.FrameTimeout = 500 * simtime.Millisecond }).gcTicks; got != 500*90 {
		t.Errorf("custom horizon %d ticks, want %d", got, 500*90)
	}
	// A short frame timeout is stretched to cover the NACK budget:
	// deadline 160 ms + 2 x 25 ms scans = 210 ms > the configured 100 ms.
	short := mk(func(c *SessionConfig) {
		c.FrameTimeout = 100 * simtime.Millisecond
		c.Recovery = &RecoveryConfig{Strategy: "nack"}
	})
	if got := short.gcTicks; got != 210*90 {
		t.Errorf("nack-coordinated horizon %d ticks, want %d", got, 210*90)
	}
	// FEC-only recovery leaves the configured timeout alone.
	fec := mk(func(c *SessionConfig) {
		c.FrameTimeout = 100 * simtime.Millisecond
		c.Recovery = &RecoveryConfig{Strategy: "fec"}
	})
	if got := fec.gcTicks; got != 100*90 {
		t.Errorf("fec horizon %d ticks, want %d", got, 100*90)
	}
}
