package vca

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"telepresence/internal/geo"
	"telepresence/internal/simtime"
	"telepresence/internal/telemetry"
)

// telemetrySession is the standard traced session: Zoom P2P under burst
// loss with hybrid recovery and gcc rate control, so every event category
// (netem, rate, recovery, vca) fires.
func telemetrySession(t *testing.T, tc *TelemetryConfig) (*Session, *Results) {
	t.Helper()
	cfg := zoomP2P(7, &RecoveryConfig{Strategy: "hybrid"})
	cfg.RateControl = &RateControlConfig{Controller: "gcc"}
	cfg.Telemetry = tc
	return runWithBurst(t, cfg)
}

// TestTelemetryOffIsInert pins the zero-cost gate: attaching a tracer and
// a metrics registry must not change a single session result — telemetry
// observes but never steers. Combined with the untouched golden suite
// (Telemetry is nil there), this proves nil telemetry is behaviorally
// absent and enabled telemetry is read-only.
func TestTelemetryOffIsInert(t *testing.T) {
	_, off := telemetrySession(t, nil)

	var trace, metrics bytes.Buffer
	tc := &TelemetryConfig{
		Trace:   telemetry.NewTracer(&trace),
		Metrics: telemetry.NewMetrics(&metrics, telemetry.FormatCSV),
	}
	_, on := telemetrySession(t, tc)

	if !reflect.DeepEqual(off, on) {
		t.Errorf("enabled telemetry changed session results:\noff: %+v\non:  %+v",
			off.Users[1], on.Users[1])
	}
	if tc.Trace.Events() == 0 {
		t.Error("enabled tracer saw no events")
	}
	if err := tc.Trace.Err(); err != nil {
		t.Error(err)
	}
	if tc.Metrics.Rows() == 0 {
		t.Error("enabled metrics sampled no rows")
	}
	header, _, _ := strings.Cut(metrics.String(), "\n")
	for _, col := range []string{"t_ms", "target_bps/u0", "achieved_up_bps/u1", "queue_up_bytes/u0", "loss_ewma/u0", "repaired/u1", "frames_outstanding/u1"} {
		if !strings.Contains(header, col) {
			t.Errorf("metrics header missing %q: %s", col, header)
		}
	}

	// An empty TelemetryConfig (both outputs nil) must also run clean.
	_, empty := telemetrySession(t, &TelemetryConfig{})
	if !reflect.DeepEqual(off, empty) {
		t.Error("empty TelemetryConfig diverges from nil")
	}
}

// TestTelemetryTraceIsDeterministic pins rule 2 of the tracer contract:
// the same seed yields a byte-identical trace and metrics timeseries.
func TestTelemetryTraceIsDeterministic(t *testing.T) {
	run := func() (string, string) {
		var trace, metrics bytes.Buffer
		telemetrySession(t, &TelemetryConfig{
			Trace:   telemetry.NewTracer(&trace),
			Metrics: telemetry.NewMetrics(&metrics, telemetry.FormatCSV),
		})
		return trace.String(), metrics.String()
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 {
		t.Error("same seed produced different trace bytes")
	}
	if m1 != m2 {
		t.Error("same seed produced different metrics bytes")
	}
}

// TestTraceSummarizeReproducesUserStats is the acceptance gate: replaying
// the event stream alone must reproduce the session's end-of-run UserStats
// frame and repair counters exactly. It holds because the emission sites
// diff the same engine counters UserStats is built from.
func TestTraceSummarizeReproducesUserStats(t *testing.T) {
	var trace bytes.Buffer
	_, res := telemetrySession(t, &TelemetryConfig{Trace: telemetry.NewTracer(&trace)})

	sum, err := telemetry.Summarize(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("trace does not summarize: %v", err)
	}
	if sum.Events == 0 {
		t.Fatal("empty trace")
	}
	for i, u := range res.Users {
		sent, thinned, decoded, undecodable, repaired, unrepaired := sum.UserFrameCounts(i)
		if sent != int64(u.FramesSent) {
			t.Errorf("u%d FramesSent: trace %d, stats %d", i, sent, u.FramesSent)
		}
		if thinned != int64(u.FramesThinned) {
			t.Errorf("u%d FramesThinned: trace %d, stats %d", i, thinned, u.FramesThinned)
		}
		if decoded != int64(u.FramesDecoded) {
			t.Errorf("u%d FramesDecoded: trace %d, stats %d", i, decoded, u.FramesDecoded)
		}
		if undecodable != int64(u.FramesUndecodable) {
			t.Errorf("u%d FramesUndecodable: trace %d, stats %d", i, undecodable, u.FramesUndecodable)
		}
		if repaired != int64(u.PacketsRepaired) {
			t.Errorf("u%d PacketsRepaired: trace %d, stats %d", i, repaired, u.PacketsRepaired)
		}
		if unrepaired != int64(u.PacketsUnrepaired) {
			t.Errorf("u%d PacketsUnrepaired: trace %d, stats %d", i, unrepaired, u.PacketsUnrepaired)
		}
	}
	// The burst channel must actually have exercised the loss machinery,
	// or the equalities above are vacuous.
	if _, _, _, _, repaired, _ := sum.UserFrameCounts(1); repaired == 0 {
		t.Error("no repairs traced under burst loss — test lost its teeth")
	}
}

// TestTelemetrySpatialSessionTraces covers the spatial-persona path
// (FaceTime QUIC media: frame_sent/thinned/decoded flow through the
// spatial emitters) and the summarize bridge on it.
func TestTelemetrySpatialSessionTraces(t *testing.T) {
	cfg := DefaultSessionConfig(FaceTime, []Participant{
		vp("u1", geo.Ashburn), vp("u2", geo.NewYork),
	})
	cfg.Duration = 6 * simtime.Second
	cfg.Seed = 11
	cfg.RateControl = &RateControlConfig{Controller: "gcc"}
	var trace bytes.Buffer
	cfg.Telemetry = &TelemetryConfig{Trace: telemetry.NewTracer(&trace)}
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Squeeze the uplink so the controller sheds rate by thinning frames.
	sess.UplinkShaper(0).RateBps = 0.7e6
	res := sess.Run()

	sum, err := telemetry.Summarize(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range res.Users {
		sent, thinned, decoded, undecodable, _, _ := sum.UserFrameCounts(i)
		if sent != int64(u.FramesSent) || thinned != int64(u.FramesThinned) ||
			decoded != int64(u.FramesDecoded) || undecodable != int64(u.FramesUndecodable) {
			t.Errorf("u%d trace (%d,%d,%d,%d) != stats (%d,%d,%d,%d)", i,
				sent, thinned, decoded, undecodable,
				u.FramesSent, u.FramesThinned, u.FramesDecoded, u.FramesUndecodable)
		}
	}
	if _, thinned, _, _, _, _ := sum.UserFrameCounts(0); thinned == 0 {
		t.Error("capped spatial sender thinned no frames — thinning path untraced")
	}
}
