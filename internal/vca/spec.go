// Package vca models the four videoconferencing applications the paper
// measures — Apple FaceTime, Zoom, Cisco Webex and Microsoft Teams — at the
// level the measurements see them: server fleets and allocation policy
// (§4.1), transport and media-type selection per device mix (§4.1, §4.3),
// and full telepresence sessions over the emulated network (§4.2, §4.5).
package vca

import (
	"fmt"

	"telepresence/internal/geo"
)

// App identifies a videoconferencing application.
type App int

// The measured applications.
const (
	FaceTime App = iota
	Zoom
	Webex
	Teams
)

func (a App) String() string {
	switch a {
	case FaceTime:
		return "FaceTime"
	case Zoom:
		return "Zoom"
	case Webex:
		return "Webex"
	case Teams:
		return "Teams"
	default:
		return fmt.Sprintf("App(%d)", int(a))
	}
}

// Apps lists all measured applications.
func Apps() []App { return []App{FaceTime, Zoom, Webex, Teams} }

// Device is a participant's hardware.
type Device int

// Device types from the paper's testbed (Figure 3).
const (
	VisionPro Device = iota
	MacBook
	IPad
	IPhone
)

func (d Device) String() string {
	switch d {
	case VisionPro:
		return "VisionPro"
	case MacBook:
		return "MacBook"
	case IPad:
		return "iPad"
	case IPhone:
		return "iPhone"
	default:
		return fmt.Sprintf("Device(%d)", int(d))
	}
}

// MediaKind is what a session delivers.
type MediaKind int

// Media kinds.
const (
	// MediaSpatialPersona is semantic keypoint delivery (FaceTime,
	// all-Vision-Pro).
	MediaSpatialPersona MediaKind = iota
	// Media2DVideo is conventional encoded video (all other cases).
	Media2DVideo
)

func (m MediaKind) String() string {
	if m == MediaSpatialPersona {
		return "spatial-persona"
	}
	return "2d-video"
}

// Transport is the wire protocol of a session.
type Transport int

// Transports.
const (
	TransportQUIC Transport = iota
	TransportRTP
)

func (t Transport) String() string {
	if t == TransportQUIC {
		return "QUIC"
	}
	return "RTP"
}

// Spec captures everything the simulation needs to impersonate one app.
type Spec struct {
	App App
	// Servers is the US fleet the paper geolocated (§4.1).
	Servers []geo.Location
	// P2PTwoParty: direct transfer with exactly two users (Zoom and
	// FaceTime), with FaceTime's all-Vision-Pro exception handled in
	// SessionPlan.
	P2PTwoParty bool
	// SupportsSpatial marks spatial-persona capability (FaceTime only as
	// of the paper's measurement).
	SupportsSpatial bool
	// VideoW/VideoH are the 2D-persona resolutions the paper observed
	// (§4.2: Webex 1920x1080, Zoom 640x360).
	VideoW, VideoH int
	// VideoTargetBps is the encoder's rate-control target.
	VideoTargetBps float64
	// AudioBps is the constant audio stream rate.
	AudioBps float64
	// ServerProcMs is per-forward processing latency at the server.
	ServerProcMs float64
}

// SpecFor returns the application model. Fleet locations follow §4.1:
// FaceTime {VA,IL,CA,TX}, Zoom {VA,CA}, Webex {NJ,CA,TX}, Teams {WA}.
func SpecFor(app App) Spec {
	switch app {
	case FaceTime:
		return Spec{
			App:             FaceTime,
			Servers:         []geo.Location{geo.ServerVA, geo.ServerIL, geo.ServerCA, geo.ServerTX},
			P2PTwoParty:     true,
			SupportsSpatial: true,
			VideoW:          1024, VideoH: 768,
			VideoTargetBps: 1.9e6,
			AudioBps:       24e3,
			ServerProcMs:   1.5,
		}
	case Zoom:
		return Spec{
			App:         Zoom,
			Servers:     []geo.Location{geo.ServerVA, geo.ServerCA},
			P2PTwoParty: true,
			VideoW:      640, VideoH: 360,
			VideoTargetBps: 1.4e6,
			AudioBps:       24e3,
			ServerProcMs:   1.5,
		}
	case Webex:
		return Spec{
			App:     Webex,
			Servers: []geo.Location{geo.ServerNJ, geo.ServerCA, geo.ServerTX},
			VideoW:  1920, VideoH: 1080,
			VideoTargetBps: 4.3e6,
			AudioBps:       24e3,
			ServerProcMs:   2.0,
		}
	case Teams:
		return Spec{
			App:     Teams,
			Servers: []geo.Location{geo.ServerWA},
			VideoW:  1280, VideoH: 720,
			VideoTargetBps: 2.6e6,
			AudioBps:       24e3,
			ServerProcMs:   2.0,
		}
	default:
		panic(fmt.Sprintf("vca: unknown app %d", int(app)))
	}
}

// AllocateServer implements the policy the paper observed on every VCA: the
// server closest to the session initiator, regardless of the other
// participants (§4.1).
func (s Spec) AllocateServer(initiator geo.Location) geo.Location {
	srv, _ := geo.Nearest(initiator, s.Servers)
	return srv
}

// Participant describes one session member.
type Participant struct {
	ID     string
	Loc    geo.Location
	Device Device
}

// Plan is the connectivity/media decision for a session, derived from the
// paper's §4.1 findings.
type Plan struct {
	App       App
	Media     MediaKind
	Transport Transport
	// P2P is set for direct two-party transfer (no server).
	P2P bool
	// Server is the allocated relay when P2P is false.
	Server geo.Location
}

// PlanSession reproduces the decision matrix of §4.1:
//
//   - Only FaceTime with ALL participants on Vision Pro delivers spatial
//     personas, over QUIC, and always via a server (the P2P exception).
//   - FaceTime otherwise ships (pre-rendered) 2D video over RTP, P2P when
//     two-party.
//   - Zoom is RTP, P2P when two-party; Webex/Teams are RTP via server.
func PlanSession(app App, parts []Participant, initiator int) (Plan, error) {
	if len(parts) < 2 {
		return Plan{}, fmt.Errorf("vca: session needs at least 2 participants, got %d", len(parts))
	}
	if initiator < 0 || initiator >= len(parts) {
		return Plan{}, fmt.Errorf("vca: initiator index %d out of range", initiator)
	}
	spec := SpecFor(app)
	if app == FaceTime && spec.SupportsSpatial && len(parts) > MaxSpatialUsers {
		return Plan{}, fmt.Errorf("vca: FaceTime supports at most %d spatial personas", MaxSpatialUsers)
	}

	allVP := true
	for _, p := range parts {
		if p.Device != VisionPro {
			allVP = false
			break
		}
	}

	plan := Plan{App: app, Media: Media2DVideo, Transport: TransportRTP}
	if app == FaceTime && allVP {
		plan.Media = MediaSpatialPersona
		plan.Transport = TransportQUIC
	}
	twoParty := len(parts) == 2
	spatialException := app == FaceTime && allVP // never P2P, even two-party
	if spec.P2PTwoParty && twoParty && !spatialException {
		plan.P2P = true
	} else {
		plan.Server = spec.AllocateServer(parts[initiator].Loc)
	}
	return plan, nil
}

// MaxSpatialUsers is FaceTime's spatial-persona participant cap (§1, §4.5).
const MaxSpatialUsers = 5
