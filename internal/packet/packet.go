// Package packet implements the wire formats of the simulated stack:
// IPv4-like and UDP-like headers with a layered decode model inspired by
// gopacket. Captured frames are parsed with these decoders so that analysis
// code works from bytes on the (virtual) wire, exactly like the paper's
// Wireshark methodology.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is a 4-byte network address, formatted like IPv4 dotted quads.
type Addr [4]byte

// String formats the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// ParseAddr parses a dotted quad. It returns an error for malformed input.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	var parts [4]int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &parts[0], &parts[1], &parts[2], &parts[3])
	if err != nil || n != 4 {
		return a, fmt.Errorf("packet: bad address %q", s)
	}
	for i, p := range parts {
		if p < 0 || p > 255 {
			return a, fmt.Errorf("packet: bad address octet %d in %q", p, s)
		}
		a[i] = byte(p)
	}
	return a, nil
}

// MustAddr parses a dotted quad and panics on error; for literals in tests
// and topology construction.
func MustAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Protocol numbers carried in the IPv4 header.
type Protocol uint8

// Supported protocols. Values match their real IANA counterparts where one
// exists so captures read naturally.
const (
	ProtoUDP Protocol = 17
	ProtoTCP Protocol = 6
)

func (p Protocol) String() string {
	switch p {
	case ProtoUDP:
		return "UDP"
	case ProtoTCP:
		return "TCP"
	default:
		return fmt.Sprintf("Proto(%d)", uint8(p))
	}
}

// Errors returned by decoders.
var (
	ErrTruncated = errors.New("packet: truncated")
	ErrBadHeader = errors.New("packet: malformed header")
)

// IPv4Header is the simulated network-layer header (20 bytes, no options).
type IPv4Header struct {
	TTL      uint8
	Protocol Protocol
	Src, Dst Addr
	// TotalLen covers header plus payload.
	TotalLen uint16
}

// IPv4HeaderLen is the encoded size of an IPv4Header.
const IPv4HeaderLen = 20

// Marshal appends the encoded header to b and returns the result.
func (h *IPv4Header) Marshal(b []byte) []byte {
	var w [IPv4HeaderLen]byte
	w[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(w[2:], h.TotalLen)
	w[8] = h.TTL
	w[9] = byte(h.Protocol)
	copy(w[12:16], h.Src[:])
	copy(w[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(w[10:], checksum(w[:]))
	return append(b, w[:]...)
}

// Unmarshal parses the header from b and returns the remaining payload.
func (h *IPv4Header) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < IPv4HeaderLen {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("%w: version %d", ErrBadHeader, b[0]>>4)
	}
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	h.TTL = b[8]
	h.Protocol = Protocol(b[9])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return b[IPv4HeaderLen:], nil
}

func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		if i == 10 { // skip the checksum field itself
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// UDPHeader is the simulated transport-layer header (8 bytes).
type UDPHeader struct {
	SrcPort, DstPort uint16
	// Length covers header plus payload.
	Length uint16
}

// UDPHeaderLen is the encoded size of a UDPHeader.
const UDPHeaderLen = 8

// Marshal appends the encoded header to b.
func (h *UDPHeader) Marshal(b []byte) []byte {
	var w [UDPHeaderLen]byte
	binary.BigEndian.PutUint16(w[0:], h.SrcPort)
	binary.BigEndian.PutUint16(w[2:], h.DstPort)
	binary.BigEndian.PutUint16(w[4:], h.Length)
	return append(b, w[:]...)
}

// Unmarshal parses the header from b and returns the remaining payload.
func (h *UDPHeader) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < UDPHeaderLen {
		return nil, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:])
	h.DstPort = binary.BigEndian.Uint16(b[2:])
	h.Length = binary.BigEndian.Uint16(b[4:])
	return b[UDPHeaderLen:], nil
}

// Datagram is a fully decoded IP/UDP packet.
type Datagram struct {
	IP      IPv4Header
	UDP     UDPHeader
	Payload []byte
}

// Encode builds the wire bytes for a UDP datagram from src:sport to
// dst:dport carrying payload. TotalLen/Length fields are filled in.
func Encode(src Addr, sport uint16, dst Addr, dport uint16, payload []byte) []byte {
	udp := UDPHeader{SrcPort: sport, DstPort: dport, Length: uint16(UDPHeaderLen + len(payload))}
	ip := IPv4Header{
		TTL: 64, Protocol: ProtoUDP, Src: src, Dst: dst,
		TotalLen: uint16(IPv4HeaderLen + UDPHeaderLen + len(payload)),
	}
	b := make([]byte, 0, int(ip.TotalLen))
	b = ip.Marshal(b)
	b = udp.Marshal(b)
	return append(b, payload...)
}

// Decode parses wire bytes into a Datagram. The payload aliases b.
func Decode(b []byte) (*Datagram, error) {
	var d Datagram
	rest, err := d.IP.Unmarshal(b)
	if err != nil {
		return nil, err
	}
	if d.IP.Protocol != ProtoUDP {
		return nil, fmt.Errorf("%w: protocol %v not UDP", ErrBadHeader, d.IP.Protocol)
	}
	rest, err = d.UDP.Unmarshal(rest)
	if err != nil {
		return nil, err
	}
	want := int(d.UDP.Length) - UDPHeaderLen
	if want < 0 || want > len(rest) {
		return nil, fmt.Errorf("%w: UDP length %d vs %d available", ErrTruncated, d.UDP.Length, len(rest)+UDPHeaderLen)
	}
	d.Payload = rest[:want]
	return &d, nil
}

// OverheadBytes is the per-packet cost of the simulated IP+UDP encapsulation
// used for throughput accounting when payloads are modeled virtually.
const OverheadBytes = IPv4HeaderLen + UDPHeaderLen

// FiveTuple identifies a flow.
type FiveTuple struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            Protocol
}

// Tuple extracts the flow five-tuple of a datagram.
func (d *Datagram) Tuple() FiveTuple {
	return FiveTuple{
		Src: d.IP.Src, Dst: d.IP.Dst,
		SrcPort: d.UDP.SrcPort, DstPort: d.UDP.DstPort,
		Proto: d.IP.Protocol,
	}
}

// Reverse returns the tuple of the opposite direction.
func (t FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: t.Dst, Dst: t.Src, SrcPort: t.DstPort, DstPort: t.SrcPort, Proto: t.Proto}
}

// String formats the tuple as "src:sport->dst:dport/proto".
func (t FiveTuple) String() string {
	return fmt.Sprintf("%v:%d->%v:%d/%v", t.Src, t.SrcPort, t.Dst, t.DstPort, t.Proto)
}
