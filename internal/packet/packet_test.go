package packet

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestAddrRoundTrip(t *testing.T) {
	for _, s := range []string{"0.0.0.0", "10.1.2.3", "255.255.255.255"} {
		a, err := ParseAddr(s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", s, err)
		}
		if a.String() != s {
			t.Errorf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "256.0.0.1", "a.b.c.d", "-1.0.0.0"} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) accepted", s)
		}
	}
}

func TestMustAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddr on garbage did not panic")
		}
	}()
	MustAddr("not-an-addr")
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	src, dst := MustAddr("10.0.0.1"), MustAddr("10.0.0.2")
	payload := []byte("spatial persona semantic frame")
	wire := Encode(src, 5000, dst, 443, payload)
	d, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if d.IP.Src != src || d.IP.Dst != dst {
		t.Errorf("addresses: %v->%v", d.IP.Src, d.IP.Dst)
	}
	if d.UDP.SrcPort != 5000 || d.UDP.DstPort != 443 {
		t.Errorf("ports: %d->%d", d.UDP.SrcPort, d.UDP.DstPort)
	}
	if !bytes.Equal(d.Payload, payload) {
		t.Errorf("payload mismatch")
	}
	if int(d.IP.TotalLen) != len(wire) {
		t.Errorf("TotalLen = %d, wire = %d", d.IP.TotalLen, len(wire))
	}
}

func TestDecodeTruncated(t *testing.T) {
	wire := Encode(Addr{1}, 1, Addr{2}, 2, []byte("hello"))
	for cut := 0; cut < len(wire); cut++ {
		if _, err := Decode(wire[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeBadVersion(t *testing.T) {
	wire := Encode(Addr{1}, 1, Addr{2}, 2, nil)
	wire[0] = 0x65 // version 6
	if _, err := Decode(wire); !errors.Is(err, ErrBadHeader) {
		t.Errorf("bad version error = %v", err)
	}
}

func TestDecodeNonUDP(t *testing.T) {
	wire := Encode(Addr{1}, 1, Addr{2}, 2, nil)
	wire[9] = byte(ProtoTCP)
	if _, err := Decode(wire); err == nil {
		t.Error("TCP datagram decoded as UDP")
	}
}

func TestFiveTuple(t *testing.T) {
	wire := Encode(MustAddr("1.1.1.1"), 10, MustAddr("2.2.2.2"), 20, nil)
	d, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	tup := d.Tuple()
	rev := tup.Reverse()
	if rev.Src != tup.Dst || rev.SrcPort != tup.DstPort || rev.Reverse() != tup {
		t.Errorf("Reverse broken: %v / %v", tup, rev)
	}
	if tup.String() != "1.1.1.1:10->2.2.2.2:20/UDP" {
		t.Errorf("String = %q", tup.String())
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoUDP.String() != "UDP" || ProtoTCP.String() != "TCP" {
		t.Error("known protocol strings wrong")
	}
	if Protocol(99).String() != "Proto(99)" {
		t.Errorf("unknown protocol string = %q", Protocol(99).String())
	}
}

// Property: Encode/Decode round-trips arbitrary payloads and endpoints.
func TestRoundTripProperty(t *testing.T) {
	f := func(src, dst [4]byte, sport, dport uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		wire := Encode(Addr(src), sport, Addr(dst), dport, payload)
		d, err := Decode(wire)
		if err != nil {
			return false
		}
		return d.IP.Src == Addr(src) && d.IP.Dst == Addr(dst) &&
			d.UDP.SrcPort == sport && d.UDP.DstPort == dport &&
			bytes.Equal(d.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: flipping any single header byte never panics the decoder.
func TestDecodeFuzzNoPanic(t *testing.T) {
	wire := Encode(MustAddr("9.9.9.9"), 1234, MustAddr("8.8.8.8"), 4321, bytes.Repeat([]byte{0xAB}, 64))
	for i := 0; i < len(wire); i++ {
		for _, v := range []byte{0x00, 0xFF, wire[i] ^ 0x80} {
			mut := append([]byte(nil), wire...)
			mut[i] = v
			_, _ = Decode(mut) // must not panic
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	var h IPv4Header
	h.TTL, h.Protocol = 64, ProtoUDP
	h.Src, h.Dst = MustAddr("1.2.3.4"), MustAddr("5.6.7.8")
	h.TotalLen = 100
	w := h.Marshal(nil)
	orig := checksum(w)
	w[12] ^= 0xFF // corrupt source address
	if checksum(w) == orig {
		t.Error("checksum unchanged after corruption")
	}
}

func BenchmarkEncode(b *testing.B) {
	payload := bytes.Repeat([]byte{1}, 900)
	src, dst := MustAddr("10.0.0.1"), MustAddr("10.0.0.2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(src, 5000, dst, 443, payload)
	}
}

func BenchmarkDecode(b *testing.B) {
	wire := Encode(MustAddr("10.0.0.1"), 5000, MustAddr("10.0.0.2"), 443, bytes.Repeat([]byte{1}, 900))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
