// Package mesh provides the 3D triangle-mesh substrate: the representation
// RealityKit reports for spatial personas (§3.2: "the 3D model of a spatial
// persona is represented as mesh"), procedural human-head generation
// standing in for the paper's Sketchfab scans (§4.3), and an edge-collapse
// simplifier that produces the exact LOD triangle counts the paper measured
// (78,030 / 45,036 / 21,036 / 36).
package mesh

import (
	"fmt"
	"math"

	"telepresence/internal/simrand"
)

// Vec3 is a 3D point or vector in meters.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a+b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a-b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a*s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{a.Y*b.Z - a.Z*b.Y, a.Z*b.X - a.X*b.Z, a.X*b.Y - a.Y*b.X}
}

// Len returns the Euclidean norm.
func (a Vec3) Len() float64 { return math.Sqrt(a.Dot(a)) }

// Mid returns the midpoint of a and b.
func (a Vec3) Mid(b Vec3) Vec3 { return a.Add(b).Scale(0.5) }

// Triangle indexes three vertices.
type Triangle [3]int32

// Mesh is an indexed triangle mesh.
type Mesh struct {
	Vertices  []Vec3
	Triangles []Triangle
}

// TriangleCount returns the number of triangles.
func (m *Mesh) TriangleCount() int { return len(m.Triangles) }

// VertexCount returns the number of vertices.
func (m *Mesh) VertexCount() int { return len(m.Vertices) }

// Validate checks structural invariants: indices in range and no degenerate
// triangles (repeated vertex indices).
func (m *Mesh) Validate() error {
	n := int32(len(m.Vertices))
	for i, t := range m.Triangles {
		for _, v := range t {
			if v < 0 || v >= n {
				return fmt.Errorf("mesh: triangle %d references vertex %d of %d", i, v, n)
			}
		}
		if t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
			return fmt.Errorf("mesh: triangle %d degenerate: %v", i, t)
		}
	}
	return nil
}

// Bounds returns the axis-aligned bounding box.
func (m *Mesh) Bounds() (min, max Vec3) {
	if len(m.Vertices) == 0 {
		return
	}
	min, max = m.Vertices[0], m.Vertices[0]
	for _, v := range m.Vertices[1:] {
		min.X = math.Min(min.X, v.X)
		min.Y = math.Min(min.Y, v.Y)
		min.Z = math.Min(min.Z, v.Z)
		max.X = math.Max(max.X, v.X)
		max.Y = math.Max(max.Y, v.Y)
		max.Z = math.Max(max.Z, v.Z)
	}
	return
}

// SurfaceArea sums the triangle areas.
func (m *Mesh) SurfaceArea() float64 {
	var area float64
	for _, t := range m.Triangles {
		a := m.Vertices[t[0]]
		b := m.Vertices[t[1]]
		c := m.Vertices[t[2]]
		area += b.Sub(a).Cross(c.Sub(a)).Len() / 2
	}
	return area
}

// Clone deep-copies the mesh.
func (m *Mesh) Clone() *Mesh {
	return &Mesh{
		Vertices:  append([]Vec3(nil), m.Vertices...),
		Triangles: append([]Triangle(nil), m.Triangles...),
	}
}

// Sphere builds a closed UV sphere with lon longitudinal segments and lat
// latitudinal bands. Triangle count is exactly 2*lon*(lat-1); vertex count
// is lon*(lat-1)+2.
func Sphere(lon, lat int, radius float64) *Mesh {
	if lon < 3 || lat < 2 {
		panic(fmt.Sprintf("mesh: sphere dims %dx%d too small", lon, lat))
	}
	m := &Mesh{}
	top := int32(0)
	m.Vertices = append(m.Vertices, Vec3{0, radius, 0})
	// Interior rings: lat-1 rings of lon vertices.
	for r := 1; r < lat; r++ {
		phi := math.Pi * float64(r) / float64(lat)
		for c := 0; c < lon; c++ {
			theta := 2 * math.Pi * float64(c) / float64(lon)
			m.Vertices = append(m.Vertices, Vec3{
				X: radius * math.Sin(phi) * math.Cos(theta),
				Y: radius * math.Cos(phi),
				Z: radius * math.Sin(phi) * math.Sin(theta),
			})
		}
	}
	bottom := int32(len(m.Vertices))
	m.Vertices = append(m.Vertices, Vec3{0, -radius, 0})

	ring := func(r, c int) int32 { return int32(1 + (r-1)*lon + c%lon) }
	// Top cap.
	for c := 0; c < lon; c++ {
		m.Triangles = append(m.Triangles, Triangle{top, ring(1, c+1), ring(1, c)})
	}
	// Bands.
	for r := 1; r < lat-1; r++ {
		for c := 0; c < lon; c++ {
			a, b := ring(r, c), ring(r, c+1)
			d, e := ring(r+1, c), ring(r+1, c+1)
			m.Triangles = append(m.Triangles, Triangle{a, b, e}, Triangle{a, e, d})
		}
	}
	// Bottom cap.
	for c := 0; c < lon; c++ {
		m.Triangles = append(m.Triangles, Triangle{bottom, ring(lat-1, c), ring(lat-1, c+1)})
	}
	return m
}

// PersonaTriangles is the triangle count RealityKit reports for a full-
// quality spatial persona mesh (§4.3).
const PersonaTriangles = 78030

// SphereDimsFor returns (lon, lat) such that a Sphere built with them has
// exactly the given triangle count, if an exact factorization exists with
// a reasonable aspect ratio; otherwise it returns the closest achievable
// dimensions. tris must be >= 12.
func SphereDimsFor(tris int) (lon, lat int) {
	if tris < 12 {
		tris = 12
	}
	half := tris / 2
	bestLon, bestRings, bestErr := 3, half/3, math.MaxFloat64
	// Search lon around sqrt(half) for the factorization minimizing count
	// error, preferring near-square aspect.
	for l := 3; l*l <= half*4; l++ {
		r := int(math.Round(float64(half) / float64(l)))
		if r < 1 {
			continue
		}
		count := 2 * l * r
		errv := math.Abs(float64(count-tris)) + 0.001*math.Abs(float64(l)-math.Sqrt(float64(half)))
		if errv < bestErr {
			bestErr, bestLon, bestRings = errv, l, r
		}
	}
	return bestLon, bestRings + 1
}

// HeadConfig controls procedural head generation.
type HeadConfig struct {
	// TargetTriangles is the approximate triangle budget; the paper's
	// Sketchfab heads range from ~70K to ~90K.
	TargetTriangles int
	// Radius is the base head radius in meters (human heads ~0.09-0.11).
	Radius float64
	// Variation scales the random per-head shape differences.
	Variation float64
}

// DefaultHeadConfig returns the full-quality persona head (78,030
// triangles).
func DefaultHeadConfig() HeadConfig {
	return HeadConfig{TargetTriangles: PersonaTriangles, Radius: 0.10, Variation: 1}
}

// GenerateHead builds a human-head-like closed mesh: an ellipsoidal scalp
// with chin, nose and brow displacement plus seeded low-frequency shape
// variation so that every generated head differs (the paper's ten scans).
func GenerateHead(rng *simrand.Source, cfg HeadConfig) *Mesh {
	if cfg.TargetTriangles == 0 {
		cfg = DefaultHeadConfig()
	}
	lon, lat := SphereDimsFor(cfg.TargetTriangles)
	m := Sphere(lon, lat, cfg.Radius)

	// Per-head random shape parameters.
	elong := 1.25 + 0.1*cfg.Variation*rng.Normal(0, 1)*0.3
	jawW := 0.85 + 0.05*rng.Normal(0, 1)*cfg.Variation
	noseAmp := cfg.Radius * (0.25 + 0.05*rng.Normal(0, 1)*cfg.Variation)
	browAmp := cfg.Radius * 0.08
	// Low-frequency lumpiness: a few random spherical waves.
	type wave struct{ kx, ky, kz, amp, phase float64 }
	waves := make([]wave, 5)
	for i := range waves {
		waves[i] = wave{
			kx:    rng.Uniform(1, 4),
			ky:    rng.Uniform(1, 4),
			kz:    rng.Uniform(1, 4),
			amp:   cfg.Radius * 0.02 * cfg.Variation * rng.Float64(),
			phase: rng.Uniform(0, 2*math.Pi),
		}
	}

	for i, v := range m.Vertices {
		dir := v.Scale(1 / cfg.Radius) // unit direction
		p := v
		// Ellipsoid elongation along Y (skull height).
		p.Y *= elong
		// Jaw narrowing below center.
		if p.Y < 0 {
			p.X *= jawW
			p.Z *= jawW
		}
		// Nose: forward bump around (0, -0.1, +1) direction.
		noseDir := Vec3{0, -0.15, 1}
		noseDot := dir.Dot(noseDir.Scale(1 / noseDir.Len()))
		if noseDot > 0.93 {
			t := (noseDot - 0.93) / 0.07
			p = p.Add(dir.Scale(noseAmp * t * t))
		}
		// Brow ridge.
		browDir := Vec3{0, 0.35, 1}
		browDot := dir.Dot(browDir.Scale(1 / browDir.Len()))
		if browDot > 0.95 {
			t := (browDot - 0.95) / 0.05
			p = p.Add(dir.Scale(browAmp * t))
		}
		// Lumpiness.
		var bump float64
		for _, w := range waves {
			bump += w.amp * math.Sin(w.kx*dir.X+w.ky*dir.Y+w.kz*dir.Z+w.phase)
		}
		p = p.Add(dir.Scale(bump))
		m.Vertices[i] = p
	}
	return m
}
