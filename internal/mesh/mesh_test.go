package mesh

import (
	"math"
	"testing"

	"telepresence/internal/simrand"
)

func TestVec3Ops(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Error("Add")
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Error("Sub")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Error("Scale")
	}
	if a.Dot(b) != 32 {
		t.Error("Dot")
	}
	if (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}) != (Vec3{0, 0, 1}) {
		t.Error("Cross")
	}
	if (Vec3{3, 4, 0}).Len() != 5 {
		t.Error("Len")
	}
	if a.Mid(b) != (Vec3{2.5, 3.5, 4.5}) {
		t.Error("Mid")
	}
}

func TestSphereCounts(t *testing.T) {
	cases := []struct{ lon, lat int }{{3, 2}, {8, 6}, {153, 256}, {16, 16}}
	for _, c := range cases {
		m := Sphere(c.lon, c.lat, 1)
		wantT := 2 * c.lon * (c.lat - 1)
		wantV := c.lon*(c.lat-1) + 2
		if m.TriangleCount() != wantT {
			t.Errorf("Sphere(%d,%d): %d triangles, want %d", c.lon, c.lat, m.TriangleCount(), wantT)
		}
		if m.VertexCount() != wantV {
			t.Errorf("Sphere(%d,%d): %d vertices, want %d", c.lon, c.lat, m.VertexCount(), wantV)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("Sphere(%d,%d) invalid: %v", c.lon, c.lat, err)
		}
	}
}

func TestSphereIsSpherical(t *testing.T) {
	m := Sphere(24, 24, 2.5)
	for i, v := range m.Vertices {
		if math.Abs(v.Len()-2.5) > 1e-9 {
			t.Fatalf("vertex %d at radius %v, want 2.5", i, v.Len())
		}
	}
	// Surface area approaches 4*pi*r^2.
	want := 4 * math.Pi * 2.5 * 2.5
	if got := m.SurfaceArea(); math.Abs(got-want)/want > 0.05 {
		t.Errorf("surface area %v, want ~%v", got, want)
	}
}

func TestSphereEulerCharacteristic(t *testing.T) {
	// Closed genus-0 surface: V - E + F = 2, and E = 3F/2.
	m := Sphere(20, 15, 1)
	V, F := m.VertexCount(), m.TriangleCount()
	E := 3 * F / 2
	if V-E+F != 2 {
		t.Errorf("Euler characteristic = %d, want 2", V-E+F)
	}
}

func TestSphereDimsForExactPersonaCounts(t *testing.T) {
	// The full persona count must be achieved exactly.
	lon, lat := SphereDimsFor(PersonaTriangles)
	if got := 2 * lon * (lat - 1); got != PersonaTriangles {
		t.Errorf("SphereDimsFor(78030) -> %d triangles", got)
	}
}

func TestSphereDimsForApproximate(t *testing.T) {
	for _, target := range []int{70000, 75000, 80000, 90000, 12, 500} {
		lon, lat := SphereDimsFor(target)
		got := 2 * lon * (lat - 1)
		if math.Abs(float64(got-target)) > float64(target)*0.02+10 {
			t.Errorf("SphereDimsFor(%d) -> %d (off by %d)", target, got, got-target)
		}
	}
}

func TestGenerateHeadFullQuality(t *testing.T) {
	m := GenerateHead(simrand.New(1), DefaultHeadConfig())
	if m.TriangleCount() != PersonaTriangles {
		t.Errorf("head has %d triangles, want %d", m.TriangleCount(), PersonaTriangles)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Head-sized bounding box (~20 cm scale).
	min, max := m.Bounds()
	for _, d := range []float64{max.X - min.X, max.Y - min.Y, max.Z - min.Z} {
		if d < 0.1 || d > 0.5 {
			t.Errorf("head extent %v m implausible", d)
		}
	}
	// Taller than wide (elongated skull).
	if (max.Y - min.Y) <= (max.X - min.X) {
		t.Error("head not elongated along Y")
	}
}

func TestGenerateHeadsDiffer(t *testing.T) {
	cfg := HeadConfig{TargetTriangles: 5000, Radius: 0.1, Variation: 1}
	a := GenerateHead(simrand.New(1), cfg)
	b := GenerateHead(simrand.New(2), cfg)
	if a.TriangleCount() != b.TriangleCount() {
		t.Fatal("same config, different counts")
	}
	diff := 0.0
	for i := range a.Vertices {
		diff += a.Vertices[i].Sub(b.Vertices[i]).Len()
	}
	if diff/float64(len(a.Vertices)) < 1e-5 {
		t.Error("two seeded heads are identical")
	}
}

func TestGenerateHeadDeterministic(t *testing.T) {
	cfg := HeadConfig{TargetTriangles: 2000, Radius: 0.1, Variation: 1}
	a := GenerateHead(simrand.New(7), cfg)
	b := GenerateHead(simrand.New(7), cfg)
	for i := range a.Vertices {
		if a.Vertices[i] != b.Vertices[i] {
			t.Fatal("head generation not deterministic")
		}
	}
}

func TestSimplifyExactCount(t *testing.T) {
	m := Sphere(40, 40, 1) // 3120 triangles
	for _, target := range []int{3120, 2000, 1001, 500, 36} {
		s, err := Simplify(m, target)
		if err != nil {
			t.Fatalf("Simplify(%d): %v", target, err)
		}
		if got := s.TriangleCount(); got > target {
			t.Errorf("Simplify(%d) -> %d triangles", target, got)
		}
		// Collapse removes 2 per step, so we can land at target or
		// target-1... but on a closed mesh exactly target for even diff.
		if got := s.TriangleCount(); target-got > 1 {
			t.Errorf("Simplify(%d) undershot to %d", target, got)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("Simplify(%d) invalid: %v", target, err)
		}
	}
}

func TestSimplifyPreservesShapeRoughly(t *testing.T) {
	m := Sphere(40, 40, 1)
	s, err := Simplify(m, 800)
	if err != nil {
		t.Fatal(err)
	}
	// Vertices should stay near the unit sphere.
	for _, v := range s.Vertices {
		if v.Len() < 0.8 || v.Len() > 1.1 {
			t.Fatalf("simplified vertex at radius %v", v.Len())
		}
	}
	// Surface area shrinks but stays within 25% of the sphere.
	want := 4 * math.Pi
	if got := s.SurfaceArea(); got < want*0.75 || got > want*1.05 {
		t.Errorf("simplified area %v, want ~%v", got, want)
	}
}

func TestSimplifyErrors(t *testing.T) {
	m := Sphere(8, 8, 1)
	if _, err := Simplify(m, 2); err == nil {
		t.Error("target 2 accepted")
	}
	if _, err := Simplify(m, m.TriangleCount()+1); err == nil {
		t.Error("target above input accepted")
	}
}

func TestLODChainMatchesPaperCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full persona LOD chain is slow")
	}
	full := GenerateHead(simrand.New(3), DefaultHeadConfig())
	lods, err := LODChain(full)
	if err != nil {
		t.Fatal(err)
	}
	want := PersonaLODTriangles()
	if len(lods) != len(want) {
		t.Fatalf("%d LODs, want %d", len(lods), len(want))
	}
	for i, l := range lods {
		if got := l.TriangleCount(); got != want[i] {
			t.Errorf("LOD %d: %d triangles, want %d", i, got, want[i])
		}
		if err := l.Validate(); err != nil {
			t.Errorf("LOD %d invalid: %v", i, err)
		}
	}
}

func TestBoundsEmpty(t *testing.T) {
	var m Mesh
	min, max := m.Bounds()
	if min != (Vec3{}) || max != (Vec3{}) {
		t.Error("empty mesh bounds nonzero")
	}
}

func TestValidateCatchesBadMesh(t *testing.T) {
	m := &Mesh{Vertices: []Vec3{{}, {}, {}}, Triangles: []Triangle{{0, 1, 5}}}
	if err := m.Validate(); err == nil {
		t.Error("out-of-range index accepted")
	}
	m2 := &Mesh{Vertices: []Vec3{{}, {}, {}}, Triangles: []Triangle{{0, 1, 1}}}
	if err := m2.Validate(); err == nil {
		t.Error("degenerate triangle accepted")
	}
}

func BenchmarkGenerateHead(b *testing.B) {
	rng := simrand.New(1)
	cfg := DefaultHeadConfig()
	for i := 0; i < b.N; i++ {
		GenerateHead(rng, cfg)
	}
}

func BenchmarkSimplifyHalve(b *testing.B) {
	m := Sphere(60, 60, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simplify(m, m.TriangleCount()/2); err != nil {
			b.Fatal(err)
		}
	}
}
