package mesh

import (
	"container/heap"
	"fmt"
)

// Simplify reduces m to exactly targetTriangles using shortest-edge
// collapse, the classic LOD-generation algorithm. On a closed manifold each
// collapse removes exactly two triangles, which is what lets the persona LOD
// chain hit the paper's exact counts (78,030 -> 45,036 -> 21,036 -> 36). The
// input is not modified; the simplified mesh is returned.
//
// Simplify refuses targets below 4 (a closed surface needs at least a
// tetrahedron) and targets of different parity than reachable.
func Simplify(m *Mesh, targetTriangles int) (*Mesh, error) {
	if targetTriangles < 4 {
		return nil, fmt.Errorf("mesh: target %d below minimum closed surface", targetTriangles)
	}
	if targetTriangles > m.TriangleCount() {
		return nil, fmt.Errorf("mesh: target %d above input %d", targetTriangles, m.TriangleCount())
	}
	if targetTriangles == m.TriangleCount() {
		return m.Clone(), nil
	}

	verts := append([]Vec3(nil), m.Vertices...)
	faces := append([]Triangle(nil), m.Triangles...)
	alive := make([]bool, len(faces))
	for i := range alive {
		alive[i] = true
	}
	// parent implements union-find over collapsed vertices.
	parent := make([]int32, len(verts))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}

	// Vertex -> incident face ids.
	vfaces := make([][]int32, len(verts))
	for fi, f := range faces {
		for _, v := range f {
			vfaces[v] = append(vfaces[v], int32(fi))
		}
	}

	// Edge heap keyed by squared length, lazily invalidated via vertex
	// versions.
	version := make([]int32, len(verts))
	h := &edgeHeap{}
	pushEdges := func(f Triangle) {
		for e := 0; e < 3; e++ {
			a, b := find(f[e]), find(f[(e+1)%3])
			if a == b {
				continue
			}
			d := verts[a].Sub(verts[b])
			heap.Push(h, edge{a, b, version[a], version[b], d.Dot(d)})
		}
	}
	for fi, f := range faces {
		if alive[fi] {
			pushEdges(f)
		}
	}

	live := len(faces)
	for live > targetTriangles && h.Len() > 0 {
		e := heap.Pop(h).(edge)
		a, b := find(e.a), find(e.b)
		if a == b || e.va != version[a] || e.vb != version[b] {
			continue // stale entry
		}
		// Collapse b into a at the midpoint.
		verts[a] = verts[a].Mid(verts[b])
		parent[b] = a
		version[a]++

		merged := append(vfaces[a], vfaces[b]...)
		var keep []int32
		for _, fi := range merged {
			if !alive[fi] {
				continue
			}
			f := faces[fi]
			r0, r1, r2 := find(f[0]), find(f[1]), find(f[2])
			if r0 == r1 || r1 == r2 || r0 == r2 {
				alive[fi] = false
				live--
				continue
			}
			keep = append(keep, fi)
		}
		vfaces[a] = keep
		vfaces[b] = nil
		// Re-push edges around the merged vertex with fresh versions.
		for _, fi := range keep {
			f := faces[fi]
			pushEdges(Triangle{find(f[0]), find(f[1]), find(f[2])})
		}
	}
	if live > targetTriangles {
		return nil, fmt.Errorf("mesh: simplification stalled at %d triangles (target %d)", live, targetTriangles)
	}

	// Compact: remap surviving vertices and faces.
	remap := make(map[int32]int32)
	out := &Mesh{}
	for fi, f := range faces {
		if !alive[fi] {
			continue
		}
		var t Triangle
		for k, v := range f {
			r := find(v)
			nv, ok := remap[r]
			if !ok {
				nv = int32(len(out.Vertices))
				out.Vertices = append(out.Vertices, verts[r])
				remap[r] = nv
			}
			t[k] = nv
		}
		out.Triangles = append(out.Triangles, t)
	}
	return out, nil
}

type edge struct {
	a, b   int32
	va, vb int32
	len2   float64
}

type edgeHeap []edge

func (h edgeHeap) Len() int           { return len(h) }
func (h edgeHeap) Less(i, j int) bool { return h[i].len2 < h[j].len2 }
func (h edgeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *edgeHeap) Push(x any)        { *h = append(*h, x.(edge)) }
func (h *edgeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// LODChain generates the persona's level-of-detail chain from a full-
// quality mesh. The counts are the paper's measured LODs (Figure 6):
// full, distance-reduced (-42%), foveated-peripheral (-73%), and the
// out-of-viewport proxy (36 triangles).
func LODChain(full *Mesh) ([]*Mesh, error) {
	counts := PersonaLODTriangles()
	out := make([]*Mesh, len(counts))
	cur := full
	for i, c := range counts {
		if c > full.TriangleCount() {
			return nil, fmt.Errorf("mesh: LOD %d wants %d > full %d", i, c, full.TriangleCount())
		}
		if c == full.TriangleCount() {
			out[i] = full.Clone()
			continue
		}
		// Simplify from the previous (finer) LOD for speed; collapse is
		// monotone so this reaches the same counts.
		s, err := Simplify(cur, c)
		if err != nil {
			return nil, err
		}
		out[i] = s
		cur = s
	}
	return out, nil
}

// PersonaLODTriangles returns the paper's measured LOD triangle counts in
// decreasing order: full quality, distance-aware, foveated-peripheral, and
// out-of-viewport proxy.
func PersonaLODTriangles() []int { return []int{78030, 45036, 21036, 36} }
