package video

import (
	"math"

	"telepresence/internal/simrand"
)

// Scene synthesizes talking-head frames for 2D-persona experiments: a static
// background (the paper notes 2D-persona backgrounds are static and need not
// be delivered), a head ellipse with natural drift, a syllabic mouth, hand
// blobs while gesturing, and mild camera sensor noise — the content mix that
// determines videoconferencing bitrates.
type Scene struct {
	W, H int

	rng      *simrand.Source
	noiseRng *simrand.Source
	headX    *simrand.OU
	headY    *simrand.OU
	headS    *simrand.OU
	handAmp  *simrand.OU
	bg       []uint8
	frame    *Frame // reused render target; returned by Next
	t        float64
	fps      float64
	// NoiseLevel is the camera noise std dev in grey levels.
	NoiseLevel float64
}

// NewScene builds a scene of the given dimensions at fps.
func NewScene(rng *simrand.Source, w, h int, fps float64) *Scene {
	s := &Scene{
		W: w, H: h, fps: fps,
		rng:        rng,
		noiseRng:   rng.Split("noise"),
		headX:      simrand.NewOU(rng.Split("hx"), 0, 0.6, 0.05),
		headY:      simrand.NewOU(rng.Split("hy"), 0, 0.8, 0.03),
		headS:      simrand.NewOU(rng.Split("hs"), 1, 0.5, 0.04),
		handAmp:    simrand.NewOU(rng.Split("ha"), 0.3, 0.4, 0.3),
		NoiseLevel: 1.2,
	}
	// Static background: soft diagonal gradient with some furniture-like
	// rectangles.
	s.bg = make([]uint8, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 90 + 50*float64(x)/float64(w) + 20*float64(y)/float64(h)
			s.bg[y*w+x] = uint8(v)
		}
	}
	for r := 0; r < 4; r++ {
		x0, y0 := rng.Intn(w*3/4), rng.Intn(h*3/4)
		x1, y1 := x0+rng.Intn(w/4)+8, y0+rng.Intn(h/4)+8
		shade := uint8(60 + rng.Intn(120))
		for y := y0; y < y1 && y < h; y++ {
			for x := x0; x < x1 && x < w; x++ {
				s.bg[y*w+x] = shade
			}
		}
	}
	return s
}

// Next renders the following frame. The returned Frame is the scene's
// reused render target: it is valid until the next call to Next; Clone it
// to retain.
func (s *Scene) Next() *Frame {
	dt := 1 / s.fps
	s.t += dt
	if s.frame == nil {
		s.frame = NewFrame(s.W, s.H)
	}
	f := s.frame
	copy(f.Pix, s.bg)

	cx := float64(s.W)/2 + s.headX.Step(dt)*float64(s.W)/4
	cy := float64(s.H)*0.45 + s.headY.Step(dt)*float64(s.H)/6
	scale := s.headS.Step(dt)
	rx := float64(s.W) * 0.14 * scale
	ry := float64(s.H) * 0.28 * scale

	fill := func(ecx, ecy, erx, ery float64, shade uint8) {
		// Clip the ellipse's bounding box to the frame up front; the
		// interior test is unchanged, so painted pixels are identical to
		// the historical per-pixel bounds-checked Set.
		x0, x1 := int(ecx-erx)-1, int(ecx+erx)+1
		y0, y1 := int(ecy-ery)-1, int(ecy+ery)+1
		if x0 < 0 {
			x0 = 0
		}
		if x1 >= s.W {
			x1 = s.W - 1
		}
		if y0 < 0 {
			y0 = 0
		}
		if y1 >= s.H {
			y1 = s.H - 1
		}
		for y := y0; y <= y1; y++ {
			row := f.Pix[y*s.W : y*s.W+s.W : y*s.W+s.W]
			dy := (float64(y) - ecy) / ery
			dy2 := dy * dy
			for x := x0; x <= x1; x++ {
				dx := (float64(x) - ecx) / erx
				if dx*dx+dy2 <= 1 {
					row[x] = shade
				}
			}
		}
	}
	// Shoulders, head, eyes.
	fill(cx, cy+ry*1.6, rx*2.3, ry*0.9, 70)
	fill(cx, cy, rx, ry, 190)
	fill(cx-rx*0.35, cy-ry*0.15, rx*0.12, ry*0.06, 30)
	fill(cx+rx*0.35, cy-ry*0.15, rx*0.12, ry*0.06, 30)
	// Mouth: 5 Hz syllabic open/close.
	mouth := 0.5 + 0.5*math.Sin(2*math.Pi*5*s.t)
	fill(cx, cy+ry*0.4, rx*0.3, ry*(0.03+0.08*mouth), 40)
	// Hands while gesturing.
	amp := s.handAmp.Step(dt)
	if amp > 0 {
		hx := cx - rx*2 + math.Sin(2*math.Pi*1.3*s.t)*rx*amp
		hy := cy + ry*1.2 + math.Cos(2*math.Pi*0.9*s.t)*ry*0.3*amp
		fill(hx, hy, rx*0.35, rx*0.35, 185)
		fill(2*cx-hx, hy, rx*0.35, rx*0.35, 185)
	}
	// Camera sensor noise.
	if s.NoiseLevel > 0 {
		for i := range f.Pix {
			n := s.noiseRng.Normal(0, s.NoiseLevel)
			v := float64(f.Pix[i]) + n
			f.Pix[i] = clamp255(v)
		}
	}
	return f
}
