// Package video implements the 2D-persona path: a block-transform video
// codec (8x8 DCT, JPEG-style quantization, inter-frame prediction, adaptive
// range coding) with closed-loop rate control, plus a synthetic talking-head
// scene generator. Zoom/Webex/Teams and FaceTime's 2D persona all deliver
// this kind of stream (§4.2); per-app resolution and target bitrate come
// from the vca package.
//
// Both codec directions run allocation-free in steady state: encoder and
// decoder double-buffer their reference frames, reuse their coefficient and
// body scratch, and hold reusable entropy coders. Encode's returned Data
// and Decode's returned Frame are therefore owned by the codec and valid
// only until the next call — callers that retain them must copy.
package video

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"telepresence/internal/entropy"
)

// Frame is a grayscale (luma) image. Chroma would add a roughly constant
// factor and is not needed for any of the paper's findings.
type Frame struct {
	W, H int
	Pix  []uint8
}

// NewFrame allocates a zeroed frame.
func NewFrame(w, h int) *Frame {
	return &Frame{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x,y), clamping out-of-range coordinates to the
// edge (convenient for block fetches at image borders).
func (f *Frame) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= f.H {
		y = f.H - 1
	}
	return f.Pix[y*f.W+x]
}

// Set writes the pixel at (x,y); out-of-range writes are ignored.
func (f *Frame) Set(x, y int, v uint8) {
	if x >= 0 && x < f.W && y >= 0 && y < f.H {
		f.Pix[y*f.W+x] = v
	}
}

// Clone deep-copies the frame.
func (f *Frame) Clone() *Frame {
	return &Frame{W: f.W, H: f.H, Pix: append([]uint8(nil), f.Pix...)}
}

// PSNR computes peak signal-to-noise ratio between two equally sized frames.
func PSNR(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		return 0
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

// --- 8x8 DCT ---

var (
	dctCos [8][8]float64
	// dctCosT is the transpose (dctCosT[n][k] == dctCos[k][n]), giving the
	// idct inner loops a contiguous access pattern.
	dctCosT [8][8]float64
)

func init() {
	for k := 0; k < 8; k++ {
		for n := 0; n < 8; n++ {
			dctCos[k][n] = math.Cos(math.Pi / 8 * (float64(n) + 0.5) * float64(k))
			dctCosT[n][k] = dctCos[k][n]
		}
	}
}

// dctC is the orthonormalization factor for coefficient k.
func dctC(k int) float64 {
	if k == 0 {
		return 1 / (2 * math.Sqrt2)
	}
	return 0.5
}

// dot8 is the unrolled 8-term inner product. The additions associate left
// to right exactly like the accumulation loop it replaces, so results are
// bit-identical.
func dot8(a, b *[8]float64) float64 {
	s := a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3]
	s = s + a[4]*b[4] + a[5]*b[5] + a[6]*b[6] + a[7]*b[7]
	return s
}

func fdct8(block *[64]float64) {
	var tmp [64]float64
	for y := 0; y < 8; y++ { // rows
		row := (*[8]float64)(block[y*8 : y*8+8])
		for k := 0; k < 8; k++ {
			tmp[y*8+k] = dot8(row, &dctCos[k]) * dctC(k)
		}
	}
	var col [8]float64
	for x := 0; x < 8; x++ { // cols
		for n := 0; n < 8; n++ {
			col[n] = tmp[n*8+x]
		}
		for k := 0; k < 8; k++ {
			block[k*8+x] = dot8(&col, &dctCos[k]) * dctC(k)
		}
	}
}

func idct8(block *[64]float64) {
	var tmp [64]float64
	// Hoist the per-coefficient scale: the products (c*coef)*cos match the
	// historical c*coef*cos association exactly, so outputs are
	// bit-identical while the inner loops lose a branch and a multiply.
	var scaled [8]float64
	for x := 0; x < 8; x++ { // cols
		for k := 0; k < 8; k++ {
			scaled[k] = dctC(k) * block[k*8+x]
		}
		for n := 0; n < 8; n++ {
			tmp[n*8+x] = dot8(&scaled, &dctCosT[n])
		}
	}
	for y := 0; y < 8; y++ { // rows
		row := (*[8]float64)(tmp[y*8 : y*8+8])
		for k := 0; k < 8; k++ {
			scaled[k] = dctC(k) * row[k]
		}
		for n := 0; n < 8; n++ {
			block[y*8+n] = dot8(&scaled, &dctCosT[n])
		}
	}
}

// jpegLuma is the standard JPEG luminance quantization table.
var jpegLuma = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

var zigzagOrder = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Config sets up an encoder.
type Config struct {
	W, H int
	// FPS is the frame rate (VCAs typically run 30).
	FPS float64
	// TargetBps is the closed-loop rate-control target (0 = fixed quality).
	TargetBps float64
	// Quality in (0,10]: initial/fixed quantizer scale; larger is better
	// quality and more bits. 1.0 corresponds to the plain JPEG table.
	Quality float64
	// GOP is the keyframe interval in frames.
	GOP int
	// SkipThreshold is the mean absolute block difference below which a
	// block is skipped in P-frames.
	SkipThreshold float64
}

// DefaultConfig returns a videoconferencing-shaped configuration.
func DefaultConfig(w, h int, targetBps float64) Config {
	return Config{W: w, H: h, FPS: 30, TargetBps: targetBps, Quality: 1,
		GOP: 60, SkipThreshold: 2.0}
}

// EncodedFrame is one compressed frame.
type EncodedFrame struct {
	// Data is owned by the encoder and valid until the next Encode call;
	// copy to retain.
	Data []byte
	Key  bool
	// QScale records the quantizer used (for diagnostics/ABR tests).
	QScale float64
}

// Encoder compresses frames. It keeps the decoder-visible reconstruction as
// its prediction reference so encoder and decoder never drift.
type Encoder struct {
	cfg     Config
	ref     *Frame // last reconstruction
	spare   *Frame // recycled reconstruction target
	n       int    // frames encoded
	qscale  float64
	bitDebt float64 // rate-control integrator

	body []byte // coefficient stream scratch
	out  []byte // header + compressed output scratch
	cmp  *entropy.Compressor
}

// NewEncoder validates cfg and returns an encoder.
func NewEncoder(cfg Config) (*Encoder, error) {
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("video: bad dimensions %dx%d", cfg.W, cfg.H)
	}
	if cfg.GOP <= 0 {
		cfg.GOP = 60
	}
	if cfg.Quality <= 0 {
		cfg.Quality = 1
	}
	if cfg.FPS <= 0 {
		cfg.FPS = 30
	}
	return &Encoder{cfg: cfg, qscale: cfg.Quality, cmp: entropy.NewCompressor()}, nil
}

// Config returns the encoder configuration (with defaults applied).
func (e *Encoder) Config() Config { return e.cfg }

// SetTargetBps retargets the closed-loop rate controller mid-stream: the
// next Encode's quantizer adaptation steers frame sizes toward the new
// target. This is the knob a congestion controller turns (see
// internal/ratecontrol); <= 0 disables rate control (fixed quality).
func (e *Encoder) SetTargetBps(bps float64) { e.cfg.TargetBps = bps }

// TargetBps returns the current rate-control target.
func (e *Encoder) TargetBps() float64 { return e.cfg.TargetBps }

const (
	frameKey   = 0x49 // 'I'
	frameDelta = 0x50 // 'P'
)

// Encode compresses f. Frames must match the configured dimensions. The
// returned EncodedFrame (and its Data) is reused by the next Encode call.
func (e *Encoder) Encode(f *Frame) (*EncodedFrame, error) {
	if f.W != e.cfg.W || f.H != e.cfg.H {
		return nil, fmt.Errorf("video: frame %dx%d vs config %dx%d", f.W, f.H, e.cfg.W, e.cfg.H)
	}
	key := e.n%e.cfg.GOP == 0 || e.ref == nil
	e.n++

	bw := (f.W + 7) / 8
	bh := (f.H + 7) / 8
	recon := e.spare
	if recon == nil {
		recon = NewFrame(f.W, f.H)
	}
	e.spare = nil

	// Payload: per block, a skip flag byte stream and coefficient stream.
	body := e.body[:0]
	var vbuf [binary.MaxVarintLen64]byte
	putUv := func(v uint64) {
		n := binary.PutUvarint(vbuf[:], v)
		body = append(body, vbuf[:n]...)
	}
	zig := func(v int32) uint64 { return uint64(uint32(v<<1) ^ uint32(v>>31)) }

	q := e.quantTable()
	var block [64]float64
	w := f.W
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			ox, oy := bx*8, by*8
			interior := ox+8 <= f.W && oy+8 <= f.H
			// P-frame skip decision against the reference reconstruction.
			if !key {
				var sad int
				if interior {
					base := oy*w + ox
					for y := 0; y < 8; y++ {
						cur := f.Pix[base+y*w : base+y*w+8 : base+y*w+8]
						prev := e.ref.Pix[base+y*w : base+y*w+8 : base+y*w+8]
						for x := 0; x < 8; x++ {
							d := int(cur[x]) - int(prev[x])
							if d < 0 {
								d = -d
							}
							sad += d
						}
					}
				} else {
					for y := 0; y < 8; y++ {
						for x := 0; x < 8; x++ {
							d := int(f.At(ox+x, oy+y)) - int(e.ref.At(ox+x, oy+y))
							if d < 0 {
								d = -d
							}
							sad += d
						}
					}
				}
				if float64(sad)/64 < e.cfg.SkipThreshold {
					body = append(body, 0) // skip
					if interior {
						base := oy*w + ox
						for y := 0; y < 8; y++ {
							copy(recon.Pix[base+y*w:base+y*w+8], e.ref.Pix[base+y*w:base+y*w+8])
						}
					} else {
						for y := 0; y < 8; y++ {
							for x := 0; x < 8; x++ {
								recon.Set(ox+x, oy+y, e.ref.At(ox+x, oy+y))
							}
						}
					}
					continue
				}
				body = append(body, 1) // coded
			}
			// Residual (or intra) block.
			if interior {
				base := oy*w + ox
				for y := 0; y < 8; y++ {
					cur := f.Pix[base+y*w : base+y*w+8 : base+y*w+8]
					if key {
						for x := 0; x < 8; x++ {
							block[y*8+x] = float64(int(cur[x]) - 128)
						}
					} else {
						prev := e.ref.Pix[base+y*w : base+y*w+8 : base+y*w+8]
						for x := 0; x < 8; x++ {
							block[y*8+x] = float64(int(cur[x]) - int(prev[x]))
						}
					}
				}
			} else {
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						v := float64(f.At(ox+x, oy+y))
						if !key {
							v -= float64(e.ref.At(ox+x, oy+y))
						} else {
							v -= 128
						}
						block[y*8+x] = v
					}
				}
			}
			fdct8(&block)
			// Quantize + zigzag + run-length code.
			run := 0
			for _, zi := range zigzagOrder {
				c := int32(math.Round(block[zi] / q[zi]))
				block[zi] = float64(c) * q[zi] // dequantize for recon
				if c == 0 {
					run++
					continue
				}
				putUv(uint64(run))
				putUv(zig(c))
				run = 0
			}
			putUv(uint64(run) | 1<<20) // end-of-block marker: impossible run
			// Reconstruct exactly as the decoder will.
			idct8(&block)
			if interior {
				base := oy*w + ox
				for y := 0; y < 8; y++ {
					dst := recon.Pix[base+y*w : base+y*w+8 : base+y*w+8]
					if key {
						for x := 0; x < 8; x++ {
							dst[x] = clamp255(block[y*8+x] + 128)
						}
					} else {
						prev := e.ref.Pix[base+y*w : base+y*w+8 : base+y*w+8]
						for x := 0; x < 8; x++ {
							dst[x] = clamp255(block[y*8+x] + float64(prev[x]))
						}
					}
				}
			} else {
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						v := block[y*8+x]
						if !key {
							v += float64(e.ref.At(ox+x, oy+y))
						} else {
							v += 128
						}
						recon.Set(ox+x, oy+y, clamp255(v))
					}
				}
			}
		}
	}
	e.body = body
	e.spare = e.ref
	e.ref = recon

	hdr := e.out[:0]
	if key {
		hdr = append(hdr, frameKey)
	} else {
		hdr = append(hdr, frameDelta)
	}
	var d [8]byte
	binary.LittleEndian.PutUint16(d[0:], uint16(f.W))
	binary.LittleEndian.PutUint16(d[2:], uint16(f.H))
	binary.LittleEndian.PutUint32(d[4:], math.Float32bits(float32(e.qscale)))
	hdr = append(hdr, d[:]...)
	e.out = e.cmp.Compress(hdr, body)

	ef := &EncodedFrame{Data: e.out, Key: key, QScale: e.qscale}
	e.adaptRate(len(e.out))
	return ef, nil
}

func clamp255(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(math.Round(v))
}

// quantTable scales the JPEG table by the current quantizer: higher qscale
// means finer quantization (better quality, more bits).
func (e *Encoder) quantTable() [64]float64 {
	var q [64]float64
	for i, v := range jpegLuma {
		q[i] = float64(v) / e.qscale
		if q[i] < 0.5 {
			q[i] = 0.5
		}
	}
	return q
}

// adaptRate is a simple closed-loop controller nudging qscale so that mean
// frame size approaches TargetBps/FPS. Real VCAs do the same at the encoder
// level (the paper observes the resulting per-app bitrates in Figure 5).
func (e *Encoder) adaptRate(actualBytes int) {
	if e.cfg.TargetBps <= 0 {
		return
	}
	targetBytes := e.cfg.TargetBps / 8 / e.cfg.FPS
	ratio := float64(actualBytes) / targetBytes
	// Proportional step with damping; clamp to a sane quantizer window.
	e.qscale *= math.Pow(ratio, -0.3)
	if e.qscale < 0.02 {
		e.qscale = 0.02
	}
	if e.qscale > 10 {
		e.qscale = 10
	}
}

// Decoder decompresses the encoder's output.
type Decoder struct {
	ref   *Frame
	spare *Frame
	body  []byte
	dec   *entropy.Decompressor

	// Validate-mode reference bookkeeping (dimensions only).
	valRefW, valRefH int
}

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder { return &Decoder{dec: entropy.NewDecompressor()} }

// ErrCorrupt reports an undecodable video frame.
var ErrCorrupt = errors.New("video: corrupt frame")

// Decode reconstructs one frame. The returned Frame is the decoder's
// reference buffer: it is valid (and must not be modified) only until the
// next Decode call; copy with Clone to retain.
func (d *Decoder) Decode(data []byte) (*Frame, error) {
	if len(data) < 9 {
		return nil, ErrCorrupt
	}
	kind := data[0]
	w := int(binary.LittleEndian.Uint16(data[1:]))
	h := int(binary.LittleEndian.Uint16(data[3:]))
	qscale := float64(math.Float32frombits(binary.LittleEndian.Uint32(data[5:])))
	if w <= 0 || h <= 0 || qscale <= 0 {
		return nil, ErrCorrupt
	}
	key := kind == frameKey
	if !key && kind != frameDelta {
		return nil, ErrCorrupt
	}
	if !key && (d.ref == nil || d.ref.W != w || d.ref.H != h) {
		return nil, fmt.Errorf("%w: delta frame without reference", ErrCorrupt)
	}
	body, err := d.dec.Decompress(d.body[:0], data[9:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	d.body = body

	var q [64]float64
	for i, v := range jpegLuma {
		q[i] = float64(v) / qscale
		if q[i] < 0.5 {
			q[i] = 0.5
		}
	}

	pos := 0
	getUv := func() (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, ErrCorrupt
		}
		pos += n
		return v, nil
	}

	out := d.spare
	if out == nil || out.W != w || out.H != h {
		out = NewFrame(w, h)
	}
	d.spare = nil
	bw, bh := (w+7)/8, (h+7)/8
	var block [64]float64
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			ox, oy := bx*8, by*8
			interior := ox+8 <= w && oy+8 <= h
			if !key {
				if pos >= len(body) {
					return nil, ErrCorrupt
				}
				flag := body[pos]
				pos++
				if flag == 0 { // skipped block
					if interior {
						base := oy*w + ox
						for y := 0; y < 8; y++ {
							copy(out.Pix[base+y*w:base+y*w+8], d.ref.Pix[base+y*w:base+y*w+8])
						}
					} else {
						for y := 0; y < 8; y++ {
							for x := 0; x < 8; x++ {
								out.Set(ox+x, oy+y, d.ref.At(ox+x, oy+y))
							}
						}
					}
					continue
				}
				if flag != 1 {
					return nil, ErrCorrupt
				}
			}
			for i := range block {
				block[i] = 0
			}
			zi := 0
			for {
				run, err := getUv()
				if err != nil {
					return nil, err
				}
				if run >= 1<<20 { // end of block
					break
				}
				zi += int(run)
				val, err := getUv()
				if err != nil {
					return nil, err
				}
				if zi >= 64 {
					return nil, ErrCorrupt
				}
				c := int32(val>>1) ^ -int32(val&1)
				block[zigzagOrder[zi]] = float64(c) * q[zigzagOrder[zi]]
				zi++
			}
			idct8(&block)
			if interior {
				base := oy*w + ox
				for y := 0; y < 8; y++ {
					dst := out.Pix[base+y*w : base+y*w+8 : base+y*w+8]
					if key {
						for x := 0; x < 8; x++ {
							dst[x] = clamp255(block[y*8+x] + 128)
						}
					} else {
						prev := d.ref.Pix[base+y*w : base+y*w+8 : base+y*w+8]
						for x := 0; x < 8; x++ {
							dst[x] = clamp255(block[y*8+x] + float64(prev[x]))
						}
					}
				}
			} else {
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						v := block[y*8+x]
						if key {
							v += 128
						} else {
							v += float64(d.ref.At(ox+x, oy+y))
						}
						out.Set(ox+x, oy+y, clamp255(v))
					}
				}
			}
		}
	}
	d.spare = d.ref
	d.ref = out
	return out, nil
}

// Validate parses one encoded frame exactly as Decode does — same header
// checks, same entropy decode, same coefficient-stream walk, same
// reference-presence rules — but skips pixel reconstruction, which no
// session measurement depends on. For a given stream, drive a Decoder with
// either Decode or Validate, not a mixture: Validate tracks only the
// reference dimensions, so a delta frame Decoded after a Validated
// keyframe has no reference pixels to reconstruct from and errors.
// Measurement pipelines that only need decodability and timing (the vca
// receive path) use Validate; consumers that need pixels use Decode.
func (d *Decoder) Validate(data []byte) error {
	if len(data) < 9 {
		return ErrCorrupt
	}
	kind := data[0]
	w := int(binary.LittleEndian.Uint16(data[1:]))
	h := int(binary.LittleEndian.Uint16(data[3:]))
	qscale := float64(math.Float32frombits(binary.LittleEndian.Uint32(data[5:])))
	if w <= 0 || h <= 0 || qscale <= 0 {
		return ErrCorrupt
	}
	key := kind == frameKey
	if !key && kind != frameDelta {
		return ErrCorrupt
	}
	hasRef := (d.valRefW == w && d.valRefH == h) || (d.ref != nil && d.ref.W == w && d.ref.H == h)
	if !key && !hasRef {
		return fmt.Errorf("%w: delta frame without reference", ErrCorrupt)
	}
	body, err := d.dec.Decompress(d.body[:0], data[9:])
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	d.body = body

	pos := 0
	getUv := func() (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, ErrCorrupt
		}
		pos += n
		return v, nil
	}
	bw, bh := (w+7)/8, (h+7)/8
	for b := 0; b < bw*bh; b++ {
		if !key {
			if pos >= len(body) {
				return ErrCorrupt
			}
			flag := body[pos]
			pos++
			if flag == 0 {
				continue // skipped block
			}
			if flag != 1 {
				return ErrCorrupt
			}
		}
		zi := 0
		for {
			run, err := getUv()
			if err != nil {
				return err
			}
			if run >= 1<<20 { // end of block
				break
			}
			zi += int(run)
			if _, err := getUv(); err != nil {
				return err
			}
			if zi >= 64 {
				return ErrCorrupt
			}
			zi++
		}
	}
	d.valRefW, d.valRefH = w, h
	return nil
}
