package video

import (
	"math"
	"testing"

	"telepresence/internal/simrand"
)

func TestDCTRoundTrip(t *testing.T) {
	rng := simrand.New(1)
	var block, orig [64]float64
	for i := range block {
		block[i] = rng.Uniform(-128, 128)
		orig[i] = block[i]
	}
	fdct8(&block)
	idct8(&block)
	for i := range block {
		if math.Abs(block[i]-orig[i]) > 1e-9 {
			t.Fatalf("DCT round trip error %v at %d", block[i]-orig[i], i)
		}
	}
}

func TestDCTEnergyCompaction(t *testing.T) {
	// A smooth gradient block should concentrate energy in low
	// frequencies.
	var block [64]float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			block[y*8+x] = float64(x + y)
		}
	}
	fdct8(&block)
	var low, total float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			e := block[y*8+x] * block[y*8+x]
			total += e
			if x < 2 && y < 2 {
				low += e
			}
		}
	}
	if low/total < 0.95 {
		t.Errorf("low-frequency energy fraction %.3f, want > 0.95", low/total)
	}
}

func TestFrameAtClamps(t *testing.T) {
	f := NewFrame(4, 4)
	f.Set(3, 3, 77)
	if f.At(10, 10) != 77 {
		t.Errorf("At should clamp to edge, got %d", f.At(10, 10))
	}
	if f.At(-5, -5) != f.At(0, 0) {
		t.Error("negative clamp broken")
	}
	f.Set(100, 100, 1) // must not panic or write
}

func TestEncodeDecodeKeyFrame(t *testing.T) {
	rng := simrand.New(2)
	scene := NewScene(rng, 160, 120, 30)
	enc, err := NewEncoder(Config{W: 160, H: 120, FPS: 30, Quality: 2, GOP: 30, SkipThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	f := scene.Next()
	ef, err := enc.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if !ef.Key {
		t.Error("first frame not a keyframe")
	}
	got, err := dec.Decode(ef.Data)
	if err != nil {
		t.Fatal(err)
	}
	if p := PSNR(f, got); p < 30 {
		t.Errorf("keyframe PSNR = %.1f dB, want > 30", p)
	}
}

func TestEncodeDecodeSequenceNoDrift(t *testing.T) {
	rng := simrand.New(3)
	scene := NewScene(rng, 160, 120, 30)
	enc, _ := NewEncoder(Config{W: 160, H: 120, FPS: 30, Quality: 1.5, GOP: 30, SkipThreshold: 2})
	dec := NewDecoder()
	for i := 0; i < 90; i++ {
		f := scene.Next()
		ef, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(ef.Data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if p := PSNR(f, got); p < 26 {
			t.Fatalf("frame %d PSNR = %.1f dB (drift?)", i, p)
		}
	}
}

func TestGOPStructure(t *testing.T) {
	rng := simrand.New(4)
	scene := NewScene(rng, 96, 96, 30)
	enc, _ := NewEncoder(Config{W: 96, H: 96, FPS: 30, Quality: 1, GOP: 10, SkipThreshold: 2})
	for i := 0; i < 30; i++ {
		ef, err := enc.Encode(scene.Next())
		if err != nil {
			t.Fatal(err)
		}
		if want := i%10 == 0; ef.Key != want {
			t.Errorf("frame %d key=%v, want %v", i, ef.Key, want)
		}
	}
}

func TestPFramesSmallerThanIFrames(t *testing.T) {
	rng := simrand.New(5)
	scene := NewScene(rng, 160, 120, 30)
	scene.NoiseLevel = 0 // isolate inter prediction from camera noise
	enc, _ := NewEncoder(Config{W: 160, H: 120, FPS: 30, Quality: 1, GOP: 100, SkipThreshold: 2})
	// Static content: after the keyframe, every block should skip and P
	// frames collapse to almost nothing.
	f := scene.Next()
	iFrame, _ := enc.Encode(f)
	p1, _ := enc.Encode(f)
	if p1.Key {
		t.Fatal("expected P frame")
	}
	if len(p1.Data) >= len(iFrame.Data)/5 {
		t.Errorf("static P frame %d B vs I %d B: skip mode ineffective", len(p1.Data), len(iFrame.Data))
	}
	// Moving content: P frames still beat I frames.
	pTotal, pCount := 0, 0
	for i := 0; i < 20; i++ {
		ef, _ := enc.Encode(scene.Next())
		if !ef.Key {
			pTotal += len(ef.Data)
			pCount++
		}
	}
	if pMean := float64(pTotal) / float64(pCount); pMean >= float64(len(iFrame.Data)) {
		t.Errorf("moving P mean %.0f B not below I %d B", pMean, len(iFrame.Data))
	}
}

func TestRateControlConverges(t *testing.T) {
	rng := simrand.New(6)
	const target = 500_000.0 // 500 kbps
	scene := NewScene(rng, 320, 180, 30)
	cfg := DefaultConfig(320, 180, target)
	enc, _ := NewEncoder(cfg)
	var bytes int
	const n = 150
	for i := 0; i < n; i++ {
		ef, err := enc.Encode(scene.Next())
		if err != nil {
			t.Fatal(err)
		}
		if i >= 30 { // after convergence window
			bytes += len(ef.Data)
		}
	}
	got := float64(bytes) * 8 / float64(n-30) * 30
	if got < target*0.6 || got > target*1.6 {
		t.Errorf("rate control: %.0f bps, want ~%.0f", got, target)
	}
}

func TestDecoderErrors(t *testing.T) {
	dec := NewDecoder()
	if _, err := dec.Decode(nil); err == nil {
		t.Error("nil frame accepted")
	}
	// Delta frame without reference.
	rng := simrand.New(7)
	scene := NewScene(rng, 64, 64, 30)
	enc, _ := NewEncoder(Config{W: 64, H: 64, FPS: 30, Quality: 1, GOP: 5, SkipThreshold: 2})
	enc.Encode(scene.Next()) // I
	p, _ := enc.Encode(scene.Next())
	if p.Key {
		t.Fatal("expected P frame")
	}
	if _, err := NewDecoder().Decode(p.Data); err == nil {
		t.Error("cold-start P frame accepted")
	}
}

func TestDecodeCorruptNoPanic(t *testing.T) {
	rng := simrand.New(8)
	scene := NewScene(rng, 64, 64, 30)
	enc, _ := NewEncoder(Config{W: 64, H: 64, FPS: 30, Quality: 1, GOP: 5, SkipThreshold: 2})
	ef, _ := enc.Encode(scene.Next())
	mut := append([]byte(nil), ef.Data...)
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(mut))
		old := mut[i]
		mut[i] ^= byte(1 + rng.Intn(255))
		dec := NewDecoder()
		_, _ = dec.Decode(mut) // must not panic
		mut[i] = old
	}
}

func TestEncodeWrongSize(t *testing.T) {
	enc, _ := NewEncoder(Config{W: 64, H: 64, FPS: 30, Quality: 1})
	if _, err := enc.Encode(NewFrame(32, 32)); err == nil {
		t.Error("mismatched frame size accepted")
	}
}

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(Config{W: 0, H: 10}); err == nil {
		t.Error("zero width accepted")
	}
}

func TestHigherQualityMoreBitsBetterPSNR(t *testing.T) {
	run := func(q float64) (int, float64) {
		scene := NewScene(simrand.New(9), 160, 120, 30)
		enc, _ := NewEncoder(Config{W: 160, H: 120, FPS: 30, Quality: q, GOP: 100, SkipThreshold: 0})
		dec := NewDecoder()
		f := scene.Next()
		ef, _ := enc.Encode(f)
		got, err := dec.Decode(ef.Data)
		if err != nil {
			t.Fatal(err)
		}
		return len(ef.Data), PSNR(f, got)
	}
	loBytes, loPSNR := run(0.3)
	hiBytes, hiPSNR := run(3)
	if hiBytes <= loBytes {
		t.Errorf("higher quality fewer bits: %d vs %d", hiBytes, loBytes)
	}
	if hiPSNR <= loPSNR {
		t.Errorf("higher quality worse PSNR: %.1f vs %.1f", hiPSNR, loPSNR)
	}
}

func TestSceneDeterminism(t *testing.T) {
	a := NewScene(simrand.New(10), 80, 60, 30)
	b := NewScene(simrand.New(10), 80, 60, 30)
	for i := 0; i < 10; i++ {
		fa, fb := a.Next(), b.Next()
		for j := range fa.Pix {
			if fa.Pix[j] != fb.Pix[j] {
				t.Fatalf("scene diverged at frame %d pixel %d", i, j)
			}
		}
	}
}

func TestSceneHasMotion(t *testing.T) {
	s := NewScene(simrand.New(11), 80, 60, 30)
	a := s.Next().Clone() // Next reuses its buffer; Clone to hold a frame
	var diff int
	for i := 0; i < 30; i++ {
		b := s.Next().Clone()
		for j := range a.Pix {
			d := int(a.Pix[j]) - int(b.Pix[j])
			if d < 0 {
				d = -d
			}
			diff += d
		}
		a = b
	}
	if diff == 0 {
		t.Error("scene is static")
	}
}

func TestPSNRIdentical(t *testing.T) {
	f := NewFrame(8, 8)
	if !math.IsInf(PSNR(f, f.Clone()), 1) {
		t.Error("identical frames should have infinite PSNR")
	}
	if PSNR(f, NewFrame(4, 4)) != 0 {
		t.Error("mismatched sizes should return 0")
	}
}

func BenchmarkEncode360p(b *testing.B) {
	scene := NewScene(simrand.New(12), 640, 360, 30)
	enc, _ := NewEncoder(DefaultConfig(640, 360, 1.5e6))
	frames := make([]*Frame, 16)
	for i := range frames {
		frames[i] = scene.Next().Clone()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(frames[i%16]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode360p(b *testing.B) {
	scene := NewScene(simrand.New(13), 640, 360, 30)
	enc, _ := NewEncoder(DefaultConfig(640, 360, 1.5e6))
	ef, _ := enc.Encode(scene.Next())
	dec := NewDecoder()
	b.SetBytes(int64(len(ef.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(ef.Data); err != nil {
			b.Fatal(err)
		}
	}
}

// TestValidateMatchesDecode pins Validate to Decode over a live stream:
// same accept/reject verdicts for intact, cold-start and corrupt input,
// since the session receive path counts decodability through Validate.
func TestValidateMatchesDecode(t *testing.T) {
	rng := simrand.New(14)
	scene := NewScene(rng, 96, 96, 30)
	enc, _ := NewEncoder(Config{W: 96, H: 96, FPS: 30, Quality: 1, GOP: 10, SkipThreshold: 2})
	val := NewDecoder()
	ref := NewDecoder()
	for i := 0; i < 30; i++ {
		ef, err := enc.Encode(scene.Next())
		if err != nil {
			t.Fatal(err)
		}
		vErr := val.Validate(ef.Data)
		_, dErr := ref.Decode(ef.Data)
		if (vErr == nil) != (dErr == nil) {
			t.Fatalf("frame %d: Validate err=%v, Decode err=%v", i, vErr, dErr)
		}
	}
	// Cold start on a P frame must be rejected by both.
	enc.Encode(scene.Next()) // ensure next frame is a delta
	p, _ := enc.Encode(scene.Next())
	if p.Key {
		t.Fatal("expected P frame")
	}
	if NewDecoder().Validate(p.Data) == nil {
		t.Error("Validate accepted cold-start P frame")
	}
	if _, err := NewDecoder().Decode(p.Data); err == nil {
		t.Error("Decode accepted cold-start P frame")
	}
	// Truncated data must be rejected by both.
	if val.Validate(p.Data[:5]) == nil {
		t.Error("Validate accepted truncated frame")
	}
	if _, err := ref.Decode(p.Data[:5]); err == nil {
		t.Error("Decode accepted truncated frame")
	}
}

// TestSetTargetBpsRetargetsMidStream pins the congestion-control hook: after
// SetTargetBps lowers the target mid-stream, the rate controller steers
// steady-state frame sizes down toward the new budget.
func TestSetTargetBpsRetargetsMidStream(t *testing.T) {
	enc, err := NewEncoder(Config{W: 320, H: 240, FPS: 30, TargetBps: 1.2e6, Quality: 1,
		GOP: 300, SkipThreshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	scene := NewScene(simrand.New(1), 320, 240, 30)
	meanSize := func(frames int) float64 {
		var total int
		for i := 0; i < frames; i++ {
			ef, err := enc.Encode(scene.Next())
			if err != nil {
				t.Fatal(err)
			}
			total += len(ef.Data)
		}
		return float64(total) / float64(frames)
	}
	meanSize(60) // converge at 1.2 Mbps
	before := meanSize(30)
	enc.SetTargetBps(0.3e6)
	if got := enc.TargetBps(); got != 0.3e6 {
		t.Fatalf("TargetBps = %v after SetTargetBps", got)
	}
	meanSize(60) // converge at the new target
	after := meanSize(30)
	if after >= before*0.55 {
		t.Errorf("mean frame size %.0f -> %.0f B; want a ~4x target cut to shrink frames by >45%%",
			before, after)
	}
}
