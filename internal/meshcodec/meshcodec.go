// Package meshcodec is the repository's stand-in for Google Draco (§4.3):
// a 3D mesh compressor built from position quantization, traversal-order
// delta prediction, and the shared lzma-like entropy coder. The paper uses
// Draco to estimate what directly streaming a spatial persona's mesh would
// cost (108.4±16.7 Mbps for 70-90K-triangle heads at 90 FPS); this codec
// reproduces that order of magnitude with the same architecture.
package meshcodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"telepresence/internal/entropy"
	"telepresence/internal/mesh"
)

// DefaultQuantBits matches Draco's default position quantization.
const DefaultQuantBits = 14

// magic identifies an encoded mesh stream.
var magic = [4]byte{'M', 'C', 'v', '1'}

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("meshcodec: corrupt stream")

// Encode compresses m with the given position quantization bits (1-24).
func Encode(m *mesh.Mesh, quantBits int) ([]byte, error) {
	if quantBits < 1 || quantBits > 24 {
		return nil, fmt.Errorf("meshcodec: quantBits %d out of range", quantBits)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	min, max := m.Bounds()
	span := max.Sub(min)
	// Avoid zero spans for flat/degenerate axes.
	if span.X <= 0 {
		span.X = 1e-9
	}
	if span.Y <= 0 {
		span.Y = 1e-9
	}
	if span.Z <= 0 {
		span.Z = 1e-9
	}
	scale := float64(int64(1)<<quantBits - 1)

	// Header: magic, bits, counts, bounds.
	hdr := make([]byte, 0, 64)
	hdr = append(hdr, magic[:]...)
	hdr = append(hdr, byte(quantBits))
	var tmp [binary.MaxVarintLen64]byte
	putUv := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		hdr = append(hdr, tmp[:n]...)
	}
	putUv(uint64(m.VertexCount()))
	putUv(uint64(m.TriangleCount()))
	var f8 [8]byte
	for _, v := range []float64{min.X, min.Y, min.Z, span.X, span.Y, span.Z} {
		binary.LittleEndian.PutUint64(f8[:], math.Float64bits(v))
		hdr = append(hdr, f8[:]...)
	}

	// Body: delta-coded quantized positions in vertex order (generation
	// order is spatially coherent, the moral equivalent of Draco's
	// traversal prediction), then delta-coded connectivity.
	body := make([]byte, 0, m.VertexCount()*6)
	putBody := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		body = append(body, tmp[:n]...)
	}
	zig := func(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

	var prev [3]int64
	for _, p := range m.Vertices {
		q := [3]int64{
			int64(math.Round((p.X - min.X) / span.X * scale)),
			int64(math.Round((p.Y - min.Y) / span.Y * scale)),
			int64(math.Round((p.Z - min.Z) / span.Z * scale)),
		}
		for k := 0; k < 3; k++ {
			putBody(zig(q[k] - prev[k]))
		}
		prev = q
	}
	var prevIdx int64
	for _, t := range m.Triangles {
		for _, v := range t {
			putBody(zig(int64(v) - prevIdx))
			prevIdx = int64(v)
		}
	}
	return entropy.Compress(hdr, body), nil
}

// Decode reverses Encode. Quantization error is bounded by half a step per
// axis.
func Decode(b []byte) (*mesh.Mesh, error) {
	if len(b) < 5 || [4]byte(b[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	quantBits := int(b[4])
	if quantBits < 1 || quantBits > 24 {
		return nil, fmt.Errorf("%w: quantBits %d", ErrCorrupt, quantBits)
	}
	pos := 5
	getUv := func() (uint64, error) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, ErrCorrupt
		}
		pos += n
		return v, nil
	}
	nv, err := getUv()
	if err != nil {
		return nil, err
	}
	nt, err := getUv()
	if err != nil {
		return nil, err
	}
	if nv > 1<<26 || nt > 1<<26 {
		return nil, fmt.Errorf("%w: implausible counts %d/%d", ErrCorrupt, nv, nt)
	}
	if pos+48 > len(b) {
		return nil, ErrCorrupt
	}
	var bounds [6]float64
	for i := range bounds {
		bounds[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))
		pos += 8
	}
	min := mesh.Vec3{X: bounds[0], Y: bounds[1], Z: bounds[2]}
	span := mesh.Vec3{X: bounds[3], Y: bounds[4], Z: bounds[5]}
	scale := float64(int64(1)<<quantBits - 1)

	body, err := entropy.Decompress(nil, b[pos:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	bpos := 0
	next := func() (int64, error) {
		u, n := binary.Uvarint(body[bpos:])
		if n <= 0 {
			return 0, ErrCorrupt
		}
		bpos += n
		return int64(u>>1) ^ -int64(u&1), nil
	}

	m := &mesh.Mesh{
		Vertices:  make([]mesh.Vec3, nv),
		Triangles: make([]mesh.Triangle, nt),
	}
	var prev [3]int64
	for i := range m.Vertices {
		for k := 0; k < 3; k++ {
			d, err := next()
			if err != nil {
				return nil, err
			}
			prev[k] += d
		}
		m.Vertices[i] = mesh.Vec3{
			X: min.X + float64(prev[0])/scale*span.X,
			Y: min.Y + float64(prev[1])/scale*span.Y,
			Z: min.Z + float64(prev[2])/scale*span.Z,
		}
	}
	var prevIdx int64
	for i := range m.Triangles {
		for k := 0; k < 3; k++ {
			d, err := next()
			if err != nil {
				return nil, err
			}
			prevIdx += d
			if prevIdx < 0 || prevIdx >= int64(nv) {
				return nil, fmt.Errorf("%w: index %d out of %d vertices", ErrCorrupt, prevIdx, nv)
			}
			m.Triangles[i][k] = int32(prevIdx)
		}
	}
	if bpos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-bpos)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return m, nil
}

// MaxQuantError returns the worst-case per-axis reconstruction error for a
// mesh with the given bounds span and quantization bits.
func MaxQuantError(span float64, quantBits int) float64 {
	return span / float64(int64(1)<<quantBits-1) / 2
}

// StreamBitrateBps returns the bandwidth needed to stream payloadBytes-sized
// encoded meshes at the given frame rate (the paper's 90 FPS experiment).
func StreamBitrateBps(payloadBytes int, fps float64) float64 {
	return float64(payloadBytes) * 8 * fps
}
