package meshcodec

import (
	"math"
	"testing"

	"telepresence/internal/mesh"
	"telepresence/internal/simrand"
	"telepresence/internal/stats"
)

func head(seed int64, tris int) *mesh.Mesh {
	return mesh.GenerateHead(simrand.New(seed), mesh.HeadConfig{
		TargetTriangles: tris, Radius: 0.1, Variation: 1,
	})
}

func TestRoundTripTopologyExact(t *testing.T) {
	m := head(1, 5000)
	b, err := Encode(m, DefaultQuantBits)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.TriangleCount() != m.TriangleCount() || got.VertexCount() != m.VertexCount() {
		t.Fatalf("counts %d/%d, want %d/%d", got.TriangleCount(), got.VertexCount(),
			m.TriangleCount(), m.VertexCount())
	}
	for i := range m.Triangles {
		if got.Triangles[i] != m.Triangles[i] {
			t.Fatalf("triangle %d changed: %v vs %v", i, got.Triangles[i], m.Triangles[i])
		}
	}
}

func TestRoundTripGeometryWithinQuantError(t *testing.T) {
	m := head(2, 5000)
	for _, bits := range []int{10, 14, 20} {
		b, err := Encode(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		min, max := m.Bounds()
		span := max.Sub(min)
		maxSpan := math.Max(span.X, math.Max(span.Y, span.Z))
		tol := MaxQuantError(maxSpan, bits) * 2.01 // rounding both ways
		for i := range m.Vertices {
			d := got.Vertices[i].Sub(m.Vertices[i])
			for _, e := range []float64{d.X, d.Y, d.Z} {
				if math.Abs(e) > tol {
					t.Fatalf("bits=%d vertex %d error %v > %v", bits, i, e, tol)
				}
			}
		}
	}
}

func TestHigherBitsLowerError(t *testing.T) {
	m := head(3, 3000)
	errAt := func(bits int) float64 {
		b, _ := Encode(m, bits)
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for i := range m.Vertices {
			if d := got.Vertices[i].Sub(m.Vertices[i]).Len(); d > worst {
				worst = d
			}
		}
		return worst
	}
	if e10, e16 := errAt(10), errAt(16); e16 >= e10 {
		t.Errorf("error did not shrink with more bits: %v @10 vs %v @16", e10, e16)
	}
}

func TestCompressionBeatsRawFloats(t *testing.T) {
	m := head(4, 20000)
	b, err := Encode(m, DefaultQuantBits)
	if err != nil {
		t.Fatal(err)
	}
	raw := m.VertexCount()*12 + m.TriangleCount()*12 // float32 + int32 indices
	if len(b) >= raw/2 {
		t.Errorf("encoded %d bytes vs raw %d; want at least 2x compression", len(b), raw)
	}
}

// The paper's §4.3 estimate: ten 70-90K-triangle heads, Draco-compressed,
// streamed at 90 FPS, need 108.4±16.7 Mbps. Architecture-equivalent
// compression must land in the same band (tens of Mbps, two orders above
// the 0.67 Mbps semantic stream).
func TestMeshStreamingBitrateBand(t *testing.T) {
	if testing.Short() {
		t.Skip("ten-head encode is slow")
	}
	rng := simrand.New(5)
	sizes := &stats.Sample{}
	for i := 0; i < 10; i++ {
		tris := 70000 + rng.Intn(20001) // 70K-90K
		m := head(int64(100+i), tris)
		b, err := Encode(m, DefaultQuantBits)
		if err != nil {
			t.Fatal(err)
		}
		sizes.Add(StreamBitrateBps(len(b), 90) / 1e6)
	}
	mean := sizes.Mean()
	if mean < 40 || mean > 250 {
		t.Errorf("mesh streaming = %.1f Mbps mean, want 40-250 (paper: 108.4±16.7)", mean)
	}
	// The core claim: vastly more than the semantic stream.
	if mean < 0.67*50 {
		t.Errorf("mesh streaming (%.1f Mbps) not >>0.67 Mbps semantic", mean)
	}
}

func TestEncodeErrors(t *testing.T) {
	m := head(6, 1000)
	if _, err := Encode(m, 0); err == nil {
		t.Error("quantBits 0 accepted")
	}
	if _, err := Encode(m, 25); err == nil {
		t.Error("quantBits 25 accepted")
	}
	bad := &mesh.Mesh{Vertices: []mesh.Vec3{{}}, Triangles: []mesh.Triangle{{0, 0, 0}}}
	if _, err := Encode(bad, 14); err == nil {
		t.Error("invalid mesh accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	m := head(7, 1000)
	b, _ := Encode(m, 14)
	if _, err := Decode(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Decode([]byte("XXXX....")); err == nil {
		t.Error("bad magic accepted")
	}
	for _, cut := range []int{4, 10, 40, len(b) / 2, len(b) - 1} {
		if _, err := Decode(b[:cut]); err == nil {
			t.Errorf("truncation to %d accepted", cut)
		}
	}
	// Corrupt quantBits byte.
	mut := append([]byte(nil), b...)
	mut[4] = 99
	if _, err := Decode(mut); err == nil {
		t.Error("corrupt quantBits accepted")
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	m := head(8, 500)
	b, _ := Encode(m, 12)
	rng := simrand.New(9)
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), b...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		_, _ = Decode(mut) // must not panic
	}
}

func TestDegenerateFlatMesh(t *testing.T) {
	// All vertices in a plane: one axis has zero span.
	m := &mesh.Mesh{
		Vertices: []mesh.Vec3{
			{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1},
		},
		Triangles: []mesh.Triangle{{0, 1, 2}, {1, 3, 2}},
	}
	b, err := Encode(m, 14)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Vertices {
		if got.Vertices[i].Sub(m.Vertices[i]).Len() > 1e-3 {
			t.Fatalf("flat mesh vertex %d moved", i)
		}
	}
}

func BenchmarkEncodePersonaHead(b *testing.B) {
	m := head(10, 78030)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m, DefaultQuantBits); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePersonaHead(b *testing.B) {
	m := head(11, 78030)
	enc, _ := Encode(m, DefaultQuantBits)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
