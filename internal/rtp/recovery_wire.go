package rtp

import (
	"encoding/binary"
	"fmt"
)

// Recovery wire formats: the NACK feedback packet (receiver -> sender,
// requesting retransmission of lost sequence numbers) and the XOR parity
// packet (sender -> receiver, protecting a group of consecutive media
// packets). Both ride the same links as RTP media and receiver reports, so
// each family gets a distinct first byte whose top bits are 01: a recovery
// packet can never parse as RTP (version 2, top bits 10), and the three
// non-RTP families (report 'R', NACK 'N', parity 'F') can never parse as
// each other. TestWireFamiliesDisjoint pins the property.

// ------------------------------------------------------------------- NACK

// Nack is a receiver-driven retransmission request: the sequence numbers of
// SSRC's media stream the receiver believes lost. The sender answers from
// its retransmit cache (internal/recovery).
type Nack struct {
	// SSRC identifies the media stream the request is about (the sender's
	// SSRC, like ReceiverReport.SSRC).
	SSRC uint32
	// Seqs are the missing sequence numbers, at most MaxNackSeqs per
	// packet.
	Seqs []uint16
}

// NACK wire format: [magic0 magic1 ver count] SSRC seq*count.
const (
	nackMagic0 = 0x4E // 'N'; top bits 01, so never RTP, and != report/parity
	nackMagic1 = 0x4B // 'K'
	nackVer    = 1
	// nackHeaderLen is the fixed prefix before the seq list.
	nackHeaderLen = 8
	// MaxNackSeqs bounds the seq list of one NACK packet; a receiver with
	// more outstanding losses sends the rest in later packets.
	MaxNackSeqs = 64
)

// IsNack classifies a payload as a marshaled Nack.
func IsNack(b []byte) bool {
	return len(b) >= nackHeaderLen && b[0] == nackMagic0 && b[1] == nackMagic1 && b[2] == nackVer
}

// Marshal appends the wire encoding to b. It panics if the seq list exceeds
// MaxNackSeqs (a programming error in the caller's batching).
func (n *Nack) Marshal(b []byte) []byte {
	if len(n.Seqs) > MaxNackSeqs {
		panic(fmt.Sprintf("rtp: Nack with %d seqs exceeds MaxNackSeqs %d", len(n.Seqs), MaxNackSeqs))
	}
	b = append(b, nackMagic0, nackMagic1, nackVer, byte(len(n.Seqs)))
	b = binary.BigEndian.AppendUint32(b, n.SSRC)
	for _, s := range n.Seqs {
		b = binary.BigEndian.AppendUint16(b, s)
	}
	return b
}

// Unmarshal parses a marshaled Nack. The seq list is appended to
// n.Seqs[:0], so a reused Nack does not allocate.
func (n *Nack) Unmarshal(b []byte) error {
	if !IsNack(b) {
		return fmt.Errorf("%w: not a nack", ErrMalformed)
	}
	count := int(b[3])
	if len(b) < nackHeaderLen+2*count {
		return fmt.Errorf("%w: nack truncated (%d seqs, %d bytes)", ErrMalformed, count, len(b))
	}
	n.SSRC = binary.BigEndian.Uint32(b[4:])
	n.Seqs = n.Seqs[:0]
	for i := 0; i < count; i++ {
		n.Seqs = append(n.Seqs, binary.BigEndian.Uint16(b[nackHeaderLen+2*i:]))
	}
	return nil
}

// ------------------------------------------------------------- FEC parity

// Parity is one XOR forward-error-correction packet protecting the Count
// consecutive media packets [BaseSeq, BaseSeq+Count) of SSRC's stream: Data
// is the bytewise XOR of the full RTP packets (header included), each
// right-padded with zeros to the length of the longest, and LenXor is the
// XOR of their lengths. A receiver holding all but one packet of the group
// reconstructs the missing one exactly (internal/recovery.Receiver).
type Parity struct {
	SSRC    uint32
	BaseSeq uint16
	// Count is the protected group size k, at least 2.
	Count uint8
	// LenXor is the XOR of the k packets' lengths; XORing out the known
	// lengths recovers the missing packet's length.
	LenXor uint16
	// Data is the XOR of the padded packets; len(Data) is the length of the
	// longest packet in the group.
	Data []byte
}

// Parity wire format: [magic0 magic1 ver count] SSRC baseSeq lenXor data.
const (
	parityMagic0 = 0x46 // 'F'; top bits 01, so never RTP, and != report/nack
	parityMagic1 = 0x50 // 'P'
	parityVer    = 1
	// ParityHeaderLen is the fixed prefix before the XOR payload.
	ParityHeaderLen = 12
)

// IsParity classifies a payload as a marshaled Parity.
func IsParity(b []byte) bool {
	return len(b) >= ParityHeaderLen && b[0] == parityMagic0 && b[1] == parityMagic1 && b[2] == parityVer
}

// ParitySSRC reads the stream SSRC of a payload IsParity has classified,
// without the full unmarshal the demux path would otherwise pay twice.
func ParitySSRC(b []byte) uint32 { return binary.BigEndian.Uint32(b[4:]) }

// Marshal appends the wire encoding to b.
func (p *Parity) Marshal(b []byte) []byte {
	b = append(b, parityMagic0, parityMagic1, parityVer, p.Count)
	b = binary.BigEndian.AppendUint32(b, p.SSRC)
	b = binary.BigEndian.AppendUint16(b, p.BaseSeq)
	b = binary.BigEndian.AppendUint16(b, p.LenXor)
	return append(b, p.Data...)
}

// Unmarshal parses a marshaled Parity. Data aliases b: the caller must not
// reuse b while the Parity is live.
func (p *Parity) Unmarshal(b []byte) error {
	if !IsParity(b) {
		return fmt.Errorf("%w: not a parity packet", ErrMalformed)
	}
	p.Count = b[3]
	if p.Count < 2 {
		return fmt.Errorf("%w: parity group of %d", ErrMalformed, p.Count)
	}
	p.SSRC = binary.BigEndian.Uint32(b[4:])
	p.BaseSeq = binary.BigEndian.Uint16(b[8:])
	p.LenXor = binary.BigEndian.Uint16(b[10:])
	p.Data = b[ParityHeaderLen:]
	return nil
}
