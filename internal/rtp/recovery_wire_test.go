package rtp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNackRoundTrip(t *testing.T) {
	in := Nack{SSRC: VideoSSRC(2), Seqs: []uint16{1, 7, 0xFFFF, 0}}
	wire := in.Marshal(nil)
	if !IsNack(wire) {
		t.Fatal("marshaled nack not classified by IsNack")
	}
	var out Nack
	if err := out.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if out.SSRC != in.SSRC || len(out.Seqs) != len(in.Seqs) {
		t.Fatalf("round trip: %+v vs %+v", in, out)
	}
	for i := range in.Seqs {
		if out.Seqs[i] != in.Seqs[i] {
			t.Fatalf("seq %d: %d != %d", i, out.Seqs[i], in.Seqs[i])
		}
	}
	// Reused Nack appends into the existing seq buffer.
	prev := &out.Seqs[0]
	if err := out.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if &out.Seqs[0] != prev {
		t.Error("reused Nack reallocated its seq list")
	}
}

func TestNackEmptyAndErrors(t *testing.T) {
	empty := (&Nack{SSRC: 1}).Marshal(nil)
	var out Nack
	if err := out.Unmarshal(empty); err != nil || len(out.Seqs) != 0 {
		t.Fatalf("empty nack: %v, seqs %v", err, out.Seqs)
	}
	if err := out.Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
	// Truncated seq list.
	trunc := (&Nack{SSRC: 1, Seqs: []uint16{1, 2, 3}}).Marshal(nil)
	if err := out.Unmarshal(trunc[:len(trunc)-2]); err == nil {
		t.Error("truncated seq list accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized nack did not panic")
		}
	}()
	(&Nack{Seqs: make([]uint16, MaxNackSeqs+1)}).Marshal(nil)
}

func TestParityRoundTrip(t *testing.T) {
	in := Parity{SSRC: VideoSSRC(1), BaseSeq: 0xFFFE, Count: 4, LenXor: 0x1234, Data: []byte{1, 2, 3, 4, 5}}
	wire := in.Marshal(nil)
	if !IsParity(wire) {
		t.Fatal("marshaled parity not classified by IsParity")
	}
	var out Parity
	if err := out.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if out.SSRC != in.SSRC || out.BaseSeq != in.BaseSeq || out.Count != in.Count ||
		out.LenXor != in.LenXor || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip: %+v vs %+v", in, out)
	}
}

func TestParityErrors(t *testing.T) {
	var out Parity
	if err := out.Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
	bad := Parity{Count: 1, Data: []byte{1}}
	if err := out.Unmarshal(bad.Marshal(nil)); err == nil {
		t.Error("group of 1 accepted")
	}
}

// TestWireFamiliesDisjoint extends the PR 4 first-byte disjointness property
// to all three non-RTP families: for randomized field values, a marshaled
// ReceiverReport, Nack, or Parity packet classifies as exactly its own
// family — never as RTP, and never as either other family. The four formats
// share links, so a misclassification would corrupt a stream.
func TestWireFamiliesDisjoint(t *testing.T) {
	classify := func(b []byte) (rtp, rep, nack, par bool) {
		return IsRTP(b), IsReport(b), IsNack(b), IsParity(b)
	}
	exactlyOne := func(want string, b []byte) bool {
		rtp, rep, nack, par := classify(b)
		switch want {
		case "report":
			return !rtp && rep && !nack && !par
		case "nack":
			return !rtp && !rep && nack && !par
		case "parity":
			return !rtp && !rep && !nack && par
		case "rtp":
			return rtp && !rep && !nack && !par
		}
		return false
	}
	f := func(ssrc uint32, seqA, seqB, base uint16, count uint8, lenXor uint16, frac float64, data []byte) bool {
		rep := ReceiverReport{SSRC: ssrc, FractionLost: frac}
		n := Nack{SSRC: ssrc, Seqs: []uint16{seqA, seqB}}
		if count < 2 {
			count = 2
		}
		p := Parity{SSRC: ssrc, BaseSeq: base, Count: count, LenXor: lenXor, Data: data}
		h := Header{PayloadType: PTGenericVideo, Seq: seqA, Timestamp: uint32(base), SSRC: ssrc}
		pkt := append(h.Marshal(nil), data...)
		return exactlyOne("report", rep.Marshal(nil)) &&
			exactlyOne("nack", n.Marshal(nil)) &&
			exactlyOne("parity", p.Marshal(nil)) &&
			exactlyOne("rtp", pkt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Cross-parsing must error, not misread.
	var n Nack
	if err := n.Unmarshal((&ReceiverReport{}).Marshal(nil)); err == nil {
		t.Error("nack parser accepted a report")
	}
	var p Parity
	if err := p.Unmarshal((&Nack{}).Marshal(nil)); err == nil {
		t.Error("parity parser accepted a nack")
	}
	var r ReceiverReport
	if err := r.Unmarshal((&Parity{Count: 2, Data: make([]byte, 64)}).Marshal(nil)); err == nil {
		t.Error("report parser accepted a parity packet")
	}
}
