// Package rtp implements the RTP subset (RFC 3550/3551) the simulated VCAs
// use: the 12-byte header with payload type, sequence number, timestamp and
// SSRC; a packetizer that fragments media frames with the marker bit on the
// final packet; a reordering jitter buffer; and RTCP-style receiver
// statistics. The paper observed that Zoom, Webex and Teams always use RTP,
// and that FaceTime reverts to RTP (with unchanged payload types) whenever a
// non-Vision-Pro device joins (§4.1).
package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// HeaderLen is the fixed RTP header size.
const HeaderLen = 12

// PayloadType identifies the codec, mirroring RFC 3551's dynamic range.
type PayloadType uint8

// Payload types used by the simulated applications. FaceTime keeps the same
// PT for 2D video whether or not a Vision Pro is involved (§4.1), which is
// how the paper inferred pre-rendering.
const (
	PTFaceTimeVideo PayloadType = 97
	PTFaceTimeAudio PayloadType = 104
	PTGenericVideo  PayloadType = 96
	PTGenericAudio  PayloadType = 111
)

// Header is the fixed RTP header.
type Header struct {
	PayloadType PayloadType
	Marker      bool
	Seq         uint16
	Timestamp   uint32
	SSRC        uint32
}

// ErrMalformed reports an undecodable RTP packet.
var ErrMalformed = errors.New("rtp: malformed packet")

// Marshal appends the encoded header to b.
func (h *Header) Marshal(b []byte) []byte {
	first := byte(2 << 6) // version 2, no padding/extension/CSRC
	second := byte(h.PayloadType) & 0x7F
	if h.Marker {
		second |= 0x80
	}
	b = append(b, first, second)
	b = binary.BigEndian.AppendUint16(b, h.Seq)
	b = binary.BigEndian.AppendUint32(b, h.Timestamp)
	b = binary.BigEndian.AppendUint32(b, h.SSRC)
	return b
}

// Unmarshal parses the header, returning the payload.
func (h *Header) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < HeaderLen {
		return nil, ErrMalformed
	}
	if b[0]>>6 != 2 {
		return nil, fmt.Errorf("%w: version %d", ErrMalformed, b[0]>>6)
	}
	h.Marker = b[1]&0x80 != 0
	h.PayloadType = PayloadType(b[1] & 0x7F)
	h.Seq = binary.BigEndian.Uint16(b[2:])
	h.Timestamp = binary.BigEndian.Uint32(b[4:])
	h.SSRC = binary.BigEndian.Uint32(b[8:])
	return b[HeaderLen:], nil
}

// IsRTP classifies a UDP payload as RTP the way passive measurement tools
// do: version 2 plus a plausible payload type.
func IsRTP(payload []byte) bool {
	if len(payload) < HeaderLen {
		return false
	}
	if payload[0]>>6 != 2 {
		return false
	}
	pt := payload[1] & 0x7F
	return pt >= 96 && pt <= 127 // dynamic PT range used by VCAs
}

// MTU is the media payload budget per RTP packet.
const MTU = 1200

// Packetizer fragments media frames into RTP packets.
type Packetizer struct {
	PT    PayloadType
	SSRC  uint32
	seq   uint16
	clock uint32
	// ClockRate is the RTP timestamp rate (90 kHz for video per RFC
	// 3551).
	ClockRate uint32
}

// NewPacketizer returns a packetizer for one stream.
func NewPacketizer(pt PayloadType, ssrc uint32) *Packetizer {
	return &Packetizer{PT: pt, SSRC: ssrc, ClockRate: 90000}
}

// Packetize fragments one media frame captured at time tSec into RTP
// packets; the marker bit is set on the last packet of the frame. Packets
// are freshly allocated: ownership passes to the caller (and typically on
// to the network layer) without copying.
func (p *Packetizer) Packetize(frame []byte, tSec float64) [][]byte {
	ts := uint32(tSec * float64(p.ClockRate))
	var out [][]byte
	for off := 0; off == 0 || off < len(frame); {
		end := off + MTU
		if end > len(frame) {
			end = len(frame)
		}
		h := Header{
			PayloadType: p.PT,
			Marker:      end == len(frame),
			Seq:         p.seq,
			Timestamp:   ts,
			SSRC:        p.SSRC,
		}
		p.seq++
		pkt := h.Marshal(make([]byte, 0, HeaderLen+end-off))
		pkt = append(pkt, frame[off:end]...)
		out = append(out, pkt)
		if end == len(frame) {
			break
		}
		off = end
	}
	return out
}

// Depacketizer reassembles frames from RTP packets, tolerating arbitrary
// reordering. A frame's end is the marker packet; its start is anchored on
// the previous frame's marker (seq continuity), so a late first packet can
// never cause mis-framing. Frames are delivered in order; frames with
// missing packets stall until GC drops them (video decoders then conceal
// via the next keyframe; the vca layer models that).
//
// All buffers are pooled: fragment copies return to the pool when their
// frame completes or drops, and the frames returned by Push are loaned —
// valid until the next Push call, after which their buffers are reused.
type Depacketizer struct {
	frames map[uint32][][]byte // timestamp -> fragments in arrival order
	seqs   map[uint32][]uint16
	marker map[uint32]uint16 // timestamp -> seq of marker packet
	first  map[uint32]uint16 // timestamp -> lowest seq seen

	haveStart bool
	nextSeq   uint16 // expected first seq of the next frame

	bufPool  [][]byte   // recycled fragment and frame buffers
	loaned   [][]byte   // frame buffers handed out by the last Push
	out      [][]byte   // reused Push result header
	ordered  [][]byte   // reused fragment-ordering scratch
	listPool [][][]byte // recycled per-frame fragment lists
	seqPool  [][]uint16 // recycled per-frame seq lists
	tsScr    []uint32   // reused sorted-timestamp scratch for map scans

	// Stats.
	Received, FramesOut, FramesDropped int64
}

// NewDepacketizer returns an empty reassembler.
func NewDepacketizer() *Depacketizer {
	return &Depacketizer{
		frames: map[uint32][][]byte{},
		seqs:   map[uint32][]uint16{},
		marker: map[uint32]uint16{},
		first:  map[uint32]uint16{},
	}
}

func (d *Depacketizer) getBuf() []byte {
	if n := len(d.bufPool) - 1; n >= 0 {
		b := d.bufPool[n]
		d.bufPool[n] = nil
		d.bufPool = d.bufPool[:n]
		return b[:0]
	}
	return nil
}

func (d *Depacketizer) putBuf(b []byte) {
	if cap(b) > 0 {
		d.bufPool = append(d.bufPool, b[:0])
	}
}

// Push consumes one RTP packet; it returns every frame that completes as a
// result, in presentation order (usually zero or one; more when a stalled
// earlier frame unblocks queued successors). Returned frames are valid
// until the next Push call.
func (d *Depacketizer) Push(pkt []byte) ([][]byte, error) {
	var h Header
	payload, err := h.Unmarshal(pkt)
	if err != nil {
		return nil, err
	}
	// Reclaim the frame buffers loaned by the previous Push.
	for i, b := range d.loaned {
		d.putBuf(b)
		d.loaned[i] = nil
	}
	d.loaned = d.loaned[:0]

	d.Received++
	ts := h.Timestamp
	fl := d.frames[ts]
	if fl == nil {
		if n := len(d.listPool) - 1; n >= 0 {
			fl = d.listPool[n]
			d.listPool[n] = nil
			d.listPool = d.listPool[:n]
		}
	}
	d.frames[ts] = append(fl, append(d.getBuf(), payload...))
	sl := d.seqs[ts]
	if sl == nil {
		if n := len(d.seqPool) - 1; n >= 0 {
			sl = d.seqPool[n]
			d.seqPool[n] = nil
			d.seqPool = d.seqPool[:n]
		}
	}
	d.seqs[ts] = append(sl, h.Seq)
	if h.Marker {
		d.marker[ts] = h.Seq
	}
	if f, ok := d.first[ts]; !ok || seqLess(h.Seq, f) {
		d.first[ts] = h.Seq
	}
	// Complete as many in-order frames as possible: finishing one frame
	// can unblock the next (already fully buffered) one.
	out := d.out[:0]
	for {
		frame := d.tryComplete(ts)
		if len(frame) == 0 {
			// The packet's own frame may not be next in order; try every
			// pending frame once, oldest timestamp first. The scan order
			// is load-bearing: before the in-order anchor exists (or when
			// stale overlaps are dropped inside tryComplete) the first
			// completable frame wins, and map order would make that a
			// per-run coin flip.
			for _, pending := range d.pendingTS(d.marker) {
				if frame = d.tryComplete(pending); len(frame) > 0 {
					break
				}
			}
		}
		if len(frame) == 0 {
			d.out = out
			return out, nil
		}
		d.loaned = append(d.loaned, frame)
		out = append(out, frame)
	}
}

func seqLess(a, b uint16) bool { return int16(a-b) < 0 }

// pendingTS returns the map's timestamps ascending, in the reused scratch.
func (d *Depacketizer) pendingTS(m map[uint32]uint16) []uint32 {
	d.tsScr = sortedTS(d.tsScr, m)
	return d.tsScr
}

// sortedTS collects a timestamp-keyed map's keys into scr, ascending, so
// callers scan pending frames in a deterministic oldest-first order
// instead of randomized map order.
func sortedTS[V any](scr []uint32, m map[uint32]V) []uint32 {
	scr = scr[:0]
	for ts := range m {
		scr = append(scr, ts)
	}
	sort.Slice(scr, func(i, j int) bool { return scr[i] < scr[j] })
	return scr
}

func (d *Depacketizer) tryComplete(ts uint32) []byte {
	mseq, ok := d.marker[ts]
	if !ok {
		return nil
	}
	// Anchor the frame start on seq continuity with the previous frame's
	// marker; the lowest observed seq is only trusted for the very first
	// frame of the stream.
	first := d.first[ts]
	if d.haveStart {
		if first != d.nextSeq {
			// Either an earlier packet of this frame is still in flight
			// (first > nextSeq) or this frame is not next in order.
			if seqLess(first, d.nextSeq) {
				// Stale overlap: drop the frame state.
				d.drop(ts)
				d.FramesDropped++
			}
			return nil
		}
	}
	want := int(mseq-first) + 1
	if want <= 0 || len(d.seqs[ts]) < want {
		return nil
	}
	// Order fragments by sequence number (reused scratch).
	if cap(d.ordered) < want {
		d.ordered = make([][]byte, want)
	}
	ordered := d.ordered[:want]
	for i := range ordered {
		ordered[i] = nil
	}
	for i, seq := range d.seqs[ts] {
		idx := int(seq - first)
		if idx < 0 || idx >= want {
			return nil // stray fragment from another frame
		}
		ordered[idx] = d.frames[ts][i]
	}
	out := d.getBuf()
	for _, seg := range ordered {
		if seg == nil {
			d.putBuf(out)
			return nil
		}
		out = append(out, seg...)
	}
	d.drop(ts)
	d.haveStart = true
	d.nextSeq = mseq + 1
	d.FramesOut++
	return out
}

func (d *Depacketizer) drop(ts uint32) {
	if fl := d.frames[ts]; fl != nil {
		for i, seg := range fl {
			d.putBuf(seg)
			fl[i] = nil
		}
		if cap(fl) > 0 {
			d.listPool = append(d.listPool, fl[:0])
		}
	}
	if sl := d.seqs[ts]; cap(sl) > 0 {
		d.seqPool = append(d.seqPool, sl[:0])
	}
	delete(d.frames, ts)
	delete(d.seqs, ts)
	delete(d.marker, ts)
	delete(d.first, ts)
}

// Pending reports how many incomplete frames the reassembler currently
// holds — the frames-outstanding telemetry gauge.
func (d *Depacketizer) Pending() int { return len(d.frames) }

// GC drops incomplete frames older than the given timestamp horizon,
// counting them as lost, and advances the in-order anchor past them so
// later frames can deliver.
func (d *Depacketizer) GC(beforeTS uint32) {
	d.tsScr = sortedTS(d.tsScr, d.frames)
	for _, ts := range d.tsScr {
		if ts < beforeTS {
			// Skip the anchor past this frame if it was next in line.
			if m, ok := d.marker[ts]; ok && d.haveStart && !seqLess(m, d.nextSeq) {
				d.nextSeq = m + 1
			}
			d.drop(ts)
			d.FramesDropped++
		}
	}
}

// --------------------------------------------------------- SSRC numbering
//
// Session wiring assigns SSRCs by participant index from fixed bases, so a
// demultiplexer (an SFU downlink, a feedback handler) can recover the
// sending participant from any stream's SSRC without a side table.

// SSRC bases for the per-participant media streams.
const (
	// VideoSSRCBase is participant 0's video SSRC; participant i sends
	// video on VideoSSRCBase+i.
	VideoSSRCBase uint32 = 7000
	// AudioSSRCBase is participant 0's audio SSRC.
	AudioSSRCBase uint32 = 8000
	// maxSSRCParticipants bounds the per-base index range so the two bases
	// can never collide.
	maxSSRCParticipants = 1000
)

// VideoSSRC returns participant i's video stream SSRC.
func VideoSSRC(i int) uint32 { return VideoSSRCBase + uint32(i) }

// AudioSSRC returns participant i's audio stream SSRC.
func AudioSSRC(i int) uint32 { return AudioSSRCBase + uint32(i) }

// SenderOf recovers the sending participant index from a media SSRC. audio
// reports which base the SSRC belongs to; ok is false for SSRCs outside
// both ranges.
func SenderOf(ssrc uint32) (sender int, audio, ok bool) {
	if ssrc >= VideoSSRCBase && ssrc < VideoSSRCBase+maxSSRCParticipants {
		return int(ssrc - VideoSSRCBase), false, true
	}
	if ssrc >= AudioSSRCBase && ssrc < AudioSSRCBase+maxSSRCParticipants {
		return int(ssrc - AudioSSRCBase), true, true
	}
	return 0, false, false
}

// -------------------------------------------------------- Receiver reports

// ReceiverReport summarizes reception quality, RTCP RR style: cumulative
// loss and extended-sequence state plus the per-report-interval signals
// (receive rate, mean one-way delay, interarrival jitter) a congestion
// controller consumes (internal/ratecontrol).
type ReceiverReport struct {
	// SSRC identifies the reported-on media stream (the sender's SSRC).
	SSRC uint32
	// HighestSeq is the highest sequence number seen, modulo 2^16.
	HighestSeq uint16
	// ExtHighestSeq is the extended highest sequence: wrap cycles in the
	// high bits, RFC 3550 style, offset so the first packet of a stream
	// starts one cycle up (the offset cancels in every difference).
	ExtHighestSeq uint32
	// PacketsRecv and PacketsLost are cumulative over the stream.
	PacketsRecv int64
	PacketsLost int64
	// FractionLost is the loss fraction since the previous report.
	FractionLost float64
	// JitterMs is the RFC 3550 interarrival jitter estimate in ms.
	JitterMs float64
	// RecvRateBps is the receive rate over the report interval, wire bits
	// per second (0 when nothing arrived).
	RecvRateBps float64
	// MeanOwdMs is the mean one-way delay of packets received in the
	// interval, in ms (0 when nothing arrived).
	MeanOwdMs float64
	// IntervalMs is the report interval this report covers.
	IntervalMs float64
}

// Report wire format: a 4-byte magic/version prefix followed by the fields
// in order. The first byte's top bits are 01, so a report can never parse
// as RTP (version 2) and IsRTP can never claim one.
const (
	reportMagic0 = 0x52 // 'R'
	reportMagic1 = 0x43 // 'C'
	reportVer    = 1
	// ReportLen is the marshaled size of a ReceiverReport.
	ReportLen = 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 8
)

// IsReport classifies a payload as a marshaled ReceiverReport.
func IsReport(b []byte) bool {
	return len(b) >= ReportLen && b[0] == reportMagic0 && b[1] == reportMagic1 && b[2] == reportVer
}

// Marshal appends the wire encoding of the report to b. HighestSeq is not
// encoded separately: it is the low 16 bits of ExtHighestSeq.
func (r *ReceiverReport) Marshal(b []byte) []byte {
	b = append(b, reportMagic0, reportMagic1, reportVer, 0)
	b = binary.BigEndian.AppendUint32(b, r.SSRC)
	b = binary.BigEndian.AppendUint32(b, r.ExtHighestSeq)
	b = binary.BigEndian.AppendUint64(b, uint64(r.PacketsRecv))
	b = binary.BigEndian.AppendUint64(b, uint64(r.PacketsLost))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.FractionLost))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.JitterMs))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.RecvRateBps))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.MeanOwdMs))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.IntervalMs))
	return b
}

// Unmarshal parses a marshaled report.
func (r *ReceiverReport) Unmarshal(b []byte) error {
	if !IsReport(b) {
		return fmt.Errorf("%w: not a receiver report", ErrMalformed)
	}
	r.SSRC = binary.BigEndian.Uint32(b[4:])
	r.ExtHighestSeq = binary.BigEndian.Uint32(b[8:])
	r.HighestSeq = uint16(r.ExtHighestSeq)
	r.PacketsRecv = int64(binary.BigEndian.Uint64(b[12:]))
	r.PacketsLost = int64(binary.BigEndian.Uint64(b[20:]))
	r.FractionLost = math.Float64frombits(binary.BigEndian.Uint64(b[28:]))
	r.JitterMs = math.Float64frombits(binary.BigEndian.Uint64(b[36:]))
	r.RecvRateBps = math.Float64frombits(binary.BigEndian.Uint64(b[44:]))
	r.MeanOwdMs = math.Float64frombits(binary.BigEndian.Uint64(b[52:]))
	r.IntervalMs = math.Float64frombits(binary.BigEndian.Uint64(b[60:]))
	return nil
}

// extSeq tracks extended (wrap-cycle-counting) sequence numbers in arrival
// order, RFC 3550 Appendix A.1 style. The extended space starts one cycle
// up (1<<16) so a reordered packet just before the base cannot underflow.
type extSeq struct {
	init bool
	base uint32 // lowest extended seq observed
	max  uint32 // highest extended seq observed
}

// push ingests one sequence number and returns its extended value.
func (e *extSeq) push(seq uint16) uint32 {
	if !e.init {
		e.init = true
		e.base = 1<<16 | uint32(seq)
		e.max = e.base
		return e.base
	}
	// Circular delta from the current max: |d| < 2^15 distinguishes a new
	// forward packet (possibly wrapping) from an old reordered one.
	d := int16(seq - uint16(e.max))
	ext := e.max + uint32(int32(d)) // two's-complement add handles d < 0
	if d > 0 {
		e.max = ext
	}
	if ext < e.base {
		e.base = ext
	}
	return ext
}

// expected returns how many packets the observed sequence span covers.
func (e *extSeq) expected() int64 {
	if !e.init {
		return 0
	}
	return int64(e.max) - int64(e.base) + 1
}

// ReportFor derives a receiver report from sequence numbers in arrival
// order. Wrap cycles are tracked with extended sequence numbers, so streams
// longer than 2^16 packets (or windows that straddle a wrap) count their
// losses correctly — the raw min/max of the 16-bit values would alias every
// 65,536 packets.
func ReportFor(ssrc uint32, seqs []uint16, received int64) ReceiverReport {
	rr := ReceiverReport{SSRC: ssrc, PacketsRecv: received}
	if len(seqs) == 0 {
		return rr
	}
	var e extSeq
	for _, s := range seqs {
		e.push(s)
	}
	rr.HighestSeq = uint16(e.max)
	rr.ExtHighestSeq = e.max
	if expected := e.expected(); expected > received {
		rr.PacketsLost = expected - received
		rr.FractionLost = float64(rr.PacketsLost) / float64(expected)
	}
	return rr
}

// ReportBuilder accumulates one stream's receive statistics online — the
// receiver side of the feedback loop. OnPacket ingests every arriving
// packet; MakeReport snapshots a ReceiverReport covering the interval since
// the previous one and resets the interval accumulators. All state is a few
// scalars: building reports allocates nothing and costs O(1) per packet.
type ReportBuilder struct {
	// SSRC is stamped into every report (the reported-on sender's SSRC).
	SSRC uint32

	ext      extSeq
	received int64 // cumulative packets

	jitterMs   float64
	prevOwdMs  float64
	haveTranst bool

	// Interval accumulators, reset by MakeReport.
	intBytes   int64
	intOwdSum  float64
	intPackets int64

	// Snapshot at the previous report.
	lastMax      uint32
	lastReceived int64
	lastReportMs float64
}

// NewReportBuilder returns a builder for one stream.
func NewReportBuilder(ssrc uint32) *ReportBuilder { return &ReportBuilder{SSRC: ssrc} }

// OnPacket records one arriving packet: its sequence number, its send and
// receive times in milliseconds, and its wire size in bytes.
func (b *ReportBuilder) OnPacket(seq uint16, sendMs, recvMs float64, size int) {
	b.ext.push(seq)
	b.received++
	owd := recvMs - sendMs
	if b.haveTranst {
		d := owd - b.prevOwdMs
		if d < 0 {
			d = -d
		}
		b.jitterMs += (d - b.jitterMs) / 16 // RFC 3550 jitter estimator
	}
	b.prevOwdMs = owd
	b.haveTranst = true
	b.intBytes += int64(size)
	b.intOwdSum += owd
	b.intPackets++
}

// Received reports the cumulative packet count.
func (b *ReportBuilder) Received() int64 { return b.received }

// MakeReport snapshots the stream state as of nowMs and starts the next
// interval. An interval with no arrivals yields a report with zero
// RecvRateBps and MeanOwdMs — the starvation signal congestion controllers
// key on.
func (b *ReportBuilder) MakeReport(nowMs float64) ReceiverReport {
	rr := ReceiverReport{
		SSRC:          b.SSRC,
		HighestSeq:    uint16(b.ext.max),
		ExtHighestSeq: b.ext.max,
		PacketsRecv:   b.received,
		JitterMs:      b.jitterMs,
		IntervalMs:    nowMs - b.lastReportMs,
	}
	if expected := b.ext.expected(); expected > b.received {
		rr.PacketsLost = expected - b.received
	}
	// Interval loss: expected-vs-received deltas since the last report.
	var expInt int64
	if b.lastMax != 0 {
		expInt = int64(b.ext.max) - int64(b.lastMax)
	} else {
		expInt = b.ext.expected()
	}
	if recvInt := b.received - b.lastReceived; expInt > recvInt && expInt > 0 {
		rr.FractionLost = float64(expInt-recvInt) / float64(expInt)
	}
	if b.intPackets > 0 {
		rr.MeanOwdMs = b.intOwdSum / float64(b.intPackets)
		if rr.IntervalMs > 0 {
			rr.RecvRateBps = float64(b.intBytes*8) / (rr.IntervalMs / 1e3)
		}
	}
	b.lastMax = b.ext.max
	b.lastReceived = b.received
	b.lastReportMs = nowMs
	b.intBytes, b.intOwdSum, b.intPackets = 0, 0, 0
	return rr
}
