// Package rtp implements the RTP subset (RFC 3550/3551) the simulated VCAs
// use: the 12-byte header with payload type, sequence number, timestamp and
// SSRC; a packetizer that fragments media frames with the marker bit on the
// final packet; a reordering jitter buffer; and RTCP-style receiver
// statistics. The paper observed that Zoom, Webex and Teams always use RTP,
// and that FaceTime reverts to RTP (with unchanged payload types) whenever a
// non-Vision-Pro device joins (§4.1).
package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderLen is the fixed RTP header size.
const HeaderLen = 12

// PayloadType identifies the codec, mirroring RFC 3551's dynamic range.
type PayloadType uint8

// Payload types used by the simulated applications. FaceTime keeps the same
// PT for 2D video whether or not a Vision Pro is involved (§4.1), which is
// how the paper inferred pre-rendering.
const (
	PTFaceTimeVideo PayloadType = 97
	PTFaceTimeAudio PayloadType = 104
	PTGenericVideo  PayloadType = 96
	PTGenericAudio  PayloadType = 111
)

// Header is the fixed RTP header.
type Header struct {
	PayloadType PayloadType
	Marker      bool
	Seq         uint16
	Timestamp   uint32
	SSRC        uint32
}

// ErrMalformed reports an undecodable RTP packet.
var ErrMalformed = errors.New("rtp: malformed packet")

// Marshal appends the encoded header to b.
func (h *Header) Marshal(b []byte) []byte {
	first := byte(2 << 6) // version 2, no padding/extension/CSRC
	second := byte(h.PayloadType) & 0x7F
	if h.Marker {
		second |= 0x80
	}
	b = append(b, first, second)
	b = binary.BigEndian.AppendUint16(b, h.Seq)
	b = binary.BigEndian.AppendUint32(b, h.Timestamp)
	b = binary.BigEndian.AppendUint32(b, h.SSRC)
	return b
}

// Unmarshal parses the header, returning the payload.
func (h *Header) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < HeaderLen {
		return nil, ErrMalformed
	}
	if b[0]>>6 != 2 {
		return nil, fmt.Errorf("%w: version %d", ErrMalformed, b[0]>>6)
	}
	h.Marker = b[1]&0x80 != 0
	h.PayloadType = PayloadType(b[1] & 0x7F)
	h.Seq = binary.BigEndian.Uint16(b[2:])
	h.Timestamp = binary.BigEndian.Uint32(b[4:])
	h.SSRC = binary.BigEndian.Uint32(b[8:])
	return b[HeaderLen:], nil
}

// IsRTP classifies a UDP payload as RTP the way passive measurement tools
// do: version 2 plus a plausible payload type.
func IsRTP(payload []byte) bool {
	if len(payload) < HeaderLen {
		return false
	}
	if payload[0]>>6 != 2 {
		return false
	}
	pt := payload[1] & 0x7F
	return pt >= 96 && pt <= 127 // dynamic PT range used by VCAs
}

// MTU is the media payload budget per RTP packet.
const MTU = 1200

// Packetizer fragments media frames into RTP packets.
type Packetizer struct {
	PT    PayloadType
	SSRC  uint32
	seq   uint16
	clock uint32
	// ClockRate is the RTP timestamp rate (90 kHz for video per RFC
	// 3551).
	ClockRate uint32
}

// NewPacketizer returns a packetizer for one stream.
func NewPacketizer(pt PayloadType, ssrc uint32) *Packetizer {
	return &Packetizer{PT: pt, SSRC: ssrc, ClockRate: 90000}
}

// Packetize fragments one media frame captured at time tSec into RTP
// packets; the marker bit is set on the last packet of the frame. Packets
// are freshly allocated: ownership passes to the caller (and typically on
// to the network layer) without copying.
func (p *Packetizer) Packetize(frame []byte, tSec float64) [][]byte {
	ts := uint32(tSec * float64(p.ClockRate))
	var out [][]byte
	for off := 0; off == 0 || off < len(frame); {
		end := off + MTU
		if end > len(frame) {
			end = len(frame)
		}
		h := Header{
			PayloadType: p.PT,
			Marker:      end == len(frame),
			Seq:         p.seq,
			Timestamp:   ts,
			SSRC:        p.SSRC,
		}
		p.seq++
		pkt := h.Marshal(make([]byte, 0, HeaderLen+end-off))
		pkt = append(pkt, frame[off:end]...)
		out = append(out, pkt)
		if end == len(frame) {
			break
		}
		off = end
	}
	return out
}

// Depacketizer reassembles frames from RTP packets, tolerating arbitrary
// reordering. A frame's end is the marker packet; its start is anchored on
// the previous frame's marker (seq continuity), so a late first packet can
// never cause mis-framing. Frames are delivered in order; frames with
// missing packets stall until GC drops them (video decoders then conceal
// via the next keyframe; the vca layer models that).
//
// All buffers are pooled: fragment copies return to the pool when their
// frame completes or drops, and the frames returned by Push are loaned —
// valid until the next Push call, after which their buffers are reused.
type Depacketizer struct {
	frames map[uint32][][]byte // timestamp -> fragments in arrival order
	seqs   map[uint32][]uint16
	marker map[uint32]uint16 // timestamp -> seq of marker packet
	first  map[uint32]uint16 // timestamp -> lowest seq seen

	haveStart bool
	nextSeq   uint16 // expected first seq of the next frame

	bufPool  [][]byte   // recycled fragment and frame buffers
	loaned   [][]byte   // frame buffers handed out by the last Push
	out      [][]byte   // reused Push result header
	ordered  [][]byte   // reused fragment-ordering scratch
	listPool [][][]byte // recycled per-frame fragment lists
	seqPool  [][]uint16 // recycled per-frame seq lists

	// Stats.
	Received, FramesOut, FramesDropped int64
}

// NewDepacketizer returns an empty reassembler.
func NewDepacketizer() *Depacketizer {
	return &Depacketizer{
		frames: map[uint32][][]byte{},
		seqs:   map[uint32][]uint16{},
		marker: map[uint32]uint16{},
		first:  map[uint32]uint16{},
	}
}

func (d *Depacketizer) getBuf() []byte {
	if n := len(d.bufPool) - 1; n >= 0 {
		b := d.bufPool[n]
		d.bufPool[n] = nil
		d.bufPool = d.bufPool[:n]
		return b[:0]
	}
	return nil
}

func (d *Depacketizer) putBuf(b []byte) {
	if cap(b) > 0 {
		d.bufPool = append(d.bufPool, b[:0])
	}
}

// Push consumes one RTP packet; it returns every frame that completes as a
// result, in presentation order (usually zero or one; more when a stalled
// earlier frame unblocks queued successors). Returned frames are valid
// until the next Push call.
func (d *Depacketizer) Push(pkt []byte) ([][]byte, error) {
	var h Header
	payload, err := h.Unmarshal(pkt)
	if err != nil {
		return nil, err
	}
	// Reclaim the frame buffers loaned by the previous Push.
	for i, b := range d.loaned {
		d.putBuf(b)
		d.loaned[i] = nil
	}
	d.loaned = d.loaned[:0]

	d.Received++
	ts := h.Timestamp
	fl := d.frames[ts]
	if fl == nil {
		if n := len(d.listPool) - 1; n >= 0 {
			fl = d.listPool[n]
			d.listPool[n] = nil
			d.listPool = d.listPool[:n]
		}
	}
	d.frames[ts] = append(fl, append(d.getBuf(), payload...))
	sl := d.seqs[ts]
	if sl == nil {
		if n := len(d.seqPool) - 1; n >= 0 {
			sl = d.seqPool[n]
			d.seqPool[n] = nil
			d.seqPool = d.seqPool[:n]
		}
	}
	d.seqs[ts] = append(sl, h.Seq)
	if h.Marker {
		d.marker[ts] = h.Seq
	}
	if f, ok := d.first[ts]; !ok || seqLess(h.Seq, f) {
		d.first[ts] = h.Seq
	}
	// Complete as many in-order frames as possible: finishing one frame
	// can unblock the next (already fully buffered) one.
	out := d.out[:0]
	for {
		frame := d.tryComplete(ts)
		if len(frame) == 0 {
			// The packet's own frame may not be next in order; try every
			// pending frame once.
			for pending := range d.marker {
				if frame = d.tryComplete(pending); len(frame) > 0 {
					break
				}
			}
		}
		if len(frame) == 0 {
			d.out = out
			return out, nil
		}
		d.loaned = append(d.loaned, frame)
		out = append(out, frame)
	}
}

func seqLess(a, b uint16) bool { return int16(a-b) < 0 }

func (d *Depacketizer) tryComplete(ts uint32) []byte {
	mseq, ok := d.marker[ts]
	if !ok {
		return nil
	}
	// Anchor the frame start on seq continuity with the previous frame's
	// marker; the lowest observed seq is only trusted for the very first
	// frame of the stream.
	first := d.first[ts]
	if d.haveStart {
		if first != d.nextSeq {
			// Either an earlier packet of this frame is still in flight
			// (first > nextSeq) or this frame is not next in order.
			if seqLess(first, d.nextSeq) {
				// Stale overlap: drop the frame state.
				d.drop(ts)
				d.FramesDropped++
			}
			return nil
		}
	}
	want := int(mseq-first) + 1
	if want <= 0 || len(d.seqs[ts]) < want {
		return nil
	}
	// Order fragments by sequence number (reused scratch).
	if cap(d.ordered) < want {
		d.ordered = make([][]byte, want)
	}
	ordered := d.ordered[:want]
	for i := range ordered {
		ordered[i] = nil
	}
	for i, seq := range d.seqs[ts] {
		idx := int(seq - first)
		if idx < 0 || idx >= want {
			return nil // stray fragment from another frame
		}
		ordered[idx] = d.frames[ts][i]
	}
	out := d.getBuf()
	for _, seg := range ordered {
		if seg == nil {
			d.putBuf(out)
			return nil
		}
		out = append(out, seg...)
	}
	d.drop(ts)
	d.haveStart = true
	d.nextSeq = mseq + 1
	d.FramesOut++
	return out
}

func (d *Depacketizer) drop(ts uint32) {
	if fl := d.frames[ts]; fl != nil {
		for i, seg := range fl {
			d.putBuf(seg)
			fl[i] = nil
		}
		if cap(fl) > 0 {
			d.listPool = append(d.listPool, fl[:0])
		}
	}
	if sl := d.seqs[ts]; cap(sl) > 0 {
		d.seqPool = append(d.seqPool, sl[:0])
	}
	delete(d.frames, ts)
	delete(d.seqs, ts)
	delete(d.marker, ts)
	delete(d.first, ts)
}

// GC drops incomplete frames older than the given timestamp horizon,
// counting them as lost, and advances the in-order anchor past them so
// later frames can deliver.
func (d *Depacketizer) GC(beforeTS uint32) {
	for ts := range d.frames {
		if ts < beforeTS {
			// Skip the anchor past this frame if it was next in line.
			if m, ok := d.marker[ts]; ok && d.haveStart && !seqLess(m, d.nextSeq) {
				d.nextSeq = m + 1
			}
			d.drop(ts)
			d.FramesDropped++
		}
	}
}

// ReceiverReport summarizes reception quality, RTCP RR style.
type ReceiverReport struct {
	SSRC          uint32
	HighestSeq    uint16
	PacketsRecv   int64
	PacketsLost   int64
	FractionLost  float64
	JitterSamples int64
}

// ReportFor derives a receiver report from observed sequence numbers.
func ReportFor(ssrc uint32, seqs []uint16, received int64) ReceiverReport {
	rr := ReceiverReport{SSRC: ssrc, PacketsRecv: received}
	if len(seqs) == 0 {
		return rr
	}
	lo, hi := seqs[0], seqs[0]
	for _, s := range seqs {
		if seqLess(s, lo) {
			lo = s
		}
		if seqLess(hi, s) {
			hi = s
		}
	}
	rr.HighestSeq = hi
	expected := int64(hi-lo) + 1
	if expected > received {
		rr.PacketsLost = expected - received
		rr.FractionLost = float64(rr.PacketsLost) / float64(expected)
	}
	return rr
}
