package rtp

import (
	"bytes"
	"testing"
	"testing/quick"

	"telepresence/internal/simrand"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{PayloadType: PTFaceTimeVideo, Marker: true, Seq: 4242, Timestamp: 900123, SSRC: 0xDEADBEEF}
	b := h.Marshal(nil)
	if len(b) != HeaderLen {
		t.Fatalf("header length %d, want %d", len(b), HeaderLen)
	}
	var got Header
	rest, err := got.Unmarshal(append(b, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip %+v != %+v", got, h)
	}
	if !bytes.Equal(rest, []byte{1, 2, 3}) {
		t.Error("payload not returned")
	}
}

func TestHeaderProperty(t *testing.T) {
	f := func(pt uint8, marker bool, seq uint16, ts, ssrc uint32) bool {
		h := Header{PayloadType: PayloadType(pt & 0x7F), Marker: marker, Seq: seq, Timestamp: ts, SSRC: ssrc}
		var got Header
		_, err := got.Unmarshal(h.Marshal(nil))
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var h Header
	if _, err := h.Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := h.Unmarshal(make([]byte, 5)); err == nil {
		t.Error("short packet accepted")
	}
	bad := make([]byte, HeaderLen)
	bad[0] = 0x00 // version 0
	if _, err := h.Unmarshal(bad); err == nil {
		t.Error("version 0 accepted")
	}
}

func TestIsRTP(t *testing.T) {
	h := Header{PayloadType: PTGenericVideo, Seq: 1, SSRC: 2}
	pkt := h.Marshal(nil)
	if !IsRTP(pkt) {
		t.Error("valid RTP not classified")
	}
	if IsRTP(nil) || IsRTP([]byte{0x40, 0x01}) {
		t.Error("non-RTP classified as RTP")
	}
	// QUIC short header must not classify as RTP.
	quicish := append([]byte{0x40}, make([]byte, 20)...)
	if IsRTP(quicish) {
		t.Error("QUIC short header classified as RTP")
	}
	// Static PT outside the dynamic range is not a VCA stream.
	low := Header{PayloadType: 8, Seq: 1}
	if IsRTP(low.Marshal(nil)) {
		t.Error("PT 8 classified as VCA RTP")
	}
}

func TestPacketizeSingle(t *testing.T) {
	p := NewPacketizer(PTFaceTimeVideo, 7)
	pkts := p.Packetize([]byte("small frame"), 0.1)
	if len(pkts) != 1 {
		t.Fatalf("%d packets, want 1", len(pkts))
	}
	var h Header
	payload, err := h.Unmarshal(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	if !h.Marker {
		t.Error("single packet missing marker")
	}
	if string(payload) != "small frame" {
		t.Error("payload mismatch")
	}
	if h.Timestamp != 9000 { // 0.1s * 90kHz
		t.Errorf("timestamp %d, want 9000", h.Timestamp)
	}
}

func TestPacketizeFragments(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 9)
	frame := bytes.Repeat([]byte{0xAB}, MTU*3+10)
	pkts := p.Packetize(frame, 0)
	if len(pkts) != 4 {
		t.Fatalf("%d packets, want 4", len(pkts))
	}
	for i, pkt := range pkts {
		var h Header
		if _, err := h.Unmarshal(pkt); err != nil {
			t.Fatal(err)
		}
		if wantMarker := i == len(pkts)-1; h.Marker != wantMarker {
			t.Errorf("packet %d marker=%v", i, h.Marker)
		}
		if h.Seq != uint16(i) {
			t.Errorf("packet %d seq=%d", i, h.Seq)
		}
	}
}

func TestDepacketizeInOrder(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	frame := bytes.Repeat([]byte("video"), 1000)
	var got []byte
	for _, pkt := range p.Packetize(frame, 0.5) {
		outs, err := d.Push(pkt)
		if err != nil {
			t.Fatal(err)
		}
		for _, out := range outs {
			got = out
		}
	}
	if !bytes.Equal(got, frame) {
		t.Fatalf("reassembly mismatch: %d vs %d bytes", len(got), len(frame))
	}
	if d.FramesOut != 1 {
		t.Errorf("FramesOut = %d", d.FramesOut)
	}
}

func TestDepacketizeReordered(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	frame := bytes.Repeat([]byte{1, 2, 3}, 2000)
	pkts := p.Packetize(frame, 1.0)
	rng := simrand.New(1)
	rng.Shuffle(len(pkts), func(i, j int) { pkts[i], pkts[j] = pkts[j], pkts[i] })
	var got []byte
	for _, pkt := range pkts {
		outs, _ := d.Push(pkt)
		for _, out := range outs {
			got = out
		}
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("reordered reassembly failed")
	}
}

func TestDepacketizeLossDropsFrame(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	frame := bytes.Repeat([]byte{9}, MTU*4)
	pkts := p.Packetize(frame, 2.0)
	// Drop one middle packet.
	for i, pkt := range pkts {
		if i == 2 {
			continue
		}
		if outs, _ := d.Push(pkt); len(outs) != 0 {
			t.Fatal("incomplete frame delivered")
		}
	}
	d.GC(90000 * 3)
	if d.FramesDropped != 1 {
		t.Errorf("FramesDropped = %d, want 1", d.FramesDropped)
	}
}

func TestDepacketizeInterleavedFrames(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	f1 := bytes.Repeat([]byte{1}, MTU*2)
	f2 := bytes.Repeat([]byte{2}, MTU*2)
	p1 := p.Packetize(f1, 1.0)
	p2 := p.Packetize(f2, 2.0)
	// Interleave. Frames returned by Push are loaned until the next Push,
	// so copy to retain them across the loop.
	var done [][]byte
	for i := 0; i < len(p1); i++ {
		outs, _ := d.Push(p1[i])
		for _, f := range outs {
			done = append(done, append([]byte(nil), f...))
		}
		outs, _ = d.Push(p2[i])
		for _, f := range outs {
			done = append(done, append([]byte(nil), f...))
		}
	}
	if len(done) != 2 {
		t.Fatalf("completed %d frames, want 2", len(done))
	}
	if !bytes.Equal(done[0], f1) || !bytes.Equal(done[1], f2) {
		t.Error("interleaved frames corrupted")
	}
}

func TestSeqWraparound(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	p.seq = 65534 // force wrap inside a frame
	d := NewDepacketizer()
	frame := bytes.Repeat([]byte{7}, MTU*4)
	var got []byte
	for _, pkt := range p.Packetize(frame, 3.0) {
		outs, _ := d.Push(pkt)
		for _, out := range outs {
			got = out
		}
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("reassembly across seq wraparound failed")
	}
}

func TestReceiverReport(t *testing.T) {
	// 10 packets expected (seq 100..109), 8 received.
	seqs := []uint16{100, 101, 103, 104, 105, 106, 108, 109}
	rr := ReportFor(42, seqs, int64(len(seqs)))
	if rr.PacketsLost != 2 {
		t.Errorf("PacketsLost = %d, want 2", rr.PacketsLost)
	}
	if rr.FractionLost != 0.2 {
		t.Errorf("FractionLost = %v, want 0.2", rr.FractionLost)
	}
	if rr.HighestSeq != 109 {
		t.Errorf("HighestSeq = %d", rr.HighestSeq)
	}
	empty := ReportFor(1, nil, 0)
	if empty.PacketsLost != 0 {
		t.Error("empty report lost packets")
	}
}

func TestFaceTimePTUnchangedAcrossModes(t *testing.T) {
	// §4.1: FaceTime's PT field for Vision Pro <-> non-Vision Pro calls is
	// the same as in traditional 2D calls. The constant encodes that.
	if PTFaceTimeVideo != 97 {
		t.Error("FaceTime video PT drifted from its 2D-call value")
	}
}

func BenchmarkPacketize(b *testing.B) {
	p := NewPacketizer(PTGenericVideo, 1)
	frame := bytes.Repeat([]byte{1}, 8000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Packetize(frame, float64(i)/30)
	}
}

func BenchmarkDepacketize(b *testing.B) {
	p := NewPacketizer(PTGenericVideo, 1)
	frame := bytes.Repeat([]byte{1}, 8000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDepacketizer()
		for _, pkt := range p.Packetize(frame, float64(i)/30) {
			if _, err := d.Push(pkt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestDepacketizeLateFirstPacketNoMisframe(t *testing.T) {
	// Regression: if the FIRST packet of a frame arrives after the
	// marker, the frame must still assemble completely (anchored on the
	// previous frame's marker), never as a truncated prefix-less blob.
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	f1 := bytes.Repeat([]byte{1}, MTU*2)
	f2 := append([]byte{0xAA, 0xBB}, bytes.Repeat([]byte{2}, MTU*3)...)
	p1 := p.Packetize(f1, 1.0)
	p2 := p.Packetize(f2, 2.0)
	var got [][]byte
	push := func(pkt []byte) {
		outs, err := d.Push(pkt)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, outs...)
	}
	// Frame 1 in order; frame 2 with its first packet LAST.
	for _, pkt := range p1 {
		push(pkt)
	}
	for _, pkt := range p2[1:] {
		push(pkt)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d frames before frame 2 complete, want 1", len(got))
	}
	push(p2[0])
	if len(got) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(got))
	}
	if !bytes.Equal(got[1], f2) {
		t.Fatalf("frame 2 mis-assembled: %d bytes vs %d", len(got[1]), len(f2))
	}
}

func TestDepacketizeGCUnblocksLaterFrames(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	f0 := bytes.Repeat([]byte{0}, MTU)
	f1 := bytes.Repeat([]byte{1}, MTU*3)
	f2 := bytes.Repeat([]byte{2}, MTU*2)
	p0 := p.Packetize(f0, 0.5)
	p1 := p.Packetize(f1, 1.0)
	p2 := p.Packetize(f2, 2.0)
	// Frame 0 establishes the in-order anchor.
	outs, _ := d.Push(p0[0])
	if len(outs) != 1 {
		t.Fatal("anchor frame not delivered")
	}
	// Frame 1 loses a packet; frame 2 arrives complete but must wait.
	d.Push(p1[0])
	d.Push(p1[2])
	var got [][]byte
	for _, pkt := range p2 {
		outs, _ := d.Push(pkt)
		got = append(got, outs...)
	}
	if len(got) != 0 {
		t.Fatal("frame 2 delivered out of order past an incomplete frame")
	}
	// GC drops the stalled frame and advances the anchor.
	d.GC(90000 * 2)                 // horizon covers frame 1's ts only
	outs, _ = d.Push(p2[len(p2)-1]) // duplicate marker re-triggers
	got = append(got, outs...)
	if len(got) != 1 || !bytes.Equal(got[0], f2) {
		t.Fatalf("frame 2 not recovered after GC: %d frames", len(got))
	}
	if d.FramesDropped != 1 {
		t.Errorf("FramesDropped = %d, want 1", d.FramesDropped)
	}
}

// TestPacketizeAllocBudget pins the steady-state allocation cost of
// Packetize: the packet-list header plus one fresh buffer per packet
// (packets are handed to the network layer and cannot be pooled here).
func TestPacketizeAllocBudget(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	frame := bytes.Repeat([]byte{3}, 900) // single-packet frame
	allocs := testing.AllocsPerRun(200, func() {
		if got := p.Packetize(frame, 1.0); len(got) != 1 {
			t.Fatalf("%d packets, want 1", len(got))
		}
	})
	if allocs > 2 {
		t.Errorf("Packetize allocates %.1f per sub-MTU frame, budget 2 (list + packet)", allocs)
	}
}

// TestDepacketizerSteadyStateAllocs pins the reassembly path: pooled
// fragment and frame buffers make the in-order packetize->push round trip
// allocation-free after warm-up, except the packets themselves.
func TestDepacketizerSteadyStateAllocs(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	frame := bytes.Repeat([]byte{5}, MTU*2)
	push := func() {
		for _, pkt := range p.Packetize(frame, 1.0) {
			if _, err := d.Push(pkt); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 5; i++ {
		push() // warm the pools
	}
	allocs := testing.AllocsPerRun(100, push)
	// 3 packets per frame: list header + 3 packet buffers from Packetize;
	// the depacketizer itself must add nothing in steady state.
	if allocs > 4 {
		t.Errorf("packetize+push allocates %.1f per frame, budget 4", allocs)
	}
}
