package rtp

import (
	"bytes"
	"testing"
	"testing/quick"

	"telepresence/internal/simrand"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{PayloadType: PTFaceTimeVideo, Marker: true, Seq: 4242, Timestamp: 900123, SSRC: 0xDEADBEEF}
	b := h.Marshal(nil)
	if len(b) != HeaderLen {
		t.Fatalf("header length %d, want %d", len(b), HeaderLen)
	}
	var got Header
	rest, err := got.Unmarshal(append(b, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip %+v != %+v", got, h)
	}
	if !bytes.Equal(rest, []byte{1, 2, 3}) {
		t.Error("payload not returned")
	}
}

func TestHeaderProperty(t *testing.T) {
	f := func(pt uint8, marker bool, seq uint16, ts, ssrc uint32) bool {
		h := Header{PayloadType: PayloadType(pt & 0x7F), Marker: marker, Seq: seq, Timestamp: ts, SSRC: ssrc}
		var got Header
		_, err := got.Unmarshal(h.Marshal(nil))
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var h Header
	if _, err := h.Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := h.Unmarshal(make([]byte, 5)); err == nil {
		t.Error("short packet accepted")
	}
	bad := make([]byte, HeaderLen)
	bad[0] = 0x00 // version 0
	if _, err := h.Unmarshal(bad); err == nil {
		t.Error("version 0 accepted")
	}
}

func TestIsRTP(t *testing.T) {
	h := Header{PayloadType: PTGenericVideo, Seq: 1, SSRC: 2}
	pkt := h.Marshal(nil)
	if !IsRTP(pkt) {
		t.Error("valid RTP not classified")
	}
	if IsRTP(nil) || IsRTP([]byte{0x40, 0x01}) {
		t.Error("non-RTP classified as RTP")
	}
	// QUIC short header must not classify as RTP.
	quicish := append([]byte{0x40}, make([]byte, 20)...)
	if IsRTP(quicish) {
		t.Error("QUIC short header classified as RTP")
	}
	// Static PT outside the dynamic range is not a VCA stream.
	low := Header{PayloadType: 8, Seq: 1}
	if IsRTP(low.Marshal(nil)) {
		t.Error("PT 8 classified as VCA RTP")
	}
}

func TestPacketizeSingle(t *testing.T) {
	p := NewPacketizer(PTFaceTimeVideo, 7)
	pkts := p.Packetize([]byte("small frame"), 0.1)
	if len(pkts) != 1 {
		t.Fatalf("%d packets, want 1", len(pkts))
	}
	var h Header
	payload, err := h.Unmarshal(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	if !h.Marker {
		t.Error("single packet missing marker")
	}
	if string(payload) != "small frame" {
		t.Error("payload mismatch")
	}
	if h.Timestamp != 9000 { // 0.1s * 90kHz
		t.Errorf("timestamp %d, want 9000", h.Timestamp)
	}
}

func TestPacketizeFragments(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 9)
	frame := bytes.Repeat([]byte{0xAB}, MTU*3+10)
	pkts := p.Packetize(frame, 0)
	if len(pkts) != 4 {
		t.Fatalf("%d packets, want 4", len(pkts))
	}
	for i, pkt := range pkts {
		var h Header
		if _, err := h.Unmarshal(pkt); err != nil {
			t.Fatal(err)
		}
		if wantMarker := i == len(pkts)-1; h.Marker != wantMarker {
			t.Errorf("packet %d marker=%v", i, h.Marker)
		}
		if h.Seq != uint16(i) {
			t.Errorf("packet %d seq=%d", i, h.Seq)
		}
	}
}

func TestDepacketizeInOrder(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	frame := bytes.Repeat([]byte("video"), 1000)
	var got []byte
	for _, pkt := range p.Packetize(frame, 0.5) {
		outs, err := d.Push(pkt)
		if err != nil {
			t.Fatal(err)
		}
		for _, out := range outs {
			got = out
		}
	}
	if !bytes.Equal(got, frame) {
		t.Fatalf("reassembly mismatch: %d vs %d bytes", len(got), len(frame))
	}
	if d.FramesOut != 1 {
		t.Errorf("FramesOut = %d", d.FramesOut)
	}
}

func TestDepacketizeReordered(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	frame := bytes.Repeat([]byte{1, 2, 3}, 2000)
	pkts := p.Packetize(frame, 1.0)
	rng := simrand.New(1)
	rng.Shuffle(len(pkts), func(i, j int) { pkts[i], pkts[j] = pkts[j], pkts[i] })
	var got []byte
	for _, pkt := range pkts {
		outs, _ := d.Push(pkt)
		for _, out := range outs {
			got = out
		}
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("reordered reassembly failed")
	}
}

func TestDepacketizeLossDropsFrame(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	frame := bytes.Repeat([]byte{9}, MTU*4)
	pkts := p.Packetize(frame, 2.0)
	// Drop one middle packet.
	for i, pkt := range pkts {
		if i == 2 {
			continue
		}
		if outs, _ := d.Push(pkt); len(outs) != 0 {
			t.Fatal("incomplete frame delivered")
		}
	}
	d.GC(90000 * 3)
	if d.FramesDropped != 1 {
		t.Errorf("FramesDropped = %d, want 1", d.FramesDropped)
	}
}

func TestDepacketizeInterleavedFrames(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	f1 := bytes.Repeat([]byte{1}, MTU*2)
	f2 := bytes.Repeat([]byte{2}, MTU*2)
	p1 := p.Packetize(f1, 1.0)
	p2 := p.Packetize(f2, 2.0)
	// Interleave. Frames returned by Push are loaned until the next Push,
	// so copy to retain them across the loop.
	var done [][]byte
	for i := 0; i < len(p1); i++ {
		outs, _ := d.Push(p1[i])
		for _, f := range outs {
			done = append(done, append([]byte(nil), f...))
		}
		outs, _ = d.Push(p2[i])
		for _, f := range outs {
			done = append(done, append([]byte(nil), f...))
		}
	}
	if len(done) != 2 {
		t.Fatalf("completed %d frames, want 2", len(done))
	}
	if !bytes.Equal(done[0], f1) || !bytes.Equal(done[1], f2) {
		t.Error("interleaved frames corrupted")
	}
}

func TestSeqWraparound(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	p.seq = 65534 // force wrap inside a frame
	d := NewDepacketizer()
	frame := bytes.Repeat([]byte{7}, MTU*4)
	var got []byte
	for _, pkt := range p.Packetize(frame, 3.0) {
		outs, _ := d.Push(pkt)
		for _, out := range outs {
			got = out
		}
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("reassembly across seq wraparound failed")
	}
}

func TestReceiverReport(t *testing.T) {
	// 10 packets expected (seq 100..109), 8 received.
	seqs := []uint16{100, 101, 103, 104, 105, 106, 108, 109}
	rr := ReportFor(42, seqs, int64(len(seqs)))
	if rr.PacketsLost != 2 {
		t.Errorf("PacketsLost = %d, want 2", rr.PacketsLost)
	}
	if rr.FractionLost != 0.2 {
		t.Errorf("FractionLost = %v, want 0.2", rr.FractionLost)
	}
	if rr.HighestSeq != 109 {
		t.Errorf("HighestSeq = %d", rr.HighestSeq)
	}
	empty := ReportFor(1, nil, 0)
	if empty.PacketsLost != 0 {
		t.Error("empty report lost packets")
	}
}

func TestFaceTimePTUnchangedAcrossModes(t *testing.T) {
	// §4.1: FaceTime's PT field for Vision Pro <-> non-Vision Pro calls is
	// the same as in traditional 2D calls. The constant encodes that.
	if PTFaceTimeVideo != 97 {
		t.Error("FaceTime video PT drifted from its 2D-call value")
	}
}

func BenchmarkPacketize(b *testing.B) {
	p := NewPacketizer(PTGenericVideo, 1)
	frame := bytes.Repeat([]byte{1}, 8000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Packetize(frame, float64(i)/30)
	}
}

func BenchmarkDepacketize(b *testing.B) {
	p := NewPacketizer(PTGenericVideo, 1)
	frame := bytes.Repeat([]byte{1}, 8000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDepacketizer()
		for _, pkt := range p.Packetize(frame, float64(i)/30) {
			if _, err := d.Push(pkt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestDepacketizeLateFirstPacketNoMisframe(t *testing.T) {
	// Regression: if the FIRST packet of a frame arrives after the
	// marker, the frame must still assemble completely (anchored on the
	// previous frame's marker), never as a truncated prefix-less blob.
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	f1 := bytes.Repeat([]byte{1}, MTU*2)
	f2 := append([]byte{0xAA, 0xBB}, bytes.Repeat([]byte{2}, MTU*3)...)
	p1 := p.Packetize(f1, 1.0)
	p2 := p.Packetize(f2, 2.0)
	var got [][]byte
	push := func(pkt []byte) {
		outs, err := d.Push(pkt)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, outs...)
	}
	// Frame 1 in order; frame 2 with its first packet LAST.
	for _, pkt := range p1 {
		push(pkt)
	}
	for _, pkt := range p2[1:] {
		push(pkt)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d frames before frame 2 complete, want 1", len(got))
	}
	push(p2[0])
	if len(got) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(got))
	}
	if !bytes.Equal(got[1], f2) {
		t.Fatalf("frame 2 mis-assembled: %d bytes vs %d", len(got[1]), len(f2))
	}
}

func TestDepacketizeGCUnblocksLaterFrames(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	f0 := bytes.Repeat([]byte{0}, MTU)
	f1 := bytes.Repeat([]byte{1}, MTU*3)
	f2 := bytes.Repeat([]byte{2}, MTU*2)
	p0 := p.Packetize(f0, 0.5)
	p1 := p.Packetize(f1, 1.0)
	p2 := p.Packetize(f2, 2.0)
	// Frame 0 establishes the in-order anchor.
	outs, _ := d.Push(p0[0])
	if len(outs) != 1 {
		t.Fatal("anchor frame not delivered")
	}
	// Frame 1 loses a packet; frame 2 arrives complete but must wait.
	d.Push(p1[0])
	d.Push(p1[2])
	var got [][]byte
	for _, pkt := range p2 {
		outs, _ := d.Push(pkt)
		got = append(got, outs...)
	}
	if len(got) != 0 {
		t.Fatal("frame 2 delivered out of order past an incomplete frame")
	}
	// GC drops the stalled frame and advances the anchor.
	d.GC(90000 * 2)                 // horizon covers frame 1's ts only
	outs, _ = d.Push(p2[len(p2)-1]) // duplicate marker re-triggers
	got = append(got, outs...)
	if len(got) != 1 || !bytes.Equal(got[0], f2) {
		t.Fatalf("frame 2 not recovered after GC: %d frames", len(got))
	}
	if d.FramesDropped != 1 {
		t.Errorf("FramesDropped = %d, want 1", d.FramesDropped)
	}
}

// TestPacketizeAllocBudget pins the steady-state allocation cost of
// Packetize: the packet-list header plus one fresh buffer per packet
// (packets are handed to the network layer and cannot be pooled here).
func TestPacketizeAllocBudget(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	frame := bytes.Repeat([]byte{3}, 900) // single-packet frame
	allocs := testing.AllocsPerRun(200, func() {
		if got := p.Packetize(frame, 1.0); len(got) != 1 {
			t.Fatalf("%d packets, want 1", len(got))
		}
	})
	if allocs > 2 {
		t.Errorf("Packetize allocates %.1f per sub-MTU frame, budget 2 (list + packet)", allocs)
	}
}

// TestDepacketizerSteadyStateAllocs pins the reassembly path: pooled
// fragment and frame buffers make the in-order packetize->push round trip
// allocation-free after warm-up, except the packets themselves.
func TestDepacketizerSteadyStateAllocs(t *testing.T) {
	p := NewPacketizer(PTGenericVideo, 1)
	d := NewDepacketizer()
	frame := bytes.Repeat([]byte{5}, MTU*2)
	push := func() {
		for _, pkt := range p.Packetize(frame, 1.0) {
			if _, err := d.Push(pkt); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 5; i++ {
		push() // warm the pools
	}
	allocs := testing.AllocsPerRun(100, push)
	// 3 packets per frame: list header + 3 packet buffers from Packetize;
	// the depacketizer itself must add nothing in steady state.
	if allocs > 4 {
		t.Errorf("packetize+push allocates %.1f per frame, budget 4", allocs)
	}
}

func TestSSRCHelpers(t *testing.T) {
	for i := 0; i < 16; i++ {
		if s, audio, ok := SenderOf(VideoSSRC(i)); !ok || audio || s != i {
			t.Errorf("SenderOf(VideoSSRC(%d)) = (%d,%v,%v)", i, s, audio, ok)
		}
		if s, audio, ok := SenderOf(AudioSSRC(i)); !ok || !audio || s != i {
			t.Errorf("SenderOf(AudioSSRC(%d)) = (%d,%v,%v)", i, s, audio, ok)
		}
	}
	if _, _, ok := SenderOf(42); ok {
		t.Error("SSRC 42 attributed to a sender")
	}
	if _, _, ok := SenderOf(0xDEADBEEF); ok {
		t.Error("random SSRC attributed to a sender")
	}
}

func TestReportRoundTrip(t *testing.T) {
	in := ReceiverReport{
		SSRC: VideoSSRC(3), HighestSeq: 0xBEEF, ExtHighestSeq: 5<<16 | 0xBEEF,
		PacketsRecv: 123456, PacketsLost: 789, FractionLost: 0.0625,
		JitterMs: 1.5, RecvRateBps: 1.9e6, MeanOwdMs: 23.25, IntervalMs: 100,
	}
	wire := in.Marshal(nil)
	if len(wire) != ReportLen {
		t.Fatalf("marshaled length %d, want %d", len(wire), ReportLen)
	}
	if !IsReport(wire) {
		t.Fatal("marshaled report not classified by IsReport")
	}
	if IsRTP(wire) {
		t.Fatal("marshaled report classified as RTP")
	}
	var out ReceiverReport
	if err := out.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip:\n in: %+v\nout: %+v", in, out)
	}
}

// TestReportRoundTripProperty drives the report wire format through
// randomized field values: every finite report must survive a
// Marshal/Unmarshal round trip bit-exactly, and the wire bytes must never
// classify as RTP (the two formats share links).
func TestReportRoundTripProperty(t *testing.T) {
	f := func(ssrc, ext uint32, recv, lost int64, frac, jit, rate, owd, interval float64) bool {
		in := ReceiverReport{
			SSRC: ssrc, HighestSeq: uint16(ext), ExtHighestSeq: ext,
			PacketsRecv: recv, PacketsLost: lost, FractionLost: frac,
			JitterMs: jit, RecvRateBps: rate, MeanOwdMs: owd, IntervalMs: interval,
		}
		wire := in.Marshal(nil)
		var out ReceiverReport
		if err := out.Unmarshal(wire); err != nil {
			return false
		}
		return out == in && IsReport(wire) && !IsRTP(wire)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestReportUnmarshalErrors(t *testing.T) {
	var r ReceiverReport
	if err := r.Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
	if err := r.Unmarshal(make([]byte, ReportLen-1)); err == nil {
		t.Error("short buffer accepted")
	}
	wire := (&ReceiverReport{SSRC: 1}).Marshal(nil)
	wire[2] = 99 // unknown version
	if err := r.Unmarshal(wire); err == nil {
		t.Error("bad version accepted")
	}
	// An RTP packet must not parse as a report.
	h := Header{PayloadType: PTGenericVideo, Seq: 1, SSRC: 2}
	pkt := h.Marshal(nil)
	pkt = append(pkt, make([]byte, ReportLen)...)
	if err := r.Unmarshal(pkt); err == nil {
		t.Error("RTP packet accepted as report")
	}
}

// TestReportForSeqWraparound pins the wraparound fix: a stream longer than
// 2^16 packets used to alias its expected-packet count modulo 65,536 and
// undercount (or zero out) losses. Extended sequence tracking counts every
// wrap cycle.
func TestReportForSeqWraparound(t *testing.T) {
	// 150,001 packets (two wraps), dropping every 100th interior packet:
	// 1,500 lost inside the observed span.
	var seqs []uint16
	var received int64
	const total = 150001
	for i := 0; i < total; i++ {
		if i%100 == 99 {
			continue // lost
		}
		seqs = append(seqs, uint16(i))
		received++
	}
	rr := ReportFor(7, seqs, received)
	if want := int64(total) - received; rr.PacketsLost != want {
		t.Errorf("PacketsLost = %d, want %d (wraparound aliasing)", rr.PacketsLost, want)
	}
	if got := rr.FractionLost; got < 0.0099 || got > 0.0101 {
		t.Errorf("FractionLost = %v, want ~0.01", got)
	}
	if want := uint16((total - 1) % 65536); rr.HighestSeq != want {
		t.Errorf("HighestSeq = %d, want %d", rr.HighestSeq, want)
	}
	if rr.ExtHighestSeq>>16 != 1+(total-1)>>16 {
		t.Errorf("ExtHighestSeq cycles = %d, want %d", rr.ExtHighestSeq>>16, 1+(total-1)>>16)
	}
}

// TestReportForWrapInsideWindow: a short window that straddles the 16-bit
// wrap (reordered, with losses) must still count correctly.
func TestReportForWrapInsideWindow(t *testing.T) {
	// seqs 65530..65535,0..5 with 65533 and 2 missing, one reorder.
	seqs := []uint16{65530, 65532, 65531, 65534, 65535, 0, 1, 3, 4, 5}
	rr := ReportFor(9, seqs, int64(len(seqs)))
	if rr.PacketsLost != 2 {
		t.Errorf("PacketsLost = %d, want 2", rr.PacketsLost)
	}
	if rr.HighestSeq != 5 {
		t.Errorf("HighestSeq = %d, want 5", rr.HighestSeq)
	}
}

func TestReportBuilderIntervals(t *testing.T) {
	b := NewReportBuilder(VideoSSRC(0))
	// Interval 1: 10 packets, 1200 B each, 20 ms OWD, one gap (seq 5 lost).
	now := 0.0
	for i := 0; i < 11; i++ {
		if i == 5 {
			continue
		}
		now = float64(i) * 10
		b.OnPacket(uint16(i), now, now+20, 1200)
	}
	rr := b.MakeReport(100)
	if rr.PacketsRecv != 10 || rr.PacketsLost != 1 {
		t.Errorf("recv/lost = %d/%d, want 10/1", rr.PacketsRecv, rr.PacketsLost)
	}
	if want := 1.0 / 11; rr.FractionLost < want-1e-9 || rr.FractionLost > want+1e-9 {
		t.Errorf("FractionLost = %v, want %v", rr.FractionLost, want)
	}
	if rr.MeanOwdMs != 20 {
		t.Errorf("MeanOwdMs = %v, want 20", rr.MeanOwdMs)
	}
	if want := float64(10*1200*8) / 0.1; rr.RecvRateBps != want {
		t.Errorf("RecvRateBps = %v, want %v", rr.RecvRateBps, want)
	}
	if rr.IntervalMs != 100 {
		t.Errorf("IntervalMs = %v, want 100", rr.IntervalMs)
	}
	// Interval 2: nothing arrives — the starvation report.
	rr = b.MakeReport(200)
	if rr.RecvRateBps != 0 || rr.MeanOwdMs != 0 || rr.FractionLost != 0 {
		t.Errorf("empty interval report = %+v", rr)
	}
	if rr.PacketsRecv != 10 {
		t.Errorf("cumulative count reset: %d", rr.PacketsRecv)
	}
	// Interval 3: the stream resumes at seq 11, no further loss.
	b.OnPacket(11, 200, 225, 600)
	rr = b.MakeReport(300)
	if rr.FractionLost != 0 {
		t.Errorf("interval 3 FractionLost = %v, want 0", rr.FractionLost)
	}
	if rr.MeanOwdMs != 25 {
		t.Errorf("interval 3 MeanOwdMs = %v, want 25", rr.MeanOwdMs)
	}
}

func TestReportBuilderJitterConverges(t *testing.T) {
	b := NewReportBuilder(1)
	// Alternating OWD 20/24 ms: |transit delta| is 4 ms every packet, so
	// the RFC 3550 estimator converges toward 4 ms.
	for i := 0; i < 400; i++ {
		owd := 20.0
		if i%2 == 1 {
			owd = 24
		}
		tx := float64(i) * 10
		b.OnPacket(uint16(i), tx, tx+owd, 100)
	}
	rr := b.MakeReport(4000)
	if rr.JitterMs < 3 || rr.JitterMs > 4.1 {
		t.Errorf("JitterMs = %v, want ~4", rr.JitterMs)
	}
}

func TestReportBuilderWraparound(t *testing.T) {
	b := NewReportBuilder(1)
	// 70,000 packets in order across a wrap: zero loss.
	for i := 0; i < 70000; i++ {
		tx := float64(i)
		b.OnPacket(uint16(i), tx, tx+10, 100)
	}
	rr := b.MakeReport(70000)
	if rr.PacketsLost != 0 || rr.FractionLost != 0 {
		t.Errorf("wrap counted as loss: %+v", rr)
	}
	if rr.PacketsRecv != 70000 {
		t.Errorf("PacketsRecv = %d", rr.PacketsRecv)
	}
}
