// Trace import: build schedules from externally authored network traces.
//
// Two formats are supported, matching how weak-network conditions are
// distributed in practice:
//
//   - CSV timelines ("time_s,delay_ms,rate_kbps,loss" — column order free,
//     unknown columns ignored), the declarative form of a tc script.
//   - Packet-opportunity traces in the mahimahi mm-link format that
//     VideoTransDemo's generate-weak-network-trace.py emits: one integer
//     millisecond timestamp per line, each line granting one MTU-sized
//     delivery opportunity. These flatten to a piecewise rate schedule.
package scenario

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"telepresence/internal/simtime"
)

// TraceMTUBytes is the per-opportunity grant of a mahimahi-style trace
// (1500-byte MTU, as in mm-link and VideoTransDemo's generator).
const TraceMTUBytes = 1500

// ParseCSV reads a CSV impairment timeline into a schedule of steps. The
// header row names the columns; recognized names (case-insensitive):
//
//	time_s    event offset in seconds (required)
//	delay_ms  extra one-way delay
//	rate_kbps rate cap in kbit/s (0 = uncapped)
//	rate_bps  rate cap in bit/s (alternative to rate_kbps)
//	loss      independent loss probability
//
// Rows must be in non-decreasing time order. Unknown columns are ignored,
// so traces with extra annotation columns import unchanged.
func ParseCSV(r io.Reader) (*Schedule, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("scenario: trace header: %w", err)
	}
	col := map[string]int{}
	for i, name := range header {
		col[strings.ToLower(strings.TrimSpace(name))] = i
	}
	if _, ok := col["time_s"]; !ok {
		return nil, fmt.Errorf("scenario: trace missing required column time_s (have %v)", header)
	}
	if _, kbps := col["rate_kbps"]; kbps {
		if _, bps := col["rate_bps"]; bps {
			return nil, fmt.Errorf("scenario: trace has both rate_kbps and rate_bps columns; keep one")
		}
	}
	field := func(rec []string, name string) (float64, bool, error) {
		i, ok := col[name]
		if !ok || i >= len(rec) || strings.TrimSpace(rec[i]) == "" {
			return 0, false, nil
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[i]), 64)
		if err != nil {
			return 0, false, fmt.Errorf("scenario: trace column %s: %w", name, err)
		}
		// ParseFloat accepts "NaN" and "Inf"; neither is a usable
		// impairment value or timestamp.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false, fmt.Errorf("scenario: trace column %s: non-finite value %v", name, v)
		}
		return v, true, nil
	}

	s := New()
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: trace line %d: %w", line+1, err)
		}
		line++
		ts, ok, err := field(rec, "time_s")
		if err != nil || !ok {
			if err == nil {
				err = fmt.Errorf("scenario: trace line %d: empty time_s", line)
			}
			return nil, err
		}
		var imp Impairment
		if v, ok, err := field(rec, "delay_ms"); err != nil {
			return nil, err
		} else if ok {
			imp.ExtraDelayMs = v
		}
		if v, ok, err := field(rec, "rate_kbps"); err != nil {
			return nil, err
		} else if ok {
			imp.RateBps = v * 1e3
		}
		if v, ok, err := field(rec, "rate_bps"); err != nil {
			return nil, err
		} else if ok {
			imp.RateBps = v
		}
		if v, ok, err := field(rec, "loss"); err != nil {
			return nil, err
		} else if ok {
			imp.LossProb = v
		}
		s.StepAt(simtime.Duration(ts*float64(simtime.Second)), imp)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("scenario: trace has no rows")
	}
	return s, nil
}

// ParseMahimahi reads a mahimahi mm-link packet-opportunity trace (the
// VideoTransDemo weak-network format: one integer millisecond timestamp per
// line, one 1500-byte delivery opportunity each) and flattens it to a
// piecewise rate-cap schedule: opportunities are counted in bin-wide
// windows and each window becomes one rate step. bin <= 0 selects one
// second, the granularity of the generator's sinusoid.
func ParseMahimahi(r io.Reader, bin simtime.Duration) (*Schedule, error) {
	if bin <= 0 {
		bin = simtime.Second
	}
	sc := bufio.NewScanner(r)
	var stamps []float64 // milliseconds
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		v, err := strconv.ParseFloat(txt, 64)
		if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("scenario: mahimahi trace line %d: bad timestamp %q", line, txt)
		}
		if n := len(stamps); n > 0 && v < stamps[n-1] {
			return nil, fmt.Errorf("scenario: mahimahi trace line %d: timestamp %g before %g", line, v, stamps[n-1])
		}
		stamps = append(stamps, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: mahimahi trace: %w", err)
	}
	if len(stamps) == 0 {
		return nil, fmt.Errorf("scenario: mahimahi trace has no opportunities")
	}

	binMs := float64(bin) / float64(simtime.Millisecond)
	end := stamps[len(stamps)-1]
	// Bound the bin count before sizing anything from it: a single absurd
	// timestamp in an externally authored file must produce an error, not
	// a terabyte allocation or a float->int overflow panic.
	const maxBins = 1 << 20
	if end/binMs >= maxBins {
		return nil, fmt.Errorf("scenario: mahimahi trace spans %.0f bins of %v (max %d); check timestamps and bin width",
			end/binMs, bin, maxBins)
	}
	nbins := int(end/binMs) + 1
	counts := make([]int, nbins)
	for _, ts := range stamps {
		counts[int(ts/binMs)]++
	}
	s := New()
	binSec := float64(bin) / float64(simtime.Second)
	floor := float64(TraceMTUBytes*8) / binSec
	for i, c := range counts {
		rate := float64(c*TraceMTUBytes*8) / binSec
		if rate < floor {
			// A window with no opportunities is an outage. Rate 0 would
			// mean "uncapped" to the shaper, and a token rate would wedge
			// the serializer for hours of virtual time; one MTU per bin is
			// the fluid equivalent of mm-link's behavior (the head packet
			// waits for the next window's opportunity).
			rate = floor
		}
		s.StepAt(simtime.Duration(i)*bin, Impairment{RateBps: rate})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
