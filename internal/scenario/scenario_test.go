package scenario

import (
	"strconv"
	"strings"
	"testing"

	"telepresence/internal/netem"
	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
)

func ms(n int) simtime.Duration { return simtime.Duration(n) * simtime.Millisecond }

func TestStepScheduleDrivesShaper(t *testing.T) {
	sched := simtime.NewScheduler()
	l := netem.NewLink(sched, simrand.New(1), netem.Config{DelayMs: 5})
	s := New().
		StepAt(ms(100), Impairment{ExtraDelayMs: 500}).
		ClearAt(ms(300))
	if err := s.Bind(sched, l.Shaper()); err != nil {
		t.Fatal(err)
	}
	var times []simtime.Time
	l.SetHandler(func(now simtime.Time, f netem.Frame) { times = append(times, now) })
	send := func(at int) {
		sched.At(simtime.Time(ms(at)), func() { l.Send(netem.Frame{Size: 10}) })
	}
	send(50)  // before the step: 5 ms path
	send(200) // shaped: 505 ms path
	send(350) // after clear: 5 ms path
	sched.Run()
	want := []simtime.Time{
		simtime.Time(ms(55)),
		simtime.Time(ms(355)), // sent at 350, clean again
		simtime.Time(ms(705)), // sent at 200 under +500 ms
	}
	if len(times) != 3 {
		t.Fatalf("delivered %d frames, want 3", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("delivery %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestRampActions(t *testing.T) {
	s := New().SetTick(ms(250)).
		StepAt(0, Impairment{RateBps: 4e6}).
		RampTo(ms(1000), ms(1000), Impairment{RateBps: 1e6})
	acts, err := s.Actions()
	if err != nil {
		t.Fatal(err)
	}
	// 1 step + samples at 1000,1250,1500,1750,2000 ms.
	if len(acts) != 6 {
		t.Fatalf("%d actions, want 6: %+v", len(acts), acts)
	}
	if acts[1].At != ms(1000) || acts[1].Set.RateBps != 4e6 {
		t.Errorf("ramp start %+v, want rate 4e6 at 1s", acts[1])
	}
	mid := acts[3] // 1500 ms: halfway
	if mid.At != ms(1500) || mid.Set.RateBps != 2.5e6 {
		t.Errorf("ramp midpoint %+v, want rate 2.5e6 at 1.5s", mid)
	}
	end := acts[5]
	if end.At != ms(2000) || end.Set.RateBps != 1e6 {
		t.Errorf("ramp end %+v, want rate 1e6 at 2s", end)
	}
	if !acts[1].ResetBurst || acts[2].ResetBurst {
		t.Error("ResetBurst must mark only the ramp's first sample")
	}
	if s.Duration() != ms(2000) {
		t.Errorf("Duration = %v, want 2s", s.Duration())
	}
}

func TestRampTruncatedByNextPoint(t *testing.T) {
	s := New().SetTick(ms(100)).
		RampTo(0, ms(1000), Impairment{ExtraDelayMs: 100}).
		StepAt(ms(250), Impairment{})
	acts, err := s.Actions()
	if err != nil {
		t.Fatal(err)
	}
	// Ramp samples at 0,100,200 (250+ truncated), then the step at 250.
	if len(acts) != 4 {
		t.Fatalf("%d actions, want 4: %+v", len(acts), acts)
	}
	last := acts[len(acts)-1]
	if last.At != ms(250) || last.Set.ExtraDelayMs != 0 {
		t.Errorf("final action %+v, want clear step at 250ms", last)
	}
	for _, a := range acts[:3] {
		if a.Set.ExtraDelayMs > 25 {
			t.Errorf("truncated ramp overshot: %+v", a)
		}
	}
}

// TestTruncatedRampHandsOffLastEmittedValue pins the truncation contract:
// the segment after a truncated ramp interpolates from the last value the
// link actually saw, not from the ramp's never-reached target.
func TestTruncatedRampHandsOffLastEmittedValue(t *testing.T) {
	// Ramp 0 -> 1000 ms delay over 10 s, cut at 5 s by a recovery ramp.
	s := New().SetTick(ms(1000)).
		RampTo(0, ms(10000), Impairment{ExtraDelayMs: 1000}).
		RampTo(ms(5000), ms(5000), Impairment{})
	acts, err := s.Actions()
	if err != nil {
		t.Fatal(err)
	}
	// Last sample of the truncated ramp: t=4 s, 400 ms.
	var recoveryStart *Action
	for i := range acts {
		if acts[i].At == ms(5000) {
			recoveryStart = &acts[i]
			break
		}
	}
	if recoveryStart == nil {
		t.Fatalf("no action at the recovery ramp start: %+v", acts)
	}
	if recoveryStart.Set.ExtraDelayMs != 400 {
		t.Errorf("recovery ramp starts at %v ms delay, want 400 (last applied sample, not the 1000 ms target)",
			recoveryStart.Set.ExtraDelayMs)
	}
	for _, a := range acts {
		if a.Set.ExtraDelayMs > 400 {
			t.Errorf("delay overshot to %v ms at %v; 1000 ms target was never in force", a.Set.ExtraDelayMs, a.At)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	cases := map[string]*Schedule{
		"negative offset":   New().StepAt(-ms(1), Impairment{}),
		"out of order":      New().StepAt(ms(100), Impairment{}).StepAt(ms(50), Impairment{}),
		"negative ramp":     New().RampTo(0, -ms(1), Impairment{}),
		"bad loss":          New().StepAt(0, Impairment{LossProb: 1.5}),
		"bad rate":          New().StepAt(0, Impairment{RateBps: -1}),
		"bad burst":         New().StepAt(0, Impairment{Burst: &BurstParams{GoodToBad: 2}}),
		"non-positive tick": New().SetTick(0),
		// Ramping between "uncapped" (RateBps 0) and a finite cap would
		// interpolate through a near-zero rate; both directions rejected.
		"ramp from uncapped": New().RampTo(0, ms(1000), Impairment{RateBps: 4e6}),
		"ramp to uncapped": New().StepAt(0, Impairment{RateBps: 4e6}).
			RampTo(ms(1000), ms(1000), Impairment{}),
		// A same-instant successor would swallow the ramp before its first
		// sample; equal-timestamp steps remain a legal overwrite.
		"point swallows ramp": New().RampTo(ms(1000), ms(2000), Impairment{ExtraDelayMs: 50}).
			StepAt(ms(1000), Impairment{}),
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid schedule accepted", name)
		}
		if _, err := s.Actions(); err == nil {
			t.Errorf("%s: Actions did not surface the authoring error", name)
		}
		sched := simtime.NewScheduler()
		if err := s.Bind(sched, &netem.Shaper{}); err == nil {
			t.Errorf("%s: Bind did not surface the authoring error", name)
		}
	}
}

func TestBurstChainPerBinding(t *testing.T) {
	// Two links bound to the same schedule must get independent chains.
	sched := simtime.NewScheduler()
	s := BurstLoss(BurstParams{GoodToBad: 0.05, BadToGood: 0.2, LossBad: 1}, 0, 0)
	var shA, shB netem.Shaper
	if err := s.Bind(sched, &shA); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind(sched, &shB); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if shA.Burst == nil || shB.Burst == nil {
		t.Fatal("burst model not installed")
	}
	if shA.Burst == shB.Burst {
		t.Error("bindings share one Gilbert-Elliott chain")
	}
}

func TestRampKeepsBurstChainState(t *testing.T) {
	// Interior ramp samples must not restart the Markov chain: drive the
	// chain into the bad state, fire the next ramp sample, and check the
	// state survives.
	sched := simtime.NewScheduler()
	var sh netem.Shaper
	bp := &BurstParams{GoodToBad: 1, BadToGood: 0, LossBad: 1}
	s := New().SetTick(ms(100)).RampTo(0, ms(1000), Impairment{ExtraDelayMs: 100, Burst: bp})
	if err := s.Bind(sched, &sh); err != nil {
		t.Fatal(err)
	}
	l := netem.NewLink(sched, simrand.New(1), netem.Config{})
	sched.At(simtime.Time(ms(50)), func() {
		// One send forces the good->bad transition (GoodToBad = 1).
		lsh := l.Shaper()
		*lsh = sh
		l.Send(netem.Frame{Size: 10})
		if !lsh.Burst.InBadState() {
			t.Error("chain did not transition")
		}
	})
	var at150 *netem.GilbertElliott
	sched.At(simtime.Time(ms(150)), func() { at150 = sh.Burst })
	sched.Run()
	if at150 == nil || !at150.InBadState() {
		t.Error("ramp sample at 100ms restarted the burst chain")
	}
}

// TestZeroValueScheduleRamps pins that a Schedule built without New (legal,
// the type is exported) falls back to DefaultTick instead of looping
// forever on a zero tick.
func TestZeroValueScheduleRamps(t *testing.T) {
	var s Schedule
	s.StepAt(0, Impairment{ExtraDelayMs: 10}).
		RampTo(ms(100), ms(300), Impairment{ExtraDelayMs: 100})
	acts, err := s.Actions()
	if err != nil {
		t.Fatal(err)
	}
	// Step + ramp samples at 100,200,300,400 ms (DefaultTick = 100 ms).
	if len(acts) != 5 {
		t.Fatalf("%d actions, want 5: %+v", len(acts), acts)
	}
	if last := acts[len(acts)-1]; last.Set.ExtraDelayMs != 100 {
		t.Errorf("final sample %+v, want target 100 ms", last)
	}
}

func TestDelayStepPreset(t *testing.T) {
	s := DelayStep(500, ms(1000), ms(2000))
	acts, err := s.Actions()
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 2 || acts[0].Set.ExtraDelayMs != 500 || acts[1].Set.ExtraDelayMs != 0 {
		t.Errorf("DelayStep actions %+v", acts)
	}
	if s2 := DelayStep(500, ms(1000), 0); s2.Len() != 1 {
		t.Errorf("permanent DelayStep has %d points, want 1", s2.Len())
	}
}

func TestBandwidthRampPreset(t *testing.T) {
	s := BandwidthRamp(4e6, 0.5e6, ms(1000), ms(1000), ms(3000), ms(1000))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	acts, err := s.Actions()
	if err != nil {
		t.Fatal(err)
	}
	var floor float64 = 4e6
	for _, a := range acts {
		if a.Set.RateBps > 0 && a.Set.RateBps < floor {
			floor = a.Set.RateBps
		}
	}
	if floor != 0.5e6 {
		t.Errorf("ramp floor %v, want 0.5e6", floor)
	}
	last := acts[len(acts)-1]
	if last.Set.RateBps != 0 {
		t.Errorf("final action %+v, want cleared cap", last)
	}
}

func TestParamLabel(t *testing.T) {
	got := ParamLabel(map[string]float64{"delay_ms": 500, "loss": 0.1})
	if got != "delay_ms=500,loss=0.1" {
		t.Errorf("ParamLabel = %q", got)
	}
	if ParamLabel(nil) != "" {
		t.Errorf("empty label = %q", ParamLabel(nil))
	}
}

func TestParseCSV(t *testing.T) {
	src := `time_s,delay_ms,rate_kbps,loss,comment
0,0,4000,0,start
1.5,200,,0.05,step
3,0,1000,,recover
`
	s, err := ParseCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	acts, err := s.Actions()
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 3 {
		t.Fatalf("%d actions, want 3", len(acts))
	}
	if acts[0].Set.RateBps != 4e6 {
		t.Errorf("row 0 rate %v, want 4e6 (kbps scaled)", acts[0].Set.RateBps)
	}
	if acts[1].At != 1500*simtime.Millisecond || acts[1].Set.ExtraDelayMs != 200 ||
		acts[1].Set.LossProb != 0.05 || acts[1].Set.RateBps != 0 {
		t.Errorf("row 1 parsed as %+v", acts[1])
	}
	if acts[2].Set.RateBps != 1e6 || acts[2].Set.ExtraDelayMs != 0 {
		t.Errorf("row 2 parsed as %+v", acts[2])
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing time_s":  "delay_ms\n5\n",
		"unordered":       "time_s,delay_ms\n2,5\n1,5\n",
		"bad float":       "time_s,delay_ms\n0,abc\n",
		"no rows":         "time_s,delay_ms\n",
		"invalid loss":    "time_s,loss\n0,1.7\n",
		"negative offset": "time_s,delay_ms\n-3,5\n",
		"NaN delay":       "time_s,delay_ms\n1,NaN\n",
		"NaN time":        "time_s,delay_ms\nNaN,5\n",
		"Inf rate":        "time_s,rate_kbps\n0,+Inf\n",
		"both rate units": "time_s,rate_kbps,rate_bps\n0,1000,1000000\n",
	}
	for name, src := range cases {
		if _, err := ParseCSV(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseMahimahi(t *testing.T) {
	// 1 s at 8 opportunities (96 kbps), then 1 s at 2 (24 kbps).
	var b strings.Builder
	for i := 0; i < 8; i++ {
		b.WriteString(strconv.Itoa(i*125) + "\n")
	}
	for i := 0; i < 2; i++ {
		b.WriteString(strconv.Itoa(1000+i*500) + "\n")
	}
	s, err := ParseMahimahi(strings.NewReader(b.String()), simtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	acts, err := s.Actions()
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 2 {
		t.Fatalf("%d actions, want 2", len(acts))
	}
	if want := float64(8 * TraceMTUBytes * 8); acts[0].Set.RateBps != want {
		t.Errorf("bin 0 rate %v, want %v", acts[0].Set.RateBps, want)
	}
	if want := float64(2 * TraceMTUBytes * 8); acts[1].Set.RateBps != want {
		t.Errorf("bin 1 rate %v, want %v", acts[1].Set.RateBps, want)
	}
}

// TestParseMahimahiOutageBin pins outage handling: a window with no
// delivery opportunities becomes a one-MTU-per-bin cap (the head frame
// waits for the next window), never a token rate that would wedge the
// serializer for hours of virtual time.
func TestParseMahimahiOutageBin(t *testing.T) {
	// Bin 0: 8 opportunities; bin 1: none; bin 2: one at 2500 ms.
	s, err := ParseMahimahi(strings.NewReader("0\n125\n250\n375\n500\n625\n750\n875\n2500\n"), simtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	acts, err := s.Actions()
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 3 {
		t.Fatalf("%d actions, want 3", len(acts))
	}
	floor := float64(TraceMTUBytes * 8) // one MTU per 1 s bin
	if got := acts[1].Set.RateBps; got != floor {
		t.Errorf("outage bin rate %v, want floor %v", got, floor)
	}
	// A 1500 B frame sent in the outage must serialize within one bin, so
	// the link recovers as soon as the trace does.
	if ser := float64(TraceMTUBytes*8) / acts[1].Set.RateBps; ser > 1 {
		t.Errorf("outage-bin serialization %v s wedges the link past the bin", ser)
	}
}

func TestParseMahimahiErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"negative":   "-5\n",
		"descending": "10\n5\n",
		"garbage":    "abc\n",
		// One absurd-but-finite timestamp must error, not allocate a
		// terabyte bin array or overflow the float->int conversion.
		"huge span":     "0\n9e15\n",
		"overflow span": "0\n1e300\n",
	}
	for name, src := range cases {
		if _, err := ParseMahimahi(strings.NewReader(src), 0); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
