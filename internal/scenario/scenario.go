// Package scenario provides declarative timelines of network impairment:
// the simulation's answer to the paper's §4.3 methodology, where Linux tc
// injects delays "ranging from 0 to 1,000 ms" and bandwidth caps *while a
// call is running*. Instead of hand-writing experiment code that pokes a
// netem.Shaper at magic instants, callers build a Schedule — piecewise
// steps, linear ramps, and Gilbert-Elliott burst-loss segments — and bind
// it to any link's shaper; the schedule then drives the shaper from
// simtime callbacks for the life of the session.
//
// Schedules are plain data: they validate eagerly, flatten to a
// deterministic action list (inspectable in tests), and can be bound to
// any number of links — each binding gets its own burst-loss chain, so
// one schedule can parameterize a whole parameter-sweep grid (see
// internal/fleet's SweepSpec).
package scenario

import (
	"fmt"
	"sort"

	"telepresence/internal/netem"
	"telepresence/internal/simtime"
)

// Impairment is one target shaper state: the tc parameters in force from
// some instant on. The zero value means "unimpaired".
type Impairment struct {
	// ExtraDelayMs adds fixed one-way delay (tc netem delay).
	ExtraDelayMs float64
	// RateBps caps throughput (tc tbf/htb rate); 0 = uncapped.
	RateBps float64
	// LossProb drops frames independently (tc netem loss).
	LossProb float64
	// Burst, when non-nil, enables Gilbert-Elliott burst loss on top of
	// LossProb. These are parameters, not a live chain: every schedule
	// binding instantiates its own chain, so schedules stay reusable.
	Burst *BurstParams
}

// BurstParams declaratively parameterize netem's two-state Gilbert-Elliott
// chain (see netem.GilbertElliott for the model).
type BurstParams struct {
	GoodToBad float64
	BadToGood float64
	LossGood  float64
	LossBad   float64
}

// chain instantiates a fresh Markov chain from the parameters.
func (b BurstParams) chain() *netem.GilbertElliott {
	return &netem.GilbertElliott{
		GoodToBad: b.GoodToBad, BadToGood: b.BadToGood,
		LossGood: b.LossGood, LossBad: b.LossBad,
	}
}

// validate reuses netem's shaper validation so scenario and netem can never
// disagree about what a legal impairment is.
func (i Impairment) validate() error {
	sh := netem.Shaper{
		ExtraDelayMs: i.ExtraDelayMs,
		RateBps:      i.RateBps,
		LossProb:     i.LossProb,
	}
	if i.Burst != nil {
		sh.Burst = i.Burst.chain()
	}
	return sh.Validate()
}

// point is one authored timeline entry.
type point struct {
	at   simtime.Duration
	imp  Impairment
	ramp simtime.Duration // 0 = step; else linear ramp over this window
}

// Schedule is a timeline of impairment points. Build one with New and the
// StepAt/RampTo/ClearAt methods (each returns the schedule for chaining),
// or import one from a trace file (trace.go). Schedules are inert data
// until Bind attaches them to a shaper.
type Schedule struct {
	points []point
	tick   simtime.Duration
	err    error // first authoring error, surfaced by Validate/Bind
	// lastImp is the most recently authored target, used to validate that
	// ramps never interpolate across the RateBps=0 "uncapped" sentinel.
	lastImp Impairment
}

// DefaultTick is the sampling interval for ramps: a ramp re-programs the
// shaper every tick, the fluid equivalent of a tc script in a sleep loop.
const DefaultTick = 100 * simtime.Millisecond

// New returns an empty schedule with the default ramp tick.
func New() *Schedule { return &Schedule{tick: DefaultTick} }

// SetTick overrides the ramp sampling interval.
func (s *Schedule) SetTick(tick simtime.Duration) *Schedule {
	if tick <= 0 {
		s.fail(fmt.Errorf("scenario: non-positive tick %v", tick))
		return s
	}
	s.tick = tick
	return s
}

func (s *Schedule) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// StepAt sets the shaper to imp at offset at (relative to bind time).
func (s *Schedule) StepAt(at simtime.Duration, imp Impairment) *Schedule {
	return s.add(point{at: at, imp: imp})
}

// RampTo linearly interpolates the scalar impairments (delay, rate, loss)
// from their previous values to imp over the window [at, at+over], sampled
// every tick. Burst parameters do not ramp: imp.Burst takes effect at the
// ramp's start. A later point truncates an in-progress ramp, and the next
// segment then starts from the last value actually applied, not the
// never-reached target.
//
// RateBps cannot ramp to or from 0: 0 means "uncapped", and interpolating
// through the sentinel would impose a near-zero cap mid-ramp. Step to an
// explicit starting rate first (as the BandwidthRamp preset does), or use
// StepAt/ClearAt.
func (s *Schedule) RampTo(at, over simtime.Duration, imp Impairment) *Schedule {
	if over < 0 {
		s.fail(fmt.Errorf("scenario: negative ramp window %v", over))
		return s
	}
	if (s.lastImp.RateBps == 0) != (imp.RateBps == 0) {
		s.fail(fmt.Errorf(
			"scenario: ramp at %v between uncapped (RateBps 0) and %g bps would interpolate through a near-zero cap; step to an explicit rate first",
			at, s.lastImp.RateBps+imp.RateBps))
		return s
	}
	return s.add(point{at: at, imp: imp, ramp: over})
}

// ClearAt removes all impairments at offset at.
func (s *Schedule) ClearAt(at simtime.Duration) *Schedule {
	return s.StepAt(at, Impairment{})
}

func (s *Schedule) add(p point) *Schedule {
	if p.at < 0 {
		s.fail(fmt.Errorf("scenario: negative event offset %v", p.at))
		return s
	}
	if err := p.imp.validate(); err != nil {
		s.fail(fmt.Errorf("scenario: event at %v: %w", p.at, err))
		return s
	}
	if n := len(s.points); n > 0 {
		if last := s.points[n-1]; last.at > p.at {
			s.fail(fmt.Errorf("scenario: event at %v scheduled before previous event at %v",
				p.at, last.at))
			return s
		} else if last.ramp > 0 && last.at == p.at {
			// A same-instant successor would truncate the ramp before its
			// first sample fires, silently swallowing it (including its
			// burst switch). Equal-timestamp steps are a legal overwrite;
			// equal-timestamp ramp starts are an authoring error.
			s.fail(fmt.Errorf("scenario: event at %v coincides with the preceding ramp's start and would swallow it entirely", p.at))
			return s
		}
	}
	s.points = append(s.points, p)
	s.lastImp = p.imp
	return s
}

// Len reports the number of authored points.
func (s *Schedule) Len() int { return len(s.points) }

// Duration returns the offset of the last shaper change, including the end
// of a trailing ramp. Sessions shorter than this will not see the whole
// scenario.
func (s *Schedule) Duration() simtime.Duration {
	var d simtime.Duration
	for _, p := range s.points {
		if end := p.at + p.ramp; end > d {
			d = end
		}
	}
	return d
}

// Validate reports the first authoring error, or nil for a usable schedule.
func (s *Schedule) Validate() error { return s.err }

// Action is one flattened shaper write: at offset At, program the scalar
// impairments. Burst designates the burst model in force from this action
// on; ResetBurst marks authored point boundaries, where the binding
// restarts the Markov chain (interior ramp samples keep the running chain's
// state).
type Action struct {
	At         simtime.Duration
	Set        Impairment
	ResetBurst bool
}

// Actions flattens the schedule into its deterministic shaper-write list:
// steps verbatim, ramps expanded into tick-spaced interpolation samples
// (truncated at the next point). The list is what Bind schedules; tests
// assert against it directly.
func (s *Schedule) Actions() ([]Action, error) {
	if s.err != nil {
		return nil, s.err
	}
	// A zero-value Schedule (built without New) has tick 0; fall back to
	// the default rather than advancing ramp samples by nothing.
	tick := s.tick
	if tick <= 0 {
		tick = DefaultTick
	}
	var acts []Action
	prev := Impairment{} // scalar state before the first point
	for i, p := range s.points {
		next := simtime.Duration(-1)
		if i+1 < len(s.points) {
			next = s.points[i+1].at
		}
		if p.ramp == 0 {
			acts = append(acts, Action{At: p.at, Set: p.imp, ResetBurst: true})
			prev = p.imp
		} else {
			// Ramp: the burst switch and the first interpolation sample
			// land at the ramp start; scalars then glide to the target. If
			// the ramp is truncated by the next point, the segment after it
			// starts from the last sample actually applied — the authored
			// target was never in force on the link.
			from := prev
			for off := simtime.Duration(0); ; off += tick {
				// Clamp the final sample to the ramp end BEFORE the
				// truncation check: a next point after the ramp end but
				// inside the last partial tick does not truncate it.
				at := p.at + off
				last := off >= p.ramp
				f := 1.0
				if last {
					at = p.at + p.ramp
				} else {
					f = float64(off) / float64(p.ramp)
				}
				if next >= 0 && at >= next {
					break // truncated by the next point
				}
				set := Impairment{
					ExtraDelayMs: lerp(from.ExtraDelayMs, p.imp.ExtraDelayMs, f),
					RateBps:      lerp(from.RateBps, p.imp.RateBps, f),
					LossProb:     lerp(from.LossProb, p.imp.LossProb, f),
					Burst:        p.imp.Burst,
				}
				acts = append(acts, Action{At: at, Set: set, ResetBurst: off == 0})
				prev = set
				if last {
					break
				}
			}
		}
	}
	return acts, nil
}

func lerp(a, b, f float64) float64 { return a + (b-a)*f }

// Bind schedules every action onto sched (offsets relative to sched.Now()),
// driving sh for the rest of the simulation. Each binding instantiates its
// own Gilbert-Elliott chains, so a schedule may be bound to many links (or
// reused across sweep cells) without sharing Markov state.
func (s *Schedule) Bind(sched *simtime.Scheduler, sh *netem.Shaper) error {
	acts, err := s.Actions()
	if err != nil {
		return err
	}
	base := sched.Now()
	site := sched.Site("scenario.apply")
	var chain *netem.GilbertElliott
	for _, a := range acts {
		a := a
		sched.AtSite(base.Add(a.At), func() {
			sh.ExtraDelayMs = a.Set.ExtraDelayMs
			sh.RateBps = a.Set.RateBps
			sh.LossProb = a.Set.LossProb
			switch {
			case a.Set.Burst == nil:
				chain = nil
			case a.ResetBurst || chain == nil:
				chain = a.Set.Burst.chain()
			}
			sh.Burst = chain
		}, site)
	}
	return nil
}

// ---------------------------------------------------------------- Presets
//
// The §4.3-shaped timelines the core experiments (and the vpfleet sweep
// grids) are built from. Each returns a fresh schedule parameterized by the
// swept quantities.

// DelayStep models a path handover: at `at`, one-way delay steps up by
// stepMs; at `until`, the path recovers. With until <= at the impairment
// never lifts.
func DelayStep(stepMs float64, at, until simtime.Duration) *Schedule {
	s := New().StepAt(at, Impairment{ExtraDelayMs: stepMs})
	if until > at {
		s.ClearAt(until)
	}
	return s
}

// BandwidthRamp models congestion onset and recovery: the link's rate cap
// ramps from startBps down to floorBps over [at, at+fall], holds, then
// ramps back up to startBps over [releaseAt, releaseAt+rise] and clears.
func BandwidthRamp(startBps, floorBps float64, at, fall, releaseAt, rise simtime.Duration) *Schedule {
	s := New().
		StepAt(0, Impairment{RateBps: startBps}).
		RampTo(at, fall, Impairment{RateBps: floorBps})
	if releaseAt > at+fall {
		s.RampTo(releaseAt, rise, Impairment{RateBps: startBps})
		s.ClearAt(releaseAt + rise + simtime.Millisecond)
	}
	return s
}

// BurstLoss applies a Gilbert-Elliott burst-loss channel over [at, until);
// with until <= at it stays for the rest of the session.
func BurstLoss(p BurstParams, at, until simtime.Duration) *Schedule {
	s := New().StepAt(at, Impairment{Burst: &p})
	if until > at {
		s.ClearAt(until)
	}
	return s
}

// ---------------------------------------------------------- Sweep helpers

// ParamLabel renders a parameter map as the canonical "k=v,k2=v2" label
// (keys sorted), used for per-cell seed derivation: a cell's seed depends
// only on its parameter values, never on its position in a grid.
func ParamLabel(params map[string]float64) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%g", k, params[k])
	}
	return out
}
